// stencilgen — build-time extractor for the copy-and-patch JIT tier.
//
// Reads ONE relocatable ELF64 x86-64 object (a flavor of
// src/runtime/jit/stencils_tu.cpp, compiled with -fno-pic -mcmodel=large
// -ffunction-sections) and emits a C++ .inc fragment defining the flavor's
// StencilSetDef (see src/runtime/jit/stencil.h): raw code bytes per stencil,
// the R_X86_64_64 patch sites against sesr_jit_hole_<n> symbols, embedded
// .rodata* sections the code references, and the sites that point into them.
//
// A stencil that contains anything the runtime patcher cannot resolve — a
// call, a GOT/PLT relocation, a reference to an undefined non-hole symbol, a
// non-64-bit relocation — is rejected with a warning and left out of the
// table; the runtime then falls back to the base SIMD tier for shapes that
// wanted it. Rejection is never a build failure: the fallback ladder is the
// correctness story, the stencils are only the fast path.
//
// Usage: stencilgen --set <flavor> --suffix _<flavor> --out <file.inc> <obj>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace {

// ---- ELF64 structures (self-contained; <elf.h> is Linux-only) --------------

struct Elf64_Ehdr {
  unsigned char e_ident[16];
  uint16_t e_type;
  uint16_t e_machine;
  uint32_t e_version;
  uint64_t e_entry;
  uint64_t e_phoff;
  uint64_t e_shoff;
  uint32_t e_flags;
  uint16_t e_ehsize;
  uint16_t e_phentsize;
  uint16_t e_phnum;
  uint16_t e_shentsize;
  uint16_t e_shnum;
  uint16_t e_shstrndx;
};

struct Elf64_Shdr {
  uint32_t sh_name;
  uint32_t sh_type;
  uint64_t sh_flags;
  uint64_t sh_addr;
  uint64_t sh_offset;
  uint64_t sh_size;
  uint32_t sh_link;
  uint32_t sh_info;
  uint64_t sh_addralign;
  uint64_t sh_entsize;
};

struct Elf64_Sym {
  uint32_t st_name;
  unsigned char st_info;
  unsigned char st_other;
  uint16_t st_shndx;
  uint64_t st_value;
  uint64_t st_size;
};

struct Elf64_Rela {
  uint64_t r_offset;
  uint64_t r_info;
  int64_t r_addend;
};

constexpr uint16_t kEtRel = 1;
constexpr uint16_t kEmX8664 = 62;
constexpr uint32_t kShtSymtab = 2;
constexpr uint32_t kShtRela = 4;
constexpr uint32_t kRX8664_64 = 1;  // R_X86_64_64
constexpr unsigned char kSttFunc = 2;
constexpr unsigned char kSttSection = 3;

struct Object {
  std::vector<char> bytes;
  const Elf64_Ehdr* eh = nullptr;
  std::vector<Elf64_Shdr> sections;
  std::vector<Elf64_Sym> symbols;
  const char* shstr = nullptr;
  const char* symstr = nullptr;

  const char* section_name(uint32_t idx) const {
    return shstr + sections[idx].sh_name;
  }
  const char* sym_name(const Elf64_Sym& s) const { return symstr + s.st_name; }
  const char* section_data(uint32_t idx) const {
    return bytes.data() + sections[idx].sh_offset;
  }
};

bool load_object(const std::string& path, Object& o) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "stencilgen: cannot open %s\n", path.c_str());
    return false;
  }
  o.bytes.assign(std::istreambuf_iterator<char>(f), {});
  if (o.bytes.size() < sizeof(Elf64_Ehdr)) return false;
  o.eh = reinterpret_cast<const Elf64_Ehdr*>(o.bytes.data());
  const unsigned char* id = o.eh->e_ident;
  if (id[0] != 0x7f || id[1] != 'E' || id[2] != 'L' || id[3] != 'F' ||
      id[4] != 2 /*ELFCLASS64*/ || id[5] != 1 /*little-endian*/ ||
      o.eh->e_type != kEtRel || o.eh->e_machine != kEmX8664) {
    std::fprintf(stderr, "stencilgen: %s is not a relocatable ELF64 x86-64 object\n",
                 path.c_str());
    return false;
  }
  o.sections.resize(o.eh->e_shnum);
  for (uint16_t i = 0; i < o.eh->e_shnum; ++i)
    std::memcpy(&o.sections[i], o.bytes.data() + o.eh->e_shoff + i * o.eh->e_shentsize,
                sizeof(Elf64_Shdr));
  o.shstr = o.bytes.data() + o.sections[o.eh->e_shstrndx].sh_offset;
  for (uint16_t i = 0; i < o.eh->e_shnum; ++i) {
    if (o.sections[i].sh_type != kShtSymtab) continue;
    const Elf64_Shdr& st = o.sections[i];
    const size_t n = st.sh_size / sizeof(Elf64_Sym);
    o.symbols.resize(n);
    std::memcpy(o.symbols.data(), o.bytes.data() + st.sh_offset, n * sizeof(Elf64_Sym));
    o.symstr = o.bytes.data() + o.sections[st.sh_link].sh_offset;
  }
  return o.symstr != nullptr;
}

// ---- extraction ------------------------------------------------------------

struct HoleSite {
  uint32_t offset;
  uint16_t hole;
  int64_t addend;
};
struct RodataSite {
  uint32_t offset;
  uint32_t section;  // ELF section index; mapped to a blob index at emit time
  int64_t addend;    // symbol value + rela addend
};
struct Stencil {
  std::string name;  // suffix stripped
  uint32_t section;
  std::vector<HoleSite> holes;
  std::vector<RodataSite> rodata;
};

std::optional<int> parse_hole(const char* name) {
  static const char kPrefix[] = "sesr_jit_hole_";
  if (std::strncmp(name, kPrefix, sizeof(kPrefix) - 1) != 0) return std::nullopt;
  const char* num = name + sizeof(kPrefix) - 1;
  if (*num == '\0') return std::nullopt;
  int v = 0;
  for (const char* p = num; *p; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
    v = v * 10 + (*p - '0');
  }
  return v;
}

bool starts_with(const char* s, const char* prefix) {
  return std::strncmp(s, prefix, std::strlen(prefix)) == 0;
}

void emit_bytes(std::FILE* out, const char* data, uint64_t size) {
  for (uint64_t i = 0; i < size; ++i) {
    if (i % 16 == 0) std::fprintf(out, "\n   ");
    std::fprintf(out, " 0x%02x,", static_cast<unsigned char>(data[i]));
  }
  std::fprintf(out, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string set_name, suffix, out_path, obj_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--set" && i + 1 < argc) set_name = argv[++i];
    else if (a == "--suffix" && i + 1 < argc) suffix = argv[++i];
    else if (a == "--out" && i + 1 < argc) out_path = argv[++i];
    else obj_path = a;
  }
  if (set_name.empty() || suffix.empty() || out_path.empty() || obj_path.empty()) {
    std::fprintf(stderr,
                 "usage: stencilgen --set <flavor> --suffix _<flavor> --out <inc> <obj>\n");
    return 2;
  }

  Object o;
  if (!load_object(obj_path, o)) return 1;

  // Map of relocation sections keyed by the text section they apply to.
  std::map<uint32_t, uint32_t> rela_for_section;
  for (uint32_t i = 0; i < o.sections.size(); ++i)
    if (o.sections[i].sh_type == kShtRela)
      rela_for_section[o.sections[i].sh_info] = i;

  const std::string fn_prefix = "sesr_jit_stencil_";
  std::vector<Stencil> accepted;
  size_t rejected = 0;

  for (const Elf64_Sym& sym : o.symbols) {
    if ((sym.st_info & 0xf) != kSttFunc) continue;
    const char* nm = o.sym_name(sym);
    if (!starts_with(nm, fn_prefix.c_str())) continue;
    std::string base = nm + fn_prefix.size();
    if (base.size() < suffix.size() ||
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) != 0) {
      std::fprintf(stderr, "stencilgen[%s]: reject %s (suffix mismatch)\n",
                   set_name.c_str(), nm);
      ++rejected;
      continue;
    }
    base.resize(base.size() - suffix.size());

    Stencil st;
    st.name = base;
    st.section = sym.st_shndx;
    bool ok = true;
    // -ffunction-sections puts each stencil alone in .text.<fn>; the whole
    // section is the stencil and relocation offsets are code offsets.
    if (sym.st_value != 0 || sym.st_size != o.sections[st.section].sh_size) {
      std::fprintf(stderr, "stencilgen[%s]: reject %s (not alone in its section)\n",
                   set_name.c_str(), nm);
      ++rejected;
      continue;
    }

    const auto rit = rela_for_section.find(st.section);
    if (rit != rela_for_section.end()) {
      const Elf64_Shdr& rs = o.sections[rit->second];
      const size_t n = rs.sh_size / sizeof(Elf64_Rela);
      for (size_t i = 0; i < n && ok; ++i) {
        Elf64_Rela rel;
        std::memcpy(&rel, o.bytes.data() + rs.sh_offset + i * sizeof(Elf64_Rela),
                    sizeof(rel));
        const uint32_t type = static_cast<uint32_t>(rel.r_info & 0xffffffff);
        const uint32_t symidx = static_cast<uint32_t>(rel.r_info >> 32);
        const Elf64_Sym& rsym = o.symbols[symidx];
        const char* rnm = o.sym_name(rsym);
        if (type != kRX8664_64) {
          std::fprintf(stderr,
                       "stencilgen[%s]: reject %s (reloc type %u vs %s — call or "
                       "PC-relative reference survived)\n",
                       set_name.c_str(), nm, type, rnm);
          ok = false;
          break;
        }
        if (rel.r_offset + 8 > sym.st_size) {
          std::fprintf(stderr, "stencilgen[%s]: reject %s (reloc out of bounds)\n",
                       set_name.c_str(), nm);
          ok = false;
          break;
        }
        if (const auto hole = parse_hole(rnm)) {
          st.holes.push_back({static_cast<uint32_t>(rel.r_offset),
                              static_cast<uint16_t>(*hole), rel.r_addend});
          continue;
        }
        // Defined data symbol (or section symbol) in a read-only section:
        // embed the section as a blob and record the site.
        const bool is_section = (rsym.st_info & 0xf) == kSttSection;
        if (rsym.st_shndx != 0 && rsym.st_shndx < o.sections.size() &&
            starts_with(o.section_name(rsym.st_shndx), ".rodata")) {
          st.rodata.push_back({static_cast<uint32_t>(rel.r_offset), rsym.st_shndx,
                               static_cast<int64_t>(rsym.st_value) + rel.r_addend});
          continue;
        }
        std::fprintf(stderr,
                     "stencilgen[%s]: reject %s (unresolvable symbol %s%s)\n",
                     set_name.c_str(), nm, rnm[0] ? rnm : "<section>",
                     is_section ? " [section]" : "");
        ok = false;
      }
    }
    if (!ok) {
      ++rejected;
      continue;
    }
    accepted.push_back(std::move(st));
  }

  std::sort(accepted.begin(), accepted.end(),
            [](const Stencil& a, const Stencil& b) { return a.name < b.name; });

  // Assign blob indices to every referenced rodata section, in section order.
  std::map<uint32_t, uint32_t> blob_index;
  for (const Stencil& st : accepted)
    for (const RodataSite& r : st.rodata)
      blob_index.emplace(r.section, 0);
  {
    uint32_t next = 0;
    for (auto& [sec, idx] : blob_index) idx = next++;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "stencilgen: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "// Generated by stencilgen from %s — do not edit.\n"
               "// Flavor \"%s\": %zu stencils, %zu rejected, %zu rodata blobs.\n",
               obj_path.c_str(), set_name.c_str(), accepted.size(), rejected,
               blob_index.size());

  for (const auto& [sec, idx] : blob_index) {
    const Elf64_Shdr& sh = o.sections[sec];
    const uint64_t align = sh.sh_addralign > 1 ? sh.sh_addralign : 1;
    std::fprintf(out,
                 "alignas(%llu) static const unsigned char k_%s_blob_%u[] = {",
                 static_cast<unsigned long long>(align), set_name.c_str(), idx);
    emit_bytes(out, o.section_data(sec), sh.sh_size);
    std::fprintf(out, "};\n");
  }
  std::fprintf(out, "static const StencilBlob k_%s_blobs[] = {\n", set_name.c_str());
  for (const auto& [sec, idx] : blob_index)
    std::fprintf(out, "    {k_%s_blob_%u, %llu},\n", set_name.c_str(), idx,
                 static_cast<unsigned long long>(o.sections[sec].sh_size));
  std::fprintf(out, "    {nullptr, 0},\n};\n");

  for (size_t i = 0; i < accepted.size(); ++i) {
    const Stencil& st = accepted[i];
    const Elf64_Shdr& sh = o.sections[st.section];
    std::fprintf(out, "static const unsigned char k_%s_code_%zu[] = {",
                 set_name.c_str(), i);
    emit_bytes(out, o.section_data(st.section), sh.sh_size);
    std::fprintf(out, "};\n");
    if (!st.holes.empty()) {
      std::fprintf(out, "static const StencilHole k_%s_holes_%zu[] = {\n",
                   set_name.c_str(), i);
      for (const HoleSite& h : st.holes)
        std::fprintf(out, "    {%uu, %uu, %lldll},\n", h.offset, h.hole,
                     static_cast<long long>(h.addend));
      std::fprintf(out, "};\n");
    }
    if (!st.rodata.empty()) {
      std::fprintf(out, "static const StencilRodataRef k_%s_rodata_%zu[] = {\n",
                   set_name.c_str(), i);
      for (const RodataSite& r : st.rodata)
        std::fprintf(out, "    {%uu, %uu, %lldll},\n", r.offset,
                     blob_index.at(r.section), static_cast<long long>(r.addend));
      std::fprintf(out, "};\n");
    }
  }

  std::fprintf(out, "static const StencilDesc k_%s_stencils[] = {\n", set_name.c_str());
  for (size_t i = 0; i < accepted.size(); ++i) {
    const Stencil& st = accepted[i];
    const Elf64_Shdr& sh = o.sections[st.section];
    std::fprintf(out, "    {\"%s\", k_%s_code_%zu, %lluu, %s, %zuu, %s, %zuu},\n",
                 st.name.c_str(), set_name.c_str(), i,
                 static_cast<unsigned long long>(sh.sh_size),
                 st.holes.empty()
                     ? "nullptr"
                     : ("k_" + set_name + "_holes_" + std::to_string(i)).c_str(),
                 st.holes.size(),
                 st.rodata.empty()
                     ? "nullptr"
                     : ("k_" + set_name + "_rodata_" + std::to_string(i)).c_str(),
                 st.rodata.size());
  }
  std::fprintf(out, "};\n");
  std::fprintf(out,
               "static const StencilSetDef k_%s_set = {\"%s\", k_%s_stencils, %zu, "
               "k_%s_blobs, %zu, %zu};\n",
               set_name.c_str(), set_name.c_str(), set_name.c_str(), accepted.size(),
               set_name.c_str(), blob_index.size(), rejected);

  std::fclose(out);
  std::fprintf(stderr, "stencilgen[%s]: %zu stencils, %zu rejected\n",
               set_name.c_str(), accepted.size(), rejected);
  return 0;
}
