// sesr_shard: one worker shard of the distributed serving tier.
//
// Usage:
//   sesr_shard --socket /path/shard0.sock --model default=sesr_m5
//              [--model big=edsr:int8] [--workers 1] [--max-batch 4]
//              [--queue 128] [--linger-us 0]
//
// Binds the unix socket, builds every --model spec deterministically (see
// dist::parse_model_spec), and serves dist wire-format frames until a
// kShutdown frame or SIGTERM. Spawned by dist::LocalCluster in tests and
// benches; runnable by hand for a manual multi-shard setup (see README).

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "dist/shard.h"
#include "obs/trace.h"

namespace {

sesr::dist::Shard* g_shard = nullptr;

void handle_sigterm(int) {
  // Shard::stop only flips an atomic and shutdown/close()s fds — safe enough
  // here, and run() then drains every admitted request before exiting.
  if (g_shard != nullptr) g_shard->stop();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH --model id=arch[:int8][:seed=N][:calib=CxHxW] "
               "[--model ...] [--workers N] [--max-batch N] [--queue N] [--linger-us N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sesr::dist::Shard::Options options;
  options.server.workers = 1;
  options.server.max_batch = 4;
  options.server.queue_capacity = 128;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--socket") {
        options.socket_path = value();
      } else if (arg == "--model") {
        options.models.push_back(sesr::dist::parse_model_spec(value()));
      } else if (arg == "--workers") {
        options.server.workers = std::stoi(value());
      } else if (arg == "--max-batch") {
        options.server.max_batch = std::stoll(value());
      } else if (arg == "--queue") {
        options.server.queue_capacity = std::stoll(value());
      } else if (arg == "--linger-us") {
        options.server.batch_linger = std::chrono::microseconds(std::stoll(value()));
      } else {
        usage(argv[0]);
      }
    }
    if (options.socket_path.empty() || options.models.empty()) usage(argv[0]);

    sesr::dist::Shard shard(options);
    g_shard = &shard;
    ::signal(SIGTERM, handle_sigterm);
    shard.run();
    g_shard = nullptr;
    // With SESR_TRACE_DIR set, flush this process's flight-recorder rings as
    // build-dir Chrome JSON; sesr_tracecat merges the per-process files.
    sesr::obs::write_trace_file();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sesr_shard: %s\n", error.what());
    return 1;
  }
  return 0;
}
