// sesr_tracecat: merge per-process Chrome trace files into one document.
//
// Usage:
//   sesr_tracecat [-o merged.json] [--check] trace_1234.json trace_5678.json
//
// Every traced sesr process writes $SESR_TRACE_DIR/trace_<pid>.json on exit
// (obs::write_trace_file). Span timestamps come from CLOCK_MONOTONIC, shared
// by all processes on a host, so concatenating the records yields one
// coherent timeline: load the merged file in Perfetto / chrome://tracing and
// frontend rpc spans visually contain the shard spans they caused.
//
// --check additionally runs the structural nesting validator and exits 1
// when any child span escapes its parent's window (CI uses this as a gate).

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [-o OUT.json] [--check] TRACE.json...\n", argv0);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool check = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) usage(argv[0]);
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) usage(argv[0]);

  try {
    std::vector<sesr::obs::SpanRecord> all;
    for (const std::string& path : inputs) {
      std::vector<sesr::obs::SpanRecord> spans = sesr::obs::parse_chrome_trace(read_file(path));
      all.insert(all.end(), spans.begin(), spans.end());
    }
    const std::string merged = sesr::obs::chrome_trace_json(all);

    if (out_path.empty()) {
      std::fwrite(merged.data(), 1, merged.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write '" + out_path + "'");
      out << merged << '\n';
    }
    std::fprintf(stderr, "sesr_tracecat: %zu spans from %zu files\n", all.size(),
                 inputs.size());

    if (check) {
      const std::vector<std::string> violations = sesr::obs::validate_span_nesting(all);
      for (const std::string& violation : violations)
        std::fprintf(stderr, "sesr_tracecat: nesting violation: %s\n", violation.c_str());
      if (!violations.empty()) return 1;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sesr_tracecat: %s\n", error.what());
    return 1;
  }
  return 0;
}
