// Table I — PSNR / parameters / MACs for all SR methods.
//
// Paper protocol: train each network for x2 SR in RGB on DIV2K, report PSNR
// on the validation split, and parameters/MACs for upscaling 299x299 to
// 598x598. Repo protocol: training and PSNR run on the SyntheticDiv2k
// substitute at repo scale; the parameter and MAC columns are computed
// analytically for the exact paper-scale architectures and printed beside
// the paper's reference values.
#include <cstdio>

#include "bench/bench_util.h"
#include "hw/cost_model.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header("TABLE I: PSNR results (RGB colorspace) for SR methods", config);

  const data::SyntheticDiv2k div2k = bench::make_div2k_dataset(config);
  const Shape paper_input{1, 3, 299, 299};

  std::printf("%-12s | %-10s %-10s | %-10s %-10s | %-9s %-14s\n", "Model", "Params", "(paper)",
              "MACs", "(paper)", "PSNR", "(paper, DIV2K)");
  std::printf("--------------------------------------------------------------------------------\n");

  // Interpolation baseline rows (not in the paper's Table I, but they anchor
  // the PSNR scale of the synthetic dataset).
  for (auto kind : {preprocess::InterpolationKind::kNearest,
                    preprocess::InterpolationKind::kBicubic}) {
    const float psnr = core::evaluate_interpolation_psnr(kind, div2k, config.sr_val_first,
                                                         config.sr_val_count);
    std::printf("%-12s | %-10s %-10s | %-10s %-10s | %-9s %-14s\n",
                preprocess::interpolation_name(kind), "-", "-", "-", "-",
                bench::fixed(psnr).c_str(), "-");
  }

  for (const auto& spec : models::sr_model_zoo()) {
    auto paper_net = spec.make_paper_scale();
    const hw::NetworkCost cost = hw::summarize(*paper_net, paper_input);

    auto trained = bench::trained_sr_network(spec.label, config);
    const float psnr = core::evaluate_sr_psnr(*trained, div2k, config.sr_val_first,
                                              config.sr_val_count);

    std::printf("%-12s | %-10s %-10s | %-10s %-10s | %-9s %-14s\n", spec.label.c_str(),
                hw::human_count(static_cast<double>(cost.params)).c_str(),
                hw::human_count(spec.reference->params).c_str(),
                hw::human_count(static_cast<double>(cost.macs)).c_str(),
                hw::human_count(spec.reference->macs).c_str(), bench::fixed(psnr).c_str(),
                bench::fixed(spec.reference->psnr_div2k).c_str());
    std::fflush(stdout);
  }

  std::printf("\nShape checks (paper Table I):\n");
  std::printf("  - SESR-M2 uses ~6x fewer MACs than FSRCNN at similar or better PSNR\n");
  std::printf("  - deep SR beats interpolation PSNR; EDSR family sits at the top\n");
  std::printf("  - EDSR rows: measured PSNR uses the reduced repo-scale config (see DESIGN.md);\n");
  std::printf("    params/MACs columns are the exact paper-scale architectures\n");
  return 0;
}
