// Table II — robust accuracy of three classifiers under four gray-box
// attacks, for nine defense rows (no defense, nearest-neighbour upscaling,
// and seven deep SR networks).
//
// Protocol (paper section IV-A): for each classifier, select evaluation
// images the undefended classifier classifies correctly; craft FGSM / PGD /
// APGD / DI2FGSM at eps = 8/255 with the *undefended* classifier's gradients;
// report top-1 accuracy through each defense (JPEG -> wavelet -> x2 SR).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace sesr;

namespace {

// Paper Table II reference values (robust accuracy %), for side-by-side
// printing: [classifier][defense][attack].
struct PaperRow {
  const char* defense;
  double fgsm, pgd, apgd, difgsm;
};

const std::map<std::string, std::vector<PaperRow>>& paper_reference() {
  static const std::map<std::string, std::vector<PaperRow>> ref = {
      {"MobileNet-V2",
       {{"No Defense", 3.42, 6.01, 30.8, 0.02},
        {"Nearest Neighbor", 10.07, 15.91, 21.06, 6.47},
        {"EDSR-base", 17.46, 33.37, 41.77, 13.14},
        {"EDSR", 17.00, 32.49, 40.27, 13.14},
        {"FSRCNN", 19.83, 35.02, 43.98, 13.66},
        {"SESR-M2", 19.61, 34.72, 43.84, 13.8},
        {"SESR-M3", 19.33, 34.54, 43.44, 13.94},
        {"SESR-M5", 19.15, 34.76, 43.3, 13.94},
        {"SESR-XL", 18.36, 33.65, 42.39, 13.46}}},
      {"ResNet-50",
       {{"No Defense", 8.52, 17.07, 22.85, 0.22},
        {"Nearest Neighbor", 19.96, 31.48, 32.65, 20.68},
        {"EDSR-base", 31.66, 48.66, 50.56, 30.48},
        {"EDSR", 31.06, 46.43, 49.08, 30.5},
        {"FSRCNN", 32.65, 49.8, 51.76, 31.24},
        {"SESR-M2", 32.34, 49.66, 51.82, 31.24},
        {"SESR-M3", 31.96, 49.46, 51.74, 31.38},
        {"SESR-M5", 32.2, 49.64, 51.82, 31.2},
        {"SESR-XL", 31.92, 48.96, 51.24, 30.48}}},
      {"Inception-V3",
       {{"No Defense", 25.89, 10.24, 11.42, 0.52},
        {"Nearest Neighbor", 58.22, 69.15, 71.75, 51.6},
        {"EDSR-base", 60.22, 69.55, 72.17, 54.92},
        {"EDSR", 60.12, 69.57, 72.49, 55.38},
        {"FSRCNN", 60.12, 69.93, 71.97, 54.24},
        {"SESR-M2", 60.1, 69.49, 72.35, 54.56},
        {"SESR-M3", 60.08, 69.57, 72.15, 54.6},
        {"SESR-M5", 60.26, 69.83, 72.33, 54.84},
        {"SESR-XL", 60.16, 69.47, 72.35, 55.04}}},
  };
  return ref;
}

}  // namespace

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header(
      "TABLE II: robust accuracy (%) for classifiers x SR defenses x gray-box attacks "
      "(eps = 8/255)",
      config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  const std::vector<std::string> defense_rows = {
      "No Defense", "Nearest Neighbor", "EDSR-base", "EDSR", "FSRCNN",
      "SESR-M2",    "SESR-M3",          "SESR-M5",   "SESR-XL"};

  for (const auto& clf_spec : models::classifier_zoo()) {
    auto classifier = bench::trained_classifier(clf_spec.label, config);
    core::GrayBoxEvaluator evaluator(classifier, 32);
    const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
    std::printf("\n--- %s: %zu evaluation images (100%% clean top-1 by construction) ---\n",
                clf_spec.label.c_str(), indices.size());
    std::printf("%-17s | %-15s %-15s %-15s %-15s\n", "SR method", "FGSM (paper)",
                "PGD (paper)", "APGD (paper)", "DI2FGSM (paper)");
    std::printf(
        "---------------------------------------------------------------------------------\n");

    auto attacks_suite = attacks::standard_suite();
    const auto& paper_rows = paper_reference().at(clf_spec.label);
    const std::vector<int64_t> labels = dataset.labels_at(indices);

    // Gray-box: adversarial images are independent of the defense, so craft
    // once per attack and reuse across all nine defense rows.
    std::vector<Tensor> crafted;
    for (auto& attack : attacks_suite) {
      std::printf("  [attack] crafting %s...\n", attack->name().c_str());
      std::fflush(stdout);
      crafted.push_back(evaluator.craft_adversarial(dataset, indices, *attack));
    }

    for (size_t row = 0; row < defense_rows.size(); ++row) {
      const std::string& defense_label = defense_rows[row];
      std::shared_ptr<core::DefensePipeline> defense;
      if (defense_label != "No Defense") defense = bench::make_defense(defense_label, config);

      std::printf("%-17s |", defense_label.c_str());
      const PaperRow& paper = paper_rows[row];
      const double paper_vals[4] = {paper.fgsm, paper.pgd, paper.apgd, paper.difgsm};
      for (size_t a = 0; a < attacks_suite.size(); ++a) {
        const float acc = evaluator.accuracy_on(crafted[a], labels, defense.get());
        std::printf(" %-6s (%5.2f) ", bench::fixed(acc).c_str(), paper_vals[a]);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }

  std::printf("\nShape checks (paper Table II):\n");
  std::printf("  1. tiny SESR networks defend about as well as EDSR/EDSR-base\n");
  std::printf("  2. the compact MobileNet-V2 family is the least robust classifier\n");
  std::printf("  3. deep SR > nearest-neighbour upscaling for the compact classifiers\n");
  std::printf("  4. every defense row beats the No-Defense row on iterative attacks\n");
  return 0;
}
