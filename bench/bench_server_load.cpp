// Serving-engine load bench: micro-batched throughput and latency SLOs.
//
// Drives serve::Server over collapsed SESR-M5 in the paper's deployment
// arithmetic (int8) at an edge-tile operating point, in three phases:
//
//   1. Correctness — every server reply (fp32 and int8, batched dispatch)
//      must be bit-identical to the blocking per-image upscale() path. Gates
//      in every mode.
//   2. Batching gate — closed-loop saturation throughput of the batched
//      server (max_batch = 8) vs batch-size-1 serving, identical machinery
//      otherwise. Plans compile per batched shape, so coalescing k same-shape
//      requests into one [k, C, H, W] dispatch amortizes every per-dispatch
//      cost — queue and session-pool handoffs plus the per-op kernel-launch
//      and thread-pool fan-out that dominate small-tile dispatch. Full mode
//      gates >= 1.3x for SESR-M5; smoke mode records but does not gate (its
//      windows are too short for a hard ratio on shared CI runners).
//   3. Open-loop arrivals — a Poisson request stream at several offered rates
//      around the measured capacity, every request under a deadline SLO.
//      Records p50/p95/p99 latency, shed/rejected counts, queue depth and the
//      batch-size distribution into BENCH_server_load.json.
//   4. Hot-swap under load — a closed loop of submissions while the registry
//      publishes fp32 <-> int8 siblings (RCU swap). Gates in every mode on
//      zero dropped and zero failed requests across every swap; records the
//      publish (build + warm + install) latency distribution.
//
// The kernel pool is pinned to SESR_NUM_THREADS=2 — the serving deployment
// shape (a shared worker pool under the dispatch path); per-op pool fan-out
// is exactly the per-dispatch overhead the micro-batcher amortizes, and
// pinning keeps the measurement comparable across hosts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/load_gen.h"
#include "models/models.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/serve.h"

using namespace sesr;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int64_t kTile = 6;       // LR tile edge; x2 output is 12x12
constexpr int64_t kMaxBatch = 8;

serve::Server::Options server_options(int64_t max_batch) {
  serve::Server::Options options;
  options.workers = 1;  // dispatch concurrency is the kernel pool's job here
  options.max_batch = max_batch;
  options.queue_capacity = 256;
  options.batch_linger = std::chrono::microseconds{0};
  return options;
}

/// Phase 1 helper: K distinct tiles through a coalescing server; every reply
/// must match the blocking upscale() path bit for bit.
bool bitexact_vs_upscale(const std::shared_ptr<models::NetworkUpscaler>& upscaler,
                         const char* precision_label, bool require_coalescing) {
  constexpr int kRequests = 12;
  std::vector<Tensor> tiles;
  std::vector<Tensor> references;
  Rng rng(21);
  for (int i = 0; i < kRequests; ++i) {
    tiles.push_back(Tensor::rand({1, 3, kTile, kTile}, rng));
    references.push_back(upscaler->upscale(tiles.back()));
  }

  serve::Server::Options options = server_options(4);
  options.batch_linger = std::chrono::microseconds{5000};  // force coalescing
  serve::Server server(upscaler, options);
  server.warmup({3, kTile, kTile});

  std::vector<serve::ServeFuture> futures;
  futures.reserve(kRequests);
  for (const Tensor& tile : tiles) futures.push_back(server.submit(tile));

  float worst = 0.0f;
  for (int i = 0; i < kRequests; ++i) {
    serve::ServeReply reply = futures[static_cast<size_t>(i)].get();
    if (!reply.ok()) {
      std::printf("  [%s] request %d failed: %s\n", precision_label, i, reply.error.c_str());
      return false;
    }
    worst = std::max(worst, reply.output.max_abs_diff(references[static_cast<size_t>(i)]));
  }
  const serve::ServerStats stats = server.stats();
  std::printf("  [%s] %d requests, max |server - upscale| = %.2e, mean batch %.2f %s\n",
              precision_label, kRequests, worst, stats.mean_batch_size,
              worst == 0.0f ? "(OK)" : "(FAIL)");
  if (require_coalescing && stats.max_batch_observed < 2) {
    std::printf("  [%s] micro-batcher never coalesced (max batch %lld) (FAIL)\n",
                precision_label, static_cast<long long>(stats.max_batch_observed));
    return false;
  }
  return worst == 0.0f;
}

/// Phase 2 helper: closed-loop saturation throughput. Submission blocks on
/// queue backpressure; stop() drains, so the elapsed window covers exactly
/// `total` completed images.
double saturation_imgs_per_sec(const std::shared_ptr<models::NetworkUpscaler>& upscaler,
                               int64_t max_batch, int64_t total,
                               serve::ServerStats* stats_out) {
  serve::Server server(upscaler, server_options(max_batch));
  server.warmup({3, kTile, kTile});
  Rng rng(33);
  const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
  const auto ignore_reply = [](serve::ServeReply) {};

  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < total; ++i) server.submit_async(tile, ignore_reply);
  server.stop();  // drains every admitted request
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  if (stats_out != nullptr) *stats_out = server.stats();
  return static_cast<double>(total) / elapsed;
}

struct LoadResult {
  double offered_per_sec = 0.0;
  serve::ServerStats stats;
};

/// Phase 3 helper: open-loop Poisson arrivals (bench/load_gen.h) at `rate`
/// requests/sec for `seconds`, each request under `deadline`. Overload is
/// shed (expired in queue) or rejected (queue full) — never allowed to grow
/// memory unbounded.
LoadResult open_loop(const std::shared_ptr<models::NetworkUpscaler>& upscaler, double rate,
                     double seconds, std::chrono::milliseconds deadline, uint64_t seed) {
  serve::Server::Options options = server_options(kMaxBatch);
  // Deep enough that an overloaded queue's waiting time crosses the deadline
  // SLO — both shedding (expired in queue) and rejection (queue full) show up.
  options.queue_capacity = 1024;
  serve::Server server(upscaler, options);
  server.warmup({3, kTile, kTile});
  Rng rng(34);
  const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
  const auto ignore_reply = [](serve::ServeReply) {};

  bench::OpenLoopOptions load;
  load.rate_per_sec = rate;
  load.seconds = seconds;
  load.deadline = deadline;
  load.seed = seed;
  const bench::OpenLoopResult offered =
      bench::run_open_loop(load, [&](std::chrono::milliseconds slo) {
        static_cast<void>(server.try_submit(tile, ignore_reply, slo));
      });
  server.stop();
  LoadResult result;
  result.offered_per_sec = offered.offered_per_sec;
  result.stats = server.stats();
  return result;
}

struct SwapResult {
  int64_t swaps = 0;
  double publish_p50_ms = 0.0;
  double publish_mean_ms = 0.0;
  double publish_max_ms = 0.0;
  int64_t submitted = 0;
  int64_t replies = 0;
  int64_t failed = 0;
  int64_t final_version = 0;
};

/// Phase 4 helper: closed-loop submissions against a registry-backed server
/// while the control plane republishes the model `swaps` times, alternating
/// precision. Every submission must come back (zero drops) and none may fail
/// — the RCU swap's contract — while each publish's latency is recorded.
SwapResult hot_swap_under_load(const std::shared_ptr<models::Sesr>& network,
                               const std::shared_ptr<const quant::QuantizedModel>& artifact,
                               int64_t swaps) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->register_model("m5", "SESR-M5", network);
  serve::Server server(registry, server_options(kMaxBatch));
  server.warmup("m5", {3, kTile, kTile});

  SwapResult result;
  std::atomic<int64_t> replies{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> submitted{0};
  std::atomic<bool> stop_load{false};
  std::thread producer([&] {
    Rng rng(55);
    const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
    const auto count_reply = [&](serve::ServeReply reply) {
      replies.fetch_add(1, std::memory_order_relaxed);
      if (!reply.ok()) failed.fetch_add(1, std::memory_order_relaxed);
    };
    while (!stop_load.load(std::memory_order_relaxed)) {
      server.submit_async(tile, serve::Server::SubmitOptions{.model = "m5"}, count_reply);
      submitted.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Warm the swapped-in sibling for the single-image and full-batch shapes
  // before install, so the swap itself costs requests nothing; intermediate
  // batch sizes compile on first dispatch like any cold shape.
  const std::vector<Shape> warm_shapes = {{1, 3, kTile, kTile}, {kMaxBatch, 3, kTile, kTile}};
  std::vector<double> publish_ms;
  publish_ms.reserve(static_cast<size_t>(swaps));
  for (int64_t s = 0; s < swaps; ++s) {
    const Clock::time_point begin = Clock::now();
    if (s % 2 == 0)
      result.final_version = registry->publish_int8("m5", artifact, warm_shapes);
    else
      result.final_version = registry->publish_fp32("m5", warm_shapes);
    publish_ms.push_back(std::chrono::duration<double, std::milli>(Clock::now() - begin).count());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let load flow between swaps
  }

  stop_load.store(true, std::memory_order_relaxed);
  producer.join();
  server.stop();  // drains every admitted request

  result.swaps = swaps;
  std::sort(publish_ms.begin(), publish_ms.end());
  result.publish_p50_ms = publish_ms[publish_ms.size() / 2];
  result.publish_max_ms = publish_ms.back();
  double sum = 0.0;
  for (const double ms : publish_ms) sum += ms;
  result.publish_mean_ms = sum / static_cast<double>(publish_ms.size());
  result.submitted = submitted.load();
  result.replies = replies.load();
  result.failed = failed.load();
  return result;
}

void record_load(bench::BenchJson& json, const std::string& prefix, const LoadResult& r) {
  json.set(prefix + ".offered_per_sec", r.offered_per_sec);
  json.set(prefix + ".submitted", static_cast<double>(r.stats.submitted));
  json.set(prefix + ".completed", static_cast<double>(r.stats.completed));
  json.set(prefix + ".shed", static_cast<double>(r.stats.shed));
  json.set(prefix + ".rejected", static_cast<double>(r.stats.rejected));
  json.set(prefix + ".mean_batch_size", r.stats.mean_batch_size);
  json.set(prefix + ".peak_queue_depth", static_cast<double>(r.stats.peak_queue_depth));
  json.set(prefix + ".p50_ms", r.stats.latency.p50_ms);
  json.set(prefix + ".p95_ms", r.stats.latency.p95_ms);
  json.set(prefix + ".p99_ms", r.stats.latency.p99_ms);
}

}  // namespace

int main() {
  // Pin the kernel pool to the serving shape *before* any parallel_for call.
  setenv("SESR_NUM_THREADS", "2", 1);

  const bool fast = bench::fast_mode();
  const int64_t gate_total = fast ? 600 : 12000;
  const double load_seconds = fast ? 0.4 : 2.0;

  std::printf("\n================================================================================\n");
  std::printf("SERVER LOAD: async batched serving engine (collapsed SESR-M5, %lldx%lld tiles)\n",
              static_cast<long long>(kTile), static_cast<long long>(kTile));
  std::printf("queue -> micro-batcher -> worker -> session pool; %s windows\n",
              fast ? "smoke-scale" : "full");
  std::printf("================================================================================\n");

  // Collapsed SESR-M5 with seeded weights: serving behaviour depends only on
  // the architecture, so no training is needed (and none is cached).
  auto m5 = std::make_shared<models::Sesr>(models::SesrConfig::m5(),
                                           models::Sesr::Form::kInference);
  Rng rng(5);
  m5->init_weights(rng);
  auto upscaler = std::make_shared<models::NetworkUpscaler>("SESR-M5", m5);

  bench::BenchJson json("server_load");

  // ---- phase 1: batched replies bit-identical to per-image upscale() ------
  std::printf("\n[1] correctness: batched serving vs blocking upscale()\n");
  const bool fp32_ok = bitexact_vs_upscale(upscaler, "fp32", !fast);
  {
    std::vector<Tensor> calibration;
    Rng cal_rng(9);
    for (int i = 0; i < 4; ++i) calibration.push_back(Tensor::rand({1, 3, kTile, kTile}, cal_rng));
    upscaler->calibrate_int8(calibration);
  }
  const bool int8_ok = bitexact_vs_upscale(upscaler, "int8", !fast);
  json.set("gate.bitexact_fp32", fp32_ok ? 1.0 : 0.0);
  json.set("gate.bitexact_int8", int8_ok ? 1.0 : 0.0);

  // ---- phase 2: batched vs batch-size-1 saturation throughput (int8) -----
  std::printf("\n[2] saturation throughput, %lld requests per config (int8 serving)\n",
              static_cast<long long>(gate_total));
  serve::ServerStats batch1_stats;
  serve::ServerStats batched_stats;
  const double batch1_rate = saturation_imgs_per_sec(upscaler, 1, gate_total, &batch1_stats);
  const double batched_rate =
      saturation_imgs_per_sec(upscaler, kMaxBatch, gate_total, &batched_stats);
  const double speedup = batched_rate / batch1_rate;
  std::printf("  batch-1: %8.0f img/s   p99 %6.2f ms\n", batch1_rate,
              batch1_stats.latency.p99_ms);
  std::printf("  batched: %8.0f img/s   p99 %6.2f ms   mean batch %.2f\n", batched_rate,
              batched_stats.latency.p99_ms, batched_stats.mean_batch_size);
  std::printf("  batched-over-batch-1 speedup: %.2fx (target >= 1.3x) [%s]\n", speedup,
              speedup >= 1.3 ? "PASS" : fast ? "recorded, not gated in smoke mode" : "FAIL");
  json.set("batch1.imgs_per_sec", batch1_rate);
  json.set("batch1.p50_ms", batch1_stats.latency.p50_ms);
  json.set("batch1.p99_ms", batch1_stats.latency.p99_ms);
  json.set("batched.imgs_per_sec", batched_rate);
  json.set("batched.p50_ms", batched_stats.latency.p50_ms);
  json.set("batched.p99_ms", batched_stats.latency.p99_ms);
  json.set("batched.mean_batch_size", batched_stats.mean_batch_size);
  json.set("gate.batched_speedup", speedup);
  json.set("gate.threshold", 1.3);

  // ---- phase 3: open-loop Poisson arrivals around capacity ----------------
  std::printf("\n[3] open-loop Poisson arrivals, deadline SLO 50 ms, %gs per rate\n",
              load_seconds);
  std::printf("  %-10s %-12s %-11s %-6s %-9s %-9s %-9s %-9s %s\n", "load", "offered/s",
              "completed", "shed", "rejected", "p50 ms", "p99 ms", "batch", "peak q");
  const std::chrono::milliseconds slo{50};
  uint64_t seed = 101;
  for (const double fraction : {0.5, 0.8, 1.2}) {
    const LoadResult r =
        open_loop(upscaler, fraction * batched_rate, load_seconds, slo, seed++);
    std::printf("  %-10s %-12.0f %-11lld %-6lld %-9lld %-9.2f %-9.2f %-9.2f %lld\n",
                (bench::fixed(fraction * 100, 0) + "%").c_str(), r.offered_per_sec,
                static_cast<long long>(r.stats.completed),
                static_cast<long long>(r.stats.shed),
                static_cast<long long>(r.stats.rejected), r.stats.latency.p50_ms,
                r.stats.latency.p99_ms, r.stats.mean_batch_size,
                static_cast<long long>(r.stats.peak_queue_depth));
    record_load(json, "load_" + bench::fixed(fraction * 100, 0), r);
  }

  // ---- phase 4: registry hot-swap under load ------------------------------
  const int64_t swap_count = fast ? 10 : 100;
  std::printf("\n[4] hot-swap under load: %lld fp32 <-> int8 publishes against a live server\n",
              static_cast<long long>(swap_count));
  std::shared_ptr<const quant::QuantizedModel> artifact;
  {
    std::vector<Tensor> calibration;
    Rng cal_rng(9);
    for (int i = 0; i < 4; ++i)
      calibration.push_back(Tensor::rand({1, 3, kTile, kTile}, cal_rng));
    artifact = std::make_shared<const quant::QuantizedModel>(
        quant::QuantizedModel::calibrate(*m5, {1, 3, kTile, kTile}, calibration));
  }
  const SwapResult swap = hot_swap_under_load(m5, artifact, swap_count);
  const int64_t dropped = swap.submitted - swap.replies;
  const bool swap_ok = dropped == 0 && swap.failed == 0;
  std::printf("  %lld swaps, publish latency p50 %.2f ms  mean %.2f ms  max %.2f ms\n",
              static_cast<long long>(swap.swaps), swap.publish_p50_ms, swap.publish_mean_ms,
              swap.publish_max_ms);
  std::printf("  %lld submitted, %lld replies, %lld dropped, %lld failed [%s]\n",
              static_cast<long long>(swap.submitted), static_cast<long long>(swap.replies),
              static_cast<long long>(dropped), static_cast<long long>(swap.failed),
              swap_ok ? "PASS" : "FAIL");
  json.set("swap.count", static_cast<double>(swap.swaps));
  json.set("swap.publish_p50_ms", swap.publish_p50_ms);
  json.set("swap.publish_mean_ms", swap.publish_mean_ms);
  json.set("swap.publish_max_ms", swap.publish_max_ms);
  json.set("swap.submitted", static_cast<double>(swap.submitted));
  json.set("swap.dropped", static_cast<double>(dropped));
  json.set("swap.failed", static_cast<double>(swap.failed));
  json.set("gate.swap_zero_drop", swap_ok ? 1.0 : 0.0);

  // ---- phase 5: obs layer cost when disabled ------------------------------
  // The observability layer is compiled into every call site; disabled it
  // must be a branch-predictable no-op. Measure saturation throughput with
  // tracing + per-op profiling fully on, then again with both off (the
  // shipped default), and gate that the disabled run keeps >= 0.98x of the
  // enabled run — if the "disabled" branches ever start doing work, the two
  // converge and the recorded ratio trends to 1.0; the cross-commit
  // trajectory lives in BENCH_server_load.json.
  const int64_t obs_total = fast ? 400 : 6000;
  std::printf("\n[5] obs overhead: %lld requests, tracing+profiling on vs off\n",
              static_cast<long long>(obs_total));
  setenv("SESR_TRACE", "1", 1);
  setenv("SESR_PROFILE_OPS", "1", 1);
  setenv("SESR_PROFILE_SAMPLE", "8", 1);
  obs::refresh_trace_config();
  obs::refresh_profile_config();
  const double enabled_rate = saturation_imgs_per_sec(upscaler, kMaxBatch, obs_total, nullptr);
  setenv("SESR_TRACE", "0", 1);
  setenv("SESR_PROFILE_OPS", "0", 1);
  obs::refresh_trace_config();
  obs::refresh_profile_config();
  const double disabled_rate = saturation_imgs_per_sec(upscaler, kMaxBatch, obs_total, nullptr);
  const double obs_ratio = disabled_rate / enabled_rate;
  const bool obs_ok = obs_ratio >= 0.98;
  std::printf("  enabled:  %8.0f img/s\n  disabled: %8.0f img/s\n", enabled_rate, disabled_rate);
  std::printf("  disabled-over-enabled ratio: %.3fx (target >= 0.98x) [%s]\n", obs_ratio,
              obs_ok ? "PASS" : "FAIL");
  json.set("obs.enabled_imgs_per_sec", enabled_rate);
  json.set("obs.disabled_imgs_per_sec", disabled_rate);
  json.set("gate.obs_disabled_ratio", obs_ratio);

  // ---- phase 6: traced smoke -> Chrome trace artifact ---------------------
  // A short traced run must yield a parseable Chrome trace whose spans nest
  // (queue_wait / batch_form / session_run / reply inside each request
  // root). CI uploads TRACE_server_load.json and loads it in Perfetto.
  std::printf("\n[6] traced smoke: Chrome trace structure from a traced run\n");
  obs::clear_trace_buffers();
  setenv("SESR_TRACE", "1", 1);
  obs::refresh_trace_config();
  {
    serve::Server server(upscaler, server_options(4));
    server.warmup({3, kTile, kTile});
    Rng trace_rng(77);
    const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, trace_rng);
    std::vector<serve::ServeFuture> futures;
    for (int i = 0; i < 16; ++i) futures.push_back(server.submit(tile));
    for (serve::ServeFuture& future : futures) static_cast<void>(future.get());
    server.stop();
  }
  setenv("SESR_TRACE", "0", 1);
  obs::refresh_trace_config();
  const std::string trace_json = obs::drain_chrome_trace();
  bool trace_ok = false;
  size_t span_count = 0;
  try {
    const std::vector<obs::SpanRecord> spans = obs::parse_chrome_trace(trace_json);
    span_count = spans.size();
    const std::vector<std::string> violations = obs::validate_span_nesting(spans);
    for (const std::string& violation : violations)
      std::printf("  nesting violation: %s\n", violation.c_str());
    trace_ok = !spans.empty() && violations.empty();
  } catch (const std::exception& error) {
    std::printf("  trace parse failed: %s\n", error.what());
  }
  {
    std::ofstream out("TRACE_server_load.json", std::ios::binary);
    out << trace_json << '\n';
  }
  std::printf("  %zu spans round-tripped, wrote TRACE_server_load.json [%s]\n", span_count,
              trace_ok ? "PASS" : "FAIL");
  json.set("obs.trace_spans", static_cast<double>(span_count));
  json.set("gate.trace_valid", trace_ok ? 1.0 : 0.0);
  json.write();

  std::printf("\n-> batched replies bit-identical to upscale(): fp32 [%s], int8 [%s]\n",
              fp32_ok ? "PASS" : "FAIL", int8_ok ? "PASS" : "FAIL");
  std::printf("-> zero requests dropped across %lld hot-swaps: [%s]\n",
              static_cast<long long>(swap.swaps), swap_ok ? "PASS" : "FAIL");
  std::printf("-> obs disabled-over-enabled ratio %.3fx: [%s]\n", obs_ratio,
              obs_ok ? "PASS" : "FAIL");
  std::printf("-> traced smoke parses and nests: [%s]\n", trace_ok ? "PASS" : "FAIL");
  if (!fp32_ok || !int8_ok) return 1;
  // The zero-drop swap gate is a correctness property, not a timing one: it
  // holds in smoke mode too.
  if (!swap_ok) return 1;
  // The obs gates hold in every mode: trace structure is pure correctness,
  // and the overhead ratio compares two same-binary runs taken back to back.
  if (!trace_ok) return 1;
  if (!obs_ok) return 1;
  // Smoke mode gates on correctness only: sub-second windows on shared CI
  // runners are too noisy for a hard throughput ratio.
  if (fast) return 0;
  return speedup >= 1.3 ? 0 : 1;
}
