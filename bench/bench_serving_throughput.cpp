// Serving throughput: the compiled inference runtime vs the training API.
//
// The paper's deployment story is a collapsed SESR network answering
// single-image x2 upscale requests under latency pressure. This bench
// measures exactly that: N serving threads each issuing back-to-back
// single-image inferences, once through nn::Module::forward (per-thread
// model replicas — forward() caches backward state, so replicas are the
// best a training-API server can do) and once through runtime::Session
// (N sessions sharing one compiled runtime::Program). Outputs are verified
// bit-identical before timing.
//
// SESR_BENCH_FAST=1 shrinks the image and the timing window (CI smoke).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "models/models.h"
#include "runtime/runtime.h"

using namespace sesr;
using Clock = std::chrono::steady_clock;

namespace {

// Count how many times `work` runs across `n_threads` threads in `seconds`,
// recording every request's latency into `latencies_ms` (merged across
// threads) so the tail is reportable alongside the mean rate.
double measure_imgs_per_sec(int n_threads, double seconds,
                            const std::function<void(int)>& work,
                            std::vector<double>& latencies_ms) {
  std::vector<std::vector<double>> samples(static_cast<size_t>(n_threads));
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_threads));
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double>& mine = samples[static_cast<size_t>(t)];
      mine.reserve(4096);
      for (;;) {
        const Clock::time_point begin = Clock::now();
        if (begin >= deadline) break;
        work(t);
        mine.push_back(std::chrono::duration<double, std::milli>(Clock::now() - begin).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  int64_t total = 0;
  latencies_ms.clear();
  for (const std::vector<double>& mine : samples) {
    total += static_cast<int64_t>(mine.size());
    latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
  }
  return static_cast<double>(total) / elapsed;
}

}  // namespace

int main() {
  const bool fast = bench::fast_mode();
  const int64_t size = fast ? 32 : 64;
  const double seconds = fast ? 0.3 : 1.5;

  // Collapsed SESR-M5 with seeded weights: throughput depends only on the
  // architecture, so no training is needed (and none is cached).
  models::Sesr reference(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(5);
  reference.init_weights(rng);
  Rng in_rng(6);
  const Tensor input = Tensor::rand({1, 3, size, size}, in_rng);

  std::printf("\n================================================================================\n");
  std::printf("SERVING THROUGHPUT: runtime::Session vs nn::Module::forward (SESR-M5, collapsed)\n");
  std::printf("single-image x2 requests, input %s, %s timing windows\n",
              input.shape().to_string().c_str(), fast ? "smoke-scale" : "full");
  std::printf("================================================================================\n");

  const auto plan = runtime::Program::compile(reference, input.shape());
  {
    runtime::Session session(plan);
    const float diff = reference.forward(input).max_abs_diff(session.run(input));
    std::printf("bit-exact check: max |session - forward| = %.2e %s\n\n", diff,
                diff == 0.0f ? "(OK)" : "(FAIL)");
    if (diff != 0.0f) return 1;
  }

  const std::vector<int> thread_counts = {1, 2, 4};
  std::printf("%-9s %-22s %-22s %-9s %s\n", "threads", "Module::forward img/s",
              "Session img/s", "speedup", "Session p50/p99 ms");
  std::printf("--------------------------------------------------------------------------------\n");

  bench::BenchJson json("serving_throughput");
  double speedup_at_4 = 0.0;
  for (const int n_threads : thread_counts) {
    // Training-API server: one model replica per thread (forward() caches
    // backward state per layer, so a shared module cannot serve concurrently).
    std::vector<std::unique_ptr<models::Sesr>> replicas;
    for (int t = 0; t < n_threads; ++t) {
      replicas.push_back(std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                                        models::Sesr::Form::kInference));
      replicas.back()->load_parameters_from(reference);
    }
    std::vector<double> module_latencies;
    const double module_rate = measure_imgs_per_sec(
        n_threads, seconds,
        [&](int t) {
          const Tensor out = replicas[static_cast<size_t>(t)]->forward(input);
          if (out[0] == 12345.678f) std::abort();  // defeat dead-code elimination
        },
        module_latencies);

    // Serving runtime: N sessions over the one shared plan.
    std::vector<std::unique_ptr<runtime::Session>> sessions;
    std::vector<Tensor> outputs;
    for (int t = 0; t < n_threads; ++t) {
      sessions.push_back(std::make_unique<runtime::Session>(plan));
      outputs.emplace_back(plan->output_shape());
    }
    std::vector<double> session_latencies;
    const double session_rate = measure_imgs_per_sec(
        n_threads, seconds,
        [&](int t) {
          sessions[static_cast<size_t>(t)]->run_into(input, outputs[static_cast<size_t>(t)]);
        },
        session_latencies);

    const bench::LatencySummary module_summary = bench::summarize_latency(module_latencies);
    const bench::LatencySummary session_summary =
        bench::summarize_latency(session_latencies);
    const double speedup = session_rate / module_rate;
    if (n_threads == 4) speedup_at_4 = speedup;
    std::printf("%-9d %-22.1f %-22.1f %-9s %.2f / %.2f\n", n_threads, module_rate,
                session_rate, (bench::fixed(speedup) + "x").c_str(), session_summary.p50_ms,
                session_summary.p99_ms);
    std::fflush(stdout);

    const std::string key = "threads_" + std::to_string(n_threads);
    json.set(key + ".module_imgs_per_sec", module_rate);
    json.set(key + ".session_imgs_per_sec", session_rate);
    json.set(key + ".speedup", speedup);
    bench::set_latency_metrics(json, key + ".module", module_summary);
    bench::set_latency_metrics(json, key + ".session", session_summary);
  }
  json.set("gate.speedup_at_4_threads", speedup_at_4);
  json.set("gate.threshold", 1.5);

  // Memory-planner metrics and gate: the liveness-based arena must never
  // need more bytes than the one-buffer-per-tensor baseline.
  const int64_t peak = plan->peak_arena_bytes();
  const int64_t sum = plan->sum_buffer_bytes();
  const bool arena_ok = peak <= sum;
  json.set("arena.peak_arena_bytes", static_cast<double>(peak));
  json.set("arena.sum_buffer_bytes", static_cast<double>(sum));
  json.set("passes.fused_activations", static_cast<double>(plan->stats().fused_activations));
  json.set("passes.in_place_elected", static_cast<double>(plan->stats().in_place_elected));
  json.write();

  std::printf("\n-> Session path speedup at 4 threads: %.2fx (target >= 1.5x) [%s]\n",
              speedup_at_4, speedup_at_4 >= 1.5 ? "PASS" : "FAIL");
  std::printf("   One immutable program serves every session; each session owns a single\n");
  std::printf("   %.1f KiB activation arena (one-buffer-per-tensor baseline: %.1f KiB;\n",
              static_cast<double>(peak) / 1024.0, static_cast<double>(sum) / 1024.0);
  std::printf("   %lld conv+act pairs fused, %lld ops in place) plus a scratch workspace.\n",
              static_cast<long long>(plan->stats().fused_activations),
              static_cast<long long>(plan->stats().in_place_elected));
  std::printf("-> arena peak <= sum-of-buffers: [%s]\n", arena_ok ? "PASS" : "FAIL");
  if (!arena_ok) return 1;  // deterministic planner gate, enforced in every mode
  // Fast (smoke) mode gates only on the bit-exactness and planner checks
  // above: its 0.3 s windows on a tiny input are too noisy for a hard
  // throughput ratio on shared CI runners. Full mode enforces the >= 1.5x
  // acceptance target.
  if (fast) return 0;
  return speedup_at_4 >= 1.5 ? 0 : 1;
}
