// Extension: luma-only vs RGB super resolution (the paper's footnote 2).
//
// The original SESR/FSRCNN papers run SR on the Y channel only, which is why
// their published costs are ~3x smaller than the DATE-2022 paper's RGB
// numbers. This bench trains SESR-M2 both ways and compares: paper-scale MAC
// count, RGB PSNR, and robust accuracy inside the defense pipeline — making
// the paper's "we work directly in RGB" choice quantitative.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/metrics.h"
#include "hw/cost_model.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header("EXTENSION: luma-only vs RGB SESR-M2 (footnote 2)", config);

  const data::SyntheticDiv2k div2k = bench::make_div2k_dataset(config);

  // --- RGB variant: straight from the shared cache. -------------------------
  auto rgb_net = bench::trained_sr_network("SESR-M2", config);
  const float rgb_psnr =
      core::evaluate_sr_psnr(*rgb_net, div2k, config.sr_val_first, config.sr_val_count);

  // --- Luma variant: 1-channel SESR-M2 trained on Y planes. -----------------
  models::SesrConfig luma_cfg = models::SesrConfig::m2();
  luma_cfg.image_channels = 1;
  models::Sesr luma_train(luma_cfg, models::Sesr::Form::kTraining);
  core::SrTrainingOptions opts;
  opts.train_size = config.sr_train_size;
  opts.epochs = config.sr_epochs;
  opts.learning_rate = config.sr_lr;
  std::printf("  [train] SESR-M2 (luma-only, %lld x %d epochs)...\n",
              static_cast<long long>(opts.train_size), opts.epochs);
  core::train_sr_luma(luma_train, div2k, opts);
  auto luma_net = std::shared_ptr<nn::Module>(models::Sesr::collapse_from(luma_train));
  auto luma_upscaler = std::make_shared<models::LumaSrUpscaler>("SESR-M2 (Y)", luma_net);

  // RGB PSNR of the luma pipeline (luma SR + bicubic chroma).
  double luma_psnr_acc = 0.0;
  for (int64_t i = 0; i < config.sr_val_count; ++i) {
    const data::SrPair pair = div2k.get(config.sr_val_first + i);
    const int64_t ls = div2k.options().hr_size / 2;
    const Tensor up = luma_upscaler->upscale(pair.lr.reshaped({1, 3, ls, ls}));
    luma_psnr_acc += data::psnr(up, pair.hr.reshaped({1, 3, div2k.options().hr_size,
                                                      div2k.options().hr_size}));
  }
  const float luma_psnr = static_cast<float>(luma_psnr_acc / config.sr_val_count);

  // --- Paper-scale cost comparison. -----------------------------------------
  models::Sesr rgb_paper(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  models::Sesr luma_paper(luma_cfg, models::Sesr::Form::kInference);
  const auto rgb_cost = hw::summarize(rgb_paper, {1, 3, 299, 299});
  const auto luma_cost = hw::summarize(luma_paper, {1, 1, 299, 299});

  std::printf("\n%-14s %-12s %-12s %-10s\n", "variant", "params", "MACs@299", "PSNR (RGB)");
  std::printf("------------------------------------------------------\n");
  std::printf("%-14s %-12s %-12s %-10s\n", "RGB (paper)",
              hw::human_count(static_cast<double>(rgb_cost.params)).c_str(),
              hw::human_count(static_cast<double>(rgb_cost.macs)).c_str(),
              bench::fixed(rgb_psnr).c_str());
  std::printf("%-14s %-12s %-12s %-10s\n", "luma-only",
              hw::human_count(static_cast<double>(luma_cost.params)).c_str(),
              hw::human_count(static_cast<double>(luma_cost.macs)).c_str(),
              bench::fixed(luma_psnr).c_str());

  // --- Robustness inside the defense pipeline. --------------------------------
  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  attacks::Pgd pgd;
  const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);

  auto rgb_defense = bench::make_defense("SESR-M2", config);
  core::DefensePipeline luma_defense(luma_upscaler);
  const float rgb_robust = evaluator.accuracy_on(adversarial, labels, rgb_defense.get());
  const float luma_robust = evaluator.accuracy_on(adversarial, labels, &luma_defense);
  std::printf("\nPGD robust accuracy through the defense: RGB %s%%, luma-only %s%%\n",
              bench::fixed(rgb_robust).c_str(), bench::fixed(luma_robust).c_str());

  std::printf("\nShape check: luma-only costs ~3x less but gives up a little PSNR/robustness\n");
  std::printf("(chroma perturbations pass through untouched) — the trade the paper resolves\n");
  std::printf("in favour of RGB for classification inputs.\n");
  return 0;
}
