// Micro-benchmarks (google-benchmark) for the hot kernels: GEMM-backed
// convolution, the SESR forward/backward passes, JPEG's DCT pipeline, the
// wavelet transform, and one attack step. These quantify where the CPU
// reproduction spends its time and guard against performance regressions.
#include <benchmark/benchmark.h>

#include "attacks/attacks.h"
#include "models/models.h"
#include "preprocess/preprocess.h"
#include "tensor/gemm.h"

namespace {

using namespace sesr;

void BM_GemmSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    c.fill(0.0f);
    gemm_accumulate(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  nn::Conv2d conv({.in_channels = ch, .out_channels = ch, .kernel = 3});
  Rng rng(2);
  for (float& v : conv.weight().value.flat()) v = rng.normal();
  const Tensor x = Tensor::randn({4, ch, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 32 * 32 * ch * ch * 9);
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  nn::Conv2d conv({.in_channels = ch, .out_channels = ch, .kernel = 3});
  Rng rng(3);
  for (float& v : conv.weight().value.flat()) v = rng.normal();
  const Tensor x = Tensor::randn({4, ch, 32, 32}, rng);
  const Tensor g = Tensor::randn({4, ch, 32, 32}, rng);
  for (auto _ : state) {
    conv.zero_grad();
    conv.forward(x);
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(64);

void BM_SesrInferenceForward(benchmark::State& state) {
  models::Sesr net(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(4);
  net.init(rng);
  const Tensor x = Tensor::rand({1, 3, 64, 64}, rng);
  for (auto _ : state) {
    Tensor y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SesrInferenceForward);

void BM_SesrCollapse(benchmark::State& state) {
  models::Sesr train(models::SesrConfig::m2(), models::Sesr::Form::kTraining);
  Rng rng(5);
  train.init(rng);
  for (auto _ : state) {
    auto collapsed = models::Sesr::collapse_from(train);
    benchmark::DoNotOptimize(collapsed.get());
  }
}
BENCHMARK(BM_SesrCollapse);

void BM_JpegRoundTrip(benchmark::State& state) {
  const int64_t s = state.range(0);
  Rng rng(6);
  const Tensor x = Tensor::rand({1, 3, s, s}, rng);
  const preprocess::JpegCompressor jpeg({.quality = 75});
  for (auto _ : state) {
    Tensor y = jpeg.apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_JpegRoundTrip)->Arg(32)->Arg(128);

void BM_WaveletDenoise(benchmark::State& state) {
  const int64_t s = state.range(0);
  Rng rng(7);
  const Tensor x = Tensor::rand({1, 3, s, s}, rng);
  const preprocess::WaveletDenoiser denoiser;
  for (auto _ : state) {
    Tensor y = denoiser.apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_WaveletDenoise)->Arg(32)->Arg(128);

void BM_BicubicUpscale(benchmark::State& state) {
  Rng rng(8);
  const Tensor x = Tensor::rand({1, 3, 64, 64}, rng);
  for (auto _ : state) {
    Tensor y = preprocess::upscale(x, 2, preprocess::InterpolationKind::kBicubic);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BicubicUpscale);

void BM_FgsmStep(benchmark::State& state) {
  auto net = std::make_unique<nn::Sequential>("bench_net");
  net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 16, .kernel = 3,
                                         .stride = 2});
  net->add<nn::ReLU>();
  net->add<nn::GlobalAvgPool>();
  net->add<nn::Linear>(16, 10);
  Rng rng(9);
  nn::init_he_normal(*net, rng);
  const Tensor x = Tensor::rand({8, 3, 16, 16}, rng);
  const std::vector<int64_t> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  attacks::Fgsm fgsm;
  for (auto _ : state) {
    Tensor adv = fgsm.perturb(*net, x, labels);
    benchmark::DoNotOptimize(adv.data());
  }
}
BENCHMARK(BM_FgsmStep);

}  // namespace

BENCHMARK_MAIN();
