// Micro-benchmarks (google-benchmark) for the hot kernels: GEMM-backed
// convolution, the SESR forward/backward passes, JPEG's DCT pipeline, the
// wavelet transform, and one attack step — plus, since the SIMD kernel tier
// landed, per-variant rows (scalar vs avx2 vs avx512vnni) for each
// dispatched microkernel. These quantify where the CPU reproduction spends
// its time and guard against performance regressions.
//
// The custom main also times each dispatched kernel per supported tier with
// its own fixed wall-clock windows and writes BENCH_micro_kernels.json:
// the selected (or SESR_KERNEL_VARIANT-forced) tier, per-kernel per-tier
// GFLOP/s (GB/s for the byte-stream kernels), and the acceptance gates — the
// explicit-intrinsic int8 convolution must clear 1.3x over the scalar
// reference tier, and the copy-and-patch jit row (patched-stencil GFLOP/s
// plus its one-time per-plan patch cost) must clear 1.15x over the best base
// tier (full mode exits nonzero when either does not; smoke mode, scalar-only
// machines, and no-JIT builds record without gating).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.h"
#include "bench/bench_util.h"
#include "models/models.h"
#include "nn/fused_activation.h"
#include "preprocess/preprocess.h"
#include "runtime/jit/jit.h"
#include "tensor/gemm.h"
#include "tensor/int8_kernels.h"
#include "tensor/simd/dispatch.h"
#include "tensor/workspace.h"

namespace {

using namespace sesr;

void BM_GemmSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    c.fill(0.0f);
    gemm_accumulate(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  nn::Conv2d conv({.in_channels = ch, .out_channels = ch, .kernel = 3});
  Rng rng(2);
  for (float& v : conv.weight().value.flat()) v = rng.normal();
  const Tensor x = Tensor::randn({4, ch, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 32 * 32 * ch * ch * 9);
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int64_t ch = state.range(0);
  nn::Conv2d conv({.in_channels = ch, .out_channels = ch, .kernel = 3});
  Rng rng(3);
  for (float& v : conv.weight().value.flat()) v = rng.normal();
  const Tensor x = Tensor::randn({4, ch, 32, 32}, rng);
  const Tensor g = Tensor::randn({4, ch, 32, 32}, rng);
  for (auto _ : state) {
    conv.zero_grad();
    conv.forward(x);
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(64);

void BM_SesrInferenceForward(benchmark::State& state) {
  models::Sesr net(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(4);
  net.init(rng);
  const Tensor x = Tensor::rand({1, 3, 64, 64}, rng);
  for (auto _ : state) {
    Tensor y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SesrInferenceForward);

void BM_SesrCollapse(benchmark::State& state) {
  models::Sesr train(models::SesrConfig::m2(), models::Sesr::Form::kTraining);
  Rng rng(5);
  train.init(rng);
  for (auto _ : state) {
    auto collapsed = models::Sesr::collapse_from(train);
    benchmark::DoNotOptimize(collapsed.get());
  }
}
BENCHMARK(BM_SesrCollapse);

void BM_JpegRoundTrip(benchmark::State& state) {
  const int64_t s = state.range(0);
  Rng rng(6);
  const Tensor x = Tensor::rand({1, 3, s, s}, rng);
  const preprocess::JpegCompressor jpeg({.quality = 75});
  for (auto _ : state) {
    Tensor y = jpeg.apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_JpegRoundTrip)->Arg(32)->Arg(128);

void BM_WaveletDenoise(benchmark::State& state) {
  const int64_t s = state.range(0);
  Rng rng(7);
  const Tensor x = Tensor::rand({1, 3, s, s}, rng);
  const preprocess::WaveletDenoiser denoiser;
  for (auto _ : state) {
    Tensor y = denoiser.apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_WaveletDenoise)->Arg(32)->Arg(128);

void BM_BicubicUpscale(benchmark::State& state) {
  Rng rng(8);
  const Tensor x = Tensor::rand({1, 3, 64, 64}, rng);
  for (auto _ : state) {
    Tensor y = preprocess::upscale(x, 2, preprocess::InterpolationKind::kBicubic);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BicubicUpscale);

void BM_FgsmStep(benchmark::State& state) {
  auto net = std::make_unique<nn::Sequential>("bench_net");
  net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 16, .kernel = 3,
                                         .stride = 2});
  net->add<nn::ReLU>();
  net->add<nn::GlobalAvgPool>();
  net->add<nn::Linear>(16, 10);
  Rng rng(9);
  nn::init_he_normal(*net, rng);
  const Tensor x = Tensor::rand({8, 3, 16, 16}, rng);
  const std::vector<int64_t> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  attacks::Fgsm fgsm;
  for (auto _ : state) {
    Tensor adv = fgsm.perturb(*net, x, labels);
    benchmark::DoNotOptimize(adv.data());
  }
}
BENCHMARK(BM_FgsmStep);

// ---- per-variant kernel workloads ------------------------------------------
//
// One fixture per dispatched kernel, shared between the google-benchmark
// rows (registered per supported tier in main) and the JSON timing phase.
// Every workload takes the tier's dispatch table explicitly, so the rows
// compare kernel codegen, not selection policy.

/// fp32 serving convolution: 16 -> 16 channels, 3x3, 32x32 — the SESR
/// feature-extraction shape class.
struct ConvFp32Fixture {
  nn::Conv2d conv{
      nn::Conv2dOptions{.in_channels = 16, .out_channels = 16, .kernel = 3, .padding = 1}};
  Tensor x, y;
  Workspace workspace;
  nn::FusedActivation none;
  int64_t flops = 0;

  ConvFp32Fixture() {
    Rng rng(11);
    for (float& v : conv.weight().value.flat()) v = rng.normal();
    x = Tensor::rand({1, 16, 32, 32}, rng);
    y = Tensor({1, 16, 32, 32});
    flops = 2 * 16 * 16 * 32 * 32 * 9;
  }

  void run(const simd::KernelDispatch& kd) {
    workspace.reset();
    conv.infer_into_fused(x, y, workspace, none, &kd);
    benchmark::DoNotOptimize(y.data());
  }
};

/// int8 serving convolution, same shape class — the kernel the VNNI tier
/// exists for. Weight rows are packed to int8_packed_stride with zeroed
/// slack, exactly as the int8 plan lowering emits them.
struct ConvInt8Fixture {
  static constexpr int64_t kC = 16, kHw = 32, kK = 3;
  std::vector<int16_t> weights;
  std::vector<int16_t> weights_kw;
  std::vector<int32_t> bias;
  std::vector<FixedPointMultiplier> requant;
  std::vector<int8_t> in, out;
  Int8ConvSpec spec;
  Workspace workspace;
  int64_t flops = 0;

  ConvInt8Fixture() {
    Rng rng(12);
    const int64_t taps = kC * kK * kK;
    const int64_t stride = int8_packed_stride(taps);
    weights.assign(static_cast<size_t>(kC * stride), 0);
    for (int64_t oc = 0; oc < kC; ++oc)
      for (int64_t t = 0; t < taps; ++t)
        weights[static_cast<size_t>(oc * stride + t)] =
            static_cast<int16_t>(rng.randint(-127, 127));
    // The kw-padded second packing the stride-1 direct path dispatches on —
    // serving programs always carry it, so the bench measures that path.
    const int64_t kceil = 2 * int8_kw_pairs(kK);
    weights_kw.assign(static_cast<size_t>(kC * kC * kK * kceil), 0);
    for (int64_t oc = 0; oc < kC; ++oc)
      for (int64_t g = 0; g < kC * kK; ++g)
        for (int64_t kw = 0; kw < kK; ++kw)
          weights_kw[static_cast<size_t>((oc * kC * kK + g) * kceil + kw)] =
              weights[static_cast<size_t>(oc * stride + g * kK + kw)];
    bias.assign(kC, 128);
    requant.assign(kC, FixedPointMultiplier::from_double(1.0 / 512.0));
    in.resize(static_cast<size_t>(kC * kHw * kHw));
    for (int8_t& v : in) v = static_cast<int8_t>(rng.randint(-128, 127));
    out.resize(in.size());
    spec.in_c = kC;
    spec.out_c = kC;
    spec.kernel = kK;
    spec.pad = 1;
    spec.in_zero = 3;
    spec.out_zero = -5;
    spec.weights = weights.data();
    spec.weights_kw = weights_kw.data();
    spec.bias = bias.data();
    spec.requant = requant.data();
    flops = 2 * int8_conv2d_macs(spec, kHw, kHw);
  }

  void run(const simd::KernelDispatch& kd) {
    workspace.reset();
    int8_conv2d_nchw(in.data(), 1, kHw, kHw, kHw, kHw, spec, out.data(), workspace, &kd);
    benchmark::DoNotOptimize(out.data());
  }
};

/// The raw fp32 GEMM micro block (128x128x128 per call), one dispatch-table
/// call per iteration — isolates the register tile from the blocking loop.
struct GemmFixture {
  static constexpr int64_t kN = 128;
  Tensor a, b, c;
  int64_t flops = 0;

  GemmFixture() {
    Rng rng(13);
    a = Tensor::randn({kN, kN}, rng);
    b = Tensor::randn({kN, kN}, rng);
    c = Tensor({kN, kN});
    flops = 2 * kN * kN * kN;
  }

  void run(const simd::KernelDispatch& kd) {
    kd.gemm_block(kN, kN, kN, a.data(), kN, b.data(), kN, c.data(), kN);
    benchmark::DoNotOptimize(c.data());
  }
};

/// The int8 LUT stream (activations / rescales): bytes/s, not FLOP/s.
struct LutFixture {
  static constexpr int64_t kN = 1 << 16;
  std::vector<int8_t> in, out;
  int64_t bytes = kN;

  LutFixture() {
    Rng rng(14);
    in.resize(kN);
    for (int8_t& v : in) v = static_cast<int8_t>(rng.randint(-128, 127));
    out.resize(kN);
  }

  void run(const simd::KernelDispatch& kd) {
    int8_rescale(in.data(), 2, 0.753, -1, kN, out.data(), &kd);
    benchmark::DoNotOptimize(out.data());
  }
};

/// The copy-and-patch JIT tier on the same int8 conv workload: the conv16
/// stencils patched once for the fixture's exact shape/quant constants, then
/// driven through jit::run_conv — identical buffers and accumulation order
/// to the dispatch-table rows, so the row isolates codegen (baked constants,
/// no inner-loop dispatch) rather than selection policy.
struct ConvInt8JitFixture {
  runtime::jit::CodeArena arena;
  runtime::jit::JitOp jop;
  Workspace workspace;
  bool ok = false;

  /// Patch `fixture`'s conv into a fresh caller-owned arena. Standalone so
  /// the patch cost (arena reserve + copy-and-patch + W^X seal) can itself
  /// be timed: this is the per-plan compile cost a serving program pays once.
  static bool patch(const ConvInt8Fixture& fixture, runtime::jit::CodeArena& arena,
                    runtime::jit::JitOp& jop) {
    jop.kind = runtime::jit::JitOp::Kind::kConv;
    jop.conv.blocks.clear();
    return arena.reserve(size_t{1} << 20, 0) &&
           runtime::jit::patch_conv(arena, fixture.spec, ConvInt8Fixture::kHw,
                                    ConvInt8Fixture::kHw, ConvInt8Fixture::kHw,
                                    ConvInt8Fixture::kHw, jop.conv) &&
           arena.finalize();
  }

  explicit ConvInt8JitFixture(const ConvInt8Fixture& fixture)
      : ok(runtime::jit::available() && patch(fixture, arena, jop)) {}

  void run(ConvInt8Fixture& fixture, const simd::KernelDispatch& kd) {
    workspace.reset();
    runtime::jit::run_conv(jop, fixture.spec, fixture.in.data(), 1, ConvInt8Fixture::kHw,
                           ConvInt8Fixture::kHw, ConvInt8Fixture::kHw,
                           ConvInt8Fixture::kHw, fixture.out.data(), workspace, kd);
    benchmark::DoNotOptimize(fixture.out.data());
  }
};

/// Time `work` against the wall clock and return calls/second.
double measure_rate(double seconds, const std::function<void()>& work) {
  using Clock = std::chrono::steady_clock;
  work();  // warm up
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
  int64_t count = 0;
  while (Clock::now() < deadline) {
    work();
    ++count;
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(count) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-thread on purpose: these rows compare kernel codegen tiers; the
  // pool would only add scheduling noise.
  setenv("SESR_NUM_THREADS", "1", 1);

  auto conv_fp32 = std::make_shared<ConvFp32Fixture>();
  auto conv_int8 = std::make_shared<ConvInt8Fixture>();
  auto gemm = std::make_shared<GemmFixture>();
  auto lut = std::make_shared<LutFixture>();

  const std::vector<simd::KernelVariant> tiers = simd::supported_variants();
  for (const simd::KernelVariant v : tiers) {
    // Capture the table by pointer: dispatch_for returns a process-lifetime
    // reference, and the lambdas outlive this loop's locals.
    const simd::KernelDispatch* kd = &simd::dispatch_for(v);
    const std::string suffix = std::string("/") + simd::variant_name(v);
    benchmark::RegisterBenchmark(("BM_ConvFp32Microkernel" + suffix).c_str(),
                                 [conv_fp32, kd](benchmark::State& state) {
                                   for (auto _ : state) conv_fp32->run(*kd);
                                   state.SetItemsProcessed(state.iterations() *
                                                           conv_fp32->flops);
                                 });
    benchmark::RegisterBenchmark(("BM_ConvInt8Microkernel" + suffix).c_str(),
                                 [conv_int8, kd](benchmark::State& state) {
                                   for (auto _ : state) conv_int8->run(*kd);
                                   state.SetItemsProcessed(state.iterations() *
                                                           conv_int8->flops);
                                 });
    benchmark::RegisterBenchmark(("BM_GemmBlockMicrokernel" + suffix).c_str(),
                                 [gemm, kd](benchmark::State& state) {
                                   for (auto _ : state) gemm->run(*kd);
                                   state.SetItemsProcessed(state.iterations() * gemm->flops);
                                 });
    benchmark::RegisterBenchmark(("BM_LutStream" + suffix).c_str(),
                                 [lut, kd](benchmark::State& state) {
                                   for (auto _ : state) lut->run(*kd);
                                   state.SetBytesProcessed(state.iterations() * lut->bytes);
                                 });
  }

  // The jit row runs edge rows and the padded-image widening through the
  // best base tier, exactly as a jit-stamped program would.
  auto conv_jit = std::make_shared<ConvInt8JitFixture>(*conv_int8);
  const simd::KernelDispatch* kd_base = &simd::dispatch_for(
      simd::clamp_to_supported(simd::KernelVariant::kJit));
  if (conv_jit->ok)
    benchmark::RegisterBenchmark("BM_ConvInt8Microkernel/jit",
                                 [conv_int8, conv_jit, kd_base](benchmark::State& state) {
                                   for (auto _ : state) conv_jit->run(*conv_int8, *kd_base);
                                   state.SetItemsProcessed(state.iterations() *
                                                           conv_int8->flops);
                                 });

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // ---- JSON + acceptance gate ----------------------------------------------
  const bool fast = bench::fast_mode();
  const double seconds = fast ? 0.05 : 0.25;

  bench::BenchJson json("micro_kernels");
  json.set_string("kernel_variant", simd::variant_name(simd::active_variant()));
  json.set("kernel_variant_forced", simd::variant_forced() ? 1.0 : 0.0);

  double int8_scalar_gflops = 0.0, int8_best_gflops = 0.0;
  for (const simd::KernelVariant v : tiers) {
    const simd::KernelDispatch& kd = simd::dispatch_for(v);
    const std::string key = simd::variant_name(v);
    const double conv_fp32_gflops =
        measure_rate(seconds, [&] { conv_fp32->run(kd); }) *
        static_cast<double>(conv_fp32->flops) / 1e9;
    const double conv_int8_gflops =
        measure_rate(seconds, [&] { conv_int8->run(kd); }) *
        static_cast<double>(conv_int8->flops) / 1e9;
    const double gemm_gflops = measure_rate(seconds, [&] { gemm->run(kd); }) *
                               static_cast<double>(gemm->flops) / 1e9;
    const double lut_gbps = measure_rate(seconds, [&] { lut->run(kd); }) *
                            static_cast<double>(lut->bytes) / 1e9;
    json.set(key + ".conv_fp32_gflops", conv_fp32_gflops);
    json.set(key + ".conv_int8_gflops", conv_int8_gflops);
    json.set(key + ".gemm_block_gflops", gemm_gflops);
    json.set(key + ".lut_stream_gbps", lut_gbps);
    std::printf("[%-10s] conv fp32 %7.2f GFLOP/s | conv int8 %7.2f GFLOP/s | "
                "gemm %7.2f GFLOP/s | lut %6.2f GB/s\n",
                key.c_str(), conv_fp32_gflops, conv_int8_gflops, gemm_gflops, lut_gbps);
    if (v == simd::KernelVariant::kScalar) int8_scalar_gflops = conv_int8_gflops;
    if (conv_int8_gflops > int8_best_gflops) int8_best_gflops = conv_int8_gflops;
  }

  // ---- JIT tier rows: same int8 conv workload through patched stencils ------
  json.set("jit.available", conv_jit->ok ? 1.0 : 0.0);
  double jit_speedup = 0.0;
  if (conv_jit->ok) {
    const double jit_gflops =
        measure_rate(seconds, [&] { conv_jit->run(*conv_int8, *kd_base); }) *
        static_cast<double>(conv_int8->flops) / 1e9;
    // The per-plan compile cost: reserve a fresh arena, copy-and-patch every
    // oc block, seal it W^X. A serving program pays this once at plan compile.
    const double patch_us =
        1e6 / measure_rate(fast ? 0.02 : 0.1, [&] {
          runtime::jit::CodeArena arena;
          runtime::jit::JitOp jop;
          if (!ConvInt8JitFixture::patch(*conv_int8, arena, jop)) std::abort();
          benchmark::DoNotOptimize(jop.conv.blocks.data());
        });
    jit_speedup = int8_best_gflops > 0.0 ? jit_gflops / int8_best_gflops : 0.0;
    json.set("jit.conv_int8_gflops", jit_gflops);
    json.set("jit.conv_patch_us", patch_us);
    json.set("jit.conv_code_bytes", static_cast<double>(conv_jit->arena.code_bytes_used()));
    std::printf("[%-10s] conv int8 %7.2f GFLOP/s | patch cost %7.1f us/plan | "
                "%zu code bytes\n",
                "jit", jit_gflops, patch_us, conv_jit->arena.code_bytes_used());
  }

  const bool has_vector_tier = tiers.size() > 1;
  const double int8_speedup =
      int8_scalar_gflops > 0.0 ? int8_best_gflops / int8_scalar_gflops : 0.0;
  json.set("gate.int8_conv_speedup_vs_scalar", int8_speedup);
  json.set("gate.threshold", 1.3);
  json.set("gate.jit_int8_conv_speedup_vs_best_base", jit_speedup);
  json.set("gate.jit_threshold", 1.15);
  json.write();

  if (!has_vector_tier) {
    std::printf("-> scalar-only CPU: int8-conv tier gate recorded but not enforced\n");
    return 0;
  }
  std::printf("-> explicit int8 conv over scalar reference: %.2fx (target >= 1.3x) [%s]\n",
              int8_speedup, int8_speedup >= 1.3 ? "PASS" : "FAIL");
  if (conv_jit->ok)
    std::printf("-> jit int8 conv over best base tier: %.2fx (target >= 1.15x) [%s]\n",
                jit_speedup, jit_speedup >= 1.15 ? "PASS" : "FAIL");
  // Smoke windows on shared runners are too noisy for a hard ratio gate.
  if (fast) return 0;
  if (int8_speedup < 1.3) return 1;
  // The jit gate only binds where the tier exists (stencils compiled in and
  // the process may map executable pages).
  return !conv_jit->ok || jit_speedup >= 1.15 ? 0 : 1;
}
