// Shared open-loop Poisson load generator for the serving benches.
//
// Open-loop means arrivals are scheduled by an external clock (exponential
// inter-arrival gaps at the offered rate), not by the server's completions —
// the generator never slows down because the server is slow, which is what
// makes overload visible: a closed loop self-throttles and hides it. Both
// bench_server_load (single-process engine) and bench_dist_load (distributed
// tier) drive their SLO phases through this one generator, so their offered
// streams are directly comparable.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace sesr::bench {

struct OpenLoopOptions {
  double rate_per_sec = 100.0;  ///< offered arrival rate (Poisson)
  double seconds = 1.0;         ///< wall-clock generation window
  std::chrono::milliseconds deadline{50};  ///< SLO attached to every request
  uint64_t seed = 1;            ///< arrival-process seed (reproducible runs)
};

struct OpenLoopResult {
  int64_t offered = 0;  ///< requests handed to `submit`
  double elapsed_seconds = 0.0;
  double offered_per_sec = 0.0;  ///< achieved (not nominal) offered rate
};

/// Drive `submit` once per Poisson arrival until the window closes. The
/// callback gets the configured deadline and is expected to be non-blocking
/// (try_submit-style) so the arrival process stays open-loop; admission
/// refusals are the server's stats to count, not the generator's.
OpenLoopResult run_open_loop(const OpenLoopOptions& options,
                             const std::function<void(std::chrono::milliseconds)>& submit);

}  // namespace sesr::bench
