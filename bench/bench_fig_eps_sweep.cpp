// Extension figure: robustness vs attack strength (Open Challenges, §V).
//
// The paper fixes eps = 8/255; its Open Challenges section asks where
// upscaling defenses fail. Sweeping the PGD budget answers one axis of that
// question: at what perturbation strength does the SESR defense stop
// recovering accuracy, and does the tiny-vs-large SR gap open up anywhere?
#include <cstdio>

#include "bench/bench_util.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header(
      "FIGURE: robust accuracy vs attack budget (PGD, ResNet-50 analogue)", config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  std::printf("%zu evaluation images\n\n", indices.size());

  auto defense_sesr = bench::make_defense("SESR-M2", config);
  auto defense_nn = bench::make_defense("Nearest Neighbor", config);

  std::printf("%-10s %-12s %-12s %-12s\n", "eps*255", "no-defense", "NN-upscale", "SESR-M2");
  std::printf("------------------------------------------------\n");
  for (const float eps255 : {2.0f, 4.0f, 8.0f, 12.0f, 16.0f}) {
    attacks::Pgd pgd(attacks::PgdOptions{.epsilon = eps255 / 255.0f,
                                         .alpha = std::max(eps255 / 4.0f, 2.0f) / 255.0f});
    const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);
    const float none = evaluator.accuracy_on(adversarial, labels, nullptr);
    const float nn = evaluator.accuracy_on(adversarial, labels, defense_nn.get());
    const float sesr = evaluator.accuracy_on(adversarial, labels, defense_sesr.get());
    std::printf("%-10s %-12s %-12s %-12s\n", bench::fixed(eps255, 0).c_str(),
                bench::fixed(none).c_str(), bench::fixed(nn).c_str(),
                bench::fixed(sesr).c_str());
    std::fflush(stdout);
  }

  std::printf("\nShape check: the SESR column dominates both baselines across budgets and\n");
  std::printf("all defenses decay toward chance as eps grows — denoise-and-upscale cannot\n");
  std::printf("undo unbounded perturbations (the failure limit the paper's §V asks about).\n");
  return 0;
}
