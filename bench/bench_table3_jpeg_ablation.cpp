// Table III — ablation: does the JPEG stage add robustness on top of
// wavelet denoising + SR?
//
// Paper protocol: PGD and APGD on ResNet-50 and Inception-V3, five SR
// defenses, with the JPEG stage toggled. Finding: JPEG + wavelet + SR
// consistently beats wavelet + SR alone.
#include <cstdio>

#include "bench/bench_util.h"

using namespace sesr;

namespace {

struct PaperRow {
  const char* defense;
  double nojpeg_pgd, nojpeg_apgd, jpeg_pgd, jpeg_apgd;
};

const PaperRow kResnetRef[] = {{"EDSR-base", 45.92, 48.15, 48.66, 50.56},
                               {"EDSR", 46.67, 49.09, 46.43, 49.08},
                               {"FSRCNN", 46.71, 48.87, 49.8, 51.76},
                               {"SESR-M2", 44.94, 46.91, 49.66, 51.82},
                               {"SESR-XL", 44.46, 46.04, 48.96, 51.24}};

const PaperRow kInceptionRef[] = {{"EDSR-base", 67.37, 67.39, 69.55, 72.17},
                                  {"EDSR", 67.43, 67.95, 69.57, 72.49},
                                  {"FSRCNN", 66.39, 66.71, 69.93, 71.97},
                                  {"SESR-M2", 66.81, 66.85, 69.49, 72.35},
                                  {"SESR-XL", 67.23, 67.27, 69.47, 72.35}};

}  // namespace

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header("TABLE III: robustness with vs without the JPEG stage (PGD / APGD)",
                      config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  const struct {
    const char* classifier;
    const PaperRow* ref;
  } groups[] = {{"ResNet-50", kResnetRef}, {"Inception-V3", kInceptionRef}};

  for (const auto& group : groups) {
    auto classifier = bench::trained_classifier(group.classifier, config);
    core::GrayBoxEvaluator evaluator(classifier, 32);
    const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);

    std::printf("\n--- %s (%zu evaluation images) ---\n", group.classifier, indices.size());
    std::printf("%-10s | %-10s %-10s | %-10s %-10s   (paper: noJPEG PGD/APGD, JPEG PGD/APGD)\n",
                "SR", "noJPEG-PGD", "noJPEG-APGD", "JPEG-PGD", "JPEG-APGD");
    std::printf(
        "--------------------------------------------------------------------------------\n");

    attacks::Pgd pgd;
    attacks::Apgd apgd;
    const std::vector<int64_t> labels = dataset.labels_at(indices);
    const Tensor adv_pgd = evaluator.craft_adversarial(dataset, indices, pgd);
    const Tensor adv_apgd = evaluator.craft_adversarial(dataset, indices, apgd);

    for (int row = 0; row < 5; ++row) {
      const PaperRow& ref = group.ref[row];
      core::DefenseOptions without_jpeg;
      without_jpeg.use_jpeg = false;
      auto defense_nojpeg = bench::make_defense(ref.defense, config, without_jpeg);
      auto defense_jpeg = bench::make_defense(ref.defense, config);

      const float nj_pgd = evaluator.accuracy_on(adv_pgd, labels, defense_nojpeg.get());
      const float nj_apgd = evaluator.accuracy_on(adv_apgd, labels, defense_nojpeg.get());
      const float j_pgd = evaluator.accuracy_on(adv_pgd, labels, defense_jpeg.get());
      const float j_apgd = evaluator.accuracy_on(adv_apgd, labels, defense_jpeg.get());

      std::printf("%-10s | %-10s %-10s | %-10s %-10s   (%.2f/%.2f, %.2f/%.2f)\n", ref.defense,
                  bench::fixed(nj_pgd).c_str(), bench::fixed(nj_apgd).c_str(),
                  bench::fixed(j_pgd).c_str(), bench::fixed(j_apgd).c_str(), ref.nojpeg_pgd,
                  ref.nojpeg_apgd, ref.jpeg_pgd, ref.jpeg_apgd);
      std::fflush(stdout);
    }
  }

  std::printf("\nShape check (paper Table III): the JPEG stage adds robustness on top of\n");
  std::printf("wavelet + SR for most defense rows (paper: consistently, with EDSR the one\n");
  std::printf("near-tie).\n");
  return 0;
}
