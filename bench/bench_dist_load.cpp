// Distributed-tier load bench: multi-shard scaling, failover, and the
// zero-loss gate.
//
// Drives dist::Frontend over spawned sesr_shard worker processes (collapsed
// SESR-M5, edge tiles) in four phases:
//
//   1. Correctness — frontend replies (plain routing AND tile-split with
//      halo exchange) must be bit-identical to a locally-built reference
//      model — the same deterministic ModelSpec recipe the shards use.
//      Gates in every mode.
//   2. Scaling — closed-loop saturation throughput at 1, 2 and 4 shards.
//      Full mode gates >= 3.2x at 4 shards vs 1 (near-linear scaling across
//      processes: shards share nothing but the frontend socket); smoke mode
//      records without gating — CI runners rarely have 4 spare cores, and a
//      1-core host serializes the shards entirely.
//   3. Open-loop Poisson arrivals through the shared bench/load_gen.h
//      generator, every request under a deadline SLO, recording the
//      frontend's completed/shed/rejected split.
//   4. Kill-one-shard mid-run — SIGKILL a shard while a closed loop of
//      submissions is in flight; the frontend must re-hash and work-steal
//      so that *every admitted request gets a real answer*: zero dropped
//      (gates in every mode — it is a correctness property of the failover
//      path, not a timing one).
//
// Results land in BENCH_dist_load.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/load_gen.h"
#include "dist/dist.h"
#include "models/models.h"
#include "serve/serve.h"

using namespace sesr;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int64_t kTile = 6;  // LR tile edge; x2 output is 12x12
constexpr const char* kModelSpec = "default=sesr_m5:seed=5";

dist::LocalCluster::Options cluster_options(int shards) {
  dist::LocalCluster::Options options;
  options.shards = shards;
  options.model_specs = {kModelSpec};
  options.workers_per_shard = 1;
  options.max_batch = 4;
  options.shard_binary = dist::shard_binary_path();
  return options;
}

/// Phase 1: frontend replies vs the in-process reference upscaler built from
/// the same deterministic spec — plain routing and tile-split both must be
/// bit-exact.
bool bitexact_vs_reference(bench::BenchJson& json) {
  const dist::ModelSpec spec = dist::parse_model_spec(kModelSpec);
  auto reference =
      std::make_shared<models::NetworkUpscaler>("SESR-M5", dist::build_network(spec));

  dist::LocalCluster cluster(cluster_options(2));
  dist::Frontend::Options frontend_options = cluster.frontend_options();
  // Split anything at or above a 24x24 LR image across the shards.
  frontend_options.tile_threshold_pixels = 24 * 24;
  dist::Frontend frontend(frontend_options);

  Rng rng(21);
  float worst_plain = 0.0f;
  for (int i = 0; i < 6; ++i) {
    const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
    serve::ServeReply reply = frontend.submit(tile).get();
    if (!reply.ok()) {
      std::printf("  plain request %d failed: %s\n", i, reply.error.c_str());
      return false;
    }
    worst_plain = std::max(worst_plain, reply.output.max_abs_diff(reference->upscale(tile)));
  }
  std::printf("  plain routing: 6 requests, max |frontend - reference| = %.2e %s\n",
              worst_plain, worst_plain == 0.0f ? "(OK)" : "(FAIL)");

  float worst_tiled = 0.0f;
  int64_t tiled_count = 0;
  for (const int64_t height : {32, 37}) {
    const Tensor image = Tensor::rand({1, 3, height, 40}, rng);
    serve::ServeReply reply = frontend.submit(image).get();
    if (!reply.ok()) {
      std::printf("  tiled request (H=%lld) failed: %s\n", static_cast<long long>(height),
                  reply.error.c_str());
      return false;
    }
    worst_tiled = std::max(worst_tiled, reply.output.max_abs_diff(reference->upscale(image)));
  }
  tiled_count = frontend.stats().tiled;
  std::printf("  tile-split:    2 requests (%lld split), max diff = %.2e %s\n",
              static_cast<long long>(tiled_count), worst_tiled,
              worst_tiled == 0.0f ? "(OK)" : "(FAIL)");

  json.set("gate.bitexact_plain", worst_plain == 0.0f ? 1.0 : 0.0);
  json.set("gate.bitexact_tiled", worst_tiled == 0.0f ? 1.0 : 0.0);
  json.set("correctness.tiled_requests", static_cast<double>(tiled_count));
  return worst_plain == 0.0f && worst_tiled == 0.0f && tiled_count == 2;
}

/// Phase 2 helper: closed-loop saturation throughput against `shards` worker
/// processes. Blocking submits ride the per-shard window; stop() waits out
/// the futures, so the window covers exactly `total` completed images.
double saturation_imgs_per_sec(int shards, int64_t total, int64_t* completed_out) {
  dist::LocalCluster cluster(cluster_options(shards));
  dist::Frontend frontend(cluster.frontend_options());

  Rng rng(33);
  const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
  std::atomic<int64_t> completed{0};

  const Clock::time_point start = Clock::now();
  {
    // Several submitter threads keep every shard's window occupied; a single
    // blocking submitter would serialize on one shard at a time.
    const int submitters = std::max(2, shards);
    std::vector<std::thread> threads;
    std::atomic<int64_t> next{0};
    for (int t = 0; t < submitters; ++t) {
      threads.emplace_back([&] {
        while (next.fetch_add(1, std::memory_order_relaxed) < total) {
          serve::ServeReply reply = frontend.submit(tile).get();
          if (reply.ok()) completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  if (completed_out != nullptr) *completed_out = completed.load();
  return static_cast<double>(total) / elapsed;
}

struct KillResult {
  int64_t submitted = 0;
  int64_t answered = 0;   ///< ok + shed + error — every admitted got a reply
  int64_t completed = 0;  ///< ok only
  int64_t dropped = 0;    ///< submitted - answered: the gate is 0
  int64_t resubmitted = 0;
  int64_t shard_deaths = 0;
};

/// Phase 4: a closed loop of async submissions; mid-run, SIGKILL one shard.
/// Every admitted request must still be answered (work-steal + re-hash).
KillResult kill_one_shard_mid_run(int64_t total) {
  dist::LocalCluster cluster(cluster_options(2));
  dist::Frontend frontend(cluster.frontend_options());

  Rng rng(44);
  const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> completed{0};
  const auto count_reply = [&](serve::ServeReply reply) {
    answered.fetch_add(1, std::memory_order_relaxed);
    if (reply.ok()) completed.fetch_add(1, std::memory_order_relaxed);
  };

  KillResult result;
  for (int64_t i = 0; i < total; ++i) {
    frontend.submit_async(tile, {}, count_reply);
    ++result.submitted;
    if (i == total / 3) cluster.kill_shard(0);  // SIGKILL mid-stream
  }
  // Drain: every admitted request completes (answered or stolen+answered).
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(120);
  while (answered.load() < result.submitted && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  const dist::FrontendStats stats = frontend.stats();
  result.answered = answered.load();
  result.completed = completed.load();
  result.dropped = result.submitted - result.answered;
  result.resubmitted = stats.resubmitted;
  result.shard_deaths = stats.shard_deaths;
  return result;
}

}  // namespace

int main() {
  setenv("SESR_NUM_THREADS", "2", 1);

  const bool fast = bench::fast_mode();
  const int64_t gate_total = fast ? 300 : 6000;
  const double load_seconds = fast ? 0.4 : 2.0;

  std::printf("\n================================================================================\n");
  std::printf("DIST LOAD: frontend -> consistent-hash ring -> shard processes (SESR-M5)\n");
  std::printf("window backpressure, heartbeat failover, tile-split; %s windows\n",
              fast ? "smoke-scale" : "full");
  std::printf("================================================================================\n");

  bench::BenchJson json("dist_load");

  // ---- phase 1: bit-exact vs the single-process reference -----------------
  std::printf("\n[1] correctness: frontend replies vs in-process reference\n");
  const bool exact_ok = bitexact_vs_reference(json);

  // ---- phase 2: shard scaling ---------------------------------------------
  std::printf("\n[2] saturation throughput vs shard count, %lld requests per config\n",
              static_cast<long long>(gate_total));
  double rate1 = 0.0;
  double rate4 = 0.0;
  for (const int shards : {1, 2, 4}) {
    int64_t completed = 0;
    const double rate = saturation_imgs_per_sec(shards, gate_total, &completed);
    std::printf("  %d shard%s: %8.0f img/s  (%lld/%lld ok)\n", shards, shards == 1 ? " " : "s",
                rate, static_cast<long long>(completed), static_cast<long long>(gate_total));
    json.set("scaling.shards_" + std::to_string(shards) + ".imgs_per_sec", rate);
    if (shards == 1) rate1 = rate;
    if (shards == 4) rate4 = rate;
  }
  const double scaling = rate1 > 0.0 ? rate4 / rate1 : 0.0;
  std::printf("  4-shard-over-1-shard speedup: %.2fx (target >= 3.2x) [%s]\n", scaling,
              scaling >= 3.2 ? "PASS" : fast ? "recorded, not gated in smoke mode" : "FAIL");
  json.set("gate.scaling_4x", scaling);
  json.set("gate.scaling_threshold", 3.2);

  // ---- phase 3: open-loop Poisson arrivals --------------------------------
  std::printf("\n[3] open-loop Poisson arrivals over 2 shards, deadline SLO 50 ms\n");
  {
    dist::LocalCluster cluster(cluster_options(2));
    dist::Frontend frontend(cluster.frontend_options());
    Rng rng(34);
    const Tensor tile = Tensor::rand({1, 3, kTile, kTile}, rng);
    const auto ignore_reply = [](serve::ServeReply) {};

    bench::OpenLoopOptions load;
    load.rate_per_sec = std::max(50.0, 0.8 * rate1);
    load.seconds = load_seconds;
    load.deadline = std::chrono::milliseconds(50);
    load.seed = 101;
    const bench::OpenLoopResult offered =
        bench::run_open_loop(load, [&](std::chrono::milliseconds slo) {
          serve::Server::SubmitOptions options;
          options.deadline = slo;
          static_cast<void>(frontend.try_submit(tile, options, ignore_reply));
        });
    // Let in-flight work settle before reading the counters.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const dist::FrontendStats stats = frontend.stats();
    std::printf("  offered %.0f/s: %lld completed, %lld shed, %lld failed, %lld rejected\n",
                offered.offered_per_sec, static_cast<long long>(stats.completed),
                static_cast<long long>(stats.shed), static_cast<long long>(stats.failed),
                static_cast<long long>(stats.rejected));
    json.set("open_loop.offered_per_sec", offered.offered_per_sec);
    json.set("open_loop.completed", static_cast<double>(stats.completed));
    json.set("open_loop.shed", static_cast<double>(stats.shed));
    json.set("open_loop.failed", static_cast<double>(stats.failed));
    json.set("open_loop.rejected", static_cast<double>(stats.rejected));
  }

  // ---- phase 4: kill a shard mid-run, zero admitted requests lost ---------
  const int64_t kill_total = fast ? 200 : 2000;
  std::printf("\n[4] SIGKILL one of 2 shards mid-run, %lld closed-loop requests\n",
              static_cast<long long>(kill_total));
  const KillResult kill = kill_one_shard_mid_run(kill_total);
  const bool kill_ok = kill.dropped == 0 && kill.shard_deaths >= 1;
  std::printf("  %lld submitted, %lld answered (%lld ok), %lld dropped, "
              "%lld work-stolen, %lld deaths [%s]\n",
              static_cast<long long>(kill.submitted), static_cast<long long>(kill.answered),
              static_cast<long long>(kill.completed), static_cast<long long>(kill.dropped),
              static_cast<long long>(kill.resubmitted),
              static_cast<long long>(kill.shard_deaths), kill_ok ? "PASS" : "FAIL");
  json.set("kill.submitted", static_cast<double>(kill.submitted));
  json.set("kill.answered", static_cast<double>(kill.answered));
  json.set("kill.dropped", static_cast<double>(kill.dropped));
  json.set("kill.resubmitted", static_cast<double>(kill.resubmitted));
  json.set("kill.shard_deaths", static_cast<double>(kill.shard_deaths));
  json.set("gate.kill_zero_drop", kill_ok ? 1.0 : 0.0);
  json.write();

  std::printf("\n-> frontend bit-identical to single-process path: [%s]\n",
              exact_ok ? "PASS" : "FAIL");
  std::printf("-> zero admitted requests lost across a shard SIGKILL: [%s]\n",
              kill_ok ? "PASS" : "FAIL");
  if (!exact_ok) return 1;
  // Zero-loss failover is a correctness property — it gates in smoke mode too.
  if (!kill_ok) return 1;
  // The scaling ratio needs 4+ real cores; smoke mode records it only.
  if (fast) return 0;
  return scaling >= 3.2 ? 0 : 1;
}
