#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace sesr::bench {

bool fast_mode() { return core::config_bool("SESR_BENCH_FAST"); }

namespace {

// Cache keys encode everything that affects the trained weights, so stale
// checkpoints can never be loaded into a differently-configured run.
std::string clf_key(const std::string& label, const BenchConfig& c) {
  std::ostringstream os;
  os << "clf_" << label << "_s" << c.image_size << "_c" << c.num_classes << "_n"
     << c.clf_train_size << "_e" << c.clf_epochs << "_seed" << c.data_seed << "_v1";
  std::string key = os.str();
  for (char& ch : key)
    if (ch == ' ' || ch == '-') ch = '_';
  return key;
}

std::string sr_key(const std::string& label, const BenchConfig& c) {
  std::ostringstream os;
  os << "sr_" << label << "_hr" << c.sr_hr_size << "_n" << c.sr_train_size << "_e"
     << c.sr_epochs << "_seed" << c.div2k_seed << "_v1";
  std::string key = os.str();
  for (char& ch : key)
    if (ch == ' ' || ch == '-') ch = '_';
  return key;
}

}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig config;
  if (fast_mode()) {
    config.eval_count = 64;
    config.clf_train_size = 512;
    config.clf_epochs = 8;
    config.sr_train_size = 384;
    config.sr_epochs = 4;
    config.sr_val_count = 32;
  }
  return config;
}

data::ShapesTexDataset make_shapes_dataset(const BenchConfig& config) {
  return data::ShapesTexDataset({.image_size = config.image_size,
                                 .num_classes = config.num_classes,
                                 .seed = config.data_seed,
                                 .noise_stddev = 0.02f});
}

data::SyntheticDiv2k make_div2k_dataset(const BenchConfig& config) {
  return data::SyntheticDiv2k(
      {.hr_size = config.sr_hr_size, .scale = 2, .seed = config.div2k_seed});
}

std::shared_ptr<models::Classifier> trained_classifier(const std::string& label,
                                                       const BenchConfig& config) {
  for (const auto& spec : models::classifier_zoo()) {
    if (spec.label != label) continue;
    auto classifier = spec.make(config.num_classes);
    const std::string key = clf_key(label, config);
    if (core::load_checkpoint(*classifier, key)) return classifier;

    std::printf("  [train] %s (%lld samples x %d epochs)...\n", label.c_str(),
                static_cast<long long>(config.clf_train_size), config.clf_epochs);
    std::fflush(stdout);
    const data::ShapesTexDataset dataset = make_shapes_dataset(config);
    core::ClassifierTrainingOptions opts;
    opts.train_size = config.clf_train_size;
    opts.batch_size = 32;
    opts.epochs = config.clf_epochs;
    opts.learning_rate = config.clf_lr;
    opts.upscaled_batch_prob = 0.35f;
    const core::TrainingSummary summary = core::train_classifier(*classifier, dataset, opts);
    std::printf("  [train] %s done: train-acc %.1f%%\n", label.c_str(), summary.final_accuracy);
    core::save_checkpoint(*classifier, key);
    return classifier;
  }
  throw std::out_of_range("trained_classifier: unknown label " + label);
}

std::shared_ptr<nn::Module> trained_sr_network(const std::string& label,
                                               const BenchConfig& config) {
  const models::SrModelSpec& spec = models::sr_model(label);
  const std::string key = sr_key(label, config);
  const data::SyntheticDiv2k dataset = make_div2k_dataset(config);

  core::SrTrainingOptions opts;
  opts.train_size = config.sr_train_size;
  opts.batch_size = 16;
  opts.epochs = config.sr_epochs;
  opts.learning_rate = config.sr_lr;
  opts.loss = (label == "FSRCNN") ? core::SrLoss::kMse : core::SrLoss::kMae;

  const bool is_sesr = label.rfind("SESR", 0) == 0;
  if (is_sesr) {
    // Train the overparameterised form, deploy the collapsed form.
    auto inference = spec.make_repo_scale();
    if (core::load_checkpoint(*inference, key)) return inference;

    const auto* proto = dynamic_cast<const models::Sesr*>(inference.get());
    models::Sesr training_form(proto->config(), models::Sesr::Form::kTraining);
    std::printf("  [train] %s (collapsible form, %lld x %d epochs)...\n", label.c_str(),
                static_cast<long long>(opts.train_size), opts.epochs);
    std::fflush(stdout);
    core::train_sr(training_form, dataset, opts);
    auto collapsed = models::Sesr::collapse_from(training_form);
    inference->load_parameters_from(*collapsed);
    core::save_checkpoint(*inference, key);
    return inference;
  }

  // FSRCNN / EDSR have no built-in input residual; train them in the
  // VDSR-style global-residual formulation (see models/global_residual.h) so
  // the repo-scale compute budget goes into learning detail, not upscaling.
  auto body = spec.make_repo_scale();
  struct SharedBodyAdapter final : nn::Module {
    // GlobalResidualSr owns its body via unique_ptr; adapt the shared_ptr
    // from the zoo factory without double ownership.
    explicit SharedBodyAdapter(std::shared_ptr<nn::Module> m) : inner(std::move(m)) {}
    Tensor forward(const Tensor& x) override { return inner->forward(x); }
    Tensor backward(const Tensor& g) override { return inner->backward(g); }
    std::vector<nn::Parameter*> parameters() override { return inner->parameters(); }
    void init_weights(Rng& rng) override { inner->init_weights(rng); }
    [[nodiscard]] std::string name() const override { return inner->name(); }
    Shape trace(const Shape& in, std::vector<nn::LayerInfo>* out) const override {
      return inner->trace(in, out);
    }
    std::shared_ptr<nn::Module> inner;
  };
  auto wrapped = std::make_shared<models::GlobalResidualSr>(
      std::make_unique<SharedBodyAdapter>(body), /*scale=*/2);
  if (core::load_checkpoint(*wrapped, key)) return wrapped;
  std::printf("  [train] %s (global-residual form, %lld x %d epochs)...\n", label.c_str(),
              static_cast<long long>(opts.train_size), opts.epochs);
  std::fflush(stdout);
  core::train_sr(*wrapped, dataset, opts);
  core::save_checkpoint(*wrapped, key);
  return wrapped;
}

std::shared_ptr<core::DefensePipeline> make_defense(const std::string& sr_label,
                                                    const BenchConfig& config,
                                                    const core::DefenseOptions& opts) {
  std::shared_ptr<models::Upscaler> upscaler;
  if (sr_label == "Nearest Neighbor") {
    upscaler = std::make_shared<models::InterpolationUpscaler>(
        preprocess::InterpolationKind::kNearest);
  } else if (sr_label == "Bilinear") {
    upscaler = std::make_shared<models::InterpolationUpscaler>(
        preprocess::InterpolationKind::kBilinear);
  } else if (sr_label == "Bicubic") {
    upscaler = std::make_shared<models::InterpolationUpscaler>(
        preprocess::InterpolationKind::kBicubic);
  } else {
    upscaler =
        std::make_shared<models::NetworkUpscaler>(sr_label, trained_sr_network(sr_label, config));
  }
  return std::make_shared<core::DefensePipeline>(std::move(upscaler), opts);
}

std::vector<int64_t> evaluation_indices(models::Classifier& classifier,
                                        const BenchConfig& config) {
  const data::ShapesTexDataset dataset = make_shapes_dataset(config);
  std::vector<int64_t> selected;
  const int64_t start = config.clf_train_size;  // never evaluate on training images
  for (int64_t first = start;
       first < start + config.selection_pool &&
       static_cast<int64_t>(selected.size()) < config.eval_count;
       first += 64) {
    const Tensor images = dataset.images(first, 64);
    const std::vector<int64_t> labels = dataset.labels(first, 64);
    const std::vector<int64_t> preds = nn::argmax_rows(classifier.forward(images));
    for (int64_t i = 0; i < 64 && static_cast<int64_t>(selected.size()) < config.eval_count; ++i)
      if (preds[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)])
        selected.push_back(first + i);
  }
  return selected;
}

void print_header(const std::string& title, const BenchConfig& config) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %lldx%lld images, %lld classes, %lld eval images (paper: 299x299, 1000 "
              "classes, 5000 images)\n",
              static_cast<long long>(config.image_size), static_cast<long long>(config.image_size),
              static_cast<long long>(config.num_classes),
              static_cast<long long>(config.eval_count));
  std::printf("================================================================================\n");
}

std::string fixed(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string json_key(std::string label) {
  for (char& c : label) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c == '-' || c == ' ') c = '_';
  }
  return label;
}

LatencySummary summarize_latency(std::vector<double> samples_ms) {
  LatencySummary summary;
  if (samples_ms.empty()) return summary;
  std::sort(samples_ms.begin(), samples_ms.end());
  summary.count = static_cast<int64_t>(samples_ms.size());
  double sum = 0.0;
  for (const double v : samples_ms) sum += v;
  summary.mean_ms = sum / static_cast<double>(summary.count);
  summary.max_ms = samples_ms.back();
  // Nearest-rank: percentile p is the ceil(p * count)-th smallest sample.
  const auto rank = [&](double p) {
    const auto idx = static_cast<size_t>(std::ceil(p * static_cast<double>(summary.count)));
    return samples_ms[std::min(samples_ms.size() - 1, std::max<size_t>(idx, 1) - 1)];
  };
  summary.p50_ms = rank(0.50);
  summary.p95_ms = rank(0.95);
  summary.p99_ms = rank(0.99);
  return summary;
}

void set_latency_metrics(BenchJson& json, const std::string& prefix,
                         const LatencySummary& summary) {
  json.set(prefix + ".p50_ms", summary.p50_ms);
  json.set(prefix + ".p95_ms", summary.p95_ms);
  json.set(prefix + ".p99_ms", summary.p99_ms);
  json.set(prefix + ".mean_ms", summary.mean_ms);
  json.set(prefix + ".max_ms", summary.max_ms);
}

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchJson::set(const std::string& metric, double value) {
  for (Metric& m : metrics_) {
    if (m.name == metric) {
      m.number = value;
      m.is_string = false;
      return;
    }
  }
  metrics_.push_back({metric, value, false, {}});
}

void BenchJson::set_string(const std::string& metric, const std::string& value) {
  for (Metric& m : metrics_) {
    if (m.name == metric) {
      m.text = value;
      m.is_string = true;
      return;
    }
  }
  metrics_.push_back({metric, 0.0, true, value});
}

std::string BenchJson::write() const {
  const std::string path =
      core::config_string("SESR_BENCH_JSON_DIR") + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os) throw std::runtime_error("BenchJson::write: cannot open " + path);
  os << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {\n";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    os << "    \"" << metrics_[i].name << "\": ";
    if (metrics_[i].is_string) {
      os << '"' << metrics_[i].text << '"';
    } else {
      char value[64];
      std::snprintf(value, sizeof(value), "%.8g", metrics_[i].number);
      os << value;
    }
    os << (i + 1 < metrics_.size() ? ",\n" : "\n");
  }
  os << "  },\n";
  // Observability tail: the process-wide registry snapshot (profiler gauges
  // included) plus the top hot ops, so a bench artifact carries its own
  // runtime profile alongside the headline metrics.
  obs::profile_export(obs::default_registry());
  os << "  \"registry\": " << obs::default_registry().snapshot().to_json() << ",\n";
  os << "  \"hot_ops\": [";
  const std::vector<obs::OpProfileRow> rows = obs::profile_aggregate();
  const size_t top = std::min<size_t>(rows.size(), 10);
  for (size_t i = 0; i < top; ++i) {
    os << (i == 0 ? "" : ", ") << "{\"op\": \"" << rows[i].name << "\", \"tier\": \""
       << rows[i].tier << "\", \"calls\": " << rows[i].calls << ", \"ns\": " << rows[i].ns
       << "}";
  }
  os << "]\n}\n";
  if (!os) throw std::runtime_error("BenchJson::write: write failed for " + path);
  std::printf("[bench-json] wrote %s\n", path.c_str());
  return path;
}

}  // namespace sesr::bench
