// Figure: robust accuracy as a function of SR compute (MACs).
//
// The paper has no data figure (Tables I-IV carry the results), but its
// central question — "does robustness suffer as the SR model shrinks?" — and
// Open Challenges bullet 2 ("at what limit do upscaling-based defenses
// fail?") define an implicit curve: robust accuracy vs SR MACs, from free
// interpolation through SESR-M2 to EDSR. This bench produces that series.
#include <cstdio>

#include "bench/bench_util.h"
#include "hw/cost_model.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header(
      "FIGURE: robust accuracy vs SR compute (PGD, eps = 8/255, gray-box)", config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  std::printf("classifier: ResNet-50 analogue, %zu evaluation images\n\n", indices.size());

  attacks::Pgd pgd;
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);
  const float undefended = evaluator.accuracy_on(adversarial, labels, nullptr);
  std::printf("%-17s %-14s %-12s %s\n", "upscaler", "MACs@299->598", "robust-acc%", "series");
  std::printf("--------------------------------------------------------------------------------\n");
  std::printf("%-17s %-14s %-12s\n", "(no defense)", "0", bench::fixed(undefended).c_str());

  const char* series[] = {"Nearest Neighbor", "Bilinear", "Bicubic", "SESR-M2", "SESR-M3",
                          "SESR-M5", "FSRCNN", "SESR-XL", "EDSR-base"};
  for (const char* label : series) {
    double macs = 0.0;
    const bool is_network = std::string(label) != "Nearest Neighbor" &&
                            std::string(label) != "Bilinear" && std::string(label) != "Bicubic";
    if (is_network) {
      auto paper_net = models::sr_model(label).make_paper_scale();
      macs = static_cast<double>(hw::summarize(*paper_net, {1, 3, 299, 299}).macs);
    }
    auto defense = bench::make_defense(label, config);
    const float acc = evaluator.accuracy_on(adversarial, labels, defense.get());

    // Crude inline bar so the knee is visible in plain text output.
    std::string bar(static_cast<size_t>(acc / 2.0f), '#');
    std::printf("%-17s %-14s %-12s %s\n", label,
                is_network ? hw::human_count(macs).c_str() : "-", bench::fixed(acc).c_str(),
                bar.c_str());
    std::fflush(stdout);
  }

  std::printf("\nShape check: the curve rises sharply from interpolation to the smallest deep\n");
  std::printf("SR model (SESR-M2, 0.948 GMAC) and is nearly flat beyond it — robustness does\n");
  std::printf("NOT suffer as SR shrinks, until SR stops being a learned manifold projection.\n");
  return 0;
}
