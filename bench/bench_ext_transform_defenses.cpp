// Extension: SR-based defense vs the classical input-transformation defenses
// the paper's Related Work (§II) positions itself against.
//
// Bit-depth reduction / JPEG (Das et al.), pixel deflection (Prakash et al.),
// total-variation minimisation (Guo et al.), random resize-and-pad (Xie et
// al.), wavelet denoising (Mustafa et al.) — each evaluated standalone and
// the paper's full pipeline (JPEG + wavelet + SESR-M2) alongside, under PGD
// in the same gray-box protocol as Table II. Also reports clean accuracy
// through each transform, the §II criticism that motivates SR: many
// transforms buy robustness by destroying clean accuracy.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "data/metrics.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header(
      "EXTENSION: transformation defenses vs the SR pipeline (PGD, ResNet-50 analogue)",
      config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  std::printf("%zu evaluation images\n\n", indices.size());

  attacks::Pgd pgd;
  const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);
  const Tensor clean = dataset.images_at(indices);

  // Standalone transforms (no upscaling): the classifier consumes the
  // transformed image at its native resolution.
  struct TransformRow {
    const char* name;
    std::function<Tensor(const Tensor&)> apply;
  };
  const preprocess::JpegCompressor jpeg({.quality = 75});
  const preprocess::WaveletDenoiser wavelet;
  const preprocess::PixelDeflector deflector({.count = 60, .window = 4, .seed = 23});
  const preprocess::TvDenoiser tv({.weight = 0.08f, .iterations = 30});
  const preprocess::RandomResizePad resize_pad({.min_scale = 0.85f, .seed = 29});

  const TransformRow rows[] = {
      {"(none)", [](const Tensor& x) { return x; }},
      {"bit-depth 4", [](const Tensor& x) { return preprocess::bit_depth_reduce(x, 4); }},
      {"bit-depth 2", [](const Tensor& x) { return preprocess::bit_depth_reduce(x, 2); }},
      {"JPEG q75", [&](const Tensor& x) { return jpeg.apply(x); }},
      {"wavelet denoise", [&](const Tensor& x) { return wavelet.apply(x); }},
      {"pixel deflection", [&](const Tensor& x) { return deflector.apply(x); }},
      {"TV minimisation", [&](const Tensor& x) { return tv.apply(x); }},
      {"resize-and-pad", [&](const Tensor& x) { return resize_pad.apply(x); }},
  };

  auto accuracy = [&](const Tensor& images) {
    return data::accuracy_percent(nn::argmax_rows(classifier->forward(images)), labels);
  };

  std::printf("%-20s %-12s %-12s\n", "transform", "clean-acc%", "robust-acc%");
  std::printf("----------------------------------------------\n");
  for (const TransformRow& row : rows) {
    const float clean_acc = accuracy(row.apply(clean));
    const float robust_acc = accuracy(row.apply(adversarial));
    std::printf("%-20s %-12s %-12s\n", row.name, bench::fixed(clean_acc).c_str(),
                bench::fixed(robust_acc).c_str());
    std::fflush(stdout);
  }

  // The paper's pipeline for comparison.
  auto defense = bench::make_defense("SESR-M2", config);
  const float pipeline_clean = evaluator.accuracy_on(clean, labels, defense.get());
  const float pipeline_robust = evaluator.accuracy_on(adversarial, labels, defense.get());
  std::printf("%-20s %-12s %-12s   <- the paper's defense\n", "JPEG+wavelet+SESR",
              bench::fixed(pipeline_clean).c_str(), bench::fixed(pipeline_robust).c_str());

  std::printf("\nShape check (paper §II): single transforms trade clean accuracy for\n");
  std::printf("robustness; the SR pipeline recovers robustness while keeping clean\n");
  std::printf("accuracy usable — the property that makes it deployable.\n");
  return 0;
}
