// Table IV — end-to-end latency on the Arm Ethos-U55 micro-NPU.
//
// Paper protocol: the Vela performance estimator prices an enlarged
// MobileNet-V2 (598x598 input, ~2.1 GMAC) plus each SR network upscaling
// 299x299 -> 598x598. Repo protocol: the analytic EthosU55Model (see
// src/hw/ethos_u55.h) prices the *exact paper-scale architectures* — this
// bench involves no training and no scaled-down models.
//
// The "int8 plan" column prices the compiled int8 program the runtime
// actually executes (quantise/dequantise boundaries included) instead of the
// float module structure: each SR network is calibrated at a small shape —
// artifacts are shape-independent — and its int8 plan is compiled at the
// paper's 299x299 serving shape. Emits BENCH_table4_latency.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hw/ethos_u55.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

using namespace sesr;

namespace {

/// Ethos-U55 milliseconds of the network's compiled int8 plan at 299x299.
double int8_plan_ms(const hw::EthosU55Model& npu, nn::Module& net) {
  Rng rng(17);
  net.init_weights(rng);
  const Shape calib_shape{1, 3, 32, 32};
  std::vector<Tensor> batches;
  Rng data_rng(18);
  for (int i = 0; i < 2; ++i) batches.push_back(Tensor::rand(calib_shape, data_rng));
  const auto artifact = quant::QuantizedModel::calibrate(net, calib_shape, batches);
  const auto plan = runtime::Program::compile_int8(net, {1, 3, 299, 299}, artifact);
  return npu.estimate_int8(*plan).total_ms;
}

}  // namespace

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header(
      "TABLE IV: latency on Arm Ethos-U55 — enlarged MobileNet-V2 + SR (299->598)", config);

  const hw::EthosU55Model npu;  // U55-256 @ 1 GHz (0.5 TOP/s)
  bench::BenchJson json("table4_latency");

  models::MobileNetV2Paper mv2(1000);
  const double cls_ms = npu.estimate(mv2, {1, 3, 598, 598}).total_ms;
  std::printf("Classification: MobileNet-V2 @ 598x598 = %s ms   (paper: 46.18 ms)\n\n",
              bench::fixed(cls_ms).c_str());
  json.set("mobilenet_v2.ms", cls_ms);

  struct PaperRow {
    const char* label;
    double sr_ms, total_ms, fps;
  };
  const PaperRow rows[] = {{"FSRCNN", 143.73, 189.91, 5.26},
                           {"SESR-M5", 26.76, 72.94, 13.70},
                           {"SESR-M3", 22.38, 68.56, 14.58},
                           {"SESR-M2", 20.19, 66.37, 15.06}};

  std::printf("%-10s | %-10s %-12s %-10s %-8s | paper: SR / total / FPS\n", "SR model",
              "SR (ms)", "int8 plan", "Total (ms)", "FPS");
  std::printf("--------------------------------------------------------------------------------\n");

  double fps_fsrcnn = 0.0, fps_m2 = 0.0;
  for (const PaperRow& row : rows) {
    auto net = models::sr_model(row.label).make_paper_scale();
    const double sr_ms = npu.estimate(*net, {1, 3, 299, 299}).total_ms;
    const double plan_ms = int8_plan_ms(npu, *net);
    const double total_ms = cls_ms + sr_ms;
    const double fps = 1e3 / total_ms;
    if (std::string(row.label) == "FSRCNN") fps_fsrcnn = fps;
    if (std::string(row.label) == "SESR-M2") fps_m2 = fps;
    std::printf("%-10s | %-10s %-12s %-10s %-8s | %.2f / %.2f / %.2f\n", row.label,
                bench::fixed(sr_ms).c_str(), bench::fixed(plan_ms).c_str(),
                bench::fixed(total_ms).c_str(), bench::fixed(fps).c_str(), row.sr_ms,
                row.total_ms, row.fps);
    const std::string key = bench::json_key(row.label);
    json.set(key + ".sr_ms", sr_ms);
    json.set(key + ".int8_plan_ms", plan_ms);
    json.set(key + ".total_ms", total_ms);
    json.set(key + ".fps", fps);
  }

  std::printf("\nExtended rows (not in the paper's table):\n");
  for (const char* label : {"SESR-XL", "EDSR-base"}) {
    auto net = models::sr_model(label).make_paper_scale();
    const double sr_ms = npu.estimate(*net, {1, 3, 299, 299}).total_ms;
    std::printf("%-10s | SR %s ms, total %s ms, %.2f FPS\n", label,
                bench::fixed(sr_ms).c_str(), bench::fixed(cls_ms + sr_ms).c_str(),
                1e3 / (cls_ms + sr_ms));
    json.set(bench::json_key(label) + ".sr_ms", sr_ms);
  }

  std::printf("\nShape check (paper's headline): SESR-M2 end-to-end FPS / FSRCNN FPS = %.2fx "
              "(paper: 2.86x, \"nearly 3x\")\n",
              fps_m2 / fps_fsrcnn);
  json.set("shape_check.m2_over_fsrcnn_fps", fps_m2 / fps_fsrcnn);
  json.write();
  return 0;
}
