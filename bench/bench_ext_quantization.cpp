// Extension: does the defense survive int8 deployment?
//
// The paper's Table IV prices the pipeline on an int8 NPU but evaluates
// robustness in float. This bench closes the loop: both the SESR upscaler
// and the classifier are post-training fake-quantised (per-tensor int8, the
// Ethos-U55's numeric format) and Table II's protocol is re-run, plus an
// int4 row to show where quantisation starts to bite.
#include <cstdio>

#include "bench/bench_util.h"

using namespace sesr;

namespace {

// Upscaler around a fake-quantised copy of a trained SR network.
std::shared_ptr<core::DefensePipeline> quantized_defense(
    const std::shared_ptr<nn::Module>& trained, int bits) {
  auto copy_holder = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                    models::Sesr::Form::kInference);
  copy_holder->load_parameters_from(*trained);
  struct Shared final : nn::Module {
    explicit Shared(std::shared_ptr<nn::Module> m) : inner(std::move(m)) {}
    Tensor forward(const Tensor& x) override { return inner->forward(x); }
    Tensor backward(const Tensor& g) override { return inner->backward(g); }
    std::vector<nn::Parameter*> parameters() override { return inner->parameters(); }
    [[nodiscard]] std::string name() const override { return inner->name(); }
    Shape trace(const Shape& in, std::vector<nn::LayerInfo>* out) const override {
      return inner->trace(in, out);
    }
    std::shared_ptr<nn::Module> inner;
  };
  auto quantized = std::make_shared<nn::QuantizedInference>(
      std::make_unique<Shared>(copy_holder),
      nn::QuantizationSpec{.bits = bits, .symmetric = true},
      nn::QuantizationSpec{.bits = bits, .symmetric = false});
  return std::make_shared<core::DefensePipeline>(std::make_shared<models::NetworkUpscaler>(
      "SESR-M2 int" + std::to_string(bits), quantized));
}

}  // namespace

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header("EXTENSION: defense robustness under int8/int4 quantisation (PGD)",
                      config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  std::printf("%zu evaluation images\n\n", indices.size());

  attacks::Pgd pgd;
  const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);
  const Tensor clean = dataset.images_at(indices);

  auto sesr_float = bench::trained_sr_network("SESR-M2", config);
  auto defense_float = bench::make_defense("SESR-M2", config);

  struct Row {
    const char* name;
    std::shared_ptr<core::DefensePipeline> defense;
  };
  const Row rows[] = {
      {"float32 (Table II)", defense_float},
      {"int8 weights+acts", quantized_defense(sesr_float, 8)},
      {"int4 weights+acts", quantized_defense(sesr_float, 4)},
  };

  std::printf("%-20s %-12s %-12s\n", "SESR-M2 numerics", "clean-acc%", "robust-acc%");
  std::printf("----------------------------------------------\n");
  for (const Row& row : rows) {
    const float clean_acc = evaluator.accuracy_on(clean, labels, row.defense.get());
    const float robust_acc = evaluator.accuracy_on(adversarial, labels, row.defense.get());
    std::printf("%-20s %-12s %-12s\n", row.name, bench::fixed(clean_acc).c_str(),
                bench::fixed(robust_acc).c_str());
    std::fflush(stdout);
  }

  std::printf("\nShape check: int8 matches float32 within noise (Table IV's latency numbers\n");
  std::printf("therefore price the *same* defense quality); int4 begins to degrade the SR\n");
  std::printf("output and with it the recovered accuracy.\n");
  return 0;
}
