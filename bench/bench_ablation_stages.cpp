// Ablation: contribution of each defense stage (extends Table III).
//
// DESIGN.md calls out the pipeline composition (JPEG -> wavelet -> SR) as a
// design choice; this bench isolates each stage's contribution by evaluating
// all four on/off combinations of {JPEG, wavelet} for one interpolation and
// one SESR upscaler, under PGD.
#include <cstdio>

#include "bench/bench_util.h"

using namespace sesr;

int main() {
  const bench::BenchConfig config = bench::BenchConfig::from_env();
  bench::print_header("ABLATION: defense stage contributions (PGD, ResNet-50 analogue)",
                      config);

  const data::ShapesTexDataset dataset = bench::make_shapes_dataset(config);
  auto classifier = bench::trained_classifier("ResNet-50", config);
  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> indices = bench::evaluation_indices(*classifier, config);
  std::printf("%zu evaluation images\n\n", indices.size());

  attacks::Pgd pgd;
  const std::vector<int64_t> labels = dataset.labels_at(indices);
  const Tensor adversarial = evaluator.craft_adversarial(dataset, indices, pgd);
  const float undefended = evaluator.accuracy_on(adversarial, labels, nullptr);
  std::printf("no defense at all: %.2f%%\n\n", undefended);

  std::printf("%-18s %-8s %-9s %-12s\n", "upscaler", "JPEG", "wavelet", "robust-acc%");
  std::printf("------------------------------------------------------\n");
  for (const char* upscaler : {"Nearest Neighbor", "SESR-M2"}) {
    for (const bool jpeg : {false, true}) {
      for (const bool wavelet : {false, true}) {
        core::DefenseOptions opts;
        opts.use_jpeg = jpeg;
        opts.use_wavelet = wavelet;
        auto defense = bench::make_defense(upscaler, config, opts);
        const float acc = evaluator.accuracy_on(adversarial, labels, defense.get());
        std::printf("%-18s %-8s %-9s %-12s\n", upscaler, jpeg ? "on" : "off",
                    wavelet ? "on" : "off", bench::fixed(acc).c_str());
        std::fflush(stdout);
      }
    }
  }

  std::printf("\nShape check: each stage contributes; the full pipeline (JPEG on, wavelet on,\n");
  std::printf("deep SR) is the strongest configuration — the composition the paper deploys.\n");
  return 0;
}
