// Quantised serving: the int8 runtime backend vs fp32, single thread.
//
// The paper deploys collapsed SESR as int8 on an Ethos-U55; this bench
// measures the repo's executed-integer-arithmetic version of that story on
// the host CPU: for each SR network, calibrate an int8 artifact from
// representative batches, compile fp32 and int8 plans of the same module,
// verify fidelity (PSNR vs the fp32 output, max deviation from the
// fake-quant gold model in output LSBs), then measure back-to-back
// single-image inference throughput through both plans on one serving
// thread (SESR_NUM_THREADS=1: kernel arithmetic is the variable, not the
// pool).
//
// Since the copy-and-patch tier landed, each net also compiles a third plan
// under SESR_KERNEL_VARIANT=jit (when the JIT is available in-process) and
// reports its throughput plus the compile-side counters (jit_ops,
// jit_compile_ms, jit_code_bytes); jit outputs are bit-exact vs the int8
// plan by construction, enforced here as a hard check.
//
// Full mode gates on the acceptance targets: >= 1.8x int8-over-fp32
// throughput for collapsed SESR-M5 (raised from 1.5x when the explicit
// VNNI int8 kernels landed — the autovec floor), and a jit-over-int8
// single-thread latency win (> 1.0x) on the same net when the JIT tier is
// available. SESR_BENCH_FAST=1 shrinks the image and
// the timing windows and gates on fidelity only (CI smoke). Emits
// BENCH_int8_serving.json (images/sec, PSNR) either way.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/metrics.h"
#include "models/models.h"
#include "quant/quant.h"
#include "runtime/jit/jit.h"
#include "runtime/runtime.h"
#include "tensor/simd/dispatch.h"

using namespace sesr;
using Clock = std::chrono::steady_clock;

namespace {

double measure_imgs_per_sec(double seconds, const std::function<void()>& work,
                            std::vector<double>& latencies_ms) {
  work();  // warm up buffers and the workspace arena
  latencies_ms.clear();
  latencies_ms.reserve(4096);
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
  int64_t count = 0;
  for (;;) {
    const Clock::time_point begin = Clock::now();
    if (begin >= deadline) break;
    work();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - begin).count());
    ++count;
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(count) / elapsed;
}

}  // namespace

int main() {
  // Pin the kernel pool to one worker *before* any parallel_for call: this
  // bench compares kernel arithmetic, not thread scaling.
  setenv("SESR_NUM_THREADS", "1", 1);

  const bool fast = bench::fast_mode();
  const int64_t size = fast ? 32 : 64;
  const double seconds = fast ? 0.25 : 1.5;

  std::printf("\n================================================================================\n");
  std::printf("INT8 SERVING: quantised runtime backend vs fp32, single thread\n");
  std::printf("single-image x2 requests, input [1, 3, %lld, %lld], %s timing windows\n",
              static_cast<long long>(size), static_cast<long long>(size),
              fast ? "smoke-scale" : "full");
  std::printf("================================================================================\n\n");

  struct Row {
    std::string label;
    std::unique_ptr<nn::Module> net;
    bool gates = false;  ///< carries the full-mode >= 1.8x throughput gate
  };
  std::vector<Row> rows;
  {
    auto m5 = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
    Rng rng(5);
    m5->init_weights(rng);
    rows.push_back({"SESR-M5", std::move(m5), true});
  }
  {
    auto xl = std::make_unique<models::Sesr>(models::SesrConfig::xl(),
                                             models::Sesr::Form::kInference);
    Rng rng(6);
    xl->init_weights(rng);
    rows.push_back({"SESR-XL", std::move(xl), false});
  }
  {
    auto fsrcnn = std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper());
    Rng rng(7);
    fsrcnn->init_weights(rng);
    rows.push_back({"FSRCNN", std::move(fsrcnn), false});
  }
  {
    auto edsr = std::make_unique<models::Edsr>(models::EdsrConfig::base_repo());
    Rng rng(8);
    edsr->init_weights(rng);
    rows.push_back({"EDSR-base", std::move(edsr), false});
  }

  const Shape shape{1, 3, size, size};
  std::vector<Tensor> calibration;
  {
    Rng rng(9);
    for (int i = 0; i < 4; ++i) calibration.push_back(Tensor::rand(shape, rng));
  }
  Rng probe_rng(10);
  const Tensor probe = Tensor::rand(shape, probe_rng);

  const bool jit = runtime::jit::available();
  bench::BenchJson json("int8_serving");
  json.set_string("kernel_variant", simd::variant_name(simd::active_variant()));
  json.set("kernel_variant_forced", simd::variant_forced() ? 1.0 : 0.0);
  json.set("jit_available", jit ? 1.0 : 0.0);
  std::printf("%-10s | %-14s %-14s %-9s | %-14s %-7s | %-10s %-10s\n", "model",
              "fp32 img/s", "int8 img/s", "speedup", "jit img/s", "jit x",
              "PSNR (dB)", "ref (LSB)");
  std::printf("--------------------------------------------------------------------------------\n");

  bool fidelity_ok = true;
  bool arena_ok = true;
  bool jit_exact_ok = true;
  double gate_speedup = 0.0;
  double gate_jit_speedup = 0.0;
  for (Row& row : rows) {
    const auto artifact = quant::QuantizedModel::calibrate(*row.net, shape, calibration);
    const auto fp32_plan = runtime::Program::compile(*row.net, shape);
    const auto int8_plan = runtime::Program::compile_int8(*row.net, shape, artifact);
    runtime::Session fp32_session(fp32_plan), int8_session(int8_plan);

    // Third plan: the same module compiled under the copy-and-patch tier.
    // Flip the knob only around the compile — tier choice is a compile-time
    // property of the plan, so the int8 row above keeps its own stamp.
    std::shared_ptr<const runtime::Program> jit_plan;
    if (jit) {
      const char* prev = getenv("SESR_KERNEL_VARIANT");
      const std::string saved = prev ? prev : "";
      setenv("SESR_KERNEL_VARIANT", "jit", 1);
      jit_plan = runtime::Program::compile_int8(*row.net, shape, artifact);
      if (prev)
        setenv("SESR_KERNEL_VARIANT", saved.c_str(), 1);
      else
        unsetenv("SESR_KERNEL_VARIANT");
    }

    const Tensor fp32_out = fp32_session.run(probe);
    const Tensor int8_out = int8_session.run(probe);
    const Tensor reference = quant::simulate_fake_quant(*row.net, artifact, probe);
    const double psnr = data::psnr(fp32_out, int8_out);
    const double lsb = static_cast<double>(int8_out.max_abs_diff(reference)) /
                       artifact.steps().back().out.scale;
    if (lsb > 1.001) fidelity_ok = false;

    Tensor fp32_dst(fp32_plan->output_shape()), int8_dst(int8_plan->output_shape());
    std::vector<double> fp32_latencies, int8_latencies;
    const double fp32_rate = measure_imgs_per_sec(
        seconds, [&] { fp32_session.run_into(probe, fp32_dst); }, fp32_latencies);
    const double int8_rate = measure_imgs_per_sec(
        seconds, [&] { int8_session.run_into(probe, int8_dst); }, int8_latencies);
    const bench::LatencySummary fp32_summary = bench::summarize_latency(fp32_latencies);
    const bench::LatencySummary int8_summary = bench::summarize_latency(int8_latencies);
    const double speedup = int8_rate / fp32_rate;
    if (row.gates) gate_speedup = speedup;

    double jit_rate = 0.0, jit_speedup = 0.0;
    if (jit_plan != nullptr) {
      runtime::Session jit_session(jit_plan);
      // Hard fidelity check: the jit plan must be bit-exact vs the int8 plan
      // (per-op fallback and edge rows share the base tier's arithmetic).
      if (jit_session.run(probe).max_abs_diff(int8_out) != 0.0f) jit_exact_ok = false;
      Tensor jit_dst(jit_plan->output_shape());
      std::vector<double> jit_latencies;
      jit_rate = measure_imgs_per_sec(
          seconds, [&] { jit_session.run_into(probe, jit_dst); }, jit_latencies);
      jit_speedup = jit_rate / int8_rate;
      if (row.gates) gate_jit_speedup = jit_speedup;
      const std::string key = bench::json_key(row.label);
      json.set(key + ".int8_jit_imgs_per_sec", jit_rate);
      json.set(key + ".jit_speedup_vs_int8", jit_speedup);
      json.set(key + ".jit_ops", static_cast<double>(jit_plan->jit_ops()));
      json.set(key + ".jit_compile_ms", jit_plan->jit_compile_ms());
      json.set(key + ".jit_code_bytes", static_cast<double>(jit_plan->jit_code_bytes()));
      bench::set_latency_metrics(json, key + ".int8_jit",
                                 bench::summarize_latency(jit_latencies));
    }

    std::printf("%-10s | %-14.1f %-14.1f %-9s | %-14.1f %-7s | %-10.2f %-10.2f\n",
                row.label.c_str(), fp32_rate, int8_rate,
                (bench::fixed(speedup) + "x").c_str(), jit_rate,
                jit_plan != nullptr ? (bench::fixed(jit_speedup) + "x").c_str() : "n/a",
                psnr, lsb);
    std::fflush(stdout);

    const std::string key = bench::json_key(row.label);
    json.set(key + ".fp32_imgs_per_sec", fp32_rate);
    json.set(key + ".int8_imgs_per_sec", int8_rate);
    json.set(key + ".speedup", speedup);
    json.set(key + ".psnr_int8_vs_fp32_db", psnr);
    json.set(key + ".max_ref_deviation_lsb", lsb);
    bench::set_latency_metrics(json, key + ".fp32", fp32_summary);
    bench::set_latency_metrics(json, key + ".int8", int8_summary);
    // Memory-planner metrics: the int8 program's planned arena peak, its
    // one-buffer-per-tensor baseline, and what the pass pipeline fused.
    if (int8_plan->peak_arena_bytes() > int8_plan->sum_buffer_bytes() ||
        fp32_plan->peak_arena_bytes() > fp32_plan->sum_buffer_bytes())
      arena_ok = false;
    json.set(key + ".peak_arena_bytes", static_cast<double>(int8_plan->peak_arena_bytes()));
    json.set(key + ".sum_buffer_bytes", static_cast<double>(int8_plan->sum_buffer_bytes()));
    json.set(key + ".fp32_peak_arena_bytes",
             static_cast<double>(fp32_plan->peak_arena_bytes()));
    json.set(key + ".fused_activations",
             static_cast<double>(int8_plan->stats().fused_activations));
    json.set(key + ".in_place_elected",
             static_cast<double>(int8_plan->stats().in_place_elected));
  }

  json.set("gate.speedup_sesr_m5", gate_speedup);
  json.set("gate.threshold", 1.8);
  json.set("gate.arena_peak_le_sum", arena_ok ? 1.0 : 0.0);
  json.set("gate.jit_speedup_sesr_m5", gate_jit_speedup);
  json.set("gate.jit_exact", jit_exact_ok ? 1.0 : 0.0);
  json.write();

  std::printf("\n-> fidelity: every net within 1 LSB of the fake-quant gold model [%s]\n",
              fidelity_ok ? "PASS" : "FAIL");
  std::printf("-> arena peak <= sum-of-buffers for every program [%s]\n",
              arena_ok ? "PASS" : "FAIL");
  std::printf("-> SESR-M5 int8-over-fp32 single-thread speedup: %.2fx (target >= 1.8x) [%s]\n",
              gate_speedup, gate_speedup >= 1.8 ? "PASS" : "FAIL");
  if (jit) {
    std::printf("-> jit plans bit-exact vs int8 plans for every net [%s]\n",
                jit_exact_ok ? "PASS" : "FAIL");
    std::printf("-> SESR-M5 jit-over-int8 single-thread latency win: %.2fx (target > 1.0x) [%s]\n",
                gate_jit_speedup, gate_jit_speedup > 1.0 ? "PASS" : "FAIL");
  }
  if (!fidelity_ok || !arena_ok || !jit_exact_ok) return 1;
  // Smoke mode gates on fidelity only: sub-second windows on shared CI
  // runners are too noisy for a hard throughput ratio.
  if (fast) return 0;
  if (gate_speedup < 1.8) return 1;
  // The jit latency gate binds only where the tier exists in-process.
  return !jit || gate_jit_speedup > 1.0 ? 0 : 1;
}
