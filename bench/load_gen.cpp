#include "bench/load_gen.h"

#include <random>
#include <thread>

namespace sesr::bench {

OpenLoopResult run_open_loop(const OpenLoopOptions& options,
                             const std::function<void(std::chrono::milliseconds)>& submit) {
  using Clock = std::chrono::steady_clock;
  std::mt19937_64 arrivals(options.seed);
  std::exponential_distribution<double> interarrival(options.rate_per_sec);

  OpenLoopResult result;
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::microseconds(static_cast<int64_t>(options.seconds * 1e6));
  Clock::time_point next = start;
  while (next < end) {
    std::this_thread::sleep_until(next);
    submit(options.deadline);
    ++result.offered;
    next += std::chrono::microseconds(static_cast<int64_t>(interarrival(arrivals) * 1e6));
  }
  result.elapsed_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.offered_per_sec =
      result.elapsed_seconds > 0.0 ? static_cast<double>(result.offered) / result.elapsed_seconds
                                   : 0.0;
  return result;
}

}  // namespace sesr::bench
