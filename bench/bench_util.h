// Shared infrastructure for the table/figure benches.
//
// Every bench trains (or loads from the checkpoint cache) the same
// classifiers and SR networks, evaluates on the same seeded datasets, and
// prints paper-reference values next to measured ones. Delete ./sesr_cache
// (or point SESR_CACHE_DIR elsewhere) to force retraining.
//
// Scale knobs: set SESR_BENCH_FAST=1 for a quick smoke-scale run (smaller
// training sets and evaluation pools; the qualitative shapes still hold).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "models/models.h"
#include "attacks/attacks.h"

namespace sesr::bench {

/// Experiment scale shared by all benches.
struct BenchConfig {
  int64_t image_size = 16;      ///< LR classification resolution (paper: 299)
  int64_t num_classes = 10;
  int64_t eval_count = 192;     ///< evaluation images per classifier (paper: 5000)
  int64_t selection_pool = 4096;

  int64_t clf_train_size = 2048;
  int clf_epochs = 15;
  float clf_lr = 5e-3f;

  int64_t sr_hr_size = 32;      ///< HR patch size for SR training (LR = 16)
  int64_t sr_train_size = 1536;
  int sr_epochs = 8;
  float sr_lr = 1e-3f;
  int64_t sr_val_first = 8000;
  int64_t sr_val_count = 64;

  uint64_t data_seed = 1;
  uint64_t div2k_seed = 2;

  /// Defaults scaled down when SESR_BENCH_FAST=1.
  static BenchConfig from_env();
};

/// SESR_BENCH_FAST through the typed config layer: true = smoke-scale run
/// (benches record throughput but only gate correctness).
[[nodiscard]] bool fast_mode();

/// Classifier trained on ShapesTex (checkpoint-cached). `label` must be one
/// of the classifier_zoo labels.
std::shared_ptr<models::Classifier> trained_classifier(const std::string& label,
                                                       const BenchConfig& config);

/// SR network trained on SyntheticDiv2k at repo scale (checkpoint-cached).
/// SESR labels train the overparameterised form and return the collapsed
/// inference network, exactly as deployed in the paper.
std::shared_ptr<nn::Module> trained_sr_network(const std::string& label,
                                               const BenchConfig& config);

/// Defense pipeline around a trained SR network or interpolation.
/// `sr_label` is a zoo label, or "Nearest Neighbor" / "Bilinear" / "Bicubic".
std::shared_ptr<core::DefensePipeline> make_defense(const std::string& sr_label,
                                                    const BenchConfig& config,
                                                    const core::DefenseOptions& opts = {});

/// The evaluation indices for a classifier: correctly-classified images from
/// beyond the training range (the paper's 100%-top-1 selection protocol).
std::vector<int64_t> evaluation_indices(models::Classifier& classifier,
                                        const BenchConfig& config);

/// Dataset instances for the configured scale.
data::ShapesTexDataset make_shapes_dataset(const BenchConfig& config);
data::SyntheticDiv2k make_div2k_dataset(const BenchConfig& config);

/// Table formatting helpers.
void print_header(const std::string& title, const BenchConfig& config);
std::string fixed(double value, int precision = 2);

/// Lowercased, underscore-separated form of a table label ("SESR-M5" ->
/// "sesr_m5") for use as a BenchJson metric key prefix.
std::string json_key(std::string label);

/// Machine-readable bench output. Benches record flat metrics
/// ("sesr_m5.int8_imgs_per_sec") and write() emits BENCH_<name>.json into
/// SESR_BENCH_JSON_DIR (default: the working directory), so CI and tooling
/// can track the performance trajectory across commits without parsing
/// stdout tables.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  void set(const std::string& metric, double value);
  /// String-valued metric (e.g. "kernel_variant": "avx512vnni"). The value
  /// is emitted as a JSON string; it must not contain quotes or backslashes.
  void set_string(const std::string& metric, const std::string& value);

  /// Write BENCH_<name>.json (insertion order preserved); returns the path.
  std::string write() const;

 private:
  struct Metric {
    std::string name;
    double number = 0.0;
    bool is_string = false;
    std::string text;
  };
  std::string name_;
  std::vector<Metric> metrics_;
};

/// Exact order statistics over a set of per-request latency samples. The
/// serving benches record one sample per inference and report the tail, not
/// just mean throughput — mean-only numbers hide exactly the latency spikes
/// an SLO cares about.
struct LatencySummary {
  int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Summarize samples (milliseconds; taken by value — summarizing sorts).
/// Percentiles use the nearest-rank convention; all zeros when empty.
LatencySummary summarize_latency(std::vector<double> samples_ms);

/// Record a summary into `json` as <prefix>.p50_ms / .p95_ms / .p99_ms /
/// .mean_ms / .max_ms.
void set_latency_metrics(BenchJson& json, const std::string& prefix,
                         const LatencySummary& summary);

}  // namespace sesr::bench
