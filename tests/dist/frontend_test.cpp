// End-to-end distributed tier: a real Frontend routing over unix sockets to
// real spawned sesr_shard processes (LocalCluster). Covers routing and
// bit-exactness vs an in-process reference, stats over the heartbeat wire,
// backpressure, SIGKILL death + work-steal + recovery, SIGSTOP (hung shard)
// heartbeat detection, and tile-split over the wire.
#include "dist/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/process.h"
#include "dist/shard.h"
#include "models/upscaler.h"
#include "serve/stats_json.h"
#include "tensor/rng.h"

namespace sesr::dist {
namespace {

using serve::ServeReply;
using serve::ServeStatus;

Tensor random_image(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

/// In-process reference identical (by the determinism contract) to what the
/// shard processes serve for "default=sesr_m5".
std::unique_ptr<models::NetworkUpscaler> reference_upscaler() {
  return std::make_unique<models::NetworkUpscaler>("SESR-M5",
                                                   build_network(parse_model_spec("default=sesr_m5")));
}

void expect_bit_exact(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << what << " diverges at flat index " << i;
  }
}

LocalCluster::Options small_cluster(int shards) {
  LocalCluster::Options options;
  options.shard_binary = shard_binary_path();  // build-tree sesr_shard
  options.shards = shards;
  options.workers_per_shard = 1;
  options.max_batch = 2;
  options.window = 8;
  return options;
}

TEST(DistFrontend, RoutesCompletesAndMatchesReference) {
  LocalCluster cluster(small_cluster(2));
  Frontend frontend(cluster.frontend_options());
  auto reference = reference_upscaler();

  std::vector<Tensor> images;
  std::vector<serve::ServeFuture> futures;
  for (int i = 0; i < 6; ++i) {
    // Varied shapes exercise different ring buckets (and both shards with
    // overwhelming probability).
    images.push_back(random_image(Shape({1, 3, 5 + i, 4 + 2 * i}), 100 + i));
    futures.push_back(frontend.submit(images.back()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.error;
    EXPECT_EQ(reply.model_version, 1);
    expect_bit_exact(reply.output, reference->upscale(images[i]),
                     "request " + std::to_string(i));
  }

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.shard_deaths, 0);
  EXPECT_EQ(frontend.alive_shards().size(), 2u);
  frontend.stop();
}

TEST(DistFrontend, UnknownModelAnswersErrorNotSilence) {
  LocalCluster cluster(small_cluster(1));
  Frontend frontend(cluster.frontend_options());
  serve::Server::SubmitOptions options;
  options.model = "no-such-model";
  ServeReply reply = frontend.submit(random_image(Shape({3, 4, 4}), 1), options).get();
  EXPECT_EQ(reply.status, ServeStatus::kError);
  EXPECT_FALSE(reply.error.empty());
}

TEST(DistFrontend, HeartbeatCarriesParseableShardStats) {
  LocalCluster::Options cluster_options = small_cluster(1);
  LocalCluster cluster(cluster_options);
  Frontend::Options options = cluster.frontend_options();
  options.heartbeat_interval = std::chrono::milliseconds(20);
  Frontend frontend(options);

  ASSERT_TRUE(frontend.submit(random_image(Shape({3, 4, 4}), 2)).get().ok());

  // Wait for a pong that has seen the completed request.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  serve::ServerStats shard_stats;
  bool seen = false;
  while (!seen && std::chrono::steady_clock::now() < deadline) {
    const FrontendStats stats = frontend.stats();
    for (const auto& [name, info] : stats.shards) {
      if (info.stats_json.empty()) continue;
      shard_stats = serve::server_stats_from_json(info.stats_json);
      if (shard_stats.completed >= 1) seen = true;
    }
    if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(seen) << "no pong with shard stats arrived";
  EXPECT_GE(shard_stats.submitted, 1);
  EXPECT_TRUE(shard_stats.tenants.count(serve::kDefaultTenant));
  frontend.stop();
}

TEST(DistFrontend, TrySubmitRefusesWhenWindowIsFullAndNeverLosesAccepted) {
  LocalCluster::Options cluster_options = small_cluster(1);
  cluster_options.window = 2;  // tiny window so refusals actually happen
  LocalCluster cluster(cluster_options);
  Frontend frontend(cluster.frontend_options());

  std::atomic<int> answered{0};
  const Tensor image = random_image(Shape({3, 6, 6}), 3);
  int accepted = 0;
  const int attempts = 64;
  for (int i = 0; i < attempts; ++i) {
    if (frontend.try_submit(image, {}, [&](ServeReply reply) {
          ASSERT_TRUE(reply.ok()) << reply.error;
          answered.fetch_add(1);
        })) {
      ++accepted;
    }
  }
  // Every accepted request gets exactly one answer; refusals are counted.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (answered.load() < accepted && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(answered.load(), accepted);
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.rejected, attempts - accepted);
  EXPECT_GT(accepted, 0);
  frontend.stop();
  EXPECT_EQ(answered.load(), accepted) << "stop() must not invent or drop completions";
}

TEST(DistFrontend, SigkillWorkStealLosesNothingAndRecoveryRejoins) {
  LocalCluster cluster(small_cluster(2));
  Frontend frontend(cluster.frontend_options());

  const int total = 40;
  std::atomic<int> ok{0}, failed{0};
  std::vector<Tensor> images;
  for (int i = 0; i < total; ++i) images.push_back(random_image(Shape({3, 6, 6}), 200 + i));

  for (int i = 0; i < total; ++i) {
    frontend.submit_async(images[i], {}, [&](ServeReply reply) {
      (reply.ok() ? ok : failed).fetch_add(1);
    });
    if (i == total / 3) cluster.kill_shard(0);  // mid-stream crash
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (ok.load() + failed.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(ok.load() + failed.load(), total) << "a request was dropped on shard death";
  // Zero loss: the survivor answers everything the dead shard had in flight.
  EXPECT_EQ(ok.load(), total);
  EXPECT_EQ(failed.load(), 0);

  FrontendStats stats = frontend.stats();
  EXPECT_GE(stats.shard_deaths, 1);
  EXPECT_EQ(frontend.alive_shards().size(), 1u);

  // Recovery: respawn on the same socket, rejoin the ring, serve again.
  frontend.add_shard(cluster.respawn_shard(0));
  EXPECT_EQ(frontend.alive_shards().size(), 2u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(frontend.submit(random_image(Shape({3, 5 + i, 7}), 300 + i)).get().ok());
  }
  frontend.stop();
}

TEST(DistFrontend, SigstoppedShardIsCaughtByHeartbeatAndItsWorkIsStolen) {
  LocalCluster cluster(small_cluster(2));
  Frontend::Options options = cluster.frontend_options();
  options.heartbeat_interval = std::chrono::milliseconds(25);
  options.heartbeat_misses = 3;
  Frontend frontend(options);

  // Freeze shard 0: its socket stays open (EOF never fires) — only the
  // heartbeat path can declare it dead.
  cluster.process(0).sigstop();

  const int total = 24;
  std::atomic<int> ok{0}, answered{0};
  for (int i = 0; i < total; ++i) {
    // Varied buckets so a fair share routes at the frozen shard.
    frontend.submit_async(random_image(Shape({3, 4 + i % 6, 6}), 400 + i), {},
                          [&](ServeReply reply) {
                            if (reply.ok()) ok.fetch_add(1);
                            answered.fetch_add(1);
                          });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (answered.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cluster.process(0).sigcont();  // unfreeze before teardown either way
  ASSERT_EQ(answered.load(), total) << "hung shard held requests hostage";
  EXPECT_EQ(ok.load(), total);
  EXPECT_GE(frontend.stats().shard_deaths, 1);
  frontend.stop();
}

TEST(DistFrontend, TileSplitOverTheWireIsBitExact) {
  LocalCluster cluster(small_cluster(2));
  Frontend::Options options = cluster.frontend_options();
  options.tile_threshold_pixels = 16 * 16;  // everything >= 16x16 splits
  options.tile_max = 2;
  Frontend frontend(options);
  auto reference = reference_upscaler();

  // Non-divisible height; well over the threshold.
  const Tensor large = random_image(Shape({1, 3, 33, 20}), 7);
  ServeReply reply = frontend.submit(large).get();
  ASSERT_TRUE(reply.ok()) << reply.error;
  expect_bit_exact(reply.output, reference->upscale(large), "tiled 33x20");

  // Below threshold: the plain path, same instance.
  const Tensor small = random_image(Shape({1, 3, 8, 8}), 8);
  ServeReply small_reply = frontend.submit(small).get();
  ASSERT_TRUE(small_reply.ok()) << small_reply.error;
  expect_bit_exact(small_reply.output, reference->upscale(small), "plain 8x8");

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.tiled, 1);
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  frontend.stop();
}

TEST(DistFrontend, StopCompletesOutstandingWithError) {
  LocalCluster cluster(small_cluster(1));
  auto frontend = std::make_unique<Frontend>(cluster.frontend_options());
  // Freeze the only shard so a request is pinned in flight, then stop.
  std::atomic<bool> done{false};
  ServeStatus status = ServeStatus::kOk;
  cluster.process(0).sigstop();
  frontend->submit_async(random_image(Shape({3, 4, 4}), 9), {}, [&](ServeReply reply) {
    status = reply.status;
    done.store(true);
  });
  frontend->stop();
  cluster.process(0).sigcont();
  EXPECT_TRUE(done.load()) << "stop() must complete outstanding requests";
  EXPECT_EQ(status, ServeStatus::kError);
}

}  // namespace
}  // namespace sesr::dist
