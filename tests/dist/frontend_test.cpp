// End-to-end distributed tier: a real Frontend routing over unix sockets to
// real spawned sesr_shard processes (LocalCluster). Covers routing and
// bit-exactness vs an in-process reference, stats over the heartbeat wire,
// backpressure, SIGKILL death + work-steal + recovery, SIGSTOP (hung shard)
// heartbeat detection, and tile-split over the wire.
#include "dist/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/process.h"
#include "dist/shard.h"
#include "models/upscaler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/stats_json.h"
#include "tensor/rng.h"

namespace sesr::dist {
namespace {

using serve::ServeReply;
using serve::ServeStatus;

Tensor random_image(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

/// In-process reference identical (by the determinism contract) to what the
/// shard processes serve for "default=sesr_m5".
std::unique_ptr<models::NetworkUpscaler> reference_upscaler() {
  return std::make_unique<models::NetworkUpscaler>("SESR-M5",
                                                   build_network(parse_model_spec("default=sesr_m5")));
}

void expect_bit_exact(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << what << " diverges at flat index " << i;
  }
}

LocalCluster::Options small_cluster(int shards) {
  LocalCluster::Options options;
  options.shard_binary = shard_binary_path();  // build-tree sesr_shard
  options.shards = shards;
  options.workers_per_shard = 1;
  options.max_batch = 2;
  options.window = 8;
  return options;
}

TEST(DistFrontend, RoutesCompletesAndMatchesReference) {
  LocalCluster cluster(small_cluster(2));
  Frontend frontend(cluster.frontend_options());
  auto reference = reference_upscaler();

  std::vector<Tensor> images;
  std::vector<serve::ServeFuture> futures;
  for (int i = 0; i < 6; ++i) {
    // Varied shapes exercise different ring buckets (and both shards with
    // overwhelming probability).
    images.push_back(random_image(Shape({1, 3, 5 + i, 4 + 2 * i}), 100 + i));
    futures.push_back(frontend.submit(images.back()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.error;
    EXPECT_EQ(reply.model_version, 1);
    expect_bit_exact(reply.output, reference->upscale(images[i]),
                     "request " + std::to_string(i));
  }

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.submitted, 6);
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.shard_deaths, 0);
  EXPECT_EQ(frontend.alive_shards().size(), 2u);
  frontend.stop();
}

TEST(DistFrontend, UnknownModelAnswersErrorNotSilence) {
  LocalCluster cluster(small_cluster(1));
  Frontend frontend(cluster.frontend_options());
  serve::Server::SubmitOptions options;
  options.model = "no-such-model";
  ServeReply reply = frontend.submit(random_image(Shape({3, 4, 4}), 1), options).get();
  EXPECT_EQ(reply.status, ServeStatus::kError);
  EXPECT_FALSE(reply.error.empty());
}

TEST(DistFrontend, HeartbeatCarriesParseableShardStats) {
  LocalCluster::Options cluster_options = small_cluster(1);
  LocalCluster cluster(cluster_options);
  Frontend::Options options = cluster.frontend_options();
  options.heartbeat_interval = std::chrono::milliseconds(20);
  Frontend frontend(options);

  ASSERT_TRUE(frontend.submit(random_image(Shape({3, 4, 4}), 2)).get().ok());

  // Wait for a pong that has seen the completed request.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  serve::ServerStats shard_stats;
  bool seen = false;
  while (!seen && std::chrono::steady_clock::now() < deadline) {
    const FrontendStats stats = frontend.stats();
    for (const auto& [name, info] : stats.shards) {
      if (info.stats_json.empty()) continue;
      shard_stats = serve::server_stats_from_json(info.stats_json);
      if (shard_stats.completed >= 1) seen = true;
    }
    if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(seen) << "no pong with shard stats arrived";
  EXPECT_GE(shard_stats.submitted, 1);
  EXPECT_TRUE(shard_stats.tenants.count(serve::kDefaultTenant));
  frontend.stop();
}

TEST(DistFrontend, TrySubmitRefusesWhenWindowIsFullAndNeverLosesAccepted) {
  LocalCluster::Options cluster_options = small_cluster(1);
  cluster_options.window = 2;  // tiny window so refusals actually happen
  LocalCluster cluster(cluster_options);
  Frontend frontend(cluster.frontend_options());

  std::atomic<int> answered{0};
  const Tensor image = random_image(Shape({3, 6, 6}), 3);
  int accepted = 0;
  const int attempts = 64;
  for (int i = 0; i < attempts; ++i) {
    if (frontend.try_submit(image, {}, [&](ServeReply reply) {
          ASSERT_TRUE(reply.ok()) << reply.error;
          answered.fetch_add(1);
        })) {
      ++accepted;
    }
  }
  // Every accepted request gets exactly one answer; refusals are counted.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (answered.load() < accepted && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(answered.load(), accepted);
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.rejected, attempts - accepted);
  EXPECT_GT(accepted, 0);
  frontend.stop();
  EXPECT_EQ(answered.load(), accepted) << "stop() must not invent or drop completions";
}

TEST(DistFrontend, SigkillWorkStealLosesNothingAndRecoveryRejoins) {
  LocalCluster cluster(small_cluster(2));
  Frontend frontend(cluster.frontend_options());

  const int total = 40;
  std::atomic<int> ok{0}, failed{0};
  std::vector<Tensor> images;
  for (int i = 0; i < total; ++i) images.push_back(random_image(Shape({3, 6, 6}), 200 + i));

  for (int i = 0; i < total; ++i) {
    frontend.submit_async(images[i], {}, [&](ServeReply reply) {
      (reply.ok() ? ok : failed).fetch_add(1);
    });
    if (i == total / 3) cluster.kill_shard(0);  // mid-stream crash
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (ok.load() + failed.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(ok.load() + failed.load(), total) << "a request was dropped on shard death";
  // Zero loss: the survivor answers everything the dead shard had in flight.
  EXPECT_EQ(ok.load(), total);
  EXPECT_EQ(failed.load(), 0);

  FrontendStats stats = frontend.stats();
  EXPECT_GE(stats.shard_deaths, 1);
  EXPECT_EQ(frontend.alive_shards().size(), 1u);

  // Recovery: respawn on the same socket, rejoin the ring, serve again.
  frontend.add_shard(cluster.respawn_shard(0));
  EXPECT_EQ(frontend.alive_shards().size(), 2u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(frontend.submit(random_image(Shape({3, 5 + i, 7}), 300 + i)).get().ok());
  }
  frontend.stop();
}

TEST(DistFrontend, SigstoppedShardIsCaughtByHeartbeatAndItsWorkIsStolen) {
  LocalCluster cluster(small_cluster(2));
  Frontend::Options options = cluster.frontend_options();
  options.heartbeat_interval = std::chrono::milliseconds(25);
  options.heartbeat_misses = 3;
  Frontend frontend(options);

  // Freeze shard 0: its socket stays open (EOF never fires) — only the
  // heartbeat path can declare it dead.
  cluster.process(0).sigstop();

  const int total = 24;
  std::atomic<int> ok{0}, answered{0};
  for (int i = 0; i < total; ++i) {
    // Varied buckets so a fair share routes at the frozen shard.
    frontend.submit_async(random_image(Shape({3, 4 + i % 6, 6}), 400 + i), {},
                          [&](ServeReply reply) {
                            if (reply.ok()) ok.fetch_add(1);
                            answered.fetch_add(1);
                          });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (answered.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cluster.process(0).sigcont();  // unfreeze before teardown either way
  ASSERT_EQ(answered.load(), total) << "hung shard held requests hostage";
  EXPECT_EQ(ok.load(), total);
  EXPECT_GE(frontend.stats().shard_deaths, 1);
  frontend.stop();
}

TEST(DistFrontend, TileSplitOverTheWireIsBitExact) {
  LocalCluster cluster(small_cluster(2));
  Frontend::Options options = cluster.frontend_options();
  options.tile_threshold_pixels = 16 * 16;  // everything >= 16x16 splits
  options.tile_max = 2;
  Frontend frontend(options);
  auto reference = reference_upscaler();

  // Non-divisible height; well over the threshold.
  const Tensor large = random_image(Shape({1, 3, 33, 20}), 7);
  ServeReply reply = frontend.submit(large).get();
  ASSERT_TRUE(reply.ok()) << reply.error;
  expect_bit_exact(reply.output, reference->upscale(large), "tiled 33x20");

  // Below threshold: the plain path, same instance.
  const Tensor small = random_image(Shape({1, 3, 8, 8}), 8);
  ServeReply small_reply = frontend.submit(small).get();
  ASSERT_TRUE(small_reply.ok()) << small_reply.error;
  expect_bit_exact(small_reply.output, reference->upscale(small), "plain 8x8");

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.tiled, 1);
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  frontend.stop();
}

TEST(DistFrontend, TracedClusterEmitsOneNestedTraceAcrossProcesses) {
  // End-to-end tracing acceptance: one trace id travels frontend -> wire ->
  // shard -> session, and merging the frontend's in-memory spans with the
  // trace files the shard processes wrote yields a well-nested tree.
  char trace_dir[] = "/tmp/sesr_trace_XXXXXX";
  ASSERT_NE(mkdtemp(trace_dir), nullptr);
  setenv("SESR_TRACE", "1", 1);
  setenv("SESR_TRACE_DIR", trace_dir, 1);  // shards inherit both
  obs::refresh_trace_config();
  obs::clear_trace_buffers();

  constexpr int kRequests = 4;
  {
    LocalCluster cluster(small_cluster(2));
    Frontend frontend(cluster.frontend_options());
    for (int i = 0; i < kRequests; ++i) {
      // Varied shapes land on different ring buckets (and usually both shards).
      ASSERT_TRUE(frontend.submit(random_image(Shape({1, 3, 5 + i, 4 + 2 * i}), 500 + i)).get().ok());
    }
    frontend.stop();
    // Graceful shutdown (the destructor SIGKILLs): each shard drains and
    // flushes its trace_<pid>.json on the way out.
    for (int i = 0; i < cluster.shards(); ++i) cluster.process(i).terminate();
    for (int i = 0; i < cluster.shards(); ++i) cluster.process(i).wait();
  }
  setenv("SESR_TRACE", "0", 1);
  obs::refresh_trace_config();

  std::vector<obs::SpanRecord> spans = obs::drain_spans();  // frontend side
  int shard_files = 0;
  size_t shard_span_count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    std::ifstream in(entry.path());
    std::ostringstream content;
    content << in.rdbuf();
    // A shard that happened to serve nothing writes a valid empty document.
    const std::vector<obs::SpanRecord> shard_spans = obs::parse_chrome_trace(content.str());
    shard_span_count += shard_spans.size();
    spans.insert(spans.end(), shard_spans.begin(), shard_spans.end());
    ++shard_files;
  }
  EXPECT_EQ(shard_files, 2) << "every shard process writes its trace file";
  EXPECT_GT(shard_span_count, 0u);
  std::filesystem::remove_all(trace_dir);

  for (const std::string& violation : obs::validate_span_nesting(spans)) {
    ADD_FAILURE() << violation;
  }

  std::map<uint64_t, std::vector<const obs::SpanRecord*>> by_trace;
  for (const obs::SpanRecord& span : spans) by_trace[span.trace_id].push_back(&span);
  int request_traces = 0;
  for (const auto& [trace_id, trace_spans] : by_trace) {
    std::set<std::string> names;
    std::set<int32_t> pids;
    std::set<uint64_t> span_ids;
    for (const obs::SpanRecord* span : trace_spans) {
      names.insert(span->name);
      pids.insert(span->pid);
      span_ids.insert(span->span_id);
    }
    if (!names.count("request")) continue;  // not a frontend-rooted trace
    ++request_traces;
    // The same trace id crossed the process boundary ...
    EXPECT_GE(pids.size(), 2u) << "trace " << trace_id << " never left the frontend";
    EXPECT_TRUE(names.count("rpc")) << trace_id;
    EXPECT_TRUE(names.count("server_request")) << trace_id;
    EXPECT_TRUE(names.count("queue_wait")) << trace_id;
    // ... and the shard's root hangs off the frontend's rpc span.
    for (const obs::SpanRecord* span : trace_spans) {
      if (span->name == "server_request") {
        EXPECT_TRUE(span_ids.count(span->parent_span))
            << "server_request in trace " << trace_id << " is not stitched to the frontend";
      }
    }
  }
  EXPECT_EQ(request_traces, kRequests);
  // Batch-machinery spans (parented to the first traced request per batch)
  // showed up somewhere in the run.
  std::set<std::string> all_names;
  for (const obs::SpanRecord& span : spans) all_names.insert(span.name);
  EXPECT_TRUE(all_names.count("session_run"));
  EXPECT_TRUE(all_names.count("reply"));
}

TEST(DistFrontend, FleetMetricsAreExactMergeOfShardRegistries) {
  LocalCluster cluster(small_cluster(2));
  Frontend::Options options = cluster.frontend_options();
  options.heartbeat_interval = std::chrono::milliseconds(20);
  Frontend frontend(options);

  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(frontend.submit(random_image(Shape({1, 3, 4 + i, 6}), 600 + i)).get().ok());
  }

  // Wait until both shards' heartbeats carry post-completion registry
  // snapshots: the fleet view then accounts for every request.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  obs::RegistrySnapshot fleet;
  while (std::chrono::steady_clock::now() < deadline) {
    fleet = frontend.fleet_metrics();
    const auto it = fleet.counters.find("serve.completed");
    if (it != fleet.counters.end() && it->second >= kRequests) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Bit-for-bit on counters: the fleet view of every shard-originated
  // counter equals the sum across the per-shard registry snapshots. Traffic
  // is quiescent, so the shard counters are stable between the two reads.
  std::map<std::string, int64_t> expected;
  int shards_reporting = 0;
  for (const auto& [name, info] : frontend.stats().shards) {
    if (info.metrics_json.empty()) continue;
    ++shards_reporting;
    const obs::RegistrySnapshot shard = obs::RegistrySnapshot::from_json(info.metrics_json);
    for (const auto& [counter, value] : shard.counters) expected[counter] += value;
  }
  EXPECT_EQ(shards_reporting, 2);
  fleet = frontend.fleet_metrics();
  for (const auto& [counter, value] : expected) {
    ASSERT_TRUE(fleet.counters.count(counter)) << counter;
    EXPECT_EQ(fleet.counters.at(counter), value) << counter;
  }
  EXPECT_EQ(expected.at("serve.completed"), kRequests);

  // The frontend's own counters ride in the same view ...
  EXPECT_EQ(fleet.counters.at("frontend.submitted"), kRequests);
  EXPECT_EQ(fleet.counters.at("frontend.completed"), kRequests);
  // ... and the shard latency histograms merged exactly.
  ASSERT_TRUE(fleet.histograms.count("serve.latency_us"));
  EXPECT_EQ(fleet.histograms.at("serve.latency_us").count, kRequests);

  // Both frontend export formats render the fleet view.
  EXPECT_NE(frontend.fleet_metrics_json().find("frontend.submitted"), std::string::npos);
  EXPECT_NE(frontend.fleet_metrics_prometheus().find("sesr_serve_completed_total"),
            std::string::npos);
  frontend.stop();
}

TEST(DistFrontend, StopCompletesOutstandingWithError) {
  LocalCluster cluster(small_cluster(1));
  auto frontend = std::make_unique<Frontend>(cluster.frontend_options());
  // Freeze the only shard so a request is pinned in flight, then stop.
  std::atomic<bool> done{false};
  ServeStatus status = ServeStatus::kOk;
  cluster.process(0).sigstop();
  frontend->submit_async(random_image(Shape({3, 4, 4}), 9), {}, [&](ServeReply reply) {
    status = reply.status;
    done.store(true);
  });
  frontend->stop();
  cluster.process(0).sigcont();
  EXPECT_TRUE(done.load()) << "stop() must complete outstanding requests";
  EXPECT_EQ(status, ServeStatus::kError);
}

}  // namespace
}  // namespace sesr::dist
