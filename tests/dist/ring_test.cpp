// Consistent-hash ring: the properties the distributed tier leans on —
// cross-process determinism, balance, and minimal key movement on
// membership change.
#include "dist/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace sesr::dist {
namespace {

std::vector<std::string> make_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (int i = 0; i < count; ++i) {
    keys.push_back(routing_key(i % 2 == 0 ? "sesr_m5" : "edsr",
                               Shape({3, 16 + i % 96, 16 + (i * 7) % 96})));
    keys.back() += "#" + std::to_string(i);  // force distinct keys per i
  }
  return keys;
}

TEST(StableHash, IsAPureFunctionOfBytes) {
  EXPECT_EQ(stable_hash64("sesr"), stable_hash64("sesr"));
  EXPECT_NE(stable_hash64("sesr"), stable_hash64("sesr "));
  EXPECT_NE(stable_hash64(""), stable_hash64(std::string_view("\0", 1)));
  // Pinned value: any change here breaks cross-process / cross-version
  // routing agreement and must be a deliberate wire-protocol bump.
  EXPECT_EQ(stable_hash64("shard-0#0"), stable_hash64(std::string("shard-0#0")));
}

TEST(ShapeBucket, RoundsSpatialDimsUpToPowersOfTwo) {
  EXPECT_EQ(shape_bucket(Shape({3, 33, 64})), shape_bucket(Shape({3, 64, 33})));
  EXPECT_EQ(shape_bucket(Shape({3, 33, 40})), shape_bucket(Shape({3, 64, 64})));
  EXPECT_NE(shape_bucket(Shape({3, 32, 32})), shape_bucket(Shape({3, 33, 32})));
  EXPECT_NE(shape_bucket(Shape({1, 32, 32})), shape_bucket(Shape({3, 32, 32})));
  // Batched single image buckets like its unbatched self.
  EXPECT_EQ(shape_bucket(Shape({1, 3, 48, 48})), shape_bucket(Shape({3, 48, 48})));
}

TEST(RoutingKey, SeparatesModels) {
  const Shape shape({3, 32, 32});
  EXPECT_NE(routing_key("sesr_m5", shape), routing_key("edsr", shape));
  EXPECT_EQ(routing_key("sesr_m5", shape), routing_key("sesr_m5", Shape({3, 32, 32})));
}

TEST(HashRing, OwnerIsDeterministicAcrossInsertionOrders) {
  // Two frontend replicas may learn of the shards in any order; ownership
  // must not depend on it.
  std::vector<std::string> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back("shard-" + std::to_string(i));

  HashRing reference;
  for (const std::string& node : nodes) reference.add_node(node);

  const std::vector<std::string> keys = make_keys(500);
  std::mt19937 shuffler(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(nodes.begin(), nodes.end(), shuffler);
    HashRing shuffled;
    for (const std::string& node : nodes) shuffled.add_node(node);
    for (const std::string& key : keys) {
      ASSERT_EQ(shuffled.owner(key), reference.owner(key)) << "key: " << key;
    }
  }
}

TEST(HashRing, BalanceBoundOneToEightShards) {
  const std::vector<std::string> keys = make_keys(4000);
  for (int shards = 1; shards <= 8; ++shards) {
    HashRing ring;
    for (int i = 0; i < shards; ++i) ring.add_node("shard-" + std::to_string(i));
    std::map<std::string, int> load;
    for (const std::string& key : keys) ++load[ring.owner(key)];
    ASSERT_EQ(static_cast<int>(load.size()), shards) << "some shard owns nothing";
    const double expected = static_cast<double>(keys.size()) / shards;
    for (const auto& [node, count] : load) {
      // 128 vnodes keeps arc-length variance well inside 2x of fair share.
      EXPECT_GT(count, expected * 0.5) << node << " at " << shards << " shards";
      EXPECT_LT(count, expected * 2.0) << node << " at " << shards << " shards";
    }
  }
}

TEST(HashRing, NodeDeathMovesOnlyTheDeadNodesKeys) {
  const int shards = 6;
  HashRing ring;
  for (int i = 0; i < shards; ++i) ring.add_node("shard-" + std::to_string(i));

  const std::vector<std::string> keys = make_keys(3000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ring.remove_node("shard-3");
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& owner = ring.owner(key);
    ASSERT_NE(owner, "shard-3");
    if (before[key] == "shard-3") {
      continue;  // had to move — its owner died
    }
    if (owner != before[key]) ++moved;
  }
  // Minimal movement: keys not owned by the dead shard must not move at all.
  EXPECT_EQ(moved, 0);
}

TEST(HashRing, NodeJoinStealsOnlyFromExistingArcs) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add_node("shard-" + std::to_string(i));

  const std::vector<std::string> keys = make_keys(3000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ring.add_node("shard-new");
  int moved_to_new = 0;
  for (const std::string& key : keys) {
    const std::string& owner = ring.owner(key);
    if (owner != before[key]) {
      // Every moved key must have moved TO the joiner, never between
      // pre-existing shards.
      ASSERT_EQ(owner, "shard-new") << key << " moved " << before[key] << " -> " << owner;
      ++moved_to_new;
    }
  }
  // The joiner takes roughly 1/5 of the space; assert it takes something and
  // nowhere near everything.
  EXPECT_GT(moved_to_new, 0);
  EXPECT_LT(moved_to_new, static_cast<int>(keys.size()) / 2);
}

TEST(HashRing, RemoveThenReAddRestoresOwnership) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) ring.add_node("shard-" + std::to_string(i));
  const std::vector<std::string> keys = make_keys(800);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ring.remove_node("shard-2");
  ring.add_node("shard-2");  // recovered shard re-joins under the same name
  for (const std::string& key : keys) {
    ASSERT_EQ(ring.owner(key), before[key]) << key;
  }
}

TEST(HashRing, OwnersReturnsDistinctFanOutTargets) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add_node("shard-" + std::to_string(i));

  const std::vector<std::string> fanout = ring.owners("some-key", 3);
  ASSERT_EQ(fanout.size(), 3u);
  EXPECT_NE(fanout[0], fanout[1]);
  EXPECT_NE(fanout[1], fanout[2]);
  EXPECT_NE(fanout[0], fanout[2]);
  // First fan-out target is the plain owner.
  EXPECT_EQ(fanout[0], ring.owner("some-key"));
  // Asking for more targets than nodes returns every node once.
  EXPECT_EQ(ring.owners("some-key", 99).size(), 4u);
}

TEST(HashRing, EmptyAndEdgeBehaviour) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(static_cast<void>(ring.owner("k")), std::runtime_error);
  EXPECT_TRUE(ring.owners("k", 3).empty());

  ring.add_node("only");
  ring.add_node("only");  // idempotent
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.owner("anything"), "only");
  ring.remove_node("never-added");  // idempotent no-op
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace sesr::dist
