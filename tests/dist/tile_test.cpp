// Tile-split + halo exchange: the bit-exactness contract the distributed
// frontend's fan-out path rests on. A stitched tiled upscale must equal
// upscale() on the whole image to the last bit — fp32 and int8, edge tiles,
// non-divisible heights.
#include "dist/tile.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dist/shard.h"
#include "models/upscaler.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sesr::dist {
namespace {

Tensor random_image(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

void expect_bit_exact(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << what << " diverges at flat index " << i;
  }
}

TEST(TilePlan, CoversEveryRowExactlyOnce) {
  for (int64_t height : {1, 2, 3, 7, 16, 37, 64}) {
    for (int tiles : {1, 2, 3, 4, 7}) {
      const TilePlan plan = plan_row_tiles(height, tiles, /*halo=*/3, /*scale=*/2);
      ASSERT_FALSE(plan.tiles.empty());
      ASSERT_LE(static_cast<int64_t>(plan.tiles.size()), std::min<int64_t>(tiles, height));
      int64_t next = 0;
      for (const TileSpec& spec : plan.tiles) {
        ASSERT_EQ(spec.row_begin, next) << "gap or overlap at h=" << height << " t=" << tiles;
        ASSERT_GT(spec.core_rows(), 0);
        // Halos are clamped at the borders and never exceed the request.
        ASSERT_LE(spec.halo_top, std::min<int64_t>(3, spec.row_begin));
        ASSERT_LE(spec.halo_bottom, std::min<int64_t>(3, height - spec.row_end));
        next = spec.row_end;
      }
      ASSERT_EQ(next, height);
      // Rows distribute within +-1.
      int64_t lo = height, hi = 0;
      for (const TileSpec& spec : plan.tiles) {
        lo = std::min(lo, spec.core_rows());
        hi = std::max(hi, spec.core_rows());
      }
      ASSERT_LE(hi - lo, 1);
    }
  }
}

TEST(TilePlan, RejectsDegenerateArguments) {
  EXPECT_THROW(static_cast<void>(plan_row_tiles(0, 2, 1, 2)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(plan_row_tiles(8, 0, 1, 2)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(plan_row_tiles(8, 2, -1, 2)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(plan_row_tiles(8, 2, 1, 0)), std::invalid_argument);
}

TEST(TileExtractStitch, RoundTripsWithIdentityScale) {
  // With scale=1 and a no-op "upscaler", extract+stitch must reassemble the
  // original image exactly — catches off-by-ones independent of any model.
  const Tensor image = random_image(Shape({1, 3, 13, 5}), 21);
  const TilePlan plan = plan_row_tiles(13, 4, /*halo=*/2, /*scale=*/1);
  Tensor out(Shape({1, 3, 13, 5}));
  for (const TileSpec& spec : plan.tiles) {
    const Tensor tile = extract_tile(image, spec);
    ASSERT_EQ(tile.shape(), Shape({1, 3, spec.tile_rows(), 5}));
    stitch_tile(tile, spec, plan, out);
  }
  expect_bit_exact(out, image, "identity reassembly");
}

TEST(ReceptiveField, ConservativeForKnownArchitectures) {
  ModelSpec m5;
  m5.id = "m5";
  m5.arch = "sesr_m5";
  // Collapsed SESR-M5 is two 5x5 plus five 3x3 convs at LR scale: radius 9.
  EXPECT_GE(receptive_field_radius(*build_network(m5), Shape({3, 32, 32})), 9);

  ModelSpec edsr;
  edsr.id = "edsr";
  edsr.arch = "edsr";
  EXPECT_GE(receptive_field_radius(*build_network(edsr), Shape({3, 32, 32})), 9);
}

struct TiledCase {
  std::string arch;
  bool int8 = false;
};

class TiledBitExactTest : public ::testing::TestWithParam<TiledCase> {};

TEST_P(TiledBitExactTest, MatchesWholeImageUpscale) {
  const TiledCase& param = GetParam();
  ModelSpec spec;
  spec.id = "model";
  spec.arch = param.arch;
  spec.seed = 77;

  models::NetworkUpscaler upscaler(param.arch, build_network(spec));
  if (param.int8) {
    Rng calib_rng(spec.seed + 1);
    std::vector<Tensor> batches;
    for (int i = 0; i < 2; ++i) batches.push_back(Tensor::rand({2, 3, 32, 32}, calib_rng));
    upscaler.calibrate_int8(batches);
  }
  const int64_t halo = receptive_field_radius(upscaler.network(), Shape({3, 32, 32}));

  // Non-divisible heights, a height smaller than the tile count, and an
  // even split; edge tiles (clamped halo) occur in every plan.
  struct ShapeCase {
    int64_t height, width;
    int tiles;
  };
  for (const ShapeCase& sc : {ShapeCase{37, 24, 3}, ShapeCase{32, 20, 4}, ShapeCase{3, 16, 8}}) {
    const Tensor image = random_image(Shape({1, 3, sc.height, sc.width}), 91 + sc.height);
    const Tensor whole = upscaler.upscale(image);
    const Tensor tiled = upscale_tiled(upscaler, image, sc.tiles, halo);
    expect_bit_exact(tiled, whole,
                     param.arch + (param.int8 ? "/int8" : "/fp32") + " h=" +
                         std::to_string(sc.height) + " tiles=" + std::to_string(sc.tiles));
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TiledBitExactTest,
                         ::testing::Values(TiledCase{"sesr_m5", false},
                                           TiledCase{"sesr_m5", true},
                                           TiledCase{"edsr", false}, TiledCase{"edsr", true}),
                         [](const ::testing::TestParamInfo<TiledCase>& info) {
                           return info.param.arch + (info.param.int8 ? "_int8" : "_fp32");
                         });

TEST(TiledUpscale, SingleTileIsTheWholeImagePath) {
  ModelSpec spec;
  spec.id = "m";
  spec.arch = "sesr_m5";
  models::NetworkUpscaler upscaler("SESR-M5", build_network(spec));
  const Tensor image = random_image(Shape({1, 3, 12, 12}), 3);
  expect_bit_exact(upscale_tiled(upscaler, image, 1, 9), upscaler.upscale(image), "1 tile");
}

TEST(TiledUpscale, InsufficientHaloActuallyDiverges) {
  // Negative control: if halo < receptive field still matched bit-for-bit,
  // the bit-exact tests above would be vacuous.
  ModelSpec spec;
  spec.id = "m";
  spec.arch = "sesr_m5";
  models::NetworkUpscaler upscaler("SESR-M5", build_network(spec));
  const Tensor image = random_image(Shape({1, 3, 40, 16}), 13);
  const Tensor whole = upscaler.upscale(image);
  const Tensor tiled = upscale_tiled(upscaler, image, 4, /*halo=*/0);
  ASSERT_EQ(tiled.shape(), whole.shape());
  const float* pa = tiled.data();
  const float* pb = whole.data();
  bool any_diff = false;
  for (int64_t i = 0; i < whole.numel() && !any_diff; ++i) any_diff = pa[i] != pb[i];
  EXPECT_TRUE(any_diff) << "halo=0 matched the whole image; bit-exact gates are vacuous";
}

}  // namespace
}  // namespace sesr::dist
