// Wire-format round trips and hostile-input rejection. Every frame a
// frontend or shard ever parses goes through these codecs, so corruption
// must surface as WireError, never as a silent misparse or overread.
#include "dist/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace sesr::dist {
namespace {

Tensor random_image(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

void expect_tensor_eq(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(pa[i], pb[i]) << "element " << i;
}

TEST(WireHeader, RoundTrips) {
  WireHeader header;
  header.type = MessageType::kReply;
  header.request_id = 0x0123456789abcdefULL;
  header.body_bytes = 4096;

  uint8_t bytes[kHeaderBytes];
  encode_header(header, bytes);
  const WireHeader back = decode_header(bytes);
  EXPECT_EQ(back.magic, kWireMagic);
  EXPECT_EQ(back.version, kWireVersion);
  EXPECT_EQ(back.type, MessageType::kReply);
  EXPECT_EQ(back.request_id, header.request_id);
  EXPECT_EQ(back.body_bytes, header.body_bytes);
}

TEST(WireHeader, RejectsBadMagicVersionTypeAndOversizedBody) {
  WireHeader header;
  header.type = MessageType::kPing;
  uint8_t good[kHeaderBytes];
  encode_header(header, good);

  {
    uint8_t bytes[kHeaderBytes];
    std::memcpy(bytes, good, kHeaderBytes);
    bytes[0] ^= 0xff;  // stray client: wrong magic
    EXPECT_THROW(static_cast<void>(decode_header(bytes)), WireError);
  }
  {
    WireHeader wrong = header;
    wrong.version = kWireVersion + 1;  // rolling-upgrade mismatch
    uint8_t bytes[kHeaderBytes];
    encode_header(wrong, bytes);
    EXPECT_THROW(static_cast<void>(decode_header(bytes)), WireError);
  }
  {
    WireHeader wrong = header;
    wrong.type = static_cast<MessageType>(99);
    uint8_t bytes[kHeaderBytes];
    encode_header(wrong, bytes);
    EXPECT_THROW(static_cast<void>(decode_header(bytes)), WireError);
  }
  {
    WireHeader wrong = header;
    wrong.body_bytes = kMaxBodyBytes + 1;  // corrupt length: never allocated
    uint8_t bytes[kHeaderBytes];
    encode_header(wrong, bytes);
    EXPECT_THROW(static_cast<void>(decode_header(bytes)), WireError);
  }
}

TEST(WireSubmit, RoundTripsAllFields) {
  SubmitMessage message;
  message.request_id = 42;
  message.model = "sesr_m5";
  message.tenant = "tenant \"A\"";
  message.deadline_ms = 37;
  message.image = random_image(Shape({1, 3, 9, 11}), 5);

  const std::vector<uint8_t> body = encode_submit(message);
  const SubmitMessage back = decode_submit(message.request_id, body);
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.model, message.model);
  EXPECT_EQ(back.tenant, message.tenant);
  EXPECT_EQ(back.deadline_ms, 37);
  expect_tensor_eq(back.image, message.image);
}

TEST(WireSubmit, NoDeadlineSurvives) {
  SubmitMessage message;
  message.image = random_image(Shape({1, 3, 2, 2}), 6);
  ASSERT_EQ(message.deadline_ms, SubmitMessage::kNoDeadline);
  const SubmitMessage back = decode_submit(1, encode_submit(message));
  EXPECT_EQ(back.deadline_ms, SubmitMessage::kNoDeadline);
}

TEST(WireSubmit, TraceExtensionRoundTrips) {
  SubmitMessage message;
  message.request_id = 9;
  message.model = "sesr_m2";
  message.image = random_image(Shape({1, 3, 4, 4}), 7);
  message.trace_id = 0xfeedfacecafebeefULL;
  message.parent_span = 0x0000000100000007ULL;

  const SubmitMessage back = decode_submit(9, encode_submit(message));
  EXPECT_EQ(back.trace_id, message.trace_id);
  EXPECT_EQ(back.parent_span, message.parent_span);
  expect_tensor_eq(back.image, message.image);
}

TEST(WireSubmit, UntracedStaysOldForm) {
  // The trace fields are a *trailing* extension: an untraced message must
  // encode to exactly the pre-extension body (a pre-trace decoder keeps
  // working), and decoding that old-form body reads the fields back as zero.
  SubmitMessage untraced;
  untraced.model = "sesr_m2";
  untraced.image = random_image(Shape({1, 3, 4, 4}), 7);
  const std::vector<uint8_t> old_form = encode_submit(untraced);

  SubmitMessage traced = untraced;
  traced.trace_id = 1;
  traced.parent_span = 2;
  const std::vector<uint8_t> extended = encode_submit(traced);

  // Extension is exactly two trailing u64s over the old form — byte-for-byte
  // identical prefix.
  ASSERT_EQ(extended.size(), old_form.size() + 16);
  for (size_t i = 0; i < old_form.size(); ++i) ASSERT_EQ(extended[i], old_form[i]) << i;

  const SubmitMessage back = decode_submit(1, old_form);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.parent_span, 0u);
}

TEST(WireReply, RoundTripsOkAndError) {
  {
    ReplyMessage message;
    message.request_id = 7;
    message.status = 0;  // ok
    message.model_version = 3;
    message.output = random_image(Shape({1, 3, 8, 8}), 9);
    const ReplyMessage back = decode_reply(7, encode_reply(message));
    EXPECT_EQ(back.status, 0);
    EXPECT_EQ(back.error, "");
    EXPECT_EQ(back.model_version, 3);
    expect_tensor_eq(back.output, message.output);
  }
  {
    ReplyMessage message;
    message.request_id = 8;
    message.status = 2;  // error
    message.error = "queue full";
    const ReplyMessage back = decode_reply(8, encode_reply(message));
    EXPECT_EQ(back.status, 2);
    EXPECT_EQ(back.error, "queue full");
  }
}

TEST(WirePong, RoundTrips) {
  PongMessage message;
  message.seq = 11;
  message.in_flight = 4;
  message.stats_json = R"({"submitted": 9})";
  const PongMessage back = decode_pong(11, encode_pong(message));
  EXPECT_EQ(back.seq, 11u);
  EXPECT_EQ(back.in_flight, 4);
  EXPECT_EQ(back.stats_json, message.stats_json);
  EXPECT_EQ(back.metrics_json, "");  // absent extension reads back empty
}

TEST(WirePong, MetricsExtensionRoundTrips) {
  PongMessage message;
  message.seq = 12;
  message.in_flight = 1;
  message.stats_json = R"({"submitted": 9})";
  message.metrics_json = R"({"counters": {"serve.submitted": 9}})";
  const PongMessage back = decode_pong(12, encode_pong(message));
  EXPECT_EQ(back.stats_json, message.stats_json);
  EXPECT_EQ(back.metrics_json, message.metrics_json);

  // Empty metrics stays old-form on the wire: the extended body is strictly
  // the old body plus the trailing string.
  PongMessage bare = message;
  bare.metrics_json.clear();
  const std::vector<uint8_t> old_form = encode_pong(bare);
  const std::vector<uint8_t> extended = encode_pong(message);
  ASSERT_GT(extended.size(), old_form.size());
  for (size_t i = 0; i < old_form.size(); ++i) ASSERT_EQ(extended[i], old_form[i]) << i;
}

TEST(WireReader, TruncationThrowsEverywhere) {
  SubmitMessage message;
  message.model = "sesr_m5";
  message.tenant = "t";
  message.image = random_image(Shape({1, 3, 4, 4}), 3);
  const std::vector<uint8_t> body = encode_submit(message);

  // Chop the body at every possible length; none may decode, none may read
  // out of bounds (ASan/TSan jobs run this too).
  for (size_t cut = 0; cut < body.size(); ++cut) {
    std::vector<uint8_t> truncated(body.begin(), body.begin() + cut);
    EXPECT_THROW(static_cast<void>(decode_submit(1, truncated)), WireError) << "cut " << cut;
  }
}

TEST(WireReader, TrailingGarbageThrows) {
  SubmitMessage message;
  message.image = random_image(Shape({1, 3, 2, 2}), 4);
  std::vector<uint8_t> body = encode_submit(message);
  body.push_back(0xee);  // length drift must be caught, not ignored
  EXPECT_THROW(static_cast<void>(decode_submit(1, body)), WireError);
}

TEST(WireReader, HostileStringAndTensorLengthsThrow) {
  {
    WireWriter writer;
    writer.u32(0xffffffffu);  // string claims 4 GiB
    const std::vector<uint8_t> body = writer.take();
    WireReader reader(body);
    EXPECT_THROW(static_cast<void>(reader.str()), WireError);
  }
  {
    WireWriter writer;
    writer.u32(2);        // tensor ndim = 2
    writer.i64(1 << 20);  // dims claiming ~4 TiB of floats
    writer.i64(1 << 20);
    const std::vector<uint8_t> body = writer.take();
    WireReader reader(body);
    EXPECT_THROW(static_cast<void>(reader.tensor()), WireError);
  }
  {
    // Rank-0 (the default Tensor error replies carry) is legal and is a
    // one-element scalar on the wire.
    WireWriter writer;
    writer.tensor(Tensor());
    const std::vector<uint8_t> body = writer.take();
    WireReader reader(body);
    const Tensor scalar = reader.tensor();
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(scalar.numel(), 1);
    EXPECT_EQ(scalar.ndim(), 0);
  }
}

TEST(WireWriter, LittleEndianByteStability) {
  // The format is defined as little-endian bytes, not "whatever this
  // compiler does" — pin the layout.
  WireWriter writer;
  writer.u32(0x04030201u);
  writer.i64(0x0807060504030201LL);
  writer.u8(0xaa);
  const std::vector<uint8_t>& bytes = writer.bytes();
  const uint8_t expected[] = {0x01, 0x02, 0x03, 0x04, 0x01, 0x02, 0x03,
                              0x04, 0x05, 0x06, 0x07, 0x08, 0xaa};
  ASSERT_EQ(bytes.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) ASSERT_EQ(bytes[i], expected[i]) << i;
}

}  // namespace
}  // namespace sesr::dist
