// Shared fault-injection test support.
//
// FaultingAffine started life inside the upscaler pool suite; the serve
// registry/soak suites need the same compilable, deliberately-unreliable
// module, so it lives here now. ScopedEnv rides along because every suite
// that pokes SESR_* knobs (read per call through core/config) needs scoped,
// restoring overrides.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/nn.h"
#include "serve/fault_plan.h"
#include "tensor/tensor.h"

namespace sesr::testsupport {

/// A compilable shape-preserving layer whose serving kernel throws on
/// demand: exercising the checkout/return unwind paths the way a real
/// kernel fault (bad_alloc, cancelled workspace) would. Compiles through
/// Module's default path: one opaque layer step executed via infer_into.
///
/// Faults fire from either source (both may be active):
///   - `fault_period` — every Nth infer_into call throws (0 = never);
///   - `fault_plan`   — a shared serve::FaultPlan consulted with this
///                      module's own call index (kernel_fault seam), so the
///                      soak harness drives faults from one seeded schedule.
///
/// The affine coefficients are configurable so a hot-swap test can publish
/// two FaultingAffine versions and *prove from the output values* which
/// version served a request (out = in * scale + offset).
class FaultingAffine final : public nn::Module {
 public:
  FaultingAffine() = default;
  FaultingAffine(float scale, float offset) : scale_(scale), offset_(offset) {}

  Tensor forward(const Tensor& input) override {
    Tensor out = input;
    out.mul_scalar(scale_).add_scalar(offset_);
    return out;
  }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("FaultingAffine: inference-only");
  }
  [[nodiscard]] std::string name() const override { return "faulting_affine"; }
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>*) const override {
    if (input.ndim() != 4) throw std::invalid_argument("faulting_affine: NCHW only");
    return input;
  }
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  void infer_into(const Tensor& input, Tensor& output, Workspace&) const override {
    const int64_t index = calls.fetch_add(1);
    const bool period_fault = fault_period > 0 && index % fault_period == fault_period - 1;
    const bool plan_fault = fault_plan && fault_plan->kernel_fault(index);
    if (period_fault || plan_fault) throw std::runtime_error("injected kernel fault");
    std::copy(input.data(), input.data() + input.numel(), output.data());
    output.mul_scalar(scale_).add_scalar(offset_);
  }

  [[nodiscard]] float scale() const { return scale_; }
  [[nodiscard]] float offset() const { return offset_; }

  mutable std::atomic<int64_t> calls{0};
  int64_t fault_period = 0;  ///< 0 = never fault
  std::shared_ptr<const serve::FaultPlan> fault_plan;

 private:
  float scale_ = 0.5f;
  float offset_ = 0.25f;
};

/// Scoped environment override with restore: remembers the variable's prior
/// value and puts it back on destruction (config knobs are read per call, so
/// restoring mid-suite matters). A null `value` unsets the variable for the
/// scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prior = std::getenv(name);
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (value != nullptr)
      setenv(name, value, 1);
    else
      unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_prior_)
      setenv(name_.c_str(), prior_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string prior_;
  bool had_prior_ = false;
};

}  // namespace sesr::testsupport
