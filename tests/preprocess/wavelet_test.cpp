#include <gtest/gtest.h>

#include <vector>

#include "data/metrics.h"
#include "preprocess/wavelet.h"
#include "tensor/rng.h"

namespace sesr::preprocess {
namespace {

struct FamilyCase {
  WaveletFamily family;
  const char* name;
};

class WaveletSweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(WaveletSweep, SingleLevelPerfectReconstruction) {
  Rng rng(1);
  const int64_t h = 16, w = 16;
  std::vector<float> plane(static_cast<size_t>(h * w));
  for (float& v : plane) v = rng.normal();
  const std::vector<float> original = plane;

  dwt2d_level(plane, h, w, GetParam().family);
  idwt2d_level(plane, h, w, GetParam().family);
  for (size_t i = 0; i < plane.size(); ++i) EXPECT_NEAR(plane[i], original[i], 1e-4f);
}

TEST_P(WaveletSweep, HaarEnergyIsPreserved) {
  // Orthogonal transforms preserve the L2 norm.
  Rng rng(2);
  const int64_t h = 8, w = 8;
  std::vector<float> plane(static_cast<size_t>(h * w));
  for (float& v : plane) v = rng.normal();
  double e_before = 0.0;
  for (float v : plane) e_before += static_cast<double>(v) * v;
  dwt2d_level(plane, h, w, GetParam().family);
  double e_after = 0.0;
  for (float v : plane) e_after += static_cast<double>(v) * v;
  EXPECT_NEAR(e_after / e_before, 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Families, WaveletSweep,
                         ::testing::Values(FamilyCase{WaveletFamily::kHaar, "haar"},
                                           FamilyCase{WaveletFamily::kDaubechies4, "db4"}),
                         [](const ::testing::TestParamInfo<FamilyCase>& info) {
                           return info.param.name;
                         });

TEST(WaveletTest, ConstantImagePassesThroughUnchanged) {
  // A flat image has zero detail coefficients; thresholding cannot touch it.
  Tensor x(Shape{1, 3, 16, 16}, 0.6f);
  const Tensor y = WaveletDenoiser({.levels = 2}).apply(x);
  EXPECT_LT(y.max_abs_diff(x), 1e-4f);
}

TEST(WaveletTest, DenoisingImprovesNoisyStructuredImage) {
  // Structured image + noise: BayesShrink must increase PSNR to the clean.
  const int64_t s = 32;
  Tensor clean({1, 1, s, s});
  for (int64_t y = 0; y < s; ++y)
    for (int64_t x = 0; x < s; ++x)
      clean.at(0, 0, y, x) = 0.5f + 0.4f * std::sin(static_cast<float>(y) * 0.3f) *
                                        std::cos(static_cast<float>(x) * 0.25f);
  Rng rng(4);
  Tensor noisy = clean;
  for (int64_t i = 0; i < noisy.numel(); ++i) noisy[i] += rng.normal(0.0f, 0.05f);

  const Tensor denoised = WaveletDenoiser({.levels = 2}).apply(noisy);
  EXPECT_GT(data::psnr(denoised, clean), data::psnr(noisy, clean) + 1.0f);
}

TEST(WaveletTest, ThresholdScaleZeroIsReconstructionOnly) {
  Rng rng(5);
  const Tensor x = Tensor::rand({1, 3, 16, 16}, rng);
  const Tensor y =
      WaveletDenoiser({.levels = 2, .threshold_scale = 0.0f}).apply(x);
  EXPECT_LT(y.max_abs_diff(x), 1e-4f);  // DWT + IDWT with no thresholding
}

TEST(WaveletTest, StrongerThresholdRemovesMoreEnergy) {
  Rng rng(6);
  const Tensor x = Tensor::rand({1, 1, 32, 32}, rng);
  const Tensor mild = WaveletDenoiser({.threshold_scale = 0.5f}).apply(x);
  const Tensor strong = WaveletDenoiser({.threshold_scale = 2.0f}).apply(x);
  EXPECT_GT(strong.max_abs_diff(x), mild.max_abs_diff(x) * 0.9f);
}

TEST(WaveletTest, RejectsIndivisibleSizes) {
  EXPECT_THROW(WaveletDenoiser({.levels = 3}).apply(Tensor({1, 3, 20, 20})),
               std::invalid_argument);
  EXPECT_THROW(WaveletDenoiser({.levels = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::preprocess
