#include <gtest/gtest.h>

#include "preprocess/colorspace.h"

namespace sesr::preprocess {
namespace {

TEST(ColorspaceTest, GrayIsPureLuma) {
  Tensor rgb({1, 3, 1, 1}, 0.5f);
  const Tensor ycbcr = rgb_to_ycbcr(rgb);
  EXPECT_NEAR(ycbcr[0], 0.5f, 1e-5f);  // Y
  EXPECT_NEAR(ycbcr[1], 0.5f, 1e-5f);  // Cb centred
  EXPECT_NEAR(ycbcr[2], 0.5f, 1e-5f);  // Cr centred
}

TEST(ColorspaceTest, LumaWeightsSumToOne) {
  // White must map to Y = 1.
  Tensor white({1, 3, 1, 1}, 1.0f);
  EXPECT_NEAR(rgb_to_ycbcr(white)[0], 1.0f, 1e-5f);
}

TEST(ColorspaceTest, RoundTripIsNearIdentity) {
  Rng rng(3);
  const Tensor rgb = Tensor::rand({2, 3, 8, 8}, rng);
  const Tensor back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
  EXPECT_LT(back.max_abs_diff(rgb), 1e-4f);
}

TEST(ColorspaceTest, PureRedHasHighCr) {
  Tensor red({1, 3, 1, 1});
  red[0] = 1.0f;
  const Tensor ycbcr = rgb_to_ycbcr(red);
  EXPECT_NEAR(ycbcr[0], 0.299f, 1e-4f);
  EXPECT_GT(ycbcr[2], 0.9f);  // Cr ~ 1.0 for pure red
}

TEST(ColorspaceTest, OutputIsClampedToUnitRange) {
  // Extreme chroma values must not escape [0,1] after conversion.
  Tensor ycbcr({1, 3, 1, 1});
  ycbcr[0] = 1.0f;
  ycbcr[1] = 1.0f;
  ycbcr[2] = 1.0f;
  const Tensor rgb = ycbcr_to_rgb(ycbcr);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_GE(rgb[i], 0.0f);
    EXPECT_LE(rgb[i], 1.0f);
  }
}

TEST(ColorspaceTest, RejectsNonRgbShapes) {
  EXPECT_THROW(rgb_to_ycbcr(Tensor({1, 4, 2, 2})), std::invalid_argument);
  EXPECT_THROW(ycbcr_to_rgb(Tensor({3, 2, 2})), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::preprocess
