#include <gtest/gtest.h>

#include "data/metrics.h"
#include "preprocess/jpeg.h"

namespace sesr::preprocess {
namespace {

Tensor smooth_image(int64_t n, int64_t h, int64_t w) {
  Tensor x({n, 3, h, w});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t c = 0; c < 3; ++c)
      for (int64_t y = 0; y < h; ++y)
        for (int64_t xx = 0; xx < w; ++xx)
          x.at(i, c, y, xx) = 0.25f + 0.5f * static_cast<float>(y + xx) /
                                          static_cast<float>(h + w - 2);
  return x;
}

TEST(JpegTest, PreservesShapeAndRange) {
  Rng rng(1);
  const Tensor x = Tensor::rand({2, 3, 20, 28}, rng);  // non-multiple-of-16 sizes
  const Tensor y = JpegCompressor({.quality = 75}).apply(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(JpegTest, HighQualityNearlyLosslessOnSmoothContent) {
  const Tensor x = smooth_image(1, 32, 32);
  const Tensor y = JpegCompressor({.quality = 98, .chroma_subsample = false}).apply(x);
  EXPECT_GT(data::psnr(y, x), 38.0f);
}

TEST(JpegTest, QualityKnobMonotonicallyDegrades) {
  Rng rng(2);
  Tensor x = Tensor::rand({1, 3, 32, 32}, rng);  // noise = worst case for JPEG
  const float psnr95 = data::psnr(JpegCompressor({.quality = 95}).apply(x), x);
  const float psnr50 = data::psnr(JpegCompressor({.quality = 50}).apply(x), x);
  const float psnr10 = data::psnr(JpegCompressor({.quality = 10}).apply(x), x);
  EXPECT_GT(psnr95, psnr50);
  EXPECT_GT(psnr50, psnr10);
}

TEST(JpegTest, SuppressesHighFrequencyNoise) {
  // The defensive property: adding low-amplitude noise to a smooth image and
  // compressing must move the result back toward the clean image.
  const Tensor clean = smooth_image(1, 32, 32);
  Rng rng(3);
  Tensor noisy = clean;
  for (int64_t i = 0; i < noisy.numel(); ++i) noisy[i] += rng.uniform(-0.03f, 0.03f);
  noisy.clamp_(0.0f, 1.0f);

  const Tensor compressed = JpegCompressor({.quality = 50}).apply(noisy);
  EXPECT_GT(data::psnr(compressed, clean), data::psnr(noisy, clean) - 0.5f);
  // And the compressed image must differ from the noisy input (it did work).
  EXPECT_GT(noisy.max_abs_diff(compressed), 1e-3f);
}

TEST(JpegTest, QuantTablesScaleWithQuality) {
  const JpegCompressor q10({.quality = 10});
  const JpegCompressor q90({.quality = 90});
  // Lower quality = larger quantisation steps, elementwise.
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(q10.luma_table()[static_cast<size_t>(i)],
              q90.luma_table()[static_cast<size_t>(i)]);
  }
  // DC term of the Annex-K luma table at quality 50 is the table value itself.
  const JpegCompressor q50({.quality = 50});
  EXPECT_FLOAT_EQ(q50.luma_table()[0], 16.0f);
}

TEST(JpegTest, ChromaSubsamplingChangesChromaOnly) {
  // On a gray image (zero chroma), 4:2:0 and 4:4:4 must agree closely.
  const Tensor gray = smooth_image(1, 32, 32);
  const Tensor sub = JpegCompressor({.quality = 80, .chroma_subsample = true}).apply(gray);
  const Tensor full = JpegCompressor({.quality = 80, .chroma_subsample = false}).apply(gray);
  EXPECT_LT(sub.max_abs_diff(full), 0.02f);
}

TEST(JpegTest, InvalidQualityRejected) {
  EXPECT_THROW(JpegCompressor({.quality = 0}), std::invalid_argument);
  EXPECT_THROW(JpegCompressor({.quality = 101}), std::invalid_argument);
}

TEST(JpegTest, RejectsNonRgbInput) {
  EXPECT_THROW(JpegCompressor().apply(Tensor({1, 1, 8, 8})), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::preprocess
