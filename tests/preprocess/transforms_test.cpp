#include <gtest/gtest.h>

#include "data/metrics.h"
#include "preprocess/transforms.h"

namespace sesr::preprocess {
namespace {

Tensor gradient_image(int64_t s) {
  Tensor x({1, 3, s, s});
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t y = 0; y < s; ++y)
      for (int64_t xx = 0; xx < s; ++xx)
        x.at(0, c, y, xx) = 0.2f + 0.6f * static_cast<float>(y + xx) /
                                       static_cast<float>(2 * s - 2);
  return x;
}

// ---- bit-depth reduction ----------------------------------------------------

TEST(BitDepthTest, ValuesSnapToGrid) {
  Tensor x(Shape{1, 1, 1, 3}, std::vector<float>{0.1f, 0.5f, 0.9f});
  const Tensor y = bit_depth_reduce(x, 1);  // grid {0, 1}
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(BitDepthTest, EightBitsNearIdentity) {
  Rng rng(1);
  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  EXPECT_LT(bit_depth_reduce(x, 8).max_abs_diff(x), 1.0f / 255.0f);
}

TEST(BitDepthTest, FewerBitsMoreError) {
  Rng rng(2);
  const Tensor x = Tensor::rand({1, 3, 16, 16}, rng);
  EXPECT_GT(bit_depth_reduce(x, 2).max_abs_diff(x), bit_depth_reduce(x, 5).max_abs_diff(x));
}

TEST(BitDepthTest, RejectsInvalidBits) {
  EXPECT_THROW(bit_depth_reduce(Tensor({1, 1, 2, 2}), 0), std::invalid_argument);
  EXPECT_THROW(bit_depth_reduce(Tensor({1, 1, 2, 2}), 9), std::invalid_argument);
}

// ---- pixel deflection --------------------------------------------------------

TEST(PixelDeflectionTest, ChangesBoundedNumberOfPixels) {
  Rng rng(3);
  const Tensor x = Tensor::rand({1, 3, 16, 16}, rng);
  PixelDeflector deflector({.count = 20, .window = 3, .seed = 5});
  const Tensor y = deflector.apply(x);
  int64_t changed = 0;
  for (int64_t yy = 0; yy < 16; ++yy)
    for (int64_t xx = 0; xx < 16; ++xx)
      if (std::abs(y.at(0, 0, yy, xx) - x.at(0, 0, yy, xx)) > 0.0f) ++changed;
  EXPECT_LE(changed, 20);
  EXPECT_GT(changed, 0);
}

TEST(PixelDeflectionTest, DeterministicPerSeed) {
  Rng rng(4);
  const Tensor x = Tensor::rand({2, 3, 12, 12}, rng);
  PixelDeflector a({.count = 30, .window = 4, .seed = 7});
  PixelDeflector b({.count = 30, .window = 4, .seed = 7});
  EXPECT_EQ(a.apply(x).max_abs_diff(b.apply(x)), 0.0f);
}

TEST(PixelDeflectionTest, OnlyCopiesExistingValues) {
  // Every output pixel value must come from somewhere in the input image.
  Tensor x(Shape{1, 1, 4, 4}, std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                                 14, 15});
  PixelDeflector deflector({.count = 50, .window = 2, .seed = 11});
  const Tensor y = deflector.apply(x);
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y[i];
    EXPECT_EQ(v, std::round(v));
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 15.0f);
  }
}

// ---- TV denoising -------------------------------------------------------------

TEST(TvDenoiseTest, RemovesNoiseFromSmoothImage) {
  const Tensor clean = gradient_image(16);
  Rng rng(6);
  Tensor noisy = clean;
  for (int64_t i = 0; i < noisy.numel(); ++i) noisy[i] += rng.uniform(-0.04f, 0.04f);
  noisy.clamp_(0.0f, 1.0f);

  const Tensor denoised = TvDenoiser({.weight = 0.05f, .iterations = 60}).apply(noisy);
  EXPECT_GT(data::psnr(denoised, clean), data::psnr(noisy, clean) + 1.0f);
}

TEST(TvDenoiseTest, ZeroWeightConvergesToInput) {
  Rng rng(7);
  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  const Tensor y = TvDenoiser({.weight = 0.0f, .iterations = 10}).apply(x);
  EXPECT_LT(y.max_abs_diff(x), 1e-4f);
}

TEST(TvDenoiseTest, StrongerWeightFlattensMore) {
  Rng rng(8);
  const Tensor x = Tensor::rand({1, 1, 16, 16}, rng);
  auto tv_energy = [](const Tensor& t) {
    double e = 0.0;
    for (int64_t y = 0; y < 16; ++y)
      for (int64_t xx = 0; xx + 1 < 16; ++xx)
        e += std::abs(t.at(0, 0, y, xx + 1) - t.at(0, 0, y, xx));
    return e;
  };
  const Tensor mild = TvDenoiser({.weight = 0.02f, .iterations = 30}).apply(x);
  const Tensor strong = TvDenoiser({.weight = 0.3f, .iterations = 30}).apply(x);
  EXPECT_LT(tv_energy(strong), tv_energy(mild));
}

// ---- random resize-and-pad -----------------------------------------------------

TEST(RandomResizePadTest, PreservesShapeAndRange) {
  Rng rng(9);
  const Tensor x = Tensor::rand({2, 3, 16, 16}, rng);
  const Tensor y = RandomResizePad({.min_scale = 0.8f, .seed = 13}).apply(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(RandomResizePadTest, DeterministicPerSeed) {
  Rng rng(10);
  const Tensor x = Tensor::rand({1, 3, 12, 12}, rng);
  RandomResizePad a({.min_scale = 0.8f, .seed = 17});
  RandomResizePad b({.min_scale = 0.8f, .seed = 17});
  EXPECT_EQ(a.apply(x).max_abs_diff(b.apply(x)), 0.0f);
}

TEST(RandomResizePadTest, ScaleOneIsNearIdentityUpToPlacement) {
  // min_scale = 1 forces rh = rw = full size and zero offsets.
  Rng rng(11);
  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  const Tensor y = RandomResizePad({.min_scale = 1.0f, .seed = 19}).apply(x);
  EXPECT_LT(y.max_abs_diff(x), 1e-5f);
}

}  // namespace
}  // namespace sesr::preprocess
