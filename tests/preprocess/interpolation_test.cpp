#include <gtest/gtest.h>

#include "preprocess/interpolation.h"

namespace sesr::preprocess {
namespace {

TEST(InterpolationTest, NearestX2ReplicatesPixels) {
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = upscale(x, 2, InterpolationKind::kNearest);
  ASSERT_EQ(y.shape(), Shape({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 3), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 3, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 4.0f);
}

struct KindCase {
  InterpolationKind kind;
  const char* name;
};

class InterpolationSweep : public ::testing::TestWithParam<KindCase> {};

TEST_P(InterpolationSweep, ConstantImageIsExactlyPreserved) {
  // All interpolation kernels are partitions of unity: flat fields upscale
  // to flat fields.
  Tensor x(Shape{1, 3, 5, 5}, 0.37f);
  const Tensor y = upscale(x, 2, GetParam().kind);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.37f, 1e-5f);
}

TEST_P(InterpolationSweep, DownThenUpApproximatesIdentityOnSmooth) {
  // A smooth gradient must survive a x2 round trip closely.
  Tensor x({1, 1, 8, 8});
  for (int64_t i = 0; i < 8; ++i)
    for (int64_t j = 0; j < 8; ++j)
      x.at(0, 0, i, j) = static_cast<float>(i + j) / 14.0f;
  const Tensor down = downscale(x, 2, GetParam().kind);
  const Tensor up = resize(down, 8, 8, GetParam().kind);
  // Nearest loses up to a full pixel step on a gradient; smooth kernels less.
  const float tolerance = GetParam().kind == InterpolationKind::kNearest ? 0.2f : 0.12f;
  EXPECT_LT(up.max_abs_diff(x), tolerance);
}

INSTANTIATE_TEST_SUITE_P(Kinds, InterpolationSweep,
                         ::testing::Values(KindCase{InterpolationKind::kNearest, "nearest"},
                                           KindCase{InterpolationKind::kBilinear, "bilinear"},
                                           KindCase{InterpolationKind::kBicubic, "bicubic"}),
                         [](const ::testing::TestParamInfo<KindCase>& info) {
                           return info.param.name;
                         });

TEST(InterpolationTest, BicubicSharperThanBilinearOnEdge) {
  // Step edge: bicubic should retain more contrast than bilinear after x2.
  Tensor x({1, 1, 8, 8});
  for (int64_t i = 0; i < 8; ++i)
    for (int64_t j = 4; j < 8; ++j) x.at(0, 0, i, j) = 1.0f;
  const Tensor bil = upscale(x, 2, InterpolationKind::kBilinear);
  const Tensor bic = upscale(x, 2, InterpolationKind::kBicubic);
  // At the transition column, bicubic overshoots / stays closer to the edge.
  float bil_contrast = std::abs(bil.at(0, 0, 8, 8) - bil.at(0, 0, 8, 7));
  float bic_contrast = std::abs(bic.at(0, 0, 8, 8) - bic.at(0, 0, 8, 7));
  EXPECT_GE(bic_contrast, bil_contrast);
}

TEST(InterpolationTest, ArbitraryTargetSizes) {
  Rng rng(5);
  const Tensor x = Tensor::rand({1, 3, 7, 9}, rng);
  const Tensor y = resize(x, 13, 5, InterpolationKind::kBilinear);
  EXPECT_EQ(y.shape(), Shape({1, 3, 13, 5}));
}

TEST(InterpolationTest, InvalidArgumentsRejected) {
  Tensor x({1, 1, 4, 4});
  EXPECT_THROW(resize(x, 0, 4, InterpolationKind::kNearest), std::invalid_argument);
  EXPECT_THROW(downscale(x, 3), std::invalid_argument);  // 4 % 3 != 0
  EXPECT_THROW(upscale(x, 0, InterpolationKind::kNearest), std::invalid_argument);
}

TEST(InterpolationTest, NamesMatchTableRows) {
  EXPECT_STREQ(interpolation_name(InterpolationKind::kNearest), "Nearest Neighbor");
  EXPECT_STREQ(interpolation_name(InterpolationKind::kBicubic), "Bicubic");
}

}  // namespace
}  // namespace sesr::preprocess
