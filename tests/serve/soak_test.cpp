// Multi-tenant hot-swap soak: the registry-backed serving engine under
// sustained concurrent load, continuous publishes, and seeded fault
// injection (CTest label: soak).
//
// Three tenants with different quotas hammer two models — a real SESR
// network whose publisher flips fp32 <-> int8 mid-load, and a FaultingAffine
// whose per-version coefficients make every kOk reply a *content-level
// witness* of the version that served it — while a serve::FaultPlan injects
// kernel throws, worker stalls, and queue-overflow bursts on a seeded
// schedule. Invariants asserted at the end:
//
//   - no lost completions: every admitted request gets exactly one reply
//     (futures and callbacks alike), even across stop()'s drain;
//   - swap barrier: no kOk reply is served by a version older than the
//     version floor its producer read before submitting;
//   - content integrity: affine replies match their claimed version's
//     coefficients bit-exactly — a misrouted or torn swap cannot hide;
//   - bounded occupancy: queue depth never exceeds capacity, quota'd
//     tenants never exceed their occupancy caps;
//   - quiescence: after stop(), current snapshots hold zero live sessions
//     and counters conserve (submitted == completed + shed + failed).
//
// Scale knobs (typed config, see core/config.h): SESR_SOAK_SECONDS (default
// 1.5 — the PR-gate smoke; nightly CI runs minutes) and SESR_SOAK_SEED. The
// whole schedule is a function of the seed: a nightly failure reproduces
// locally by exporting the same values.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "models/models.h"
#include "serve/serve.h"
#include "tests/support/fault_injection.h"

namespace sesr::serve {
namespace {

using sesr::testsupport::FaultingAffine;
using Clock = std::chrono::steady_clock;

/// Version-dependent affine scale, kept below 1 so the upscaler's [0, 1]
/// output clamp never fires and outputs witness versions exactly.
float scale_for(int64_t version) {
  return 1.0f / (1.0f + 0.125f * static_cast<float>(version));
}

TEST(ServeSoakTest, MultiTenantHotSwapSoak) {
  const double seconds = core::config_double("SESR_SOAK_SECONDS");
  const auto seed = static_cast<uint64_t>(core::config_int64("SESR_SOAK_SEED"));
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  // Swap cadence targets >= 100 swaps on runs of two minutes and up while
  // keeping the smoke run's cadence fast enough to cross several versions.
  const auto swap_interval = std::clamp(
      std::chrono::duration_cast<std::chrono::milliseconds>(duration / 120),
      std::chrono::milliseconds(20), std::chrono::milliseconds(1000));

  // --- fault schedule (one seed, every seam) -------------------------------
  FaultPlan::Options fault_options;
  fault_options.seed = seed;
  fault_options.kernel_fault_period = 60;   // affine kernel throws
  fault_options.worker_stall_period = 50;   // dispatch stalls
  fault_options.worker_stall_for = std::chrono::microseconds(300);
  fault_options.overflow_burst_period = 16; // producer try_submit bursts
  fault_options.overflow_burst_size = 24;
  fault_options.precision_flip_period = 3;  // sesr swaps flip fp32 <-> int8
  auto plan = std::make_shared<FaultPlan>(fault_options);

  // --- models --------------------------------------------------------------
  auto registry = std::make_shared<ModelRegistry>();

  auto make_affine = [&](int64_t version) {
    auto layer = std::make_shared<FaultingAffine>(scale_for(version), 0.0f);
    layer->fault_plan = plan;
    return layer;
  };
  registry->register_model("affine", "affine", make_affine(1));
  // The registered module is version 1's coefficients, but register_model
  // retains it for sibling rebuilds; affine publishes always go through
  // publish() with a fresh per-version module instead.

  auto sesr_network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                     models::Sesr::Form::kInference);
  Rng weight_rng(seed + 1);
  sesr_network->init_weights(weight_rng);
  registry->register_model("sesr", "SESR-M2", sesr_network);
  const Shape sesr_shape{1, 3, 8, 8};
  const Shape affine_shape{1, 3, 6, 6};
  std::vector<Tensor> calibration;
  Rng cal_rng(seed + 2);
  for (int i = 0; i < 2; ++i) calibration.push_back(Tensor::rand(sesr_shape, cal_rng));
  auto artifact = std::make_shared<const quant::QuantizedModel>(
      quant::QuantizedModel::calibrate(*sesr_network, sesr_shape, calibration));

  // --- server --------------------------------------------------------------
  Server::Options options;
  options.workers = 3;
  options.max_batch = 4;
  options.queue_capacity = 64;
  options.batch_linger = std::chrono::microseconds(100);
  options.fault_plan = plan;
  TenantQuota bursty_quota;
  bursty_quota.max_in_queue = 8;
  options.tenant_quotas["bursty"] = bursty_quota;
  TenantQuota strict_quota;
  strict_quota.max_in_queue = 4;
  strict_quota.default_deadline = std::chrono::milliseconds(50);
  options.tenant_quotas["strict"] = strict_quota;
  Server server(registry, options);
  server.warmup("sesr", {3, 8, 8});

  // --- shared accounting ---------------------------------------------------
  std::atomic<int64_t> expected_replies{0};  // admitted submissions
  std::atomic<int64_t> replies{0};           // callbacks delivered
  std::atomic<int64_t> ok_replies{0};
  std::atomic<int64_t> kernel_fault_errors{0};
  std::atomic<int64_t> stale_replies{0};     // version < submit-time floor
  std::atomic<int64_t> content_mismatches{0};
  std::atomic<int64_t> try_refused{0};

  // --- publishers: continuous hot swaps ------------------------------------
  const Clock::time_point end_time = Clock::now() + duration;
  std::atomic<int64_t> affine_swaps{0};
  std::atomic<int64_t> sesr_swaps{0};
  std::thread affine_publisher([&] {
    int64_t next_version = 2;
    while (Clock::now() < end_time) {
      const int64_t version = registry->publish(
          "affine", std::make_shared<models::NetworkUpscaler>("affine",
                                                              make_affine(next_version)));
      // Single publisher per model: versions are exactly sequential, so
      // scale_for(reply.model_version) is always the serving coefficients.
      ASSERT_EQ(version, next_version);
      ++next_version;
      affine_swaps.fetch_add(1);
      std::this_thread::sleep_for(swap_interval);
    }
  });
  std::thread sesr_publisher([&] {
    bool int8_serving = false;
    int64_t swap_index = 0;
    while (Clock::now() < end_time) {
      if (plan->precision_flip(swap_index)) int8_serving = !int8_serving;
      if (int8_serving)
        registry->publish_int8("sesr", artifact);
      else
        registry->publish_fp32("sesr");
      ++swap_index;
      sesr_swaps.fetch_add(1);
      std::this_thread::sleep_for(swap_interval);
    }
  });

  // --- producers: three tenants, two models, seeded burst schedule ---------
  const std::vector<std::string> tenants = {"free", "bursty", "strict"};
  std::vector<std::thread> producers;
  for (size_t t = 0; t < tenants.size(); ++t) {
    producers.emplace_back([&, t] {
      const std::string tenant = tenants[t];
      Rng rng(seed + 10 + t);
      const Tensor affine_image = Tensor::rand(affine_shape, rng);
      const Tensor sesr_image = Tensor::rand(sesr_shape, rng);
      int64_t tick = 0;
      while (Clock::now() < end_time) {
        const bool to_affine = (tick + static_cast<int64_t>(t)) % 2 == 0;
        const std::string model = to_affine ? "affine" : "sesr";
        const Tensor& image = to_affine ? affine_image : sesr_image;
        const int64_t floor = registry->version(model);

        const auto check = [&, floor, to_affine, image](const ServeReply& reply) {
          replies.fetch_add(1);
          if (reply.ok()) {
            ok_replies.fetch_add(1);
            if (reply.model_version < floor) stale_replies.fetch_add(1);
            if (to_affine) {
              Tensor expected = image;
              expected.mul_scalar(scale_for(reply.model_version));
              if (reply.output.max_abs_diff(expected) != 0.0f) content_mismatches.fetch_add(1);
            }
          } else if (reply.error == "injected kernel fault") {
            kernel_fault_errors.fetch_add(1);
          }
        };

        server.submit_async(image, Server::SubmitOptions{.model = model, .tenant = tenant},
                            check);
        expected_replies.fetch_add(1);

        // Overflow bursts: a hail of non-blocking submissions that must be
        // either admitted (one reply) or refused (no reply) — never both,
        // never neither.
        const int64_t burst = plan->overflow_burst(tick);
        for (int64_t b = 0; b < burst; ++b) {
          if (server.try_submit(image, Server::SubmitOptions{.model = model, .tenant = tenant},
                                check))
            expected_replies.fetch_add(1);
          else
            try_refused.fetch_add(1);
        }
        ++tick;
        // Pace the steady-state load so queues breathe between bursts.
        std::this_thread::sleep_for(std::chrono::microseconds(rng.randint(50, 250)));
      }
    });
  }

  for (std::thread& producer : producers) producer.join();
  affine_publisher.join();
  sesr_publisher.join();
  server.stop();  // drains every admitted request

  // --- invariants ----------------------------------------------------------
  const ServerStats stats = server.stats();

  // No lost completions, no duplicates.
  EXPECT_EQ(replies.load(), expected_replies.load());
  EXPECT_EQ(stats.submitted, expected_replies.load() - (stats.rejected - try_refused.load()));
  // Everything admitted was answered: conservation across outcomes.
  EXPECT_EQ(stats.completed + stats.shed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.completed, ok_replies.load());
  EXPECT_EQ(stats.queue_depth, 0);

  // Swap barrier and content integrity.
  EXPECT_EQ(stale_replies.load(), 0) << "a reply was older than its submit-time version floor";
  EXPECT_EQ(content_mismatches.load(), 0)
      << "an affine reply's bits did not match its claimed version";

  // The soak actually soaked: swaps happened on both models, faults fired on
  // every seam, and bursts exercised rejection.
  EXPECT_GE(affine_swaps.load(), 2);
  EXPECT_GE(sesr_swaps.load(), 2);
  const auto min_expected_swaps =
      static_cast<int64_t>(std::floor(seconds / (2.0 * swap_interval.count() / 1000.0)));
  EXPECT_GE(affine_swaps.load(), std::max<int64_t>(min_expected_swaps, 2));
  EXPECT_GT(plan->kernel_faults_fired(), 0) << "kernel-fault seam never fired";
  EXPECT_GT(plan->worker_stalls_fired(), 0) << "worker-stall seam never fired";
  EXPECT_GT(plan->overflow_bursts_fired(), 0) << "overflow-burst seam never fired";
  EXPECT_GT(plan->precision_flips_fired(), 0) << "precision-flip seam never fired";
  EXPECT_GT(kernel_fault_errors.load(), 0) << "injected kernel faults never surfaced as replies";
  EXPECT_EQ(stats.failed, kernel_fault_errors.load())
      << "failures beyond the injected kernel faults";

  // Bounded occupancy.
  EXPECT_LE(stats.peak_queue_depth, options.queue_capacity);
  ASSERT_TRUE(stats.tenants.count("bursty"));
  ASSERT_TRUE(stats.tenants.count("strict"));
  EXPECT_LE(stats.tenants.at("bursty").peak_in_queue, 8);
  EXPECT_LE(stats.tenants.at("strict").peak_in_queue, 4);
  for (const auto& [name, tenant_stats] : stats.tenants) {
    EXPECT_EQ(tenant_stats.in_queue, 0) << name;
    EXPECT_EQ(tenant_stats.completed + tenant_stats.shed + tenant_stats.failed,
              tenant_stats.submitted)
        << name;
  }

  // Quiescence: the current snapshots hold no live sessions for any batch
  // size a worker can dispatch (anything else is a session leak).
  for (const std::string& model : {std::string("affine"), std::string("sesr")}) {
    const auto snapshot = registry->acquire(model);
    ASSERT_NE(snapshot->network, nullptr) << model;
    const Shape& single = model == "affine" ? affine_shape : sesr_shape;
    for (int64_t batch = 1; batch <= options.max_batch; ++batch) {
      const Shape batched{batch, single[1], single[2], single[3]};
      EXPECT_EQ(snapshot->network->live_session_count(batched), 0)
          << model << " batch " << batch;
    }
  }

  // The latency histogram recorded every completed request.
  EXPECT_EQ(stats.latency.count, stats.completed);
}

}  // namespace
}  // namespace sesr::serve
