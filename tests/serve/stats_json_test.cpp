// ServerStats/TenantStats JSON round-trip: the wire representation the
// distributed tier's heartbeats carry (dist kPong) and ops tooling scrapes.
#include "serve/stats_json.h"

#include <gtest/gtest.h>

#include <string>

namespace sesr::serve {
namespace {

TenantStats sample_tenant(int64_t base) {
  TenantStats tenant;
  tenant.submitted = base + 1;
  tenant.completed = base + 2;
  tenant.rejected = base + 3;
  tenant.shed = base + 4;
  tenant.failed = base + 5;
  tenant.in_queue = base + 6;
  tenant.peak_in_queue = base + 7;
  return tenant;
}

ServerStats sample_stats() {
  ServerStats stats;
  stats.submitted = 1000;
  stats.completed = 990;
  stats.shed = 4;
  stats.rejected = 5;
  stats.failed = 1;
  stats.batches = 300;
  stats.batched_images = 990;
  stats.mean_batch_size = 3.3;
  stats.max_batch_observed = 8;
  stats.batch_size_counts = {0, 100, 50, 25, 12, 6, 3, 2, 102};
  stats.queue_depth = 7;
  stats.peak_queue_depth = 64;
  stats.kernel_variant = "avx512vnni";
  // A real histogram, not hand-set summary fields: the document carries the
  // raw buckets and the parser recomputes the derived quantiles from them.
  LatencyHistogram latency;
  for (int i = 0; i < 990; ++i) latency.record_us(137 * (i % 311) + i);
  stats.latency = latency.snapshot();
  stats.tenants["alpha"] = sample_tenant(10);
  stats.tenants["beta \"quoted\"\n"] = sample_tenant(100);  // escaping exercised
  ModelStats model;
  model.version = 3;
  model.plan_compiles = 2;
  model.plan_cache_hits = 988;
  model.session_pools.push_back({"1x3x6x6@avx2", 2, 0, 4});
  model.session_pools.push_back({"4x3x6x6@avx2", 1, 1, 2});
  stats.models["SESR-M2"] = model;
  return stats;
}

void expect_tenant_eq(const TenantStats& a, const TenantStats& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.in_queue, b.in_queue);
  EXPECT_EQ(a.peak_in_queue, b.peak_in_queue);
}

TEST(StatsJson, ServerStatsRoundTripsExactly) {
  const ServerStats stats = sample_stats();
  const ServerStats back = server_stats_from_json(stats_to_json(stats));

  EXPECT_EQ(back.submitted, stats.submitted);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.shed, stats.shed);
  EXPECT_EQ(back.rejected, stats.rejected);
  EXPECT_EQ(back.failed, stats.failed);
  EXPECT_EQ(back.batches, stats.batches);
  EXPECT_EQ(back.batched_images, stats.batched_images);
  EXPECT_EQ(back.mean_batch_size, stats.mean_batch_size);  // bit-exact: %.17g
  EXPECT_EQ(back.max_batch_observed, stats.max_batch_observed);
  EXPECT_EQ(back.batch_size_counts, stats.batch_size_counts);
  EXPECT_EQ(back.queue_depth, stats.queue_depth);
  EXPECT_EQ(back.peak_queue_depth, stats.peak_queue_depth);
  EXPECT_EQ(back.kernel_variant, stats.kernel_variant);
  EXPECT_EQ(back.latency.count, stats.latency.count);
  EXPECT_EQ(back.latency.sum_us, stats.latency.sum_us);
  EXPECT_EQ(back.latency.max_us, stats.latency.max_us);
  EXPECT_EQ(back.latency.buckets, stats.latency.buckets);  // raw, mergeable
  EXPECT_EQ(back.latency.mean_ms, stats.latency.mean_ms);
  EXPECT_EQ(back.latency.max_ms, stats.latency.max_ms);
  EXPECT_EQ(back.latency.p50_ms, stats.latency.p50_ms);
  EXPECT_EQ(back.latency.p95_ms, stats.latency.p95_ms);
  EXPECT_EQ(back.latency.p99_ms, stats.latency.p99_ms);

  ASSERT_EQ(back.tenants.size(), stats.tenants.size());
  for (const auto& [id, tenant] : stats.tenants) {
    ASSERT_TRUE(back.tenants.count(id)) << "tenant id lost in round trip: " << id;
    expect_tenant_eq(back.tenants.at(id), tenant);
  }

  ASSERT_EQ(back.models.size(), stats.models.size());
  for (const auto& [id, model] : stats.models) {
    ASSERT_TRUE(back.models.count(id)) << "model id lost in round trip: " << id;
    const ModelStats& got = back.models.at(id);
    EXPECT_EQ(got.version, model.version);
    EXPECT_EQ(got.plan_compiles, model.plan_compiles);
    EXPECT_EQ(got.plan_cache_hits, model.plan_cache_hits);
    ASSERT_EQ(got.session_pools.size(), model.session_pools.size());
    for (size_t i = 0; i < model.session_pools.size(); ++i) {
      EXPECT_EQ(got.session_pools[i].plan_key, model.session_pools[i].plan_key);
      EXPECT_EQ(got.session_pools[i].idle, model.session_pools[i].idle);
      EXPECT_EQ(got.session_pools[i].live, model.session_pools[i].live);
      EXPECT_EQ(got.session_pools[i].peak, model.session_pools[i].peak);
    }
  }
}

TEST(StatsJson, LatencyBucketsMergeAcrossParsedDocuments) {
  // The reason buckets ride in the document at all: a frontend can merge
  // parsed shard latencies exactly, landing on the histogram a single shard
  // seeing all traffic would report.
  LatencyHistogram all;
  ServerStats shard_a;
  ServerStats shard_b;
  {
    LatencyHistogram a;
    LatencyHistogram b;
    for (int i = 0; i < 700; ++i) {
      const int64_t us = 91 * (i % 257) + 3 * i;
      all.record_us(us);
      (i % 3 == 0 ? a : b).record_us(us);
    }
    shard_a.latency = a.snapshot();
    shard_b.latency = b.snapshot();
  }

  const ServerStats back_a = server_stats_from_json(stats_to_json(shard_a));
  const ServerStats back_b = server_stats_from_json(stats_to_json(shard_b));
  LatencyHistogram::Snapshot merged = back_a.latency;
  merged.merge(back_b.latency);

  const LatencyHistogram::Snapshot truth = all.snapshot();
  EXPECT_EQ(merged.count, truth.count);
  EXPECT_EQ(merged.sum_us, truth.sum_us);
  EXPECT_EQ(merged.max_us, truth.max_us);
  EXPECT_EQ(merged.buckets, truth.buckets);
  EXPECT_DOUBLE_EQ(merged.p50_ms, truth.p50_ms);
  EXPECT_DOUBLE_EQ(merged.p99_ms, truth.p99_ms);
}

TEST(StatsJson, PreBucketsLatencyDocumentsStillParse) {
  // A pong from a pre-buckets shard carries only the derived summary; the
  // parser must keep those numbers instead of recomputing from nothing.
  const std::string json =
      R"({"submitted": 12, "latency": {"count": 12, "mean_ms": 4.5, "max_ms": 9.0,)"
      R"( "p50_ms": 4.0, "p95_ms": 8.0, "p99_ms": 8.5}})";
  const ServerStats back = server_stats_from_json(json);
  EXPECT_EQ(back.latency.count, 12);
  EXPECT_TRUE(back.latency.buckets.empty());
  EXPECT_DOUBLE_EQ(back.latency.mean_ms, 4.5);
  EXPECT_DOUBLE_EQ(back.latency.p99_ms, 8.5);
}

TEST(StatsJson, TenantStatsRoundTrips) {
  const TenantStats tenant = sample_tenant(42);
  const TenantStats back = tenant_stats_from_json(stats_to_json(tenant));
  expect_tenant_eq(back, tenant);
}

TEST(StatsJson, DefaultConstructedRoundTrips) {
  const ServerStats back = server_stats_from_json(stats_to_json(ServerStats{}));
  EXPECT_EQ(back.submitted, 0);
  EXPECT_EQ(back.batch_size_counts.size(), 0u);
  EXPECT_EQ(back.tenants.size(), 0u);
  EXPECT_EQ(back.latency.count, 0);
}

TEST(StatsJson, UnknownFieldsAreSkipped) {
  // A newer shard may report counters this build does not know about.
  const std::string json =
      R"({"submitted": 7, "future_counter": 123, "future_obj": {"a": [1, 2, {"b": null}]},)"
      R"( "completed": 5})";
  const ServerStats back = server_stats_from_json(json);
  EXPECT_EQ(back.submitted, 7);
  EXPECT_EQ(back.completed, 5);
}

TEST(StatsJson, AbsentCountersReadZero) {
  const ServerStats back = server_stats_from_json("{}");
  EXPECT_EQ(back.submitted, 0);
  EXPECT_EQ(back.completed, 0);
  EXPECT_EQ(back.kernel_variant, "");
  EXPECT_EQ(back.tenants.size(), 0u);
}

TEST(StatsJson, MalformedDocumentsThrow) {
  EXPECT_THROW(static_cast<void>(server_stats_from_json("")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json("{")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json("[]")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json(R"({"submitted": "no"})")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json(R"({"submitted": 1} trailing)")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(tenant_stats_from_json(R"({"submitted":)")),
               std::runtime_error);
}

TEST(StatsJson, LiveServerStatsSurviveTheTrip) {
  // Not hand-rolled samples: a real server's counters after real traffic.
  auto upscaler = std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kNearest);
  Server::Options options;
  options.workers = 1;
  Server server(std::static_pointer_cast<models::Upscaler>(upscaler), options);
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(Tensor(Shape({3, 4, 4}))));
  for (ServeFuture& future : futures) ASSERT_TRUE(future.get().ok());
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_FALSE(stats.kernel_variant.empty());  // stats() reports the live tier
  const ServerStats back = server_stats_from_json(stats_to_json(stats));
  EXPECT_EQ(back.kernel_variant, stats.kernel_variant);
  EXPECT_EQ(back.submitted, stats.submitted);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.batch_size_counts, stats.batch_size_counts);
  EXPECT_EQ(back.latency.count, stats.latency.count);
  EXPECT_EQ(back.latency.p99_ms, stats.latency.p99_ms);
  ASSERT_TRUE(back.tenants.count(kDefaultTenant));
  EXPECT_EQ(back.tenants.at(kDefaultTenant).completed,
            stats.tenants.at(kDefaultTenant).completed);
}

}  // namespace
}  // namespace sesr::serve
