// ServerStats/TenantStats JSON round-trip: the wire representation the
// distributed tier's heartbeats carry (dist kPong) and ops tooling scrapes.
#include "serve/stats_json.h"

#include <gtest/gtest.h>

#include <string>

namespace sesr::serve {
namespace {

TenantStats sample_tenant(int64_t base) {
  TenantStats tenant;
  tenant.submitted = base + 1;
  tenant.completed = base + 2;
  tenant.rejected = base + 3;
  tenant.shed = base + 4;
  tenant.failed = base + 5;
  tenant.in_queue = base + 6;
  tenant.peak_in_queue = base + 7;
  return tenant;
}

ServerStats sample_stats() {
  ServerStats stats;
  stats.submitted = 1000;
  stats.completed = 990;
  stats.shed = 4;
  stats.rejected = 5;
  stats.failed = 1;
  stats.batches = 300;
  stats.batched_images = 990;
  stats.mean_batch_size = 3.3;
  stats.max_batch_observed = 8;
  stats.batch_size_counts = {0, 100, 50, 25, 12, 6, 3, 2, 102};
  stats.queue_depth = 7;
  stats.peak_queue_depth = 64;
  stats.kernel_variant = "avx512vnni";
  stats.latency.count = 990;
  stats.latency.mean_ms = 12.345678901234567;
  stats.latency.max_ms = 99.5;
  stats.latency.p50_ms = 10.25;
  stats.latency.p95_ms = 40.0;
  stats.latency.p99_ms = 77.125;
  stats.tenants["alpha"] = sample_tenant(10);
  stats.tenants["beta \"quoted\"\n"] = sample_tenant(100);  // escaping exercised
  return stats;
}

void expect_tenant_eq(const TenantStats& a, const TenantStats& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.in_queue, b.in_queue);
  EXPECT_EQ(a.peak_in_queue, b.peak_in_queue);
}

TEST(StatsJson, ServerStatsRoundTripsExactly) {
  const ServerStats stats = sample_stats();
  const ServerStats back = server_stats_from_json(stats_to_json(stats));

  EXPECT_EQ(back.submitted, stats.submitted);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.shed, stats.shed);
  EXPECT_EQ(back.rejected, stats.rejected);
  EXPECT_EQ(back.failed, stats.failed);
  EXPECT_EQ(back.batches, stats.batches);
  EXPECT_EQ(back.batched_images, stats.batched_images);
  EXPECT_EQ(back.mean_batch_size, stats.mean_batch_size);  // bit-exact: %.17g
  EXPECT_EQ(back.max_batch_observed, stats.max_batch_observed);
  EXPECT_EQ(back.batch_size_counts, stats.batch_size_counts);
  EXPECT_EQ(back.queue_depth, stats.queue_depth);
  EXPECT_EQ(back.peak_queue_depth, stats.peak_queue_depth);
  EXPECT_EQ(back.kernel_variant, stats.kernel_variant);
  EXPECT_EQ(back.latency.count, stats.latency.count);
  EXPECT_EQ(back.latency.mean_ms, stats.latency.mean_ms);
  EXPECT_EQ(back.latency.max_ms, stats.latency.max_ms);
  EXPECT_EQ(back.latency.p50_ms, stats.latency.p50_ms);
  EXPECT_EQ(back.latency.p95_ms, stats.latency.p95_ms);
  EXPECT_EQ(back.latency.p99_ms, stats.latency.p99_ms);

  ASSERT_EQ(back.tenants.size(), stats.tenants.size());
  for (const auto& [id, tenant] : stats.tenants) {
    ASSERT_TRUE(back.tenants.count(id)) << "tenant id lost in round trip: " << id;
    expect_tenant_eq(back.tenants.at(id), tenant);
  }
}

TEST(StatsJson, TenantStatsRoundTrips) {
  const TenantStats tenant = sample_tenant(42);
  const TenantStats back = tenant_stats_from_json(stats_to_json(tenant));
  expect_tenant_eq(back, tenant);
}

TEST(StatsJson, DefaultConstructedRoundTrips) {
  const ServerStats back = server_stats_from_json(stats_to_json(ServerStats{}));
  EXPECT_EQ(back.submitted, 0);
  EXPECT_EQ(back.batch_size_counts.size(), 0u);
  EXPECT_EQ(back.tenants.size(), 0u);
  EXPECT_EQ(back.latency.count, 0);
}

TEST(StatsJson, UnknownFieldsAreSkipped) {
  // A newer shard may report counters this build does not know about.
  const std::string json =
      R"({"submitted": 7, "future_counter": 123, "future_obj": {"a": [1, 2, {"b": null}]},)"
      R"( "completed": 5})";
  const ServerStats back = server_stats_from_json(json);
  EXPECT_EQ(back.submitted, 7);
  EXPECT_EQ(back.completed, 5);
}

TEST(StatsJson, AbsentCountersReadZero) {
  const ServerStats back = server_stats_from_json("{}");
  EXPECT_EQ(back.submitted, 0);
  EXPECT_EQ(back.completed, 0);
  EXPECT_EQ(back.kernel_variant, "");
  EXPECT_EQ(back.tenants.size(), 0u);
}

TEST(StatsJson, MalformedDocumentsThrow) {
  EXPECT_THROW(static_cast<void>(server_stats_from_json("")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json("{")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json("[]")), std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json(R"({"submitted": "no"})")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(server_stats_from_json(R"({"submitted": 1} trailing)")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(tenant_stats_from_json(R"({"submitted":)")),
               std::runtime_error);
}

TEST(StatsJson, LiveServerStatsSurviveTheTrip) {
  // Not hand-rolled samples: a real server's counters after real traffic.
  auto upscaler = std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kNearest);
  Server::Options options;
  options.workers = 1;
  Server server(std::static_pointer_cast<models::Upscaler>(upscaler), options);
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(Tensor(Shape({3, 4, 4}))));
  for (ServeFuture& future : futures) ASSERT_TRUE(future.get().ok());
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_FALSE(stats.kernel_variant.empty());  // stats() reports the live tier
  const ServerStats back = server_stats_from_json(stats_to_json(stats));
  EXPECT_EQ(back.kernel_variant, stats.kernel_variant);
  EXPECT_EQ(back.submitted, stats.submitted);
  EXPECT_EQ(back.completed, stats.completed);
  EXPECT_EQ(back.batch_size_counts, stats.batch_size_counts);
  EXPECT_EQ(back.latency.count, stats.latency.count);
  EXPECT_EQ(back.latency.p99_ms, stats.latency.p99_ms);
  ASSERT_TRUE(back.tenants.count(kDefaultTenant));
  EXPECT_EQ(back.tenants.at(kDefaultTenant).completed,
            stats.tenants.at(kDefaultTenant).completed);
}

}  // namespace
}  // namespace sesr::serve
