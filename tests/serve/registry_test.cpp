// ModelRegistry contract: versioned snapshots, RCU hot-swap (in-flight work
// finishes on the old snapshot, post-publish submissions see the new one),
// and the Server's multi-tenant routing and quota enforcement on top.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "models/models.h"
#include "serve/serve.h"
#include "tests/support/fault_injection.h"

namespace sesr::serve {
namespace {

using sesr::testsupport::FaultingAffine;

std::shared_ptr<ModelRegistry> affine_registry(float scale = 0.5f, float offset = 0.25f) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model("affine", "affine-v1",
                           std::make_shared<FaultingAffine>(scale, offset));
  return registry;
}

TEST(ModelRegistryTest, RegisterAndAcquire) {
  auto registry = affine_registry();
  EXPECT_TRUE(registry->contains("affine"));
  EXPECT_FALSE(registry->contains("missing"));
  EXPECT_EQ(registry->size(), 1u);
  EXPECT_EQ(registry->model_ids(), std::vector<std::string>{"affine"});

  const auto snapshot = registry->acquire("affine");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->model, "affine");
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_EQ(snapshot->precision, runtime::Precision::kFloat32);
  ASSERT_NE(snapshot->network, nullptr);
  EXPECT_EQ(snapshot->artifact, nullptr);

  EXPECT_THROW(static_cast<void>(registry->acquire("missing")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(registry->version("missing")), std::out_of_range);
  EXPECT_THROW(registry->register_model("affine", "dup", std::make_shared<FaultingAffine>()),
               std::invalid_argument);
}

TEST(ModelRegistryTest, PublishInstallsMonotonicVersions) {
  auto registry = affine_registry();
  EXPECT_EQ(registry->version("affine"), 1);
  EXPECT_EQ(registry->publish_fp32("affine"), 2);
  EXPECT_EQ(registry->publish_fp32("affine"), 3);
  EXPECT_EQ(registry->version("affine"), 3);
  EXPECT_EQ(registry->acquire("affine")->version, 3);
}

TEST(ModelRegistryTest, PublishGenericRecordsUpscalerPrecision) {
  auto registry = affine_registry();
  // A caller-prepared replacement with different coefficients.
  const int64_t version =
      registry->publish("affine", std::make_shared<models::NetworkUpscaler>(
                                      "affine-v2", std::make_shared<FaultingAffine>(2.0f, 0.0f)));
  EXPECT_EQ(version, 2);
  const auto snapshot = registry->acquire("affine");
  EXPECT_EQ(snapshot->precision, runtime::Precision::kFloat32);
  ASSERT_NE(snapshot->network, nullptr);
  EXPECT_EQ(snapshot->upscaler->label(), "affine-v2");
}

TEST(ModelRegistryTest, OldSnapshotSurvivesPublish) {
  auto registry = affine_registry();
  const auto old_snapshot = registry->acquire("affine");
  registry->publish_fp32("affine");

  // RCU grace period: the pre-swap snapshot still dispatches correctly even
  // though the registry has moved on.
  Rng rng(7);
  const Tensor image = Tensor::rand({1, 3, 6, 6}, rng);
  const Tensor out = old_snapshot->upscaler->upscale(image);
  EXPECT_EQ(out.shape(), image.shape());
  EXPECT_EQ(old_snapshot->version, 1);
  EXPECT_EQ(registry->acquire("affine")->version, 2);
}

TEST(ModelRegistryTest, InterpolationUpscalerRegistersButCannotRepublish) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_upscaler("bilinear", std::make_shared<models::InterpolationUpscaler>(
                                              preprocess::InterpolationKind::kBilinear));
  const auto snapshot = registry->acquire("bilinear");
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_EQ(snapshot->network, nullptr);
  // No module retained: sibling rebuilds are impossible by construction.
  EXPECT_THROW(static_cast<void>(registry->publish_fp32("bilinear")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(registry->publish_int8("bilinear", nullptr)),
               std::invalid_argument);
}

TEST(ModelRegistryTest, PublishInt8ServesTheArtifact) {
  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                models::Sesr::Form::kInference);
  Rng rng(11);
  network->init_weights(rng);
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model("sesr", "SESR-M2", network);

  const Shape input{1, 3, 8, 8};
  std::vector<Tensor> batches;
  Rng cal_rng(12);
  for (int i = 0; i < 2; ++i) batches.push_back(Tensor::rand(input, cal_rng));
  auto artifact = std::make_shared<const quant::QuantizedModel>(
      quant::QuantizedModel::calibrate(*network, input, batches));

  const int64_t version = registry->publish_int8("sesr", artifact, {input});
  EXPECT_EQ(version, 2);
  const auto snapshot = registry->acquire("sesr");
  EXPECT_EQ(snapshot->precision, runtime::Precision::kInt8);
  EXPECT_EQ(snapshot->artifact, artifact);
  ASSERT_NE(snapshot->network, nullptr);
  EXPECT_EQ(snapshot->network->precision(), runtime::Precision::kInt8);
  // warm_shapes precompiled the plan before install: serving compiles nothing.
  const int64_t compiles = snapshot->network->plan_compile_count();
  Rng in_rng(13);
  const Tensor out = snapshot->upscaler->upscale(Tensor::rand(input, in_rng));
  EXPECT_EQ(out.shape(), Shape({1, 3, 16, 16}));
  EXPECT_EQ(snapshot->network->plan_compile_count(), compiles);

  // Flipping back republishes fp32 at the next version.
  EXPECT_EQ(registry->publish_fp32("sesr", {input}), 3);
  EXPECT_EQ(registry->acquire("sesr")->precision, runtime::Precision::kFloat32);
}

TEST(ServerRoutingTest, RepliesCarryTheServedVersionAcrossASwap) {
  auto registry = affine_registry(0.5f, 0.0f);
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  Server server(registry, options);

  Rng rng(17);
  const Tensor image = Tensor::rand({3, 6, 6}, rng);
  ServeReply reply = server.submit(image, Server::SubmitOptions{.model = "affine"}).get();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.model_version, 1);
  // v1 output proves which coefficients served: out = in * 0.5.
  Tensor expect_v1 = image;
  expect_v1.mul_scalar(0.5f);
  EXPECT_EQ(reply.output.reshaped({3, 6, 6}).max_abs_diff(expect_v1), 0.0f);

  // Swap barrier: after publish() returns, a new submission must be served
  // by the new version — and its output must prove it (out = in * 0.25).
  registry->publish("affine", std::make_shared<models::NetworkUpscaler>(
                                  "affine-v2", std::make_shared<FaultingAffine>(0.25f, 0.0f)));
  reply = server.submit(image, Server::SubmitOptions{.model = "affine"}).get();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.model_version, 2);
  Tensor expect_v2 = image;
  expect_v2.mul_scalar(0.25f);
  EXPECT_EQ(reply.output.reshaped({3, 6, 6}).max_abs_diff(expect_v2), 0.0f);
}

TEST(ServerRoutingTest, UnknownModelIdThrowsAtTheDoor) {
  Server server(affine_registry(), {});
  Rng rng(19);
  const Tensor image = Tensor::rand({3, 4, 4}, rng);
  EXPECT_THROW(static_cast<void>(
                   server.submit(image, Server::SubmitOptions{.model = "missing"})),
               std::invalid_argument);
  // The default-model overloads need a registered kDefaultModel.
  EXPECT_THROW(static_cast<void>(server.submit(image)), std::invalid_argument);
}

TEST(ServerRoutingTest, TwoModelsServeConcurrentlyWithoutCrossTalk) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_model("half", "half", std::make_shared<FaultingAffine>(0.5f, 0.0f));
  registry->register_model("quarter", "quarter", std::make_shared<FaultingAffine>(0.25f, 0.0f));
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  Server server(registry, options);

  Rng rng(23);
  const Tensor image = Tensor::rand({3, 5, 5}, rng);
  std::vector<std::pair<std::string, float>> routes = {{"half", 0.5f}, {"quarter", 0.25f}};
  std::vector<ServeFuture> futures;
  std::vector<float> scales;
  for (int i = 0; i < 40; ++i) {
    const auto& [model, scale] = routes[static_cast<size_t>(i) % routes.size()];
    futures.push_back(server.submit(image, Server::SubmitOptions{.model = model}));
    scales.push_back(scale);
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.error;
    Tensor expected = image;
    expected.mul_scalar(scales[i]);
    EXPECT_EQ(reply.output.reshaped({3, 5, 5}).max_abs_diff(expected), 0.0f) << i;
  }
  // Batches never mix models, so every dispatch's images share a scale.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 40);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServerTenantTest, QuotaRefusesTheExcessNotTheTenant) {
  auto registry = affine_registry();
  Server::Options options;
  options.workers = 1;
  options.max_batch = 1;
  options.queue_capacity = 64;
  options.tenant_quotas["small"] = {.max_in_queue = 2};
  // Stall every dispatch so a burst outpaces the worker and the tenant's
  // occupancy actually hits its cap.
  options.fault_plan = std::make_shared<FaultPlan>(FaultPlan::Options{
      .seed = 5, .worker_stall_period = 1, .worker_stall_for = std::chrono::microseconds(2000)});
  Server server(registry, options);

  Rng rng(29);
  const Tensor image = Tensor::rand({3, 4, 4}, rng);

  // Serial submit-then-get keeps occupancy <= 1: the quota never bites.
  for (int i = 0; i < 8; ++i) {
    ServeReply reply =
        server.submit(image, Server::SubmitOptions{.model = "affine", .tenant = "small"}).get();
    ASSERT_TRUE(reply.ok()) << reply.error;
  }

  // Burst-submit without collecting: occupancy exceeds 2 behind the stalled
  // worker, and the excess is refused immediately — not queued, not lost.
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(
        server.submit(image, Server::SubmitOptions{.model = "affine", .tenant = "small"}));
  int burst_ok = 0, burst_refused = 0;
  for (ServeFuture& f : futures) {
    ServeReply reply = f.get();
    if (reply.ok())
      ++burst_ok;
    else if (reply.error == "tenant over quota")
      ++burst_refused;
  }
  EXPECT_EQ(burst_ok + burst_refused, 16);  // exactly one reply per request
  EXPECT_GT(burst_ok, 0);
  EXPECT_GT(burst_refused, 0) << "occupancy never reached the quota";

  const ServerStats stats = server.stats();
  const auto tenant = stats.tenants.find("small");
  ASSERT_NE(tenant, stats.tenants.end());
  EXPECT_EQ(tenant->second.completed, 8 + burst_ok);
  EXPECT_EQ(tenant->second.rejected, burst_refused);
  EXPECT_LE(tenant->second.peak_in_queue, 2);
  EXPECT_EQ(tenant->second.in_queue, 0);
}

TEST(ServerTenantTest, TenantDeadlineDefaultAppliesWhenCallerPassesNone) {
  auto registry = affine_registry();
  Server::Options options;
  options.workers = 1;
  // An effectively-instant tenant deadline with a stalled worker: everything
  // from this tenant sheds, while the unconfigured tenant (no deadline) is
  // always served.
  options.tenant_quotas["impatient"] = {.default_deadline = std::chrono::milliseconds(1)};
  auto plan = std::make_shared<FaultPlan>(FaultPlan::Options{
      .seed = 3, .worker_stall_period = 1, .worker_stall_for = std::chrono::microseconds(3000)});
  options.fault_plan = plan;
  Server server(registry, options);

  Rng rng(31);
  const Tensor image = Tensor::rand({3, 4, 4}, rng);
  int shed = 0;
  for (int i = 0; i < 8; ++i) {
    ServeReply reply =
        server
            .submit(image, Server::SubmitOptions{.model = "affine", .tenant = "impatient"})
            .get();
    if (reply.status == ServeStatus::kShed) ++shed;
  }
  EXPECT_GT(shed, 0) << "1ms tenant deadline never expired behind a stalled worker";
  EXPECT_GT(plan->worker_stalls_fired(), 0);

  ServeReply patient =
      server.submit(image, Server::SubmitOptions{.model = "affine", .tenant = "patient"})
          .get();
  EXPECT_TRUE(patient.ok()) << patient.error;

  const ServerStats stats = server.stats();
  ASSERT_TRUE(stats.tenants.count("impatient"));
  EXPECT_EQ(stats.tenants.at("impatient").shed, shed);
  EXPECT_EQ(stats.tenants.at("patient").shed, 0);
}

TEST(ServerRoutingTest, ConcurrentSwapsNeverDropOrMisrouteRequests) {
  // A compact version of the soak invariant: hammer one model from several
  // threads while another thread republishes it continuously. Every request
  // gets exactly one reply; every kOk reply's content matches the version it
  // claims (out = in * scale(version)); versions never run backwards past
  // the submit-time floor.
  auto registry = std::make_shared<ModelRegistry>();
  // Scales stay below 1 so the upscaler's [0, 1] output clamp never fires
  // and reply content remains an exact witness of the serving version.
  const auto scale_for = [](int64_t version) {
    return 1.0f / (1.0f + 0.25f * static_cast<float>(version));
  };
  registry->register_model("affine", "affine",
                           std::make_shared<FaultingAffine>(scale_for(1), 0.0f));
  Server::Options options;
  options.workers = 3;
  options.max_batch = 4;
  Server server(registry, options);

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    int64_t next = 2;
    while (!stop_swapping.load()) {
      registry->publish("affine",
                        std::make_shared<models::NetworkUpscaler>(
                            "affine", std::make_shared<FaultingAffine>(scale_for(next), 0.0f)));
      ++next;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 120;
  std::atomic<int64_t> replies{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> stale{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      const Tensor image = Tensor::rand({1, 3, 4, 4}, rng);
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t floor = registry->version("affine");
        ServeReply reply =
            server.submit(image, Server::SubmitOptions{.model = "affine"}).get();
        replies.fetch_add(1);
        if (!reply.ok()) continue;  // this test injects no faults; count anyway
        if (reply.model_version < floor) stale.fetch_add(1);
        Tensor expected = image;
        expected.mul_scalar(scale_for(reply.model_version));
        if (reply.output.max_abs_diff(expected) != 0.0f) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop_swapping.store(true);
  swapper.join();
  server.stop();

  EXPECT_EQ(replies.load(), kThreads * kPerThread);  // exactly one reply each
  EXPECT_EQ(mismatches.load(), 0) << "a reply's content did not match its claimed version";
  EXPECT_EQ(stale.load(), 0) << "a reply was served by a version older than its submit floor";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.failed + stats.shed, kThreads * kPerThread);
  EXPECT_GT(registry->version("affine"), 1);
}

}  // namespace
}  // namespace sesr::serve
