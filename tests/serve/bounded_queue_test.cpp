// The serving queue's contract: bounded FIFO admission under concurrency,
// backpressure when full, shutdown-with-drain, and micro-batch popping that
// coalesces only compatible contiguous prefixes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "serve/bounded_queue.h"

namespace sesr::serve {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(int{i}));
  EXPECT_EQ(queue.size(), 5);
  for (int i = 0; i < 5; ++i) {
    const std::optional<int> item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2);
  EXPECT_EQ(queue.peak_size(), 2);
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // full: must block until the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());  // still blocked on backpressure
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenEndsStream) {
  BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // producers turned away immediately
  EXPECT_EQ(queue.pop().value(), 1);  // consumers drain what was admitted
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // then end-of-stream
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  std::thread producer([&] { EXPECT_FALSE(full.push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });
  std::this_thread::sleep_for(10ms);
  full.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, PopBatchCoalescesCompatiblePrefix) {
  BoundedQueue<int> queue(16);
  for (const int v : {2, 4, 6, 7, 8}) ASSERT_TRUE(queue.push(int{v}));
  const auto same_parity = [](int candidate, int first) {
    return candidate % 2 == first % 2;
  };
  std::vector<int> batch;
  // Takes 2, 4, 6; stops at 7 (incompatible head — never overtaken).
  ASSERT_TRUE(queue.pop_batch(batch, 8, same_parity));
  EXPECT_EQ(batch, (std::vector<int>{2, 4, 6}));
  batch.clear();
  ASSERT_TRUE(queue.pop_batch(batch, 8, same_parity));
  EXPECT_EQ(batch, (std::vector<int>{7}));
  batch.clear();
  ASSERT_TRUE(queue.pop_batch(batch, 8, same_parity));
  EXPECT_EQ(batch, (std::vector<int>{8}));
}

TEST(BoundedQueueTest, PopBatchHonorsMax) {
  BoundedQueue<int> queue(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.push(int{i}));
  std::vector<int> batch;
  ASSERT_TRUE(queue.pop_batch(batch, 4, [](int, int) { return true; }));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.size(), 2);
}

TEST(BoundedQueueTest, PopBatchLingersForLateArrivals) {
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.push(1));
  std::thread late([&] {
    std::this_thread::sleep_for(15ms);
    EXPECT_TRUE(queue.push(2));
  });
  std::vector<int> batch;
  // The 500 ms linger budget comfortably covers the 15 ms late arrival.
  ASSERT_TRUE(queue.pop_batch(batch, 2, [](int, int) { return true; }, 500ms));
  late.join();
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
}

TEST(BoundedQueueTest, PopBatchWithoutLingerTakesOnlyWhatIsQueued) {
  BoundedQueue<int> queue(16);
  ASSERT_TRUE(queue.push(1));
  std::vector<int> batch;
  ASSERT_TRUE(queue.pop_batch(batch, 4, [](int, int) { return true; }));
  EXPECT_EQ(batch, (std::vector<int>{1}));
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(16);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> batch;
      while (queue.pop_batch(batch, 8, [](int, int) { return true; })) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        for (const int v : batch) EXPECT_TRUE(seen.insert(v).second) << v;
        batch.clear();
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  queue.close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_LE(queue.peak_size(), queue.capacity());
}

TEST(BoundedQueueTest, RejectsNonPositiveCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
  EXPECT_THROW(BoundedQueue<int>(-3), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::serve
