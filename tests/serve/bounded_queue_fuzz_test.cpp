// Randomized schedules against a sequential reference model of BoundedQueue.
//
// The example-based suite (bounded_queue_test.cpp) checks each behaviour in
// isolation; this one drives long seeded interleavings of every operation —
// push / try_push / pop / pop_batch(compat, linger) / close — and checks the
// queue against a plain std::deque executing the same operations, so
// ordering, rejection accounting, and close-drains-then-ends hold across
// operation *combinations* no example test enumerates. Failures reproduce
// from the seed printed in the assertion message.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "serve/bounded_queue.h"
#include "tensor/rng.h"

namespace sesr::serve {
namespace {

/// Payload: `key` is the batching-compatibility class (the serving engine's
/// model+shape), `sequence` the global submission index (FIFO witness).
struct Item {
  int64_t key = 0;
  int64_t sequence = 0;
};

/// Single-threaded: every randomized op sequence must behave exactly like
/// the reference deque (bounded, FIFO, contiguous-prefix batching).
TEST(BoundedQueueFuzzTest, SequentialOpsMatchTheReferenceModel) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const auto rand_below = [&](int64_t n) { return rng.randint(0, n - 1); };
    const int64_t capacity = 1 + rand_below(6);
    BoundedQueue<Item> queue(capacity);
    std::deque<Item> model;
    const auto compatible = [](const Item& candidate, const Item& first) {
      return candidate.key == first.key;
    };

    int64_t next_sequence = 0;
    bool closed = false;
    for (int op_index = 0; op_index < 400; ++op_index) {
      const int64_t op = rand_below(10);
      if (op < 4) {  // try_push (non-blocking: safe single-threaded)
        Item item{rand_below(3), next_sequence};
        const bool pushed = queue.try_push(Item{item});
        const bool expect =
            !closed && static_cast<int64_t>(model.size()) < capacity;
        ASSERT_EQ(pushed, expect) << "seed " << seed << " op " << op_index;
        if (pushed) {
          model.push_back(item);
          ++next_sequence;
        }
      } else if (op < 7) {  // pop_batch with a random max; zero linger
        if (model.empty() && !closed) continue;  // would block forever
        std::vector<Item> batch;
        const int64_t max = 1 + rand_below(4);
        const bool got = queue.pop_batch(batch, max, compatible);
        if (model.empty()) {
          ASSERT_FALSE(got) << "seed " << seed;
          ASSERT_TRUE(batch.empty());
          continue;
        }
        ASSERT_TRUE(got) << "seed " << seed;
        // Reference: the longest same-key prefix, capped at max.
        std::vector<Item> expect;
        while (!model.empty() && static_cast<int64_t>(expect.size()) < max &&
               (expect.empty() || model.front().key == expect.front().key)) {
          expect.push_back(model.front());
          model.pop_front();
        }
        ASSERT_EQ(batch.size(), expect.size()) << "seed " << seed << " op " << op_index;
        for (size_t i = 0; i < batch.size(); ++i) {
          ASSERT_EQ(batch[i].key, expect[i].key) << "seed " << seed;
          ASSERT_EQ(batch[i].sequence, expect[i].sequence) << "seed " << seed;
        }
      } else if (op < 9) {  // pop
        if (model.empty() && !closed) continue;
        const std::optional<Item> item = queue.pop();
        if (model.empty()) {
          ASSERT_FALSE(item.has_value()) << "seed " << seed;
        } else {
          ASSERT_TRUE(item.has_value()) << "seed " << seed;
          ASSERT_EQ(item->sequence, model.front().sequence) << "seed " << seed;
          model.pop_front();
        }
      } else if (op == 9 && op_index > 300) {  // close late in the schedule
        queue.close();
        closed = true;
      }
      ASSERT_EQ(queue.size(), static_cast<int64_t>(model.size())) << "seed " << seed;
      ASSERT_LE(queue.size(), capacity) << "seed " << seed;
    }

    // Drain: close-then-pop returns every remaining item in order, then ends.
    queue.close();
    while (!model.empty()) {
      const std::optional<Item> item = queue.pop();
      ASSERT_TRUE(item.has_value()) << "seed " << seed;
      ASSERT_EQ(item->sequence, model.front().sequence) << "seed " << seed;
      model.pop_front();
    }
    ASSERT_FALSE(queue.pop().has_value()) << "seed " << seed;
  }
}

/// Multi-threaded: randomized producer/consumer schedules must lose nothing,
/// duplicate nothing, keep per-producer FIFO order, and account every
/// try_push refusal.
TEST(BoundedQueueFuzzTest, ConcurrentSchedulesConserveItems) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int64_t kPerProducer = 300;
    BoundedQueue<Item> queue(8);

    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> refused{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(seed * 1000 + static_cast<uint64_t>(p));
        for (int64_t i = 0; i < kPerProducer; ++i) {
          // sequence encodes (producer, index): consumers can check
          // per-producer FIFO without cross-thread coordination.
          Item item{rng.randint(0, 2), p * kPerProducer + i};
          if (rng.bernoulli(0.5)) {
            ASSERT_TRUE(queue.push(std::move(item)));  // blocking: always lands
            accepted.fetch_add(1);
          } else if (queue.try_push(std::move(item))) {
            accepted.fetch_add(1);
          } else {
            refused.fetch_add(1);
          }
        }
      });
    }

    std::atomic<int64_t> consumed{0};
    std::vector<std::vector<Item>> taken(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&, c] {
        Rng rng(seed * 2000 + static_cast<uint64_t>(c));
        std::vector<Item> batch;
        const auto compatible = [](const Item& candidate, const Item& first) {
          return candidate.key == first.key;
        };
        for (;;) {
          batch.clear();
          const int64_t max = rng.randint(1, 4);
          const auto linger = std::chrono::microseconds(rng.randint(0, 199));
          if (!queue.pop_batch(batch, max, compatible, linger)) return;
          for (const Item& item : batch) {
            ASSERT_TRUE(batch.front().key == item.key);  // batch is one class
            taken[static_cast<size_t>(c)].push_back(item);
          }
          consumed.fetch_add(static_cast<int64_t>(batch.size()));
        }
      });
    }

    for (std::thread& p : producers) p.join();
    queue.close();
    for (std::thread& c : consumers) c.join();

    // Conservation: accepted + refused covers every submission; consumers
    // drained exactly the accepted ones (close drains, never drops).
    EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer) << "seed " << seed;
    EXPECT_EQ(consumed.load(), accepted.load()) << "seed " << seed;
    EXPECT_EQ(queue.size(), 0) << "seed " << seed;

    // No duplicates across consumers, and per-producer order within each
    // consumer is increasing (FIFO is never violated by batching).
    std::vector<int64_t> all;
    for (int c = 0; c < kConsumers; ++c) {
      std::vector<int64_t> last_per_producer(kProducers, -1);
      for (const Item& item : taken[static_cast<size_t>(c)]) {
        all.push_back(item.sequence);
        const int64_t producer = item.sequence / kPerProducer;
        // A later pop by the same consumer can't hold an earlier sequence of
        // the same producer: batches are contiguous queue prefixes.
        EXPECT_GT(item.sequence, last_per_producer[static_cast<size_t>(producer)])
            << "seed " << seed;
        last_per_producer[static_cast<size_t>(producer)] = item.sequence;
      }
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "seed " << seed << ": duplicate delivery";
    EXPECT_EQ(static_cast<int64_t>(all.size()), accepted.load()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sesr::serve
