// The SLO histogram's contract: exact counts, bounded quantile error from
// the log-linear bucketing, and safe concurrent recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/latency_histogram.h"

namespace sesr::serve {
namespace {

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram histogram;
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.p50_ms, 0.0);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // The first 16 buckets are one-microsecond wide: tiny latencies do not
  // quantize at all.
  LatencyHistogram histogram;
  for (int64_t us = 0; us < 16; ++us) histogram.record_us(us);
  EXPECT_EQ(histogram.count(), 16);
  EXPECT_DOUBLE_EQ(histogram.quantile_ms(0.5), 7e-3);    // 8th of 16 samples
  EXPECT_DOUBLE_EQ(histogram.quantile_ms(1.0), 15e-3);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketError) {
  // Uniform 1..1000 ms: nearest-rank p50 is 500 ms, p95 950 ms, p99 990 ms.
  // The log-linear buckets guarantee < ~9% relative error above the linear
  // range.
  LatencyHistogram histogram;
  for (int64_t ms = 1; ms <= 1000; ++ms) histogram.record_us(ms * 1000);
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_NEAR(snap.p50_ms, 500.0, 500.0 * 0.09);
  EXPECT_NEAR(snap.p95_ms, 950.0, 950.0 * 0.09);
  EXPECT_NEAR(snap.p99_ms, 990.0, 990.0 * 0.09);
  EXPECT_DOUBLE_EQ(snap.max_ms, 1000.0);
  EXPECT_NEAR(snap.mean_ms, 500.5, 1e-9);  // sum/count is exact
}

TEST(LatencyHistogramTest, LowerHalfOctaveValuesStayWithinBucketError) {
  // Regression: values in the lower half of a power-of-two octave (e.g.
  // 1100 us in [1024, 2048)) once mapped to the wrong sub-bucket and read
  // back ~42% too high. The larger sample keeps the max-clamp from masking
  // the p50 bucket value.
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record_us(1100);
  histogram.record_us(5000);
  EXPECT_NEAR(histogram.quantile_ms(0.5), 1.1, 1.1 * 0.09);
}

TEST(LatencyHistogramTest, QuantilesAreMonotonic) {
  LatencyHistogram histogram;
  for (int64_t us : {5, 90, 1200, 40000, 40000, 750000}) histogram.record_us(us);
  double previous = -1.0;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = histogram.quantile_ms(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

// Satellite: sweep every octave boundary (2^k) and every sub-bucket edge
// ((16+sub)<<octave) across the histogram's range, each with its ±1
// neighbours. These are exactly the values where the log-linear index math
// can misplace a sample (the LowerHalfOctave regression above was one such
// edge); the read-back quantile for a repeated value must stay within the
// documented one-sub-bucket error everywhere.
TEST(LatencyHistogramTest, OctaveAndSubBucketBoundarySweepStaysWithinError) {
  std::vector<int64_t> probes;
  for (int octave = 4; octave <= 38; ++octave) {
    const int64_t base = int64_t{1} << octave;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    // Sub-bucket edges inside this octave: (16 + sub) << (octave - 4).
    if (octave >= 5) {
      for (int64_t sub = 1; sub < 16; ++sub) {
        const int64_t edge = (16 + sub) << (octave - 4);
        probes.push_back(edge - 1);
        probes.push_back(edge);
        probes.push_back(edge + 1);
      }
    }
  }
  for (const int64_t us : probes) {
    LatencyHistogram histogram;
    histogram.record_us(us);
    const double got_ms = histogram.quantile_ms(0.5);
    const double want_ms = static_cast<double>(us) / 1000.0;
    if (us < 16) {
      EXPECT_DOUBLE_EQ(got_ms, want_ms) << "us=" << us;  // linear range is exact
    } else {
      // One sub-bucket of relative error: bucket width / bucket low edge is
      // at most 1/16, and the geometric midpoint at most ~3.1% off either
      // end; 9% is the documented (loose) bound.
      EXPECT_NEAR(got_ms, want_ms, want_ms * 0.09) << "us=" << us;
    }
    EXPECT_EQ(histogram.count(), 1) << "us=" << us;
  }
}

// Satellite (runs under TSan in CI): snapshot()/quantile_ms() while writers
// are mid-record must be data-race-free and internally sane — count never
// goes backwards between snapshots, quantiles stay ordered and never exceed
// the running max.
TEST(LatencyHistogramTest, SnapshotDuringConcurrentRecordingIsSane) {
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 50000;
  LatencyHistogram histogram;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i)
        histogram.record_us(1 + (static_cast<int64_t>(t) * 7919 + i) % 100000);
    });
  }

  std::thread reader([&] {
    int64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const LatencyHistogram::Snapshot snap = histogram.snapshot();
      // Race-safe invariants only: each quantile is computed over a slightly
      // different in-flight state, so cross-quantile ordering is asserted on
      // the quiescent snapshot below, not here.
      EXPECT_GE(snap.count, last_count);  // count never goes backwards
      last_count = snap.count;
      for (const double value : {snap.p50_ms, snap.p95_ms, snap.p99_ms, snap.max_ms}) {
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 100.0);  // nothing larger was ever recorded
      }
    }
  });

  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const LatencyHistogram::Snapshot final_snap = histogram.snapshot();
  EXPECT_EQ(final_snap.count, static_cast<int64_t>(kWriters) * kPerWriter);
  EXPECT_LE(final_snap.p50_ms, final_snap.p95_ms);
  EXPECT_LE(final_snap.p95_ms, final_snap.p99_ms);
  EXPECT_LE(final_snap.p99_ms, final_snap.max_ms);
}

TEST(LatencyHistogramTest, NegativeClampsToZero) {
  LatencyHistogram histogram;
  histogram.record_us(-50);
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_DOUBLE_EQ(histogram.quantile_ms(1.0), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        histogram.record_us(static_cast<int64_t>(t) * 1000 + i % 997);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<int64_t>(kThreads) * kPerThread);
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_GT(snap.max_ms, 0.0);
}

}  // namespace
}  // namespace sesr::serve
