// The serving engine's contract: batched replies bit-identical to the
// blocking upscale() path, admission control (backpressure + rejection),
// deadline shedding, drain-on-stop, fault isolation, and warmup removing
// plan compilation from the serving path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "models/models.h"
#include "serve/serve.h"

namespace sesr::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<models::NetworkUpscaler> make_upscaler(uint64_t seed = 5) {
  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                models::Sesr::Form::kInference);
  Rng rng(seed);
  network->init_weights(rng);
  return std::make_shared<models::NetworkUpscaler>("SESR-M2", std::move(network));
}

Tensor tile(int64_t size, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand({1, 3, size, size}, rng);
}

/// Delegates to nearest-neighbour interpolation, throwing instead while
/// armed — the fault-injection seam for worker error handling.
class FlakyUpscaler final : public models::Upscaler {
 public:
  Tensor upscale(const Tensor& low_res) override {
    if (armed.load()) throw std::runtime_error("injected upscaler fault");
    if (armed_non_std.load()) throw 42;  // worst case: not a std::exception
    return delegate_.upscale(low_res);
  }
  [[nodiscard]] std::string label() const override { return "Flaky"; }
  [[nodiscard]] int64_t num_params() const override { return 0; }
  [[nodiscard]] int64_t macs_for(const Shape&) const override { return 0; }

  std::atomic<bool> armed{false};
  std::atomic<bool> armed_non_std{false};

 private:
  models::InterpolationUpscaler delegate_{preprocess::InterpolationKind::kNearest};
};

TEST(ServerTest, BatchedRepliesBitIdenticalToUpscale) {
  auto upscaler = make_upscaler();
  constexpr int kRequests = 10;
  std::vector<Tensor> tiles;
  std::vector<Tensor> references;
  for (int i = 0; i < kRequests; ++i) {
    tiles.push_back(tile(6, 100 + static_cast<uint64_t>(i)));
    references.push_back(upscaler->upscale(tiles.back()));
  }

  Server::Options options;
  options.workers = 1;
  options.max_batch = 4;
  options.batch_linger = 5ms;  // hold short batches so coalescing happens
  Server server(upscaler, options);
  server.warmup({3, 6, 6});

  std::vector<ServeFuture> futures;
  for (const Tensor& image : tiles) futures.push_back(server.submit(image));
  for (int i = 0; i < kRequests; ++i) {
    ServeReply reply = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(reply.ok()) << reply.error;
    ASSERT_TRUE(reply.output.shape() == references[static_cast<size_t>(i)].shape());
    EXPECT_EQ(reply.output.max_abs_diff(references[static_cast<size_t>(i)]), 0.0f) << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_GE(stats.max_batch_observed, 2) << "micro-batcher never coalesced";
}

TEST(ServerTest, AcceptsRankThreeAndRankFourImages) {
  auto upscaler = make_upscaler();
  Server server(upscaler);
  const Tensor image = tile(6, 7);
  const Tensor reference = upscaler->upscale(image);

  ServeFuture rank4 = server.submit(image);
  Rng rng(7);
  ServeFuture rank3 = server.submit(Tensor::rand({3, 6, 6}, rng));
  ServeReply reply4 = rank4.get();
  ServeReply reply3 = rank3.get();
  ASSERT_TRUE(reply4.ok());
  ASSERT_TRUE(reply3.ok());
  // Same seed, same pixels: both ranks serve the same image.
  EXPECT_EQ(reply4.output.max_abs_diff(reference), 0.0f);
  EXPECT_EQ(reply3.output.max_abs_diff(reference), 0.0f);
}

TEST(ServerTest, RejectsNonImageShapes) {
  Server server(make_upscaler());
  Rng rng(3);
  EXPECT_THROW(static_cast<void>(server.submit(Tensor::rand({6, 6}, rng))),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(server.submit(Tensor::rand({2, 3, 6, 6}, rng))),
               std::invalid_argument);
}

TEST(ServerTest, CallbacksDeliverCompletions) {
  Server server(make_upscaler());
  constexpr int kRequests = 8;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kRequests; ++i)
    server.submit_async(tile(6, static_cast<uint64_t>(i)), [&](ServeReply reply) {
      if (reply.ok()) ok_count.fetch_add(1);
    });
  server.stop();  // drains every admitted request
  EXPECT_EQ(ok_count.load(), kRequests);
  EXPECT_EQ(server.stats().completed, kRequests);
}

TEST(ServerTest, DeadlineExpiredRequestsAreShed) {
  auto upscaler = make_upscaler();
  Server::Options options;
  options.workers = 1;
  Server server(upscaler, options);

  // Occupy the single worker with a slow request (a 96x96 tile runs for
  // many milliseconds on any host), so the dated requests behind it are
  // guaranteed to expire in the queue.
  ServeFuture slow = server.submit(tile(96, 1));
  std::vector<ServeFuture> dated;
  for (int i = 0; i < 3; ++i)
    dated.push_back(server.submit(tile(6, 2), std::chrono::milliseconds{1}));
  ServeFuture patient = server.submit(tile(6, 3));  // no deadline: must complete

  EXPECT_TRUE(slow.get().ok());
  for (ServeFuture& future : dated) {
    const ServeReply reply = future.get();
    EXPECT_EQ(reply.status, ServeStatus::kShed);
    EXPECT_EQ(reply.output.numel(), 1);  // empty tensor, no stale pixels
  }
  EXPECT_TRUE(patient.get().ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 3);
  EXPECT_EQ(stats.completed, 2);
}

TEST(ServerTest, TrySubmitRejectsWhenQueueFull) {
  auto upscaler = make_upscaler();
  Server::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  Server server(upscaler, options);

  const auto ignore = [](ServeReply) {};
  ServeFuture slow = server.submit(tile(96, 1));  // occupies the worker for ms
  std::this_thread::sleep_for(2ms);               // let the worker claim it
  // Fill the two queue slots, then overflow.
  int admitted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i)
    (server.try_submit(tile(6, 2), ignore) ? admitted : rejected) += 1;
  EXPECT_LE(admitted, 3);  // two slots + at most one freed by a racing pop
  EXPECT_GE(rejected, 3);
  EXPECT_TRUE(slow.get().ok());
  server.stop();
  EXPECT_EQ(server.stats().rejected, rejected);
  EXPECT_EQ(server.stats().submitted, admitted + 1);
}

TEST(ServerTest, StopDrainsPendingAndFailsLateSubmissions) {
  auto upscaler = make_upscaler();
  Server::Options options;
  options.workers = 2;
  Server server(upscaler, options);
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(tile(6, static_cast<uint64_t>(i))));
  server.stop();
  for (ServeFuture& future : futures) EXPECT_TRUE(future.get().ok());

  ServeFuture late = server.submit(tile(6, 9));
  const ServeReply reply = late.get();
  EXPECT_EQ(reply.status, ServeStatus::kError);
  EXPECT_EQ(reply.error, "server stopped");
  bool callback_ran = false;
  server.submit_async(tile(6, 9), [&](ServeReply r) {
    callback_ran = true;
    EXPECT_EQ(r.status, ServeStatus::kError);
  });
  EXPECT_TRUE(callback_ran);
}

TEST(ServerTest, UpscalerFaultBecomesErrorReplyAndServerSurvives) {
  auto flaky = std::make_shared<FlakyUpscaler>();
  Server server(flaky);

  flaky->armed.store(true);
  const ServeReply failed = server.submit(tile(6, 1)).get();
  EXPECT_EQ(failed.status, ServeStatus::kError);
  EXPECT_EQ(failed.error, "injected upscaler fault");

  flaky->armed.store(false);
  flaky->armed_non_std.store(true);
  const ServeReply non_std = server.submit(tile(6, 3)).get();
  EXPECT_EQ(non_std.status, ServeStatus::kError);
  EXPECT_EQ(non_std.error, "upscaler threw a non-standard exception");

  flaky->armed_non_std.store(false);
  EXPECT_TRUE(server.submit(tile(6, 2)).get().ok());
  EXPECT_EQ(server.stats().failed, 2);
  EXPECT_EQ(server.stats().completed, 1);
}

TEST(ServerTest, WarmupTakesCompilationOffTheServingPath) {
  auto upscaler = make_upscaler();
  Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  options.batch_linger = 2ms;
  Server server(upscaler, options);

  server.warmup({3, 6, 6});
  // One plan per dispatchable batch size.
  EXPECT_EQ(upscaler->plan_compile_count(), options.max_batch);
  for (int64_t batch = 1; batch <= options.max_batch; ++batch)
    EXPECT_GE(upscaler->idle_session_count({batch, 3, 6, 6}), 1) << batch;

  std::vector<ServeFuture> futures;
  for (int i = 0; i < 24; ++i) futures.push_back(server.submit(tile(6, static_cast<uint64_t>(i))));
  for (ServeFuture& future : futures) EXPECT_TRUE(future.get().ok());
  // Every dispatch the workers could have formed was precompiled: serving
  // never compiled a plan.
  EXPECT_EQ(upscaler->plan_compile_count(), options.max_batch);
}

TEST(ServerTest, StatsConserveRequests) {
  auto upscaler = make_upscaler();
  Server::Options options;
  options.workers = 2;
  options.max_batch = 3;
  Server server(upscaler, options);
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(server.submit(tile(6, static_cast<uint64_t>(i))));
  for (ServeFuture& future : futures) EXPECT_TRUE(future.get().ok());
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.completed + stats.shed + stats.failed, stats.submitted);
  EXPECT_EQ(stats.batched_images, stats.completed);
  EXPECT_GE(stats.batches, (stats.completed + options.max_batch - 1) / options.max_batch);
  EXPECT_EQ(stats.latency.count, stats.completed);
  EXPECT_GT(stats.latency.max_ms, 0.0);
  EXPECT_LE(stats.max_batch_observed, options.max_batch);
  int64_t dispatches = 0;
  for (const int64_t count : stats.batch_size_counts) dispatches += count;
  EXPECT_EQ(dispatches, stats.batches);
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(ServerTest, RejectsInvalidOptions) {
  EXPECT_THROW(Server(nullptr), std::invalid_argument);
  Server::Options bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW(Server(make_upscaler(), bad_workers), std::invalid_argument);
  Server::Options bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(Server(make_upscaler(), bad_batch), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::serve
