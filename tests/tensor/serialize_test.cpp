#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tensor/serialize.h"

namespace sesr {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripsTensors) {
  Rng rng(5);
  std::vector<Tensor> tensors;
  tensors.push_back(Tensor::randn({3, 4}, rng));
  tensors.push_back(Tensor::randn({2, 3, 5, 5}, rng));
  tensors.push_back(Tensor(Shape{}, 42.0f));

  const std::string path = temp_path("sesr_serialize_roundtrip.bin");
  save_tensors(path, tensors);
  const std::vector<Tensor> loaded = load_tensors(path);

  ASSERT_EQ(loaded.size(), tensors.size());
  for (size_t i = 0; i < tensors.size(); ++i) {
    EXPECT_EQ(loaded[i].shape(), tensors[i].shape());
    EXPECT_EQ(loaded[i].max_abs_diff(tensors[i]), 0.0f);
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, EmptyListRoundTrips) {
  const std::string path = temp_path("sesr_serialize_empty.bin");
  save_tensors(path, {});
  EXPECT_TRUE(load_tensors(path).empty());
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/nonexistent/sesr.bin"), std::runtime_error);
}

TEST(SerializeTest, BadMagicThrows) {
  const std::string path = temp_path("sesr_serialize_bad.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a tensor file at all";
  }
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeTest, TruncatedPayloadThrows) {
  const std::string path = temp_path("sesr_serialize_trunc.bin");
  Rng rng(6);
  save_tensors(path, {Tensor::randn({64}, rng)});
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 16);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sesr
