#include <gtest/gtest.h>

#include <numeric>

#include "tensor/workspace.h"

namespace sesr {
namespace {

TEST(WorkspaceTest, SpansAreDisjointAndStableAcrossGrowth) {
  Workspace ws;
  std::span<float> a = ws.floats(100);
  std::iota(a.begin(), a.end(), 0.0f);
  // A request far beyond the first chunk forces a new chunk; `a` must keep
  // its storage (chunked arena, no realloc).
  std::span<float> b = ws.floats(1 << 20);
  b[0] = -1.0f;
  b[b.size() - 1] = -2.0f;
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], static_cast<float>(i));
}

TEST(WorkspaceTest, ResetRetainsCapacityAndReusesMemory) {
  Workspace ws;
  std::span<float> first = ws.floats(512);
  float* base = first.data();
  const int64_t cap = ws.capacity();
  EXPECT_GE(cap, 512);

  ws.reset();
  EXPECT_EQ(ws.capacity(), cap);
  std::span<float> again = ws.floats(512);
  EXPECT_EQ(again.data(), base);  // same chunk, no new allocation
}

TEST(WorkspaceTest, ZeroSizeSpanIsEmpty) {
  Workspace ws;
  EXPECT_TRUE(ws.floats(0).empty());
  EXPECT_THROW(static_cast<void>(ws.floats(-1)), std::invalid_argument);
}

TEST(WorkspaceTest, ManySmallAsksStayWithinOneChunkAfterWarmup) {
  Workspace ws;
  for (int round = 0; round < 3; ++round) {
    ws.reset();
    for (int i = 0; i < 16; ++i) static_cast<void>(ws.floats(64));
  }
  // 16 * 64 floats fit the minimum chunk; warm-up must not keep growing.
  EXPECT_LE(ws.capacity(), 4096);
}

}  // namespace
}  // namespace sesr
