#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "tensor/parallel.h"

namespace sesr {
namespace {

TEST(ParallelTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyRangeDoesNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](int64_t, int64_t) { calls.fetch_add(1); });
  parallel_for(7, 3, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelTest, GrainForcesInlineExecutionForSmallRanges) {
  // With a grain >= range the callback must run exactly once, inline.
  std::atomic<int> calls{0};
  parallel_for(0, 10, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
    calls.fetch_add(1);
  }, /*grain=*/10);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelTest, NestedCallsRunInline) {
  // A parallel_for inside a worker must not deadlock or over-partition; the
  // inner loop runs inline on the worker thread.
  std::atomic<int64_t> total{0};
  parallel_for(0, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      parallel_for(0, 100, [&](int64_t ilo, int64_t ihi) { total.fetch_add(ihi - ilo); });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelTest, NumThreadsIsPositive) { EXPECT_GE(num_threads(), 1); }

TEST(ParallelTest, ExceptionsPropagateToCallerAndPoolSurvives) {
  EXPECT_THROW(
      parallel_for(0, 1000, [](int64_t, int64_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must stay serviceable after a failed job.
  std::atomic<int64_t> total{0};
  parallel_for(0, 100, [&](int64_t lo, int64_t hi) { total.fetch_add(hi - lo); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelTest, ConcurrentCallersShareThePoolSafely) {
  // Several independent threads issuing parallel_for at once (the serving
  // pattern: one runtime::Session per thread) must each see their own range
  // covered exactly once, with no deadlock even when the pool is saturated.
  constexpr int kCallers = 6;
  constexpr int64_t kRange = 500;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kRange);

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        parallel_for(0, kRange, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(c)][static_cast<size_t>(i)].fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (const auto& h : hits[static_cast<size_t>(c)]) EXPECT_EQ(h.load(), 20);
}

}  // namespace
}  // namespace sesr
