#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/int8_kernels.h"
#include "tensor/rng.h"
#include "tensor/workspace.h"

namespace sesr {
namespace {

TEST(FixedPointMultiplierTest, MatchesDoubleRounding) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const double m = std::pow(10.0, rng.uniform(-6.0f, 2.0f));
    const FixedPointMultiplier fp = FixedPointMultiplier::from_double(m);
    EXPECT_NEAR(fp.as_double(), m, m * 1e-8);
    for (int i = 0; i < 50; ++i) {
      const auto x = static_cast<int32_t>(rng.uniform(-2e6f, 2e6f));
      // The runtime rounds half up (floor(v + 0.5)) everywhere.
      const auto expected = static_cast<int32_t>(std::floor(fp.as_double() * x + 0.5));
      EXPECT_EQ(fp.apply(x), expected) << "m=" << m << " x=" << x;
    }
  }
}

TEST(FixedPointMultiplierTest, ZeroAndIdentity) {
  EXPECT_EQ(FixedPointMultiplier::from_double(0.0).apply(12345), 0);
  const FixedPointMultiplier one = FixedPointMultiplier::from_double(1.0);
  EXPECT_EQ(one.apply(7), 7);
  EXPECT_EQ(one.apply(-123456), -123456);
}

TEST(FixedPointMultiplierTest, RejectsInvalid) {
  EXPECT_THROW(FixedPointMultiplier::from_double(-0.5), std::invalid_argument);
  EXPECT_THROW(FixedPointMultiplier::from_double(std::ldexp(1.0, 32)),
               std::invalid_argument);
}

TEST(FixedPointMultiplierTest, TinyMultipliersRoundToZero) {
  // m < 2^-31 cannot push any int32 product past 0.5: encoded as the zero
  // multiplier rather than a shift apply() cannot represent.
  for (const double m : {1e-12, std::ldexp(1.0, -40), std::ldexp(1.0, -32)}) {
    const FixedPointMultiplier fp = FixedPointMultiplier::from_double(m);
    EXPECT_EQ(fp.apply(1000000), 0) << m;
    EXPECT_EQ(fp.apply(-2000000000), 0) << m;
  }
  // The boundary that still fits: m = 2^-31 rounds 2^31-ish products to 1.
  const FixedPointMultiplier edge = FixedPointMultiplier::from_double(std::ldexp(1.0, -31));
  EXPECT_EQ(edge.apply(std::numeric_limits<int32_t>::max()), 1);
}

TEST(SaturateInt8Test, ClampsBothEnds) {
  EXPECT_EQ(saturate_int8(300), 127);
  EXPECT_EQ(saturate_int8(-300), -128);
  EXPECT_EQ(saturate_int8(5), 5);
}

// Random weight rows laid out on the kernel's packed (zero-padded) stride.
std::vector<int16_t> random_packed_weights(int64_t out_c, int64_t taps, Rng& rng,
                                           float bound) {
  const int64_t stride = int8_packed_stride(taps);
  std::vector<int16_t> weights(static_cast<size_t>(out_c * stride), 0);
  for (int64_t oc = 0; oc < out_c; ++oc)
    for (int64_t j = 0; j < taps; ++j)
      weights[static_cast<size_t>(oc * stride + j)] =
          static_cast<int16_t>(rng.uniform(-bound, bound + 1.0f));
  return weights;
}

// Double-precision reference for the int8 conv: zero-point-corrected integer
// accumulation followed by round_half_up(m * acc) + z_out, saturated.
void reference_conv(const std::vector<int8_t>& in, int64_t in_c, int64_t h, int64_t w,
                    const Int8ConvSpec& spec, std::vector<int8_t>& out, int64_t out_h,
                    int64_t out_w) {
  const int64_t k = spec.kernel;
  const int64_t wstride = int8_packed_stride(in_c * k * k);
  for (int64_t oc = 0; oc < spec.out_c; ++oc) {
    for (int64_t oh = 0; oh < out_h; ++oh) {
      for (int64_t ow = 0; ow < out_w; ++ow) {
        int64_t acc = spec.bias != nullptr ? spec.bias[oc] : 0;
        for (int64_t ic = 0; ic < in_c; ++ic)
          for (int64_t kh = 0; kh < k; ++kh)
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t ih = oh * spec.stride - spec.pad + kh;
              const int64_t iw = ow * spec.stride - spec.pad + kw;
              if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
              const int32_t v = in[static_cast<size_t>((ic * h + ih) * w + iw)] -
                                spec.in_zero;
              acc += static_cast<int64_t>(
                         spec.weights[(oc * wstride + (ic * k + kh) * k + kw)]) *
                     v;
            }
        const int32_t q =
            spec.requant[oc].apply(static_cast<int32_t>(acc)) + spec.out_zero;
        out[static_cast<size_t>((oc * out_h + oh) * out_w + ow)] = saturate_int8(q);
      }
    }
  }
}

TEST(Int8ConvTest, MatchesDirectReference) {
  Rng rng(2);
  const int64_t in_c = 3, out_c = 5, k = 3, h = 9, w = 7;
  const int64_t pad = 1, stride = 1;
  const int64_t out_h = h, out_w = w;

  std::vector<int8_t> in(static_cast<size_t>(in_c * h * w));
  for (auto& v : in) v = static_cast<int8_t>(rng.uniform(-128.0f, 128.0f));
  const std::vector<int16_t> weights = random_packed_weights(out_c, in_c * k * k, rng, 127.0f);
  std::vector<int32_t> bias(static_cast<size_t>(out_c));
  for (auto& v : bias) v = static_cast<int32_t>(rng.uniform(-5000.0f, 5000.0f));
  std::vector<FixedPointMultiplier> requant;
  for (int64_t oc = 0; oc < out_c; ++oc)
    requant.push_back(FixedPointMultiplier::from_double(
        std::pow(10.0, rng.uniform(-4.0f, -2.0f))));

  Int8ConvSpec spec;
  spec.in_c = in_c;
  spec.out_c = out_c;
  spec.kernel = k;
  spec.stride = stride;
  spec.pad = pad;
  spec.in_zero = -13;
  spec.out_zero = 4;
  spec.weights = weights.data();
  spec.bias = bias.data();
  spec.requant = requant.data();

  std::vector<int8_t> expected(static_cast<size_t>(out_c * out_h * out_w));
  reference_conv(in, in_c, h, w, spec, expected, out_h, out_w);

  std::vector<int8_t> actual(expected.size());
  Workspace workspace;
  int8_conv2d_nchw(in.data(), 1, h, w, out_h, out_w, spec, actual.data(), workspace);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(int8_conv2d_macs(spec, out_h, out_w), out_h * out_w * out_c * in_c * k * k);
}

TEST(Int8ConvTest, StridedAndBatched) {
  Rng rng(3);
  const int64_t in_c = 2, out_c = 3, k = 3, h = 8, w = 8, stride = 2, pad = 1;
  const int64_t out_h = (h + 2 * pad - k) / stride + 1;
  const int64_t out_w = out_h;
  const int64_t n = 2;

  std::vector<int8_t> in(static_cast<size_t>(n * in_c * h * w));
  for (auto& v : in) v = static_cast<int8_t>(rng.uniform(-100.0f, 100.0f));
  const std::vector<int16_t> weights = random_packed_weights(out_c, in_c * k * k, rng, 50.0f);
  std::vector<FixedPointMultiplier> requant(
      static_cast<size_t>(out_c), FixedPointMultiplier::from_double(1e-3));

  Int8ConvSpec spec;
  spec.in_c = in_c;
  spec.out_c = out_c;
  spec.kernel = k;
  spec.stride = stride;
  spec.pad = pad;
  spec.in_zero = 7;
  spec.weights = weights.data();
  spec.requant = requant.data();

  std::vector<int8_t> actual(static_cast<size_t>(n * out_c * out_h * out_w));
  Workspace workspace;
  int8_conv2d_nchw(in.data(), n, h, w, out_h, out_w, spec, actual.data(), workspace);

  // Per-image reference over the batch.
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int8_t> img(in.begin() + i * in_c * h * w,
                            in.begin() + (i + 1) * in_c * h * w);
    std::vector<int8_t> expected(static_cast<size_t>(out_c * out_h * out_w));
    reference_conv(img, in_c, h, w, spec, expected, out_h, out_w);
    for (size_t j = 0; j < expected.size(); ++j)
      ASSERT_EQ(actual[static_cast<size_t>(i * out_c * out_h * out_w) + j], expected[j])
          << "image " << i << " element " << j;
  }
}

TEST(Int8AddTest, SaturatesAndRescales) {
  const std::vector<int8_t> a = {127, -128, 10, 0};
  const std::vector<int8_t> b = {127, -128, -10, 0};
  std::vector<int8_t> out(4);
  // Same grid in and out (m = 1, zero points 0): plain saturating add.
  int8_add(a.data(), 0, 1.0, b.data(), 0, 1.0, 0, 4, out.data());
  EXPECT_EQ(out[0], 127);   // 254 saturates
  EXPECT_EQ(out[1], -128);  // -256 saturates
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 0);
}

TEST(Int8AddTest, AliasingDestinationIsSafe) {
  std::vector<int8_t> a = {1, 2, 3};
  const std::vector<int8_t> b = {10, 20, 30};
  int8_add(a.data(), 0, 1.0, b.data(), 0, 1.0, 0, 3, a.data());
  EXPECT_EQ(a, (std::vector<int8_t>{11, 22, 33}));
}

TEST(Int8AddTest, LutFormReplaysDoubleMathExactly) {
  // The tabulated path the compiled runtime takes: every (a, b) byte pair of
  // the table must reproduce int8_add bit-for-bit, on grids with awkward
  // zero points and irrational-ish scale ratios.
  const struct {
    int32_t za, zb, z_out;
    double ma, mb;
  } grids[] = {
      {0, 0, 0, 1.0, 1.0},
      {-7, 13, 5, 0.73125, 1.4141},
      {100, -100, -128, 2.5, 0.0009765625},
  };
  std::vector<int8_t> lut(256 * 256);
  for (const auto& g : grids) {
    int8_add_build_lut(g.za, g.ma, g.zb, g.mb, g.z_out, lut.data());
    // All 65536 pairs, streamed through the lut kernel in one call.
    std::vector<int8_t> a(256 * 256), b(256 * 256);
    for (int32_t i = 0; i < 256 * 256; ++i) {
      a[static_cast<size_t>(i)] = static_cast<int8_t>(i / 256 - 128);
      b[static_cast<size_t>(i)] = static_cast<int8_t>(i % 256 - 128);
    }
    std::vector<int8_t> want(a.size()), got(a.size());
    int8_add(a.data(), g.za, g.ma, b.data(), g.zb, g.mb, g.z_out,
             static_cast<int64_t>(a.size()), want.data());
    int8_add_lut(a.data(), b.data(), lut.data(), static_cast<int64_t>(a.size()),
                 got.data());
    EXPECT_EQ(want, got);
    // Aliasing out == a, as the session's in-place residual add does.
    int8_add_lut(a.data(), b.data(), lut.data(), static_cast<int64_t>(a.size()),
                 a.data());
    EXPECT_EQ(want, a);
  }
}

TEST(Int8RescaleTest, IdentityAndHalving) {
  const std::vector<int8_t> in = {-128, -3, 0, 5, 127};
  std::vector<int8_t> out(in.size());
  int8_rescale(in.data(), 0, 1.0, 0, static_cast<int64_t>(in.size()), out.data());
  EXPECT_EQ(out, in);
  int8_rescale(in.data(), 0, 0.5, 0, static_cast<int64_t>(in.size()), out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{-64, -1, 0, 3, 64}));  // half up: -1.5 -> -1, 2.5 -> 3
}

TEST(RoundHalfUpTest, MatchesFloorPlusHalf) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-500.0f, 500.0f);
    EXPECT_EQ(round_half_up(v), static_cast<int32_t>(std::floor(v + 0.5))) << v;
  }
  EXPECT_EQ(round_half_up(2.5), 3);
  EXPECT_EQ(round_half_up(-2.5), -2);  // half up, not half away
  EXPECT_EQ(round_half_up(-2.51), -3);
}

TEST(Int8ActivationTest, ReluSemantics) {
  // z_in = 5: inputs below 5 are "negative" and map to z_out.
  Int8ActivationSpec spec;
  spec.in_zero = 5;
  spec.out_zero = -20;
  spec.pos = 1.0;
  spec.neg = 0.0;
  const std::vector<int8_t> in = {4, 5, 6, 100};
  std::vector<int8_t> out(in.size());
  int8_activation_nchw(in.data(), 1, 1, static_cast<int64_t>(in.size()), spec, out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{-20, -20, -19, 75}));
}

TEST(Int8ActivationTest, PerChannelNegativeSlopes) {
  Int8ActivationSpec spec;
  spec.pos = 1.0;
  const std::vector<double> slopes = {0.5, -1.0};
  spec.neg_per_channel = slopes.data();
  const std::vector<int8_t> in = {-10, 10, -10, 10};  // 2 channels x 2 pixels
  std::vector<int8_t> out(in.size());
  int8_activation_nchw(in.data(), 1, 2, 2, spec, out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{-5, 10, 10, 10}));
}

TEST(Int8ActivationTest, CapImplementsRelu6) {
  Int8ActivationSpec spec;
  spec.out_cap = 60;
  const std::vector<int8_t> in = {-5, 30, 90};
  std::vector<int8_t> out(in.size());
  int8_activation_nchw(in.data(), 1, 1, 3, spec, out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{0, 30, 60}));
}

TEST(Int8PixelOpsTest, DepthToSpaceMatchesDefinition) {
  // [1, 4, 1, 2] -> r=2 -> [1, 1, 2, 4]: out(y*2+dy, x*2+dx) = in(dy*2+dx, y, x).
  const std::vector<int8_t> in = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int8_t> out(8);
  int8_depth_to_space(in.data(), 1, 4, 1, 2, 2, out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{1, 3, 2, 4, 5, 7, 6, 8}));
}

TEST(Int8PixelOpsTest, TileChannelsReplicates) {
  const std::vector<int8_t> in = {1, 2, 3, 4};  // [1, 2, 1, 2]
  std::vector<int8_t> out(8);
  int8_tile_channels(in.data(), 1, 2, 2, 2, out.data());
  EXPECT_EQ(out, (std::vector<int8_t>{1, 2, 1, 2, 3, 4, 3, 4}));
}

TEST(Int8LinearTest, MatchesReference) {
  Int8LinearSpec spec;
  spec.in_features = 3;
  spec.out_features = 2;
  spec.in_zero = 1;
  spec.out_zero = -2;
  const std::vector<int16_t> weights = {1, 2, 3, -1, 0, 5};
  const std::vector<int32_t> bias = {10, -10};
  const std::vector<FixedPointMultiplier> requant = {
      FixedPointMultiplier::from_double(0.5), FixedPointMultiplier::from_double(0.25)};
  spec.weights = weights.data();
  spec.bias = bias.data();
  spec.requant = requant.data();

  const std::vector<int8_t> in = {2, 3, 5};  // centred: 1, 2, 4
  std::vector<int8_t> out(2);
  int8_linear(in.data(), 1, spec, out.data());
  // Row 0: 10 + 1*1 + 2*2 + 3*4 = 27 -> round(13.5) = 14 -> 12.
  // Row 1: -10 + -1*1 + 0 + 5*4 = 9 -> round(2.25) = 2 -> 0.
  EXPECT_EQ(out[0], 12);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(int8_linear_macs(spec), 6);
}

TEST(Int8DepthwiseTest, MatchesScalarReference) {
  Rng rng(4);
  const int64_t c = 3, k = 3, h = 6, w = 5, pad = 1, stride = 1;
  std::vector<int8_t> in(static_cast<size_t>(c * h * w));
  for (auto& v : in) v = static_cast<int8_t>(rng.uniform(-100.0f, 100.0f));
  std::vector<int16_t> weights(static_cast<size_t>(c * k * k));
  for (auto& v : weights) v = static_cast<int16_t>(rng.uniform(-60.0f, 60.0f));
  std::vector<FixedPointMultiplier> requant(
      static_cast<size_t>(c), FixedPointMultiplier::from_double(2e-3));

  Int8DepthwiseSpec spec;
  spec.channels = c;
  spec.kernel = k;
  spec.stride = stride;
  spec.pad = pad;
  spec.in_zero = -3;
  spec.out_zero = 1;
  spec.weights = weights.data();
  spec.requant = requant.data();

  std::vector<int8_t> actual(static_cast<size_t>(c * h * w));
  int8_depthwise_nchw(in.data(), 1, h, w, h, w, spec, actual.data());

  for (int64_t ch = 0; ch < c; ++ch)
    for (int64_t oh = 0; oh < h; ++oh)
      for (int64_t ow = 0; ow < w; ++ow) {
        int32_t acc = 0;
        for (int64_t kh = 0; kh < k; ++kh)
          for (int64_t kw = 0; kw < k; ++kw) {
            const int64_t ih = oh - pad + kh, iw = ow - pad + kw;
            if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
            acc += weights[static_cast<size_t>(ch * k * k + kh * k + kw)] *
                   (in[static_cast<size_t>((ch * h + ih) * w + iw)] - spec.in_zero);
          }
        const int8_t expected =
            saturate_int8(requant[static_cast<size_t>(ch)].apply(acc) + spec.out_zero);
        ASSERT_EQ(actual[static_cast<size_t>((ch * h + oh) * w + ow)], expected);
      }
}

TEST(WorkspaceScratchTest, TypedScratchSharesArena) {
  Workspace workspace;
  auto a = workspace.scratch<int16_t>(10);
  auto b = workspace.scratch<int32_t>(4);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 4u);
  for (auto& v : a) v = 7;
  for (auto& v : b) v = -9;
  for (auto v : a) EXPECT_EQ(v, 7);
  for (auto v : b) EXPECT_EQ(v, -9);
  workspace.reset();
  EXPECT_GT(workspace.capacity(), 0);
}

}  // namespace
}  // namespace sesr
