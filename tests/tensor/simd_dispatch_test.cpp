// The SIMD kernel tier's ground truth: cpuid detection is self-consistent,
// SESR_KERNEL_VARIANT pins the tier it names, and every kernel of every
// supported tier is bit-exact against the scalar reference — int32 sums for
// the int8 kernels, float *bits* for the fp32 microkernels (the fixed
// lane-order / no-FMA contract dispatch.h documents).
#include "tensor/simd/dispatch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/rng.h"
#include "tests/support/fault_injection.h"

namespace sesr::simd {
namespace {

using testsupport::ScopedEnv;

TEST(SimdDispatch, DetectionIsSelfConsistent) {
  const CpuFeatures& f = cpu_features();
  // Feature implications: the VNNI tier requires the AVX-512 core set, and
  // any AVX-512 machine this decade has AVX2.
  if (f.avx512_vnni || f.avx512_vbmi) {
    EXPECT_TRUE(f.avx512_core);
  }
  if (f.avx512_core) {
    EXPECT_TRUE(f.avx2);
  }

  const KernelVariant best = best_supported();
  EXPECT_EQ(best == KernelVariant::kAvx512Vnni, f.avx512_core && f.avx512_vnni);
  if (best == KernelVariant::kAvx2) {
    EXPECT_TRUE(f.avx2);
  }

  const std::vector<KernelVariant> supported = supported_variants();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), KernelVariant::kScalar);
  EXPECT_EQ(supported.back(), best);
  for (size_t i = 1; i < supported.size(); ++i)
    EXPECT_LT(static_cast<int>(supported[i - 1]), static_cast<int>(supported[i]));
}

TEST(SimdDispatch, TablesAreCompleteAndClamped) {
  for (int v = 0; v < kNumKernelVariants; ++v) {
    const auto requested = static_cast<KernelVariant>(v);
    const KernelDispatch& kd = dispatch_for(requested);
    EXPECT_EQ(kd.variant, clamp_to_supported(requested));
    EXPECT_NE(kd.conv_block16, nullptr);
    EXPECT_NE(kd.gemm_block, nullptr);
    EXPECT_NE(kd.saxpy, nullptr);
    EXPECT_NE(kd.int8_dot4, nullptr);
    EXPECT_NE(kd.int8_dot, nullptr);
    EXPECT_NE(kd.int8_conv_cols16, nullptr);
    EXPECT_NE(kd.int8_requant_row, nullptr);
    EXPECT_NE(kd.lut_stream, nullptr);
    EXPECT_NE(kd.interleave2, nullptr);
  }
  // Requesting beyond the CPU degrades to the strongest supported tier.
  EXPECT_EQ(clamp_to_supported(KernelVariant::kAvx512Vnni), best_supported());
  EXPECT_EQ(clamp_to_supported(KernelVariant::kScalar), KernelVariant::kScalar);
}

TEST(SimdDispatch, VariantNamesRoundTrip) {
  for (int v = 0; v < kNumKernelVariants; ++v) {
    const auto variant = static_cast<KernelVariant>(v);
    const auto parsed = parse_variant(variant_name(variant));
    ASSERT_TRUE(parsed.has_value()) << variant_name(variant);
    EXPECT_EQ(*parsed, variant);
  }
  EXPECT_FALSE(parse_variant("native").has_value());
  EXPECT_FALSE(parse_variant("AVX2").has_value());  // case-sensitive on purpose
  EXPECT_FALSE(parse_variant("").has_value());
}

TEST(SimdDispatch, EnvKnobPinsScalar) {
  ScopedEnv pin("SESR_KERNEL_VARIANT", "scalar");
  EXPECT_EQ(active_variant(), KernelVariant::kScalar);
  EXPECT_TRUE(variant_forced());
  EXPECT_EQ(active_dispatch().variant, KernelVariant::kScalar);
}

TEST(SimdDispatch, EnvKnobNativeAndGarbageMeanAutoDetect) {
  {
    ScopedEnv native("SESR_KERNEL_VARIANT", "native");
    EXPECT_EQ(active_variant(), best_supported());
    EXPECT_FALSE(variant_forced());
  }
  {
    ScopedEnv garbage("SESR_KERNEL_VARIANT", "sse9");
    EXPECT_EQ(active_variant(), best_supported());
    EXPECT_FALSE(variant_forced());
  }
  {
    ScopedEnv unset("SESR_KERNEL_VARIANT", nullptr);
    EXPECT_EQ(active_variant(), best_supported());
    EXPECT_FALSE(variant_forced());
  }
}

TEST(SimdDispatch, EnvKnobClampsToCpuSupport) {
  // Forcing the strongest tier is always legal: on a lesser CPU it clamps
  // instead of crashing on an illegal instruction.
  ScopedEnv pin("SESR_KERNEL_VARIANT", "avx512vnni");
  EXPECT_EQ(active_variant(), clamp_to_supported(KernelVariant::kAvx512Vnni));
  EXPECT_TRUE(variant_forced());
}

// ---- per-kernel bit-exactness against the scalar reference -----------------

const KernelDispatch& scalar_table() { return dispatch_for(KernelVariant::kScalar); }

/// The non-scalar tiers actually available on this machine. Empty on a
/// scalar-only box — each exactness test then trivially passes, which is the
/// correct behaviour (there is nothing to diverge).
std::vector<const KernelDispatch*> vector_tiers() {
  std::vector<const KernelDispatch*> out;
  for (KernelVariant v : supported_variants())
    if (v != KernelVariant::kScalar) out.push_back(&dispatch_for(v));
  return out;
}

std::vector<float> random_floats(Rng& rng, int64_t n) {
  std::vector<float> out(static_cast<size_t>(n));
  for (float& x : out) x = rng.uniform(-2.0f, 2.0f);
  return out;
}

/// Sprinkle exact zeros: the scalar reference skips zero weights, the vector
/// tiers do not — the contract says that can never change output bits.
void add_zeros(Rng& rng, std::vector<float>& data) {
  for (float& x : data)
    if (rng.uniform(0.0f, 1.0f) < 0.2f) x = 0.0f;
}

std::vector<int16_t> random_i16(Rng& rng, int64_t n) {
  // The int8 conv operands: zero-point-subtracted bytes, so [-255, 255].
  std::vector<int16_t> out(static_cast<size_t>(n));
  for (int16_t& x : out)
    x = static_cast<int16_t>(rng.randint(-255, 255));
  return out;
}

std::vector<int8_t> random_i8(Rng& rng, int64_t n) {
  std::vector<int8_t> out(static_cast<size_t>(n));
  for (int8_t& x : out)
    x = static_cast<int8_t>(rng.randint(-128, 127));
  return out;
}

void expect_bits_equal(const std::vector<float>& a, const std::vector<float>& b,
                       const char* what, KernelVariant v) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << " diverges from scalar on tier " << variant_name(v);
}

TEST(SimdKernelExactness, ConvBlock16) {
  Rng rng(101);
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const int64_t taps : {int64_t{1}, int64_t{7}, int64_t{27}, int64_t{75}}) {
      for (int rows = 1; rows <= 4; ++rows) {
        const int64_t w_stride = taps + 3;   // padded strides exercised
        const int64_t slab_stride = 16 + 5;
        auto w = random_floats(rng, 4 * w_stride);
        add_zeros(rng, w);
        const auto slab = random_floats(rng, taps * slab_stride);
        std::vector<float> want(4 * 20, -7.0f), got = want;
        scalar_table().conv_block16(w.data(), w_stride, rows, slab.data(), taps,
                                    slab_stride, want.data(), 20);
        kd->conv_block16(w.data(), w_stride, rows, slab.data(), taps, slab_stride,
                         got.data(), 20);
        expect_bits_equal(want, got, "conv_block16", kd->variant);
      }
    }
  }
}

TEST(SimdKernelExactness, GemmBlock) {
  Rng rng(102);
  for (const KernelDispatch* kd : vector_tiers()) {
    // Full tiles, ragged tails in every dimension, and the degenerate edges.
    const int64_t sizes[][3] = {{1, 1, 1},   {4, 64, 32}, {5, 33, 7},
                                {3, 16, 24}, {2, 95, 11}, {7, 8, 3}};
    for (const auto& [mb, nb, kb] : sizes) {
      auto a = random_floats(rng, mb * kb);
      add_zeros(rng, a);
      const auto b = random_floats(rng, kb * nb);
      auto want = random_floats(rng, mb * nb);  // gemm_block accumulates into C
      auto got = want;
      scalar_table().gemm_block(mb, nb, kb, a.data(), kb, b.data(), nb, want.data(), nb);
      kd->gemm_block(mb, nb, kb, a.data(), kb, b.data(), nb, got.data(), nb);
      expect_bits_equal(want, got, "gemm_block", kd->variant);
    }
  }
}

TEST(SimdKernelExactness, Saxpy) {
  Rng rng(103);
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const int64_t n : {int64_t{1}, int64_t{8}, int64_t{15}, int64_t{64},
                            int64_t{100}}) {
      const auto x = random_floats(rng, n);
      const float a = rng.uniform(-2.0f, 2.0f);
      auto want = random_floats(rng, n);
      auto got = want;
      scalar_table().saxpy(a, x.data(), n, want.data());
      kd->saxpy(a, x.data(), n, got.data());
      expect_bits_equal(want, got, "saxpy", kd->variant);
    }
  }
}

TEST(SimdKernelExactness, Int8Dots) {
  Rng rng(104);
  for (const KernelDispatch* kd : vector_tiers()) {
    for (int64_t count = 0; count <= 70; ++count) {
      const auto w0 = random_i16(rng, count), w1 = random_i16(rng, count);
      const auto w2 = random_i16(rng, count), w3 = random_i16(rng, count);
      const auto patch = random_i16(rng, count);
      EXPECT_EQ(kd->int8_dot(w0.data(), patch.data(), count),
                scalar_table().int8_dot(w0.data(), patch.data(), count))
          << "count " << count << " tier " << variant_name(kd->variant);
      int32_t want[4], got[4];
      scalar_table().int8_dot4(w0.data(), w1.data(), w2.data(), w3.data(),
                               patch.data(), count, want);
      kd->int8_dot4(w0.data(), w1.data(), w2.data(), w3.data(), patch.data(), count,
                    got);
      for (int j = 0; j < 4; ++j)
        EXPECT_EQ(got[j], want[j])
            << "dot4 lane " << j << " count " << count << " tier "
            << variant_name(kd->variant);
    }
  }
}

TEST(SimdKernelExactness, LutStream) {
  Rng rng(105);
  const auto lut = random_i8(rng, 256);
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                            int64_t{200}, int64_t{1024}}) {
      const auto in = random_i8(rng, n);
      std::vector<int8_t> want(static_cast<size_t>(n)), got(static_cast<size_t>(n));
      scalar_table().lut_stream(in.data(), lut.data(), n, want.data());
      kd->lut_stream(in.data(), lut.data(), n, got.data());
      EXPECT_EQ(want, got) << "lut_stream n=" << n << " tier "
                           << variant_name(kd->variant);
      // Exact aliasing (out == in) is part of the contract.
      got = in;
      kd->lut_stream(got.data(), lut.data(), n, got.data());
      EXPECT_EQ(want, got) << "aliased lut_stream n=" << n << " tier "
                           << variant_name(kd->variant);
    }
  }
}

TEST(SimdKernelExactness, Int8ConvCols16) {
  Rng rng(107);
  // Row stride leaves the slack the AVX-512 pair loads need (they touch up to
  // 15 elements past the last kernel column of the block — kPatchSlack's
  // bound). Slack holds random data: every touched-but-unused lane must be
  // discarded by the permute or nulled by a zero weight, so garbage there is
  // exactly what the test wants.
  constexpr int64_t kRowStride = 64;
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const int64_t k : {int64_t{1}, int64_t{3}, int64_t{5}}) {
      const int64_t kw_pairs = (k + 1) / 2, kceil = 2 * kw_pairs;
      for (const int64_t in_c : {int64_t{1}, int64_t{3}, int64_t{16}}) {
        for (int64_t kh_count = 1; kh_count <= k; ++kh_count) {
          for (int rows = 1; rows <= 4; ++rows) {
            const int64_t w_stride = in_c * k * kceil;
            auto w = random_i16(rng, rows * w_stride);
            // Null the padded kw slots — the layout contract.
            if (k % 2 != 0)
              for (int r = 0; r < rows; ++r)
                for (int64_t g = 0; g < in_c * k; ++g)
                  w[static_cast<size_t>(r * w_stride + g * kceil + k)] = 0;
            const int64_t ic_stride = k * kRowStride;
            const auto img = random_i16(rng, in_c * ic_stride);
            // Clipped rows enter via the weight-group offset, exactly as
            // int8_conv2d_nchw's direct path calls the kernel.
            const int64_t kh_lo = k - kh_count;
            std::vector<int32_t> want(static_cast<size_t>(rows * 16), -1);
            std::vector<int32_t> got(static_cast<size_t>(rows * 16), -2);
            scalar_table().int8_conv_cols16(w.data() + kh_lo * kceil, w_stride, rows,
                                            img.data() + kh_lo * kRowStride, ic_stride,
                                            kRowStride, in_c, k, kh_count, kw_pairs,
                                            want.data());
            kd->int8_conv_cols16(w.data() + kh_lo * kceil, w_stride, rows,
                                 img.data() + kh_lo * kRowStride, ic_stride,
                                 kRowStride, in_c, k, kh_count, kw_pairs, got.data());
            EXPECT_EQ(want, got)
                << "k=" << k << " in_c=" << in_c << " kh_count=" << kh_count
                << " rows=" << rows << " tier " << variant_name(kd->variant);
          }
        }
      }
    }
  }
}

TEST(SimdKernelExactness, Int8RequantRow) {
  Rng rng(108);
  const auto lut = random_i8(rng, 256);
  // (multiplier, shift) pairs spanning total = 31 - shift of 0 (pure
  // truncating convert), 1, mid, and large, plus the m == 0 encoding.
  const std::pair<int32_t, int> scales[] = {
      {0, 0},                   // m == 0: every output is out_zero (clamped)
      {1 << 30, 31},            // total == 0
      {(1 << 30) + 12345, 30},  // total == 1
      {2147000000, 15},         // total == 16
      {1073741824 + 7, -10},    // total == 41: heavy downscale
  };
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const auto& [multiplier, shift] : scales) {
      for (const int64_t n :
           {int64_t{1}, int64_t{7}, int64_t{8}, int64_t{9}, int64_t{16}, int64_t{100}}) {
        std::vector<int32_t> acc(static_cast<size_t>(n));
        // Wide range incl. saturation territory; keep |acc + bias| < 2^28 so
        // acc + bias never overflows int32.
        for (int32_t& x : acc) x = rng.randint(-(1 << 27), 1 << 27);
        if (n >= 3) {
          acc[0] = (1 << 27) - 1;
          acc[1] = -(1 << 27);
          acc[2] = 0;
        }
        const int32_t bias = rng.randint(-4096, 4096);
        const int32_t out_zero = rng.randint(-32, 32);
        for (const int8_t* table : {static_cast<const int8_t*>(nullptr), lut.data()}) {
          std::vector<int8_t> want(static_cast<size_t>(n), int8_t{-1});
          std::vector<int8_t> got(static_cast<size_t>(n), int8_t{-2});
          scalar_table().int8_requant_row(acc.data(), n, bias, multiplier, shift,
                                          out_zero, table, want.data());
          kd->int8_requant_row(acc.data(), n, bias, multiplier, shift, out_zero, table,
                               got.data());
          EXPECT_EQ(want, got)
              << "multiplier=" << multiplier << " shift=" << shift << " n=" << n
              << " lut=" << (table != nullptr) << " tier " << variant_name(kd->variant);
        }
      }
    }
  }
}

TEST(SimdKernelExactness, Interleave2) {
  Rng rng(106);
  for (const KernelDispatch* kd : vector_tiers()) {
    for (const int64_t n : {int64_t{1}, int64_t{15}, int64_t{16}, int64_t{17},
                            int64_t{300}}) {
      const auto a = random_i8(rng, n), b = random_i8(rng, n);
      std::vector<int8_t> want(static_cast<size_t>(2 * n));
      std::vector<int8_t> got(static_cast<size_t>(2 * n));
      scalar_table().interleave2(a.data(), b.data(), n, want.data());
      kd->interleave2(a.data(), b.data(), n, got.data());
      EXPECT_EQ(want, got) << "interleave2 n=" << n << " tier "
                           << variant_name(kd->variant);
    }
  }
}

}  // namespace
}  // namespace sesr::simd
