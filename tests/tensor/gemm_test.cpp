#include <gtest/gtest.h>

#include <vector>

#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace sesr {
namespace {

// Reference O(n^3) triple loop.
std::vector<float> naive_gemm(int64_t m, int64_t n, int64_t k, const std::vector<float>& a,
                              const std::vector<float>& b) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t p = 0; p < k; ++p)
      for (int64_t j = 0; j < n; ++j)
        c[static_cast<size_t>(i * n + j)] +=
            a[static_cast<size_t>(i * k + p)] * b[static_cast<size_t>(p * n + j)];
  return c;
}

struct GemmDims {
  int64_t m, n, k;
};

class GemmSweep : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmSweep, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + n * 10 + k));
  std::vector<float> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  for (float& v : a) v = rng.normal();
  for (float& v : b) v = rng.normal();

  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  gemm_accumulate(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  const std::vector<float> ref = naive_gemm(m, n, k, a, b);
  for (size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3f * (1.0f + std::abs(ref[i]))) << "at " << i;
}

TEST_P(GemmSweep, TransposedVariantMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m + n + k));
  // A stored as [k, m]; compute C += A^T B.
  std::vector<float> a(static_cast<size_t>(k * m)), b(static_cast<size_t>(k * n));
  for (float& v : a) v = rng.normal();
  for (float& v : b) v = rng.normal();

  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  gemm_at_b_accumulate(m, n, k, a.data(), m, b.data(), n, c.data(), n);

  std::vector<float> a_t(static_cast<size_t>(m * k));
  for (int64_t p = 0; p < k; ++p)
    for (int64_t i = 0; i < m; ++i)
      a_t[static_cast<size_t>(i * k + p)] = a[static_cast<size_t>(p * m + i)];
  const std::vector<float> ref = naive_gemm(m, n, k, a_t, b);
  for (size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3f * (1.0f + std::abs(ref[i]))) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSweep,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{16, 16, 16}, GemmDims{65, 70, 33},
                                           GemmDims{128, 300, 27}, GemmDims{256, 64, 512}),
                         [](const ::testing::TestParamInfo<GemmDims>& info) {
                           return "m" + std::to_string(info.param.m) + "n" +
                                  std::to_string(info.param.n) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(GemmTest, AccumulatesIntoExistingC) {
  const float a = 2.0f, b = 3.0f;
  float c = 10.0f;
  gemm_accumulate(1, 1, 1, &a, 1, &b, 1, &c, 1);
  EXPECT_FLOAT_EQ(c, 16.0f);
}

TEST(GemmTest, DegenerateDimensionsAreNoOps) {
  float c = 5.0f;
  gemm_accumulate(0, 1, 1, nullptr, 1, nullptr, 1, &c, 1);
  gemm_accumulate(1, 0, 1, nullptr, 1, nullptr, 1, &c, 1);
  gemm_accumulate(1, 1, 0, nullptr, 1, nullptr, 1, &c, 1);
  EXPECT_FLOAT_EQ(c, 5.0f);
}

}  // namespace
}  // namespace sesr
