#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.h"

namespace sesr {
namespace {

TEST(TensorTest, ZeroInitialisedByDefault) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillValueConstructor) {
  const Tensor t(Shape{4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, AdoptingDataChecksSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng rng_a(7), rng_b(7);
  const Tensor a = Tensor::randn({16}, rng_a);
  const Tensor b = Tensor::randn({16}, rng_b);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
}

TEST(TensorTest, ReshapePreservesDataAndChecksNumel) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, NchwAtIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
  EXPECT_EQ(t.at(1, 2, 3, 4), 9.0f);
}

TEST(TensorTest, ElementwiseInPlaceOps) {
  Tensor a(Shape{3}, std::vector<float>{1, -2, 3});
  const Tensor b(Shape{3}, std::vector<float>{2, 2, 2});
  a.add_(b);
  EXPECT_EQ(a[0], 3.0f);
  a.sub_(b);
  a.mul_(b);
  EXPECT_EQ(a[1], -4.0f);
  a.mul_scalar(0.5f);
  EXPECT_EQ(a[2], 3.0f);
  a.add_scalar(1.0f);
  EXPECT_EQ(a[0], 2.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
  EXPECT_THROW((void)a.max_abs_diff(b), std::invalid_argument);
}

TEST(TensorTest, AxpyAccumulates) {
  Tensor a(Shape{2}, std::vector<float>{1, 1});
  const Tensor x(Shape{2}, std::vector<float>{2, -2});
  a.axpy_(0.5f, x);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 0.0f);
}

TEST(TensorTest, ClampBoundsValues) {
  Tensor a(Shape{3}, std::vector<float>{-1.0f, 0.5f, 2.0f});
  a.clamp_(0.0f, 1.0f);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[1], 0.5f);
  EXPECT_EQ(a[2], 1.0f);
}

TEST(TensorTest, SignIsTernary) {
  Tensor a(Shape{3}, std::vector<float>{-3.0f, 0.0f, 0.2f});
  a.sign_();
  EXPECT_EQ(a[0], -1.0f);
  EXPECT_EQ(a[1], 0.0f);
  EXPECT_EQ(a[2], 1.0f);
}

TEST(TensorTest, Reductions) {
  const Tensor a(Shape{4}, std::vector<float>{1, 2, 3, -6});
  EXPECT_FLOAT_EQ(a.sum(), 0.0f);
  EXPECT_FLOAT_EQ(a.mean(), 0.0f);
  EXPECT_FLOAT_EQ(a.min(), -6.0f);
  EXPECT_FLOAT_EQ(a.max(), 3.0f);
  EXPECT_EQ(a.argmax(), 2);
  EXPECT_FLOAT_EQ(a.l2_norm(), std::sqrt(1.0f + 4 + 9 + 36));
}

TEST(TensorTest, BinaryOperatorsProduceNewTensor) {
  const Tensor a(Shape{2}, std::vector<float>{1, 2});
  const Tensor b(Shape{2}, std::vector<float>{3, 4});
  const Tensor sum = a + b;
  const Tensor diff = b - a;
  const Tensor prod = a * b;
  EXPECT_EQ(sum[1], 6.0f);
  EXPECT_EQ(diff[0], 2.0f);
  EXPECT_EQ(prod[1], 8.0f);
  EXPECT_EQ(a[0], 1.0f);  // operands untouched
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape{2}, 1.0f);
  Tensor b = a;
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 1.0f);
}

// Views: the runtime's arena-backed buffers. Reads and writes go straight to
// the external storage; copying a view detaches into an owning tensor.
TEST(TensorTest, ViewWrapsExternalStorageInPlace) {
  std::vector<float> storage{1.0f, 2.0f, 3.0f, 4.0f};
  Tensor v = Tensor::view(Shape{2, 2}, storage.data());
  EXPECT_EQ(v.numel(), 4);
  EXPECT_EQ(v[2], 3.0f);
  v.mul_scalar(2.0f);
  EXPECT_EQ(storage[3], 8.0f);  // writes land in the caller's storage
  storage[0] = 7.0f;
  EXPECT_EQ(v[0], 7.0f);  // and reads see the caller's writes
}

TEST(TensorTest, CopyOfViewDetachesIntoOwner) {
  std::vector<float> storage{1.0f, 2.0f};
  Tensor v = Tensor::view(Shape{2}, storage.data());
  Tensor copy = v;
  copy[0] = 9.0f;
  EXPECT_EQ(storage[0], 1.0f);  // deep copy: the view's storage is untouched
  EXPECT_EQ(v[0], 1.0f);
}

TEST(TensorTest, ViewRejectsNullStorage) {
  EXPECT_THROW(static_cast<void>(Tensor::view(Shape{2}, nullptr)), std::invalid_argument);
}

}  // namespace
}  // namespace sesr
