#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/shape.h"

namespace sesr {
namespace {

TEST(ShapeTest, DefaultIsScalar) {
  const Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, NumelIsProductOfExtents) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.ndim(), 4);
  EXPECT_EQ(s.numel(), 120);
}

TEST(ShapeTest, ZeroExtentGivesEmptyTensor) {
  const Shape s{2, 0, 4};
  EXPECT_EQ(s.numel(), 0);
}

TEST(ShapeTest, NegativeIndexCountsFromBack) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s[-1], 4);
  EXPECT_EQ(s[-3], 2);
}

TEST(ShapeTest, OutOfRangeIndexThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(static_cast<void>(s[2]), std::out_of_range);
  EXPECT_THROW(static_cast<void>(s[-3]), std::out_of_range);
}

TEST(ShapeTest, NegativeExtentRejected) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(ShapeTest, EqualityComparesDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, StridesAreRowMajor) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, ToStringFormatsBrackets) {
  EXPECT_EQ(Shape({1, 3, 32, 32}).to_string(), "[1, 3, 32, 32]");
}

}  // namespace
}  // namespace sesr
