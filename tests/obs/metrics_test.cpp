// Unified metrics registry: instrument semantics, snapshot merge exactness
// (the fleet-view contract), JSON round-trip, and Prometheus text exposition
// that a scraper can actually parse.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "models/models.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "serve/serve.h"

namespace sesr::obs {
namespace {

TEST(ObsMetricsTest, InstrumentsHaveStableAddressesAndSemantics) {
  Registry registry;
  Counter& counter = registry.counter("test.count");
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
  EXPECT_EQ(&registry.counter("test.count"), &counter);

  Gauge& gauge = registry.gauge("test.level");
  gauge.set(10);
  EXPECT_EQ(gauge.add(5), 15);  // add returns the post-add reading
  EXPECT_EQ(gauge.add(-3), 12);
  gauge.set_max(7);
  EXPECT_EQ(gauge.value(), 12);  // set_max never lowers
  gauge.set_max(99);
  EXPECT_EQ(gauge.value(), 99);

  Histogram& histogram = registry.histogram("test.latency_us");
  histogram.record_us(1000);
  EXPECT_EQ(histogram.count(), 1);
}

TEST(ObsMetricsTest, SnapshotMergeIsExactOnCounters) {
  Registry a;
  a.counter("serve.submitted").add(100);
  a.counter("serve.completed").add(90);
  a.counter("only.in.a").add(7);
  a.gauge("queue.depth").set(5);
  a.histogram("latency_us").record_us(500);

  Registry b;
  b.counter("serve.submitted").add(23);
  b.counter("serve.completed").add(20);
  b.counter("only.in.b").add(3);
  b.gauge("queue.depth").set(2);
  b.histogram("latency_us").record_us(1500);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("serve.submitted"), 123);
  EXPECT_EQ(merged.counters.at("serve.completed"), 110);
  EXPECT_EQ(merged.counters.at("only.in.a"), 7);
  EXPECT_EQ(merged.counters.at("only.in.b"), 3);
  EXPECT_EQ(merged.gauges.at("queue.depth"), 7);  // gauges sum: fleet total level
  EXPECT_EQ(merged.histograms.at("latency_us").count, 2);
  EXPECT_EQ(merged.histograms.at("latency_us").sum_us, 2000);
  EXPECT_EQ(merged.histograms.at("latency_us").max_us, 1500);
}

TEST(ObsMetricsTest, JsonRoundTripIsBitExact) {
  Registry registry;
  registry.counter("serve.submitted|tenant=acme").add(17);
  registry.counter("serve.submitted|tenant=bravo").add(5);
  registry.gauge("pool.idle|model=m5,pool=1x3x6x6@scalar").set(3);
  Histogram& h = registry.histogram("serve.latency_us");
  for (int i = 1; i <= 300; ++i) h.record_us(i * 37);

  const RegistrySnapshot before = registry.snapshot();
  const RegistrySnapshot after = RegistrySnapshot::from_json(before.to_json());

  EXPECT_EQ(before.counters, after.counters);
  EXPECT_EQ(before.gauges, after.gauges);
  ASSERT_EQ(after.histograms.count("serve.latency_us"), 1u);
  const Histogram::Snapshot& ha = before.histograms.at("serve.latency_us");
  const Histogram::Snapshot& hb = after.histograms.at("serve.latency_us");
  EXPECT_EQ(ha.count, hb.count);
  EXPECT_EQ(ha.sum_us, hb.sum_us);
  EXPECT_EQ(ha.max_us, hb.max_us);
  EXPECT_EQ(ha.buckets, hb.buckets);
  EXPECT_DOUBLE_EQ(ha.p99_ms, hb.p99_ms);
}

/// Minimal Prometheus text-format scrape: every line must be a comment or
/// `name{labels} value` with a parseable float value and balanced braces.
void scrape_parse(const std::string& exposition, int* samples_out) {
  int samples = 0;
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated line";
    const std::string line = exposition.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    // name[{labels}] value
    size_t cursor = 0;
    while (cursor < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[cursor])) || line[cursor] == '_' ||
            line[cursor] == ':'))
      ++cursor;
    ASSERT_GT(cursor, 0u) << line;
    if (cursor < line.size() && line[cursor] == '{') {
      const size_t close = line.find('}', cursor);
      ASSERT_NE(close, std::string::npos) << line;
      const std::string labels = line.substr(cursor + 1, close - cursor - 1);
      EXPECT_NE(labels.find('='), std::string::npos) << line;
      cursor = close + 1;
    }
    ASSERT_LT(cursor, line.size()) << line;
    ASSERT_EQ(line[cursor], ' ') << line;
    char* end = nullptr;
    const std::string value = line.substr(cursor + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    ++samples;
  }
  *samples_out = samples;
}

TEST(ObsMetricsTest, PrometheusExpositionScrapeParses) {
  Registry registry;
  registry.counter("serve.submitted").add(11);
  registry.counter("serve.tenant.submitted|tenant=acme").add(4);
  registry.counter("serve.tenant.submitted|tenant=bravo").add(7);
  registry.gauge("serve.queue_depth").set(3);
  registry.gauge("model.pool_idle|model=m5,pool=1x3x6x6@avx2").set(2);
  Histogram& h = registry.histogram("serve.latency_us");
  h.record_us(120);
  h.record_us(4500);

  const std::string exposition = registry.snapshot().to_prometheus();
  int samples = 0;
  scrape_parse(exposition, &samples);
  // 3 counters + 2 gauges + 5 summary series (3 quantiles, _sum, _count).
  EXPECT_EQ(samples, 10);

  EXPECT_NE(exposition.find("# TYPE sesr_serve_submitted_total counter"), std::string::npos);
  EXPECT_NE(exposition.find("sesr_serve_tenant_submitted_total{tenant=\"acme\"} 4"),
            std::string::npos);
  EXPECT_NE(exposition.find("sesr_model_pool_idle{model=\"m5\",pool=\"1x3x6x6@avx2\"} 2"),
            std::string::npos);
  EXPECT_NE(exposition.find("# TYPE sesr_serve_latency_us summary"), std::string::npos);
  EXPECT_NE(exposition.find("sesr_serve_latency_us_count 2"), std::string::npos);
  // One TYPE line per family even with several label variants.
  size_t first = exposition.find("# TYPE sesr_serve_tenant_submitted_total");
  size_t second = exposition.find("# TYPE sesr_serve_tenant_submitted_total", first + 1);
  EXPECT_EQ(second, std::string::npos);
}

TEST(ObsMetricsTest, ServerMetricsExportCoversStatsAndPools) {
  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                models::Sesr::Form::kInference);
  Rng rng(5);
  network->init_weights(rng);
  auto upscaler = std::make_shared<models::NetworkUpscaler>("SESR-M2", std::move(network));

  serve::Server::Options options;
  options.workers = 1;
  options.max_batch = 2;
  serve::Server server(upscaler, options);
  server.warmup({3, 6, 6});
  Rng tile_rng(8);
  const Tensor tile = Tensor::rand({1, 3, 6, 6}, tile_rng);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.submit(tile).get().ok());

  const RegistrySnapshot snap = server.metrics();
  EXPECT_EQ(snap.counters.at("serve.submitted"), 4);
  EXPECT_EQ(snap.counters.at("serve.completed"), 4);
  EXPECT_EQ(snap.histograms.at("serve.latency_us").count, 4);
  // Plan-cache + session-pool instruments flow through from the upscaler.
  bool saw_pool_gauge = false;
  bool saw_compiles = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind("model.pool_idle|", 0) == 0 && value >= 1) saw_pool_gauge = true;
    if (name.rfind("model.plan_compiles|", 0) == 0 && value >= 1) saw_compiles = true;
  }
  EXPECT_TRUE(saw_pool_gauge);
  EXPECT_TRUE(saw_compiles);

  // Both export formats produce non-trivial documents.
  EXPECT_NE(server.metrics_json().find("serve.submitted"), std::string::npos);
  int samples = 0;
  scrape_parse(server.metrics_prometheus(), &samples);
  EXPECT_GT(samples, 5);
}

TEST(ObsMetricsTest, ProfileExportPublishesHotOpGauges) {
  setenv("SESR_PROFILE_OPS", "1", 1);
  setenv("SESR_PROFILE_SAMPLE", "1", 1);
  refresh_profile_config();

  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                models::Sesr::Form::kInference);
  Rng rng(5);
  network->init_weights(rng);
  models::NetworkUpscaler upscaler("SESR-M2", std::move(network));
  Rng tile_rng(8);
  for (int i = 0; i < 3; ++i)
    static_cast<void>(upscaler.upscale(Tensor::rand({1, 3, 6, 6}, tile_rng)));

  setenv("SESR_PROFILE_OPS", "0", 1);
  refresh_profile_config();

  const std::vector<OpProfileRow> rows = profile_aggregate();
  ASSERT_FALSE(rows.empty());
  EXPECT_GT(rows.front().calls, 0);
  EXPECT_GT(rows.front().ns, 0);
  for (size_t i = 1; i < rows.size(); ++i) EXPECT_GE(rows[i - 1].ns, rows[i].ns);

  Registry registry;
  profile_export(registry);
  const RegistrySnapshot snap = registry.snapshot();
  bool saw_ns = false;
  for (const auto& [name, value] : snap.gauges)
    if (name.rfind("profile.op_ns|op=", 0) == 0 && value > 0) saw_ns = true;
  EXPECT_TRUE(saw_ns);
}

}  // namespace
}  // namespace sesr::obs
