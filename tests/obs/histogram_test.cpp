// Mergeability contract of the observability histogram: a merge across any
// partition of the samples must land in exactly the buckets a single
// histogram over all samples would have — the property that makes the
// frontend's fleet latency view trustworthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "obs/histogram.h"

namespace sesr::obs {
namespace {

std::vector<int64_t> sample_set(size_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Mix of regimes: sub-bucket-exact small values, mid octaves, and a heavy
  // tail, so the merge test exercises linear and geometric buckets alike.
  std::uniform_int_distribution<int64_t> small(0, 15);
  std::uniform_int_distribution<int64_t> mid(16, 50'000);
  std::uniform_int_distribution<int64_t> tail(50'001, 40'000'000);
  std::vector<int64_t> samples;
  samples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t pick = rng() % 10;
    if (pick < 4)
      samples.push_back(small(rng));
    else if (pick < 9)
      samples.push_back(mid(rng));
    else
      samples.push_back(tail(rng));
  }
  return samples;
}

void expect_snapshots_identical(const Histogram::Snapshot& a, const Histogram::Snapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_us, b.sum_us);
  EXPECT_EQ(a.max_us, b.max_us);
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i].first, b.buckets[i].first) << "bucket " << i;
    EXPECT_EQ(a.buckets[i].second, b.buckets[i].second) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
  EXPECT_DOUBLE_EQ(a.max_ms, b.max_ms);
  EXPECT_DOUBLE_EQ(a.p50_ms, b.p50_ms);
  EXPECT_DOUBLE_EQ(a.p95_ms, b.p95_ms);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST(ObsHistogramTest, MergeAcrossRandomShardSplitsMatchesGroundTruth) {
  const std::vector<int64_t> samples = sample_set(4000, 7);
  Histogram all;
  for (const int64_t us : samples) all.record_us(us);
  const Histogram::Snapshot truth = all.snapshot();

  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t shards = 2 + rng() % 6;
    std::vector<Histogram> parts(shards);
    for (const int64_t us : samples) parts[rng() % shards].record_us(us);

    // Merge the shard snapshots in a random order (commutativity) ...
    std::vector<size_t> order(shards);
    for (size_t i = 0; i < shards; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    Histogram::Snapshot merged = parts[order[0]].snapshot();
    for (size_t i = 1; i < shards; ++i) merged.merge(parts[order[i]].snapshot());
    expect_snapshots_identical(truth, merged);

    // ... and via a different grouping (associativity): fold the first half
    // and second half separately, then combine.
    const size_t half = shards / 2;
    if (half >= 1 && shards - half >= 1) {
      Histogram::Snapshot left = parts[0].snapshot();
      for (size_t i = 1; i < half; ++i) left.merge(parts[i].snapshot());
      Histogram::Snapshot right = parts[half].snapshot();
      for (size_t i = half + 1; i < shards; ++i) right.merge(parts[i].snapshot());
      left.merge(right);
      expect_snapshots_identical(truth, left);
    }
  }
}

TEST(ObsHistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h;
  for (const int64_t us : sample_set(256, 3)) h.record_us(us);
  const Histogram::Snapshot truth = h.snapshot();

  Histogram::Snapshot merged = truth;
  merged.merge(Histogram().snapshot());
  expect_snapshots_identical(truth, merged);

  Histogram::Snapshot from_empty = Histogram().snapshot();
  from_empty.merge(truth);
  expect_snapshots_identical(truth, from_empty);
}

TEST(ObsHistogramTest, QuantilesMatchHistogramAfterFinalize) {
  Histogram h;
  for (const int64_t us : sample_set(1000, 21)) h.record_us(us);
  Histogram::Snapshot snap = h.snapshot();
  snap.finalize();
  EXPECT_DOUBLE_EQ(snap.p50_ms, h.quantile_ms(0.50));
  EXPECT_DOUBLE_EQ(snap.p95_ms, h.quantile_ms(0.95));
  EXPECT_DOUBLE_EQ(snap.p99_ms, h.quantile_ms(0.99));
}

// TSan seam: concurrent record_us while another thread snapshots and merges.
// The contract is freedom from data races and a sane (monotone, bounded)
// count in every observed snapshot — not a point-in-time-exact view.
TEST(ObsHistogramTest, ConcurrentRecordDuringMergeIsRaceFree) {
  Histogram live;
  Histogram other;
  for (const int64_t us : sample_set(512, 5)) other.record_us(us);
  const Histogram::Snapshot other_snap = other.snapshot();

  constexpr int64_t kPerThread = 20'000;
  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&live, &start, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 99);
      for (int64_t i = 0; i < kPerThread; ++i)
        live.record_us(static_cast<int64_t>(rng() % 1'000'000));
    });
  }
  start.store(true, std::memory_order_release);

  int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    Histogram::Snapshot snap = live.snapshot();
    snap.merge(other_snap);
    EXPECT_GE(snap.count, last_count + other_snap.count);
    EXPECT_LE(snap.count, 3 * kPerThread + other_snap.count);
    last_count = snap.count - other_snap.count;
  }
  for (std::thread& writer : writers) writer.join();

  Histogram::Snapshot final_snap = live.snapshot();
  final_snap.merge(other_snap);
  EXPECT_EQ(final_snap.count, 3 * kPerThread + other_snap.count);
}

}  // namespace
}  // namespace sesr::obs
