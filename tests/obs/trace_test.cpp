// Trace layer contract: flight-recorder rings (overwrite-oldest, fixed
// memory), Chrome trace JSON round-trip, structural span nesting, and the
// end-to-end span taxonomy a traced serve::Server emits.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "models/models.h"
#include "obs/trace.h"
#include "serve/serve.h"

namespace sesr::obs {
namespace {

void enable_tracing() {
  setenv("SESR_TRACE", "1", 1);
  refresh_trace_config();
}

void disable_tracing() {
  setenv("SESR_TRACE", "0", 1);
  refresh_trace_config();
}

TEST(ObsTraceTest, DisabledByDefaultMintsNothing) {
  disable_tracing();
  EXPECT_FALSE(trace_enabled());
  const TraceContext context = start_trace();
  EXPECT_FALSE(static_cast<bool>(context));
  EXPECT_EQ(context.trace_id, 0u);
  // record_span with a zero trace id is the disabled no-op path.
  record_span(0, 1, 0, "ignored", 0, 10);
  for (const SpanRecord& span : drain_spans()) EXPECT_NE(span.name, "ignored");
}

TEST(ObsTraceTest, RecordDrainRoundTripsThroughChromeJson) {
  enable_tracing();
  clear_trace_buffers();
  const TraceContext trace = start_trace();
  ASSERT_TRUE(static_cast<bool>(trace));
  const uint64_t root = next_span_id();
  const uint64_t child = next_span_id();
  record_span(trace.trace_id, child, root, "child_stage", 1100, 1900);
  record_span(trace.trace_id, root, 0, "request", 1000, 2000);
  disable_tracing();

  const std::vector<SpanRecord> drained = drain_spans();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].name, "child_stage");
  EXPECT_EQ(drained[0].span_id, child);
  EXPECT_EQ(drained[0].parent_span, root);
  EXPECT_EQ(drained[0].start_ns, 1100);
  EXPECT_EQ(drained[0].dur_ns, 800);

  const std::vector<SpanRecord> parsed = parse_chrome_trace(chrome_trace_json(drained));
  ASSERT_EQ(parsed.size(), 2u);
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, drained[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, drained[i].span_id);
    EXPECT_EQ(parsed[i].parent_span, drained[i].parent_span);
    EXPECT_EQ(parsed[i].start_ns, drained[i].start_ns);
    EXPECT_EQ(parsed[i].dur_ns, drained[i].dur_ns);
    EXPECT_EQ(parsed[i].name, drained[i].name);
    EXPECT_EQ(parsed[i].pid, drained[i].pid);
    EXPECT_EQ(parsed[i].tid, drained[i].tid);
  }
  EXPECT_TRUE(validate_span_nesting(parsed).empty());
}

TEST(ObsTraceTest, RingOverwritesOldestAtFixedMemory) {
  // 4096 bytes (the config floor) = 64 slots of 64 bytes; the ring size is
  // read at first record on a thread, so use a fresh thread to get a ring of
  // exactly this capacity.
  setenv("SESR_TRACE_RING_BYTES", "4096", 1);
  enable_tracing();
  clear_trace_buffers();
  std::thread recorder([] {
    const TraceContext trace = start_trace();
    for (uint64_t i = 1; i <= 100; ++i)
      record_span(trace.trace_id, i, 0, "wrap", static_cast<int64_t>(i), static_cast<int64_t>(i + 1));
  });
  recorder.join();
  setenv("SESR_TRACE_RING_BYTES", "1048576", 1);
  disable_tracing();

  std::vector<uint64_t> wrap_spans;
  for (const SpanRecord& span : drain_spans())
    if (span.name == "wrap") wrap_spans.push_back(span.span_id);
  ASSERT_EQ(wrap_spans.size(), 64u);  // capacity, not 100
  // Overwrite-oldest: exactly the newest 64, oldest-first.
  for (size_t i = 0; i < wrap_spans.size(); ++i) EXPECT_EQ(wrap_spans[i], 37 + i);
}

TEST(ObsTraceTest, NestingValidatorFlagsEscapesAndTraceMismatches) {
  std::vector<SpanRecord> spans(3);
  spans[0] = {.trace_id = 7, .span_id = 1, .parent_span = 0, .start_ns = 1000, .dur_ns = 1000,
              .tid = 1, .pid = 1, .name = "request"};
  spans[1] = {.trace_id = 7, .span_id = 2, .parent_span = 1, .start_ns = 1500, .dur_ns = 1000,
              .tid = 1, .pid = 1, .name = "escapes"};
  spans[2] = {.trace_id = 8, .span_id = 3, .parent_span = 1, .start_ns = 1100, .dur_ns = 100,
              .tid = 1, .pid = 1, .name = "wrong_trace"};
  // Violations come back in span order: the window escape first, then the
  // trace-id mismatch.
  const std::vector<std::string> violations = validate_span_nesting(spans);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].find("escapes"), std::string::npos);
  EXPECT_NE(violations[1].find("wrong_trace"), std::string::npos);

  // A span whose parent is absent (other process, not captured) is skipped.
  std::vector<SpanRecord> orphan(1);
  orphan[0] = {.trace_id = 9, .span_id = 4, .parent_span = 99, .start_ns = 0, .dur_ns = 1,
               .tid = 1, .pid = 1, .name = "orphan"};
  EXPECT_TRUE(validate_span_nesting(orphan).empty());
}

TEST(ObsTraceTest, TracedServerEmitsNestedSpanTaxonomy) {
  enable_tracing();
  clear_trace_buffers();

  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                                models::Sesr::Form::kInference);
  Rng rng(5);
  network->init_weights(rng);
  auto upscaler = std::make_shared<models::NetworkUpscaler>("SESR-M2", std::move(network));
  serve::Server::Options options;
  options.workers = 1;
  options.max_batch = 4;
  options.batch_linger = std::chrono::microseconds{2000};
  {
    serve::Server server(upscaler, options);
    server.warmup({3, 6, 6});
    Rng tile_rng(8);
    const Tensor tile = Tensor::rand({1, 3, 6, 6}, tile_rng);
    std::vector<serve::ServeFuture> futures;
    constexpr int kRequests = 6;
    for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(tile));
    for (serve::ServeFuture& future : futures) ASSERT_TRUE(future.get().ok());
    server.stop();
  }
  disable_tracing();

  const std::vector<SpanRecord> spans = drain_spans();
  const std::vector<std::string> violations = validate_span_nesting(spans);
  for (const std::string& violation : violations) ADD_FAILURE() << violation;

  // Every request minted its own trace; each trace has one server_request
  // root carrying queue_wait plus the batch-stage spans.
  std::map<uint64_t, std::set<std::string>> names_by_trace;
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) {
    names_by_trace[span.trace_id].insert(span.name);
    by_id.emplace(span.span_id, &span);
  }
  EXPECT_EQ(names_by_trace.size(), 6u);
  int roots = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "server_request") {
      ++roots;
      EXPECT_EQ(span.parent_span, 0u) << "submit() requests root at the server";
    } else {
      // Every non-root span's parent is present and shares its trace.
      const auto it = by_id.find(span.parent_span);
      ASSERT_NE(it, by_id.end()) << span.name;
      EXPECT_EQ(it->second->trace_id, span.trace_id) << span.name;
    }
  }
  EXPECT_EQ(roots, 6);
  for (const auto& [trace_id, names] : names_by_trace) {
    EXPECT_TRUE(names.count("server_request")) << trace_id;
    EXPECT_TRUE(names.count("queue_wait")) << trace_id;
  }
  // Batch-stage spans exist somewhere in the run (parented to the first
  // traced request of each batch).
  std::set<std::string> all_names;
  for (const SpanRecord& span : spans) all_names.insert(span.name);
  EXPECT_TRUE(all_names.count("batch_form"));
  EXPECT_TRUE(all_names.count("session_run"));
  EXPECT_TRUE(all_names.count("reply"));
}

}  // namespace
}  // namespace sesr::obs
