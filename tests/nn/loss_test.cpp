#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace sesr::nn {
namespace {

TEST(LossTest, MaeValueAndGrad) {
  const Tensor pred(Shape{4}, std::vector<float>{1, 2, 3, 4});
  const Tensor target(Shape{4}, std::vector<float>{1, 0, 5, 4});
  const LossResult r = mae_loss(pred, target);
  EXPECT_FLOAT_EQ(r.value, (0 + 2 + 2 + 0) / 4.0f);
  EXPECT_FLOAT_EQ(r.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(r.grad[1], 0.25f);
  EXPECT_FLOAT_EQ(r.grad[2], -0.25f);
}

TEST(LossTest, MseValueAndGrad) {
  const Tensor pred(Shape{2}, std::vector<float>{3, 1});
  const Tensor target(Shape{2}, std::vector<float>{1, 1});
  const LossResult r = mse_loss(pred, target);
  EXPECT_FLOAT_EQ(r.value, 2.0f);  // (4 + 0) / 2
  EXPECT_FLOAT_EQ(r.grad[0], 2.0f);  // 2 * 2 / 2
  EXPECT_FLOAT_EQ(r.grad[1], 0.0f);
}

TEST(LossTest, LossesRejectShapeMismatch) {
  EXPECT_THROW(mae_loss(Tensor({2}), Tensor({3})), std::invalid_argument);
  EXPECT_THROW(mse_loss(Tensor({2}), Tensor({3})), std::invalid_argument);
}

TEST(LossTest, SoftmaxRowsSumToOne) {
  Rng rng(10);
  const Tensor logits = Tensor::randn({5, 7}, rng, 0.0f, 3.0f);
  const Tensor p = softmax(logits);
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      sum += p[i * 7 + j];
      EXPECT_GE(p[i * 7 + j], 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(LossTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a(Shape{1, 3}, std::vector<float>{1000.0f, 1001.0f, 1002.0f});
  const Tensor p = softmax(a);
  EXPECT_FALSE(std::isnan(p[0]));
  Tensor b(Shape{1, 3}, std::vector<float>{0.0f, 1.0f, 2.0f});
  const Tensor q = softmax(b);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(p[j], q[j], 1e-5f);
}

TEST(LossTest, CrossEntropyOfUniformLogitsIsLogK) {
  const Tensor logits(Shape{2, 10}, 0.0f);
  const LossResult r = cross_entropy_loss(logits, {0, 9});
  EXPECT_NEAR(r.value, std::log(10.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyGradIsSoftmaxMinusOneHotOverN) {
  Tensor logits(Shape{1, 3}, std::vector<float>{1.0f, 2.0f, 0.5f});
  const Tensor p = softmax(logits);
  const LossResult r = cross_entropy_loss(logits, {1});
  EXPECT_NEAR(r.grad[0], p[0], 1e-5f);
  EXPECT_NEAR(r.grad[1], p[1] - 1.0f, 1e-5f);
  EXPECT_NEAR(r.grad[2], p[2], 1e-5f);
}

TEST(LossTest, CrossEntropyValidatesLabels) {
  const Tensor logits(Shape{2, 3}, 0.0f);
  EXPECT_THROW(cross_entropy_loss(logits, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss(logits, {0, -1}), std::invalid_argument);
}

TEST(LossTest, ArgmaxRowsPicksMaxPerRow) {
  Tensor logits(Shape{2, 3}, std::vector<float>{1, 5, 2, 7, 0, 3});
  const auto preds = argmax_rows(logits);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 0);
}

}  // namespace
}  // namespace sesr::nn
