#include <gtest/gtest.h>

#include "nn/activations.h"

namespace sesr::nn {
namespace {

TEST(ActivationsTest, ReluClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor(Shape{1, 1, 1, 4}, std::vector<float>{-2, -0.5f, 0, 3}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(ActivationsTest, ReluBackwardMasksNegatives) {
  ReLU relu;
  relu.forward(Tensor(Shape{1, 1, 1, 3}, std::vector<float>{-1, 2, -3}));
  const Tensor g = relu.backward(Tensor(Shape{1, 1, 1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(ActivationsTest, Relu6SaturatesAtSix) {
  ReLU6 relu6;
  const Tensor y = relu6.forward(Tensor(Shape{1, 1, 1, 3}, std::vector<float>{-1, 3, 9}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  const Tensor g = relu6.backward(Tensor(Shape{1, 1, 1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);  // saturated region also blocks gradient
}

TEST(ActivationsTest, LeakyReluScalesNegatives) {
  LeakyReLU leaky(0.1f);
  const Tensor y = leaky.forward(Tensor(Shape{1, 1, 1, 2}, std::vector<float>{-10, 5}));
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
}

TEST(ActivationsTest, PReluUsesPerChannelSlopes) {
  PReLU prelu(2, 0.0f);
  prelu.parameters()[0]->value[0] = 0.5f;
  prelu.parameters()[0]->value[1] = -1.0f;
  Tensor x(Shape{1, 2, 1, 2}, std::vector<float>{-2, 4, -2, 4});
  const Tensor y = prelu.forward(x);
  EXPECT_FLOAT_EQ(y[0], -1.0f);  // channel 0 slope 0.5
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);   // channel 1 slope -1
  EXPECT_FLOAT_EQ(y[3], 4.0f);
}

TEST(ActivationsTest, PReluSlopeGradAccumulates) {
  PReLU prelu(1, 0.25f);
  prelu.forward(Tensor(Shape{1, 1, 1, 2}, std::vector<float>{-3, 2}));
  prelu.backward(Tensor(Shape{1, 1, 1, 2}, 1.0f));
  // d/da sum(prelu) over the negative input only: grad = x = -3.
  EXPECT_FLOAT_EQ(prelu.parameters()[0]->grad[0], -3.0f);
}

TEST(ActivationsTest, PReluRejectsChannelMismatch) {
  PReLU prelu(3);
  EXPECT_THROW(prelu.forward(Tensor({1, 4, 2, 2})), std::invalid_argument);
}

TEST(ActivationsTest, TracePreservesShape) {
  ReLU relu;
  PReLU prelu(3);
  std::vector<LayerInfo> infos;
  EXPECT_EQ(relu.trace({2, 3, 4, 4}, &infos), Shape({2, 3, 4, 4}));
  EXPECT_EQ(prelu.trace({2, 3, 4, 4}, &infos), Shape({2, 3, 4, 4}));
  EXPECT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[1].params, 3);
}

}  // namespace
}  // namespace sesr::nn
