#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/groupnorm.h"
#include "nn/init.h"

namespace sesr::nn {
namespace {

TEST(GroupNormTest, NormalisesToZeroMeanUnitVariancePerGroup) {
  GroupNorm gn(4, 2);
  Rng rng(1);
  const Tensor x = Tensor::randn({2, 4, 6, 6}, rng, 3.0f, 2.5f);  // shifted, scaled
  const Tensor y = gn.forward(x);

  const int64_t hw = 36, cpg = 2;
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t g = 0; g < 2; ++g) {
      double sum = 0.0, sum_sq = 0.0;
      for (int64_t c = 0; c < cpg; ++c)
        for (int64_t j = 0; j < hw; ++j) {
          const float v = y.at(i, g * cpg + c, j / 6, j % 6);
          sum += v;
          sum_sq += static_cast<double>(v) * v;
        }
      const double n = cpg * hw;
      EXPECT_NEAR(sum / n, 0.0, 1e-4);
      EXPECT_NEAR(sum_sq / n, 1.0, 1e-2);
    }
}

TEST(GroupNormTest, GammaBetaAffineApplied) {
  GroupNorm gn(2, 1);
  gn.parameters()[0]->value.fill(3.0f);   // gamma
  gn.parameters()[1]->value.fill(-1.0f);  // beta
  Rng rng(2);
  const Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  const Tensor y = gn.forward(x);
  // mean(y) = beta, since mean(xhat) = 0.
  EXPECT_NEAR(y.mean(), -1.0f, 1e-4f);
}

TEST(GroupNormTest, ScaleInvarianceOfInput) {
  // GN output is invariant to a positive rescaling of its input.
  GroupNorm gn(4, 2);
  Rng rng(3);
  const Tensor x = Tensor::randn({1, 4, 5, 5}, rng);
  Tensor x2 = x;
  x2.mul_scalar(7.5f);
  EXPECT_LT(gn.forward(x).max_abs_diff(gn.forward(x2)), 1e-3f);
}

TEST(GroupNormTest, InputGradientMatchesNumeric) {
  GroupNorm gn(4, 2);
  Rng rng(4);
  const Tensor x = Tensor::randn({2, 4, 4, 4}, rng);
  const GradCheckResult r = check_input_gradient(gn, x);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(GroupNormTest, ParameterGradientsMatchNumeric) {
  GroupNorm gn(4, 4);
  Rng rng(5);
  const Tensor x = Tensor::randn({2, 4, 4, 4}, rng);
  const GradCheckResult r = check_parameter_gradients(gn, x);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(GroupNormTest, TraceIsShapePreservingAndDeploymentFree) {
  GroupNorm gn(8, 4);
  std::vector<LayerInfo> infos;
  EXPECT_EQ(gn.trace({1, 8, 16, 16}, &infos), Shape({1, 8, 16, 16}));
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].kind, LayerKind::kActivation);  // folds away on the NPU
  EXPECT_EQ(infos[0].params, 16);
  EXPECT_EQ(infos[0].macs, 0);
}

TEST(GroupNormTest, RejectsInvalidGrouping) {
  EXPECT_THROW(GroupNorm(6, 4), std::invalid_argument);
  EXPECT_THROW(GroupNorm(0, 1), std::invalid_argument);
}

TEST(GroupNormTest, InitWeightsPreservesGammaOne) {
  // init_he_normal must not clobber the unit gamma (rank-1 but named gn_*).
  GroupNorm gn(4, 2);
  Rng rng(6);
  init_he_normal(gn, rng);
  for (float v : gn.parameters()[0]->value.flat()) EXPECT_FLOAT_EQ(v, 1.0f);
  for (float v : gn.parameters()[1]->value.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace sesr::nn
