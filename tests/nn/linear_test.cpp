#include <gtest/gtest.h>

#include "nn/linear.h"

namespace sesr::nn {
namespace {

TEST(LinearTest, ComputesAffineMap) {
  Linear fc(2, 2);
  fc.weight().value = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.bias().value = Tensor(Shape{2}, std::vector<float>{10, 20});
  const Tensor y = fc.forward(Tensor(Shape{1, 2}, std::vector<float>{1, 1}));
  EXPECT_FLOAT_EQ(y[0], 13.0f);
  EXPECT_FLOAT_EQ(y[1], 27.0f);
}

TEST(LinearTest, BatchRowsIndependent) {
  Linear fc(3, 2);
  Rng rng(2);
  for (float& v : fc.weight().value.flat()) v = rng.normal();
  const Tensor x = Tensor::randn({4, 3}, rng);
  const Tensor y = fc.forward(x);

  Tensor row0({1, 3});
  std::copy(x.data(), x.data() + 3, row0.data());
  const Tensor y0 = fc.forward(row0);
  EXPECT_NEAR(y[0], y0[0], 1e-6f);
  EXPECT_NEAR(y[1], y0[1], 1e-6f);
}

TEST(LinearTest, TraceShapeAndCost) {
  Linear fc(128, 10);
  std::vector<LayerInfo> infos;
  EXPECT_EQ(fc.trace({5, 128}, &infos), Shape({5, 10}));
  EXPECT_EQ(infos[0].macs, 1280);
  EXPECT_EQ(infos[0].params, 128 * 10 + 10);
}

TEST(LinearTest, RejectsWrongInputWidth) {
  Linear fc(8, 4);
  EXPECT_THROW(fc.trace({2, 7}, nullptr), std::invalid_argument);
  EXPECT_THROW(Linear(0, 4), std::invalid_argument);
}

TEST(LinearTest, BackwardAccumulatesWeightGrad) {
  Linear fc(2, 1, /*bias=*/true);
  fc.weight().value.fill(1.0f);
  fc.zero_grad();
  fc.forward(Tensor(Shape{1, 2}, std::vector<float>{3, 4}));
  fc.backward(Tensor(Shape{1, 1}, 1.0f));
  EXPECT_FLOAT_EQ(fc.weight().grad[0], 3.0f);
  EXPECT_FLOAT_EQ(fc.weight().grad[1], 4.0f);
  EXPECT_FLOAT_EQ(fc.bias().grad[0], 1.0f);
  // Second backward without zero_grad accumulates.
  fc.forward(Tensor(Shape{1, 2}, std::vector<float>{3, 4}));
  fc.backward(Tensor(Shape{1, 1}, 1.0f));
  EXPECT_FLOAT_EQ(fc.weight().grad[0], 6.0f);
}

}  // namespace
}  // namespace sesr::nn
