// Parameterized numerical-gradient sweep over every layer type.
//
// Each layer's backward pass is checked against central differences for both
// the input gradient and all parameter gradients. This is the test that pins
// the entire substrate: attacks and training are only as correct as these
// gradients.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "nn/nn.h"

namespace sesr::nn {
namespace {

struct LayerCase {
  std::string name;
  std::function<ModulePtr()> make;
  Shape input;
};

void init_params(Module& m, uint64_t seed) {
  Rng rng(seed);
  for (Parameter* p : m.parameters())
    for (float& v : p->value.flat()) v = rng.normal(0.0f, 0.5f);
}

class GradCheckSweep : public ::testing::TestWithParam<LayerCase> {};

TEST_P(GradCheckSweep, InputGradientMatchesNumeric) {
  const LayerCase& layer_case = GetParam();
  ModulePtr module = layer_case.make();
  init_params(*module, 99);
  Rng rng(17);
  Tensor input = Tensor::randn(layer_case.input, rng);
  // Central differences at ReLU-family kinks (x = 0) produce spurious
  // mismatches; keep test coordinates off the kink by more than epsilon.
  bias_away_from_zero_(input, 0.05f);

  const GradCheckResult result = check_input_gradient(*module, input);
  EXPECT_TRUE(result.passed) << layer_case.name << ": " << result.detail
                             << " (max rel err " << result.max_rel_error << ")";
}

TEST_P(GradCheckSweep, ParameterGradientsMatchNumeric) {
  const LayerCase& layer_case = GetParam();
  ModulePtr module = layer_case.make();
  init_params(*module, 123);
  Rng rng(31);
  Tensor input = Tensor::randn(layer_case.input, rng);
  bias_away_from_zero_(input, 0.05f);

  if (module->parameters().empty()) GTEST_SKIP() << "stateless layer";
  const GradCheckResult result = check_parameter_gradients(*module, input);
  EXPECT_TRUE(result.passed) << layer_case.name << ": " << result.detail
                             << " (max rel err " << result.max_rel_error << ")";
}

ModulePtr make_residual_conv() {
  auto body = std::make_unique<Sequential>("body");
  body->add<Conv2d>(Conv2dOptions{.in_channels = 4, .out_channels = 4, .kernel = 3});
  return std::make_unique<Residual>(std::move(body), nullptr, 0.5f);
}

ModulePtr make_projected_residual() {
  auto body = std::make_unique<Sequential>("body");
  body->add<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 6, .kernel = 3, .stride = 2});
  auto shortcut = std::make_unique<Sequential>("shortcut");
  shortcut->add<Conv2d>(
      Conv2dOptions{.in_channels = 3, .out_channels = 6, .kernel = 1, .stride = 2, .padding = 0});
  return std::make_unique<Residual>(std::move(body), std::move(shortcut));
}

ModulePtr make_concat() {
  auto concat = std::make_unique<Concat>();
  concat->add_branch<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 1,
                                           .padding = 0});
  concat->add_branch<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 5, .kernel = 3});
  return concat;
}

ModulePtr make_gap_linear() {
  auto seq = std::make_unique<Sequential>("head");
  seq->add<GlobalAvgPool>();
  seq->add<Linear>(6, 4);
  return seq;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, GradCheckSweep,
    ::testing::Values(
        LayerCase{"conv3x3", [] { return std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 5, .kernel = 3}); }, Shape{2, 3, 8, 8}},
        LayerCase{"conv5x5", [] { return std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 2, .out_channels = 4, .kernel = 5}); }, Shape{2, 2, 9, 9}},
        LayerCase{"conv1x1", [] { return std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 6, .out_channels = 3, .kernel = 1, .padding = 0}); }, Shape{2, 6, 7, 7}},
        LayerCase{"conv_stride2", [] { return std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 2}); }, Shape{2, 3, 8, 8}},
        LayerCase{"conv_nobias", [] { return std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3, .bias = false}); }, Shape{1, 3, 6, 6}},
        LayerCase{"deconv9x9_s2", [] { return std::make_unique<ConvTranspose2d>(ConvTranspose2dOptions{.in_channels = 3, .out_channels = 2, .kernel = 9, .stride = 2, .padding = 4, .output_padding = 1}); }, Shape{1, 3, 6, 6}},
        LayerCase{"deconv4x4_s2", [] { return std::make_unique<ConvTranspose2d>(ConvTranspose2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 4, .stride = 2, .padding = 1, .output_padding = 0}); }, Shape{2, 2, 5, 5}},
        LayerCase{"dwconv3x3", [] { return std::make_unique<DepthwiseConv2d>(DepthwiseConv2dOptions{.channels = 4, .kernel = 3}); }, Shape{2, 4, 8, 8}},
        LayerCase{"dwconv3x3_s2", [] { return std::make_unique<DepthwiseConv2d>(DepthwiseConv2dOptions{.channels = 3, .kernel = 3, .stride = 2}); }, Shape{2, 3, 8, 8}},
        LayerCase{"relu", [] { return std::make_unique<ReLU>(); }, Shape{2, 3, 6, 6}},
        LayerCase{"relu6", [] { return std::make_unique<ReLU6>(); }, Shape{2, 3, 6, 6}},
        LayerCase{"leaky_relu", [] { return std::make_unique<LeakyReLU>(0.1f); }, Shape{2, 3, 6, 6}},
        LayerCase{"prelu", [] { return std::make_unique<PReLU>(3); }, Shape{2, 3, 6, 6}},
        LayerCase{"depth2space", [] { return std::make_unique<DepthToSpace>(2); }, Shape{2, 12, 4, 4}},
        LayerCase{"tile_channels", [] { return std::make_unique<TileChannels>(4); }, Shape{2, 3, 5, 5}},
        LayerCase{"maxpool2", [] { return std::make_unique<MaxPool2d>(2, 2); }, Shape{2, 3, 8, 8}},
        LayerCase{"avgpool3_s1_p1", [] { return std::make_unique<AvgPool2d>(3, 1, 1); }, Shape{2, 3, 6, 6}},
        LayerCase{"global_avg_pool", [] { return std::make_unique<GlobalAvgPool>(); }, Shape{2, 5, 6, 6}},
        LayerCase{"residual_scaled", make_residual_conv, Shape{2, 4, 6, 6}},
        LayerCase{"residual_projected", make_projected_residual, Shape{2, 3, 8, 8}},
        LayerCase{"concat", make_concat, Shape{2, 3, 6, 6}},
        LayerCase{"gap_linear", make_gap_linear, Shape{2, 6, 5, 5}}),
    [](const ::testing::TestParamInfo<LayerCase>& info) { return info.param.name; });

}  // namespace
}  // namespace sesr::nn
