#include <gtest/gtest.h>

#include "nn/pixel_ops.h"

namespace sesr::nn {
namespace {

TEST(DepthToSpaceTest, KnownPermutation) {
  // 4 channels, 1x1 spatial, block 2 -> 1 channel, 2x2 spatial.
  DepthToSpace d2s(2);
  Tensor x(Shape{1, 4, 1, 1}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = d2s.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Channel c*r^2 + dy*r + dx lands at (dy, dx).
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 4.0f);
}

TEST(DepthToSpaceTest, BackwardIsExactInverse) {
  DepthToSpace d2s(2);
  Rng rng(4);
  const Tensor x = Tensor::randn({2, 12, 3, 3}, rng);
  const Tensor y = d2s.forward(x);
  const Tensor back = d2s.backward(y);  // adjoint of a permutation = inverse
  EXPECT_EQ(back.max_abs_diff(x), 0.0f);
}

TEST(DepthToSpaceTest, ShapePropagation) {
  DepthToSpace d2s(2);
  EXPECT_EQ(d2s.trace({1, 12, 16, 16}, nullptr), Shape({1, 3, 32, 32}));
  EXPECT_THROW(d2s.trace({1, 10, 16, 16}, nullptr), std::invalid_argument);
}

TEST(TileChannelsTest, InterleavesConsecutively) {
  TileChannels tile(2);
  Tensor x(Shape{1, 2, 1, 1}, std::vector<float>{5, 7});
  const Tensor y = tile.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 4, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  EXPECT_FLOAT_EQ(y[3], 7.0f);
}

TEST(TileChannelsTest, BackwardSumsReplicas) {
  TileChannels tile(3);
  tile.forward(Tensor({1, 2, 1, 1}));
  Tensor g(Shape{1, 6, 1, 1}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor gin = tile.backward(g);
  EXPECT_FLOAT_EQ(gin[0], 6.0f);
  EXPECT_FLOAT_EQ(gin[1], 15.0f);
}

TEST(TileChannelsTest, ComposesWithDepthToSpaceAsNearestUpsample) {
  // TileChannels(4) + DepthToSpace(2) must deliver each LR pixel to all four
  // of its HR positions — SESR's input residual path.
  TileChannels tile(4);
  DepthToSpace d2s(2);
  Rng rng(8);
  const Tensor x = Tensor::rand({1, 3, 4, 4}, rng);
  const Tensor up = d2s.forward(tile.forward(x));
  ASSERT_EQ(up.shape(), Shape({1, 3, 8, 8}));
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t y = 0; y < 8; ++y)
      for (int64_t xx = 0; xx < 8; ++xx)
        EXPECT_FLOAT_EQ(up.at(0, c, y, xx), x.at(0, c, y / 2, xx / 2));
}

}  // namespace
}  // namespace sesr::nn
