#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/nn.h"

namespace sesr::nn {
namespace {

TEST(FakeQuantizeTest, ErrorBoundedByHalfStep) {
  Rng rng(1);
  Tensor values = Tensor::randn({256}, rng);
  Tensor original = values;
  const float scale = fake_quantize_(values, {.bits = 8, .symmetric = true});
  ASSERT_GT(scale, 0.0f);
  EXPECT_LE(values.max_abs_diff(original), 0.5f * scale + 1e-6f);
}

TEST(FakeQuantizeTest, IdempotentOnQuantizedValues) {
  Rng rng(2);
  Tensor values = Tensor::randn({64}, rng);
  fake_quantize_(values, {.bits = 6});
  Tensor again = values;
  fake_quantize_(again, {.bits = 6});
  EXPECT_LT(again.max_abs_diff(values), 1e-6f);
}

TEST(FakeQuantizeTest, ConstantTensorKeepsValueAndPositiveScale) {
  // A constant activation (min == max != 0) is what calibration sees for a
  // saturated channel; the grid must still have a positive scale and keep
  // the value within half a step.
  Tensor values(Shape{16}, 0.37f);
  const float scale = fake_quantize_(values, {.bits = 8, .symmetric = false});
  EXPECT_GT(scale, 0.0f);
  for (float v : values.flat()) EXPECT_NEAR(v, 0.37f, 0.5f * scale + 1e-6f);
}

TEST(FakeQuantizeTest, ConstantNegativeTensorSurvives) {
  Tensor values(Shape{8}, -1.25f);
  const float scale = fake_quantize_(values, {.bits = 8, .symmetric = false});
  EXPECT_GT(scale, 0.0f);
  for (float v : values.flat()) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_NEAR(v, -1.25f, 0.5f * scale + 1e-6f);
  }
}

TEST(FakeQuantizeTest, AllZeroTensorStaysZeroWithPositiveScale) {
  for (const bool symmetric : {true, false}) {
    Tensor values(Shape{32}, 0.0f);
    const float scale = fake_quantize_(values, {.bits = 8, .symmetric = symmetric});
    EXPECT_GT(scale, 0.0f) << "symmetric=" << symmetric;
    for (float v : values.flat()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(FakeQuantizeTest, ConstantSymmetricTensorSurvives) {
  Tensor values(Shape{4}, 2.5f);
  const float scale = fake_quantize_(values, {.bits = 8, .symmetric = true});
  EXPECT_GT(scale, 0.0f);
  // 2.5 is the range bound, so it sits exactly on the top grid point.
  for (float v : values.flat()) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(FakeQuantizeTest, TinyRangeProducesFiniteGrid) {
  // min != max but separated by float dust: must not underflow to scale 0.
  Tensor values(Shape{2}, std::vector<float>{1.0f, 1.0f + 1e-7f});
  const float scale = fake_quantize_(values, {.bits = 8, .symmetric = false});
  EXPECT_GT(scale, 0.0f);
  for (float v : values.flat()) EXPECT_FALSE(std::isnan(v));
}

TEST(FakeQuantizeTest, ZeroIsExactlyRepresentable) {
  // Asymmetric grids are zero-anchored: a tensor containing 0 keeps it bit-exact
  // (padding and ReLU floors must survive quantisation).
  Tensor values(Shape{3}, std::vector<float>{0.0f, 0.31f, 0.97f});
  fake_quantize_(values, {.bits = 8, .symmetric = false});
  EXPECT_EQ(values[0], 0.0f);
}

TEST(FakeQuantizeTest, RejectsNonFiniteValues) {
  Tensor values(Shape{2}, std::vector<float>{1.0f, std::numeric_limits<float>::infinity()});
  EXPECT_THROW(fake_quantize_(values, {.bits = 8}), std::invalid_argument);
}

TEST(FakeQuantizeTest, MoreBitsLessError) {
  Rng rng(3);
  const Tensor original = Tensor::randn({512}, rng);
  Tensor q4 = original, q8 = original;
  fake_quantize_(q4, {.bits = 4});
  fake_quantize_(q8, {.bits = 8});
  EXPECT_GT(q4.max_abs_diff(original), q8.max_abs_diff(original));
}

TEST(FakeQuantizeTest, SymmetricGridIsSignBalanced) {
  // Symmetric quantisation must map x and -x to values of equal magnitude.
  Tensor values(Shape{2}, std::vector<float>{0.73f, -0.73f});
  fake_quantize_(values, {.bits = 8, .symmetric = true});
  EXPECT_FLOAT_EQ(values[0], -values[1]);
}

TEST(QuantizeWeightsTest, AllParametersQuantized) {
  Conv2d conv({.in_channels = 2, .out_channels = 3, .kernel = 3});
  Rng rng(4);
  init_he_normal(conv, rng);
  const Tensor before = conv.weight().value;
  quantize_weights_(conv, {.bits = 4});
  EXPECT_GT(conv.weight().value.max_abs_diff(before), 0.0f);
}

TEST(QuantizedInferenceTest, Int8OutputStaysCloseToFloat) {
  auto body = std::make_unique<Sequential>("body");
  body->add<Conv2d>(Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3});
  body->add<ReLU>();
  body->add<Conv2d>(Conv2dOptions{.in_channels = 8, .out_channels = 3, .kernel = 3});
  Rng rng(5);
  init_he_normal(*body, rng);

  // Reference float output.
  const Tensor x = Tensor::rand({1, 3, 12, 12}, rng);
  const Tensor y_float = body->forward(x);

  QuantizedInference quantized(std::move(body));
  const Tensor y_int8 = quantized.forward(x);
  ASSERT_EQ(y_int8.shape(), y_float.shape());
  // int8 keeps per-element error well under typical activation magnitudes.
  const float range = std::max(1.0f, y_float.max() - y_float.min());
  EXPECT_LT(y_int8.max_abs_diff(y_float) / range, 0.05f);
}

TEST(QuantizedInferenceTest, SharesBodyParameters) {
  auto body = std::make_unique<Conv2d>(Conv2dOptions{.in_channels = 1, .out_channels = 1,
                                                     .kernel = 3});
  Conv2d* raw = body.get();
  QuantizedInference quantized(std::move(body));
  EXPECT_EQ(quantized.parameters().size(), raw->parameters().size());
  EXPECT_EQ(quantized.trace({1, 1, 8, 8}, nullptr), Shape({1, 1, 8, 8}));
}

TEST(QuantizedInferenceTest, RejectsNullBody) {
  EXPECT_THROW(QuantizedInference(nullptr), std::invalid_argument);
}

TEST(FakeQuantizeTest, RejectsInvalidBits) {
  Tensor t({4});
  EXPECT_THROW(fake_quantize_(t, {.bits = 1}), std::invalid_argument);
  EXPECT_THROW(fake_quantize_(t, {.bits = 17}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nn
