#include <gtest/gtest.h>

#include "nn/depthwise_conv2d.h"

namespace sesr::nn {
namespace {

TEST(DepthwiseConv2dTest, ChannelsDoNotMix) {
  DepthwiseConv2d dw({.channels = 2, .kernel = 3, .bias = false});
  // Channel 0: identity; channel 1: zero kernel.
  dw.weight().value.fill(0.0f);
  dw.weight().value[4] = 1.0f;
  Rng rng(1);
  const Tensor x = Tensor::rand({1, 2, 5, 5}, rng);
  const Tensor y = dw.forward(x);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-6f);       // channel 0 preserved
    EXPECT_FLOAT_EQ(y[25 + i], 0.0f);     // channel 1 zeroed
  }
}

TEST(DepthwiseConv2dTest, StrideGeometry) {
  DepthwiseConv2d dw({.channels = 4, .kernel = 3, .stride = 2});
  EXPECT_EQ(dw.trace({1, 4, 32, 32}, nullptr), Shape({1, 4, 16, 16}));
  EXPECT_EQ(dw.trace({1, 4, 33, 33}, nullptr), Shape({1, 4, 17, 17}));
}

TEST(DepthwiseConv2dTest, TraceMacsScaleWithChannelsNotSquared) {
  DepthwiseConv2d dw({.channels = 8, .kernel = 3});
  std::vector<LayerInfo> infos;
  dw.trace({1, 8, 10, 10}, &infos);
  EXPECT_EQ(infos[0].macs, 10LL * 10 * 8 * 9);  // no in_c * out_c product
  EXPECT_EQ(infos[0].kind, LayerKind::kDepthwiseConv2d);
}

TEST(DepthwiseConv2dTest, BiasPerChannel) {
  DepthwiseConv2d dw({.channels = 2, .kernel = 1, .padding = 0});
  dw.weight().value.fill(0.0f);
  dw.bias().value[0] = 1.0f;
  dw.bias().value[1] = 2.0f;
  const Tensor y = dw.forward(Tensor({1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[4], 2.0f);
}

TEST(DepthwiseConv2dTest, RejectsWrongChannels) {
  DepthwiseConv2d dw({.channels = 3, .kernel = 3});
  EXPECT_THROW(dw.trace({1, 4, 8, 8}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nn
