#include <gtest/gtest.h>

#include "nn/pooling.h"

namespace sesr::nn {
namespace {

TEST(MaxPool2dTest, PicksBlockMaxima) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 4}, std::vector<float>{1, 5, 2, 0,
                                                 3, 4, -1, 7});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 9, 2, 3});
  pool.forward(x);
  const Tensor g = pool.backward(Tensor(Shape{1, 1, 1, 1}, 5.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 5.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(AvgPool2dTest, AveragesBlocks) {
  AvgPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool2dTest, PaddingCountsTowardDivisor) {
  // 3x3 kernel, stride 1, pad 1 at a corner: 4 valid values / 9.
  AvgPool2d pool(3, 1, 1);
  Tensor x(Shape{1, 1, 2, 2}, 9.0f);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);  // 4 * 9 / 9
}

TEST(GlobalAvgPoolTest, ReducesToChannelMeans) {
  GlobalAvgPool gap;
  Tensor x(Shape{1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = gap.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(GlobalAvgPoolTest, WorksAtAnyResolution) {
  // The property the defense relies on: one classifier, two input sizes.
  GlobalAvgPool gap;
  EXPECT_EQ(gap.trace({1, 8, 32, 32}, nullptr), Shape({1, 8}));
  EXPECT_EQ(gap.trace({1, 8, 64, 64}, nullptr), Shape({1, 8}));
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  GlobalAvgPool gap;
  gap.forward(Tensor({1, 1, 2, 2}));
  const Tensor g = gap.backward(Tensor(Shape{1, 1}, 8.0f));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 2.0f);
}

TEST(PoolingTest, InvalidGeometryRejected) {
  EXPECT_THROW(MaxPool2d(0, 1), std::invalid_argument);
  EXPECT_THROW(AvgPool2d(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nn
