#include <gtest/gtest.h>

#include "nn/nn.h"

namespace sesr::nn {
namespace {

TEST(SequentialTest, ChainsChildrenInOrder) {
  Sequential seq("test");
  seq.add<ReLU>();
  auto& conv = seq.add<Conv2d>(Conv2dOptions{.in_channels = 1, .out_channels = 1, .kernel = 1,
                                             .padding = 0});
  conv.weight().value.fill(2.0f);
  const Tensor y = seq.forward(Tensor(Shape{1, 1, 1, 2}, std::vector<float>{-3, 5}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);   // relu then x2
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(SequentialTest, CollectsParametersFromChildren) {
  Sequential seq;
  seq.add<Conv2d>(Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3});
  seq.add<PReLU>(2);
  seq.add<Conv2d>(Conv2dOptions{.in_channels = 2, .out_channels = 1, .kernel = 3});
  EXPECT_EQ(seq.parameters().size(), 5u);  // 2x(weight+bias) + prelu slope
}

TEST(ResidualTest, IdentityShortcutAdds) {
  auto body = std::make_unique<Sequential>("b");
  body->add<ReLU>();
  Residual res(std::move(body));
  const Tensor y = res.forward(Tensor(Shape{1, 1, 1, 2}, std::vector<float>{-2, 3}));
  EXPECT_FLOAT_EQ(y[0], -2.0f);  // relu(-2) + (-2)
  EXPECT_FLOAT_EQ(y[1], 6.0f);   // relu(3) + 3
}

TEST(ResidualTest, ScaleAppliesToBodyOnly) {
  auto body = std::make_unique<Sequential>("b");
  body->add<ReLU>();
  Residual res(std::move(body), nullptr, 0.1f);
  const Tensor y = res.forward(Tensor(Shape{1, 1, 1, 1}, 10.0f));
  EXPECT_FLOAT_EQ(y[0], 11.0f);  // 0.1 * 10 + 10
}

TEST(ResidualTest, TraceRejectsShapeMismatch) {
  auto body = std::make_unique<Sequential>("b");
  body->add<Conv2d>(Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3});
  Residual res(std::move(body));  // identity shortcut cannot match 2 -> 3
  EXPECT_THROW(res.trace({1, 2, 4, 4}, nullptr), std::invalid_argument);
}

TEST(ConcatTest, StacksChannelsInBranchOrder) {
  Concat cat;
  auto& c1 = cat.add_branch<Conv2d>(Conv2dOptions{.in_channels = 1, .out_channels = 1,
                                                  .kernel = 1, .padding = 0, .bias = false});
  auto& c2 = cat.add_branch<Conv2d>(Conv2dOptions{.in_channels = 1, .out_channels = 2,
                                                  .kernel = 1, .padding = 0, .bias = false});
  c1.weight().value.fill(1.0f);
  c2.weight().value.fill(2.0f);
  const Tensor y = cat.forward(Tensor(Shape{1, 1, 1, 1}, 3.0f));
  ASSERT_EQ(y.shape(), Shape({1, 3, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
}

TEST(ConcatTest, BackwardSplitsByChannel) {
  Concat cat;
  cat.add_branch<ReLU>();
  cat.add_branch<ReLU>();
  const Tensor x(Shape{1, 1, 1, 1}, 1.0f);
  cat.forward(x);
  const Tensor gin = cat.backward(Tensor(Shape{1, 2, 1, 1}, std::vector<float>{3, 4}));
  EXPECT_FLOAT_EQ(gin[0], 7.0f);  // both branches feed the same input
}

TEST(ConcatTest, EmptyConcatThrows) {
  Concat cat;
  EXPECT_THROW(cat.forward(Tensor({1, 1, 1, 1})), std::logic_error);
  EXPECT_THROW(cat.trace({1, 1, 1, 1}, nullptr), std::logic_error);
}

TEST(ModuleTest, LoadParametersFromCopiesValues) {
  Conv2d a({.in_channels = 1, .out_channels = 1, .kernel = 3});
  Conv2d b({.in_channels = 1, .out_channels = 1, .kernel = 3});
  Rng rng(3);
  for (float& v : a.weight().value.flat()) v = rng.normal();
  b.load_parameters_from(a);
  EXPECT_EQ(b.weight().value.max_abs_diff(a.weight().value), 0.0f);

  Conv2d c({.in_channels = 2, .out_channels = 1, .kernel = 3});
  EXPECT_THROW(c.load_parameters_from(a), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nn
