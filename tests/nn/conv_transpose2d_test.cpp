#include <gtest/gtest.h>

#include "nn/conv_transpose2d.h"

namespace sesr::nn {
namespace {

TEST(ConvTranspose2dTest, FsrcnnGeometryDoublesExtent) {
  // 9x9, stride 2, pad 4, output_padding 1: the FSRCNN upsampler.
  ConvTranspose2d deconv({.in_channels = 56, .out_channels = 3, .kernel = 9, .stride = 2,
                          .padding = 4, .output_padding = 1});
  EXPECT_EQ(deconv.trace({1, 56, 299, 299}, nullptr), Shape({1, 3, 598, 598}));
  EXPECT_EQ(deconv.trace({1, 56, 16, 16}, nullptr), Shape({1, 3, 32, 32}));
}

TEST(ConvTranspose2dTest, SinglePixelSpreadsKernel) {
  // One input pixel with a no-pad stride-1 deconv paints the kernel.
  ConvTranspose2d deconv({.in_channels = 1, .out_channels = 1, .kernel = 3, .stride = 1,
                          .padding = 0, .output_padding = 0, .bias = false});
  for (int64_t i = 0; i < 9; ++i) deconv.weight().value[i] = static_cast<float>(i);
  Tensor x({1, 1, 1, 1}, 2.0f);
  const Tensor y = deconv.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 3, 3}));
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], 2.0f * static_cast<float>(i));
}

TEST(ConvTranspose2dTest, StrideTwoInterleavesContributions) {
  // 2x2 kernel of ones, stride 2, no pad: each input pixel owns a 2x2 block.
  ConvTranspose2d deconv({.in_channels = 1, .out_channels = 1, .kernel = 2, .stride = 2,
                          .padding = 0, .output_padding = 0, .bias = false});
  deconv.weight().value.fill(1.0f);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = deconv.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 2), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 4.0f);
}

TEST(ConvTranspose2dTest, TraceUsesGatherFormMacs) {
  ConvTranspose2d deconv({.in_channels = 56, .out_channels = 3, .kernel = 9, .stride = 2,
                          .padding = 4, .output_padding = 1});
  std::vector<LayerInfo> infos;
  deconv.trace({1, 56, 299, 299}, &infos);
  ASSERT_EQ(infos.size(), 1u);
  // Gather-form: k^2 * Cin * Cout * H_out * W_out (Table I convention).
  EXPECT_EQ(infos[0].macs, 598LL * 598 * 3 * 56 * 9 * 9);
}

TEST(ConvTranspose2dTest, BiasFillsOutput) {
  ConvTranspose2d deconv({.in_channels = 1, .out_channels = 1, .kernel = 3, .stride = 1,
                          .padding = 1, .output_padding = 0});
  deconv.bias().value[0] = 7.0f;
  const Tensor y = deconv.forward(Tensor({1, 1, 4, 4}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 7.0f);
}

TEST(ConvTranspose2dTest, InvalidOptionsRejected) {
  EXPECT_THROW(ConvTranspose2d({.in_channels = 0, .out_channels = 1}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nn
