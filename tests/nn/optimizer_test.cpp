#include <gtest/gtest.h>

#include "nn/nn.h"

namespace sesr::nn {
namespace {

// Minimise f(w) = sum(w^2) with gradients fed manually; any sane optimiser
// must reach ~0 from any start.
class QuadraticFixture {
 public:
  QuadraticFixture() : param_("w", Tensor(Shape{4}, std::vector<float>{1, -2, 3, -4})) {}

  void fill_grad() {
    for (int64_t i = 0; i < 4; ++i) param_.grad[i] = 2.0f * param_.value[i];
  }

  float loss() const {
    float acc = 0.0f;
    for (int64_t i = 0; i < 4; ++i) acc += param_.value[i] * param_.value[i];
    return acc;
  }

  Parameter param_;
};

TEST(OptimizerTest, SgdDescendsQuadratic) {
  QuadraticFixture fx;
  SGD opt({&fx.param_}, 0.1f, 0.0f);
  const float initial = fx.loss();
  for (int i = 0; i < 50; ++i) {
    fx.param_.zero_grad();
    fx.fill_grad();
    opt.step();
  }
  EXPECT_LT(fx.loss(), 1e-4f * initial);
}

TEST(OptimizerTest, SgdMomentumAcceleratesButConverges) {
  QuadraticFixture fx;
  SGD opt({&fx.param_}, 0.05f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    fx.param_.zero_grad();
    fx.fill_grad();
    opt.step();
  }
  EXPECT_LT(fx.loss(), 1e-4f);
}

TEST(OptimizerTest, SgdWeightDecayShrinksWeightsWithZeroGrad) {
  Parameter p("w", Tensor(Shape{1}, 1.0f));
  SGD opt({&p}, 0.1f, 0.0f, 0.5f);
  p.zero_grad();
  opt.step();  // w -= lr * (0 + wd * w) = 1 - 0.1 * 0.5
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  QuadraticFixture fx;
  Adam opt({&fx.param_}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    fx.param_.zero_grad();
    fx.fill_grad();
    opt.step();
  }
  EXPECT_LT(fx.loss(), 1e-4f);
}

TEST(OptimizerTest, AdamFirstStepIsLearningRateSized) {
  // With bias correction, |first update| ~ lr regardless of gradient scale.
  Parameter p("w", Tensor(Shape{1}, 0.0f));
  p.grad[0] = 1e-3f;
  Adam opt({&p}, 0.01f);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(OptimizerTest, LearningRateIsMutable) {
  QuadraticFixture fx;
  SGD opt({&fx.param_}, 1.0f, 0.0f);
  opt.set_learning_rate(0.0f);
  fx.fill_grad();
  const Tensor before = fx.param_.value;
  opt.step();
  EXPECT_EQ(fx.param_.value.max_abs_diff(before), 0.0f);
}

}  // namespace
}  // namespace sesr::nn
