#include <gtest/gtest.h>

#include "nn/conv2d.h"

namespace sesr::nn {
namespace {

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Conv2d conv({.in_channels = 1, .out_channels = 1, .kernel = 3, .bias = true});
  conv.weight().value.fill(0.0f);
  conv.weight().value[4] = 1.0f;  // centre tap
  Rng rng(3);
  const Tensor x = Tensor::rand({1, 1, 5, 5}, rng);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_LT(y.max_abs_diff(x), 1e-6f);
}

TEST(Conv2dTest, KnownAveragingKernel) {
  Conv2d conv({.in_channels = 1, .out_channels = 1, .kernel = 3, .padding = 0});
  conv.weight().value.fill(1.0f / 9.0f);
  Tensor x({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 1.0f, 1e-6f);
}

TEST(Conv2dTest, BiasIsAdded) {
  Conv2d conv({.in_channels = 1, .out_channels = 2, .kernel = 1, .padding = 0});
  conv.bias().value[0] = 0.5f;
  conv.bias().value[1] = -1.5f;
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_FLOAT_EQ(y[4], -1.5f);
}

TEST(Conv2dTest, StrideHalvesSpatialExtent) {
  Conv2d conv({.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 2});
  const Shape out = conv.trace({2, 3, 32, 32}, nullptr);
  EXPECT_EQ(out, Shape({2, 4, 16, 16}));
}

TEST(Conv2dTest, SamePaddingKeepsExtentOddKernels) {
  for (int64_t k : {1, 3, 5, 7, 9}) {
    Conv2d conv({.in_channels = 1, .out_channels = 1, .kernel = k});
    EXPECT_EQ(conv.trace({1, 1, 17, 17}, nullptr), Shape({1, 1, 17, 17})) << "k=" << k;
  }
}

TEST(Conv2dTest, TraceReportsMacsAndParams) {
  Conv2d conv({.in_channels = 3, .out_channels = 16, .kernel = 5});
  std::vector<LayerInfo> infos;
  conv.trace({1, 3, 299, 299}, &infos);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].macs, 299LL * 299 * 16 * 3 * 5 * 5);
  EXPECT_EQ(infos[0].params, 5LL * 5 * 3 * 16 + 16);
  EXPECT_EQ(infos[0].kind, LayerKind::kConv2d);
}

TEST(Conv2dTest, TraceRejectsWrongChannelCount) {
  Conv2d conv({.in_channels = 3, .out_channels = 4, .kernel = 3});
  EXPECT_THROW(conv.trace({1, 4, 8, 8}, nullptr), std::invalid_argument);
}

TEST(Conv2dTest, InvalidOptionsRejected) {
  EXPECT_THROW(Conv2d({.in_channels = 0, .out_channels = 4, .kernel = 3}), std::invalid_argument);
  EXPECT_THROW(Conv2d({.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 0}),
               std::invalid_argument);
}

TEST(Conv2dTest, NoBiasHasSingleParameter) {
  Conv2d conv({.in_channels = 2, .out_channels = 2, .kernel = 3, .bias = false});
  EXPECT_EQ(conv.parameters().size(), 1u);
  EXPECT_EQ(conv.num_params(), 2LL * 2 * 3 * 3);
}

TEST(Conv2dTest, BatchSamplesAreIndependent) {
  Conv2d conv({.in_channels = 2, .out_channels = 3, .kernel = 3});
  Rng rng(9);
  for (float& v : conv.weight().value.flat()) v = rng.normal();
  const Tensor x0 = Tensor::randn({1, 2, 6, 6}, rng);
  Tensor x1 = Tensor::randn({1, 2, 6, 6}, rng);

  Tensor both({2, 2, 6, 6});
  std::copy(x0.data(), x0.data() + x0.numel(), both.data());
  std::copy(x1.data(), x1.data() + x1.numel(), both.data() + x0.numel());

  const Tensor y_both = conv.forward(both);
  const Tensor y0 = conv.forward(x0);
  for (int64_t i = 0; i < y0.numel(); ++i) EXPECT_NEAR(y_both[i], y0[i], 1e-5f);
}

}  // namespace
}  // namespace sesr::nn
