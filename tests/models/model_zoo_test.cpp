#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "models/model_zoo.h"

namespace sesr::models {
namespace {

TEST(ModelZooTest, ContainsAllTableOneRows) {
  const auto& zoo = sr_model_zoo();
  ASSERT_EQ(zoo.size(), 7u);
  EXPECT_EQ(zoo[0].label, "FSRCNN");
  EXPECT_EQ(zoo[1].label, "EDSR-base");
  EXPECT_EQ(zoo[2].label, "EDSR");
  EXPECT_EQ(zoo[3].label, "SESR-M2");
  EXPECT_EQ(zoo[6].label, "SESR-XL");
}

TEST(ModelZooTest, LookupByLabel) {
  EXPECT_EQ(sr_model("SESR-M5").label, "SESR-M5");
  EXPECT_THROW(sr_model("SESR-M7"), std::out_of_range);
}

TEST(ModelZooTest, PaperScaleMacsMatchTableOneWithinOnePercentForTinyNets) {
  // The SESR and FSRCNN rows are exactly reproducible; EDSR rows differ by
  // the paper's body-only accounting (checked separately in edsr_test).
  for (const char* label : {"FSRCNN", "SESR-M2", "SESR-M3", "SESR-M5", "SESR-XL"}) {
    const auto& spec = sr_model(label);
    auto net = spec.make_paper_scale();
    const auto cost = hw::summarize(*net, {1, 3, 299, 299});
    ASSERT_TRUE(spec.reference.has_value());
    EXPECT_NEAR(static_cast<double>(cost.macs) / spec.reference->macs, 1.0, 0.01) << label;
  }
}

TEST(ModelZooTest, EveryModelBuildsAtBothScales) {
  for (const auto& spec : sr_model_zoo()) {
    auto paper = spec.make_paper_scale();
    auto repo = spec.make_repo_scale();
    ASSERT_NE(paper, nullptr) << spec.label;
    ASSERT_NE(repo, nullptr) << spec.label;
    if (!spec.trainable_at_repo_scale) {
      EXPECT_LT(repo->num_params(), paper->num_params()) << spec.label;
    }
  }
}

TEST(ModelZooTest, MacOrderingMatchesPaper) {
  // SESR-M2 < SESR-M3 < SESR-M5 < FSRCNN < SESR-XL < EDSR-base < EDSR.
  std::vector<int64_t> macs;
  for (const char* label :
       {"SESR-M2", "SESR-M3", "SESR-M5", "FSRCNN", "SESR-XL", "EDSR-base", "EDSR"}) {
    auto net = sr_model(label).make_paper_scale();
    macs.push_back(hw::summarize(*net, {1, 3, 64, 64}).macs);
  }
  for (size_t i = 1; i < macs.size(); ++i) EXPECT_LT(macs[i - 1], macs[i]) << "position " << i;
}

TEST(ModelZooTest, ClassifierZooHasThreeFamilies) {
  const auto& zoo = classifier_zoo();
  ASSERT_EQ(zoo.size(), 3u);
  for (const auto& spec : zoo) {
    auto clf = spec.make(10);
    EXPECT_EQ(clf->num_classes(), 10) << spec.label;
  }
}

}  // namespace
}  // namespace sesr::models
