#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "models/fsrcnn.h"
#include "nn/gradcheck.h"

namespace sesr::models {
namespace {

TEST(FsrcnnTest, UpscalesByTwo) {
  Fsrcnn net;
  Rng rng(1);
  net.init(rng);
  const Tensor y = net.forward(Tensor::rand({2, 3, 8, 8}, rng));
  EXPECT_EQ(y.shape(), Shape({2, 3, 16, 16}));
}

TEST(FsrcnnTest, PaperScaleCostsMatchTableOne) {
  Fsrcnn net(FsrcnnConfig::paper());
  const auto cost = hw::summarize(net, {1, 3, 299, 299});
  // Table I: 24.336K params, 5.82B MACs (RGB, 299 -> 598). Our param count
  // additionally includes PReLU slopes; allow 2%.
  EXPECT_NEAR(static_cast<double>(cost.params) / 24336.0, 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(cost.macs) / 5.82e9, 1.0, 0.01);
}

TEST(FsrcnnTest, InputGradientCorrect) {
  FsrcnnConfig small;
  small.d = 8;
  small.s = 4;
  small.m = 2;
  Fsrcnn net(small);
  Rng rng(2);
  net.init(rng);
  const nn::GradCheckResult r = nn::check_input_gradient(net, Tensor::randn({1, 3, 6, 6}, rng), {.epsilon = 1e-3f, .tolerance = 0.10f, .max_coords = 16, .aggregate_l2 = true});
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(FsrcnnTest, ConfigurableMappingDepth) {
  FsrcnnConfig cfg;
  cfg.m = 6;
  Fsrcnn net(cfg);
  int conv3x3 = 0;
  for (const auto& info : net.layers({1, 3, 8, 8}))
    if (info.kind == nn::LayerKind::kConv2d && info.kernel_h == 3) ++conv3x3;
  EXPECT_EQ(conv3x3, 6);
}

}  // namespace
}  // namespace sesr::models
