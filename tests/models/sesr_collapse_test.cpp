// Fig. 2 of the paper as executable property tests: the training-time
// overparameterised network and its analytically collapsed inference network
// compute the same function.
#include <gtest/gtest.h>

#include "models/sesr.h"

namespace sesr::models {
namespace {

TEST(CollapseTest, SingleBlockWithResidualMatches) {
  CollapsibleLinearBlock block(4, 4, 32, 3);
  Rng rng(11);
  for (auto* p : block.parameters())
    for (float& v : p->value.flat()) v = rng.normal(0.0f, 0.4f);

  auto collapsed = block.collapse();
  const Tensor x = Tensor::randn({2, 4, 7, 7}, rng);
  const Tensor a = block.forward(x);
  const Tensor b = collapsed->forward(x);
  EXPECT_LT(a.max_abs_diff(b), 1e-4f);
}

TEST(CollapseTest, SingleBlockWithoutResidualMatches) {
  CollapsibleLinearBlock block(3, 8, 64, 5);  // 3 != 8: no short residual
  EXPECT_FALSE(block.has_short_residual());
  Rng rng(12);
  for (auto* p : block.parameters())
    for (float& v : p->value.flat()) v = rng.normal(0.0f, 0.3f);

  auto collapsed = block.collapse();
  const Tensor x = Tensor::randn({1, 3, 9, 9}, rng);
  EXPECT_LT(block.forward(x).max_abs_diff(collapsed->forward(x)), 1e-4f);
}

TEST(CollapseTest, CollapsedBiasFoldsBothStages) {
  CollapsibleLinearBlock block(1, 1, 4, 1);
  // Zero weights: output = W2 b1 + b2 everywhere.
  for (auto* p : block.parameters()) p->value.fill(0.0f);
  block.parameters()[1]->value.fill(2.0f);  // expand bias b1
  block.parameters()[2]->value.fill(3.0f);  // project weight W2
  block.parameters()[3]->value.fill(1.0f);  // project bias b2
  auto collapsed = block.collapse();
  const Tensor y = collapsed->forward(Tensor({1, 1, 2, 2}));
  // centre tap of residual contributes input (=0); bias = 4 * 3 * 2 + 1 = 25.
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 25.0f);
}

struct CollapseCase {
  const char* name;
  SesrConfig cfg;
};

class FullNetworkCollapse : public ::testing::TestWithParam<CollapseCase> {};

TEST_P(FullNetworkCollapse, TrainAndInferenceFormsAgree) {
  Sesr train(GetParam().cfg, Sesr::Form::kTraining);
  Rng rng(13);
  train.init(rng);

  auto inference = Sesr::collapse_from(train);
  const Tensor x = Tensor::rand({2, 3, 8, 8}, rng);
  const Tensor a = train.forward(x);
  const Tensor b = inference->forward(x);
  // The collapse reassociates float sums over the expansion dimension; allow
  // accumulated round-off proportional to the activation magnitude, but
  // nothing structural.
  const float scale = std::max(1.0f, std::max(std::abs(a.min()), a.max()));
  EXPECT_LT(a.max_abs_diff(b), 2e-3f * scale) << GetParam().name;
}

TEST_P(FullNetworkCollapse, CollapseReducesParamsByOrdersOfMagnitude) {
  // M-variants (f = 16, p = 256) collapse ~20x; XL (f = 32) ~8x.
  Sesr train(GetParam().cfg, Sesr::Form::kTraining);
  auto inference = Sesr::collapse_from(train);
  EXPECT_GT(train.num_params(), 7 * inference->num_params()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Configs, FullNetworkCollapse,
                         ::testing::Values(CollapseCase{"m2", SesrConfig::m2()},
                                           CollapseCase{"m3", SesrConfig::m3()},
                                           CollapseCase{"m5", SesrConfig::m5()},
                                           CollapseCase{"xl", SesrConfig::xl()}),
                         [](const ::testing::TestParamInfo<CollapseCase>& info) {
                           return info.param.name;
                         });

TEST(CollapseTest, CollapseFromRejectsInferenceForm) {
  Sesr infer(SesrConfig::m2(), Sesr::Form::kInference);
  EXPECT_THROW(Sesr::collapse_from(infer), std::invalid_argument);
}

TEST(CollapseTest, PreluSlopesSurviveCollapse) {
  Sesr train(SesrConfig::m2(), Sesr::Form::kTraining);
  Rng rng(14);
  train.init(rng);
  // Give the slopes a recognisable value.
  for (auto* p : train.parameters())
    if (p->name == "prelu_slope") p->value.fill(0.123f);
  auto inference = Sesr::collapse_from(train);
  int checked = 0;
  for (auto* p : inference->parameters())
    if (p->name == "prelu_slope") {
      for (float v : p->value.flat()) EXPECT_FLOAT_EQ(v, 0.123f);
      ++checked;
    }
  EXPECT_EQ(checked, 3);  // first stage + two inner stages for M2
}

}  // namespace
}  // namespace sesr::models
