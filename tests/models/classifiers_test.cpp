#include <gtest/gtest.h>

#include <memory>

#include "hw/cost_model.h"
#include "models/classifiers.h"
#include "nn/gradcheck.h"

namespace sesr::models {
namespace {

struct ClassifierCase {
  const char* name;
  std::function<std::unique_ptr<Classifier>()> make;
};

class ClassifierSweep : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(ClassifierSweep, ProducesLogitsForTenClasses) {
  auto clf = GetParam().make();
  Rng rng(1);
  clf->init(rng);
  const Tensor y = clf->forward(Tensor::rand({2, 3, 32, 32}, rng));
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST_P(ClassifierSweep, AcceptsBothRawAndUpscaledResolutions) {
  // The defense property: the same weights classify 32x32 (attack crafting)
  // and 64x64 (defended, x2-upscaled) inputs.
  auto clf = GetParam().make();
  Rng rng(2);
  clf->init(rng);
  EXPECT_EQ(clf->forward(Tensor::rand({1, 3, 32, 32}, rng)).shape(), Shape({1, 10}));
  EXPECT_EQ(clf->forward(Tensor::rand({1, 3, 64, 64}, rng)).shape(), Shape({1, 10}));
}

TEST_P(ClassifierSweep, TraceAgreesWithForward) {
  auto clf = GetParam().make();
  Rng rng(3);
  clf->init(rng);
  EXPECT_EQ(clf->trace({1, 3, 32, 32}, nullptr), Shape({1, 10}));
  std::vector<nn::LayerInfo> infos;
  clf->trace({1, 3, 32, 32}, &infos);
  EXPECT_GT(infos.size(), 5u);
}

TEST_P(ClassifierSweep, InputGradientCorrect) {
  auto clf = GetParam().make();
  Rng rng(4);
  clf->init(rng);
  const nn::GradCheckResult r =
      nn::check_input_gradient(*clf, Tensor::rand({1, 3, 16, 16}, rng), {.epsilon = 1e-3f, .tolerance = 0.10f, .max_coords = 16, .aggregate_l2 = true});
  EXPECT_TRUE(r.passed) << GetParam().name << ": " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(
    All, ClassifierSweep,
    ::testing::Values(
        ClassifierCase{"mobilenet", [] { return std::make_unique<TinyMobileNetV2>(10); }},
        ClassifierCase{"resnet", [] { return std::make_unique<TinyResNet>(10); }},
        ClassifierCase{"inception", [] { return std::make_unique<TinyInception>(10); }}),
    [](const ::testing::TestParamInfo<ClassifierCase>& info) { return info.param.name; });

TEST(MobileNetV2PaperTest, MatchesPublishedCostEnvelope) {
  MobileNetV2Paper mv2(1000);
  const auto c224 = hw::summarize(mv2, {1, 3, 224, 224});
  // Published: ~3.4M params, ~300M MACs at 224x224.
  EXPECT_NEAR(static_cast<double>(c224.params) / 3.4e6, 1.0, 0.1);
  EXPECT_NEAR(static_cast<double>(c224.macs) / 300e6, 1.0, 0.1);

  // The paper's Table IV premise: ~2.1B MACs at 598x598.
  const auto c598 = hw::summarize(mv2, {1, 3, 598, 598});
  EXPECT_NEAR(static_cast<double>(c598.macs) / 2.1e9, 1.0, 0.1);
}

TEST(ClassifiersTest, CompactModelIsSmallest) {
  TinyMobileNetV2 mobile(10);
  TinyResNet resnet(10);
  EXPECT_LT(mobile.num_params(), resnet.num_params());
}

}  // namespace
}  // namespace sesr::models
