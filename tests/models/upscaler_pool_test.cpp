// Session-pool robustness and warmup: the serving path must never leak
// sessions — not under concurrency, not under injected kernel faults, not
// under SESR_SESSION_CAP — and after warmup() it must never compile a plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "models/models.h"
#include "nn/nn.h"
#include "runtime/runtime.h"
#include "tests/support/fault_injection.h"

namespace sesr::models {
namespace {

using sesr::testsupport::FaultingAffine;
using sesr::testsupport::ScopedEnv;

TEST(UpscalerPoolTest, ConcurrentFaultingServingNeverLeaksSessions) {
  ScopedEnv cap("SESR_SESSION_CAP", "2");
  auto layer = std::make_shared<FaultingAffine>();
  layer->fault_period = 7;  // roughly one in seven runs throws
  NetworkUpscaler upscaler("faulting", layer);
  ASSERT_TRUE(layer->supports_compiled_inference());

  const Shape shape{1, 3, 8, 8};
  constexpr int kThreads = 8;
  constexpr int kIterations = 60;
  std::atomic<int64_t> faults{0};
  std::atomic<int64_t> served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(static_cast<uint64_t>(100 + t));
      const Tensor image = Tensor::rand(shape, thread_rng);
      for (int i = 0; i < kIterations; ++i) {
        try {
          const Tensor out = upscaler.upscale(image);
          ASSERT_TRUE(out.shape() == shape);  // shape-preserving layer
          served.fetch_add(1);
        } catch (const std::runtime_error&) {
          faults.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_GT(faults.load(), 0) << "fault injection never fired";
  EXPECT_GT(served.load(), 0);
  // Quiescent: every checkout was returned (faulted ones as nullptr) ...
  EXPECT_EQ(upscaler.live_session_count(shape), 0);
  // ... and idle retention respects SESR_SESSION_CAP even though eight
  // threads were once in flight.
  EXPECT_LE(upscaler.idle_session_count(shape), 2);
}

TEST(UpscalerPoolTest, FailedPlanCompilationUnwindsTheCheckout) {
  auto layer = std::make_shared<FaultingAffine>();
  NetworkUpscaler upscaler("faulting", layer);

  // A rank-3 input cannot trace through the NCHW-only layer: compilation
  // throws inside the checkout. The failed checkout must not strand a live
  // count (which would permanently inflate the pool's retention high-water).
  const Shape bad{5, 8, 8};
  Rng in_rng(14);
  const Tensor image = Tensor::rand(bad, in_rng);
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(static_cast<void>(upscaler.upscale(image)), std::invalid_argument);
  EXPECT_EQ(upscaler.live_session_count(bad), 0);
  EXPECT_EQ(upscaler.idle_session_count(bad), 0);
}

TEST(UpscalerPoolTest, WarmupPrecompilesAndPrefills) {
  auto network = std::make_shared<Sesr>(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(17);
  network->init_weights(rng);
  NetworkUpscaler upscaler("SESR-M2", network);

  const Shape shape{2, 3, 8, 8};
  upscaler.warmup(shape, 3);
  EXPECT_EQ(upscaler.plan_compile_count(), 1);
  EXPECT_EQ(upscaler.idle_session_count(shape), 3);
  EXPECT_EQ(upscaler.live_session_count(shape), 0);
  upscaler.warmup(shape, 3);  // idempotent: already warm
  EXPECT_EQ(upscaler.plan_compile_count(), 1);
  EXPECT_EQ(upscaler.idle_session_count(shape), 3);

  // The serving path after warmup: concurrent upscales compile nothing.
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(static_cast<uint64_t>(40 + t));
      const Tensor image = Tensor::rand(shape, thread_rng);
      for (int i = 0; i < 10; ++i) {
        const Tensor out = upscaler.upscale(image);
        ASSERT_TRUE(out.shape() == Shape({2, 3, 16, 16}));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(upscaler.plan_compile_count(), 1);
  EXPECT_EQ(upscaler.live_session_count(shape), 0);
  EXPECT_LE(upscaler.idle_session_count(shape), 3);
}

TEST(UpscalerPoolTest, WarmupRespectsSessionCap) {
  ScopedEnv cap("SESR_SESSION_CAP", "1");
  auto network = std::make_shared<Sesr>(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(19);
  network->init_weights(rng);
  NetworkUpscaler upscaler("SESR-M2", network);
  const Shape shape{1, 3, 8, 8};
  upscaler.warmup(shape, 5);
  EXPECT_EQ(upscaler.plan_compile_count(), 1);  // the plan still precompiles
  EXPECT_LE(upscaler.idle_session_count(shape), 1);
}

TEST(UpscalerPoolTest, WarmupSurvivesPrecisionSwitch) {
  auto network = std::make_shared<Sesr>(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(23);
  network->init_weights(rng);
  NetworkUpscaler upscaler("SESR-M2", network);
  const Shape shape{1, 3, 8, 8};

  std::vector<Tensor> calibration;
  Rng cal_rng(24);
  for (int i = 0; i < 2; ++i) calibration.push_back(Tensor::rand(shape, cal_rng));
  upscaler.calibrate_int8(calibration);

  upscaler.warmup(shape, 2);  // warms int8 plans now
  const int64_t compiles_after_warmup = upscaler.plan_compile_count();
  EXPECT_EQ(upscaler.idle_session_count(shape), 2);
  Rng in_rng(25);
  const Tensor image = Tensor::rand(shape, in_rng);
  static_cast<void>(upscaler.upscale(image));
  EXPECT_EQ(upscaler.plan_compile_count(), compiles_after_warmup);
}

TEST(UpscalerPoolTest, BatchDispatchMatchesPerImageUpscale) {
  auto network = std::make_shared<Sesr>(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(29);
  network->init_weights(rng);
  NetworkUpscaler upscaler("SESR-M2", network);

  constexpr int64_t kBatch = 5;
  Rng in_rng(30);
  const Tensor batch = Tensor::rand({kBatch, 3, 6, 6}, in_rng);
  std::vector<Tensor> per_image(kBatch);
  upscaler.upscale_batch(batch, per_image);
  for (int64_t i = 0; i < kBatch; ++i) {
    // Row i of the batch, upscaled alone through the blocking path.
    Tensor single({1, 3, 6, 6});
    std::copy(batch.data() + i * single.numel(), batch.data() + (i + 1) * single.numel(),
              single.data());
    const Tensor reference = upscaler.upscale(single);
    ASSERT_TRUE(per_image[static_cast<size_t>(i)].shape() == reference.shape()) << i;
    EXPECT_EQ(per_image[static_cast<size_t>(i)].max_abs_diff(reference), 0.0f) << i;
  }
}

}  // namespace
}  // namespace sesr::models
