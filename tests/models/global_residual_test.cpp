#include <gtest/gtest.h>

#include "data/metrics.h"
#include "models/global_residual.h"
#include "models/fsrcnn.h"
#include "preprocess/interpolation.h"

namespace sesr::models {
namespace {

TEST(GlobalResidualTest, ZeroBodyReducesToBicubic) {
  auto body = std::make_unique<Fsrcnn>(FsrcnnConfig{.d = 8, .s = 4, .m = 1});
  for (auto* p : body->parameters()) p->value.fill(0.0f);
  GlobalResidualSr net(std::move(body), 2);

  Rng rng(1);
  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  const Tensor expected = preprocess::upscale(x, 2, preprocess::InterpolationKind::kBicubic);
  EXPECT_LT(net.forward(x).max_abs_diff(expected), 1e-6f);
}

TEST(GlobalResidualTest, FreshInitStartsNearBicubic) {
  // Fsrcnn::init_weights shrinks the deconv, so the wrapped network's output
  // must sit within a fraction of a dB of plain bicubic.
  auto body = std::make_unique<Fsrcnn>(FsrcnnConfig{.d = 8, .s = 4, .m = 1});
  GlobalResidualSr net(std::move(body), 2);
  Rng rng(2);
  net.init_weights(rng);

  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  const Tensor bicubic = preprocess::upscale(x, 2, preprocess::InterpolationKind::kBicubic);
  EXPECT_GT(data::psnr(net.forward(x), bicubic), 30.0f);
}

TEST(GlobalResidualTest, ParametersAreTheBodyParameters) {
  auto body = std::make_unique<Fsrcnn>(FsrcnnConfig{.d = 8, .s = 4, .m = 1});
  nn::Module* raw = body.get();
  GlobalResidualSr net(std::move(body), 2);
  EXPECT_EQ(net.parameters().size(), raw->parameters().size());
  EXPECT_EQ(net.num_params(), raw->num_params());
}

TEST(GlobalResidualTest, TraceAddsOneElementwiseRecord) {
  auto body = std::make_unique<Fsrcnn>(FsrcnnConfig{.d = 8, .s = 4, .m = 1});
  const size_t body_layers = body->layers({1, 3, 8, 8}).size();
  GlobalResidualSr net(std::move(body), 2);
  EXPECT_EQ(net.layers({1, 3, 8, 8}).size(), body_layers + 1);
  EXPECT_EQ(net.trace({1, 3, 8, 8}, nullptr), Shape({1, 3, 16, 16}));
}

TEST(GlobalResidualTest, BodyGradientsFlow) {
  auto body = std::make_unique<Fsrcnn>(FsrcnnConfig{.d = 8, .s = 4, .m = 1});
  GlobalResidualSr net(std::move(body), 2);
  Rng rng(3);
  net.init_weights(rng);
  net.zero_grad();
  const Tensor x = Tensor::rand({1, 3, 8, 8}, rng);
  const Tensor y = net.forward(x);
  net.backward(Tensor(y.shape(), 1.0f));
  float grad_norm = 0.0f;
  for (auto* p : net.parameters()) grad_norm += p->grad.l2_norm();
  EXPECT_GT(grad_norm, 0.0f);
}

}  // namespace
}  // namespace sesr::models
