#include <gtest/gtest.h>

#include "models/sesr.h"
#include "nn/gradcheck.h"

namespace sesr::models {
namespace {

TEST(SesrTest, InferenceFormUpscalesByScale) {
  Sesr net(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(1);
  net.init(rng);
  const Tensor y = net.forward(Tensor::rand({2, 3, 8, 8}, rng));
  EXPECT_EQ(y.shape(), Shape({2, 3, 16, 16}));
}

TEST(SesrTest, TrainingFormMatchesInferenceShape) {
  Sesr net(SesrConfig::m2(), Sesr::Form::kTraining);
  Rng rng(2);
  net.init(rng);
  const Tensor y = net.forward(Tensor::rand({1, 3, 6, 6}, rng));
  EXPECT_EQ(y.shape(), Shape({1, 3, 12, 12}));
}

TEST(SesrTest, TraceAgreesWithForward) {
  for (auto cfg : {SesrConfig::m2(), SesrConfig::m5(), SesrConfig::xl()}) {
    Sesr net(cfg, Sesr::Form::kInference);
    Rng rng(3);
    net.init(rng);
    const Shape traced = net.trace({1, 3, 7, 7}, nullptr);
    const Tensor y = net.forward(Tensor::rand({1, 3, 7, 7}, rng));
    EXPECT_EQ(y.shape(), traced);
  }
}

TEST(SesrTest, ZeroWeightsReduceToNearestNeighborUpsample) {
  // With all conv weights zero, only the tiled-input residual survives:
  // the network must reproduce nearest-neighbour x2 upscaling exactly.
  Sesr net(SesrConfig::m2(), Sesr::Form::kInference);
  for (auto* p : net.parameters()) p->value.fill(0.0f);
  Rng rng(4);
  const Tensor x = Tensor::rand({1, 3, 4, 4}, rng);
  const Tensor y = net.forward(x);
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t i = 0; i < 8; ++i)
      for (int64_t j = 0; j < 8; ++j)
        EXPECT_FLOAT_EQ(y.at(0, c, i, j), x.at(0, c, i / 2, j / 2));
}

TEST(SesrTest, InferenceParamCountsMatchPaperScale) {
  // Paper Table I reports 10.6K / 12.9K / 17.5K / 113.3K; our accounting
  // includes PReLU slopes and all biases, so allow a ~2% envelope.
  const struct {
    SesrConfig cfg;
    double paper;
  } rows[] = {{SesrConfig::m2(), 10608}, {SesrConfig::m3(), 12912},
              {SesrConfig::m5(), 17520}, {SesrConfig::xl(), 113300}};
  for (const auto& row : rows) {
    Sesr net(row.cfg, Sesr::Form::kInference);
    const double mine = static_cast<double>(net.num_params());
    EXPECT_NEAR(mine / row.paper, 1.0, 0.02) << "m=" << row.cfg.m;
  }
}

TEST(SesrTest, TrainingFormIsHeavilyOverparameterised) {
  Sesr train(SesrConfig::m2(), Sesr::Form::kTraining);
  Sesr infer(SesrConfig::m2(), Sesr::Form::kInference);
  EXPECT_GT(train.num_params(), 15 * infer.num_params());
}

TEST(SesrTest, InputGradientFlowsThroughAllPaths) {
  Sesr net(SesrConfig::m2(), Sesr::Form::kInference);
  Rng rng(5);
  for (auto* p : net.parameters())
    for (float& v : p->value.flat()) v = rng.normal(0.0f, 0.3f);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, rng);
  const nn::GradCheckResult r = nn::check_input_gradient(net, x, {.epsilon = 1e-3f, .tolerance = 0.10f, .max_coords = 16, .aggregate_l2 = true});
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(SesrTest, CollapsibleBlockRequiresExpansion) {
  EXPECT_THROW(CollapsibleLinearBlock(16, 16, 8, 3), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::models
