#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "models/edsr.h"
#include "nn/gradcheck.h"

namespace sesr::models {
namespace {

TEST(EdsrTest, UpscalesByTwo) {
  Edsr net(EdsrConfig::base_repo());
  Rng rng(1);
  net.init(rng);
  const Tensor y = net.forward(Tensor::rand({1, 3, 8, 8}, rng));
  EXPECT_EQ(y.shape(), Shape({1, 3, 16, 16}));
}

TEST(EdsrTest, PaperScaleParamsInExpectedRange) {
  // EDSR-base: paper reports 1.19M (our accounting includes the tail convs
  // the paper apparently excluded; the order of magnitude is what matters).
  Edsr base(EdsrConfig::base_paper());
  EXPECT_GT(base.num_params(), 1.0e6);
  EXPECT_LT(base.num_params(), 1.6e6);

  // EDSR: 42M in the paper.
  Edsr full(EdsrConfig::full_paper());
  EXPECT_GT(full.num_params(), 35e6);
  EXPECT_LT(full.num_params(), 46e6);
}

TEST(EdsrTest, PaperScaleMacOrderingMatchesTableOne) {
  const auto base = hw::summarize(Edsr(EdsrConfig::base_paper()), {1, 3, 299, 299});
  const auto full = hw::summarize(Edsr(EdsrConfig::full_paper()), {1, 3, 299, 299});
  // Table I: 106B and 3400B. Body-only accounting explains the small gap; the
  // 30x ratio between the two models is the structural fact to preserve.
  EXPECT_NEAR(static_cast<double>(base.macs) / 106e9, 1.0, 0.25);
  EXPECT_NEAR(static_cast<double>(full.macs) / 3400e9, 1.0, 0.25);
  EXPECT_NEAR(static_cast<double>(full.macs) / static_cast<double>(base.macs), 32.0, 4.0);
}

TEST(EdsrTest, ResidualScaleAppearsInFullConfigOnly) {
  EXPECT_FLOAT_EQ(EdsrConfig::base_paper().res_scale, 1.0f);
  EXPECT_FLOAT_EQ(EdsrConfig::full_paper().res_scale, 0.1f);
}

TEST(EdsrTest, InputGradientCorrect) {
  EdsrConfig tiny;
  tiny.blocks = 2;
  tiny.channels = 6;
  tiny.res_scale = 0.5f;
  Edsr net(tiny);
  Rng rng(2);
  net.init(rng);
  const nn::GradCheckResult r = nn::check_input_gradient(net, Tensor::randn({1, 3, 6, 6}, rng), {.epsilon = 1e-3f, .tolerance = 0.10f, .max_coords = 16, .aggregate_l2 = true});
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(EdsrTest, RepoScaleIsTrainableSized) {
  Edsr base(EdsrConfig::base_repo());
  Edsr full(EdsrConfig::full_repo());
  EXPECT_LT(base.num_params(), 200e3);
  EXPECT_LT(full.num_params(), 2e6);
  EXPECT_GT(full.num_params(), base.num_params());  // capacity ordering preserved
}

}  // namespace
}  // namespace sesr::models
