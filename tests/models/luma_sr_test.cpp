#include <gtest/gtest.h>

#include "models/luma_sr.h"
#include "models/sesr.h"
#include "preprocess/interpolation.h"

namespace sesr::models {
namespace {

TEST(LumaOfTest, ExtractsBt601Luma) {
  Tensor rgb({1, 3, 1, 1});
  rgb[0] = 1.0f;  // pure red
  const Tensor y = luma_of(rgb);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 0.299f, 1e-4f);
}

TEST(LumaOfTest, GrayImageLumaEqualsValue) {
  Tensor rgb(Shape{2, 3, 4, 4}, 0.42f);
  const Tensor y = luma_of(rgb);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.42f, 1e-5f);
}

class LumaUpscalerFixture : public ::testing::Test {
 protected:
  LumaUpscalerFixture() {
    SesrConfig cfg = SesrConfig::m2();
    cfg.image_channels = 1;
    cfg.expansion = 32;
    auto net = std::make_shared<Sesr>(cfg, Sesr::Form::kInference);
    Rng rng(3);
    net->init(rng);
    upscaler_ = std::make_unique<LumaSrUpscaler>("SESR-Y", net);
  }
  std::unique_ptr<LumaSrUpscaler> upscaler_;
};

TEST_F(LumaUpscalerFixture, DoublesResolutionAndStaysInRange) {
  Rng rng(1);
  const Tensor rgb = Tensor::rand({2, 3, 8, 8}, rng);
  const Tensor up = upscaler_->upscale(rgb);
  EXPECT_EQ(up.shape(), Shape({2, 3, 16, 16}));
  EXPECT_GE(up.min(), 0.0f);
  EXPECT_LE(up.max(), 1.0f);
}

TEST_F(LumaUpscalerFixture, ChromaFollowsBicubic) {
  // With zero network weights the luma path reduces to nearest-neighbour
  // (SESR's input residual); chroma must match plain bicubic of Cb/Cr.
  // We verify on a constant-chroma image where the distinction vanishes:
  // output chroma must be constant too.
  Tensor rgb({1, 3, 6, 6});
  for (int64_t y = 0; y < 6; ++y)
    for (int64_t x = 0; x < 6; ++x) {
      const float v = 0.3f + 0.1f * static_cast<float>(y) / 5.0f;
      rgb.at(0, 0, y, x) = v;
      rgb.at(0, 1, y, x) = v;
      rgb.at(0, 2, y, x) = v;  // gray: zero chroma
    }
  const Tensor up = upscaler_->upscale(rgb);
  // Gray in, gray out: channels must agree everywhere (chroma untouched).
  for (int64_t y = 0; y < 12; ++y)
    for (int64_t x = 0; x < 12; ++x) {
      EXPECT_NEAR(up.at(0, 0, y, x), up.at(0, 1, y, x), 0.02f);
      EXPECT_NEAR(up.at(0, 1, y, x), up.at(0, 2, y, x), 0.02f);
    }
}

TEST_F(LumaUpscalerFixture, MacsCountLumaNetworkOnly) {
  // 1-channel SESR-M2 must cost far less than the 3-channel variant
  // (paper footnote 2: the original papers' numbers are luma-only).
  Sesr rgb_net(SesrConfig::m2(), Sesr::Form::kInference);
  int64_t rgb_macs = 0;
  for (const auto& info : rgb_net.layers({1, 3, 64, 64})) rgb_macs += info.macs;
  const int64_t luma_macs = upscaler_->macs_for({3, 64, 64});
  EXPECT_LT(luma_macs, rgb_macs);
  EXPECT_GT(luma_macs, 0);
}

TEST(LumaUpscalerTest, RejectsNullNetworkAndBadShapes) {
  EXPECT_THROW(LumaSrUpscaler("x", nullptr), std::invalid_argument);
  SesrConfig cfg = SesrConfig::m2();
  cfg.image_channels = 1;
  cfg.expansion = 32;
  LumaSrUpscaler upscaler("x", std::make_shared<Sesr>(cfg, Sesr::Form::kInference));
  EXPECT_THROW(upscaler.upscale(Tensor({1, 1, 8, 8})), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::models
