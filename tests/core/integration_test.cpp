// End-to-end integration: train a small classifier and a small SESR on the
// synthetic datasets, attack, defend, and check the qualitative shape of the
// paper's Table II on a miniature scale:
//   clean accuracy high -> attack destroys it -> SR defense recovers part.
#include <gtest/gtest.h>

#include <memory>

#include "core/core.h"
#include "models/models.h"
#include "attacks/attacks.h"

namespace sesr::core {
namespace {

class MiniClassifier final : public models::Classifier {
 public:
  explicit MiniClassifier(int64_t num_classes) : Classifier(num_classes) {
    net_.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 16, .kernel = 3});
    net_.add<nn::GroupNorm>(16, 4);
    net_.add<nn::ReLU>();
    net_.add<nn::MaxPool2d>(2, 2);
    net_.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 16, .out_channels = 32, .kernel = 3});
    net_.add<nn::GroupNorm>(32, 4);
    net_.add<nn::ReLU>();
    net_.add<nn::MaxPool2d>(2, 2);
    net_.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 32, .out_channels = 32, .kernel = 3});
    net_.add<nn::GroupNorm>(32, 4);
    net_.add<nn::ReLU>();
    net_.add<nn::GlobalAvgPool>();
    net_.add<nn::Linear>(32, num_classes);
  }
  [[nodiscard]] std::string name() const override { return "mini"; }
};

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ShapesTexDataset({.image_size = 16, .num_classes = 4, .seed = 21});
    classifier_ = new std::shared_ptr<models::Classifier>(std::make_shared<MiniClassifier>(4));

    ClassifierTrainingOptions opts;
    opts.train_size = 512;
    opts.batch_size = 32;
    opts.epochs = 25;
    // 1e-2 sits past the stability edge once 30% of batches arrive bicubically
    // upscaled (the resolution augmentation the defended evaluation needs):
    // the first large-step epoch drives every ReLU dead and training pins at
    // chance. 5e-3 trains to ~90% on the same seed.
    opts.learning_rate = 5e-3f;
    const TrainingSummary summary = train_classifier(**classifier_, *dataset_, opts);
    ASSERT_GT(summary.final_accuracy, 55.0f) << "mini classifier failed to train";

    // Evaluation set from beyond the training range, classifier-correct only.
    eval_indices_ = new std::vector<int64_t>();
    for (int64_t i = 512; i < 1536 && eval_indices_->size() < 48; ++i) {
      const data::Sample s = dataset_->get(i);
      const Tensor logits =
          (*classifier_)->forward(s.image.reshaped({1, 3, 16, 16}));
      if (nn::argmax_rows(logits)[0] == s.label) eval_indices_->push_back(i);
    }
    ASSERT_GE(eval_indices_->size(), 24u);

    // A small trained SESR as the deep-SR defense.
    data::SyntheticDiv2k div2k({.hr_size = 16, .scale = 2, .seed = 22});
    models::SesrConfig cfg = models::SesrConfig::m2();
    cfg.expansion = 48;
    models::Sesr train_form(cfg, models::Sesr::Form::kTraining);
    SrTrainingOptions sr_opts;
    sr_opts.train_size = 384;
    sr_opts.epochs = 4;
    train_sr(train_form, div2k, sr_opts);
    sesr_ = new std::shared_ptr<nn::Module>(models::Sesr::collapse_from(train_form).release());
  }

  void SetUp() override {
    // A fatal ASSERT in SetUpTestSuite leaves the static fixtures null; fail
    // each test readably instead of dereferencing nullptr.
    ASSERT_NE(dataset_, nullptr) << "suite setup failed (classifier training?)";
    ASSERT_NE(eval_indices_, nullptr) << "suite setup failed before eval-set selection";
    ASSERT_NE(sesr_, nullptr) << "suite setup failed before SESR training";
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete classifier_;
    delete eval_indices_;
    delete sesr_;
  }

  static data::ShapesTexDataset* dataset_;
  static std::shared_ptr<models::Classifier>* classifier_;
  static std::vector<int64_t>* eval_indices_;
  static std::shared_ptr<nn::Module>* sesr_;
};

data::ShapesTexDataset* IntegrationFixture::dataset_ = nullptr;
std::shared_ptr<models::Classifier>* IntegrationFixture::classifier_ = nullptr;
std::vector<int64_t>* IntegrationFixture::eval_indices_ = nullptr;
std::shared_ptr<nn::Module>* IntegrationFixture::sesr_ = nullptr;

TEST_F(IntegrationFixture, CleanAccuracyIsHundredOnSelectedSubset) {
  GrayBoxEvaluator eval(*classifier_, 32);
  EXPECT_FLOAT_EQ(eval.clean_accuracy(*dataset_, *eval_indices_), 100.0f);
}

TEST_F(IntegrationFixture, AttackDestroysUndefendedAccuracy) {
  GrayBoxEvaluator eval(*classifier_, 32);
  attacks::Pgd pgd;
  const float robust = eval.robust_accuracy(*dataset_, *eval_indices_, pgd, nullptr);
  EXPECT_LT(robust, 60.0f);  // on 100%-clean subsets PGD must do real damage
}

TEST_F(IntegrationFixture, SrDefenseRecoversAccuracy) {
  GrayBoxEvaluator eval(*classifier_, 32);
  attacks::Pgd pgd;
  const float undefended = eval.robust_accuracy(*dataset_, *eval_indices_, pgd, nullptr);

  DefensePipeline sesr_defense(
      std::make_shared<models::NetworkUpscaler>("SESR-mini", *sesr_));
  const float defended = eval.robust_accuracy(*dataset_, *eval_indices_, pgd, &sesr_defense);
  EXPECT_GT(defended, undefended);
}

TEST_F(IntegrationFixture, DefenseKeepsCleanAccuracyUsable) {
  // Transformation defenses must not wreck clean inputs (the paper's point
  // about SR preserving critical image content).
  GrayBoxEvaluator eval(*classifier_, 32);
  DefensePipeline sesr_defense(
      std::make_shared<models::NetworkUpscaler>("SESR-mini", *sesr_));
  const float clean_defended = eval.clean_accuracy(*dataset_, *eval_indices_, &sesr_defense);
  EXPECT_GT(clean_defended, 55.0f);
}

TEST_F(IntegrationFixture, GrayBoxAttackIsCraftedAtRawResolution) {
  // Structural property of the protocol: the attack tensor has the raw
  // resolution even when evaluation is defended (the attacker never sees SR).
  attacks::Fgsm fgsm;
  const Tensor images = dataset_->images_at({(*eval_indices_)[0]});
  const Tensor adv =
      fgsm.perturb(**classifier_, images, dataset_->labels_at({(*eval_indices_)[0]}));
  EXPECT_EQ(adv.shape(), images.shape());
}

}  // namespace
}  // namespace sesr::core
