#include <gtest/gtest.h>

#include <memory>

#include "attacks/attacks.h"
#include "core/evaluator.h"
#include "core/trainer.h"

namespace sesr::core {
namespace {

// Classifier stub with controllable behaviour: classifies by comparing the
// red-channel mean against fixed thresholds, so "correctness" is a property
// of the image generator, not of training.
class ThresholdClassifier final : public models::Classifier {
 public:
  ThresholdClassifier() : Classifier(2) {
    net_.add<nn::GlobalAvgPool>();
    auto& fc = net_.add<nn::Linear>(3, 2, false);
    fc.weight().value = Tensor(Shape{2, 3}, std::vector<float>{1, 0, 0, 0, 1, 0});
  }
  [[nodiscard]] std::string name() const override { return "threshold"; }
};

TEST(GrayBoxEvaluatorTest, SelectsOnlyCorrectlyClassifiedIndices) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 2, .seed = 5});
  auto clf = std::make_shared<ThresholdClassifier>();
  GrayBoxEvaluator eval(clf, 16);
  const auto indices = eval.correctly_classified(ds, 128, 32);
  // Whatever was selected must evaluate to 100% clean accuracy — the paper's
  // protocol invariant.
  if (!indices.empty()) {
    EXPECT_FLOAT_EQ(eval.clean_accuracy(ds, indices), 100.0f);
    EXPECT_LE(static_cast<int64_t>(indices.size()), 32);
  }
}

TEST(GrayBoxEvaluatorTest, MaxCountIsRespected) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 2, .seed = 6});
  auto clf = std::make_shared<ThresholdClassifier>();
  GrayBoxEvaluator eval(clf, 8);
  const auto indices = eval.correctly_classified(ds, 256, 10);
  EXPECT_LE(static_cast<int64_t>(indices.size()), 10);
}

TEST(GrayBoxEvaluatorTest, RobustAccuracyWithoutDefenseDropsUnderAttack) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 2, .seed = 7});
  auto clf = std::make_shared<ThresholdClassifier>();
  GrayBoxEvaluator eval(clf, 16);
  const auto indices = eval.correctly_classified(ds, 256, 40);
  ASSERT_FALSE(indices.empty());

  attacks::Pgd pgd;
  const float robust = eval.robust_accuracy(ds, indices, pgd, nullptr);
  EXPECT_LT(robust, 100.0f);  // PGD must flip at least the narrow margins
}

TEST(GrayBoxEvaluatorTest, DefendedAccuracyAtLeastMatchesShapeExpectations) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 2, .seed = 8});
  auto clf = std::make_shared<ThresholdClassifier>();
  GrayBoxEvaluator eval(clf, 16);
  const auto indices = eval.correctly_classified(ds, 256, 40);
  ASSERT_FALSE(indices.empty());

  attacks::Fgsm fgsm;
  DefenseOptions opts;
  opts.wavelet.levels = 2;
  DefensePipeline defense(
      std::make_shared<models::InterpolationUpscaler>(preprocess::InterpolationKind::kNearest),
      opts);
  // Both calls must succeed and produce percentages; the ordering claim
  // (defense helps) is validated on trained classifiers in integration_test.
  const float undefended = eval.robust_accuracy(ds, indices, fgsm, nullptr);
  const float defended = eval.robust_accuracy(ds, indices, fgsm, &defense);
  EXPECT_GE(undefended, 0.0f);
  EXPECT_LE(undefended, 100.0f);
  EXPECT_GE(defended, 0.0f);
  EXPECT_LE(defended, 100.0f);
}

}  // namespace
}  // namespace sesr::core
