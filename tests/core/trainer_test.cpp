#include <gtest/gtest.h>

#include "core/trainer.h"
#include "models/sesr.h"

namespace sesr::core {
namespace {

// A deliberately small classifier so the test trains in seconds.
class MicroClassifier final : public models::Classifier {
 public:
  explicit MicroClassifier(int64_t num_classes) : Classifier(num_classes) {
    net_.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 16, .kernel = 3});
    net_.add<nn::GroupNorm>(16, 4);
    net_.add<nn::ReLU>();
    net_.add<nn::MaxPool2d>(2, 2);
    net_.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 16, .out_channels = 32, .kernel = 3});
    net_.add<nn::GroupNorm>(32, 4);
    net_.add<nn::ReLU>();
    net_.add<nn::MaxPool2d>(2, 2);
    net_.add<nn::GlobalAvgPool>();
    net_.add<nn::Linear>(32, num_classes);
  }
  [[nodiscard]] std::string name() const override { return "micro"; }
};

TEST(TrainerTest, ClassifierLossDecreasesAndAccuracyRises) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 4, .seed = 1});
  MicroClassifier clf(4);
  ClassifierTrainingOptions opts;
  opts.train_size = 512;
  opts.batch_size = 32;
  opts.epochs = 20;
  opts.learning_rate = 1e-2f;
  opts.upscaled_batch_prob = 0.0f;
  const TrainingSummary summary = train_classifier(clf, ds, opts);
  EXPECT_LT(summary.final_loss, 1.0f);          // well below log(4) = 1.386
  EXPECT_GT(summary.final_accuracy, 60.0f);     // far above 25% chance
  EXPECT_EQ(summary.steps, 20 * (512 / 32));
}

TEST(TrainerTest, ClassifierTrainingIsSeedDeterministic) {
  data::ShapesTexDataset ds({.image_size = 16, .num_classes = 4, .seed = 1});
  MicroClassifier a(4), b(4);
  ClassifierTrainingOptions opts;
  opts.train_size = 64;
  opts.epochs = 2;
  const TrainingSummary sa = train_classifier(a, ds, opts);
  const TrainingSummary sb = train_classifier(b, ds, opts);
  EXPECT_EQ(sa.final_loss, sb.final_loss);
}

TEST(TrainerTest, SrLossDecreases) {
  data::SyntheticDiv2k ds({.hr_size = 16, .scale = 2, .seed = 2});
  models::SesrConfig cfg = models::SesrConfig::m2();
  cfg.expansion = 32;  // keep the test fast
  models::Sesr net(cfg, models::Sesr::Form::kTraining);

  SrTrainingOptions first_epoch;
  first_epoch.train_size = 128;
  first_epoch.epochs = 1;
  models::Sesr probe(cfg, models::Sesr::Form::kTraining);
  const float loss_after_1 = train_sr(probe, ds, first_epoch).final_loss;

  SrTrainingOptions more_epochs = first_epoch;
  more_epochs.epochs = 6;
  const float loss_after_6 = train_sr(net, ds, more_epochs).final_loss;
  EXPECT_LT(loss_after_6, loss_after_1);
}

TEST(TrainerTest, TrainedSesrBeatsNearestNeighborPsnr) {
  data::SyntheticDiv2k ds({.hr_size = 16, .scale = 2, .seed = 3});
  models::SesrConfig cfg = models::SesrConfig::m2();
  cfg.expansion = 32;
  models::Sesr net(cfg, models::Sesr::Form::kTraining);
  SrTrainingOptions opts;
  opts.train_size = 256;
  opts.epochs = 6;
  train_sr(net, ds, opts);

  auto collapsed = models::Sesr::collapse_from(net);
  const float net_psnr = evaluate_sr_psnr(*collapsed, ds, 5000, 20);
  const float nn_psnr = evaluate_interpolation_psnr(preprocess::InterpolationKind::kNearest,
                                                    ds, 5000, 20);
  EXPECT_GT(net_psnr, nn_psnr);
}

TEST(TrainerTest, MseAndMaeLossesBothTrain) {
  data::SyntheticDiv2k ds({.hr_size = 16, .scale = 2, .seed = 4});
  for (SrLoss loss : {SrLoss::kMae, SrLoss::kMse}) {
    models::SesrConfig cfg = models::SesrConfig::m2();
    cfg.expansion = 32;
    models::Sesr net(cfg, models::Sesr::Form::kTraining);
    SrTrainingOptions opts;
    opts.train_size = 64;
    opts.epochs = 2;
    opts.loss = loss;
    const TrainingSummary summary = train_sr(net, ds, opts);
    EXPECT_GT(summary.steps, 0);
    EXPECT_GE(summary.final_loss, 0.0f);
  }
}

}  // namespace
}  // namespace sesr::core
