#include <gtest/gtest.h>

#include <memory>

#include "core/defense.h"
#include "data/metrics.h"

namespace sesr::core {
namespace {

std::shared_ptr<models::Upscaler> nearest_upscaler() {
  return std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kNearest);
}

TEST(DefensePipelineTest, DoublesResolution) {
  DefensePipeline defense(nearest_upscaler());
  Rng rng(1);
  const Tensor x = Tensor::rand({2, 3, 32, 32}, rng);
  const Tensor y = defense.apply(x);
  EXPECT_EQ(y.shape(), Shape({2, 3, 64, 64}));
}

TEST(DefensePipelineTest, OutputStaysInUnitRange) {
  DefensePipeline defense(nearest_upscaler());
  Rng rng(2);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, rng);
  const Tensor y = defense.apply(x);
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(DefensePipelineTest, JpegStageCanBeDisabled) {
  DefenseOptions with_jpeg;
  DefenseOptions without_jpeg;
  without_jpeg.use_jpeg = false;
  Rng rng(3);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, rng);
  const Tensor y_with = DefensePipeline(nearest_upscaler(), with_jpeg).apply(x);
  const Tensor y_without = DefensePipeline(nearest_upscaler(), without_jpeg).apply(x);
  EXPECT_GT(y_with.max_abs_diff(y_without), 1e-4f);  // JPEG does something
}

TEST(DefensePipelineTest, DenoisingSuppressesAdversarialScaleNoise) {
  // A clean smooth image plus eps-scale uniform noise: after JPEG + wavelet
  // (before upscaling), the defended image must be closer to the defended
  // clean image than the raw noise level.
  Tensor clean({1, 3, 32, 32});
  for (int64_t c = 0; c < 3; ++c)
    for (int64_t y = 0; y < 32; ++y)
      for (int64_t x = 0; x < 32; ++x)
        clean.at(0, c, y, x) = 0.3f + 0.4f * static_cast<float>(y) / 31.0f;

  Rng rng(4);
  Tensor noisy = clean;
  const float eps = 8.0f / 255.0f;
  for (int64_t i = 0; i < noisy.numel(); ++i)
    noisy[i] += rng.bernoulli(0.5) ? eps : -eps;  // sign-noise like FGSM
  noisy.clamp_(0.0f, 1.0f);

  DefensePipeline defense(nearest_upscaler());
  const Tensor defended_noisy = defense.apply(noisy);
  const Tensor defended_clean = defense.apply(clean);
  const Tensor upscaled_noisy = preprocess::upscale(noisy, 2, preprocess::InterpolationKind::kNearest);
  const Tensor upscaled_clean = preprocess::upscale(clean, 2, preprocess::InterpolationKind::kNearest);

  EXPECT_GT(data::psnr(defended_noisy, upscaled_clean),
            data::psnr(upscaled_noisy, upscaled_clean));
}

TEST(DefensePipelineTest, LabelComesFromUpscaler) {
  DefensePipeline defense(nearest_upscaler());
  EXPECT_EQ(defense.label(), "Nearest Neighbor");
}

TEST(DefensePipelineTest, NullUpscalerRejected) {
  EXPECT_THROW(DefensePipeline(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::core
