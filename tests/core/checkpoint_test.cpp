#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/checkpoint.h"
#include "nn/nn.h"

namespace sesr::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "sesr_ckpt_test").string();
    setenv("SESR_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    unsetenv("SESR_CACHE_DIR");
  }
  std::string dir_;
};

TEST_F(CheckpointTest, SaveAndLoadRoundTrips) {
  nn::Conv2d a({.in_channels = 2, .out_channels = 3, .kernel = 3});
  Rng rng(1);
  for (float& v : a.weight().value.flat()) v = rng.normal();
  save_checkpoint(a, "conv_test");

  nn::Conv2d b({.in_channels = 2, .out_channels = 3, .kernel = 3});
  ASSERT_TRUE(load_checkpoint(b, "conv_test"));
  EXPECT_EQ(b.weight().value.max_abs_diff(a.weight().value), 0.0f);
}

TEST_F(CheckpointTest, MissingKeyReturnsFalse) {
  nn::Conv2d m({.in_channels = 1, .out_channels = 1, .kernel = 3});
  EXPECT_FALSE(load_checkpoint(m, "never_saved"));
}

TEST_F(CheckpointTest, ShapeMismatchReturnsFalseInsteadOfThrowing) {
  nn::Conv2d a({.in_channels = 2, .out_channels = 3, .kernel = 3});
  save_checkpoint(a, "shape_test");
  nn::Conv2d b({.in_channels = 2, .out_channels = 4, .kernel = 3});
  EXPECT_FALSE(load_checkpoint(b, "shape_test"));
}

TEST_F(CheckpointTest, CacheDirHonoursEnvironment) {
  EXPECT_EQ(cache_dir(), dir_);
}

}  // namespace
}  // namespace sesr::core
