// The typed config layer's contract: one registration table, K/M/G suffix
// parsing, range clamping onto the registered bounds, and invalid-value
// rejection (typos fall back to the default instead of becoming 0).
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/config.h"
#include "tests/support/fault_injection.h"

namespace sesr::core {
namespace {

using sesr::testsupport::ScopedEnv;

TEST(ConfigParseTest, PlainIntegers) {
  EXPECT_EQ(parse_config_int64("0"), 0);
  EXPECT_EQ(parse_config_int64("128"), 128);
  EXPECT_EQ(parse_config_int64("-7"), -7);
  EXPECT_EQ(parse_config_int64("  42  "), 42);
}

TEST(ConfigParseTest, BinarySuffixes) {
  EXPECT_EQ(parse_config_int64("4K"), int64_t{4} << 10);
  EXPECT_EQ(parse_config_int64("4k"), int64_t{4} << 10);
  EXPECT_EQ(parse_config_int64("64KB"), int64_t{64} << 10);
  EXPECT_EQ(parse_config_int64("2M"), int64_t{2} << 20);
  EXPECT_EQ(parse_config_int64("1G"), int64_t{1} << 30);
  EXPECT_EQ(parse_config_int64("3gb"), int64_t{3} << 30);
}

TEST(ConfigParseTest, RejectsGarbage) {
  EXPECT_FALSE(parse_config_int64("").has_value());
  EXPECT_FALSE(parse_config_int64("unlimited").has_value());
  EXPECT_FALSE(parse_config_int64("4x").has_value());
  EXPECT_FALSE(parse_config_int64("4K9").has_value());
  EXPECT_FALSE(parse_config_int64("12 34").has_value());
  EXPECT_FALSE(parse_config_int64("K").has_value());
  // Suffix multiply must reject on overflow, not wrap.
  EXPECT_FALSE(parse_config_int64("99999999999999999G").has_value());
  EXPECT_FALSE(parse_config_int64("999999999999999999999999").has_value());
}

TEST(ConfigParseTest, Doubles) {
  EXPECT_DOUBLE_EQ(parse_config_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_config_double("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_config_double("2K").value(), 2048.0);
  EXPECT_FALSE(parse_config_double("fast").has_value());
  EXPECT_FALSE(parse_config_double("1.5s").has_value());
  EXPECT_FALSE(parse_config_double("inf").has_value());
}

TEST(ConfigParseTest, Bools) {
  for (const char* text : {"1", "true", "TRUE", "on", "yes"})
    EXPECT_EQ(parse_config_bool(text), true) << text;
  for (const char* text : {"0", "false", "Off", "no"})
    EXPECT_EQ(parse_config_bool(text), false) << text;
  EXPECT_FALSE(parse_config_bool("2").has_value());
  EXPECT_FALSE(parse_config_bool("yep").has_value());
  EXPECT_FALSE(parse_config_bool("").has_value());
}

TEST(ConfigTest, EveryKnobIsRegisteredWithDocs) {
  for (const ConfigSpec& spec : config_specs()) {
    EXPECT_EQ(spec.name.rfind("SESR_", 0), 0u) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_FALSE(spec.default_text.empty()) << spec.name;
  }
  // The knobs the tree actually reads must all resolve.
  for (const char* name :
       {"SESR_NUM_THREADS", "SESR_SESSION_CAP", "SESR_CACHE_DIR", "SESR_BENCH_FAST",
        "SESR_BENCH_JSON_DIR", "SESR_SOAK_SECONDS", "SESR_SOAK_SEED"})
    EXPECT_NO_THROW(static_cast<void>(config_spec(name))) << name;
}

TEST(ConfigTest, UnregisteredNameThrows) {
  EXPECT_THROW(static_cast<void>(config_spec("SESR_NO_SUCH_KNOB")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(config_int64("SESR_NO_SUCH_KNOB")), std::invalid_argument);
}

TEST(ConfigTest, TypeMismatchThrows) {
  EXPECT_THROW(static_cast<void>(config_int64("SESR_CACHE_DIR")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(config_string("SESR_SESSION_CAP")), std::invalid_argument);
}

TEST(ConfigTest, UnsetFallsBackToDefault) {
  ScopedEnv clear("SESR_SESSION_CAP", nullptr);
  EXPECT_EQ(config_int64("SESR_SESSION_CAP"), std::numeric_limits<int64_t>::max());
  ScopedEnv clear_dir("SESR_CACHE_DIR", nullptr);
  EXPECT_EQ(config_string("SESR_CACHE_DIR"), "sesr_cache");
  ScopedEnv clear_fast("SESR_BENCH_FAST", nullptr);
  EXPECT_FALSE(config_bool("SESR_BENCH_FAST"));
}

TEST(ConfigTest, SuffixedValueReadsThroughGetter) {
  ScopedEnv cap("SESR_SESSION_CAP", "2K");
  EXPECT_EQ(config_int64("SESR_SESSION_CAP"), 2048);
}

TEST(ConfigTest, OutOfRangeValuesClampOntoTheRegisteredRange) {
  {
    ScopedEnv threads("SESR_NUM_THREADS", "0");
    EXPECT_EQ(config_int64("SESR_NUM_THREADS", 8), 1);  // min is 1
  }
  {
    ScopedEnv threads("SESR_NUM_THREADS", "1M");
    EXPECT_EQ(config_int64("SESR_NUM_THREADS", 8), 4096);  // max is 4096
  }
  {
    ScopedEnv cap("SESR_SESSION_CAP", "-3");
    EXPECT_EQ(config_int64("SESR_SESSION_CAP"), 0);
  }
  {
    ScopedEnv soak("SESR_SOAK_SECONDS", "0.0001");
    EXPECT_DOUBLE_EQ(config_double("SESR_SOAK_SECONDS"), 0.05);
  }
}

TEST(ConfigTest, InvalidValuesAreRejectedNotZeroed) {
  ScopedEnv cap("SESR_SESSION_CAP", "unlimited");
  EXPECT_EQ(config_int64("SESR_SESSION_CAP"), std::numeric_limits<int64_t>::max());
  ScopedEnv threads("SESR_NUM_THREADS", "fast");
  EXPECT_EQ(config_int64("SESR_NUM_THREADS", 8), 8);  // caller fallback survives
  ScopedEnv fast("SESR_BENCH_FAST", "maybe");
  EXPECT_FALSE(config_bool("SESR_BENCH_FAST"));
}

TEST(ConfigTest, DynamicDefaultKnobRequiresAFallback) {
  EXPECT_THROW(static_cast<void>(config_int64("SESR_NUM_THREADS")), std::invalid_argument);
  ScopedEnv clear("SESR_NUM_THREADS", nullptr);
  EXPECT_EQ(config_int64("SESR_NUM_THREADS", 6), 6);
}

TEST(ConfigTest, MarkdownTableCoversEveryKnob) {
  // The README's knob table is this function's output; at minimum every
  // registered knob must appear with its type.
  const std::string table = config_markdown_table();
  for (const ConfigSpec& spec : config_specs()) {
    EXPECT_NE(table.find("`" + spec.name + "`"), std::string::npos) << spec.name;
    EXPECT_NE(table.find(spec.description), std::string::npos) << spec.name;
  }
  EXPECT_NE(table.find("| Variable | Type | Range | Default | Effect |"), std::string::npos);
}

}  // namespace
}  // namespace sesr::core
