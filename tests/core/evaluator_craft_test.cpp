// Craft-once / evaluate-many evaluator APIs (the Table II protocol split).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/attacks.h"
#include "core/evaluator.h"

namespace sesr::core {
namespace {

class ChannelMeanClassifier final : public models::Classifier {
 public:
  ChannelMeanClassifier() : Classifier(2) {
    net_.add<nn::GlobalAvgPool>();
    auto& fc = net_.add<nn::Linear>(3, 2, false);
    fc.weight().value = Tensor(Shape{2, 3}, std::vector<float>{1, 0, 0, 0, 1, 0});
  }
  [[nodiscard]] std::string name() const override { return "channel_mean"; }
};

class CraftFixture : public ::testing::Test {
 protected:
  CraftFixture()
      : dataset_({.image_size = 16, .num_classes = 2, .seed = 41}),
        classifier_(std::make_shared<ChannelMeanClassifier>()),
        evaluator_(classifier_, 16) {
    indices_ = evaluator_.correctly_classified(dataset_, 512, 32);
  }

  data::ShapesTexDataset dataset_;
  std::shared_ptr<models::Classifier> classifier_;
  GrayBoxEvaluator evaluator_;
  std::vector<int64_t> indices_;
};

TEST_F(CraftFixture, CraftedBatchHasRawResolutionAndEpsBound) {
  if (indices_.empty()) GTEST_SKIP() << "threshold classifier correct on nothing";
  attacks::Fgsm fgsm;
  const Tensor adv = evaluator_.craft_adversarial(dataset_, indices_, fgsm);
  EXPECT_EQ(adv.shape(),
            Shape({static_cast<int64_t>(indices_.size()), 3, 16, 16}));
  const Tensor clean = dataset_.images_at(indices_);
  EXPECT_LE(adv.max_abs_diff(clean), fgsm.epsilon() + 1e-5f);
}

TEST_F(CraftFixture, RobustAccuracyEqualsCraftThenEvaluate) {
  if (indices_.empty()) GTEST_SKIP();
  attacks::Fgsm fgsm;
  const float combined = evaluator_.robust_accuracy(dataset_, indices_, fgsm, nullptr);
  const Tensor adv = evaluator_.craft_adversarial(dataset_, indices_, fgsm);
  const float split = evaluator_.accuracy_on(adv, dataset_.labels_at(indices_), nullptr);
  EXPECT_FLOAT_EQ(combined, split);
}

TEST_F(CraftFixture, AccuracyOnCleanSelectedIndicesIsHundred) {
  if (indices_.empty()) GTEST_SKIP();
  const Tensor clean = dataset_.images_at(indices_);
  EXPECT_FLOAT_EQ(evaluator_.accuracy_on(clean, dataset_.labels_at(indices_), nullptr), 100.0f);
}

TEST_F(CraftFixture, SameCraftedSetServesMultipleDefenses) {
  if (indices_.empty()) GTEST_SKIP();
  attacks::Fgsm fgsm;
  const Tensor adv = evaluator_.craft_adversarial(dataset_, indices_, fgsm);
  const std::vector<int64_t> labels = dataset_.labels_at(indices_);

  DefensePipeline nn_defense(std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kNearest));
  DefensePipeline bicubic_defense(std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kBicubic));
  // Both evaluations run off one crafted tensor without interference.
  const float acc_a1 = evaluator_.accuracy_on(adv, labels, &nn_defense);
  const float acc_b = evaluator_.accuracy_on(adv, labels, &bicubic_defense);
  const float acc_a2 = evaluator_.accuracy_on(adv, labels, &nn_defense);
  EXPECT_FLOAT_EQ(acc_a1, acc_a2);
  (void)acc_b;
}

}  // namespace
}  // namespace sesr::core
