// End-to-end validation of the int8 runtime backend: every SR network the
// paper deploys compiles to an int8 plan, and the integer kernels agree with
// the fake-quant float reference (simulate_fake_quant) to within one LSB of
// the output grid — the acceptance bar for "the defense survives int8 as
// executed arithmetic, not as emulation".
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/core.h"
#include "models/models.h"
#include "nn/nn.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

namespace sesr::quant {
namespace {

std::vector<Tensor> calibration_batches(const Shape& shape, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < count; ++i) out.push_back(Tensor::rand(shape, rng));
  return out;
}

/// Max |int8 session output − fake-quant reference| measured in LSBs of the
/// output grid.
float lsb_distance(nn::Module& module, const QuantizedModel& artifact,
                   const Tensor& input) {
  const auto plan = runtime::Program::compile_int8(module, input.shape(), artifact);
  EXPECT_EQ(plan->precision(), runtime::Precision::kInt8);
  runtime::Session session(plan);
  const Tensor int8_out = session.run(input);
  const Tensor reference = simulate_fake_quant(module, artifact, input);
  EXPECT_EQ(int8_out.shape(), reference.shape()) << plan->dump();
  const float out_scale = artifact.steps().back().out.scale;
  EXPECT_GT(out_scale, 0.0f);
  return int8_out.max_abs_diff(reference) / out_scale;
}

float psnr_between(const Tensor& a, const Tensor& b) {
  float mse = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float d = a[i] - b[i];
    mse += d * d;
  }
  mse /= static_cast<float>(a.numel());
  return mse <= 0.0f ? 99.0f : 10.0f * std::log10(1.0f / mse);
}

struct NamedNet {
  std::string label;
  std::unique_ptr<nn::Module> net;
};

std::vector<NamedNet> acceptance_nets() {
  std::vector<NamedNet> nets;
  {
    auto sesr =
        std::make_unique<models::Sesr>(models::SesrConfig::m5(), models::Sesr::Form::kInference);
    Rng rng(21);
    sesr->init_weights(rng);
    nets.push_back({"SESR-M5 (collapsed)", std::move(sesr)});
  }
  {
    // SESR-XL: the m = 11 collapsed form of the acceptance criteria.
    auto sesr =
        std::make_unique<models::Sesr>(models::SesrConfig::xl(), models::Sesr::Form::kInference);
    Rng rng(22);
    sesr->init_weights(rng);
    nets.push_back({"SESR-XL (collapsed, m=11)", std::move(sesr)});
  }
  {
    auto fsrcnn = std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper());
    Rng rng(23);
    fsrcnn->init_weights(rng);
    nets.push_back({"FSRCNN", std::move(fsrcnn)});
  }
  {
    // full_repo has res_scale = 0.1: exercises the integer rescale step.
    auto edsr = std::make_unique<models::Edsr>(models::EdsrConfig::full_repo());
    Rng rng(24);
    edsr->init_weights(rng);
    nets.push_back({"EDSR (repo scale)", std::move(edsr)});
  }
  return nets;
}

TEST(Int8PlanTest, MatchesFakeQuantReferenceWithinOneLsb) {
  const Shape shape{1, 3, 16, 16};
  const auto batches = calibration_batches(shape, 4, 31);
  Rng rng(32);
  const Tensor probe = Tensor::rand(shape, rng);
  for (auto& [label, net] : acceptance_nets()) {
    const auto artifact = QuantizedModel::calibrate(*net, shape, batches);
    const float lsb = lsb_distance(*net, artifact, probe);
    EXPECT_LE(lsb, 1.0f + 1e-3f) << label;
  }
}

TEST(Int8PlanTest, StaysCloseToFloatOutput) {
  const Shape shape{1, 3, 16, 16};
  const auto batches = calibration_batches(shape, 4, 41);
  Rng rng(42);
  const Tensor probe = Tensor::rand(shape, rng);
  for (auto& [label, net] : acceptance_nets()) {
    const auto artifact = QuantizedModel::calibrate(*net, shape, batches);
    const auto fp32_plan = runtime::Program::compile(*net, shape);
    const auto int8_plan = runtime::Program::compile_int8(*net, shape, artifact);
    runtime::Session fp32(fp32_plan), int8(int8_plan);
    const float psnr = psnr_between(fp32.run(probe), int8.run(probe));
    EXPECT_GT(psnr, 30.0f) << label;  // int8 noise, not wrong arithmetic
  }
}

TEST(Int8PlanTest, ArtifactServesOtherShapes) {
  // One calibrated artifact compiles int8 plans at any resolution: the step
  // structure is a function of the module, not the shape.
  auto sesr = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  Rng rng(51);
  sesr->init_weights(rng);
  const Shape calib_shape{2, 3, 12, 12};
  const auto artifact = QuantizedModel::calibrate(
      *sesr, calib_shape, calibration_batches(calib_shape, 3, 52));
  const Shape serve_shape{1, 3, 20, 20};
  const Tensor probe = Tensor::rand(serve_shape, rng);
  const float lsb = lsb_distance(*sesr, artifact, probe);
  EXPECT_LE(lsb, 1.0f + 1e-3f);
}

TEST(Int8PlanTest, FallbackLayersKeepNonIntegerNetsCompilable) {
  // GlobalResidualSr adds a BicubicUpscale branch — no integer kernel — so
  // the plan must mix integer conv steps with a float fallback.
  auto body = std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper());
  Rng rng(61);
  body->init_weights(rng);
  auto net = std::make_unique<models::GlobalResidualSr>(std::move(body), 2);
  const Shape shape{1, 3, 12, 12};
  const auto artifact = QuantizedModel::calibrate(
      *net, shape, calibration_batches(shape, 3, 62));

  const auto plan = runtime::Program::compile_int8(*net, shape, artifact);
  bool has_integer = false, has_fallback = false;
  for (const runtime::Op& op : plan->ops()) {
    if (op.kind == runtime::Op::Kind::kQConv) has_integer = true;
    if (op.kind == runtime::Op::Kind::kLayer) has_fallback = true;
  }
  EXPECT_TRUE(has_integer) << plan->dump();
  EXPECT_TRUE(has_fallback) << plan->dump();  // bicubic branch and the transposed conv

  const Tensor probe = Tensor::rand(shape, rng);
  const float lsb = lsb_distance(*net, artifact, probe);
  EXPECT_LE(lsb, 1.0f + 1e-3f);
}

TEST(Int8PlanTest, SessionsShareOnePlanConcurrently) {
  auto sesr = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  Rng rng(71);
  sesr->init_weights(rng);
  const Shape shape{1, 3, 16, 16};
  const auto artifact = QuantizedModel::calibrate(
      *sesr, shape, calibration_batches(shape, 3, 72));
  const auto plan = runtime::Program::compile_int8(*sesr, shape, artifact);

  runtime::Session reference_session(plan);
  const Tensor probe = Tensor::rand(shape, rng);
  const Tensor expected = reference_session.run(probe);

  constexpr int kThreads = 4;
  std::vector<Tensor> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      runtime::Session session(plan);
      for (int round = 0; round < 5; ++round) results[static_cast<size_t>(t)] = session.run(probe);
    });
  for (auto& t : threads) t.join();
  for (const Tensor& r : results) EXPECT_EQ(r.max_abs_diff(expected), 0.0f);
}

TEST(Int8PlanTest, Int8BuffersShrinkTheArena) {
  auto sesr = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  Rng rng(81);
  sesr->init_weights(rng);
  const Shape shape{1, 3, 16, 16};
  const auto artifact = QuantizedModel::calibrate(
      *sesr, shape, calibration_batches(shape, 2, 82));
  const auto fp32 = runtime::Program::compile(*sesr, shape);
  const auto int8 = runtime::Program::compile_int8(*sesr, shape, artifact);
  // Fully-integer network: activations live in int8 buffers (1 byte vs 4),
  // so the planned arena peak drops well below the fp32 one.
  EXPECT_LT(int8->peak_arena_bytes(), fp32->peak_arena_bytes() / 2);
}

TEST(Int8PlanTest, RejectsForeignArtifact) {
  auto m5 = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                           models::Sesr::Form::kInference);
  auto m3 = std::make_unique<models::Sesr>(models::SesrConfig::m3(),
                                           models::Sesr::Form::kInference);
  Rng rng(91);
  m5->init_weights(rng);
  m3->init_weights(rng);
  const Shape shape{1, 3, 12, 12};
  const auto artifact = QuantizedModel::calibrate(
      *m5, shape, calibration_batches(shape, 2, 92));
  EXPECT_THROW(
      static_cast<void>(runtime::Program::compile_int8(*m3, shape, artifact)),
      std::invalid_argument);
}

TEST(NetworkUpscalerPrecisionTest, KnobSwitchesServingPath) {
  auto sesr = std::make_shared<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  Rng rng(101);
  sesr->init_weights(rng);
  models::NetworkUpscaler upscaler("SESR-M5", sesr);
  EXPECT_EQ(upscaler.precision(), runtime::Precision::kFloat32);
  EXPECT_THROW(upscaler.set_precision(runtime::Precision::kInt8), std::invalid_argument);

  const Shape shape{1, 3, 16, 16};
  const Tensor probe = Tensor::rand(shape, rng);
  const Tensor fp32_out = upscaler.upscale(probe);

  upscaler.calibrate_int8(calibration_batches(shape, 3, 102));
  EXPECT_EQ(upscaler.precision(), runtime::Precision::kInt8);
  EXPECT_NE(upscaler.quantized_model(), nullptr);
  EXPECT_EQ(upscaler.plan_for(shape)->precision(), runtime::Precision::kInt8);
  const Tensor int8_out = upscaler.upscale(probe);
  EXPECT_EQ(int8_out.shape(), fp32_out.shape());
  EXPECT_GT(psnr_between(fp32_out, int8_out), 30.0f);

  // And back: fp32 serving returns, matching the original output exactly.
  upscaler.set_precision(runtime::Precision::kFloat32);
  EXPECT_EQ(upscaler.upscale(probe).max_abs_diff(fp32_out), 0.0f);
}

TEST(DefensePipelinePrecisionTest, PipelineServesInt8) {
  auto sesr = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                             models::Sesr::Form::kInference);
  Rng rng(111);
  sesr->init_weights(rng);
  core::DefensePipeline pipeline(
      std::make_shared<models::NetworkUpscaler>("SESR-M2", sesr));
  EXPECT_EQ(pipeline.precision(), runtime::Precision::kFloat32);

  const Shape shape{2, 3, 16, 16};
  const Tensor images = Tensor::rand(shape, rng);
  const Tensor defended_fp32 = pipeline.apply(images);

  pipeline.calibrate_int8(calibration_batches(shape, 3, 112));
  EXPECT_EQ(pipeline.precision(), runtime::Precision::kInt8);
  const Tensor defended_int8 = pipeline.apply(images);
  ASSERT_EQ(defended_int8.shape(), defended_fp32.shape());
  EXPECT_GT(psnr_between(defended_fp32, defended_int8), 30.0f);

  pipeline.set_precision(runtime::Precision::kFloat32);
  EXPECT_EQ(pipeline.precision(), runtime::Precision::kFloat32);
}

TEST(DefensePipelinePrecisionTest, InterpolationUpscalerRejectsKnob) {
  core::DefensePipeline pipeline(std::make_shared<models::InterpolationUpscaler>(
      preprocess::InterpolationKind::kBicubic));
  EXPECT_EQ(pipeline.precision(), runtime::Precision::kFloat32);
  EXPECT_THROW(pipeline.set_precision(runtime::Precision::kInt8), std::invalid_argument);
}

// SESR_SESSION_CAP=0 must disable idle-session retention entirely (the knob
// is read per session return, so it takes effect immediately).
TEST(NetworkUpscalerSessionCapTest, ZeroCapRetainsNoIdleSessions) {
  setenv("SESR_SESSION_CAP", "0", 1);
  auto sesr = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                             models::Sesr::Form::kInference);
  Rng rng(121);
  sesr->init_weights(rng);
  models::NetworkUpscaler upscaler("SESR-M2", sesr);
  const Shape shape{1, 3, 8, 8};
  const Tensor probe = Tensor::rand(shape, rng);
  static_cast<void>(upscaler.upscale(probe));
  static_cast<void>(upscaler.upscale(probe));
  EXPECT_EQ(upscaler.idle_session_count(shape), 0);
  unsetenv("SESR_SESSION_CAP");
}

TEST(NetworkUpscalerSessionCapTest, DefaultRetainsUpToObservedParallelism) {
  auto sesr = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                             models::Sesr::Form::kInference);
  Rng rng(122);
  sesr->init_weights(rng);
  models::NetworkUpscaler upscaler("SESR-M2", sesr);
  const Shape shape{1, 3, 8, 8};
  const Tensor probe = Tensor::rand(shape, rng);
  static_cast<void>(upscaler.upscale(probe));
  // Serial serving: observed parallelism 1, so exactly one idle session.
  static_cast<void>(upscaler.upscale(probe));
  EXPECT_EQ(upscaler.idle_session_count(shape), 1);
}

}  // namespace
}  // namespace sesr::quant
