#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "models/models.h"
#include "nn/nn.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

namespace sesr::quant {
namespace {

std::unique_ptr<nn::Sequential> small_net(uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>("small");
  net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3});
  net->add<nn::ReLU>();
  net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 8, .out_channels = 3, .kernel = 3});
  Rng rng(seed);
  nn::init_he_normal(*net, rng);
  return net;
}

std::vector<Tensor> batches(const Shape& shape, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < count; ++i) out.push_back(Tensor::rand(shape, rng));
  return out;
}

TEST(QuantizedModelTest, RecordsMirrorThePlanSteps) {
  auto net = small_net(1);
  const Shape input{2, 3, 8, 8};
  const auto artifact =
      QuantizedModel::calibrate(*net, input, batches(input, 3, 2));

  // Raw program: the artifact's one-record-per-op mapping is the contract.
  const auto plan = runtime::Program::compile(*net, input, runtime::PassConfig::none());
  ASSERT_EQ(artifact.steps().size(), plan->ops().size());
  for (size_t k = 0; k < plan->ops().size(); ++k)
    EXPECT_EQ(artifact.steps()[k].name, runtime::step_identity(plan->ops()[k]));

  // conv -> relu -> conv: two weight records bracketing one activation.
  EXPECT_EQ(artifact.steps()[0].op, StepOp::kConv2d);
  EXPECT_EQ(artifact.steps()[1].op, StepOp::kActivation);
  EXPECT_EQ(artifact.steps()[2].op, StepOp::kConv2d);
  EXPECT_FALSE(artifact.steps()[0].weights.empty());
  EXPECT_FALSE(artifact.steps()[0].bias.empty());
  EXPECT_EQ(artifact.steps()[0].weight_scales.size(), 8u);  // per out channel
  EXPECT_GT(artifact.weight_bytes(), 0);
}

TEST(QuantizedModelTest, PerTensorOptionYieldsOneScale) {
  auto net = small_net(3);
  const Shape input{1, 3, 8, 8};
  CalibrationOptions opts;
  opts.per_channel_weights = false;
  const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 2, 4), opts);
  EXPECT_EQ(artifact.steps()[0].weight_scales.size(), 1u);
  EXPECT_FALSE(artifact.per_channel());
}

TEST(QuantizedModelTest, WeightCodesStayInSymmetricRange) {
  auto net = small_net(5);
  const Shape input{1, 3, 8, 8};
  const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 2, 6));
  for (const StepQuant& rec : artifact.steps())
    for (const int8_t q : rec.weights) {
      EXPECT_GE(q, -127);
      EXPECT_LE(q, 127);
    }
}

TEST(QuantizedModelTest, MovingAverageObserverIsAccepted) {
  auto net = small_net(7);
  const Shape input{1, 3, 8, 8};
  CalibrationOptions opts;
  opts.observer = ObserverKind::kMovingAverage;
  const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 4, 8), opts);
  EXPECT_GT(artifact.input_qparams().scale, 0.0f);
}

TEST(QuantizedModelTest, RejectsEmptyAndMismatchedBatches) {
  auto net = small_net(9);
  const Shape input{1, 3, 8, 8};
  EXPECT_THROW(QuantizedModel::calibrate(*net, input, {}), std::invalid_argument);
  const auto wrong = batches({1, 3, 6, 6}, 1, 10);
  EXPECT_THROW(QuantizedModel::calibrate(*net, input, wrong), std::invalid_argument);
}

TEST(QuantizedModelTest, SimulateRejectsForeignArtifact) {
  auto net = small_net(11);
  auto other = std::make_unique<nn::Sequential>("other");
  other->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 3, .kernel = 3});
  Rng rng(12);
  nn::init_he_normal(*other, rng);
  const Shape input{1, 3, 8, 8};
  const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 2, 13));
  EXPECT_THROW(static_cast<void>(simulate_fake_quant(*other, artifact, Tensor(input))),
               std::invalid_argument);
}

TEST(QuantizedModelTest, SimulateStaysNearTheFloatForward) {
  // The fake-quant gold model is the float network plus per-step rounding
  // noise: it must track forward() to within a few quantisation steps, and
  // leave the module's parameters untouched.
  auto net = small_net(15);
  const Shape input{1, 3, 8, 8};
  const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 2, 16));
  const std::vector<Tensor> before = net->parameter_values();
  Rng rng(17);
  const Tensor probe = Tensor::rand(input, rng);
  const Tensor reference = simulate_fake_quant(*net, artifact, probe);
  const Tensor exact = net->forward(probe);
  ASSERT_EQ(reference.shape(), exact.shape());
  EXPECT_LT(reference.max_abs_diff(exact), 16.0f * artifact.steps().back().out.scale);
  const std::vector<Tensor> after = net->parameter_values();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i].max_abs_diff(after[i]), 0.0f) << "parameter " << i;
}

// Satellite: calibrated artifacts round-trip bit-identically across the full
// SR zoo — int8 weights, requant scales, grids, everything.
TEST(QuantizedModelRoundTripTest, FullSrZooBitIdentical) {
  const Shape input{1, 3, 8, 8};
  const auto calibration = batches(input, 2, 42);
  int exercised = 0;
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    const auto net = spec.make_repo_scale();
    Rng rng(99);
    net->init_weights(rng);
    if (!net->supports_compiled_inference()) continue;
    const auto artifact = QuantizedModel::calibrate(*net, input, calibration);

    const std::string path =
        testing::TempDir() + "/artifact_" + std::to_string(exercised) + ".sesq";
    artifact.save(path);
    const QuantizedModel loaded = QuantizedModel::load(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.per_channel(), artifact.per_channel());
    EXPECT_EQ(loaded.input_qparams(), artifact.input_qparams());
    ASSERT_EQ(loaded.steps().size(), artifact.steps().size()) << spec.label;
    for (size_t k = 0; k < artifact.steps().size(); ++k) {
      const StepQuant& a = artifact.steps()[k];
      const StepQuant& b = loaded.steps()[k];
      EXPECT_EQ(a.op, b.op) << spec.label << " step " << k;
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.in, b.in);
      EXPECT_EQ(a.out, b.out);
      EXPECT_EQ(a.weights, b.weights) << spec.label << " step " << k;
      EXPECT_EQ(a.bias, b.bias);
      ASSERT_EQ(a.weight_scales.size(), b.weight_scales.size());
      for (size_t j = 0; j < a.weight_scales.size(); ++j)
        EXPECT_EQ(a.weight_scales[j], b.weight_scales[j]);  // bit-identical floats
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 4);  // the zoo's SESR/FSRCNN/EDSR families all round-trip
}

// Satellite: every way an artifact file can be malformed — truncation, wrong
// magic, a record count that disagrees with the payload, a poisoned scale —
// must fail the load with a typed, descriptive error, never yield a silently
// corrupt model. Each case starts from one real saved artifact and corrupts
// a specific region of its bytes.
//
// Header layout (see quantized_model.cpp): magic u32 | version u32 |
// per_channel u8 | input scale f32 + zero_point i32 | step count u64 | ...
constexpr size_t kInputScaleOffset = 9;
constexpr size_t kStepCountOffset = 17;

const std::vector<char>& valid_artifact_bytes() {
  static const std::vector<char> bytes = [] {
    auto net = small_net(11);
    const Shape input{1, 3, 8, 8};
    const auto artifact = QuantizedModel::calibrate(*net, input, batches(input, 2, 12));
    const std::string path = testing::TempDir() + "/malformed_base.sesq";
    artifact.save(path);
    std::ifstream is(path, std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return raw;
  }();
  return bytes;
}

/// Write `bytes` to a temp file, load it, and return the load error message
/// ("" when the load unexpectedly succeeds). The file is always removed.
std::string load_error(const std::vector<char>& bytes, const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  {
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string message;
  try {
    static_cast<void>(QuantizedModel::load(path));
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  std::remove(path.c_str());
  return message;
}

TEST(QuantizedModelMalformedTest, BaselineBytesActuallyLoad) {
  // The corruption tests prove nothing if the uncorrupted bytes don't load.
  EXPECT_EQ(load_error(valid_artifact_bytes(), "baseline.sesq"), "");
}

TEST(QuantizedModelMalformedTest, TruncatedFileIsRejected) {
  std::vector<char> bytes = valid_artifact_bytes();
  bytes.resize(bytes.size() / 2);
  const std::string error = load_error(bytes, "truncated.sesq");
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(QuantizedModelMalformedTest, BadMagicIsRejected) {
  std::vector<char> bytes = valid_artifact_bytes();
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5a);
  const std::string error = load_error(bytes, "bad_magic.sesq");
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(QuantizedModelMalformedTest, OverstatedRecordCountIsRejected) {
  // Header claims one more record than the payload holds: the reader must
  // hit end-of-file mid-record, not fabricate a step.
  std::vector<char> bytes = valid_artifact_bytes();
  uint64_t count = 0;
  std::memcpy(&count, bytes.data() + kStepCountOffset, sizeof(count));
  ++count;
  std::memcpy(bytes.data() + kStepCountOffset, &count, sizeof(count));
  const std::string error = load_error(bytes, "overstated_count.sesq");
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(QuantizedModelMalformedTest, TrailingBytesAreRejected) {
  // Understated record count (equivalently: spliced-on junk) — the payload
  // outlives the declared records.
  std::vector<char> bytes = valid_artifact_bytes();
  for (int i = 0; i < 8; ++i) bytes.push_back('\x7f');
  const std::string error = load_error(bytes, "trailing.sesq");
  EXPECT_NE(error.find("record count mismatch"), std::string::npos) << error;
}

TEST(QuantizedModelMalformedTest, NaNInputScaleIsRejected) {
  std::vector<char> bytes = valid_artifact_bytes();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bytes.data() + kInputScaleOffset, &nan, sizeof(nan));
  const std::string error = load_error(bytes, "nan_scale.sesq");
  EXPECT_NE(error.find("invalid input scale"), std::string::npos) << error;
}

TEST(QuantizedModelMalformedTest, NonPositiveInputScaleIsRejected) {
  std::vector<char> bytes = valid_artifact_bytes();
  const float zero = 0.0f;
  std::memcpy(bytes.data() + kInputScaleOffset, &zero, sizeof(zero));
  const std::string error = load_error(bytes, "zero_scale.sesq");
  EXPECT_NE(error.find("invalid input scale"), std::string::npos) << error;
}

TEST(QuantizedModelTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/garbage.sesq";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an artifact", f);
    std::fclose(f);
  }
  EXPECT_THROW(static_cast<void>(QuantizedModel::load(path)), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(static_cast<void>(QuantizedModel::load(path)), std::runtime_error);
}

}  // namespace
}  // namespace sesr::quant
