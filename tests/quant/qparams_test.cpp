#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "quant/qparams.h"
#include "tensor/rng.h"

namespace sesr::quant {
namespace {

TEST(ChooseActivationQParamsTest, ZeroIsExactlyRepresentable) {
  const std::pair<float, float> ranges[] = {
      {-1.3f, 2.7f}, {0.0f, 6.0f}, {-0.5f, 0.0f}, {0.2f, 0.9f}, {-4.0f, -1.0f}};
  for (const auto& [lo, hi] : ranges) {
    const QParams qp = choose_activation_qparams(lo, hi);
    EXPECT_GT(qp.scale, 0.0f);
    EXPECT_GE(qp.zero_point, kActQMin);
    EXPECT_LE(qp.zero_point, kActQMax);
    EXPECT_EQ(qp.dequantize(qp.quantize(0.0f)), 0.0f) << "[" << lo << ", " << hi << "]";
  }
}

TEST(ChooseActivationQParamsTest, CoversTheRange) {
  const QParams qp = choose_activation_qparams(-1.0f, 3.0f);
  // Both endpoints must quantise without saturating more than half a step.
  EXPECT_NEAR(qp.dequantize(qp.quantize(-1.0f)), -1.0f, 0.5f * qp.scale + 1e-6f);
  EXPECT_NEAR(qp.dequantize(qp.quantize(3.0f)), 3.0f, 0.5f * qp.scale + 1e-6f);
}

TEST(ChooseActivationQParamsTest, DegenerateRangesGetPositiveScale) {
  const std::pair<float, float> ranges[] = {
      {0.0f, 0.0f}, {0.37f, 0.37f}, {-2.0f, -2.0f}, {1.0f, 1.0f + 1e-7f}};
  for (const auto& [lo, hi] : ranges) {
    const QParams qp = choose_activation_qparams(lo, hi);
    EXPECT_GT(qp.scale, 0.0f) << "[" << lo << ", " << hi << "]";
    EXPECT_TRUE(std::isfinite(qp.scale));
  }
}

TEST(ChooseActivationQParamsTest, RejectsNonFinite) {
  EXPECT_THROW(static_cast<void>(choose_activation_qparams(
                   0.0f, std::numeric_limits<float>::infinity())),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(choose_activation_qparams(
                   std::numeric_limits<float>::quiet_NaN(), 1.0f)),
               std::invalid_argument);
}

TEST(ChooseWeightScaleTest, PositiveForAllInputs) {
  EXPECT_GT(choose_weight_scale(0.0f), 0.0f);
  EXPECT_GT(choose_weight_scale(1e-30f), 0.0f);
  EXPECT_FLOAT_EQ(choose_weight_scale(127.0f), 1.0f);
  EXPECT_THROW(static_cast<void>(choose_weight_scale(std::numeric_limits<float>::infinity())),
               std::invalid_argument);
}

TEST(QParamsTest, QuantizeSaturatesToInt8Range) {
  const QParams qp = choose_activation_qparams(0.0f, 1.0f);
  EXPECT_EQ(qp.quantize(100.0f), kActQMax);
  EXPECT_EQ(qp.quantize(-100.0f), kActQMin);
}

TEST(QParamsTest, RoundTripWithinHalfStep) {
  Rng rng(7);
  const QParams qp = choose_activation_qparams(-2.0f, 5.0f);
  for (int i = 0; i < 256; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_NEAR(qp.dequantize(qp.quantize(v)), v, 0.5f * qp.scale + 1e-6f);
  }
}

TEST(QuantizeDequantizeSpansTest, RoundTripOnGridIsExact) {
  const QParams qp = choose_activation_qparams(-1.0f, 1.0f);
  std::vector<float> values = {-1.0f, -0.25f, 0.0f, 0.5f, 1.0f};
  std::vector<int8_t> q(values.size());
  quantize_activations(values, qp, q);
  std::vector<float> back(values.size());
  dequantize_activations(q, qp, back);
  std::vector<int8_t> q2(values.size());
  quantize_activations(back, qp, q2);
  EXPECT_EQ(q, q2);  // already-on-grid values re-quantise to the same codes
}

TEST(FakeQuantizeWithTest, MatchesQuantizeDequantize) {
  Rng rng(9);
  const QParams qp = choose_activation_qparams(-0.7f, 1.9f);
  Tensor values = Tensor::rand({64}, rng, -1.0f, 2.5f);
  Tensor fake = values;
  fake_quantize_with(fake, qp);
  for (int64_t i = 0; i < values.numel(); ++i)
    EXPECT_EQ(fake[i], qp.dequantize(qp.quantize(values[i])));
}

}  // namespace
}  // namespace sesr::quant
