#include <gtest/gtest.h>

#include "quant/observer.h"
#include "tensor/rng.h"

namespace sesr::quant {
namespace {

TEST(MinMaxObserverTest, TracksAbsoluteExtremes) {
  MinMaxObserver observer;
  EXPECT_FALSE(observer.seen());
  observer.observe(Tensor(Shape{3}, std::vector<float>{-1.0f, 0.0f, 2.0f}));
  observer.observe(Tensor(Shape{3}, std::vector<float>{-0.5f, 3.0f, 1.0f}));
  observer.observe(Tensor(Shape{3}, std::vector<float>{-4.0f, 0.1f, 0.2f}));
  EXPECT_TRUE(observer.seen());
  EXPECT_FLOAT_EQ(observer.min(), -4.0f);
  EXPECT_FLOAT_EQ(observer.max(), 3.0f);
}

TEST(MovingAverageObserverTest, FirstBatchInitialisesThenEma) {
  MovingAverageObserver observer(0.5f);
  observer.observe(Tensor(Shape{2}, std::vector<float>{0.0f, 4.0f}));
  EXPECT_FLOAT_EQ(observer.min(), 0.0f);
  EXPECT_FLOAT_EQ(observer.max(), 4.0f);
  observer.observe(Tensor(Shape{2}, std::vector<float>{-2.0f, 0.0f}));
  // 0.5 * old + 0.5 * new.
  EXPECT_FLOAT_EQ(observer.min(), -1.0f);
  EXPECT_FLOAT_EQ(observer.max(), 2.0f);
}

TEST(MovingAverageObserverTest, SmoothsOutlierBatches) {
  MovingAverageObserver smooth(0.9f);
  MinMaxObserver absolute;
  Rng rng(11);
  for (int b = 0; b < 20; ++b) {
    Tensor batch = Tensor::rand({128}, rng, -1.0f, 1.0f);
    if (b == 10) batch[0] = 50.0f;  // one outlier batch
    smooth.observe(batch);
    absolute.observe(batch);
  }
  EXPECT_FLOAT_EQ(absolute.max(), 50.0f);
  EXPECT_LT(smooth.max(), 25.0f);  // the EMA decays the outlier
}

TEST(MovingAverageObserverTest, RejectsBadMomentum) {
  EXPECT_THROW(MovingAverageObserver(1.0f), std::invalid_argument);
  EXPECT_THROW(MovingAverageObserver(-0.1f), std::invalid_argument);
}

TEST(ObserverTest, QParamsBeforeObservationAreUsable) {
  MinMaxObserver observer;
  const QParams qp = observer.qparams();
  EXPECT_GT(qp.scale, 0.0f);
}

TEST(ObserverTest, FactoryProducesBothKinds) {
  EXPECT_NE(dynamic_cast<MinMaxObserver*>(make_observer(ObserverKind::kMinMax).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<MovingAverageObserver*>(
                make_observer(ObserverKind::kMovingAverage).get()),
            nullptr);
}

}  // namespace
}  // namespace sesr::quant
