// Int8-plan cost accounting: the Ethos-U55 model prices the *compiled*
// integer program, and its MAC counts are validated against the op counts
// the int8 kernels actually execute (int8_conv2d_macs and friends).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/cost_model.h"
#include "hw/ethos_u55.h"
#include "models/models.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

namespace sesr::hw {
namespace {

std::vector<Tensor> calibration_batches(const Shape& shape, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < count; ++i) out.push_back(Tensor::rand(shape, rng));
  return out;
}

std::shared_ptr<const runtime::Program> int8_plan_for(nn::Module& net,
                                                      const Shape& shape) {
  const auto artifact = quant::QuantizedModel::calibrate(
      net, shape, calibration_batches(shape, 2, 7));
  return runtime::Program::compile_int8(net, shape, artifact);
}

TEST(Int8CostTest, CollapsedSesrIntegerMacsMatchTheTrace) {
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(1);
  sesr.init_weights(rng);
  const Shape shape{1, 3, 16, 16};
  const auto plan = int8_plan_for(sesr, shape);

  const Int8PlanCost cost = summarize_int8(*plan);
  // Collapsed SESR is fully integer: every trace MAC is executed by an int8
  // kernel, nothing falls back to float.
  EXPECT_EQ(cost.integer_macs, summarize(sesr, shape).macs);
  EXPECT_EQ(cost.fallback_macs, 0);
  // Weight payload: int8 weights of every conv (= parameter count less biases).
  int64_t conv_weights = 0;
  for (const nn::LayerInfo& info : sesr.layers(shape))
    if (info.kind == nn::LayerKind::kConv2d)
      conv_weights += info.params - info.output[1];  // minus per-channel bias
  EXPECT_EQ(cost.weight_bytes, conv_weights);
}

TEST(Int8CostTest, FsrcnnDeconvStaysOnTheFallbackPath) {
  models::Fsrcnn fsrcnn(models::FsrcnnConfig::paper());
  Rng rng(2);
  fsrcnn.init_weights(rng);
  const Shape shape{1, 3, 12, 12};
  const auto plan = int8_plan_for(fsrcnn, shape);

  const Int8PlanCost cost = summarize_int8(*plan);
  int64_t deconv_macs = 0;
  for (const nn::LayerInfo& info : fsrcnn.layers(shape))
    if (info.kind == nn::LayerKind::kConvTranspose2d) deconv_macs += info.macs;
  ASSERT_GT(deconv_macs, 0);
  EXPECT_EQ(cost.fallback_macs, deconv_macs);
  EXPECT_EQ(cost.integer_macs + cost.fallback_macs, summarize(fsrcnn, shape).macs);
}

TEST(Int8CostTest, PlanLayersCarryKernelOpCounts) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(3);
  sesr.init_weights(rng);
  const Shape shape{1, 3, 8, 8};
  const auto plan = int8_plan_for(sesr, shape);

  int64_t conv_macs = 0;
  for (const nn::LayerInfo& info : int8_plan_layers(*plan))
    if (info.kind == nn::LayerKind::kConv2d) conv_macs += info.macs;
  EXPECT_EQ(conv_macs, summarize_int8(*plan).integer_macs);
}

TEST(Int8CostTest, EstimateInt8PricesTheCompiledProgram) {
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(4);
  sesr.init_weights(rng);
  const Shape shape{1, 3, 32, 32};
  const auto plan = int8_plan_for(sesr, shape);

  const EthosU55Model npu;
  const LatencyReport int8_report = npu.estimate_int8(*plan);
  const LatencyReport float_report = npu.estimate(sesr, shape);
  EXPECT_GT(int8_report.total_ms, 0.0);
  // Same MAC-array work plus explicit quantise/dequantise DMA passes: the
  // int8 program cannot be cheaper than the structural estimate, and the
  // boundary overhead stays small.
  EXPECT_GE(int8_report.total_cycles, float_report.total_cycles);
  EXPECT_LT(int8_report.total_ms, float_report.total_ms * 1.5);
}

TEST(Int8CostTest, RejectsFloatPlansAndBatches) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(5);
  sesr.init_weights(rng);
  const auto float_plan = runtime::Program::compile(sesr, {1, 3, 8, 8});
  EXPECT_THROW(static_cast<void>(summarize_int8(*float_plan)), std::invalid_argument);

  const Shape batched{2, 3, 8, 8};
  const auto artifact = quant::QuantizedModel::calibrate(
      sesr, batched, calibration_batches(batched, 2, 6));
  const auto batched_plan = runtime::Program::compile_int8(sesr, batched, artifact);
  EXPECT_THROW(static_cast<void>(summarize_int8(*batched_plan)), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::hw
