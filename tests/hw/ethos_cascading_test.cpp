// Cascading behaviour of the Ethos-U55 model (the Vela block-streaming
// approximation that separates the classifier estimate from the SR one).
#include <gtest/gtest.h>

#include "hw/ethos_u55.h"
#include "models/classifiers.h"
#include "models/model_zoo.h"

namespace sesr::hw {
namespace {

TEST(EthosCascadingTest, CascadingOnlyAffectsBottleneckTopologies) {
  // Plain-conv SR networks contain no 1x1 expansion/projection pairs or
  // depthwise stages: toggling cascading must not change their latency.
  EthosU55Config with;
  EthosU55Config without;
  without.model_cascading = false;
  auto sesr_net = models::sr_model("SESR-M2").make_paper_scale();
  const auto layers = sesr_net->layers({1, 3, 64, 64});
  EXPECT_EQ(EthosU55Model(with).estimate(layers).total_cycles,
            EthosU55Model(without).estimate(layers).total_cycles);
}

TEST(EthosCascadingTest, CascadingSpeedsUpMobileNet) {
  EthosU55Config with;
  EthosU55Config without;
  without.model_cascading = false;
  models::MobileNetV2Paper mv2(1000);
  const auto layers = mv2.layers({1, 3, 224, 224});
  EXPECT_LT(EthosU55Model(with).estimate(layers).total_cycles,
            EthosU55Model(without).estimate(layers).total_cycles);
}

TEST(EthosCascadingTest, DepthwiseChargesWeightsEvenWhenCascaded) {
  EthosU55Model npu;  // cascading on
  nn::LayerInfo dw;
  dw.kind = nn::LayerKind::kDepthwiseConv2d;
  dw.name = "dw";
  dw.input = Shape{1, 16, 8, 8};
  dw.output = Shape{1, 16, 8, 8};
  dw.kernel_h = dw.kernel_w = 3;
  dw.params = 16 * 9 + 16;
  const auto report = npu.estimate(std::vector<nn::LayerInfo>{dw});
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_EQ(report.layers[0].dma_cycles, dw.params);  // weights only, 1 B each
  EXPECT_GT(report.layers[0].compute_cycles, 0);
}

TEST(EthosCascadingTest, BandwidthScalesDmaCycles) {
  EthosU55Config slow;   // 1 B/cycle default
  EthosU55Config fast;
  fast.bytes_per_cycle = 4.0;
  nn::LayerInfo d2s;
  d2s.kind = nn::LayerKind::kDepthToSpace;
  d2s.name = "d2s";
  d2s.input = Shape{1, 12, 16, 16};
  d2s.output = Shape{1, 3, 32, 32};
  const auto slow_report = EthosU55Model(slow).estimate(std::vector<nn::LayerInfo>{d2s});
  const auto fast_report = EthosU55Model(fast).estimate(std::vector<nn::LayerInfo>{d2s});
  EXPECT_NEAR(static_cast<double>(slow_report.total_cycles) /
                  static_cast<double>(fast_report.total_cycles),
              4.0, 0.01);
}

}  // namespace
}  // namespace sesr::hw
