// Validation of the analytic cost model against the paper's Table I.
#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "models/model_zoo.h"

namespace sesr::hw {
namespace {

struct TableOneRow {
  const char* label;
  double paper_macs;       // 299x299 -> 598x598, RGB
  double tolerance;        // relative
};

class TableOneSweep : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(TableOneSweep, MacsMatchPaper) {
  const auto& row = GetParam();
  auto net = models::sr_model(row.label).make_paper_scale();
  const NetworkCost cost = summarize(*net, {1, 3, 299, 299});
  EXPECT_NEAR(static_cast<double>(cost.macs) / row.paper_macs, 1.0, row.tolerance) << row.label;
}

INSTANTIATE_TEST_SUITE_P(
    Rows, TableOneSweep,
    ::testing::Values(TableOneRow{"FSRCNN", 5.82e9, 0.01},
                      TableOneRow{"SESR-M2", 0.948e9, 0.01},
                      TableOneRow{"SESR-M3", 1.154e9, 0.01},
                      TableOneRow{"SESR-M5", 1.566e9, 0.01},
                      TableOneRow{"SESR-XL", 10.13e9, 0.01},
                      // EDSR rows: the paper counted only head+body (see
                      // EXPERIMENTS.md); our full-network count is higher.
                      TableOneRow{"EDSR-base", 106e9, 0.20},
                      TableOneRow{"EDSR", 3400e9, 0.10}),
    [](const ::testing::TestParamInfo<TableOneRow>& info) {
      std::string name = info.param.label;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(CostModelTest, ParamsAndMacsSumOverLayers) {
  auto net = models::sr_model("SESR-M2").make_paper_scale();
  const NetworkCost cost = summarize(*net, {1, 3, 16, 16});
  int64_t macs = 0, params = 0;
  for (const auto& info : cost.layers) {
    macs += info.macs;
    params += info.params;
  }
  EXPECT_EQ(cost.macs, macs);
  EXPECT_EQ(cost.params, params);
  EXPECT_EQ(params, net->num_params());  // trace and live parameters agree
}

TEST(CostModelTest, MacsScaleQuadraticallyWithResolution) {
  auto net = models::sr_model("SESR-M2").make_paper_scale();
  const int64_t at16 = summarize(*net, {1, 3, 16, 16}).macs;
  const int64_t at32 = summarize(*net, {1, 3, 32, 32}).macs;
  EXPECT_NEAR(static_cast<double>(at32) / static_cast<double>(at16), 4.0, 0.01);
}

TEST(CostModelTest, HumanCountFormatting) {
  EXPECT_EQ(human_count(948e6), "948M");
  EXPECT_EQ(human_count(5.82e9), "5.82B");
  EXPECT_EQ(human_count(3.4e12), "3.4T");
  EXPECT_EQ(human_count(24336), "24.34K");
  EXPECT_EQ(human_count(42), "42");
}

}  // namespace
}  // namespace sesr::hw
