// The Ethos-U55 latency model against the paper's Table IV regime.
#include <gtest/gtest.h>

#include "hw/ethos_u55.h"
#include "models/model_zoo.h"
#include "models/classifiers.h"

namespace sesr::hw {
namespace {

double sr_latency_ms(const char* label) {
  auto net = models::sr_model(label).make_paper_scale();
  return EthosU55Model().estimate(*net, {1, 3, 299, 299}).total_ms;
}

TEST(EthosU55Test, TableFourSrLatenciesInPaperRegime) {
  // Paper Table IV: FSRCNN 143.73 ms, SESR-M5 26.76, M3 22.38, M2 20.19.
  // The analytic model must land within ~25% of each.
  EXPECT_NEAR(sr_latency_ms("FSRCNN") / 143.73, 1.0, 0.25);
  EXPECT_NEAR(sr_latency_ms("SESR-M5") / 26.76, 1.0, 0.25);
  EXPECT_NEAR(sr_latency_ms("SESR-M3") / 22.38, 1.0, 0.25);
  EXPECT_NEAR(sr_latency_ms("SESR-M2") / 20.19, 1.0, 0.25);
}

TEST(EthosU55Test, SrLatencyOrderingMatchesPaper) {
  EXPECT_LT(sr_latency_ms("SESR-M2"), sr_latency_ms("SESR-M3"));
  EXPECT_LT(sr_latency_ms("SESR-M3"), sr_latency_ms("SESR-M5"));
  EXPECT_LT(sr_latency_ms("SESR-M5"), sr_latency_ms("FSRCNN"));
}

TEST(EthosU55Test, EndToEndFpsRatioIsNearlyThreeTimes) {
  // The paper's headline claim: SESR-M2 end-to-end (classification + SR)
  // achieves ~3x the FPS of FSRCNN (paper: 15.06 vs 5.26 = 2.86x).
  models::MobileNetV2Paper mv2(1000);
  EthosU55Model npu;
  const double cls_ms = npu.estimate(mv2, {1, 3, 598, 598}).total_ms;
  const double fps_m2 = 1e3 / (cls_ms + sr_latency_ms("SESR-M2"));
  const double fps_fsrcnn = 1e3 / (cls_ms + sr_latency_ms("FSRCNN"));
  EXPECT_GT(fps_m2 / fps_fsrcnn, 2.3);
  EXPECT_LT(fps_m2 / fps_fsrcnn, 4.0);
}

TEST(EthosU55Test, EffectiveThroughputIsRealistic) {
  // Effective GMAC/s on the SR workloads must sit well below the 256 GMAC/s
  // peak (the paper's numbers imply ~40-50).
  auto net = models::sr_model("FSRCNN").make_paper_scale();
  EthosU55Model npu;
  const auto report = npu.estimate(*net, {1, 3, 299, 299});
  const double gmacs = 5.82;  // Table I
  const double gmac_per_s = gmacs / (report.total_ms / 1e3);
  EXPECT_GT(gmac_per_s, 20.0);
  EXPECT_LT(gmac_per_s, 100.0);
}

TEST(EthosU55Test, HalfSizedArrayIsSlower) {
  auto net = models::sr_model("SESR-M2").make_paper_scale();
  const double full = EthosU55Model(EthosU55Config::u55_256())
                          .estimate(*net, {1, 3, 299, 299}).total_ms;
  const double half = EthosU55Model(EthosU55Config::u55_128())
                          .estimate(*net, {1, 3, 299, 299}).total_ms;
  EXPECT_GT(half, full);
}

TEST(EthosU55Test, ActivationLayersAreFree) {
  EthosU55Model npu;
  nn::LayerInfo act;
  act.kind = nn::LayerKind::kActivation;
  act.input = Shape{1, 16, 32, 32};
  act.output = act.input;
  const auto report = npu.estimate(std::vector<nn::LayerInfo>{act});
  EXPECT_EQ(report.total_cycles, 0);
}

TEST(EthosU55Test, RejectsBatchedTraces) {
  auto net = models::sr_model("SESR-M2").make_paper_scale();
  EthosU55Model npu;
  EXPECT_THROW(npu.estimate(*net, {2, 3, 16, 16}), std::invalid_argument);
}

TEST(EthosU55Test, RejectsInvalidConfig) {
  EthosU55Config bad;
  bad.clock_hz = 0;
  EXPECT_THROW(EthosU55Model{bad}, std::invalid_argument);
}

TEST(EthosU55Test, FpsIsInverseLatency) {
  auto net = models::sr_model("SESR-M2").make_paper_scale();
  const auto report = EthosU55Model().estimate(*net, {1, 3, 299, 299});
  EXPECT_NEAR(report.fps * report.total_ms, 1000.0, 1e-6);
}

}  // namespace
}  // namespace sesr::hw
