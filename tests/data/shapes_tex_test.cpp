#include <gtest/gtest.h>

#include "data/shapes_tex.h"

namespace sesr::data {
namespace {

TEST(ShapesTexTest, SamplesAreDeterministic) {
  ShapesTexDataset a({.image_size = 32, .seed = 7});
  ShapesTexDataset b({.image_size = 32, .seed = 7});
  const Sample sa = a.get(123);
  const Sample sb = b.get(123);
  EXPECT_EQ(sa.label, sb.label);
  EXPECT_EQ(sa.image.max_abs_diff(sb.image), 0.0f);
}

TEST(ShapesTexTest, DifferentSeedsDiffer) {
  ShapesTexDataset a({.seed = 1});
  ShapesTexDataset b({.seed = 2});
  EXPECT_GT(a.get(0).image.max_abs_diff(b.get(0).image), 0.01f);
}

TEST(ShapesTexTest, LabelsAreBalancedRoundRobin) {
  ShapesTexDataset ds({.num_classes = 10});
  for (int64_t i = 0; i < 30; ++i) EXPECT_EQ(ds.get(i).label, i % 10);
}

TEST(ShapesTexTest, PixelsInUnitRange) {
  ShapesTexDataset ds({.image_size = 32});
  for (int64_t i = 0; i < 20; ++i) {
    const Sample s = ds.get(i);
    EXPECT_GE(s.image.min(), 0.0f);
    EXPECT_LE(s.image.max(), 1.0f);
  }
}

TEST(ShapesTexTest, ImagesHaveForegroundBackgroundContrast) {
  // Every image must have meaningful variance — a degenerate generator would
  // produce flat images that nothing can learn from.
  ShapesTexDataset ds({.image_size = 32});
  for (int64_t i = 0; i < 20; ++i) {
    const Sample s = ds.get(i);
    const float mean = s.image.mean();
    float var = 0.0f;
    for (int64_t j = 0; j < s.image.numel(); ++j) {
      const float d = s.image[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(s.image.numel());
    EXPECT_GT(var, 1e-3f) << "sample " << i;
  }
}

TEST(ShapesTexTest, SameIndexDifferentSamplesWithinClassVary) {
  // Index i and i + num_classes share a label but must differ (jitter).
  ShapesTexDataset ds({.num_classes = 10});
  const Sample a = ds.get(3);
  const Sample b = ds.get(13);
  EXPECT_EQ(a.label, b.label);
  EXPECT_GT(a.image.max_abs_diff(b.image), 0.05f);
}

TEST(ShapesTexTest, BatchingMatchesSingleSamples) {
  ShapesTexDataset ds({.image_size = 16});
  const Tensor batch = ds.images(5, 3);
  ASSERT_EQ(batch.shape(), Shape({3, 3, 16, 16}));
  const Sample s6 = ds.get(6);
  for (int64_t i = 0; i < s6.image.numel(); ++i)
    EXPECT_EQ(batch[s6.image.numel() + i], s6.image[i]);

  const auto labels = ds.labels(5, 3);
  EXPECT_EQ(labels, (std::vector<int64_t>{5, 6, 7}));
}

TEST(ShapesTexTest, IndexedBatching) {
  ShapesTexDataset ds({.image_size = 16});
  const std::vector<int64_t> idx = {11, 2, 7};
  const Tensor batch = ds.images_at(idx);
  EXPECT_EQ(batch.dim(0), 3);
  EXPECT_EQ(ds.labels_at(idx), (std::vector<int64_t>{1, 2, 7}));
}

TEST(ShapesTexTest, InvalidOptionsRejected) {
  EXPECT_THROW(ShapesTexDataset({.image_size = 4}), std::invalid_argument);
  EXPECT_THROW(ShapesTexDataset({.num_classes = 1}), std::invalid_argument);
  EXPECT_THROW(ShapesTexDataset({.num_classes = 11}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::data
