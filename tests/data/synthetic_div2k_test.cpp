#include <gtest/gtest.h>

#include "data/metrics.h"
#include "data/synthetic_div2k.h"
#include "preprocess/interpolation.h"

namespace sesr::data {
namespace {

TEST(SyntheticDiv2kTest, PairsHaveConsistentShapes) {
  SyntheticDiv2k ds({.hr_size = 32, .scale = 2});
  const SrPair pair = ds.get(0);
  EXPECT_EQ(pair.hr.shape(), Shape({3, 32, 32}));
  EXPECT_EQ(pair.lr.shape(), Shape({3, 16, 16}));
}

TEST(SyntheticDiv2kTest, Deterministic) {
  SyntheticDiv2k a({.seed = 9}), b({.seed = 9});
  EXPECT_EQ(a.get(42).hr.max_abs_diff(b.get(42).hr), 0.0f);
}

TEST(SyntheticDiv2kTest, LrIsBicubicDownscaleOfHr) {
  SyntheticDiv2k ds({.hr_size = 32, .scale = 2});
  const SrPair pair = ds.get(5);
  const Tensor expected = preprocess::downscale(
      pair.hr.reshaped({1, 3, 32, 32}), 2, preprocess::InterpolationKind::kBicubic);
  EXPECT_EQ(pair.lr.reshaped({1, 3, 16, 16}).max_abs_diff(expected), 0.0f);
}

TEST(SyntheticDiv2kTest, PatchesContainHighFrequencyDetail) {
  // The point of the dataset: bicubic upscale of LR must NOT perfectly
  // reconstruct HR (there is detail for an SR model to learn).
  SyntheticDiv2k ds({.hr_size = 32, .scale = 2});
  double mean_psnr = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    const SrPair pair = ds.get(i);
    const Tensor up = preprocess::upscale(pair.lr.reshaped({1, 3, 16, 16}), 2,
                                          preprocess::InterpolationKind::kBicubic);
    mean_psnr += psnr(up, pair.hr.reshaped({1, 3, 32, 32}));
  }
  mean_psnr /= 10.0;
  EXPECT_LT(mean_psnr, 40.0);  // not trivially reconstructible
  EXPECT_GT(mean_psnr, 15.0);  // but correlated (natural-image-like)
}

TEST(SyntheticDiv2kTest, PixelsInUnitRange) {
  SyntheticDiv2k ds({.hr_size = 32});
  for (int64_t i = 0; i < 10; ++i) {
    const SrPair pair = ds.get(i);
    EXPECT_GE(pair.hr.min(), 0.0f);
    EXPECT_LE(pair.hr.max(), 1.0f);
  }
}

TEST(SyntheticDiv2kTest, BatchStacksPairs) {
  SyntheticDiv2k ds({.hr_size = 16, .scale = 2});
  const auto batch = ds.batch(3, 4);
  EXPECT_EQ(batch.lr.shape(), Shape({4, 3, 8, 8}));
  EXPECT_EQ(batch.hr.shape(), Shape({4, 3, 16, 16}));
  const SrPair p4 = ds.get(4);
  for (int64_t i = 0; i < p4.hr.numel(); ++i)
    EXPECT_EQ(batch.hr[p4.hr.numel() + i], p4.hr[i]);
}

TEST(SyntheticDiv2kTest, InvalidOptionsRejected) {
  EXPECT_THROW(SyntheticDiv2k({.hr_size = 33, .scale = 2}), std::invalid_argument);
  EXPECT_THROW(SyntheticDiv2k({.hr_size = 4, .scale = 2}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::data
