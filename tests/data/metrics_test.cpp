#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.h"

namespace sesr::data {
namespace {

TEST(MetricsTest, PsnrOfIdenticalImagesIsCapped) {
  const Tensor a(Shape{3, 4, 4}, 0.5f);
  EXPECT_FLOAT_EQ(psnr(a, a), 99.0f);
}

TEST(MetricsTest, PsnrKnownValue) {
  // Uniform error of 0.1 -> MSE = 0.01 -> PSNR = 20 dB for peak 1.
  Tensor a(Shape{100}, 0.5f);
  Tensor b(Shape{100}, 0.6f);
  EXPECT_NEAR(psnr(a, b), 20.0f, 1e-3f);
}

TEST(MetricsTest, PsnrScalesWithPeak) {
  Tensor a(Shape{10}, 0.0f);
  Tensor b(Shape{10}, 25.5f);
  // With peak 255 an error of 25.5 is also exactly 20 dB.
  EXPECT_NEAR(psnr(a, b, 255.0f), 20.0f, 1e-3f);
}

TEST(MetricsTest, PsnrRejectsShapeMismatch) {
  EXPECT_THROW((void)psnr(Tensor({3}), Tensor({4})), std::invalid_argument);
}

TEST(MetricsTest, AccuracyPercent) {
  EXPECT_FLOAT_EQ(accuracy_percent({1, 2, 3, 4}, {1, 2, 0, 4}), 75.0f);
  EXPECT_FLOAT_EQ(accuracy_percent({0}, {0}), 100.0f);
  EXPECT_FLOAT_EQ(accuracy_percent({0}, {1}), 0.0f);
}

TEST(MetricsTest, AccuracyRejectsBadInput) {
  EXPECT_THROW(accuracy_percent({}, {}), std::invalid_argument);
  EXPECT_THROW(accuracy_percent({1, 2}, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::data
