#include <gtest/gtest.h>

#include "attacks/difgsm.h"
#include "nn/loss.h"
#include "tests/attacks/attack_test_util.h"

namespace sesr::attacks {
namespace {

using testutil::make_channel_mean_classifier;
using testutil::make_class0_batch;
using testutil::within_linf_ball;

TEST(DiFgsmTest, StaysInsideEpsilonBall) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(3, 8, 0.02f);
  DiFgsm attack;
  const Tensor adv = attack.perturb(*model, clean, {0, 0, 0});
  EXPECT_TRUE(within_linf_ball(adv, clean, attack.epsilon()));
}

TEST(DiFgsmTest, FlipsNarrowMarginSamples) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(4, 8, 0.02f);
  DiFgsm attack;
  const auto preds =
      nn::argmax_rows(model->forward(attack.perturb(*model, clean, {0, 0, 0, 0})));
  for (int64_t p : preds) EXPECT_EQ(p, 1);
}

TEST(DiFgsmTest, DeterministicForFixedSeed) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 8, 0.05f);
  DiFgsm a, b;
  EXPECT_EQ(a.perturb(*model, clean, {0, 0}).max_abs_diff(b.perturb(*model, clean, {0, 0})),
            0.0f);
}

TEST(DiFgsmTest, DiversityProbabilityZeroEqualsMomentumIfgsm) {
  // With diversity off, two instances with different seeds must agree —
  // proving the only stochastic element is the input transform.
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 8, 0.05f);
  DiFgsmOptions o1;
  o1.diversity_prob = 0.0f;
  o1.seed = 1;
  DiFgsmOptions o2 = o1;
  o2.seed = 999;
  DiFgsm a(o1), b(o2);
  EXPECT_EQ(a.perturb(*model, clean, {0, 0}).max_abs_diff(b.perturb(*model, clean, {0, 0})),
            0.0f);
}

TEST(DiFgsmTest, AlwaysDiverseStillWorks) {
  // diversity_prob = 1: every step goes through the resize-pad transform; the
  // attack must still move the prediction on narrow margins.
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(4, 10, 0.01f);
  DiFgsmOptions opts;
  opts.diversity_prob = 1.0f;
  DiFgsm attack(opts);
  const Tensor adv = attack.perturb(*model, clean, {0, 0, 0, 0});
  const float adv_loss = nn::cross_entropy_loss(model->forward(adv), {0, 0, 0, 0}).value;
  const float clean_loss = nn::cross_entropy_loss(model->forward(clean), {0, 0, 0, 0}).value;
  EXPECT_GT(adv_loss, clean_loss);
  EXPECT_TRUE(within_linf_ball(adv, clean, attack.epsilon()));
}

TEST(DiFgsmTest, NameMatchesTableHeader) { EXPECT_EQ(DiFgsm().name(), "DI2FGSM"); }

}  // namespace
}  // namespace sesr::attacks
