#include <gtest/gtest.h>

#include "attacks/apgd.h"
#include "attacks/pgd.h"
#include "nn/loss.h"
#include "tests/attacks/attack_test_util.h"

namespace sesr::attacks {
namespace {

using testutil::make_channel_mean_classifier;
using testutil::make_class0_batch;
using testutil::within_linf_ball;

TEST(ApgdTest, StaysInsideEpsilonBall) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(3, 8, 0.02f);
  Apgd attack;
  const Tensor adv = attack.perturb(*model, clean, {0, 0, 0});
  EXPECT_TRUE(within_linf_ball(adv, clean, attack.epsilon()));
}

TEST(ApgdTest, FlipsNarrowMarginSamples) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(4, 8, 0.02f);
  Apgd attack;
  const auto preds =
      nn::argmax_rows(model->forward(attack.perturb(*model, clean, {0, 0, 0, 0})));
  for (int64_t p : preds) EXPECT_EQ(p, 1);
}

TEST(ApgdTest, DeterministicForFixedSeed) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 8, 0.05f);
  Apgd a, b;
  EXPECT_EQ(a.perturb(*model, clean, {0, 0}).max_abs_diff(b.perturb(*model, clean, {0, 0})),
            0.0f);
}

TEST(ApgdTest, AtLeastAsStrongAsPgdOnNonlinearModel) {
  auto net = std::make_unique<nn::Sequential>("kinked");
  auto& conv = net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 4,
                                                      .kernel = 3});
  net->add<nn::ReLU>();
  net->add<nn::GlobalAvgPool>();
  auto& fc = net->add<nn::Linear>(4, 2, false);
  Rng rng(33);
  for (float& v : conv.weight().value.flat()) v = rng.normal(0.0f, 0.4f);
  for (float& v : fc.weight().value.flat()) v = rng.normal(0.0f, 1.0f);

  const Tensor clean = make_class0_batch(4, 8, 0.05f);
  const std::vector<int64_t> labels = {0, 0, 0, 0};
  auto loss_of = [&](const Tensor& x) {
    return nn::cross_entropy_loss(net->forward(x), labels).value;
  };

  PgdOptions popts;
  popts.steps = 10;
  Pgd pgd(popts);
  ApgdOptions aopts;
  aopts.steps = 20;
  Apgd apgd(aopts);
  // APGD's budget-adaptive schedule should do at least comparably; allow a
  // small slack since the objectives are stochastic (random starts).
  EXPECT_GE(loss_of(apgd.perturb(*net, clean, labels)),
            0.9f * loss_of(pgd.perturb(*net, clean, labels)));
}

TEST(ApgdTest, BestIterateIsReturnedNotLast) {
  // On the linear model the per-sample best tracking must never return a
  // point with lower loss than the plain one-step projection.
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(1, 4, 0.1f);
  Apgd attack;
  const Tensor adv = attack.perturb(*model, clean, {0});
  const float adv_loss = nn::cross_entropy_loss(model->forward(adv), {0}).value;
  const float clean_loss = nn::cross_entropy_loss(model->forward(clean), {0}).value;
  EXPECT_GT(adv_loss, clean_loss);
}

TEST(ApgdTest, NameMatchesTableHeader) { EXPECT_EQ(Apgd().name(), "APGD"); }

}  // namespace
}  // namespace sesr::attacks
