// Shared fixture for attack tests: a tiny, analytically understood
// classifier. Logits are linear in the channel means:
//   logit_0 = mean(red), logit_1 = mean(green)
// so the decision boundary, margins, and the optimal L-inf perturbation are
// all known in closed form.
#pragma once

#include <memory>
#include <vector>

#include "nn/nn.h"

namespace sesr::attacks::testutil {

inline std::unique_ptr<nn::Sequential> make_channel_mean_classifier() {
  auto net = std::make_unique<nn::Sequential>("channel_mean");
  net->add<nn::GlobalAvgPool>();
  auto& fc = net->add<nn::Linear>(3, 2, /*bias=*/false);
  fc.weight().value = Tensor(Shape{2, 3}, std::vector<float>{1, 0, 0,   // logit 0 = red mean
                                                             0, 1, 0}); // logit 1 = green mean
  return net;
}

/// Batch of n images labelled 0 whose red mean exceeds green mean by `margin`.
inline Tensor make_class0_batch(int64_t n, int64_t size, float margin) {
  Tensor x({n, 3, size, size}, 0.5f);
  const int64_t plane = size * size;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < plane; ++j) {
      x[i * 3 * plane + j] = 0.5f + margin / 2;          // red
      x[i * 3 * plane + plane + j] = 0.5f - margin / 2;  // green
    }
  return x;
}

/// True iff every element of `adv` is within eps of `clean` and in [0, 1].
inline bool within_linf_ball(const Tensor& adv, const Tensor& clean, float eps) {
  for (int64_t i = 0; i < adv.numel(); ++i) {
    if (std::abs(adv[i] - clean[i]) > eps + 1e-5f) return false;
    if (adv[i] < -1e-6f || adv[i] > 1.0f + 1e-6f) return false;
  }
  return true;
}

}  // namespace sesr::attacks::testutil
