#include <gtest/gtest.h>

#include "attacks/fgsm.h"
#include "attacks/pgd.h"
#include "nn/loss.h"
#include "tests/attacks/attack_test_util.h"

namespace sesr::attacks {
namespace {

using testutil::make_channel_mean_classifier;
using testutil::make_class0_batch;
using testutil::within_linf_ball;

TEST(PgdTest, StaysInsideEpsilonBall) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(3, 8, 0.02f);
  Pgd attack;
  const Tensor adv = attack.perturb(*model, clean, {0, 0, 0});
  EXPECT_TRUE(within_linf_ball(adv, clean, attack.epsilon()));
}

TEST(PgdTest, ReachesBallBoundaryOnLinearModel) {
  // On a linear model the loss is monotone in the perturbation, so iterated
  // PGD with enough steps must saturate the red channel at -eps.
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(1, 4, 0.1f);
  PgdOptions opts;
  opts.steps = 20;
  opts.random_start = false;
  Pgd attack(opts);
  const Tensor adv = attack.perturb(*model, clean, {0});
  EXPECT_NEAR(adv[0], clean[0] - opts.epsilon, 1e-4f);
}

TEST(PgdTest, FlipsNarrowMarginAndNotWideMargin) {
  auto model = make_channel_mean_classifier();
  Pgd attack;
  {
    const Tensor clean = make_class0_batch(2, 8, 0.02f);
    const auto preds = nn::argmax_rows(model->forward(attack.perturb(*model, clean, {0, 0})));
    for (int64_t p : preds) EXPECT_EQ(p, 1);
  }
  {
    const Tensor clean = make_class0_batch(2, 8, 0.5f);
    const auto preds = nn::argmax_rows(model->forward(attack.perturb(*model, clean, {0, 0})));
    for (int64_t p : preds) EXPECT_EQ(p, 0);
  }
}

TEST(PgdTest, RandomStartIsSeededDeterministic) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 8, 0.05f);
  Pgd a, b;
  const Tensor adv_a = a.perturb(*model, clean, {0, 0});
  const Tensor adv_b = b.perturb(*model, clean, {0, 0});
  EXPECT_EQ(adv_a.max_abs_diff(adv_b), 0.0f);
}

TEST(PgdTest, StrongerThanFgsmOnNonlinearModel) {
  // Build a model with a ReLU kink so one-step FGSM is suboptimal: iterated
  // PGD must achieve at least the same loss.
  auto net = std::make_unique<nn::Sequential>("kinked");
  auto& conv = net->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 3,
                                                      .kernel = 3});
  net->add<nn::ReLU>();
  net->add<nn::GlobalAvgPool>();
  auto& fc = net->add<nn::Linear>(3, 2, false);
  Rng rng(21);
  for (float& v : conv.weight().value.flat()) v = rng.normal(0.0f, 0.4f);
  for (float& v : fc.weight().value.flat()) v = rng.normal(0.0f, 1.0f);

  const Tensor clean = make_class0_batch(4, 8, 0.05f);
  const std::vector<int64_t> labels = {0, 0, 0, 0};

  auto loss_of = [&](const Tensor& x) {
    return nn::cross_entropy_loss(net->forward(x), labels).value;
  };

  Fgsm fgsm;
  PgdOptions opts;
  opts.steps = 20;
  Pgd pgd(opts);
  const float fgsm_loss = loss_of(fgsm.perturb(*net, clean, labels));
  const float pgd_loss = loss_of(pgd.perturb(*net, clean, labels));
  EXPECT_GE(pgd_loss, fgsm_loss - 1e-3f);
}

}  // namespace
}  // namespace sesr::attacks
