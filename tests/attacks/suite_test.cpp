#include <gtest/gtest.h>

#include "attacks/attacks.h"

namespace sesr::attacks {
namespace {

TEST(StandardSuiteTest, ContainsPaperAttacksInTableOrder) {
  const auto suite = standard_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0]->name(), "FGSM");
  EXPECT_EQ(suite[1]->name(), "PGD");
  EXPECT_EQ(suite[2]->name(), "APGD");
  EXPECT_EQ(suite[3]->name(), "DI2FGSM");
}

TEST(StandardSuiteTest, EpsilonPropagates) {
  const float eps = 4.0f / 255.0f;
  for (const auto& attack : standard_suite(eps)) EXPECT_FLOAT_EQ(attack->epsilon(), eps);
}

TEST(StandardSuiteTest, DefaultEpsilonIsPaperBudget) {
  for (const auto& attack : standard_suite())
    EXPECT_FLOAT_EQ(attack->epsilon(), 8.0f / 255.0f);
}

TEST(ProjectLinfTest, ClampsToBallAndUnitRange) {
  Tensor reference(Shape{4}, std::vector<float>{0.0f, 0.5f, 1.0f, 0.98f});
  Tensor x(Shape{4}, std::vector<float>{0.5f, 0.4f, 0.5f, 1.5f});
  project_linf_(x, reference, 0.1f);
  EXPECT_FLOAT_EQ(x[0], 0.1f);   // clipped to ball upper edge
  EXPECT_FLOAT_EQ(x[1], 0.4f);   // inside the ball: untouched
  EXPECT_FLOAT_EQ(x[2], 0.9f);   // ball lower edge
  EXPECT_FLOAT_EQ(x[3], 1.0f);   // [0,1] range wins over ball edge 1.08
}

TEST(InputGradientTest, PerSampleLossesMatchBatchMean) {
  nn::Sequential net("probe");
  net.add<nn::GlobalAvgPool>();
  auto& fc = net.add<nn::Linear>(3, 2, false);
  Rng rng(3);
  for (float& v : fc.weight().value.flat()) v = rng.normal();

  const Tensor x = Tensor::rand({4, 3, 4, 4}, rng);
  const std::vector<int64_t> labels = {0, 1, 0, 1};
  const LossGradient lg = input_gradient(net, x, labels);
  ASSERT_EQ(lg.per_sample_loss.size(), 4u);
  float mean = 0.0f;
  for (float v : lg.per_sample_loss) mean += v;
  mean /= 4.0f;
  EXPECT_NEAR(mean, lg.loss, 1e-5f);
  EXPECT_EQ(lg.grad.shape(), x.shape());
}

}  // namespace
}  // namespace sesr::attacks
