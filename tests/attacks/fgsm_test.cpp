#include <gtest/gtest.h>

#include "attacks/fgsm.h"
#include "nn/loss.h"
#include "tests/attacks/attack_test_util.h"

namespace sesr::attacks {
namespace {

using testutil::make_channel_mean_classifier;
using testutil::make_class0_batch;
using testutil::within_linf_ball;

TEST(FgsmTest, StaysInsideEpsilonBall) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(4, 8, 0.02f);
  Fgsm attack(8.0f / 255.0f);
  const Tensor adv = attack.perturb(*model, clean, {0, 0, 0, 0});
  EXPECT_TRUE(within_linf_ball(adv, clean, attack.epsilon()));
}

TEST(FgsmTest, FlipsNarrowMarginSamples) {
  // Margin 0.02 < 2 * eps: FGSM pushes red down and green up by eps each,
  // flipping the prediction.
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(4, 8, 0.02f);
  const std::vector<int64_t> labels = {0, 0, 0, 0};
  EXPECT_EQ(nn::argmax_rows(model->forward(clean)), labels);

  Fgsm attack(8.0f / 255.0f);
  const Tensor adv = attack.perturb(*model, clean, labels);
  const auto preds = nn::argmax_rows(model->forward(adv));
  for (int64_t p : preds) EXPECT_EQ(p, 1);
}

TEST(FgsmTest, CannotFlipWideMarginSamples) {
  // Margin 0.5 >> 2 * eps: the attack must fail (robustness lower bound).
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 8, 0.5f);
  Fgsm attack(8.0f / 255.0f);
  const Tensor adv = attack.perturb(*model, clean, {0, 0});
  const auto preds = nn::argmax_rows(model->forward(adv));
  for (int64_t p : preds) EXPECT_EQ(p, 0);
}

TEST(FgsmTest, PerturbationFollowsGradientSign) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(1, 4, 0.1f);
  Fgsm attack(0.01f);
  const Tensor adv = attack.perturb(*model, clean, {0});
  // CE gradient for label 0: red channel gradient negative-loss direction ->
  // adv red decreases, green increases, blue moves by the softmax asymmetry.
  EXPECT_LT(adv[0], clean[0]);              // red decreased
  const int64_t plane = 16;
  EXPECT_GT(adv[plane], clean[plane]);      // green increased
}

TEST(FgsmTest, ZeroEpsilonIsIdentity) {
  auto model = make_channel_mean_classifier();
  const Tensor clean = make_class0_batch(2, 4, 0.1f);
  Fgsm attack(0.0f);
  EXPECT_EQ(attack.perturb(*model, clean, {0, 0}).max_abs_diff(clean), 0.0f);
}

TEST(FgsmTest, NameMatchesTableHeader) { EXPECT_EQ(Fgsm().name(), "FGSM"); }

}  // namespace
}  // namespace sesr::attacks
