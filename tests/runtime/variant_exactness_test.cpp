// Whole-network cross-variant exactness: every SIMD tier this machine
// supports produces bit-identical outputs for every zoo network, in both
// precisions. Int8 is exact by integer associativity; fp32 by the fixed
// lane-order / no-FMA contract (src/tensor/simd/dispatch.h) — the invariant
// the distributed tier's cross-process bit-identity check stands on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "models/model_zoo.h"
#include "quant/quantized_model.h"
#include "runtime/jit/jit.h"
#include "runtime/program.h"
#include "runtime/session.h"
#include "tensor/rng.h"
#include "tensor/simd/dispatch.h"
#include "tests/support/fault_injection.h"

namespace sesr::runtime {
namespace {

using testsupport::ScopedEnv;

std::vector<Tensor> calibration_batches(const Shape& shape, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < count; ++i) out.push_back(Tensor::rand(shape, rng));
  return out;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << ": output bits diverge from the scalar tier";
}

/// Compile + run `net` once per supported tier (pinned via the env knob the
/// variant-selection pass reads at compile time) and demand bitwise-equal
/// outputs. `compile` abstracts fp32 vs int8 plan construction.
template <typename Compile>
void expect_all_tiers_bitwise_equal(const std::string& label, const Compile& compile,
                                    const Tensor& probe) {
  Tensor reference;
  for (const simd::KernelVariant v : simd::supported_variants()) {
    ScopedEnv pin("SESR_KERNEL_VARIANT", simd::variant_name(v));
    const std::shared_ptr<const Program> plan = compile();
    EXPECT_EQ(plan->kernel_variant(), v) << label;
    EXPECT_TRUE(plan->kernel_variant_forced()) << label;
    Session session(plan);
    const Tensor out = session.run(probe);
    if (v == simd::KernelVariant::kScalar)
      reference = out;
    else
      expect_bitwise_equal(reference, out,
                           label + " on " + simd::variant_name(v));
  }
}

TEST(VariantExactness, Fp32ZooNetsAreBitIdenticalAcrossTiers) {
  const Shape shape{1, 3, 16, 16};
  Rng probe_rng(71);
  const Tensor probe = Tensor::rand(shape, probe_rng);
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto net = spec.make_repo_scale();
    Rng rng(72);
    net->init_weights(rng);
    expect_all_tiers_bitwise_equal(
        spec.label, [&] { return Program::compile(*net, shape); }, probe);
  }
}

TEST(VariantExactness, Int8ZooNetsAreBitIdenticalAcrossTiers) {
  const Shape shape{1, 3, 16, 16};
  Rng probe_rng(81);
  const Tensor probe = Tensor::rand(shape, probe_rng);
  const auto batches = calibration_batches(shape, 2, 82);
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto net = spec.make_repo_scale();
    Rng rng(83);
    net->init_weights(rng);
    // One artifact serves every tier: quantisation parameters must not move
    // with the kernel variant (they are calibrated on the fp32 fake-quant
    // path, which the contract also holds bit-stable).
    const auto artifact = quant::QuantizedModel::calibrate(*net, shape, batches);
    expect_all_tiers_bitwise_equal(
        spec.label, [&] { return Program::compile_int8(*net, shape, artifact); },
        probe);
  }
}

TEST(VariantExactness, JitTierIsBitExactAcrossZoo) {
  // The copy-and-patch tier bakes shapes, strides, and quant constants into
  // patched machine code; its contract is the same as every other tier —
  // bit-identical whole-net outputs, fp32 and int8, for every zoo network.
  if (!jit::available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const Shape shape{1, 3, 16, 16};
  Rng probe_rng(101);
  const Tensor probe = Tensor::rand(shape, probe_rng);
  const auto batches = calibration_batches(shape, 2, 102);
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto net = spec.make_repo_scale();
    Rng rng(103);
    net->init_weights(rng);
    const auto artifact = quant::QuantizedModel::calibrate(*net, shape, batches);
    for (const bool int8 : {false, true}) {
      SCOPED_TRACE(int8 ? "int8" : "fp32");
      const auto compile = [&]() -> std::shared_ptr<const Program> {
        if (int8) return Program::compile_int8(*net, shape, artifact);
        return Program::compile(*net, shape);
      };
      Tensor reference;
      {
        ScopedEnv unpin("SESR_KERNEL_VARIANT", nullptr);
        Session session(compile());
        reference = session.run(probe);
      }
      ScopedEnv pin("SESR_KERNEL_VARIANT", "jit");
      const std::shared_ptr<const Program> plan = compile();
      EXPECT_EQ(plan->kernel_variant(), simd::KernelVariant::kJit);
      EXPECT_TRUE(plan->kernel_variant_forced());
      // Every int8 zoo net has at least one patchable op (a stride-1 conv 16+
      // columns wide, a rescale, or a residual add); fp32 programs have none
      // and must still compile and run under the tier (all ops fall back).
      if (int8)
        EXPECT_GT(plan->jit_ops(), 0) << plan->dump();
      else
        EXPECT_EQ(plan->jit_ops(), 0);
      Session session(plan);
      const Tensor out = session.run(probe);
      expect_bitwise_equal(reference, out,
                           std::string(spec.label) + " jit vs native");
    }
  }
}

TEST(VariantExactness, CompiledProgramsKeepTheirRecordedTier) {
  // The stamp is a compile-time snapshot: flipping the knob afterwards
  // neither retargets the program nor changes what dump() reports.
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(91);
  sesr.init_weights(rng);
  std::shared_ptr<const Program> pinned;
  {
    ScopedEnv pin("SESR_KERNEL_VARIANT", "scalar");
    pinned = Program::compile(sesr, {1, 3, 8, 8});
  }
  EXPECT_EQ(pinned->kernel_variant(), simd::KernelVariant::kScalar);
  EXPECT_TRUE(pinned->kernel_variant_forced());
  EXPECT_NE(pinned->dump().find("kernels: scalar (forced via SESR_KERNEL_VARIANT)"),
            std::string::npos)
      << pinned->dump();

  // Clear the knob explicitly: CI runs this whole suite pinned to scalar,
  // and "native" must mean "no pin" regardless of the ambient environment.
  std::shared_ptr<const Program> native;
  {
    ScopedEnv unpin("SESR_KERNEL_VARIANT", nullptr);
    native = Program::compile(sesr, {1, 3, 8, 8});
  }
  EXPECT_EQ(native->kernel_variant(), simd::best_supported());
  EXPECT_FALSE(native->kernel_variant_forced());

  // Both still run after the env changed — and still agree bitwise.
  Rng probe_rng(92);
  const Tensor probe = Tensor::rand({1, 3, 8, 8}, probe_rng);
  Session a(pinned), b(native);
  Tensor out_a = a.run(probe), out_b = b.run(probe);
  expect_bitwise_equal(out_a, out_b, "pinned-scalar vs native SESR-M5");
}

TEST(VariantExactness, DumpAnnotatesDispatchedOps) {
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(93);
  sesr.init_weights(rng);
  const auto plan = Program::compile(sesr, {1, 3, 8, 8});
  // Per-op annotations report the tier each op actually runs: under the jit
  // tier an op the compiler could not patch (every op of this fp32 program)
  // is re-stamped with the base tier, which clamp_to_supported names.
  const std::string expected =
      std::string("[") +
      simd::variant_name(simd::clamp_to_supported(plan->kernel_variant())) + "]";
  EXPECT_NE(plan->dump().find(expected), std::string::npos) << plan->dump();
}

}  // namespace
}  // namespace sesr::runtime
