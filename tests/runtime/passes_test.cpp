// The pass pipeline's contract: every optimisation is invisible in the
// numbers. Zoo-wide, fp32 and int8 programs must produce bit-identical
// outputs with passes on and off, and the arena planner must never let two
// buffers that are live at the same time share a byte.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "models/models.h"
#include "nn/nn.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

namespace sesr::runtime {
namespace {

Tensor seeded_input(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

std::vector<Tensor> calibration_batches(const Shape& shape, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int i = 0; i < count; ++i) out.push_back(Tensor::rand(shape, rng));
  return out;
}

// ---- the arena planner property: overlapping lifetimes, disjoint bytes ------

void expect_arena_sound(const Program& program, const std::string& context) {
  const std::vector<LiveInterval> intervals = compute_live_intervals(program);
  const auto& buffers = program.buffers();
  int64_t max_extent = 0;
  for (size_t i = 0; i < buffers.size(); ++i) {
    const BufferInfo& a = buffers[i];
    if (program.is_external(static_cast<int>(i))) {
      EXPECT_EQ(a.arena_offset, -1) << context << ": external buffer planned\n"
                                    << program.dump();
    }
    if (a.arena_offset < 0) continue;
    EXPECT_TRUE(intervals[i].used()) << context << ": planned but unused buffer " << i;
    EXPECT_EQ(a.arena_offset % 64, 0) << context << ": misaligned buffer " << i;
    EXPECT_LE(a.arena_offset + a.size_bytes(), program.peak_arena_bytes())
        << context << ": buffer " << i << " overruns the arena\n"
        << program.dump();
    max_extent = std::max(max_extent, a.arena_offset + a.size_bytes());
    for (size_t j = i + 1; j < buffers.size(); ++j) {
      const BufferInfo& b = buffers[j];
      if (b.arena_offset < 0) continue;
      if (!intervals[i].overlaps(intervals[j])) continue;
      const bool disjoint = a.arena_offset + a.size_bytes() <= b.arena_offset ||
                            b.arena_offset + b.size_bytes() <= a.arena_offset;
      EXPECT_TRUE(disjoint) << context << ": live-overlapping buffers " << i << " and "
                            << j << " share bytes\n"
                            << program.dump();
    }
  }
  EXPECT_LE(program.peak_arena_bytes(), program.sum_buffer_bytes()) << context;
  EXPECT_GE(program.peak_arena_bytes(), max_extent) << context;
}

TEST(ArenaPlannerTest, NoLiveOverlappingBuffersShareBytes) {
  const Shape shape{2, 3, 12, 12};
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto network = spec.make_repo_scale();
    Rng rng(7);
    network->init_weights(rng);
    for (const PassConfig& config : {PassConfig::optimized(), PassConfig::none()}) {
      expect_arena_sound(*Program::compile(*network, shape, config),
                         spec.label + (config.fuse_activations ? " (opt)" : " (raw)"));
    }
  }
}

TEST(ArenaPlannerTest, Int8ProgramsSatisfyThePropertyToo) {
  const Shape shape{1, 3, 16, 16};
  auto sesr = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  auto wrapped = std::make_unique<models::GlobalResidualSr>(
      std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper()), 2);
  Rng rng(11);
  sesr->init_weights(rng);
  wrapped->init_weights(rng);
  for (nn::Module* net : {static_cast<nn::Module*>(sesr.get()),
                          static_cast<nn::Module*>(wrapped.get())}) {
    const auto artifact =
        quant::QuantizedModel::calibrate(*net, shape, calibration_batches(shape, 2, 12));
    for (const PassConfig& config : {PassConfig::optimized(), PassConfig::none()})
      expect_arena_sound(*Program::compile_int8(*net, shape, artifact, config),
                         net->name() + " int8");
  }
}

// ---- acceptance: collapsed SESR-M5 peak drops >= 30% vs one-buffer-each ----

TEST(ArenaPlannerTest, CollapsedSesrM5PeakDropsAtLeast30Percent) {
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  Rng rng(13);
  sesr.init_weights(rng);
  const auto program = Program::compile(sesr, {1, 3, 64, 64});
  EXPECT_LE(static_cast<double>(program->peak_arena_bytes()),
            0.7 * static_cast<double>(program->sum_buffer_bytes()))
      << program->dump();

  const Shape shape{1, 3, 16, 16};
  const auto artifact =
      quant::QuantizedModel::calibrate(sesr, shape, calibration_batches(shape, 2, 14));
  const auto int8 = Program::compile_int8(sesr, {1, 3, 64, 64}, artifact);
  EXPECT_LE(static_cast<double>(int8->peak_arena_bytes()),
            0.7 * static_cast<double>(int8->sum_buffer_bytes()))
      << int8->dump();
}

// ---- bit-exactness: passes on vs off, fp32 and int8, across the zoo --------

TEST(PassPipelineTest, Fp32PassesPreserveBitExactnessZooWide) {
  const Shape shape{2, 3, 12, 12};
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto network = spec.make_repo_scale();
    Rng rng(17);
    network->init_weights(rng);
    const Tensor x = seeded_input(shape, 18);
    const Tensor reference = network->forward(x);

    const auto optimized = Program::compile(*network, shape);
    const auto raw = Program::compile(*network, shape, PassConfig::none());
    Session opt_session(optimized), raw_session(raw);
    EXPECT_EQ(reference.max_abs_diff(opt_session.run(x)), 0.0f)
        << "passes on\n" << optimized->dump();
    EXPECT_EQ(reference.max_abs_diff(raw_session.run(x)), 0.0f)
        << "passes off\n" << raw->dump();
  }
}

TEST(PassPipelineTest, Int8PassesPreserveBitExactness) {
  const Shape shape{1, 3, 16, 16};
  struct Net {
    std::string label;
    std::unique_ptr<nn::Module> net;
  };
  std::vector<Net> nets;
  {
    auto sesr = std::make_unique<models::Sesr>(models::SesrConfig::m5(),
                                               models::Sesr::Form::kInference);
    Rng rng(21);
    sesr->init_weights(rng);
    nets.push_back({"SESR-M5", std::move(sesr)});
  }
  {
    auto fsrcnn = std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper());
    Rng rng(22);
    fsrcnn->init_weights(rng);
    nets.push_back({"FSRCNN", std::move(fsrcnn)});
  }
  {
    auto edsr = std::make_unique<models::Edsr>(models::EdsrConfig::full_repo());
    Rng rng(23);
    edsr->init_weights(rng);
    nets.push_back({"EDSR", std::move(edsr)});
  }
  for (auto& [label, net] : nets) {
    SCOPED_TRACE(label);
    const auto artifact =
        quant::QuantizedModel::calibrate(*net, shape, calibration_batches(shape, 3, 24));
    const Tensor probe = seeded_input(shape, 25);
    const auto optimized = Program::compile_int8(*net, shape, artifact);
    const auto raw = Program::compile_int8(*net, shape, artifact, PassConfig::none());
    Session opt_session(optimized), raw_session(raw);
    // Fused LUT convs and in-place ops replay the standalone kernels' exact
    // integer arithmetic, so the two programs agree bit for bit.
    EXPECT_EQ(opt_session.run(probe).max_abs_diff(raw_session.run(probe)), 0.0f)
        << optimized->dump();
  }
}

// ---- the individual passes observably fire ---------------------------------

TEST(PassPipelineTest, ConvActivationPairsFuse) {
  nn::Sequential net;
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3});
  net.add<nn::ReLU>();
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 8, .out_channels = 3, .kernel = 3});
  net.add<nn::PReLU>(3);
  const Shape shape{1, 3, 8, 8};
  const auto optimized = Program::compile(net, shape);
  const auto raw = Program::compile(net, shape, PassConfig::none());
  EXPECT_EQ(optimized->stats().fused_activations, 2) << optimized->dump();
  EXPECT_EQ(raw->stats().fused_activations, 0);
  EXPECT_EQ(optimized->ops().size(), raw->ops().size() - 2);
}

TEST(PassPipelineTest, CollapsedSesrFusesEveryStagePrelu) {
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  const auto program = Program::compile(sesr, {1, 3, 16, 16});
  // Collapsed SESR-M5: head conv + 5 stage convs, each followed by PReLU.
  EXPECT_GE(program->stats().fused_activations, 5) << program->dump();
}

TEST(PassPipelineTest, PointwiseAfterNonConvRunsInPlace) {
  // GroupNorm is not fusable into a conv, so the ReLU6 behind it stays a
  // separate op — and the in-place pass aliases it onto the norm's buffer.
  nn::Sequential net;
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3});
  net.add<nn::GroupNorm>(8, 4);
  net.add<nn::ReLU6>();
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 8, .out_channels = 3, .kernel = 3});
  const auto program = Program::compile(net, {1, 3, 8, 8});
  EXPECT_GE(program->stats().in_place_elected, 1) << program->dump();
  bool saw_in_place = false;
  for (const Op& op : program->ops())
    if (op.kind == Op::Kind::kLayer && op.input == op.output) saw_in_place = true;
  EXPECT_TRUE(saw_in_place) << program->dump();
}

/// A module that emits an op nobody consumes: compile_inference runs its conv
/// twice but only returns the second result. Dead-op elimination must drop
/// the first without changing the output.
class DeadBranchNet final : public nn::Module {
 public:
  DeadBranchNet()
      : conv_(nn::Conv2dOptions{.in_channels = 3, .out_channels = 3, .kernel = 3}) {}

  Tensor forward(const Tensor& input) override { return conv_.forward(input); }
  Tensor backward(const Tensor&) override {
    throw std::logic_error("DeadBranchNet: inference only");
  }
  std::vector<nn::Parameter*> parameters() override { return conv_.parameters(); }
  [[nodiscard]] std::string name() const override { return "dead_branch"; }
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override {
    return conv_.trace(input, out);
  }
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(nn::InferenceBuilder& builder, int input) const override {
    static_cast<void>(builder.emit_layer(conv_, input));  // result never read
    return builder.emit_layer(conv_, input);
  }

 private:
  nn::Conv2d conv_;
};

TEST(PassPipelineTest, DeadOpsAreEliminated) {
  DeadBranchNet net;
  Rng rng(31);
  net.init_weights(rng);
  const Shape shape{1, 3, 8, 8};
  const auto optimized = Program::compile(net, shape);
  const auto raw = Program::compile(net, shape, PassConfig::none());
  EXPECT_EQ(raw->ops().size(), 2u);
  EXPECT_EQ(optimized->ops().size(), 1u) << optimized->dump();
  EXPECT_EQ(optimized->stats().dead_ops_removed, 1);

  const Tensor x = seeded_input(shape, 32);
  Session session(optimized);
  EXPECT_EQ(net.forward(x).max_abs_diff(session.run(x)), 0.0f);
}

TEST(PassPipelineTest, DumpDescribesBothPrecisions) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(41);
  sesr.init_weights(rng);
  const Shape shape{1, 3, 12, 12};
  const std::string fp32 = Program::compile(sesr, shape)->dump();
  EXPECT_NE(fp32.find("fp32"), std::string::npos);
  EXPECT_NE(fp32.find("arena"), std::string::npos);
  EXPECT_NE(fp32.find("conv"), std::string::npos);

  const auto artifact =
      quant::QuantizedModel::calibrate(sesr, shape, calibration_batches(shape, 2, 42));
  const std::string int8 = Program::compile_int8(sesr, shape, artifact)->dump();
  EXPECT_NE(int8.find("int8"), std::string::npos);
  EXPECT_NE(int8.find("qconv"), std::string::npos);
  EXPECT_NE(int8.find("grid"), std::string::npos);
}

}  // namespace
}  // namespace sesr::runtime
