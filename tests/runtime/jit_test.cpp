// Unit coverage of the copy-and-patch JIT tier (src/runtime/jit/):
// the W^X code-arena lifecycle, stencil patching against the generated
// tables, structural validation of (deliberately corrupted) descriptors,
// the per-op fallback ladder under the deny-list and arena-budget knobs,
// and concurrent sessions sharing one immutable JitModule — the TSan job
// runs this suite to prove the shared arena is race-free.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "models/sesr.h"
#include "quant/quantized_model.h"
#include "runtime/jit/code_arena.h"
#include "runtime/jit/jit.h"
#include "runtime/jit/stencil.h"
#include "runtime/program.h"
#include "runtime/session.h"
#include "tensor/rng.h"
#include "tensor/simd/dispatch.h"
#include "tests/support/fault_injection.h"

namespace sesr::runtime::jit {
namespace {

using testsupport::ScopedEnv;

TEST(CodeArena, TwoPhaseLifecycleEnforcesWriteXorExecute) {
  CodeArena arena;
  EXPECT_FALSE(arena.reserved());
  EXPECT_EQ(arena.alloc_code(16), nullptr);  // not reserved yet

  ASSERT_TRUE(arena.reserve(4096, 256));
  EXPECT_TRUE(arena.reserved());
  EXPECT_FALSE(arena.reserve(4096, 0));  // double-reserve refused

  unsigned char* code = arena.alloc_code(100);
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(code) % 64, 0u);
  unsigned char* data = arena.alloc_data(256);
  ASSERT_NE(data, nullptr);
  std::memset(code, 0xC3, 100);  // ret — executable garbage is fine, never run
  std::memset(data, 0, 256);

  // Second code alloc is bumped past the first, still aligned.
  unsigned char* code2 = arena.alloc_code(64);
  ASSERT_NE(code2, nullptr);
  EXPECT_GE(code2, code + 100);
  EXPECT_EQ(arena.alloc_code(1 << 20), nullptr);  // beyond the reservation

  ASSERT_TRUE(arena.finalize());
  EXPECT_TRUE(arena.finalized());
  // Immutable from here: no further allocation, no way back to writable.
  EXPECT_EQ(arena.alloc_code(16), nullptr);
  EXPECT_EQ(arena.alloc_data(16), nullptr);
  EXPECT_TRUE(arena.contains_code(code));
  EXPECT_TRUE(arena.contains_code(code2));
  EXPECT_FALSE(arena.contains_code(data));
  EXPECT_FALSE(arena.contains_code(&arena));
}

/// The scalar lut256 stencil straight from the generated tables, bypassing
/// the deny-list (mirrors what available() probes).
const StencilDesc* scalar_lut256(const StencilSetDef** set_out) {
  size_t n = 0;
  const StencilSetDef* sets = stencil_sets(&n);
  for (size_t s = 0; s < n; ++s) {
    if (std::string(sets[s].name) != "scalar") continue;
    for (size_t i = 0; i < sets[s].stencil_count; ++i)
      if (std::strcmp(sets[s].stencils[i].name, "lut256") == 0) {
        *set_out = &sets[s];
        return &sets[s].stencils[i];
      }
  }
  return nullptr;
}

TEST(PatchStencil, PatchedLut256MatchesDirectTableLookup) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const StencilSetDef* set = nullptr;
  const StencilDesc* desc = scalar_lut256(&set);
  ASSERT_NE(desc, nullptr);

  CodeArena arena;
  ASSERT_TRUE(arena.reserve(desc->size, 256));
  unsigned char* table = arena.alloc_data(256);
  ASSERT_NE(table, nullptr);
  for (int i = 0; i < 256; ++i)
    table[i] = static_cast<unsigned char>((i * 7 + 3) % 256);

  constexpr int64_t kCount = 300;  // not a multiple of any vector width
  int64_t holes[kNumHoles] = {};
  holes[kHoleLutTable] = reinterpret_cast<int64_t>(table);
  holes[kHoleLutCount] = kCount;
  unsigned char* code = patch_stencil(arena, *desc, *set, holes);
  ASSERT_NE(code, nullptr);
  EXPECT_TRUE(arena.contains_code(code));
  ASSERT_TRUE(arena.finalize());

  std::vector<int8_t> in(kCount), out(kCount, 0), want(kCount);
  for (int64_t i = 0; i < kCount; ++i) {
    in[i] = static_cast<int8_t>(i * 13 - 97);
    want[i] = static_cast<int8_t>(table[static_cast<int>(in[i]) + 128]);
  }
  reinterpret_cast<LutStreamFn>(code)(in.data(), out.data());
  EXPECT_EQ(std::memcmp(out.data(), want.data(), static_cast<size_t>(kCount)), 0);
}

TEST(PatchStencil, CorruptedDescriptorsAreRejectedNotPatched) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const StencilSetDef* set = nullptr;
  const StencilDesc* real = scalar_lut256(&set);
  ASSERT_NE(real, nullptr);
  ASSERT_TRUE(validate_stencil(*real, *set));

  CodeArena arena;
  ASSERT_TRUE(arena.reserve(4096, 0));
  int64_t holes[kNumHoles] = {};

  {  // hole id out of range
    StencilDesc bad = *real;
    std::vector<StencilHole> sites(bad.holes, bad.holes + bad.hole_count);
    ASSERT_FALSE(sites.empty());
    sites[0].hole = kNumHoles;
    bad.holes = sites.data();
    EXPECT_FALSE(validate_stencil(bad, *set));
    EXPECT_EQ(patch_stencil(arena, bad, *set, holes), nullptr);
  }
  {  // patch site past the end of the code bytes
    StencilDesc bad = *real;
    std::vector<StencilHole> sites(bad.holes, bad.holes + bad.hole_count);
    sites[0].code_offset = bad.size - 4;
    bad.holes = sites.data();
    EXPECT_FALSE(validate_stencil(bad, *set));
    EXPECT_EQ(patch_stencil(arena, bad, *set, holes), nullptr);
  }
  {  // truncated code blob
    StencilDesc bad = *real;
    bad.code = nullptr;
    EXPECT_FALSE(validate_stencil(bad, *set));
    EXPECT_EQ(patch_stencil(arena, bad, *set, holes), nullptr);
  }
  {  // rodata reference pointing past the blob table
    StencilDesc bad = *real;
    StencilRodataRef ref;
    ref.code_offset = 0;
    ref.blob = static_cast<uint16_t>(set->blob_count);
    bad.rodata = &ref;
    bad.rodata_count = 1;
    EXPECT_FALSE(validate_stencil(bad, *set));
    EXPECT_EQ(patch_stencil(arena, bad, *set, holes), nullptr);
  }
  // The arena is still usable after every rejection — nothing was consumed
  // beyond the rejected attempts' bump allocations, and nothing crashed.
  EXPECT_NE(arena.alloc_code(64), nullptr);
}

/// An int8 SESR-M5 plan plus a native-tier reference output for `probe`.
struct Int8Fixture {
  std::shared_ptr<models::Sesr> net;
  std::shared_ptr<const quant::QuantizedModel> artifact;
  Shape shape{1, 3, 16, 16};
  Tensor probe;
  Tensor reference;

  Int8Fixture() {
    net = std::make_shared<models::Sesr>(models::SesrConfig::m5(),
                                         models::Sesr::Form::kInference);
    Rng rng(211);
    net->init_weights(rng);
    Rng probe_rng(212);
    probe = Tensor::rand(shape, probe_rng);
    std::vector<Tensor> batches;
    Rng cal_rng(213);
    batches.push_back(Tensor::rand(shape, cal_rng));
    artifact = std::make_shared<quant::QuantizedModel>(
        quant::QuantizedModel::calibrate(*net, shape, batches));
    ScopedEnv unpin("SESR_KERNEL_VARIANT", nullptr);
    Session session(Program::compile_int8(*net, shape, *artifact));
    reference = session.run(probe);
  }

  [[nodiscard]] std::shared_ptr<const Program> compile_jit_plan() const {
    return Program::compile_int8(*net, shape, *artifact);
  }

  void expect_matches_reference(const Tensor& out, const std::string& what) const {
    ASSERT_EQ(out.shape(), reference.shape()) << what;
    EXPECT_EQ(std::memcmp(out.data(), reference.data(),
                          static_cast<size_t>(out.numel()) * sizeof(float)),
              0)
        << what << ": diverges from the native tier";
  }
};

TEST(JitFallback, DenyListDropsStencilsPerOpWithoutLosingExactness) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const Int8Fixture fx;
  ScopedEnv pin("SESR_KERNEL_VARIANT", "jit");

  int64_t full_ops = 0;
  {
    const auto plan = fx.compile_jit_plan();
    EXPECT_EQ(plan->kernel_variant(), simd::KernelVariant::kJit);
    full_ops = plan->jit_ops();
    EXPECT_GT(full_ops, 0) << plan->dump();
    EXPECT_NE(plan->dump().find("[jit]"), std::string::npos) << plan->dump();
    Session session(plan);
    fx.expect_matches_reference(session.run(fx.probe), "jit, all stencils");
  }
  {
    // Denying every stencil must not fail compilation — every op falls back
    // to the base tier and the dump stops claiming jit'd ops.
    ScopedEnv deny("SESR_JIT_DISABLE_STENCILS", "all");
    const auto plan = fx.compile_jit_plan();
    EXPECT_EQ(plan->kernel_variant(), simd::KernelVariant::kJit);
    EXPECT_EQ(plan->jit_ops(), 0) << plan->dump();
    EXPECT_EQ(plan->jit_module(), nullptr);
    EXPECT_NE(plan->dump().find("jit: 0 ops patched"), std::string::npos);
    Session session(plan);
    fx.expect_matches_reference(session.run(fx.probe), "jit, deny all");
  }
  {
    // Partial deny: the lut256 stream falls back, the convs stay patched.
    ScopedEnv deny("SESR_JIT_DISABLE_STENCILS", "lut256");
    const auto plan = fx.compile_jit_plan();
    EXPECT_GT(plan->jit_ops(), 0) << plan->dump();
    EXPECT_LE(plan->jit_ops(), full_ops);
    Session session(plan);
    fx.expect_matches_reference(session.run(fx.probe), "jit, deny lut256");
  }
}

TEST(JitFallback, ArenaBudgetCapsCompiledOpsNotCorrectness) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const Int8Fixture fx;
  ScopedEnv pin("SESR_KERNEL_VARIANT", "jit");
  // The floor of the knob (64 KiB) holds only a few conv blocks; whatever
  // fits runs patched, the rest falls back, the output cannot change.
  ScopedEnv cap("SESR_JIT_ARENA_BYTES", "65536");
  const auto plan = fx.compile_jit_plan();
  EXPECT_EQ(plan->kernel_variant(), simd::KernelVariant::kJit);
  EXPECT_LE(plan->jit_code_bytes(), 65536) << plan->dump();
  Session session(plan);
  fx.expect_matches_reference(session.run(fx.probe), "jit, 64K arena budget");
}

TEST(JitModuleSharing, ConcurrentSessionsShareOneImmutableModule) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const Int8Fixture fx;
  ScopedEnv pin("SESR_KERNEL_VARIANT", "jit");
  const auto plan = fx.compile_jit_plan();
  ASSERT_NE(plan->jit_module(), nullptr);
  ASSERT_GT(plan->jit_ops(), 0);

  // Several sessions, one JitModule: the arena is RX-immutable, so parallel
  // execution through the same patched entry points must be race-free (the
  // TSan CI job runs exactly this) and bit-exact.
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 3;
  std::vector<Tensor> outs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      Session session(plan);
      for (int r = 0; r < kRunsPerThread; ++r) outs[static_cast<size_t>(t)] =
          session.run(fx.probe);
    });
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    fx.expect_matches_reference(outs[static_cast<size_t>(t)],
                                "concurrent session " + std::to_string(t));
}

TEST(JitModule, EntryPointsLiveInTheModulesCodeRegion) {
  if (!available()) GTEST_SKIP() << "jit tier unavailable in this build";
  const Int8Fixture fx;
  ScopedEnv pin("SESR_KERNEL_VARIANT", "jit");
  const auto plan = fx.compile_jit_plan();
  const auto& module = plan->jit_module();
  ASSERT_NE(module, nullptr);
  EXPECT_GT(module->code_bytes(), 0u);
  EXPECT_EQ(module->num_ops(), plan->jit_ops());
  EXPECT_DOUBLE_EQ(module->compile_ms(), plan->jit_compile_ms());
  for (int i = 0; i < module->num_ops(); ++i) {
    const JitOp& op = module->op(i);
    switch (op.kind) {
      case JitOp::Kind::kConv:
        ASSERT_FALSE(op.conv.blocks.empty());
        for (ConvBlockFn fn : op.conv.blocks)
          EXPECT_TRUE(module->owns_code(reinterpret_cast<const void*>(fn)));
        break;
      case JitOp::Kind::kLut:
        EXPECT_TRUE(module->owns_code(reinterpret_cast<const void*>(op.lut)));
        break;
      case JitOp::Kind::kAdd:
        EXPECT_TRUE(module->owns_code(reinterpret_cast<const void*>(op.add)));
        break;
    }
  }
}

}  // namespace
}  // namespace sesr::runtime::jit
