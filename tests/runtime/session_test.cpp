// The compiled inference runtime's core guarantee: a Session executes the
// exact same arithmetic as Module::forward — bit-identical outputs — while
// allocating nothing per call and sharing one immutable plan across
// concurrently-running sessions.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "models/models.h"
#include "nn/nn.h"
#include "runtime/runtime.h"

namespace sesr::runtime {
namespace {

Tensor seeded_input(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(shape, rng, 0.0f, 1.0f);
}

// forward() the module and run it through a fresh session twice (the second
// run exercises buffer reuse); every output must match bit for bit.
void expect_session_matches_forward(nn::Module& module, const Shape& in_shape,
                                    uint64_t seed) {
  Rng rng(seed);
  module.init_weights(rng);
  const Tensor x = seeded_input(in_shape, seed + 1);
  const Tensor reference = module.forward(x);

  ASSERT_TRUE(module.supports_compiled_inference()) << module.name();
  const auto plan = Program::compile(module, in_shape);
  EXPECT_TRUE(plan->input_shape() == in_shape);
  EXPECT_TRUE(plan->output_shape() == reference.shape());

  Session session(plan);
  const Tensor first = session.run(x);
  ASSERT_TRUE(first.shape() == reference.shape()) << module.name();
  // On mismatch, Program::dump shows the op list, buffer table and arena
  // plan the session executed — the one debug printer for both precisions.
  EXPECT_EQ(reference.max_abs_diff(first), 0.0f) << module.name() << "\n" << plan->dump();

  Tensor second(plan->output_shape());
  session.run_into(x, second);
  EXPECT_EQ(reference.max_abs_diff(second), 0.0f)
      << module.name() << " (buffer reuse)\n" << plan->dump();
}

// ---- every model-zoo SR network, deployed (repo-scale) form -----------------

TEST(SessionTest, BitExactForEveryZooNetwork) {
  for (const models::SrModelSpec& spec : models::sr_model_zoo()) {
    SCOPED_TRACE(spec.label);
    const auto network = spec.make_repo_scale();
    expect_session_matches_forward(*network, {2, 3, 12, 12}, 7);
  }
}

// ---- SESR: overparameterised training form and collapsed inference form ----

TEST(SessionTest, BitExactForSesrTrainingAndCollapsedForms) {
  for (const models::SesrConfig& config :
       {models::SesrConfig::m2(), models::SesrConfig::m5(), models::SesrConfig::xl()}) {
    models::Sesr training(config, models::Sesr::Form::kTraining);
    expect_session_matches_forward(training, {1, 3, 10, 10}, 11);

    const auto collapsed = models::Sesr::collapse_from(training);
    expect_session_matches_forward(*collapsed, {1, 3, 10, 10}, 13);
  }
}

// ---- composite coverage: global residual, residual scale, concat ------------

TEST(SessionTest, BitExactForGlobalResidualWrapper) {
  models::GlobalResidualSr wrapped(
      std::make_unique<models::Fsrcnn>(models::FsrcnnConfig::paper()), /*scale=*/2);
  expect_session_matches_forward(wrapped, {2, 3, 8, 8}, 17);
}

TEST(SessionTest, BitExactForScaledResidualBlock) {
  auto body = std::make_unique<nn::Sequential>();
  body->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 3, .kernel = 3});
  body->add<nn::ReLU>();
  body->add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 3, .kernel = 3});
  nn::Residual residual(std::move(body), nullptr, 0.1f);
  expect_session_matches_forward(residual, {2, 3, 6, 6}, 19);
}

TEST(SessionTest, BitExactForConcatBranches) {
  nn::Concat concat;
  auto& conv_branch = concat.add_branch<nn::Sequential>();
  conv_branch.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3});
  auto& pointwise_branch = concat.add_branch<nn::Sequential>();
  // A pointwise-only branch reads the pinned plan input, covering the
  // emit_pointwise copy fallback.
  pointwise_branch.add<nn::ReLU>();
  expect_session_matches_forward(concat, {2, 3, 6, 6}, 23);
}

// ---- primitive hooks with no SR-network user: Linear, GroupNorm -------------

TEST(SessionTest, BitExactForLinear) {
  nn::Linear linear(8, 5);
  expect_session_matches_forward(linear, {4, 8}, 43);
}

TEST(SessionTest, BitExactForGroupNormChain) {
  nn::Sequential net;
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3});
  net.add<nn::GroupNorm>(8, 4);
  net.add<nn::ReLU6>();
  expect_session_matches_forward(net, {2, 3, 6, 6}, 47);
}

// ---- degenerate configs fall back instead of mis-compiling ------------------

TEST(SessionTest, ZeroInnerStageSesrReportsUnsupported) {
  // m = 0 would need the long residual to double a pinned buffer in place;
  // it must advertise itself as non-compilable so callers use forward().
  models::Sesr degenerate({0, 16, 256, 2, 3}, models::Sesr::Form::kInference);
  EXPECT_FALSE(degenerate.supports_compiled_inference());
  EXPECT_THROW(static_cast<void>(runtime::Program::compile(degenerate, {1, 3, 8, 8})),
               std::invalid_argument);
}

// ---- pinning: in-place activations must not corrupt residual sources --------

TEST(SessionTest, InPlaceActivationsPreserveResidualSources) {
  // SESR's long feature residual reads the stage-0 activation output many
  // steps later; if an inner activation ran in place on that pinned buffer
  // the result would silently diverge from forward().
  models::Sesr sesr(models::SesrConfig::m5(), models::Sesr::Form::kInference);
  expect_session_matches_forward(sesr, {1, 3, 16, 16}, 29);
}

// ---- concurrency: N sessions over one shared plan ---------------------------

TEST(SessionTest, ConcurrentSessionsOverSharedPlanAreDeterministic) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(31);
  sesr.init_weights(rng);
  const Shape in_shape{1, 3, 12, 12};
  const Tensor x = seeded_input(in_shape, 37);
  const Tensor reference = sesr.forward(x);

  const auto plan = Program::compile(sesr, in_shape);
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 8;
  std::vector<float> worst(kThreads, -1.0f);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(plan);
      float w = 0.0f;
      Tensor out(plan->output_shape());
      for (int i = 0; i < kRunsPerThread; ++i) {
        session.run_into(x, out);
        w = std::max(w, reference.max_abs_diff(out));
      }
      worst[static_cast<size_t>(t)] = w;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(worst[static_cast<size_t>(t)], 0.0f);
}

// ---- plan/session contract ---------------------------------------------------

TEST(SessionTest, CompileRejectsUnsupportedModules) {
  nn::Sequential net;
  net.add<nn::Conv2d>(nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3});
  net.add<nn::MaxPool2d>(2, 2);  // no infer_into -> the chain cannot compile
  EXPECT_FALSE(net.supports_compiled_inference());
  EXPECT_THROW(static_cast<void>(Program::compile(net, {1, 3, 8, 8})),
               std::invalid_argument);
}

TEST(SessionTest, RunRejectsWrongInputShape) {
  models::Fsrcnn fsrcnn;
  Rng rng(41);
  fsrcnn.init_weights(rng);
  const auto plan = Program::compile(fsrcnn, {1, 3, 8, 8});
  Session session(plan);
  EXPECT_THROW(static_cast<void>(session.run(Tensor({1, 3, 9, 9}))), std::invalid_argument);
}

TEST(SessionTest, RunScatterMatchesRunPerSample) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  Rng rng(53);
  sesr.init_weights(rng);
  const Shape in_shape{3, 3, 8, 8};
  const Tensor x = seeded_input(in_shape, 59);
  const auto plan = Program::compile(sesr, in_shape);
  Session session(plan);
  const Tensor batched = session.run(x);

  std::vector<Tensor> per_sample(3);
  session.run_scatter(x, per_sample);
  const Shape sample{1, batched.dim(1), batched.dim(2), batched.dim(3)};
  const int64_t stride = sample.numel();
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(per_sample[static_cast<size_t>(i)].shape() == sample) << i;
    const Tensor row =
        Tensor::view(sample, const_cast<Tensor&>(batched).data() + i * stride);
    EXPECT_EQ(per_sample[static_cast<size_t>(i)].max_abs_diff(row), 0.0f) << i;
  }

  // Second scatter reuses the staging buffer; results must be unchanged and
  // the outputs must be owned copies, not aliases into the staging tensor.
  std::vector<Tensor> again(3);
  session.run_scatter(x, again);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NE(again[static_cast<size_t>(i)].data(), per_sample[static_cast<size_t>(i)].data());
    EXPECT_EQ(again[static_cast<size_t>(i)].max_abs_diff(per_sample[static_cast<size_t>(i)]),
              0.0f);
  }

  std::vector<Tensor> wrong(2);
  EXPECT_THROW(session.run_scatter(x, wrong), std::invalid_argument);
}

TEST(SessionTest, ProgramReportsActivationFootprint) {
  models::Sesr sesr(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  const auto plan = Program::compile(sesr, {1, 3, 16, 16});
  EXPECT_GT(plan->peak_arena_bytes(), 0);
  EXPECT_LE(plan->peak_arena_bytes(), plan->sum_buffer_bytes());
  EXPECT_FALSE(plan->ops().empty());
  EXPECT_FALSE(plan->dump().empty());
}

}  // namespace
}  // namespace sesr::runtime
