# Resolve GoogleTest without assuming network access.
#
# Resolution order:
#   1. An installed package (find_package(GTest)) — Debian/Ubuntu ship static
#      libs via `libgtest-dev`, many distros ship a full CMake config.
#   2. The distro source package at /usr/src/googletest (Debian installs the
#      sources there so projects can build gtest with their own flags).
#   3. FetchContent from GitHub — only reached when the machine has neither
#      of the above and presumably does have network access.
#
# Defines the imported targets GTest::gtest and GTest::gtest_main and sets
# SESR_GTEST_PROVIDER to "system", "source-package", or "fetchcontent".

include_guard(GLOBAL)

# Sanitizer builds must not link a prebuilt (uninstrumented) gtest into
# instrumented binaries — mixing the two yields false positives and hides
# races on gtest-internal state. Skip the installed package and build gtest
# from source with the tree's own flags (the Debian/Ubuntu libgtest-dev
# package ships /usr/src/googletest precisely for this).
if(NOT SESR_SANITIZE)
  find_package(GTest QUIET)
endif()
if(TARGET GTest::gtest AND TARGET GTest::gtest_main)
  set(SESR_GTEST_PROVIDER "system")
elseif(EXISTS "/usr/src/googletest/CMakeLists.txt")
  set(SESR_GTEST_PROVIDER "source-package")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest "${CMAKE_BINARY_DIR}/_deps/googletest"
    EXCLUDE_FROM_ALL)
  # find_package may have defined one target but not the other (e.g. a manual
  # install of libgtest without libgtest_main) — guard each alias on its own.
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
else()
  set(SESR_GTEST_PROVIDER "fetchcontent")
  include(FetchContent)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  FetchContent_MakeAvailable(googletest)
endif()

message(STATUS "GoogleTest provider: ${SESR_GTEST_PROVIDER}")
