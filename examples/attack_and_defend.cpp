// Attack-and-defend walkthrough: all four attacks against one classifier,
// with and without the defense, plus a look at what each pipeline stage does
// to the adversarial perturbation.
//
// This is the scenario the paper's introduction motivates: a deployed,
// third-party classifier that cannot be retrained, wrapped by a training-free
// preprocessing defense.
#include <cstdio>

#include "attacks/attacks.h"
#include "core/core.h"
#include "data/metrics.h"
#include "models/models.h"

using namespace sesr;

int main() {
  std::printf("== gray-box attack & defense walkthrough ==\n\n");

  // A "deployed" classifier: we train it here, but the defense never touches
  // its weights — the training-free property the paper emphasises.
  data::ShapesTexDataset dataset({.image_size = 16, .num_classes = 4, .seed = 31});
  auto classifier = std::make_shared<models::TinyInception>(4);
  core::ClassifierTrainingOptions clf_opts;
  clf_opts.train_size = 512;
  clf_opts.epochs = 10;
  clf_opts.learning_rate = 5e-3f;
  std::printf("[deploy] training the Inception-family classifier...\n");
  core::train_classifier(*classifier, dataset, clf_opts);

  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> eval_set = evaluator.correctly_classified(dataset, 2048, 64);
  std::printf("[deploy] evaluation set: %zu images at 100%% clean top-1\n\n", eval_set.size());

  // The defense: JPEG + wavelet + a tiny trained SESR-M2.
  std::printf("[defense] training SESR-M2 and collapsing for deployment...\n");
  data::SyntheticDiv2k div2k({.hr_size = 32, .scale = 2, .seed = 32});
  models::SesrConfig cfg = models::SesrConfig::m2();
  cfg.expansion = 64;
  models::Sesr training_form(cfg, models::Sesr::Form::kTraining);
  core::SrTrainingOptions sr_opts;
  sr_opts.train_size = 512;
  sr_opts.epochs = 4;
  core::train_sr(training_form, div2k, sr_opts);
  core::DefensePipeline defense(std::make_shared<models::NetworkUpscaler>(
      "SESR-M2", std::shared_ptr<nn::Module>(models::Sesr::collapse_from(training_form))));

  // All four attacks of the paper, undefended vs defended.
  std::printf("\n%-10s | %-12s %-12s\n", "attack", "no defense", "defended");
  std::printf("--------------------------------------\n");
  for (auto& attack : attacks::standard_suite()) {
    const float undefended = evaluator.robust_accuracy(dataset, eval_set, *attack, nullptr);
    const float defended = evaluator.robust_accuracy(dataset, eval_set, *attack, &defense);
    std::printf("%-10s | %-12.1f %-12.1f\n", attack->name().c_str(), undefended, defended);
  }

  // Stage-by-stage look at one adversarial image: how much perturbation
  // energy does each stage remove?
  std::printf("\n[anatomy] per-stage perturbation energy on one PGD image:\n");
  const Tensor clean = dataset.images_at({eval_set[0]});
  attacks::Pgd pgd;
  const Tensor adv = pgd.perturb(*classifier, clean, dataset.labels_at({eval_set[0]}));

  const preprocess::JpegCompressor jpeg({.quality = 75});
  const preprocess::WaveletDenoiser wavelet;
  const Tensor after_jpeg = jpeg.apply(adv);
  const Tensor after_wavelet = wavelet.apply(after_jpeg);
  const Tensor clean_jpeg = jpeg.apply(clean);
  const Tensor clean_wavelet = wavelet.apply(clean_jpeg);

  std::printf("  raw adversarial     : |delta| = %.4f (PSNR to clean %.1f dB)\n",
              adv.max_abs_diff(clean), data::psnr(adv, clean));
  std::printf("  after JPEG          : PSNR to clean-through-JPEG   %.1f dB\n",
              data::psnr(after_jpeg, clean_jpeg));
  std::printf("  after JPEG+wavelet  : PSNR to clean-through-both   %.1f dB\n",
              data::psnr(after_wavelet, clean_wavelet));
  std::printf("\nEach stage moves the attacked image back toward its clean counterpart's\n");
  std::printf("trajectory; SR then re-synthesises the high-frequency detail on the natural\n");
  std::printf("image manifold (Fig. 1a of the paper).\n");
  return 0;
}
