// Inspecting the SESR collapse (the paper's Fig. 2, executable).
//
// Builds every SESR variant in its overparameterised training form, collapses
// it analytically, and reports: parameter reduction, numerical equivalence,
// the compiled runtime program of the deployed network (via Program::dump —
// buffer table, pass results, arena plan), and the MAC counts at the paper's
// 299x299 -> 598x598 operating point.
#include <cstdio>

#include "hw/cost_model.h"
#include "models/models.h"
#include "runtime/runtime.h"

using namespace sesr;

int main() {
  std::printf("== SESR collapsible-linear-block inspector ==\n\n");
  std::printf("A Collapsible Linear Block expands f_i channels to p with a k x k conv,\n");
  std::printf("projects back to f_o with a 1 x 1 conv, and carries a short residual when\n");
  std::printf("f_i == f_o. No non-linearity inside => the whole block is one linear map\n");
  std::printf("and collapses into a single k x k convolution for inference.\n\n");

  struct Variant {
    const char* name;
    models::SesrConfig config;
  };
  const Variant variants[] = {{"SESR-M2", models::SesrConfig::m2()},
                              {"SESR-M3", models::SesrConfig::m3()},
                              {"SESR-M5", models::SesrConfig::m5()},
                              {"SESR-XL", models::SesrConfig::xl()}};

  std::printf("%-9s | %-13s %-13s %-8s | %-11s | %-12s\n", "Variant", "train params",
              "infer params", "ratio", "max |diff|", "MACs@299 (deployed)");
  std::printf("---------------------------------------------------------------------------\n");

  Rng rng(42);
  for (const Variant& v : variants) {
    models::Sesr training_form(v.config, models::Sesr::Form::kTraining);
    training_form.init(rng);
    auto inference_form = models::Sesr::collapse_from(training_form);

    const Tensor probe = Tensor::rand({1, 3, 24, 24}, rng);
    const float diff = training_form.forward(probe).max_abs_diff(inference_form->forward(probe));

    const auto cost = hw::summarize(*inference_form, {1, 3, 299, 299});
    std::printf("%-9s | %-13lld %-13lld %-8.1f | %-11.2e | %s\n", v.name,
                static_cast<long long>(training_form.num_params()),
                static_cast<long long>(inference_form->num_params()),
                static_cast<double>(training_form.num_params()) /
                    static_cast<double>(inference_form->num_params()),
                diff, hw::human_count(static_cast<double>(cost.macs)).c_str());
  }

  // The deployed execution form, through the runtime's one debug printer:
  // op list after the pass pipeline, typed buffer table, and the arena plan.
  std::printf("\nCompiled runtime program of the deployed SESR-M2 at 299x299:\n\n");
  models::Sesr m2(models::SesrConfig::m2(), models::Sesr::Form::kInference);
  const auto program = runtime::Program::compile(m2, {1, 3, 299, 299});
  std::printf("%s", program->dump().c_str());
  return 0;
}
