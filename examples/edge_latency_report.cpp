// Edge deployment report: per-layer Ethos-U55 latency breakdown.
//
// Reproduces the engineering view behind Table IV: for each SR network and
// the enlarged MobileNet-V2 classifier, where do the cycles go — MAC-array
// compute or memory traffic? This is the analysis a deployment engineer runs
// before committing to an SR model for an edge defense pipeline.
#include <cstdio>
#include <vector>

#include "hw/cost_model.h"
#include "hw/ethos_u55.h"
#include "models/models.h"
#include "quant/quant.h"
#include "runtime/runtime.h"

using namespace sesr;

namespace {

void report(const char* title, const nn::Module& model, const Shape& input,
            const hw::EthosU55Model& npu, bool per_layer) {
  const auto layers = model.layers(input);
  const auto latency = npu.estimate(layers);
  std::printf("\n--- %s @ %s: %.2f ms (%.1f FPS standalone) ---\n", title,
              input.to_string().c_str(), latency.total_ms, latency.fps);
  if (!per_layer) return;
  std::printf("  %-24s %-12s %-12s %-10s\n", "layer", "compute(us)", "dma(us)", "bound");
  for (size_t i = 0; i < layers.size(); ++i) {
    const auto& lat = latency.layers[i];
    if (lat.cycles() == 0) continue;
    std::printf("  %-24s %-12.1f %-12.1f %-10s\n", lat.name.c_str(),
                static_cast<double>(lat.compute_cycles) / 1e3,
                static_cast<double>(lat.dma_cycles) / 1e3,
                lat.compute_cycles >= lat.dma_cycles ? "compute" : "memory");
  }
}

}  // namespace

int main() {
  std::printf("== Arm Ethos-U55 deployment report (U55-256 @ 1 GHz, int8) ==\n");
  const hw::EthosU55Model npu;

  // The defense's classification stage: enlarged MobileNet-V2 (summary only —
  // 53 layers).
  models::MobileNetV2Paper mv2(1000);
  report("MobileNet-V2 (enlarged)", mv2, {1, 3, 598, 598}, npu, /*per_layer=*/false);

  // SR stage candidates, per-layer.
  for (const char* label : {"SESR-M2", "FSRCNN"}) {
    auto net = models::sr_model(label).make_paper_scale();
    report(label, *net, {1, 3, 299, 299}, npu, /*per_layer=*/true);
  }

  // End-to-end summary across the whole zoo.
  const double cls_ms = npu.estimate(mv2, {1, 3, 598, 598}).total_ms;
  std::printf("\n--- end-to-end defense pipeline (classification %.2f ms + SR) ---\n", cls_ms);
  std::printf("%-12s %-10s %-12s %-8s\n", "SR model", "SR (ms)", "total (ms)", "FPS");
  for (const auto& spec : models::sr_model_zoo()) {
    auto net = spec.make_paper_scale();
    const double sr_ms = npu.estimate(*net, {1, 3, 299, 299}).total_ms;
    std::printf("%-12s %-10.2f %-12.2f %-8.2f\n", spec.label.c_str(), sr_ms, cls_ms + sr_ms,
                1e3 / (cls_ms + sr_ms));
  }
  std::printf("\nReading: the 9x9 stride-2 deconvolution dominates FSRCNN (compute-bound at\n");
  std::printf("full output resolution), while SESR's narrow 3x3 stack is memory-bound —\n");
  std::printf("which is why collapsing SESR to 16 channels translates directly into FPS.\n");

  // SRAM sizing: the question that decides whether a network fits the NPU's
  // on-chip memory at all. The old estimate summed one dedicated buffer per
  // intermediate tensor; the arena planner's peak is what a deployment
  // actually needs — report both and the delta. (Artifacts are calibrated at
  // a small shape — the step structure is resolution-independent — and the
  // int8 program is compiled at the paper's 299x299 operating point.)
  std::printf("\n--- SRAM: activation memory of the compiled int8 programs @ 299x299 ---\n");
  std::printf("%-12s %-16s %-16s %-8s %-14s\n", "SR model", "sum-of-bufs (KiB)",
              "planned peak (KiB)", "saved", "weights (KiB)");
  Rng rng(3);
  const Shape calib_shape{1, 3, 16, 16};
  std::vector<Tensor> calib_batches;
  for (int i = 0; i < 2; ++i) calib_batches.push_back(Tensor::rand(calib_shape, rng));
  for (const auto& spec : models::sr_model_zoo()) {
    auto net = spec.make_paper_scale();
    if (!net->supports_compiled_inference()) continue;
    net->init_weights(rng);
    const auto artifact =
        quant::QuantizedModel::calibrate(*net, calib_shape, calib_batches);
    const auto program =
        runtime::Program::compile_int8(*net, {1, 3, 299, 299}, artifact);
    const hw::SramEstimate sram = hw::estimate_sram(*program);
    std::printf("%-12s %-16.0f %-16.0f %3.0f%%     %-14.0f\n", spec.label.c_str(),
                static_cast<double>(sram.sum_buffer_bytes) / 1024.0,
                static_cast<double>(sram.peak_arena_bytes) / 1024.0,
                100.0 * sram.savings(),
                static_cast<double>(sram.weight_bytes) / 1024.0);
  }
  return 0;
}
