// Quickstart: the complete SESR defense pipeline in one file.
//
// 1. Train a SESR-M2 network (overparameterised collapsible form) on the
//    synthetic DIV2K substitute.
// 2. Collapse it analytically into the tiny inference network and compile it
//    into a serving plan (runtime::Session) — the deployed execution form.
// 3. Assemble the paper's defense pipeline: JPEG -> wavelet -> x2 SESR.
// 4. Defend one attacked image and show the effect.
//
// Runs in about a minute on a laptop-class CPU.
#include <cstdio>

#include "attacks/attacks.h"
#include "core/core.h"
#include "data/metrics.h"
#include "models/models.h"
#include "runtime/runtime.h"

using namespace sesr;

int main() {
  std::printf("== SESR adversarial defense quickstart ==\n\n");

  // --- 1. train SESR-M2 (training form: collapsible linear blocks) --------
  data::SyntheticDiv2k div2k({.hr_size = 32, .scale = 2, .seed = 2});
  models::SesrConfig config = models::SesrConfig::m2();
  config.expansion = 64;  // reduced expansion keeps the quickstart quick
  models::Sesr training_form(config, models::Sesr::Form::kTraining);

  core::SrTrainingOptions sr_opts;
  sr_opts.train_size = 512;
  sr_opts.epochs = 4;
  sr_opts.verbose = true;
  std::printf("[1] training SESR-M2 (collapsible form, %lld params)...\n",
              static_cast<long long>(training_form.num_params()));
  core::train_sr(training_form, div2k, sr_opts);

  // --- 2. analytic collapse ------------------------------------------------
  auto inference_form = models::Sesr::collapse_from(training_form);
  std::printf("\n[2] collapsed: %lld params -> %lld params (%.1fx smaller), same function\n",
              static_cast<long long>(training_form.num_params()),
              static_cast<long long>(inference_form->num_params()),
              static_cast<double>(training_form.num_params()) /
                  static_cast<double>(inference_form->num_params()));

  Rng rng(7);
  const Tensor probe = Tensor::rand({1, 3, 16, 16}, rng);
  const float collapse_err = training_form.forward(probe).max_abs_diff(
      inference_form->forward(probe));
  std::printf("    max |train_form - inference_form| on a probe image: %.2e\n", collapse_err);

  // The deployed execution form: compile the collapsed network once, then
  // serve through stateless sessions (bit-identical to forward, no per-call
  // allocation, concurrency-safe over the shared plan).
  const auto plan = runtime::Program::compile(*inference_form, probe.shape());
  runtime::Session session(plan);
  const float session_err = session.run(probe).max_abs_diff(inference_form->forward(probe));
  std::printf("    compiled runtime::Session vs forward on the probe: max diff %.1e\n",
              session_err);

  const float psnr_sesr = core::evaluate_sr_psnr(*inference_form, div2k, 4000, 32);
  const float psnr_nn = core::evaluate_interpolation_psnr(
      preprocess::InterpolationKind::kNearest, div2k, 4000, 32);
  std::printf("    x2 SR quality: SESR-M2 %.2f dB vs nearest-neighbour %.2f dB\n", psnr_sesr,
              psnr_nn);

  // --- 3. assemble the defense pipeline ------------------------------------
  std::printf("\n[3] defense pipeline: JPEG(q75) -> wavelet denoise -> x2 SESR\n");
  core::DefensePipeline defense(std::make_shared<models::NetworkUpscaler>(
      "SESR-M2", std::shared_ptr<nn::Module>(std::move(inference_form))));

  // --- 4. attack an image and defend it -------------------------------------
  data::ShapesTexDataset shapes({.image_size = 16, .num_classes = 4, .seed = 21});
  auto classifier = std::make_shared<models::TinyResNet>(4);
  core::ClassifierTrainingOptions clf_opts;
  clf_opts.train_size = 512;
  clf_opts.epochs = 10;
  clf_opts.learning_rate = 5e-3f;
  std::printf("\n[4] training a ResNet classifier on the synthetic shapes dataset...\n");
  const core::TrainingSummary summary = core::train_classifier(*classifier, shapes, clf_opts);
  std::printf("    train accuracy %.1f%%\n", summary.final_accuracy);

  core::GrayBoxEvaluator evaluator(classifier, 32);
  const std::vector<int64_t> eval_set = evaluator.correctly_classified(shapes, 2048, 64);
  std::printf("    evaluation set: %zu correctly-classified images\n", eval_set.size());

  attacks::Pgd pgd;  // eps = 8/255, the paper's budget
  const float undefended = evaluator.robust_accuracy(shapes, eval_set, pgd, nullptr);
  const float defended = evaluator.robust_accuracy(shapes, eval_set, pgd, &defense);
  std::printf("\n== results (PGD, eps = 8/255, gray-box) ==\n");
  std::printf("   clean accuracy       : 100.0%% (by construction)\n");
  std::printf("   attacked, no defense : %.1f%%\n", undefended);
  std::printf("   attacked, defended   : %.1f%%\n", defended);
  std::printf("\nThe tiny collapsed SESR network recovers a large share of the accuracy an\n");
  std::printf("attacker destroys — at ~1/6 the MACs of FSRCNN (see bench_table4_latency).\n");
  return 0;
}
