// Serving-engine quickstart: submit/await, async callbacks, and SLO metrics.
//
// Stands up a serve::Server over collapsed SESR-M5 (seeded weights — serving
// behaviour depends only on the architecture), warms the plan cache, then
// shows the three request paths — blocking futures, async callbacks, and
// deadline-bound requests under a saturated queue — and finishes by reading
// the ServerStats SLO surface (latency percentiles, batch-size distribution,
// shed/rejected counts). Runs in a couple of seconds; no training involved.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "models/models.h"
#include "serve/serve.h"

using namespace sesr;

int main() {
  // Collapsed SESR-M5 wrapped in the serving surface of PRs 2-4: per-shape
  // plan cache, session pool, precision knob.
  auto network = std::make_shared<models::Sesr>(models::SesrConfig::m5(),
                                                models::Sesr::Form::kInference);
  Rng rng(5);
  network->init_weights(rng);
  auto upscaler = std::make_shared<models::NetworkUpscaler>("SESR-M5", network);

  serve::Server::Options options;
  options.workers = 2;
  options.max_batch = 4;
  options.queue_capacity = 64;
  serve::Server server(upscaler, options);

  // Precompile every dispatchable batch shape up front: after this, no
  // request ever pays a plan-compilation spike.
  const Shape tile_shape{3, 16, 16};
  server.warmup(tile_shape);
  std::printf("warmed %lld plans (batch sizes 1..%lld), %lld compiles total\n",
              static_cast<long long>(options.max_batch),
              static_cast<long long>(options.max_batch),
              static_cast<long long>(upscaler->plan_compile_count()));

  // 1. Blocking submit/await: a ServeFuture per request.
  Rng image_rng(7);
  std::vector<serve::ServeFuture> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(server.submit(Tensor::rand({3, 16, 16}, image_rng)));
  int ok = 0;
  for (serve::ServeFuture& future : futures) {
    serve::ServeReply reply = future.get();
    if (reply.ok()) ++ok;
  }
  std::printf("futures: %d/16 ok, outputs are [1, 3, 32, 32]\n", ok);

  // 2. Async callbacks: completion delivered on a worker thread.
  std::atomic<int> async_ok{0};
  for (int i = 0; i < 16; ++i)
    server.submit_async(Tensor::rand({3, 16, 16}, image_rng),
                        [&](serve::ServeReply reply) {
                          if (reply.ok()) async_ok.fetch_add(1);
                        });

  // 3. Deadline-bound requests: anything still queued after 5 ms is shed
  // instead of served late (submit enough to keep the workers busy).
  std::atomic<int> shed{0};
  for (int i = 0; i < 48; ++i)
    server.submit_async(
        Tensor::rand({3, 16, 16}, image_rng),
        [&](serve::ServeReply reply) {
          if (reply.status == serve::ServeStatus::kShed) shed.fetch_add(1);
        },
        std::chrono::milliseconds{5});

  server.stop();  // drain everything admitted, then join the workers
  std::printf("callbacks: %d/16 ok; deadline-bound: %d of 48 shed\n", async_ok.load(),
              shed.load());

  // The SLO surface: what an operator watches.
  const serve::ServerStats stats = server.stats();
  std::printf("\nServerStats\n");
  std::printf("  submitted %lld   completed %lld   shed %lld   rejected %lld   failed %lld\n",
              static_cast<long long>(stats.submitted), static_cast<long long>(stats.completed),
              static_cast<long long>(stats.shed), static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.failed));
  std::printf("  latency ms: p50 %.2f   p95 %.2f   p99 %.2f   mean %.2f   max %.2f\n",
              stats.latency.p50_ms, stats.latency.p95_ms, stats.latency.p99_ms,
              stats.latency.mean_ms, stats.latency.max_ms);
  std::printf("  batching: %lld dispatches, mean batch %.2f, max %lld, peak queue %lld\n",
              static_cast<long long>(stats.batches), stats.mean_batch_size,
              static_cast<long long>(stats.max_batch_observed),
              static_cast<long long>(stats.peak_queue_depth));
  std::printf("  batch-size distribution:");
  for (size_t size = 1; size < stats.batch_size_counts.size(); ++size)
    std::printf("  %zux%lld", size, static_cast<long long>(stats.batch_size_counts[size]));
  std::printf("\n");
  return 0;
}
