// Classical input-transformation defenses (the paper's Related Work, §II).
//
// The paper positions SR-based defense against the family of model-agnostic
// input transformations: bit-depth reduction and JPEG (Das et al.), pixel
// deflection (Prakash et al.), total-variation minimisation and quilting
// (Guo et al.), and random resize-and-pad ensembles (Xie et al.). These
// implementations make that comparison executable
// (bench_ext_transform_defenses) and serve as additional pipeline stages for
// ablations.
#pragma once

#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sesr::preprocess {

/// Re-quantise pixel values to `bits` bits per channel (Das et al. 2017's
/// colour-depth reduction; 8 = identity for already-8-bit content).
Tensor bit_depth_reduce(const Tensor& images, int bits);

/// Pixel deflection (Prakash et al., CVPR 2018): replace `count` randomly
/// chosen pixels per image with another pixel sampled uniformly from a
/// surrounding window, corrupting adversarial pixel patterns while barely
/// affecting perception. Deterministic given the seed.
struct PixelDeflectionOptions {
  int64_t count = 100;   ///< deflections per image
  int64_t window = 5;    ///< neighbourhood half-width to sample the donor from
  uint64_t seed = 23;
};
class PixelDeflector {
 public:
  explicit PixelDeflector(PixelDeflectionOptions opts = {});
  [[nodiscard]] Tensor apply(const Tensor& images) const;
  [[nodiscard]] const PixelDeflectionOptions& options() const { return opts_; }

 private:
  PixelDeflectionOptions opts_;
};

/// Total-variation denoising (the core of Guo et al. 2018's TVM defense):
/// minimises 0.5 ||x - y||^2 + weight * TV_smooth(x) by gradient descent,
/// with TV_smooth the charbonnier-smoothed anisotropic total variation.
struct TvDenoiseOptions {
  float weight = 0.1f;
  int iterations = 60;
  float step_size = 0.25f;  ///< upper bound; clamped below 2/L internally
  float epsilon = 0.02f;    ///< charbonnier smoothing of |.|
};
class TvDenoiser {
 public:
  explicit TvDenoiser(TvDenoiseOptions opts = {});
  [[nodiscard]] Tensor apply(const Tensor& images) const;
  [[nodiscard]] const TvDenoiseOptions& options() const { return opts_; }

 private:
  TvDenoiseOptions opts_;
};

/// Random resize-and-pad (Xie et al., ICLR 2018): shrink each image to a
/// random fraction of its size and place it at a random offset on a zero
/// canvas of the original size. Deterministic given the seed.
struct RandomResizePadOptions {
  float min_scale = 0.85f;
  uint64_t seed = 29;
};
class RandomResizePad {
 public:
  explicit RandomResizePad(RandomResizePadOptions opts = {});
  [[nodiscard]] Tensor apply(const Tensor& images) const;
  [[nodiscard]] const RandomResizePadOptions& options() const { return opts_; }

 private:
  RandomResizePadOptions opts_;
};

}  // namespace sesr::preprocess
