// RGB <-> YCbCr colorspace conversion (JPEG / ITU-R BT.601 convention).
//
// Tensors are NCHW with 3 channels and values in [0, 1]. YCbCr output keeps
// the same [0, 1] scaling (Cb/Cr centered at 0.5), matching what the JPEG
// compressor and chroma-aware denoisers expect.
#pragma once

#include "tensor/tensor.h"

namespace sesr::preprocess {

/// Convert an [N, 3, H, W] RGB tensor in [0,1] to YCbCr in [0,1].
Tensor rgb_to_ycbcr(const Tensor& rgb);

/// Inverse of rgb_to_ycbcr (values clamped back to [0,1]).
Tensor ycbcr_to_rgb(const Tensor& ycbcr);

}  // namespace sesr::preprocess
