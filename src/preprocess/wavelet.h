// Wavelet-domain denoising (BayesShrink soft thresholding).
//
// The second stage of the paper's defense pipeline (Fig. 1b), following
// Mustafa et al. and Prakash et al.: decompose each channel with a 2-D
// multi-level discrete wavelet transform, soft-threshold the detail subbands
// with a per-subband BayesShrink threshold, and reconstruct. Adversarial
// perturbations are broadband low-amplitude noise, which this suppresses
// while keeping image structure.
#pragma once

#include "tensor/tensor.h"

namespace sesr::preprocess {

enum class WaveletFamily {
  kHaar,        ///< 2-tap Haar (db1)
  kDaubechies4  ///< 4-tap Daubechies (db2) — smoother, used by default
};

struct WaveletOptions {
  WaveletFamily family = WaveletFamily::kDaubechies4;
  int levels = 2;               ///< decomposition depth
  float threshold_scale = 1.0f; ///< multiplier on the BayesShrink threshold
};

/// Multi-level 2-D DWT denoiser with BayesShrink thresholds.
class WaveletDenoiser {
 public:
  explicit WaveletDenoiser(WaveletOptions opts = {});

  /// Denoise an [N, C, H, W] batch (each channel independently).
  /// H and W must be divisible by 2^levels.
  [[nodiscard]] Tensor apply(const Tensor& images) const;

  [[nodiscard]] const WaveletOptions& options() const { return opts_; }

 private:
  WaveletOptions opts_;
};

/// One-level 2-D forward DWT of a plane (periodic extension). Outputs the
/// four half-resolution subbands packed in-place: LL | HL over LH | HH.
/// Exposed for tests and for the perfect-reconstruction property checks.
void dwt2d_level(std::vector<float>& plane, int64_t h, int64_t w, WaveletFamily family);

/// Inverse of dwt2d_level.
void idwt2d_level(std::vector<float>& plane, int64_t h, int64_t w, WaveletFamily family);

}  // namespace sesr::preprocess
