#include "preprocess/interpolation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr::preprocess {
namespace {

// Catmull-Rom cubic kernel (a = -0.5), the common "bicubic" choice.
float cubic_weight(float x) {
  constexpr float a = -0.5f;
  x = std::abs(x);
  if (x < 1.0f) return ((a + 2.0f) * x - (a + 3.0f)) * x * x + 1.0f;
  if (x < 2.0f) return (((x - 5.0f) * x + 8.0f) * x - 4.0f) * a;
  return 0.0f;
}

int64_t clamp_index(int64_t i, int64_t n) { return std::clamp<int64_t>(i, 0, n - 1); }

}  // namespace

const char* interpolation_name(InterpolationKind kind) {
  switch (kind) {
    case InterpolationKind::kNearest: return "Nearest Neighbor";
    case InterpolationKind::kBilinear: return "Bilinear";
    case InterpolationKind::kBicubic: return "Bicubic";
  }
  return "?";
}

Tensor resize(const Tensor& input, int64_t out_h, int64_t out_w, InterpolationKind kind) {
  if (input.ndim() != 4)
    throw std::invalid_argument("resize: expected NCHW, got " + input.shape().to_string());
  if (out_h <= 0 || out_w <= 0) throw std::invalid_argument("resize: non-positive output size");

  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor output({n, c, out_h, out_w});
  // Align-corners=false convention (pixel centers at half-integers), matching
  // OpenCV / PIL behaviour used by SR dataset pipelines.
  const float scale_y = static_cast<float>(h) / static_cast<float>(out_h);
  const float scale_x = static_cast<float>(w) / static_cast<float>(out_w);

  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = input.data() + img * h * w;
    float* dst = output.data() + img * out_h * out_w;
    for (int64_t oy = 0; oy < out_h; ++oy) {
      const float sy = (static_cast<float>(oy) + 0.5f) * scale_y - 0.5f;
      for (int64_t ox = 0; ox < out_w; ++ox) {
        const float sx = (static_cast<float>(ox) + 0.5f) * scale_x - 0.5f;
        float value = 0.0f;
        switch (kind) {
          case InterpolationKind::kNearest: {
            const int64_t iy = clamp_index(static_cast<int64_t>(std::lround(sy)), h);
            const int64_t ix = clamp_index(static_cast<int64_t>(std::lround(sx)), w);
            value = src[iy * w + ix];
            break;
          }
          case InterpolationKind::kBilinear: {
            const int64_t y0 = static_cast<int64_t>(std::floor(sy));
            const int64_t x0 = static_cast<int64_t>(std::floor(sx));
            const float fy = sy - static_cast<float>(y0);
            const float fx = sx - static_cast<float>(x0);
            const float v00 = src[clamp_index(y0, h) * w + clamp_index(x0, w)];
            const float v01 = src[clamp_index(y0, h) * w + clamp_index(x0 + 1, w)];
            const float v10 = src[clamp_index(y0 + 1, h) * w + clamp_index(x0, w)];
            const float v11 = src[clamp_index(y0 + 1, h) * w + clamp_index(x0 + 1, w)];
            value = v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx + v10 * fy * (1 - fx) +
                    v11 * fy * fx;
            break;
          }
          case InterpolationKind::kBicubic: {
            const int64_t y0 = static_cast<int64_t>(std::floor(sy));
            const int64_t x0 = static_cast<int64_t>(std::floor(sx));
            float acc = 0.0f, wsum = 0.0f;
            for (int64_t dy = -1; dy <= 2; ++dy) {
              const float wy = cubic_weight(sy - static_cast<float>(y0 + dy));
              if (wy == 0.0f) continue;
              const int64_t iy = clamp_index(y0 + dy, h);
              for (int64_t dx = -1; dx <= 2; ++dx) {
                const float wx = cubic_weight(sx - static_cast<float>(x0 + dx));
                if (wx == 0.0f) continue;
                const float wgt = wy * wx;
                acc += wgt * src[iy * w + clamp_index(x0 + dx, w)];
                wsum += wgt;
              }
            }
            value = wsum != 0.0f ? acc / wsum : 0.0f;
            break;
          }
        }
        dst[oy * out_w + ox] = value;
      }
    }
  }
  return output;
}

Tensor upscale(const Tensor& input, int64_t factor, InterpolationKind kind) {
  if (factor <= 0) throw std::invalid_argument("upscale: factor must be positive");
  return resize(input, input.dim(2) * factor, input.dim(3) * factor, kind);
}

Tensor downscale(const Tensor& input, int64_t factor, InterpolationKind kind) {
  if (factor <= 0 || input.dim(2) % factor != 0 || input.dim(3) % factor != 0)
    throw std::invalid_argument("downscale: size not divisible by factor");
  return resize(input, input.dim(2) / factor, input.dim(3) / factor, kind);
}

}  // namespace sesr::preprocess
