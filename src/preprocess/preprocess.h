// Umbrella header for defensive input transformations.
#pragma once

#include "preprocess/colorspace.h"
#include "preprocess/interpolation.h"
#include "preprocess/jpeg.h"
#include "preprocess/transforms.h"
#include "preprocess/wavelet.h"
