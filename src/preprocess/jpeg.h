// JPEG compression as a defensive input transformation.
//
// Implements the lossy core of baseline JPEG (ITU-T T.81): RGB -> YCbCr,
// optional 4:2:0 chroma subsampling, 8x8 block DCT-II, quantisation with the
// Annex-K example tables scaled by the IJG quality factor, dequantisation and
// reconstruction. Entropy coding is omitted — it is lossless and therefore
// irrelevant to the defense, which only needs the quantisation-induced
// suppression of high-frequency (adversarial) detail. This mirrors the role
// JPEG plays in Das et al. (arXiv:1705.02900) and in the paper's Fig. 1(b).
#pragma once

#include <array>

#include "tensor/tensor.h"

namespace sesr::preprocess {

struct JpegOptions {
  int quality = 75;            ///< IJG quality in [1, 100]
  bool chroma_subsample = true;  ///< 4:2:0 subsampling of Cb/Cr
};

/// Round-trips images through JPEG's lossy transform.
class JpegCompressor {
 public:
  explicit JpegCompressor(JpegOptions opts = {});

  /// Compress-decompress an [N, 3, H, W] RGB batch in [0,1].
  /// H and W may be arbitrary; blocks are edge-replicated to multiples of 8
  /// (and of 16 for subsampled chroma) internally.
  [[nodiscard]] Tensor apply(const Tensor& rgb) const;

  [[nodiscard]] const JpegOptions& options() const { return opts_; }

  /// The quality-scaled luma/chroma quantisation tables (row-major 8x8),
  /// exposed for tests.
  [[nodiscard]] const std::array<float, 64>& luma_table() const { return luma_q_; }
  [[nodiscard]] const std::array<float, 64>& chroma_table() const { return chroma_q_; }

 private:
  JpegOptions opts_;
  std::array<float, 64> luma_q_{};
  std::array<float, 64> chroma_q_{};
};

}  // namespace sesr::preprocess
