#include "preprocess/jpeg.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "preprocess/colorspace.h"
#include "tensor/parallel.h"

namespace sesr::preprocess {
namespace {

// ITU-T T.81 Annex K.1 example quantisation tables.
constexpr std::array<int, 64> kLumaBase = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaBase = {
    17, 18, 24, 47, 99, 99, 99, 99,
    18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99};

// IJG quality scaling (libjpeg jpeg_quality_scaling).
std::array<float, 64> scale_table(const std::array<int, 64>& base, int quality) {
  quality = std::clamp(quality, 1, 100);
  const int s = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<float, 64> out{};
  for (int i = 0; i < 64; ++i)
    out[static_cast<size_t>(i)] =
        static_cast<float>(std::clamp((base[static_cast<size_t>(i)] * s + 50) / 100, 1, 255));
  return out;
}

// 1-D 8-point DCT-II / DCT-III (orthonormal), applied separably.
void dct8(const float* in, float* out, int64_t stride) {
  constexpr float kPi = 3.14159265358979323846f;
  for (int k = 0; k < 8; ++k) {
    float acc = 0.0f;
    for (int t = 0; t < 8; ++t)
      acc += in[t * stride] * std::cos(kPi * (2 * t + 1) * k / 16.0f);
    const float ck = (k == 0) ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
    out[k * stride] = ck * acc;
  }
}

void idct8(const float* in, float* out, int64_t stride) {
  constexpr float kPi = 3.14159265358979323846f;
  for (int t = 0; t < 8; ++t) {
    float acc = 0.0f;
    for (int k = 0; k < 8; ++k) {
      const float ck = (k == 0) ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
      acc += ck * in[k * stride] * std::cos(kPi * (2 * t + 1) * k / 16.0f);
    }
    out[t * stride] = acc;
  }
}

// Process one padded plane (values in [0,255]-like scale, level-shifted by
// 128) through DCT -> quantise -> dequantise -> IDCT, in place.
void jpeg_roundtrip_plane(std::vector<float>& plane, int64_t h, int64_t w,
                          const std::array<float, 64>& qtable) {
  std::array<float, 64> block{}, tmp{};
  for (int64_t by = 0; by < h; by += 8) {
    for (int64_t bx = 0; bx < w; bx += 8) {
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          block[static_cast<size_t>(y * 8 + x)] =
              plane[static_cast<size_t>((by + y) * w + bx + x)] - 128.0f;
      // Separable 2-D DCT: rows then columns.
      for (int y = 0; y < 8; ++y) dct8(&block[static_cast<size_t>(y * 8)], &tmp[static_cast<size_t>(y * 8)], 1);
      for (int x = 0; x < 8; ++x) dct8(&tmp[static_cast<size_t>(x)], &block[static_cast<size_t>(x)], 8);
      // Quantise / dequantise — the lossy step.
      for (int i = 0; i < 64; ++i) {
        const float q = qtable[static_cast<size_t>(i)];
        block[static_cast<size_t>(i)] = std::round(block[static_cast<size_t>(i)] / q) * q;
      }
      for (int x = 0; x < 8; ++x) idct8(&block[static_cast<size_t>(x)], &tmp[static_cast<size_t>(x)], 8);
      for (int y = 0; y < 8; ++y) idct8(&tmp[static_cast<size_t>(y * 8)], &block[static_cast<size_t>(y * 8)], 1);
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          plane[static_cast<size_t>((by + y) * w + bx + x)] =
              block[static_cast<size_t>(y * 8 + x)] + 128.0f;
    }
  }
}

// Copy a channel into a zero-shift padded buffer (edge replication).
std::vector<float> pad_plane(const float* src, int64_t h, int64_t w, int64_t ph, int64_t pw,
                             float scale) {
  std::vector<float> out(static_cast<size_t>(ph * pw));
  for (int64_t y = 0; y < ph; ++y) {
    const int64_t sy = std::min(y, h - 1);
    for (int64_t x = 0; x < pw; ++x) {
      const int64_t sx = std::min(x, w - 1);
      out[static_cast<size_t>(y * pw + x)] = src[sy * w + sx] * scale;
    }
  }
  return out;
}

int64_t round_up(int64_t v, int64_t m) { return (v + m - 1) / m * m; }

}  // namespace

JpegCompressor::JpegCompressor(JpegOptions opts) : opts_(opts) {
  if (opts_.quality < 1 || opts_.quality > 100)
    throw std::invalid_argument("JpegCompressor: quality must be in [1, 100]");
  luma_q_ = scale_table(kLumaBase, opts_.quality);
  chroma_q_ = scale_table(kChromaBase, opts_.quality);
}

Tensor JpegCompressor::apply(const Tensor& rgb) const {
  if (rgb.ndim() != 4 || rgb.dim(1) != 3)
    throw std::invalid_argument("JpegCompressor::apply: expected [N, 3, H, W]");
  const int64_t n = rgb.dim(0), h = rgb.dim(2), w = rgb.dim(3);
  const int64_t align = opts_.chroma_subsample ? 16 : 8;
  const int64_t ph = round_up(h, align), pw = round_up(w, align);

  Tensor ycbcr = rgb_to_ycbcr(rgb);
  Tensor out(rgb.shape());

  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t plane_sz = h * w;
      // --- luma ---
      std::vector<float> y =
          pad_plane(ycbcr.data() + (i * 3 + 0) * plane_sz, h, w, ph, pw, 255.0f);
      jpeg_roundtrip_plane(y, ph, pw, luma_q_);

      // --- chroma ---
      std::array<std::vector<float>, 2> chroma;
      for (int c = 0; c < 2; ++c) {
        std::vector<float> plane =
            pad_plane(ycbcr.data() + (i * 3 + 1 + c) * plane_sz, h, w, ph, pw, 255.0f);
        if (opts_.chroma_subsample) {
          // 4:2:0 — average 2x2, roundtrip at half resolution, upsample back.
          const int64_t sh = ph / 2, sw = pw / 2;
          std::vector<float> sub(static_cast<size_t>(sh * sw));
          for (int64_t sy = 0; sy < sh; ++sy)
            for (int64_t sx = 0; sx < sw; ++sx)
              sub[static_cast<size_t>(sy * sw + sx)] =
                  0.25f * (plane[static_cast<size_t>(2 * sy * pw + 2 * sx)] +
                           plane[static_cast<size_t>(2 * sy * pw + 2 * sx + 1)] +
                           plane[static_cast<size_t>((2 * sy + 1) * pw + 2 * sx)] +
                           plane[static_cast<size_t>((2 * sy + 1) * pw + 2 * sx + 1)]);
          jpeg_roundtrip_plane(sub, sh, sw, chroma_q_);
          for (int64_t yy = 0; yy < ph; ++yy)
            for (int64_t xx = 0; xx < pw; ++xx)
              plane[static_cast<size_t>(yy * pw + xx)] =
                  sub[static_cast<size_t>((yy / 2) * sw + xx / 2)];
        } else {
          jpeg_roundtrip_plane(plane, ph, pw, chroma_q_);
        }
        chroma[static_cast<size_t>(c)] = std::move(plane);
      }

      // Crop back and rescale to [0,1].
      Tensor img({1, 3, h, w});
      for (int64_t yy = 0; yy < h; ++yy)
        for (int64_t xx = 0; xx < w; ++xx) {
          img.at(0, 0, yy, xx) = y[static_cast<size_t>(yy * pw + xx)] / 255.0f;
          img.at(0, 1, yy, xx) = chroma[0][static_cast<size_t>(yy * pw + xx)] / 255.0f;
          img.at(0, 2, yy, xx) = chroma[1][static_cast<size_t>(yy * pw + xx)] / 255.0f;
        }
      Tensor back = ycbcr_to_rgb(img);
      std::copy(back.data(), back.data() + 3 * plane_sz, out.data() + i * 3 * plane_sz);
    }
  });
  return out;
}

}  // namespace sesr::preprocess
