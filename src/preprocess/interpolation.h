// Classical image interpolation.
//
// Provides the interpolation-based upscaling baselines of the paper's
// Table II (nearest neighbour, plus bilinear/bicubic for the extended sweep)
// and the bicubic downsampler used to derive LR training pairs from HR
// patches (the standard SR-dataset protocol used for DIV2K).
#pragma once

#include "tensor/tensor.h"

namespace sesr::preprocess {

enum class InterpolationKind { kNearest, kBilinear, kBicubic };

/// Name suitable for table rows ("Nearest Neighbor", "Bilinear", "Bicubic").
const char* interpolation_name(InterpolationKind kind);

/// Resize an NCHW batch to the given spatial size.
/// Bicubic uses the Catmull-Rom kernel (a = -0.5), edges clamped.
Tensor resize(const Tensor& input, int64_t out_h, int64_t out_w, InterpolationKind kind);

/// Integer-factor upscale convenience wrapper.
Tensor upscale(const Tensor& input, int64_t factor, InterpolationKind kind);

/// Integer-factor downscale (bicubic by default — the DIV2K LR protocol).
Tensor downscale(const Tensor& input, int64_t factor,
                 InterpolationKind kind = InterpolationKind::kBicubic);

}  // namespace sesr::preprocess
