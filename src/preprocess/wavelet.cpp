#include "preprocess/wavelet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace sesr::preprocess {
namespace {

struct FilterPair {
  std::vector<float> lo;  // decomposition low-pass
  std::vector<float> hi;  // decomposition high-pass, g[k] = (-1)^k lo[taps-1-k]
};

FilterPair filters_for(WaveletFamily family) {
  switch (family) {
    case WaveletFamily::kHaar: {
      const float s = 1.0f / std::sqrt(2.0f);
      return {{s, s}, {s, -s}};
    }
    case WaveletFamily::kDaubechies4: {
      const float r3 = std::sqrt(3.0f);
      const float denom = 4.0f * std::sqrt(2.0f);
      const std::vector<float> lo = {(1 + r3) / denom, (3 + r3) / denom, (3 - r3) / denom,
                                     (1 - r3) / denom};
      std::vector<float> hi(lo.size());
      for (size_t k = 0; k < lo.size(); ++k)
        hi[k] = ((k % 2 == 0) ? 1.0f : -1.0f) * lo[lo.size() - 1 - k];
      return {lo, hi};
    }
  }
  throw std::logic_error("filters_for: unknown family");
}

// 1-D analysis with periodic extension: first half approx, second half detail.
void dwt1d(const float* in, float* out, int64_t n, int64_t stride, const FilterPair& f) {
  const int64_t half = n / 2;
  const int64_t taps = static_cast<int64_t>(f.lo.size());
  for (int64_t k = 0; k < half; ++k) {
    float a = 0.0f, d = 0.0f;
    for (int64_t j = 0; j < taps; ++j) {
      const float x = in[((2 * k + j) % n) * stride];
      a += f.lo[static_cast<size_t>(j)] * x;
      d += f.hi[static_cast<size_t>(j)] * x;
    }
    out[k * stride] = a;
    out[(half + k) * stride] = d;
  }
}

// 1-D synthesis (inverse of dwt1d).
void idwt1d(const float* in, float* out, int64_t n, int64_t stride, const FilterPair& f) {
  const int64_t half = n / 2;
  const int64_t taps = static_cast<int64_t>(f.lo.size());
  for (int64_t m = 0; m < n; ++m) out[m * stride] = 0.0f;
  for (int64_t k = 0; k < half; ++k) {
    const float a = in[k * stride];
    const float d = in[(half + k) * stride];
    for (int64_t j = 0; j < taps; ++j) {
      const int64_t m = (2 * k + j) % n;
      out[m * stride] += f.lo[static_cast<size_t>(j)] * a + f.hi[static_cast<size_t>(j)] * d;
    }
  }
}

float median_abs(std::vector<float> values) {
  for (float& v : values) v = std::abs(v);
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid), values.end());
  return values[mid];
}

// Collect a rectangular subband into a scratch vector.
std::vector<float> gather(const std::vector<float>& plane, int64_t w, int64_t y0, int64_t x0,
                          int64_t sh, int64_t sw) {
  std::vector<float> out;
  out.reserve(static_cast<size_t>(sh * sw));
  for (int64_t y = 0; y < sh; ++y)
    for (int64_t x = 0; x < sw; ++x)
      out.push_back(plane[static_cast<size_t>((y0 + y) * w + x0 + x)]);
  return out;
}

void soft_threshold(std::vector<float>& plane, int64_t w, int64_t y0, int64_t x0, int64_t sh,
                    int64_t sw, float threshold) {
  for (int64_t y = 0; y < sh; ++y)
    for (int64_t x = 0; x < sw; ++x) {
      float& c = plane[static_cast<size_t>((y0 + y) * w + x0 + x)];
      const float mag = std::abs(c) - threshold;
      c = mag > 0.0f ? std::copysign(mag, c) : 0.0f;
    }
}

}  // namespace

void dwt2d_level(std::vector<float>& plane, int64_t h, int64_t w, WaveletFamily family) {
  const FilterPair f = filters_for(family);
  std::vector<float> tmp(static_cast<size_t>(std::max(h, w)));
  std::vector<float> col(static_cast<size_t>(h));
  // Rows.
  for (int64_t y = 0; y < h; ++y) {
    dwt1d(&plane[static_cast<size_t>(y * w)], tmp.data(), w, 1, f);
    std::copy(tmp.begin(), tmp.begin() + w, plane.begin() + static_cast<std::ptrdiff_t>(y * w));
  }
  // Columns (gathered into a contiguous buffer, transformed, scattered back).
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) col[static_cast<size_t>(y)] = plane[static_cast<size_t>(y * w + x)];
    dwt1d(col.data(), tmp.data(), h, 1, f);
    for (int64_t y = 0; y < h; ++y) plane[static_cast<size_t>(y * w + x)] = tmp[static_cast<size_t>(y)];
  }
}

void idwt2d_level(std::vector<float>& plane, int64_t h, int64_t w, WaveletFamily family) {
  const FilterPair f = filters_for(family);
  std::vector<float> tmp(static_cast<size_t>(std::max(h, w)));
  std::vector<float> col(static_cast<size_t>(h));
  // Columns first (inverse order of the forward transform).
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) col[static_cast<size_t>(y)] = plane[static_cast<size_t>(y * w + x)];
    idwt1d(col.data(), tmp.data(), h, 1, f);
    for (int64_t y = 0; y < h; ++y) plane[static_cast<size_t>(y * w + x)] = tmp[static_cast<size_t>(y)];
  }
  for (int64_t y = 0; y < h; ++y) {
    idwt1d(&plane[static_cast<size_t>(y * w)], tmp.data(), w, 1, f);
    std::copy(tmp.begin(), tmp.begin() + w, plane.begin() + static_cast<std::ptrdiff_t>(y * w));
  }
}

WaveletDenoiser::WaveletDenoiser(WaveletOptions opts) : opts_(opts) {
  if (opts_.levels < 1) throw std::invalid_argument("WaveletDenoiser: levels must be >= 1");
  if (opts_.threshold_scale < 0.0f)
    throw std::invalid_argument("WaveletDenoiser: negative threshold scale");
}

Tensor WaveletDenoiser::apply(const Tensor& images) const {
  if (images.ndim() != 4)
    throw std::invalid_argument("WaveletDenoiser::apply: expected NCHW");
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const int64_t div = int64_t{1} << opts_.levels;
  if (h % div != 0 || w % div != 0)
    throw std::invalid_argument("WaveletDenoiser::apply: H and W must be divisible by 2^levels");

  Tensor out(images.shape());
  parallel_for(0, n * c, [&](int64_t lo, int64_t hi) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const float* src = images.data() + idx * h * w;

      // Forward multi-level DWT. Each level runs on a compacted copy of the
      // previous level's LL quadrant so dwt2d_level always sees a contiguous
      // (rh, rw) plane.
      std::vector<std::vector<float>> levels_store;
      std::vector<float> region(src, src + h * w);
      int64_t rh = h, rw = w;
      for (int l = 0; l < opts_.levels; ++l) {
        dwt2d_level(region, rh, rw, opts_.family);
        levels_store.push_back(region);
        // Extract LL quadrant for the next level.
        std::vector<float> ll;
        ll.reserve(static_cast<size_t>((rh / 2) * (rw / 2)));
        for (int64_t y = 0; y < rh / 2; ++y)
          for (int64_t x = 0; x < rw / 2; ++x)
            ll.push_back(region[static_cast<size_t>(y * rw + x)]);
        region = std::move(ll);
        rh /= 2;
        rw /= 2;
      }

      // Noise estimate from the finest HH subband (level 1).
      const std::vector<float>& finest = levels_store.front();
      const float sigma_n =
          median_abs(gather(finest, w, h / 2, w / 2, h / 2, w / 2)) / 0.6745f;
      const float sigma_n2 = sigma_n * sigma_n;

      // Threshold detail subbands level by level (BayesShrink).
      for (int l = 0; l < opts_.levels; ++l) {
        std::vector<float>& lvl = levels_store[static_cast<size_t>(l)];
        const int64_t lh = h >> l, lw = w >> l;
        const int64_t sh = lh / 2, sw = lw / 2;
        const struct { int64_t y0, x0; } bands[3] = {{0, sw}, {sh, 0}, {sh, sw}};
        for (const auto& band : bands) {
          const std::vector<float> coeffs = gather(lvl, lw, band.y0, band.x0, sh, sw);
          double e2 = 0.0;
          float max_abs = 0.0f;
          for (float v : coeffs) {
            e2 += static_cast<double>(v) * v;
            max_abs = std::max(max_abs, std::abs(v));
          }
          const float sigma_y2 = static_cast<float>(e2 / static_cast<double>(coeffs.size()));
          const float sigma_x = std::sqrt(std::max(sigma_y2 - sigma_n2, 0.0f));
          const float t = (sigma_x > 1e-12f) ? sigma_n2 / sigma_x : max_abs;
          soft_threshold(lvl, lw, band.y0, band.x0, sh, sw, t * opts_.threshold_scale);
        }
      }

      // Reconstruct from the coarsest level back up.
      for (int l = opts_.levels - 1; l >= 0; --l) {
        std::vector<float>& lvl = levels_store[static_cast<size_t>(l)];
        const int64_t lh = h >> l, lw = w >> l;
        // Insert the reconstructed LL from the coarser level.
        if (l < opts_.levels - 1) {
          const std::vector<float>& ll = levels_store[static_cast<size_t>(l + 1)];
          for (int64_t y = 0; y < lh / 2; ++y)
            for (int64_t x = 0; x < lw / 2; ++x)
              lvl[static_cast<size_t>(y * lw + x)] = ll[static_cast<size_t>(y * (lw / 2) + x)];
        } else {
          for (int64_t y = 0; y < rh; ++y)
            for (int64_t x = 0; x < rw; ++x)
              lvl[static_cast<size_t>(y * lw + x)] = region[static_cast<size_t>(y * rw + x)];
        }
        idwt2d_level(lvl, lh, lw, opts_.family);
      }

      float* dst = out.data() + idx * h * w;
      std::copy(levels_store.front().begin(), levels_store.front().end(), dst);
    }
  });
  return out;
}

}  // namespace sesr::preprocess
