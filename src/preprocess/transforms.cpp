#include "preprocess/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "preprocess/interpolation.h"
#include "tensor/parallel.h"

namespace sesr::preprocess {

// ---- bit-depth reduction --------------------------------------------------------

Tensor bit_depth_reduce(const Tensor& images, int bits) {
  if (bits < 1 || bits > 8) throw std::invalid_argument("bit_depth_reduce: bits in [1, 8]");
  const float levels = static_cast<float>((1 << bits) - 1);
  Tensor out = images;
  for (float& v : out.flat()) v = std::round(std::clamp(v, 0.0f, 1.0f) * levels) / levels;
  return out;
}

// ---- pixel deflection --------------------------------------------------------------

PixelDeflector::PixelDeflector(PixelDeflectionOptions opts) : opts_(opts) {
  if (opts_.count < 0 || opts_.window < 1)
    throw std::invalid_argument("PixelDeflector: invalid options");
}

Tensor PixelDeflector::apply(const Tensor& images) const {
  if (images.ndim() != 4) throw std::invalid_argument("PixelDeflector::apply: expected NCHW");
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Tensor out = images;
  for (int64_t i = 0; i < n; ++i) {
    Rng rng(opts_.seed ^ (static_cast<uint64_t>(i) * 0x9E3779B9ull));
    for (int64_t k = 0; k < opts_.count; ++k) {
      const int64_t y = rng.randint(0, h - 1);
      const int64_t x = rng.randint(0, w - 1);
      const int64_t dy = std::clamp(y + rng.randint(-opts_.window, opts_.window), int64_t{0}, h - 1);
      const int64_t dx = std::clamp(x + rng.randint(-opts_.window, opts_.window), int64_t{0}, w - 1);
      for (int64_t ch = 0; ch < c; ++ch) out.at(i, ch, y, x) = images.at(i, ch, dy, dx);
    }
  }
  return out;
}

// ---- total-variation denoising -------------------------------------------------------

TvDenoiser::TvDenoiser(TvDenoiseOptions opts) : opts_(opts) {
  if (opts_.iterations < 1 || opts_.weight < 0.0f || opts_.step_size <= 0.0f)
    throw std::invalid_argument("TvDenoiser: invalid options");
}

Tensor TvDenoiser::apply(const Tensor& images) const {
  if (images.ndim() != 4) throw std::invalid_argument("TvDenoiser::apply: expected NCHW");
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Tensor x = images;
  const float eps2 = opts_.epsilon * opts_.epsilon;
  // Gradient-descent stability: the charbonnier-TV gradient has Lipschitz
  // constant ~ 1 + 8 * weight / epsilon (4 incident edges, slope w/eps each
  // way); clamp the step below 2/L or the iteration oscillates and *adds*
  // energy instead of removing it.
  const float lipschitz = 1.0f + 8.0f * opts_.weight / opts_.epsilon;
  const float step = std::min(opts_.step_size, 1.8f / lipschitz);

  parallel_for(0, n * c, [&](int64_t lo, int64_t hi) {
    std::vector<float> grad(static_cast<size_t>(h * w));
    for (int64_t plane_idx = lo; plane_idx < hi; ++plane_idx) {
      float* xp = x.data() + plane_idx * h * w;
      const float* yp = images.data() + plane_idx * h * w;
      for (int it = 0; it < opts_.iterations; ++it) {
        // d/dx [ 0.5 (x - y)^2 + weight * sum charbonnier(dx) + charbonnier(dy) ].
        std::fill(grad.begin(), grad.end(), 0.0f);
        for (int64_t yy = 0; yy < h; ++yy) {
          for (int64_t xx = 0; xx < w; ++xx) {
            const int64_t idx = yy * w + xx;
            grad[static_cast<size_t>(idx)] += xp[idx] - yp[idx];
            if (xx + 1 < w) {
              const float d = xp[idx + 1] - xp[idx];
              const float g = opts_.weight * d / std::sqrt(d * d + eps2);
              grad[static_cast<size_t>(idx)] -= g;
              grad[static_cast<size_t>(idx + 1)] += g;
            }
            if (yy + 1 < h) {
              const float d = xp[idx + w] - xp[idx];
              const float g = opts_.weight * d / std::sqrt(d * d + eps2);
              grad[static_cast<size_t>(idx)] -= g;
              grad[static_cast<size_t>(idx + w)] += g;
            }
          }
        }
        for (int64_t idx = 0; idx < h * w; ++idx)
          xp[idx] = std::clamp(xp[idx] - step * grad[static_cast<size_t>(idx)], 0.0f, 1.0f);
      }
    }
  });
  return x;
}

// ---- random resize-and-pad -----------------------------------------------------------

RandomResizePad::RandomResizePad(RandomResizePadOptions opts) : opts_(opts) {
  if (opts_.min_scale <= 0.0f || opts_.min_scale > 1.0f)
    throw std::invalid_argument("RandomResizePad: min_scale in (0, 1]");
}

Tensor RandomResizePad::apply(const Tensor& images) const {
  if (images.ndim() != 4) throw std::invalid_argument("RandomResizePad::apply: expected NCHW");
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Tensor out({n, c, h, w});
  for (int64_t i = 0; i < n; ++i) {
    Rng rng(opts_.seed ^ (static_cast<uint64_t>(i) * 0xC2B2AE35ull));
    const int64_t rh = std::max<int64_t>(1, static_cast<int64_t>(
        std::round(static_cast<float>(h) * rng.uniform(opts_.min_scale, 1.0f))));
    const int64_t rw = std::max<int64_t>(1, static_cast<int64_t>(
        std::round(static_cast<float>(w) * rng.uniform(opts_.min_scale, 1.0f))));
    const int64_t oy = rng.randint(0, h - rh);
    const int64_t ox = rng.randint(0, w - rw);

    Tensor img({1, c, h, w});
    std::copy(images.data() + i * c * h * w, images.data() + (i + 1) * c * h * w, img.data());
    const Tensor resized = resize(img, rh, rw, InterpolationKind::kBilinear);
    for (int64_t ch = 0; ch < c; ++ch)
      for (int64_t y = 0; y < rh; ++y)
        for (int64_t x = 0; x < rw; ++x)
          out.at(i, ch, oy + y, ox + x) = resized.at(0, ch, y, x);
  }
  return out;
}

}  // namespace sesr::preprocess
