#include "preprocess/colorspace.h"

#include <algorithm>
#include <stdexcept>

namespace sesr::preprocess {
namespace {

void check_rgb_shape(const Tensor& t, const char* fn) {
  if (t.ndim() != 4 || t.dim(1) != 3)
    throw std::invalid_argument(std::string(fn) + ": expected [N, 3, H, W], got " +
                                t.shape().to_string());
}

}  // namespace

Tensor rgb_to_ycbcr(const Tensor& rgb) {
  check_rgb_shape(rgb, "rgb_to_ycbcr");
  const int64_t n = rgb.dim(0), plane = rgb.dim(2) * rgb.dim(3);
  Tensor out(rgb.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* r = rgb.data() + (i * 3 + 0) * plane;
    const float* g = rgb.data() + (i * 3 + 1) * plane;
    const float* b = rgb.data() + (i * 3 + 2) * plane;
    float* y = out.data() + (i * 3 + 0) * plane;
    float* cb = out.data() + (i * 3 + 1) * plane;
    float* cr = out.data() + (i * 3 + 2) * plane;
    for (int64_t j = 0; j < plane; ++j) {
      y[j] = 0.299f * r[j] + 0.587f * g[j] + 0.114f * b[j];
      cb[j] = -0.168736f * r[j] - 0.331264f * g[j] + 0.5f * b[j] + 0.5f;
      cr[j] = 0.5f * r[j] - 0.418688f * g[j] - 0.081312f * b[j] + 0.5f;
    }
  }
  return out;
}

Tensor ycbcr_to_rgb(const Tensor& ycbcr) {
  check_rgb_shape(ycbcr, "ycbcr_to_rgb");
  const int64_t n = ycbcr.dim(0), plane = ycbcr.dim(2) * ycbcr.dim(3);
  Tensor out(ycbcr.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* y = ycbcr.data() + (i * 3 + 0) * plane;
    const float* cb = ycbcr.data() + (i * 3 + 1) * plane;
    const float* cr = ycbcr.data() + (i * 3 + 2) * plane;
    float* r = out.data() + (i * 3 + 0) * plane;
    float* g = out.data() + (i * 3 + 1) * plane;
    float* b = out.data() + (i * 3 + 2) * plane;
    for (int64_t j = 0; j < plane; ++j) {
      const float cbj = cb[j] - 0.5f, crj = cr[j] - 0.5f;
      r[j] = std::clamp(y[j] + 1.402f * crj, 0.0f, 1.0f);
      g[j] = std::clamp(y[j] - 0.344136f * cbj - 0.714136f * crj, 0.0f, 1.0f);
      b[j] = std::clamp(y[j] + 1.772f * cbj, 0.0f, 1.0f);
    }
  }
  return out;
}

}  // namespace sesr::preprocess
