#include "attacks/pgd.h"

namespace sesr::attacks {

Tensor Pgd::perturb(nn::Module& model, const Tensor& images,
                    const std::vector<int64_t>& labels) {
  Tensor adv = images;
  if (opts_.random_start) {
    Rng rng(opts_.seed);
    for (int64_t i = 0; i < adv.numel(); ++i) adv[i] += rng.uniform(-epsilon_, epsilon_);
    project_linf_(adv, images, epsilon_);
  }
  for (int step = 0; step < opts_.steps; ++step) {
    LossGradient lg = input_gradient(model, adv, labels);
    adv.axpy_(opts_.alpha, lg.grad.sign_());
    project_linf_(adv, images, epsilon_);
  }
  return adv;
}

}  // namespace sesr::attacks
