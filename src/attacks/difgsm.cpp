#include "attacks/difgsm.h"

#include <algorithm>
#include <cmath>

namespace sesr::attacks {
namespace {

// Differentiable input-diversity transform: nearest-resize the batch to
// (rh, rw), then place it at offset (oy, ox) on a zero canvas of the original
// size. Backward crops the canvas gradient and scatter-adds through the
// nearest-neighbour map.
struct DiverseTransform {
  int64_t h, w;    // original size
  int64_t rh, rw;  // resized size
  int64_t oy, ox;  // pad offsets

  Tensor forward(const Tensor& x) const {
    const int64_t n = x.dim(0), c = x.dim(1);
    Tensor out({n, c, h, w});
    for (int64_t img = 0; img < n * c; ++img) {
      const float* src = x.data() + img * h * w;
      float* dst = out.data() + img * h * w;
      for (int64_t y = 0; y < rh; ++y) {
        const int64_t sy = std::min(y * h / rh, h - 1);
        for (int64_t xx = 0; xx < rw; ++xx) {
          const int64_t sx = std::min(xx * w / rw, w - 1);
          dst[(oy + y) * w + ox + xx] = src[sy * w + sx];
        }
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_out, const Shape& in_shape) const {
    const int64_t n = in_shape[0], c = in_shape[1];
    Tensor grad_in(in_shape);
    for (int64_t img = 0; img < n * c; ++img) {
      const float* g = grad_out.data() + img * h * w;
      float* dst = grad_in.data() + img * h * w;
      for (int64_t y = 0; y < rh; ++y) {
        const int64_t sy = std::min(y * h / rh, h - 1);
        for (int64_t xx = 0; xx < rw; ++xx) {
          const int64_t sx = std::min(xx * w / rw, w - 1);
          dst[sy * w + sx] += g[(oy + y) * w + ox + xx];
        }
      }
    }
    return grad_in;
  }
};

}  // namespace

Tensor DiFgsm::perturb(nn::Module& model, const Tensor& images,
                       const std::vector<int64_t>& labels) {
  Rng rng(opts_.seed);
  const int64_t h = images.dim(2), w = images.dim(3);
  const int64_t n = images.dim(0);
  const float inv_n = 1.0f / static_cast<float>(n);

  Tensor adv = images;
  Tensor momentum(images.shape());

  for (int step = 0; step < opts_.steps; ++step) {
    Tensor grad(images.shape());
    if (rng.bernoulli(opts_.diversity_prob)) {
      const int64_t min_h = static_cast<int64_t>(std::round(opts_.resize_rate * static_cast<float>(h)));
      const int64_t min_w = static_cast<int64_t>(std::round(opts_.resize_rate * static_cast<float>(w)));
      DiverseTransform tf;
      tf.h = h;
      tf.w = w;
      tf.rh = rng.randint(min_h, h);
      tf.rw = rng.randint(min_w, w);
      tf.oy = rng.randint(0, h - tf.rh);
      tf.ox = rng.randint(0, w - tf.rw);
      const Tensor transformed = tf.forward(adv);
      LossGradient lg = input_gradient(model, transformed, labels);
      grad = tf.backward(lg.grad, images.shape());
    } else {
      grad = input_gradient(model, adv, labels).grad;
    }

    // Momentum accumulation with L1 normalisation (MI-FGSM), applied over the
    // whole batch gradient as in the reference implementation.
    double l1 = 0.0;
    for (int64_t i = 0; i < grad.numel(); ++i) l1 += std::abs(grad[i]);
    const float inv_l1 = l1 > 1e-12 ? static_cast<float>(static_cast<double>(grad.numel()) * inv_n / l1) : 0.0f;
    for (int64_t i = 0; i < grad.numel(); ++i)
      momentum[i] = opts_.decay * momentum[i] + grad[i] * inv_l1;

    Tensor step_dir = momentum;
    adv.axpy_(opts_.alpha, step_dir.sign_());
    project_linf_(adv, images, epsilon_);
  }
  return adv;
}

}  // namespace sesr::attacks
