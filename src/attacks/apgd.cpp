#include "attacks/apgd.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sesr::attacks {
namespace {

// Checkpoint schedule of Croce & Hein: p_0 = 0, p_1 = 0.22,
// p_{j+1} = p_j + max(p_j - p_{j-1} - 0.03, 0.06), scaled by n_iter.
std::vector<int> checkpoints(int n_iter) {
  std::vector<double> p = {0.0, 0.22};
  while (p.back() < 1.0) p.push_back(p.back() + std::max(p.back() - p[p.size() - 2] - 0.03, 0.06));
  std::vector<int> w;
  for (double pj : p) {
    const int iter = static_cast<int>(std::ceil(pj * n_iter));
    if (w.empty() || iter > w.back()) w.push_back(std::min(iter, n_iter));
  }
  return w;
}

}  // namespace

Tensor Apgd::perturb(nn::Module& model, const Tensor& images,
                     const std::vector<int64_t>& labels) {
  const int64_t n = images.dim(0);
  const int64_t sample_sz = images.numel() / n;
  float eta = 2.0f * epsilon_;  // initial step size

  // Random start.
  Rng rng(opts_.seed);
  Tensor x = images;
  for (int64_t i = 0; i < x.numel(); ++i) x[i] += rng.uniform(-epsilon_, epsilon_);
  project_linf_(x, images, epsilon_);

  LossGradient lg = input_gradient(model, x, labels);
  Tensor x_best = x;
  std::vector<float> f_best = lg.per_sample_loss;
  float f_best_sum_at_last_checkpoint = 0.0f;
  float eta_at_last_checkpoint = eta;

  // First plain-PGD step.
  Tensor x_prev = x;
  {
    Tensor step = lg.grad;
    x.axpy_(eta, step.sign_());
    project_linf_(x, images, epsilon_);
  }

  const std::vector<int> ckpts = checkpoints(opts_.steps);
  size_t next_ckpt = 1;  // ckpts[0] == 0
  int successes_since_ckpt = 0;
  int last_ckpt_iter = 0;

  for (int k = 1; k < opts_.steps; ++k) {
    lg = input_gradient(model, x, labels);

    // Track per-sample best.
    int improved = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (lg.per_sample_loss[static_cast<size_t>(i)] > f_best[static_cast<size_t>(i)]) {
        f_best[static_cast<size_t>(i)] = lg.per_sample_loss[static_cast<size_t>(i)];
        std::copy(x.data() + i * sample_sz, x.data() + (i + 1) * sample_sz,
                  x_best.data() + i * sample_sz);
        ++improved;
      }
    }
    if (improved * 2 > n) ++successes_since_ckpt;  // batch-majority success

    // Momentum update: z = proj(x + eta sign(g));
    // x_next = proj(x + a (z - x) + (1 - a)(x - x_prev)).
    Tensor z = x;
    {
      Tensor step = lg.grad;
      z.axpy_(eta, step.sign_());
      project_linf_(z, images, epsilon_);
    }
    Tensor x_next = x;
    for (int64_t i = 0; i < x.numel(); ++i)
      x_next[i] = x[i] + opts_.momentum * (z[i] - x[i]) + (1.0f - opts_.momentum) * (x[i] - x_prev[i]);
    project_linf_(x_next, images, epsilon_);
    x_prev = x;
    x = std::move(x_next);

    // Checkpoint: halve the step size and restart from the best point if
    // progress stalled.
    if (next_ckpt < ckpts.size() && k == ckpts[next_ckpt]) {
      const int interval = k - last_ckpt_iter;
      float f_best_sum = 0.0f;
      for (float f : f_best) f_best_sum += f;
      const bool cond1 =
          successes_since_ckpt < static_cast<int>(opts_.rho * static_cast<float>(interval));
      const bool cond2 = eta == eta_at_last_checkpoint &&
                         f_best_sum <= f_best_sum_at_last_checkpoint;
      if (cond1 || cond2) {
        eta *= 0.5f;
        x = x_best;
        x_prev = x_best;
      }
      eta_at_last_checkpoint = eta;
      f_best_sum_at_last_checkpoint = f_best_sum;
      successes_since_ckpt = 0;
      last_ckpt_iter = k;
      ++next_ckpt;
    }
  }

  // Final evaluation so the very last iterate can win.
  lg = input_gradient(model, x, labels);
  for (int64_t i = 0; i < n; ++i)
    if (lg.per_sample_loss[static_cast<size_t>(i)] > f_best[static_cast<size_t>(i)])
      std::copy(x.data() + i * sample_sz, x.data() + (i + 1) * sample_sz,
                x_best.data() + i * sample_sz);
  return x_best;
}

}  // namespace sesr::attacks
