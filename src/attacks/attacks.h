// Umbrella header for the attack suite.
#pragma once

#include <memory>
#include <vector>

#include "attacks/apgd.h"
#include "attacks/attack.h"
#include "attacks/difgsm.h"
#include "attacks/fgsm.h"
#include "attacks/pgd.h"

namespace sesr::attacks {

/// The paper's four attacks, in Table II column order, at the given epsilon.
inline std::vector<std::unique_ptr<Attack>> standard_suite(float epsilon = kDefaultEpsilon) {
  std::vector<std::unique_ptr<Attack>> suite;
  suite.push_back(std::make_unique<Fgsm>(epsilon));
  suite.push_back(std::make_unique<Pgd>(PgdOptions{.epsilon = epsilon}));
  suite.push_back(std::make_unique<Apgd>(ApgdOptions{.epsilon = epsilon}));
  suite.push_back(std::make_unique<DiFgsm>(DiFgsmOptions{.epsilon = epsilon}));
  return suite;
}

}  // namespace sesr::attacks
