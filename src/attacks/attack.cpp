#include "attacks/attack.h"

#include <algorithm>
#include <cmath>

namespace sesr::attacks {

LossGradient input_gradient(nn::Module& model, const Tensor& images,
                            const std::vector<int64_t>& labels) {
  model.zero_grad();
  const Tensor logits = model.forward(images);
  nn::LossResult ce = nn::cross_entropy_loss(logits, labels);

  // Per-sample CE (for APGD's objective bookkeeping): -log softmax[y].
  const Tensor probs = nn::softmax(logits);
  const int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<float> per_sample(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    per_sample[static_cast<size_t>(i)] =
        -std::log(std::max(probs[i * k + labels[static_cast<size_t>(i)]], 1e-12f));

  LossGradient out{ce.value, std::move(per_sample), model.backward(ce.grad)};
  return out;
}

void project_linf_(Tensor& x, const Tensor& reference, float epsilon) {
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float lo = std::max(reference[i] - epsilon, 0.0f);
    const float hi = std::min(reference[i] + epsilon, 1.0f);
    x[i] = std::clamp(x[i], lo, hi);
  }
}

}  // namespace sesr::attacks
