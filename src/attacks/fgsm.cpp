#include "attacks/fgsm.h"

namespace sesr::attacks {

Tensor Fgsm::perturb(nn::Module& model, const Tensor& images,
                     const std::vector<int64_t>& labels) {
  LossGradient lg = input_gradient(model, images, labels);
  Tensor adv = images;
  adv.axpy_(epsilon_, lg.grad.sign_());
  adv.clamp_(0.0f, 1.0f);
  return adv;
}

}  // namespace sesr::attacks
