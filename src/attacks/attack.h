// Adversarial attack interface (gray-box setting).
//
// All four attacks of the paper's Table II perturb images within an L-inf
// ball of radius epsilon around the clean input, using gradients of the
// *undefended* classifier (the attacker knows the classification network but
// not the JPEG/wavelet/SR defense — the paper's gray-box threat model).
// Epsilon is 8/255 in [0,1] pixel space throughout, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/nn.h"
#include "tensor/tensor.h"

namespace sesr::attacks {

/// Default attack budget used across the paper's experiments.
inline constexpr float kDefaultEpsilon = 8.0f / 255.0f;

/// Crafts adversarial examples against a classifier.
class Attack {
 public:
  virtual ~Attack() = default;

  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  /// Perturb `images` ([N, C, H, W] in [0,1]) so `model` misclassifies them
  /// away from `labels`. Returns adversarial images, clamped to [0,1] and to
  /// the epsilon ball around the input.
  virtual Tensor perturb(nn::Module& model, const Tensor& images,
                         const std::vector<int64_t>& labels) = 0;

  /// Table-row name, matching the paper's column headers.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] float epsilon() const { return epsilon_; }

 protected:
  explicit Attack(float epsilon) : epsilon_(epsilon) {}

  float epsilon_;
};

/// Cross-entropy loss value and its gradient w.r.t. the input batch.
struct LossGradient {
  float loss = 0.0f;
  std::vector<float> per_sample_loss;  ///< CE of each sample (for APGD bookkeeping)
  Tensor grad;
};

/// One forward/backward pass: d CE(model(x), labels) / dx.
LossGradient input_gradient(nn::Module& model, const Tensor& images,
                            const std::vector<int64_t>& labels);

/// Project `x` onto the L-inf epsilon ball around `reference`, then into [0,1].
void project_linf_(Tensor& x, const Tensor& reference, float epsilon);

}  // namespace sesr::attacks
