// Auto-PGD (Croce & Hein, ICML 2020) with the cross-entropy objective.
//
// Parameter-free PGD variant: momentum step, per-sample best-point tracking,
// and a checkpoint schedule at which the step size is halved and the iterate
// restarted from the best point whenever progress stalls (condition 1: fewer
// than rho * interval successful steps; condition 2: step size and best loss
// both unchanged). This implementation follows Algorithm 1 of the paper with
// one simplification: the halving decision is made per batch (using the
// majority of per-sample conditions) rather than per sample, which keeps the
// batched forward/backward simple and does not change the attack's character.
#pragma once

#include "attacks/attack.h"

namespace sesr::attacks {

struct ApgdOptions {
  float epsilon = kDefaultEpsilon;
  int steps = 20;
  float rho = 0.75f;       ///< progress fraction required between checkpoints
  float momentum = 0.75f;  ///< alpha in the extrapolation step
  uint64_t seed = 13;
};

class Apgd final : public Attack {
 public:
  explicit Apgd(ApgdOptions opts = {}) : Attack(opts.epsilon), opts_(opts) {}

  Tensor perturb(nn::Module& model, const Tensor& images,
                 const std::vector<int64_t>& labels) override;
  [[nodiscard]] std::string name() const override { return "APGD"; }

 private:
  ApgdOptions opts_;
};

}  // namespace sesr::attacks
