// DI2-FGSM: Diverse Input Iterative FGSM (Xie et al., CVPR 2019).
//
// Momentum-iterative FGSM where, with probability `diversity_prob`, each
// iteration computes the gradient on a randomly resized-and-padded copy of
// the current iterate (the "input diversity" transform). The transform is
// differentiable (nearest-neighbour resize + zero pad), so gradients flow
// back through it to the original resolution.
#pragma once

#include "attacks/attack.h"
#include "tensor/rng.h"

namespace sesr::attacks {

struct DiFgsmOptions {
  float epsilon = kDefaultEpsilon;
  float alpha = 2.0f / 255.0f;
  int steps = 10;
  float decay = 1.0f;           ///< momentum decay factor (mu)
  float resize_rate = 0.9f;     ///< minimum fraction of the original size
  float diversity_prob = 0.5f;  ///< probability of applying the transform
  uint64_t seed = 17;
};

class DiFgsm final : public Attack {
 public:
  explicit DiFgsm(DiFgsmOptions opts = {}) : Attack(opts.epsilon), opts_(opts) {}

  Tensor perturb(nn::Module& model, const Tensor& images,
                 const std::vector<int64_t>& labels) override;
  [[nodiscard]] std::string name() const override { return "DI2FGSM"; }

 private:
  DiFgsmOptions opts_;
};

}  // namespace sesr::attacks
