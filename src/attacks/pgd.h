// Projected Gradient Descent (Madry et al., 2017).
//
// Random start in the epsilon ball, then `steps` iterations of
// x <- proj( x + alpha * sign(grad) ). The standard ImageNet evaluation
// setting (and torchattacks default used by the paper) is alpha = 2/255,
// steps = 10.
#pragma once

#include "attacks/attack.h"
#include "tensor/rng.h"

namespace sesr::attacks {

struct PgdOptions {
  float epsilon = kDefaultEpsilon;
  float alpha = 2.0f / 255.0f;
  int steps = 10;
  bool random_start = true;
  uint64_t seed = 11;
};

class Pgd final : public Attack {
 public:
  explicit Pgd(PgdOptions opts = {}) : Attack(opts.epsilon), opts_(opts) {}

  Tensor perturb(nn::Module& model, const Tensor& images,
                 const std::vector<int64_t>& labels) override;
  [[nodiscard]] std::string name() const override { return "PGD"; }

 private:
  PgdOptions opts_;
};

}  // namespace sesr::attacks
