// Fast Gradient Sign Method (Goodfellow et al., 2014).
//
// Single-step: x_adv = clip(x + epsilon * sign(grad_x CE(f(x), y))).
#pragma once

#include "attacks/attack.h"

namespace sesr::attacks {

class Fgsm final : public Attack {
 public:
  explicit Fgsm(float epsilon = kDefaultEpsilon) : Attack(epsilon) {}

  Tensor perturb(nn::Module& model, const Tensor& images,
                 const std::vector<int64_t>& labels) override;
  [[nodiscard]] std::string name() const override { return "FGSM"; }
};

}  // namespace sesr::attacks
