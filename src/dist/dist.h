// Umbrella header for the distributed serving tier.
//
//   wire.h       framed, versioned wire format (SDW1)
//   transport.h  unix-socket framed connections + listener
//   ring.h       consistent-hash routing: (model, shape-bucket) -> shard
//   tile.h       row-band tile-split with halo exchange (bit-exact stitch)
//   shard.h      worker process: serve::Server behind a socket
//   frontend.h   front-tier router: window backpressure, heartbeats,
//                work-stealing failover, tile fan-out
//   process.h    shard process spawning + LocalCluster test/bench harness
#pragma once

#include "dist/frontend.h"
#include "dist/process.h"
#include "dist/ring.h"
#include "dist/shard.h"
#include "dist/tile.h"
#include "dist/transport.h"
#include "dist/wire.h"
