// Worker shard of the distributed serving tier.
//
// A Shard is one OS process owning a full single-process serving stack — a
// serve::ModelRegistry of deterministically-built models and a serve::Server
// (bounded queue, micro-batcher, worker pool) — exposed over one listening
// unix socket speaking the dist wire format. The frontend connects, streams
// kSubmit frames at it, and receives kReply frames as the server's
// completion callbacks fire; kPing is answered inline with kPong carrying
// the shard's live ServerStats as JSON.
//
// Admission is strictly non-blocking: inbound submits go through
// Server::try_submit, so the connection's reader thread never parks on a
// full queue. That is the tier's anti-deadlock invariant — a shard that
// blocked its reader on its own queue would stop draining the socket, the
// frontend's sends would back up, and backpressure would become deadlock.
// An over-capacity submit is answered immediately with a kError reply; the
// frontend's bounded in-flight window makes such refusals rare by sizing
// itself below the shard queue.
//
// Determinism contract: build_registry constructs every model purely from
// its ModelSpec — architecture, seeded weight init, seeded int8 calibration
// — with no ambient state. Two shard processes (or a shard and an in-process
// reference) given the same spec produce bit-identical networks and
// artifacts, which is what lets the frontend tile-split one image across
// shards and stitch a result bit-equal to a single-process upscale.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/transport.h"
#include "serve/server.h"
#include "tensor/shape.h"

namespace sesr::dist {

/// Deterministic recipe for one served model, parseable from the
/// `id=arch[:int8][:seed=N][:calib=CxHxW]` command-line form.
struct ModelSpec {
  std::string id;    ///< registry id requests route by
  std::string arch;  ///< sesr_m2 | sesr_m5 | sesr_xl | edsr | edsr_full
  bool int8 = false;
  /// Weight-init seed; calibration draws from seed + 1. Identical specs on
  /// different processes yield bit-identical models.
  uint64_t seed = 0x5e5;
  /// Single-image [C, H, W] shape int8 calibration batches are drawn at.
  Shape calib = Shape({3, 32, 32});
};

/// Parse the command-line form. Throws std::invalid_argument on a malformed
/// spec or an unknown architecture name.
[[nodiscard]] ModelSpec parse_model_spec(const std::string& text);

/// Build the spec'd network with seeded deterministic weights.
[[nodiscard]] std::shared_ptr<nn::Module> build_network(const ModelSpec& spec);

/// Build a registry serving every spec: fp32 models at version 1; int8
/// models additionally calibrated (seeded batches) and published at
/// version 2. Pure function of the specs — see the determinism contract.
[[nodiscard]] std::shared_ptr<serve::ModelRegistry> build_registry(
    const std::vector<ModelSpec>& specs);

class Shard {
 public:
  struct Options {
    std::string socket_path;
    std::vector<ModelSpec> models;
    serve::Server::Options server;
  };

  /// Binds the socket and starts the inner server; run() must follow.
  explicit Shard(const Options& options);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Accept loop: serves connections until stop() (or an inbound kShutdown)
  /// closes the listener, then drains the inner server — every accepted
  /// request is answered before run() returns — and joins the connection
  /// threads.
  void run();

  /// Unblock run(). Safe from any thread, including connection threads
  /// (which is how kShutdown triggers it). Idempotent.
  void stop();

  /// Requests accepted over the wire but not yet answered.
  [[nodiscard]] int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] serve::Server& server() { return *server_; }
  [[nodiscard]] const std::string& socket_path() const { return listener_->socket_path(); }

 private:
  void serve_connection(const std::shared_ptr<Connection>& connection);
  void handle_submit(const std::shared_ptr<Connection>& connection, const Frame& frame);

  std::shared_ptr<serve::ModelRegistry> registry_;
  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<Listener> listener_;

  std::atomic<bool> running_{true};
  std::atomic<int64_t> in_flight_{0};

  std::mutex mutex_;  ///< guards connections_ / threads_
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
};

}  // namespace sesr::dist
