// Consistent-hash ring: (model, shape-bucket) -> shard routing.
//
// Why consistent hashing and not round-robin: a shard's value is its warm
// state — compiled plans are per (model, batched input shape) and pooled
// sessions own megabytes of arena each. Spraying a (model, shape) key across
// all shards multiplies that state by the shard count and re-pays compile
// spikes everywhere; hashing the key onto one stable owner keeps every
// shard's plan cache and session pool hot for its arc of the key space.
//
// Why a *ring* and not `hash % N`: when a shard dies (or joins), modulo
// reassigns nearly every key; the ring reassigns only the dead shard's arc
// (≈ 1/N of the keys), so the surviving shards keep their warm state — the
// minimal-movement property the ring tests pin.
//
// Mechanics: each node is hashed onto the ring at `vnodes` pseudo-random
// points ("virtual nodes" — more points flatten the arc-length variance, the
// classic Karger/dynamo construction); a key is owned by the first node
// point clockwise from the key's hash. The hash (FNV-1a folded through a
// splitmix64 finalizer) is a pure function of bytes — no process-local
// seeding — so every frontend replica computes identical ownership, which
// the determinism tests pin by rebuilding rings in shuffled insertion order.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/shape.h"

namespace sesr::dist {

/// Deterministic 64-bit hash of arbitrary bytes (FNV-1a + splitmix64
/// finalizer for avalanche). Stable across processes, platforms and runs.
[[nodiscard]] uint64_t stable_hash64(std::string_view bytes);

/// Routing bucket of a single-image [C, H, W] (or [1, C, H, W]) shape:
/// channels exact, H and W rounded up to the next power of two. Nearby
/// resolutions (every tile size a video pipeline emits between 33 and 64)
/// share a bucket and therefore a shard, concentrating plan-cache hits
/// without pinning the whole workload to one worker.
[[nodiscard]] std::string shape_bucket(const Shape& image);

/// The ring key a request routes by.
[[nodiscard]] std::string routing_key(const std::string& model, const Shape& image);

class HashRing {
 public:
  explicit HashRing(int vnodes = 128);

  /// Idempotent; `node` must be non-empty.
  void add_node(const std::string& node);
  /// Idempotent.
  void remove_node(const std::string& node);

  /// Owner of `key`: the first node point clockwise of stable_hash64(key).
  /// Throws std::runtime_error on an empty ring.
  [[nodiscard]] const std::string& owner(std::string_view key) const;

  /// The first `count` *distinct* nodes clockwise of the key (fan-out
  /// targets for tile-split; fewer when the ring holds fewer nodes).
  [[nodiscard]] std::vector<std::string> owners(std::string_view key, int count) const;

  [[nodiscard]] bool contains(const std::string& node) const {
    return members_.count(node) > 0;
  }
  [[nodiscard]] size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] std::vector<std::string> nodes() const {
    return {members_.begin(), members_.end()};
  }
  [[nodiscard]] int vnodes() const { return vnodes_; }

 private:
  size_t first_point_at_or_after(uint64_t hash) const;

  int vnodes_;
  std::set<std::string> members_;
  /// Sorted ring points (hash -> owning node). Rebuilt-in-place on
  /// membership change — membership changes are rare (deaths, joins), reads
  /// are per-request, so a flat sorted vector beats a tree.
  std::vector<std::pair<uint64_t, std::string>> points_;
};

}  // namespace sesr::dist
