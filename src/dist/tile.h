// Tile-split with halo exchange: bit-exact divide-and-conquer upscaling.
//
// An EDSR-class request over a large frame is wall-clock-bound on one shard;
// the frontend instead cuts the LR image into horizontal bands and fans them
// out to different shards. Correctness hinges on the halo: every output
// pixel of a convolutional SR net depends on input pixels within the net's
// receptive-field radius R, so each band is extracted *with up to R extra
// rows of its neighbours' data on each side* (the halo — neighbour data
// exchanged into the tile at cut time), upscaled independently, and the
// halo's upscaled rows (R * scale per side) cropped before stitching:
//
//        LR image rows          tile 1 sent      tile 1 kept (after crop)
//   ┌──────────────────┐     ┌─────────────┐
//   │ tile 0 core      │     │ halo (R)    │  ← neighbour rows, cropped
//   ├──────────────────┤     ├─────────────┤
//   │ tile 1 core      │     │ core        │  → rows [begin*s, end*s)
//   ├──────────────────┤     ├─────────────┤       of the output
//   │ tile 2 core      │     │ halo (R)    │  ← neighbour rows, cropped
//   └──────────────────┘     └─────────────┘
//
// Interior core pixels then see exactly the same input neighbourhood as in
// the whole-image run, and the per-pixel kernel arithmetic (im2col patch
// accumulation, requantisation, activation LUTs) is position-independent —
// so the stitched result is bit-identical to upscale() on the whole image,
// in fp32 and int8 alike. Image borders keep the whole-image behaviour for
// free: edge tiles take no halo past the border, so the kernels' zero
// padding applies at true image edges only.
//
// The halo must be >= the true receptive-field radius; receptive_field_radius
// computes a conservative (over- never under-estimating) bound from the
// module's structural trace. Models whose output is NOT a local function of
// the input neighbourhood (e.g. a global-bicubic-residual wrapper sampling
// with border clamping) are not tile-splittable; the frontend only splits
// models with a registered halo.
#pragma once

#include <cstdint>
#include <vector>

#include "models/upscaler.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sesr::dist {

/// One horizontal band. Core rows [row_begin, row_end) in LR coordinates;
/// the extracted tile additionally carries halo_top/halo_bottom neighbour
/// rows (clamped at the image borders, so edge tiles keep true-edge
/// zero-padding semantics).
struct TileSpec {
  int64_t row_begin = 0;
  int64_t row_end = 0;
  int64_t halo_top = 0;
  int64_t halo_bottom = 0;

  [[nodiscard]] int64_t core_rows() const { return row_end - row_begin; }
  [[nodiscard]] int64_t tile_rows() const { return core_rows() + halo_top + halo_bottom; }
};

struct TilePlan {
  int64_t height = 0;  ///< LR image height the plan covers
  int64_t halo = 0;    ///< requested halo radius (per side, before clamping)
  int64_t scale = 2;
  std::vector<TileSpec> tiles;
};

/// Split `height` LR rows into at most `tiles` contiguous bands (fewer when
/// height < tiles; rows distribute within ±1). Throws std::invalid_argument
/// for height < 1, tiles < 1, halo < 0 or scale < 1.
[[nodiscard]] TilePlan plan_row_tiles(int64_t height, int tiles, int64_t halo, int64_t scale);

/// Copy one band (core + clamped halo) out of `image` ([C, H, W] or
/// [1, C, H, W]) as a fresh [1, C, tile_rows, W] tensor.
[[nodiscard]] Tensor extract_tile(const Tensor& image, const TileSpec& spec);

/// Crop `upscaled_tile`'s halo rows and write its core rows into `output`
/// ([1, C, scale*H, scale*W], preallocated).
void stitch_tile(const Tensor& upscaled_tile, const TileSpec& spec, const TilePlan& plan,
                 Tensor& output);

/// Conservative receptive-field radius (in LR input rows) of `module` for a
/// single [C, H, W] image: a structural-trace walk summing every layer's
/// kernel radius at its operating resolution, with an interpolation guard
/// for kernel-less upsamplers. Never under-estimates for feed-forward CNNs,
/// so it is a safe tile halo. (Collapsed SESR-M5: 9 — two 5x5 plus five 3x3
/// convs at LR scale.)
[[nodiscard]] int64_t receptive_field_radius(const nn::Module& module,
                                             const Shape& single_image_chw);

/// Reference tiled path: plan, extract, upscale each tile through
/// `upscaler`, stitch. Bit-identical to upscaler.upscale(image) when `halo`
/// >= the model's receptive-field radius — the property the tile tests gate.
/// The distributed frontend runs the same plan with the per-tile upscales
/// fanned out over shards.
[[nodiscard]] Tensor upscale_tiled(models::Upscaler& upscaler, const Tensor& image, int tiles,
                                   int64_t halo);

}  // namespace sesr::dist
