// Shard process lifecycle: spawning, killing, and wiring up local clusters.
//
// The distributed tier's failure unit is an OS process — a shard that
// segfaults, is OOM-killed, or SIGKILLed mid-batch must not take the
// frontend or its sibling shards with it. ShardProcess wraps one spawned
// `sesr_shard` worker (fork + exec, no shell); LocalCluster spawns N of them
// on sockets under a private temp directory and hands the frontend a
// matching Options — the standard harness for the dist tests and
// bench_dist_load, including their kill-a-shard-mid-run scenarios.
//
// Fault injection surface: kill_hard (SIGKILL — instant EOF on the socket,
// the crash case), sigstop/sigcont (a hung-but-connected shard — only the
// heartbeat can catch this one), terminate (SIGTERM), and respawn_shard
// (recovery: a fresh process on the same socket, handed back as the address
// for Frontend::add_shard).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "dist/frontend.h"

namespace sesr::dist {

/// One spawned worker process. Destruction SIGKILLs and reaps it if still
/// running — a test that forgets cleanup does not leak processes.
class ShardProcess {
 public:
  /// fork + execv `binary` with `args` (argv[0] is derived from binary).
  /// Throws std::runtime_error when the fork fails; an unrunnable binary
  /// surfaces as exit code 127 from wait().
  ShardProcess(std::string binary, const std::vector<std::string>& args);
  ~ShardProcess();

  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  [[nodiscard]] pid_t pid() const { return pid_; }

  void kill_hard();  ///< SIGKILL + reap (idempotent)
  void sigstop();    ///< freeze: simulates a hung shard (socket stays open)
  void sigcont();
  void terminate();  ///< SIGTERM (not reaped; follow with wait())

  /// Reap (blocking) and return the raw waitpid status; 0 if already reaped.
  int wait();

  /// Still running? (non-blocking; reaps on exit)
  [[nodiscard]] bool running();

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
};

/// Build-time fallback location of the sesr_shard binary: test and bench
/// targets compile with SESR_SHARD_BIN_DEFAULT pointing at the build tree;
/// the SESR_SHARD_BIN knob overrides it (installed deployments, CI). Inline
/// on purpose — the macro must expand in the *caller's* translation unit.
inline std::string shard_binary_path() {
  std::string configured = core::config_string("SESR_SHARD_BIN");
  if (!configured.empty()) return configured;
#ifdef SESR_SHARD_BIN_DEFAULT
  return SESR_SHARD_BIN_DEFAULT;
#else
  return {};
#endif
}

/// N shard processes + ready-made Frontend::Options, sockets in a private
/// temp dir, everything torn down (SIGKILL + unlink) on destruction.
class LocalCluster {
 public:
  struct Options {
    int shards = 2;
    /// Model specs every shard serves (see dist::parse_model_spec).
    std::vector<std::string> model_specs = {"default=sesr_m5"};
    int workers_per_shard = 1;
    int64_t max_batch = 4;
    /// 0 = twice the frontend window, so windowed load never gets a shard
    /// queue-full refusal (the zero-drop invariant the benches gate).
    int64_t queue_capacity = 0;
    /// Frontend per-shard window; 0 = SESR_DIST_WINDOW.
    int64_t window = 0;
    /// Path to sesr_shard; empty = SESR_SHARD_BIN, then the caller's
    /// build-time default via shard_binary_path().
    std::string shard_binary;
  };

  explicit LocalCluster(const Options& options);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Frontend options wired to every spawned shard: addresses, the cluster
  /// window, and model_halo prefilled from each spec's receptive-field
  /// radius (so tile-split works out of the box when thresholds enable it).
  [[nodiscard]] Frontend::Options frontend_options() const;

  [[nodiscard]] int shards() const { return static_cast<int>(processes_.size()); }
  [[nodiscard]] Frontend::ShardAddress address(int index) const;
  [[nodiscard]] ShardProcess& process(int index) { return *processes_.at(index); }
  [[nodiscard]] int64_t window() const { return window_; }

  void kill_shard(int index) { process(index).kill_hard(); }

  /// Kill (if needed) and relaunch shard `index` on its original socket;
  /// returns the address to hand to Frontend::add_shard.
  Frontend::ShardAddress respawn_shard(int index);

 private:
  void spawn(int index);
  [[nodiscard]] std::string socket_path(int index) const;

  Options options_;
  std::string binary_;
  std::string dir_;
  int64_t window_ = 0;
  int64_t queue_capacity_ = 0;
  std::map<std::string, int64_t> model_halo_;
  std::vector<std::unique_ptr<ShardProcess>> processes_;
};

}  // namespace sesr::dist
