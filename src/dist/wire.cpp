#include "dist/wire.h"

#include <cstring>

namespace sesr::dist {

namespace {

void put_u16(std::vector<uint8_t>& out, uint16_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<uint8_t>(value >> shift));
}

void put_u64(std::vector<uint8_t>& out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<uint8_t>(value >> shift));
}

uint64_t read_le(const uint8_t* bytes, int count) {
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return value;
}

}  // namespace

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kSubmit: return "submit";
    case MessageType::kReply: return "reply";
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kShutdown: return "shutdown";
  }
  return "?";
}

void encode_header(const WireHeader& header, uint8_t out[kHeaderBytes]) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kHeaderBytes);
  put_u32(bytes, header.magic);
  put_u16(bytes, header.version);
  put_u16(bytes, static_cast<uint16_t>(header.type));
  put_u64(bytes, header.request_id);
  put_u64(bytes, header.body_bytes);
  std::memcpy(out, bytes.data(), kHeaderBytes);
}

WireHeader decode_header(const uint8_t bytes[kHeaderBytes]) {
  WireHeader header;
  header.magic = static_cast<uint32_t>(read_le(bytes, 4));
  header.version = static_cast<uint16_t>(read_le(bytes + 4, 2));
  const uint16_t type = static_cast<uint16_t>(read_le(bytes + 6, 2));
  header.request_id = read_le(bytes + 8, 8);
  header.body_bytes = read_le(bytes + 16, 8);

  if (header.magic != kWireMagic)
    throw WireError("bad magic 0x" + std::to_string(header.magic) + " (not a SDW1 peer)");
  if (header.version != kWireVersion)
    throw WireError("protocol version " + std::to_string(header.version) + " != supported " +
                    std::to_string(kWireVersion));
  if (type < static_cast<uint16_t>(MessageType::kSubmit) ||
      type > static_cast<uint16_t>(MessageType::kShutdown))
    throw WireError("unknown message type " + std::to_string(type));
  header.type = static_cast<MessageType>(type);
  if (header.body_bytes > kMaxBodyBytes)
    throw WireError("body of " + std::to_string(header.body_bytes) + " bytes exceeds the " +
                    std::to_string(kMaxBodyBytes) + "-byte frame cap");
  return header;
}

// ---- WireWriter ------------------------------------------------------------

void WireWriter::u8(uint8_t value) { bytes_.push_back(value); }
void WireWriter::u32(uint32_t value) { put_u32(bytes_, value); }
void WireWriter::i64(int64_t value) { put_u64(bytes_, static_cast<uint64_t>(value)); }

void WireWriter::str(const std::string& value) {
  u32(static_cast<uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void WireWriter::tensor(const Tensor& value) {
  u32(static_cast<uint32_t>(value.ndim()));
  for (const int64_t dim : value.shape().dims()) i64(dim);
  // Raw little-endian float32 payload. The tier is same-architecture by
  // construction (one host, N processes); a cross-endian deployment would
  // bump kWireVersion.
  const auto* data = reinterpret_cast<const uint8_t*>(value.data());
  bytes_.insert(bytes_.end(), data, data + static_cast<size_t>(value.numel()) * 4);
}

// ---- WireReader ------------------------------------------------------------

const uint8_t* WireReader::need(size_t count) {
  if (bytes_.size() - pos_ < count)
    throw WireError("truncated body: need " + std::to_string(count) + " bytes at offset " +
                    std::to_string(pos_) + " of " + std::to_string(bytes_.size()));
  const uint8_t* at = bytes_.data() + pos_;
  pos_ += count;
  return at;
}

uint8_t WireReader::u8() { return *need(1); }
uint32_t WireReader::u32() { return static_cast<uint32_t>(read_le(need(4), 4)); }
int64_t WireReader::i64() { return static_cast<int64_t>(read_le(need(8), 8)); }

std::string WireReader::str() {
  const uint32_t length = u32();
  const uint8_t* at = need(length);
  return std::string(reinterpret_cast<const char*>(at), length);
}

Tensor WireReader::tensor() {
  const uint32_t ndim = u32();
  if (ndim > 8) throw WireError("tensor rank " + std::to_string(ndim) + " out of range");
  std::vector<int64_t> dims(ndim);
  int64_t numel = 1;
  for (uint32_t i = 0; i < ndim; ++i) {
    dims[i] = i64();
    if (dims[i] < 0 || (dims[i] > 0 && numel > static_cast<int64_t>(kMaxBodyBytes) / 4 / dims[i]))
      throw WireError("tensor dimension " + std::to_string(dims[i]) + " out of range");
    numel *= dims[i];
  }
  Shape shape(std::move(dims));
  const uint8_t* payload = need(static_cast<size_t>(numel) * 4);
  Tensor out{shape};
  std::memcpy(out.data(), payload, static_cast<size_t>(numel) * 4);
  return out;
}

// ---- messages --------------------------------------------------------------

namespace {

void check_exhausted(const WireReader& reader, const char* what) {
  if (!reader.exhausted())
    throw WireError(std::string(what) + ": trailing bytes after the message body");
}

}  // namespace

std::vector<uint8_t> encode_submit(const SubmitMessage& message) {
  WireWriter writer;
  writer.str(message.model);
  writer.str(message.tenant);
  writer.i64(message.deadline_ms);
  writer.tensor(message.image);
  // Trailing trace extension: only on traced requests, so untraced traffic
  // is byte-identical to the pre-extension encoding.
  if (message.trace_id != 0) {
    writer.i64(static_cast<int64_t>(message.trace_id));
    writer.i64(static_cast<int64_t>(message.parent_span));
  }
  return writer.take();
}

SubmitMessage decode_submit(uint64_t request_id, const std::vector<uint8_t>& body) {
  WireReader reader(body);
  SubmitMessage message;
  message.request_id = request_id;
  message.model = reader.str();
  message.tenant = reader.str();
  message.deadline_ms = reader.i64();
  message.image = reader.tensor();
  if (!reader.exhausted()) {
    message.trace_id = static_cast<uint64_t>(reader.i64());
    message.parent_span = static_cast<uint64_t>(reader.i64());
  }
  check_exhausted(reader, "submit");
  return message;
}

std::vector<uint8_t> encode_reply(const ReplyMessage& message) {
  WireWriter writer;
  writer.u8(message.status);
  writer.str(message.error);
  writer.i64(message.model_version);
  writer.tensor(message.output);
  return writer.take();
}

ReplyMessage decode_reply(uint64_t request_id, const std::vector<uint8_t>& body) {
  WireReader reader(body);
  ReplyMessage message;
  message.request_id = request_id;
  message.status = reader.u8();
  message.error = reader.str();
  message.model_version = reader.i64();
  message.output = reader.tensor();
  check_exhausted(reader, "reply");
  return message;
}

std::vector<uint8_t> encode_pong(const PongMessage& message) {
  WireWriter writer;
  writer.i64(message.in_flight);
  writer.str(message.stats_json);
  // Trailing metrics extension: absent when the shard has nothing to report,
  // keeping the pre-extension encoding byte-identical.
  if (!message.metrics_json.empty()) writer.str(message.metrics_json);
  return writer.take();
}

PongMessage decode_pong(uint64_t seq, const std::vector<uint8_t>& body) {
  WireReader reader(body);
  PongMessage message;
  message.seq = seq;
  message.in_flight = reader.i64();
  message.stats_json = reader.str();
  if (!reader.exhausted()) message.metrics_json = reader.str();
  check_exhausted(reader, "pong");
  return message;
}

}  // namespace sesr::dist
