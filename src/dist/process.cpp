#include "dist/process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "dist/shard.h"
#include "dist/tile.h"

namespace sesr::dist {

// ---- ShardProcess ----------------------------------------------------------

ShardProcess::ShardProcess(std::string binary, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(binary.data());
  for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  pid_ = ::fork();
  if (pid_ < 0)
    throw std::runtime_error(std::string("ShardProcess: fork(): ") + strerror(errno));
  if (pid_ == 0) {
    // Child: exec immediately (fork-then-exec keeps this safe under TSan —
    // the child touches nothing but execv). Inherits the environment, so
    // SESR_* knobs flow through to the shard.
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
}

ShardProcess::~ShardProcess() { kill_hard(); }

void ShardProcess::kill_hard() {
  if (reaped_) return;
  ::kill(pid_, SIGKILL);
  wait();
}

void ShardProcess::sigstop() {
  if (!reaped_) ::kill(pid_, SIGSTOP);
}

void ShardProcess::sigcont() {
  if (!reaped_) ::kill(pid_, SIGCONT);
}

void ShardProcess::terminate() {
  if (!reaped_) ::kill(pid_, SIGTERM);
}

int ShardProcess::wait() {
  if (reaped_) return 0;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  reaped_ = true;
  return status;
}

bool ShardProcess::running() {
  if (reaped_) return false;
  int status = 0;
  const pid_t got = ::waitpid(pid_, &status, WNOHANG);
  if (got == pid_) reaped_ = true;
  return !reaped_;
}

// ---- LocalCluster ----------------------------------------------------------

LocalCluster::LocalCluster(const Options& options) : options_(options) {
  if (options_.shards < 1) throw std::invalid_argument("LocalCluster: shards must be >= 1");
  binary_ = options_.shard_binary.empty() ? core::config_string("SESR_SHARD_BIN")
                                          : options_.shard_binary;
  if (binary_.empty())
    throw std::runtime_error(
        "LocalCluster: no sesr_shard binary — pass Options::shard_binary "
        "(e.g. dist::shard_binary_path()) or set SESR_SHARD_BIN");
  window_ = options_.window > 0 ? options_.window : core::config_int64("SESR_DIST_WINDOW");
  queue_capacity_ = options_.queue_capacity > 0 ? options_.queue_capacity : 2 * window_;

  // Halo per model id, from the spec'd architecture's receptive field — the
  // frontend needs it before any shard answers, and the specs are the same
  // deterministic recipe the shards build from.
  for (const std::string& text : options_.model_specs) {
    const ModelSpec spec = parse_model_spec(text);
    model_halo_[spec.id] = receptive_field_radius(*build_network(spec), spec.calib);
  }

  char dir_template[] = "/tmp/sesr_dist_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr)
    throw std::runtime_error(std::string("LocalCluster: mkdtemp(): ") + strerror(errno));
  dir_ = dir_template;

  processes_.resize(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) spawn(i);
}

LocalCluster::~LocalCluster() {
  for (auto& process : processes_)
    if (process) process->kill_hard();
  // A SIGKILLed shard never unlinks its socket file; sweep the temp dir.
  for (int i = 0; i < shards(); ++i) ::unlink(socket_path(i).c_str());
  ::rmdir(dir_.c_str());
}

std::string LocalCluster::socket_path(int index) const {
  return dir_ + "/shard" + std::to_string(index) + ".sock";
}

Frontend::ShardAddress LocalCluster::address(int index) const {
  return {"shard" + std::to_string(index), socket_path(index)};
}

void LocalCluster::spawn(int index) {
  std::vector<std::string> args = {"--socket", socket_path(index)};
  for (const std::string& spec : options_.model_specs) {
    args.push_back("--model");
    args.push_back(spec);
  }
  args.push_back("--workers");
  args.push_back(std::to_string(options_.workers_per_shard));
  args.push_back("--max-batch");
  args.push_back(std::to_string(options_.max_batch));
  args.push_back("--queue");
  args.push_back(std::to_string(queue_capacity_));
  processes_[static_cast<size_t>(index)] = std::make_unique<ShardProcess>(binary_, args);
}

Frontend::ShardAddress LocalCluster::respawn_shard(int index) {
  process(index).kill_hard();
  ::unlink(socket_path(index).c_str());
  spawn(index);
  return address(index);
}

Frontend::Options LocalCluster::frontend_options() const {
  Frontend::Options options;
  for (int i = 0; i < shards(); ++i) options.shards.push_back(address(i));
  options.window = window_;
  options.model_halo = model_halo_;
  return options;
}

}  // namespace sesr::dist
