#include "dist/frontend.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/config.h"
#include "dist/wire.h"
#include "obs/trace.h"

namespace sesr::dist {

using serve::ServeReply;
using serve::ServeStatus;

namespace {

constexpr auto kNoDeadlinePoint = std::chrono::steady_clock::time_point::max();

Tensor as_batched_image(Tensor image) {
  const Shape& shape = image.shape();
  if (shape.ndim() == 4 && shape[0] == 1) return image;
  if (shape.ndim() == 3)
    return std::move(image).reshaped(Shape({1, shape[0], shape[1], shape[2]}));
  throw std::invalid_argument("Frontend: expected [C, H, W] or [1, C, H, W], got " +
                              shape.to_string());
}

}  // namespace

// ---- internal state --------------------------------------------------------

/// One tile-split request in flight: the stitch target plus completion
/// bookkeeping shared by its per-tile Pending entries.
struct Frontend::TileJob {
  TilePlan plan;
  Tensor output;  ///< [1, C, scale*H, scale*W], stitched under `mutex`
  std::shared_ptr<serve::detail::ResultState> state;

  std::mutex mutex;
  int remaining = 0;
  bool failed = false;
  ServeStatus fail_status = ServeStatus::kError;
  std::string error;
  int64_t version = 0;

  /// Trace identity of the whole tiled request: trace.span_id is the job's
  /// "request" root span, recorded when the last tile lands.
  obs::TraceContext trace;
  uint64_t parent_span = 0;
  int64_t accepted_ns = 0;
};

/// One request (or one tile of one) the frontend has admitted but not yet
/// answered. The input tensor is retained here — that retention is what
/// makes work-stealing off a dead shard possible.
struct Frontend::Pending {
  uint64_t id = 0;
  std::string model;
  std::string tenant;
  std::chrono::steady_clock::time_point deadline = kNoDeadlinePoint;
  Tensor image;  ///< [1, C, H, W]
  /// Completion target for a plain request; null for a tile member.
  std::shared_ptr<serve::detail::ResultState> state;
  std::shared_ptr<TileJob> job;  ///< non-null for a tile member
  size_t tile_index = 0;
  /// Preferred ring node (tile fan-out); falls back to owner() when dead.
  std::string pinned;
  int attempts = 0;
  /// Trace identity: trace.span_id is this request's (or tile's) root span,
  /// parent_span what it nests under — the caller's span for a plain
  /// request, the TileJob root for a tile. rpc_span/sent_ns describe the
  /// current send attempt; the "rpc" span is recorded when the reply lands
  /// (a stolen attempt's span id is simply never recorded).
  obs::TraceContext trace;
  uint64_t parent_span = 0;
  uint64_t rpc_span = 0;
  int64_t accepted_ns = 0;
  int64_t sent_ns = 0;
};

struct Frontend::ShardState {
  ShardAddress address;
  std::shared_ptr<Connection> connection;
  std::thread reader;
  bool alive = true;
  int unanswered_pings = 0;
  int64_t reported_in_flight = 0;
  std::string stats_json;
  std::string metrics_json;  ///< RegistrySnapshot JSON from the last pong
  /// Requests sent to this shard, keyed by request id. Guarded by
  /// Frontend::mutex_; map size is the in-flight window occupancy.
  std::map<uint64_t, Pending> pending;
};

// ---- construction ----------------------------------------------------------

Frontend::Frontend(const Options& options) : options_(options) {
  if (options_.shards.empty()) throw std::invalid_argument("Frontend: no shards configured");
  if (options_.window <= 0) options_.window = core::config_int64("SESR_DIST_WINDOW");
  if (options_.heartbeat_interval.count() <= 0)
    options_.heartbeat_interval =
        std::chrono::milliseconds(core::config_int64("SESR_DIST_HEARTBEAT_MS"));
  if (options_.heartbeat_misses <= 0)
    options_.heartbeat_misses = static_cast<int>(core::config_int64("SESR_DIST_HEARTBEAT_MISSES"));
  if (options_.tile_threshold_pixels < 0)
    options_.tile_threshold_pixels = core::config_int64("SESR_DIST_TILE_THRESHOLD");
  if (options_.tile_max <= 0)
    options_.tile_max = static_cast<int>(core::config_int64("SESR_DIST_TILE_MAX"));
  ring_ = HashRing(options_.vnodes);

  const std::vector<ShardAddress> addresses = options_.shards;
  for (const ShardAddress& address : addresses) add_shard(address);
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

Frontend::~Frontend() { stop(); }

void Frontend::add_shard(const ShardAddress& address) {
  if (address.name.empty()) throw std::invalid_argument("add_shard: empty shard name");
  std::shared_ptr<Connection> connection =
      connect_unix(address.socket_path, options_.connect_timeout);
  auto shard = std::make_shared<ShardState>();
  shard->address = address;
  shard->connection = std::move(connection);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("add_shard: frontend is stopped");
    auto it = shards_.find(address.name);
    if (it != shards_.end()) {
      if (it->second->alive)
        throw std::invalid_argument("add_shard: shard '" + address.name + "' is already live");
      retired_.push_back(std::move(it->second));  // reader joined at stop()
      it->second = shard;
    } else {
      shards_[address.name] = shard;
    }
    ring_.add_node(address.name);
    shard->reader = std::thread([this, shard] { reader_loop(shard); });
  }
  window_cv_.notify_all();
}

// ---- submission ------------------------------------------------------------

serve::ServeFuture Frontend::submit(Tensor image, const serve::Server::SubmitOptions& options) {
  Tensor batched = as_batched_image(std::move(image));
  auto state = std::make_shared<serve::detail::ResultState>();
  serve::ServeFuture future = serve::detail_make_future(state);

  // The frontend is the trace edge: adopt the caller's context or mint a
  // fresh root here, before routing decides between plain and tiled paths.
  obs::TraceContext trace = options.trace;
  if (!trace && obs::trace_enabled()) trace = obs::start_trace();

  int64_t halo = 0;
  bool tiled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tiled = tile_eligible_locked(options, batched.shape(), &halo);
  }
  if (tiled) return submit_tiled(std::move(batched), options, std::move(state), halo, trace);

  submitted_.inc();
  Pending pending;
  pending.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending.model = options.model;
  pending.tenant = options.tenant;
  if (options.deadline.count() > 0)
    pending.deadline = std::chrono::steady_clock::now() + options.deadline;
  pending.image = std::move(batched);
  pending.state = std::move(state);
  if (trace) {
    pending.parent_span = trace.span_id;
    pending.trace = {trace.trace_id, obs::next_span_id()};
    pending.accepted_ns = obs::trace_now_ns();
  }
  route_and_send(std::move(pending), /*blocking=*/true);
  return future;
}

void Frontend::submit_async(Tensor image, const serve::Server::SubmitOptions& options,
                            serve::ServeCallback callback) {
  Tensor batched = as_batched_image(std::move(image));
  auto state = std::make_shared<serve::detail::ResultState>();
  state->callback = std::move(callback);

  obs::TraceContext trace = options.trace;
  if (!trace && obs::trace_enabled()) trace = obs::start_trace();

  int64_t halo = 0;
  bool tiled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tiled = tile_eligible_locked(options, batched.shape(), &halo);
  }
  if (tiled) {
    submit_tiled(std::move(batched), options, std::move(state), halo, trace);
    return;
  }

  submitted_.inc();
  Pending pending;
  pending.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending.model = options.model;
  pending.tenant = options.tenant;
  if (options.deadline.count() > 0)
    pending.deadline = std::chrono::steady_clock::now() + options.deadline;
  pending.image = std::move(batched);
  pending.state = std::move(state);
  if (trace) {
    pending.parent_span = trace.span_id;
    pending.trace = {trace.trace_id, obs::next_span_id()};
    pending.accepted_ns = obs::trace_now_ns();
  }
  route_and_send(std::move(pending), /*blocking=*/true);
}

bool Frontend::try_submit(Tensor image, const serve::Server::SubmitOptions& options,
                          serve::ServeCallback callback) {
  Tensor batched = as_batched_image(std::move(image));
  auto state = std::make_shared<serve::detail::ResultState>();
  state->callback = std::move(callback);

  Pending pending;
  pending.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  pending.model = options.model;
  pending.tenant = options.tenant;
  if (options.deadline.count() > 0)
    pending.deadline = std::chrono::steady_clock::now() + options.deadline;
  pending.image = std::move(batched);
  pending.state = std::move(state);
  obs::TraceContext trace = options.trace;
  if (!trace && obs::trace_enabled()) trace = obs::start_trace();
  if (trace) {
    pending.parent_span = trace.span_id;
    pending.trace = {trace.trace_id, obs::next_span_id()};
    pending.accepted_ns = obs::trace_now_ns();
  }
  if (!route_and_send(std::move(pending), /*blocking=*/false)) {
    rejected_.inc();
    return false;
  }
  submitted_.inc();
  return true;
}

bool Frontend::tile_eligible_locked(const serve::Server::SubmitOptions& options,
                                    const Shape& shape, int64_t* halo_out) const {
  if (options_.tile_threshold_pixels <= 0) return false;
  if (shape[2] * shape[3] < options_.tile_threshold_pixels) return false;
  const auto it = options_.model_halo.find(options.model);
  if (it == options_.model_halo.end()) return false;
  // One live shard gains nothing from splitting; a band still stitches
  // correctly, but the fan-out is the point.
  if (ring_.size() < 2) return false;
  if (shape[2] < 2) return false;
  *halo_out = it->second;
  return true;
}

serve::ServeFuture Frontend::submit_tiled(Tensor image,
                                          const serve::Server::SubmitOptions& options,
                                          std::shared_ptr<serve::detail::ResultState> state,
                                          int64_t halo, obs::TraceContext trace) {
  serve::ServeFuture future = serve::detail_make_future(state);
  submitted_.inc();
  tiled_.inc();

  const int64_t channels = image.shape()[1];
  const int64_t height = image.shape()[2];
  const int64_t width = image.shape()[3];

  int tiles;
  std::vector<std::string> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tiles = static_cast<int>(std::min<int64_t>(
        {static_cast<int64_t>(options_.tile_max), static_cast<int64_t>(ring_.size()), height}));
    if (tiles < 1) tiles = 1;
    // Deterministic fan-out: the image's ring successors, one per tile. The
    // first is the shard a non-split request would have hit (plan-cache
    // affinity for the common path).
    targets = ring_.owners(routing_key(options.model, image.shape()), tiles);
  }

  auto job = std::make_shared<TileJob>();
  job->plan = plan_row_tiles(height, tiles, halo, /*scale=*/2);
  job->output = Tensor(Shape({1, channels, height * job->plan.scale, width * job->plan.scale}));
  job->state = std::move(state);
  job->remaining = static_cast<int>(job->plan.tiles.size());
  if (trace) {
    job->parent_span = trace.span_id;
    job->trace = {trace.trace_id, obs::next_span_id()};
    job->accepted_ns = obs::trace_now_ns();
  }

  const auto deadline = options.deadline.count() > 0
                            ? std::chrono::steady_clock::now() + options.deadline
                            : kNoDeadlinePoint;
  const int64_t fanout_start_ns = job->trace ? obs::trace_now_ns() : 0;
  for (size_t i = 0; i < job->plan.tiles.size(); ++i) {
    Pending pending;
    pending.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    pending.model = options.model;
    pending.tenant = options.tenant;
    pending.deadline = deadline;
    pending.image = extract_tile(image, job->plan.tiles[i]);
    pending.job = job;
    pending.tile_index = i;
    if (!targets.empty()) pending.pinned = targets[i % targets.size()];
    if (job->trace) {
      // Each tile gets its own root nested under the job's request span.
      pending.parent_span = job->trace.span_id;
      pending.trace = {job->trace.trace_id, obs::next_span_id()};
      pending.accepted_ns = obs::trace_now_ns();
    }
    route_and_send(std::move(pending), /*blocking=*/true);
  }
  if (job->trace)
    obs::record_span(job->trace.trace_id, obs::next_span_id(), job->trace.span_id, "tile_fanout",
                     fanout_start_ns, obs::trace_now_ns());
  return future;
}

// ---- routing ---------------------------------------------------------------

bool Frontend::route_and_send(Pending pending, bool blocking) {
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (pending.deadline != kNoDeadlinePoint && now >= pending.deadline) {
      ServeReply reply;
      reply.status = ServeStatus::kShed;
      reply.error = "deadline expired before dispatch";
      complete_pending(pending, std::move(reply));
      return true;
    }

    const uint64_t id = pending.id;
    std::shared_ptr<ShardState> target;
    std::vector<uint8_t> body;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_ || ring_.empty()) {
        const bool stopped = stopping_;
        lock.unlock();
        if (!blocking) return false;
        ServeReply reply;
        reply.status = ServeStatus::kError;
        reply.error = stopped ? "frontend stopped" : "no live shards";
        complete_pending(pending, std::move(reply));
        return true;
      }

      const std::string node = (!pending.pinned.empty() && ring_.contains(pending.pinned))
                                   ? pending.pinned
                                   : ring_.owner(routing_key(pending.model, pending.image.shape()));
      std::shared_ptr<ShardState> shard = shards_.at(node);

      if (static_cast<int64_t>(shard->pending.size()) >= options_.window) {
        if (!blocking) return false;
        window_cv_.wait(lock, [&] {
          return stopping_ || !shard->alive ||
                 static_cast<int64_t>(shard->pending.size()) < options_.window;
        });
        continue;  // the world may have changed; re-route from scratch
      }

      // Retry budget: a request that bounced off more shards than exist has
      // hit a correlated failure, not a transient one.
      if (++pending.attempts > static_cast<int>(shards_.size()) + 2) {
        lock.unlock();
        ServeReply reply;
        reply.status = ServeStatus::kError;
        reply.error = "request re-routed off " + std::to_string(pending.attempts - 1) +
                      " shards without an answer";
        complete_pending(pending, std::move(reply));
        return true;
      }

      // Encode with the *remaining* deadline budget; the tensor is moved
      // through the message and back, never copied.
      SubmitMessage message;
      message.request_id = pending.id;
      message.model = pending.model;
      message.tenant = pending.tenant;
      if (pending.trace) {
        // Fresh rpc span per attempt: the shard parents its server_request
        // under it. A stolen attempt's id is simply never recorded.
        pending.rpc_span = obs::next_span_id();
        pending.sent_ns = obs::trace_now_ns();
        message.trace_id = pending.trace.trace_id;
        message.parent_span = pending.rpc_span;
      }
      message.deadline_ms =
          pending.deadline == kNoDeadlinePoint
              ? SubmitMessage::kNoDeadline
              : std::max<int64_t>(1, std::chrono::duration_cast<std::chrono::milliseconds>(
                                         pending.deadline - now)
                                         .count());
      message.image = std::move(pending.image);
      body = encode_submit(message);
      pending.image = std::move(message.image);

      target = std::move(shard);
      target->pending.emplace(id, std::move(pending));
      // `pending` is now owned by the shard's map: the reply path or the
      // death path will pop it, exactly one of them.
    }

    // Send outside the frontend lock (the connection's own mutex serializes
    // frames). A failed send means the peer is gone: the death path steals
    // everything in its map — including the entry just inserted — and
    // re-routes it, so this request is answered either way.
    if (!target->connection->send(MessageType::kSubmit, id, body))
      handle_shard_death(target->address.name);
    return true;
  }
}

// ---- replies ---------------------------------------------------------------

void Frontend::reader_loop(std::shared_ptr<ShardState> shard) {
  try {
    while (std::optional<Frame> frame = shard->connection->recv()) {
      if (frame->header.type == MessageType::kReply) {
        handle_reply(shard, *frame);
      } else if (frame->header.type == MessageType::kPong) {
        PongMessage pong = decode_pong(frame->header.request_id, frame->body);
        std::lock_guard<std::mutex> lock(mutex_);
        shard->unanswered_pings = 0;
        shard->reported_in_flight = pong.in_flight;
        shard->stats_json = std::move(pong.stats_json);
        if (!pong.metrics_json.empty()) shard->metrics_json = std::move(pong.metrics_json);
      }
    }
  } catch (const WireError&) {
    // Protocol violation == broken peer; fall through to the death path.
  }
  handle_shard_death(shard->address.name);
}

void Frontend::handle_reply(const std::shared_ptr<ShardState>& shard, const Frame& frame) {
  ReplyMessage message = decode_reply(frame.header.request_id, frame.body);
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = shard->pending.find(message.request_id);
    if (it == shard->pending.end()) return;  // already stolen or unknown
    pending = std::move(it->second);
    shard->pending.erase(it);
  }
  window_cv_.notify_all();

  // The rpc span covers send → reply receipt; the shard's server_request
  // root nests inside it (one host, shared CLOCK_MONOTONIC).
  if (pending.trace && pending.rpc_span != 0)
    obs::record_span(pending.trace.trace_id, pending.rpc_span, pending.trace.span_id, "rpc",
                     pending.sent_ns, obs::trace_now_ns());

  ServeReply reply;
  reply.status = message.status <= 2 ? static_cast<ServeStatus>(message.status)
                                     : ServeStatus::kError;
  reply.error = std::move(message.error);
  reply.model_version = message.model_version;
  if (reply.ok()) reply.output = std::move(message.output);
  complete_pending(pending, std::move(reply));
}

void Frontend::complete_pending(Pending& pending, ServeReply reply) {
  if (pending.job) {
    finish_tile(pending, std::move(reply));
    return;
  }
  switch (reply.status) {
    case ServeStatus::kOk: completed_.inc(); break;
    case ServeStatus::kShed: shed_.inc(); break;
    case ServeStatus::kError: failed_.inc(); break;
  }
  if (pending.trace)
    obs::record_span(pending.trace.trace_id, pending.trace.span_id, pending.parent_span, "request",
                     pending.accepted_ns, obs::trace_now_ns());
  serve::detail::complete_result(*pending.state, std::move(reply));
}

void Frontend::finish_tile(const Pending& pending, ServeReply reply) {
  TileJob& job = *pending.job;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (reply.ok()) {
      const int64_t stitch_start_ns = pending.trace ? obs::trace_now_ns() : 0;
      stitch_tile(reply.output, job.plan.tiles[pending.tile_index], job.plan, job.output);
      if (pending.trace)
        obs::record_span(pending.trace.trace_id, obs::next_span_id(), pending.trace.span_id,
                         "halo_stitch", stitch_start_ns, obs::trace_now_ns());
      job.version = std::max(job.version, reply.model_version);
    } else if (!job.failed) {
      job.failed = true;
      job.fail_status = reply.status;
      job.error = "tile " + std::to_string(pending.tile_index) + ": " + reply.error;
    }
    last = (--job.remaining == 0);
  }
  // The tile's own root closes after its stitch; the job root closes after
  // the last tile, so every tile span nests inside the job window.
  if (pending.trace)
    obs::record_span(pending.trace.trace_id, pending.trace.span_id, pending.parent_span, "tile",
                     pending.accepted_ns, obs::trace_now_ns());
  if (!last) return;

  ServeReply out;
  if (job.failed) {
    out.status = job.fail_status;
    out.error = std::move(job.error);
    if (out.status == ServeStatus::kShed)
      shed_.inc();
    else
      failed_.inc();
  } else {
    out.status = ServeStatus::kOk;
    out.output = std::move(job.output);
    out.model_version = job.version;
    completed_.inc();
  }
  if (job.trace)
    obs::record_span(job.trace.trace_id, job.trace.span_id, job.parent_span, "request",
                     job.accepted_ns, obs::trace_now_ns());
  serve::detail::complete_result(*job.state, std::move(out));
}

// ---- failure handling ------------------------------------------------------

void Frontend::handle_shard_death(const std::string& name) {
  std::vector<Pending> stolen;
  std::shared_ptr<ShardState> shard;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = shards_.find(name);
    if (it == shards_.end() || !it->second->alive) return;  // already handled
    shard = it->second;
    shard->alive = false;
    ring_.remove_node(name);
    stolen.reserve(shard->pending.size());
    for (auto& [id, pending] : shard->pending) stolen.push_back(std::move(pending));
    shard->pending.clear();
    if (!stopping_) shard_deaths_.inc();
  }
  shard->connection->shutdown();  // unblock its reader if death came from a failed send
  window_cv_.notify_all();

  // Work-steal: the frontend kept every input, so the dead shard's
  // un-replied requests re-route to the survivors under the post-removal
  // ring. Requests it already answered left the map first — no duplicates.
  for (Pending& pending : stolen) {
    resubmitted_.inc();
    route_and_send(std::move(pending), /*blocking=*/true);
  }
}

void Frontend::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    window_cv_.wait_for(lock, options_.heartbeat_interval, [&] { return stopping_; });
    if (stopping_) break;

    const uint64_t seq = heartbeat_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::vector<std::pair<std::string, std::shared_ptr<Connection>>> targets;
    std::vector<std::string> dead;
    for (auto& [name, shard] : shards_) {
      if (!shard->alive) continue;
      if (++shard->unanswered_pings > options_.heartbeat_misses) {
        // Missed too many pongs: hung (e.g. SIGSTOPped) but socket-alive —
        // EOF will never come, so the heartbeat is what declares it dead.
        dead.push_back(name);
        continue;
      }
      targets.emplace_back(name, shard->connection);
    }

    lock.unlock();
    for (auto& [name, connection] : targets)
      if (!connection->send(MessageType::kPing, seq)) dead.push_back(name);
    for (const std::string& name : dead) handle_shard_death(name);
    lock.lock();
  }
}

// ---- introspection / shutdown ----------------------------------------------

FrontendStats Frontend::stats() const {
  FrontendStats out;
  out.submitted = submitted_.value();
  out.completed = completed_.value();
  out.shed = shed_.value();
  out.failed = failed_.value();
  out.rejected = rejected_.value();
  out.tiled = tiled_.value();
  out.resubmitted = resubmitted_.value();
  out.shard_deaths = shard_deaths_.value();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, shard] : shards_) {
    ShardInfo info;
    info.alive = shard->alive;
    info.in_flight = static_cast<int64_t>(shard->pending.size());
    info.reported_in_flight = shard->reported_in_flight;
    info.stats_json = shard->stats_json;
    info.metrics_json = shard->metrics_json;
    out.shards[name] = info;
  }
  return out;
}

obs::RegistrySnapshot Frontend::fleet_metrics() const {
  std::vector<std::string> shard_snapshots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, shard] : shards_) {
      // Refresh per-shard gauges on demand; counters are always live.
      metrics_.gauge("frontend.in_flight|shard=" + name)
          .set(static_cast<int64_t>(shard->pending.size()));
      metrics_.gauge("frontend.shard_alive|shard=" + name).set(shard->alive ? 1 : 0);
      if (!shard->metrics_json.empty()) shard_snapshots.push_back(shard->metrics_json);
    }
  }
  obs::RegistrySnapshot out = metrics_.snapshot();
  for (const std::string& json : shard_snapshots)
    out.merge(obs::RegistrySnapshot::from_json(json));
  return out;
}

std::string Frontend::fleet_metrics_json() const { return fleet_metrics().to_json(); }

std::string Frontend::fleet_metrics_prometheus() const {
  return fleet_metrics().to_prometheus();
}

std::vector<std::string> Frontend::alive_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, shard] : shards_)
    if (shard->alive) out.push_back(name);
  return out;
}

void Frontend::stop() {
  std::vector<std::shared_ptr<ShardState>> shards;
  std::vector<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [name, shard] : shards_) {
      shards.push_back(shard);
      for (auto& [id, pending] : shard->pending) orphans.push_back(std::move(pending));
      shard->pending.clear();
    }
    for (auto& shard : retired_) shards.push_back(shard);
    retired_.clear();
  }
  window_cv_.notify_all();
  for (const auto& shard : shards) shard->connection->shutdown();
  if (heartbeat_.joinable()) heartbeat_.join();
  for (const auto& shard : shards)
    if (shard->reader.joinable()) shard->reader.join();
  for (Pending& pending : orphans) {
    ServeReply reply;
    reply.status = ServeStatus::kError;
    reply.error = "frontend stopped";
    complete_pending(pending, std::move(reply));
  }
}

}  // namespace sesr::dist
