// Stream transport under the distributed tier's wire format.
//
// Unix-domain SOCK_STREAM sockets: the tier's processes share one host (the
// deployment unit is "one box, N shard processes pinned to disjoint cores"),
// so a filesystem-addressed byte stream with kernel-managed backpressure is
// the right primitive — no TCP handshake latency, no port allocation, and a
// SIGKILLed peer surfaces as an immediate EOF on the other end, which is
// exactly the failure signal the frontend's re-hash path consumes.
//
// Connection is a framed endpoint over one connected fd:
//   - send() writes header + body atomically with respect to other senders
//     (an internal mutex serializes writers — the frontend's submit threads
//     and heartbeat share one connection, a shard's worker callbacks too);
//   - recv() reassembles exactly one frame, looping over short reads; it is
//     meant for a single reader thread per connection.
//
// All operations degrade to clean failure rather than signals or exceptions
// on the data path: SIGPIPE is suppressed (MSG_NOSIGNAL), send() returns
// false once the peer is gone, recv() returns nullopt on EOF or a broken
// stream. Malformed frames (bad magic/version/oversized) throw WireError —
// that is a protocol bug or a hostile peer, not a liveness event.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/wire.h"

namespace sesr::dist {

/// One received frame: validated header + raw body (decode_* parses it).
struct Frame {
  WireHeader header;
  std::vector<uint8_t> body;
};

class Connection {
 public:
  /// Adopt a connected stream fd (closes it on destruction).
  explicit Connection(int fd);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Write one frame. False when the peer is unreachable (connection reset,
  /// closed, or shut down); the connection is dead afterwards.
  bool send(MessageType type, uint64_t request_id, const std::vector<uint8_t>& body);

  /// Header-only frame (ping / shutdown).
  bool send(MessageType type, uint64_t request_id) { return send(type, request_id, {}); }

  /// Read exactly one frame. nullopt on EOF / reset / after shutdown();
  /// throws WireError when the peer speaks a different protocol.
  std::optional<Frame> recv();

  /// Unblock a reader parked in recv() (and fail future sends) without
  /// closing the fd out from under it: shutdown(2) on both directions.
  void shutdown();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::mutex send_mutex_;
};

/// Listening unix-domain socket. The path is unlinked on bind (stale socket
/// files from a killed predecessor must not block restart) and on close.
class Listener {
 public:
  explicit Listener(std::string socket_path);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Block for the next inbound connection; nullptr once close()d.
  std::unique_ptr<Connection> accept();

  /// Unblock accept() and stop listening. Idempotent.
  void close();

  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  int fd_ = -1;
};

/// Connect to a shard's listening socket, retrying until `timeout` — the
/// spawner races the shard's bind, so "not there yet" is expected for the
/// first few milliseconds. Throws std::runtime_error when time runs out.
std::unique_ptr<Connection> connect_unix(const std::string& socket_path,
                                         std::chrono::milliseconds timeout);

}  // namespace sesr::dist
