#include "dist/tile.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace sesr::dist {

TilePlan plan_row_tiles(int64_t height, int tiles, int64_t halo, int64_t scale) {
  if (height < 1) throw std::invalid_argument("plan_row_tiles: height must be >= 1");
  if (tiles < 1) throw std::invalid_argument("plan_row_tiles: tiles must be >= 1");
  if (halo < 0) throw std::invalid_argument("plan_row_tiles: halo must be >= 0");
  if (scale < 1) throw std::invalid_argument("plan_row_tiles: scale must be >= 1");

  TilePlan plan;
  plan.height = height;
  plan.halo = halo;
  plan.scale = scale;

  // Every tile must own at least one core row.
  const int64_t count = std::min<int64_t>(tiles, height);
  const int64_t base = height / count;
  const int64_t extra = height % count;  // first `extra` tiles take one more row
  int64_t row = 0;
  for (int64_t i = 0; i < count; ++i) {
    TileSpec spec;
    spec.row_begin = row;
    spec.row_end = row + base + (i < extra ? 1 : 0);
    // Halos clamp at the image borders: edge tiles see the true edge, so the
    // model's zero padding applies exactly where the whole-image run pads.
    spec.halo_top = std::min(halo, spec.row_begin);
    spec.halo_bottom = std::min(halo, height - spec.row_end);
    row = spec.row_end;
    plan.tiles.push_back(spec);
  }
  return plan;
}

namespace {

struct ImageDims {
  int64_t channels = 0;
  int64_t height = 0;
  int64_t width = 0;
};

ImageDims image_dims(const Tensor& image, const char* who) {
  const Shape& shape = image.shape();
  if (shape.ndim() == 3) return {shape[0], shape[1], shape[2]};
  if (shape.ndim() == 4 && shape[0] == 1) return {shape[1], shape[2], shape[3]};
  throw std::invalid_argument(std::string(who) + ": expected [C, H, W] or [1, C, H, W], got " +
                              shape.to_string());
}

}  // namespace

Tensor extract_tile(const Tensor& image, const TileSpec& spec) {
  const ImageDims dims = image_dims(image, "extract_tile");
  const int64_t first = spec.row_begin - spec.halo_top;
  const int64_t last = spec.row_end + spec.halo_bottom;  // exclusive
  if (first < 0 || last > dims.height || spec.row_begin >= spec.row_end)
    throw std::invalid_argument("extract_tile: tile rows out of range");

  const int64_t rows = last - first;
  Tensor tile(Shape({1, dims.channels, rows, dims.width}));
  const float* src = image.data();
  float* dst = tile.data();
  for (int64_t c = 0; c < dims.channels; ++c) {
    std::memcpy(dst + c * rows * dims.width,
                src + (c * dims.height + first) * dims.width,
                static_cast<size_t>(rows * dims.width) * sizeof(float));
  }
  return tile;
}

void stitch_tile(const Tensor& upscaled_tile, const TileSpec& spec, const TilePlan& plan,
                 Tensor& output) {
  const ImageDims tile = image_dims(upscaled_tile, "stitch_tile(tile)");
  const ImageDims out = image_dims(output, "stitch_tile(output)");
  const int64_t scale = plan.scale;
  if (tile.channels != out.channels)
    throw std::invalid_argument("stitch_tile: channel mismatch");
  if (tile.height != spec.tile_rows() * scale || tile.width != out.width)
    throw std::invalid_argument("stitch_tile: upscaled tile shape does not match spec");
  if (out.height != plan.height * scale)
    throw std::invalid_argument("stitch_tile: output height does not match plan");

  const int64_t skip = spec.halo_top * scale;           // upscaled halo rows to crop
  const int64_t rows = spec.core_rows() * scale;        // upscaled core rows to keep
  const int64_t dst_row = spec.row_begin * scale;
  const float* src = upscaled_tile.data();
  float* dst = output.data();
  for (int64_t c = 0; c < tile.channels; ++c) {
    std::memcpy(dst + (c * out.height + dst_row) * out.width,
                src + (c * tile.height + skip) * tile.width,
                static_cast<size_t>(rows * out.width) * sizeof(float));
  }
}

int64_t receptive_field_radius(const nn::Module& module, const Shape& single_image_chw) {
  if (single_image_chw.ndim() != 3)
    throw std::invalid_argument("receptive_field_radius: expected [C, H, W], got " +
                                single_image_chw.to_string());
  const Shape input({1, single_image_chw[0], single_image_chw[1], single_image_chw[2]});
  std::vector<nn::LayerInfo> layers;
  module.trace(input, &layers);

  // Sum every layer's kernel radius, expressed in *network-input* rows: a
  // layer operating at k times the input resolution (after an upsampler)
  // contributes ceil(radius / k). Summing over a flat trace over-counts
  // parallel branches (concat/residual arms trace sequentially) — that only
  // ever makes the bound larger, which is the safe direction for a halo.
  const double base_height = static_cast<double>(input[2]);
  int64_t radius = 0;
  for (const nn::LayerInfo& layer : layers) {
    const int64_t layer_height = layer.input.ndim() >= 3 ? layer.input[-2] : input[2];
    const double resolution = std::max(1.0, static_cast<double>(layer_height) / base_height);
    int64_t taps = std::max(layer.kernel_h, layer.kernel_w);
    int64_t local = taps > 1 ? (taps - 1) / 2 : 0;
    // Kernel-less resolution raisers: DepthToSpace is a pure pixel shuffle
    // (radius 0), but an interpolating upsampler (bicubic and friends) reads
    // a neighbourhood the trace records no kernel for — charge the bicubic
    // support radius of 2.
    if (local == 0 && layer.kind != nn::LayerKind::kDepthToSpace &&
        layer.output.ndim() >= 3 && layer.input.ndim() >= 3 &&
        layer.output[-2] > layer.input[-2])
      local = 2;
    radius += static_cast<int64_t>(std::ceil(static_cast<double>(local) / resolution));
  }
  return radius;
}

Tensor upscale_tiled(models::Upscaler& upscaler, const Tensor& image, int tiles, int64_t halo) {
  const ImageDims dims = image_dims(image, "upscale_tiled");
  const TilePlan plan = plan_row_tiles(dims.height, tiles, halo, /*scale=*/2);
  Tensor output(Shape({1, dims.channels, dims.height * plan.scale, dims.width * plan.scale}));
  for (const TileSpec& spec : plan.tiles) {
    const Tensor upscaled = upscaler.upscale(extract_tile(image, spec));
    stitch_tile(upscaled, spec, plan, output);
  }
  return output;
}

}  // namespace sesr::dist
