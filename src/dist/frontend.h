// Front-tier router of the distributed serving tier.
//
// The Frontend is the process clients talk to. It speaks the same submit
// surface as serve::Server — submit / submit_async / try_submit with
// serve::Server::SubmitOptions — but instead of a local worker pool it owns
// one framed connection per shard process and routes:
//
//     submit(image, {model, tenant, deadline})
//        │
//        ▼
//     consistent-hash ring: owner(routing_key(model, shape-bucket))
//        │                                  (dist/ring.h — stable ownership,
//        ▼                                   minimal movement on death/join)
//     per-shard bounded in-flight window ── full? submit blocks /
//        │                                  try_submit refuses (backpressure
//        ▼                                  propagates to the caller, work
//     kSubmit frame ──► shard ──► kReply    is shed at the edge, never
//                                           silently dropped)
//
// Fault tolerance: a heartbeat thread pings every live shard each tick;
// a shard that misses `heartbeat_misses` consecutive pongs — or whose
// connection EOFs (SIGKILL surfaces instantly on a unix socket) — is marked
// dead, removed from the ring, and every request that was in flight to it is
// *work-stolen*: the frontend retained each request's input tensor, so the
// un-replied ones are resubmitted to the surviving shards under the new ring
// assignment. A request admitted by submit() therefore completes with a real
// answer unless every shard is gone — the zero-loss-on-shard-death property
// bench_dist_load gates. add_shard() is the inverse path: a recovered shard
// rejoins the ring and takes its arc back.
//
// Tile-split: a request whose LR pixel count reaches tile_threshold_pixels
// (and whose model has a registered halo — see dist/tile.h for the halo
// math) is cut into row-band tiles fanned out to distinct ring successors,
// upscaled in parallel, and stitched bit-exactly into one reply. Tiles ride
// the same pending/window/steal machinery as plain requests, so a mid-tile
// shard death re-routes just the lost bands.
//
// Exactly-one-completion invariant: every admitted request lives in exactly
// one shard's pending map; the reply path erases it under the frontend lock
// before completing, the death path drains the whole map under the same
// lock before resubmitting. A request can therefore be answered or stolen,
// never both, and never neither.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/ring.h"
#include "dist/tile.h"
#include "dist/transport.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace sesr::dist {

/// Point-in-time view of one shard as the frontend sees it.
struct ShardInfo {
  bool alive = false;
  int64_t in_flight = 0;           ///< frontend-side pending to this shard
  int64_t reported_in_flight = 0;  ///< shard-side count from the last pong
  std::string stats_json;          ///< shard ServerStats from the last pong
  std::string metrics_json;        ///< shard RegistrySnapshot from the last pong
};

struct FrontendStats {
  int64_t submitted = 0;    ///< admitted (a tiled request counts once)
  int64_t completed = 0;    ///< answered kOk
  int64_t shed = 0;         ///< answered kShed (deadline)
  int64_t failed = 0;       ///< answered kError
  int64_t rejected = 0;     ///< refused at the door (window full / stopped)
  int64_t tiled = 0;        ///< requests that went down the tile-split path
  int64_t resubmitted = 0;  ///< individual sends re-routed off a dead shard
  int64_t shard_deaths = 0;
  std::map<std::string, ShardInfo> shards;
};

class Frontend {
 public:
  struct ShardAddress {
    std::string name;  ///< ring node id (stable across reconnects)
    std::string socket_path;
  };

  struct Options {
    std::vector<ShardAddress> shards;

    /// Per-shard in-flight window (backpressure). Default: SESR_DIST_WINDOW.
    int64_t window = 0;
    /// Heartbeat period. Default: SESR_DIST_HEARTBEAT_MS.
    std::chrono::milliseconds heartbeat_interval{0};
    /// Consecutive missed pongs before a shard is declared dead.
    /// Default: SESR_DIST_HEARTBEAT_MISSES.
    int heartbeat_misses = 0;
    /// Virtual nodes per shard on the ring.
    int vnodes = 128;

    /// LR pixel count (H*W) at which requests tile-split; 0 = never.
    /// Default: SESR_DIST_TILE_THRESHOLD.
    int64_t tile_threshold_pixels = -1;
    /// Max tiles per request. Default: SESR_DIST_TILE_MAX.
    int tile_max = 0;
    /// model id -> halo rows (>= the model's receptive-field radius; see
    /// receptive_field_radius). Models absent here are never tile-split.
    std::map<std::string, int64_t> model_halo;

    /// How long to retry connecting to each shard socket at startup.
    std::chrono::milliseconds connect_timeout{5000};
  };

  /// Connects to every shard and starts the reader + heartbeat threads.
  /// Throws std::runtime_error when a shard is unreachable within
  /// connect_timeout, std::invalid_argument on an empty shard list.
  explicit Frontend(const Options& options);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Route one image ([C, H, W] or [1, C, H, W]); blocks while the target
  /// shard's window is full. The returned future completes with the shard's
  /// reply, a locally-shed kShed, or kError after the retry budget.
  serve::ServeFuture submit(Tensor image, const serve::Server::SubmitOptions& options = {});

  /// Callback flavour; completion runs on a frontend reader thread.
  void submit_async(Tensor image, const serve::Server::SubmitOptions& options,
                    serve::ServeCallback callback);

  /// Non-blocking: false when the owner shard's window is full or the
  /// frontend is stopped (counted as rejected). Never tile-splits.
  bool try_submit(Tensor image, const serve::Server::SubmitOptions& options,
                  serve::ServeCallback callback);

  /// Connect a (new or recovered) shard and add it to the ring. Replaces a
  /// dead entry with the same name.
  void add_shard(const ShardAddress& address);

  [[nodiscard]] FrontendStats stats() const;
  [[nodiscard]] std::vector<std::string> alive_shards() const;

  /// Fleet-wide metrics: the frontend's own instruments merged with the
  /// registry snapshot every shard reported on its last pong. Counter merge
  /// is exact (int64 sums), so the fleet view equals the per-shard
  /// registries bit-for-bit.
  [[nodiscard]] obs::RegistrySnapshot fleet_metrics() const;
  [[nodiscard]] std::string fleet_metrics_json() const;
  [[nodiscard]] std::string fleet_metrics_prometheus() const;

  /// Stop routing: reject new work, complete still-pending requests with
  /// kError, join all threads. Does NOT shut the shard processes down (the
  /// spawner owns their lifecycle). Idempotent; the destructor calls it.
  void stop();

 private:
  struct TileJob;
  struct Pending;
  struct ShardState;

  void reader_loop(std::shared_ptr<ShardState> shard);
  void heartbeat_loop();
  void handle_reply(const std::shared_ptr<ShardState>& shard, const Frame& frame);
  void handle_shard_death(const std::string& name);
  /// Route + send one pending request. `blocking` waits out a full window;
  /// non-blocking returns false instead. On send failure the request is
  /// re-routed via the death path (it never vanishes).
  bool route_and_send(Pending pending, bool blocking);
  void complete_pending(Pending& pending, serve::ServeReply reply);
  void finish_tile(const Pending& pending, serve::ServeReply reply);
  bool tile_eligible_locked(const serve::Server::SubmitOptions& options, const Shape& shape,
                            int64_t* halo_out) const;
  serve::ServeFuture submit_tiled(Tensor image, const serve::Server::SubmitOptions& options,
                                  std::shared_ptr<serve::detail::ResultState> state,
                                  int64_t halo, obs::TraceContext trace);

  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable window_cv_;  ///< signalled when window slots free up
  HashRing ring_;
  std::map<std::string, std::shared_ptr<ShardState>> shards_;
  /// Dead shards replaced by add_shard; kept so stop() can join their
  /// (long-exited) reader threads.
  std::vector<std::shared_ptr<ShardState>> retired_;
  bool stopping_ = false;

  std::thread heartbeat_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> heartbeat_seq_{0};

  // Frontend counters as registry instruments (declared after metrics_ so
  // the references bind): the frontend's contribution to fleet_metrics().
  mutable obs::Registry metrics_;
  obs::Counter& submitted_ = metrics_.counter("frontend.submitted");
  obs::Counter& completed_ = metrics_.counter("frontend.completed");
  obs::Counter& shed_ = metrics_.counter("frontend.shed");
  obs::Counter& failed_ = metrics_.counter("frontend.failed");
  obs::Counter& rejected_ = metrics_.counter("frontend.rejected");
  obs::Counter& tiled_ = metrics_.counter("frontend.tiled");
  obs::Counter& resubmitted_ = metrics_.counter("frontend.resubmitted");
  obs::Counter& shard_deaths_ = metrics_.counter("frontend.shard_deaths");
};

}  // namespace sesr::dist
