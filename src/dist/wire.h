// Framed, versioned wire format of the distributed serving tier.
//
// Every message between a dist::Frontend and a dist::Shard is one frame:
//
//   ┌────────────┬──────────┬───────┬─────────────┬────────────┐
//   │ magic u32  │ ver u16  │ type  │ request u64 │ body  u64  │  24-byte
//   │ "SDW1"     │          │ u16   │ id          │ bytes      │  header
//   ├────────────┴──────────┴───────┴─────────────┴────────────┤
//   │ body (little-endian scalars, length-prefixed strings,    │
//   │ tensors as ndim + dims + raw float32 payload)            │
//   └──────────────────────────────────────────────────────────┘
//
// The magic catches a stray client on the socket; the version field makes
// rolling upgrades explicit — a decoder rejects frames from a different
// protocol version with a typed error instead of misparsing them. The
// request id lives in the header so a router can correlate replies without
// touching the body.
//
// Message types:
//   kSubmit    frontend -> shard   one upscale request (model, tenant,
//                                  remaining deadline, LR image)
//   kReply     shard -> frontend   completion (status, error, version, image)
//   kPing      frontend -> shard   heartbeat probe (header-only, id = seq)
//   kPong      shard -> frontend   heartbeat answer + ServerStats JSON
//   kShutdown  frontend -> shard   clean drain-and-exit (header-only)
//
// Encoding is deliberately explicit (no struct memcpy): every field is
// written scalar-by-scalar in little-endian order, so the format is
// byte-stable across compilers and the decoder can bounds-check each read
// (a truncated or hostile body throws WireError, never reads past the
// buffer).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sesr::dist {

inline constexpr uint32_t kWireMagic = 0x53445731;  // "SDW1"
inline constexpr uint16_t kWireVersion = 1;
/// Upper bound on one frame's body (64 MiB covers a [1, 3, 2048, 2048] fp32
/// image four times over); a header announcing more is treated as corrupt
/// rather than allocated.
inline constexpr uint64_t kMaxBodyBytes = uint64_t{64} << 20;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error("wire: " + what) {}
};

enum class MessageType : uint16_t {
  kSubmit = 1,
  kReply = 2,
  kPing = 3,
  kPong = 4,
  kShutdown = 5,
};

[[nodiscard]] const char* message_type_name(MessageType type);

struct WireHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  uint64_t body_bytes = 0;
};

inline constexpr size_t kHeaderBytes = 24;

/// Serialize `header` into exactly kHeaderBytes.
void encode_header(const WireHeader& header, uint8_t out[kHeaderBytes]);

/// Parse and validate a header. Throws WireError on bad magic, a version
/// other than kWireVersion, an unknown type, or an oversized body.
[[nodiscard]] WireHeader decode_header(const uint8_t bytes[kHeaderBytes]);

// ---- body primitives -------------------------------------------------------

/// Append-only little-endian body builder.
class WireWriter {
 public:
  void u8(uint8_t value);
  void u32(uint32_t value);
  void i64(int64_t value);
  void str(const std::string& value);   ///< u32 length + bytes
  void tensor(const Tensor& value);     ///< u32 ndim + i64 dims + f32 payload

  [[nodiscard]] std::vector<uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a received body; every accessor throws
/// WireError instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] uint8_t u8();
  [[nodiscard]] uint32_t u32();
  [[nodiscard]] int64_t i64();
  [[nodiscard]] std::string str();
  [[nodiscard]] Tensor tensor();

  /// All bytes consumed? Decoders assert this to catch length drift.
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const uint8_t* need(size_t count);

  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

// ---- messages --------------------------------------------------------------

/// One routed upscale request. `deadline_ms` is the *remaining* budget in
/// milliseconds at send time (relative, so frontend and shard need no shared
/// clock); kNoDeadline = none.
struct SubmitMessage {
  static constexpr int64_t kNoDeadline = -1;

  uint64_t request_id = 0;
  std::string model;
  std::string tenant;
  int64_t deadline_ms = kNoDeadline;
  Tensor image;  ///< [1, C, H, W] low-res input
  /// Optional trace extension (trailing, still protocol version 1): the
  /// frontend's trace id and the span the shard's work should parent to.
  /// Encoded only when trace_id != 0; a decoder that stops at the image —
  /// an older shard — simply serves the request untraced.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// Completion of one request (mirrors serve::ServeReply over the wire).
struct ReplyMessage {
  uint64_t request_id = 0;
  uint8_t status = 2;  ///< serve::ServeStatus as u8 (0 ok, 1 shed, 2 error)
  std::string error;
  int64_t model_version = 0;
  Tensor output;  ///< [1, C, 2H, 2W] when status == ok; empty otherwise
};

/// Heartbeat answer: echoes the ping's sequence number (in the header's
/// request id) and carries the shard's point-in-time ServerStats as JSON
/// plus its current in-flight count.
struct PongMessage {
  uint64_t seq = 0;
  int64_t in_flight = 0;
  std::string stats_json;
  /// Optional metrics extension (trailing): the shard's
  /// obs::RegistrySnapshot as JSON, the exact-merge unit behind the
  /// frontend's fleet view. Encoded only when non-empty; absent on the wire
  /// reads back as "".
  std::string metrics_json;
};

[[nodiscard]] std::vector<uint8_t> encode_submit(const SubmitMessage& message);
[[nodiscard]] SubmitMessage decode_submit(uint64_t request_id, const std::vector<uint8_t>& body);

[[nodiscard]] std::vector<uint8_t> encode_reply(const ReplyMessage& message);
[[nodiscard]] ReplyMessage decode_reply(uint64_t request_id, const std::vector<uint8_t>& body);

[[nodiscard]] std::vector<uint8_t> encode_pong(const PongMessage& message);
[[nodiscard]] PongMessage decode_pong(uint64_t seq, const std::vector<uint8_t>& body);

}  // namespace sesr::dist
