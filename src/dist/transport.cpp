#include "dist/transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace sesr::dist {

namespace {

/// Write all of `bytes` (handles short writes and EINTR). MSG_NOSIGNAL turns
/// a dead peer into EPIPE instead of a process-killing SIGPIPE.
bool send_all(int fd, const uint8_t* bytes, size_t count) {
  while (count > 0) {
    const ssize_t wrote = ::send(fd, bytes, count, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += wrote;
    count -= static_cast<size_t>(wrote);
  }
  return true;
}

/// Read exactly `count` bytes; false on EOF or a broken stream.
bool recv_all(int fd, uint8_t* bytes, size_t count) {
  while (count > 0) {
    const ssize_t got = ::recv(fd, bytes, count, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // orderly EOF
    bytes += got;
    count -= static_cast<size_t>(got);
  }
  return true;
}

sockaddr_un make_address(const std::string& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path))
    throw std::runtime_error("transport: socket path too long: " + socket_path);
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  return address;
}

}  // namespace

// ---- Connection ------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {
  if (fd_ < 0) throw std::invalid_argument("Connection: bad fd");
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::send(MessageType type, uint64_t request_id, const std::vector<uint8_t>& body) {
  WireHeader header;
  header.type = type;
  header.request_id = request_id;
  header.body_bytes = body.size();
  uint8_t header_bytes[kHeaderBytes];
  encode_header(header, header_bytes);

  // One frame must hit the stream contiguously: concurrent senders (submit
  // threads, heartbeat, shard completion callbacks) would otherwise
  // interleave header/body bytes.
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (!send_all(fd_, header_bytes, kHeaderBytes)) return false;
  return body.empty() || send_all(fd_, body.data(), body.size());
}

std::optional<Frame> Connection::recv() {
  uint8_t header_bytes[kHeaderBytes];
  if (!recv_all(fd_, header_bytes, kHeaderBytes)) return std::nullopt;
  Frame frame;
  frame.header = decode_header(header_bytes);  // throws WireError on protocol mismatch
  frame.body.resize(frame.header.body_bytes);
  if (frame.header.body_bytes > 0 && !recv_all(fd_, frame.body.data(), frame.body.size()))
    return std::nullopt;  // peer died mid-frame
  return frame;
}

void Connection::shutdown() { ::shutdown(fd_, SHUT_RDWR); }

// ---- Listener --------------------------------------------------------------

Listener::Listener(std::string socket_path) : socket_path_(std::move(socket_path)) {
  const sockaddr_un address = make_address(socket_path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("Listener: socket(): " + std::string(strerror(errno)));
  ::unlink(socket_path_.c_str());  // a stale predecessor's file must not block bind
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const std::string error = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Listener: bind(" + socket_path_ + "): " + error);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string error = strerror(errno);
    close();
    throw std::runtime_error("Listener: listen(" + socket_path_ + "): " + error);
  }
}

Listener::~Listener() { close(); }

std::unique_ptr<Connection> Listener::accept() {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::make_unique<Connection>(client);
    if (errno == EINTR) continue;
    return nullptr;  // close()d or the fd is gone
  }
}

void Listener::close() {
  if (fd_ < 0) return;
  // shutdown() unblocks a thread parked in accept() before the fd goes away.
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
  ::unlink(socket_path_.c_str());
}

// ---- connect ---------------------------------------------------------------

std::unique_ptr<Connection> connect_unix(const std::string& socket_path,
                                         std::chrono::milliseconds timeout) {
  const sockaddr_un address = make_address(socket_path);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("connect_unix: socket(): " + std::string(strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) == 0)
      return std::make_unique<Connection>(fd);
    const int error = errno;
    ::close(fd);
    // ENOENT / ECONNREFUSED: the shard has not bound (or not listened) yet —
    // the expected startup race. Anything else is a real failure.
    if (error != ENOENT && error != ECONNREFUSED)
      throw std::runtime_error("connect_unix(" + socket_path + "): " + strerror(error));
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("connect_unix(" + socket_path + "): timed out after " +
                               std::to_string(timeout.count()) + " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace sesr::dist
