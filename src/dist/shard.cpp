#include "dist/shard.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "dist/wire.h"
#include "models/edsr.h"
#include "models/sesr.h"
#include "quant/quantized_model.h"
#include "serve/stats_json.h"
#include "tensor/rng.h"

namespace sesr::dist {

// ---- model specs -----------------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t at = text.find(sep, start);
    parts.push_back(text.substr(start, at == std::string::npos ? at : at - start));
    if (at == std::string::npos) return parts;
    start = at + 1;
  }
}

int64_t parse_int(const std::string& text, const char* what) {
  try {
    size_t used = 0;
    const int64_t value = std::stoll(text, &used);
    if (used != text.size() || value < 0) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("model spec: bad ") + what + " '" + text + "'");
  }
}

}  // namespace

ModelSpec parse_model_spec(const std::string& text) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size())
    throw std::invalid_argument("model spec '" + text +
                                "': expected id=arch[:int8][:seed=N][:calib=CxHxW]");
  ModelSpec spec;
  spec.id = text.substr(0, eq);
  const std::vector<std::string> parts = split(text.substr(eq + 1), ':');
  spec.arch = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part == "int8") {
      spec.int8 = true;
    } else if (part.rfind("seed=", 0) == 0) {
      spec.seed = static_cast<uint64_t>(parse_int(part.substr(5), "seed"));
    } else if (part.rfind("calib=", 0) == 0) {
      const std::vector<std::string> dims = split(part.substr(6), 'x');
      if (dims.size() != 3)
        throw std::invalid_argument("model spec: calib wants CxHxW, got '" + part + "'");
      spec.calib = Shape({parse_int(dims[0], "calib C"), parse_int(dims[1], "calib H"),
                          parse_int(dims[2], "calib W")});
    } else {
      throw std::invalid_argument("model spec '" + text + "': unknown option '" + part + "'");
    }
  }
  static_cast<void>(build_network(spec));  // validates the arch name eagerly
  return spec;
}

std::shared_ptr<nn::Module> build_network(const ModelSpec& spec) {
  std::shared_ptr<nn::Module> network;
  if (spec.arch == "sesr_m2") {
    network = std::make_shared<models::Sesr>(models::SesrConfig::m2(),
                                             models::Sesr::Form::kInference);
  } else if (spec.arch == "sesr_m5") {
    network = std::make_shared<models::Sesr>(models::SesrConfig::m5(),
                                             models::Sesr::Form::kInference);
  } else if (spec.arch == "sesr_xl") {
    network = std::make_shared<models::Sesr>(models::SesrConfig::xl(),
                                             models::Sesr::Form::kInference);
  } else if (spec.arch == "edsr") {
    network = std::make_shared<models::Edsr>(models::EdsrConfig::base_repo());
  } else if (spec.arch == "edsr_full") {
    network = std::make_shared<models::Edsr>(models::EdsrConfig::full_repo());
  } else {
    throw std::invalid_argument("model spec: unknown arch '" + spec.arch +
                                "' (sesr_m2|sesr_m5|sesr_xl|edsr|edsr_full)");
  }
  // Seeded init: the whole determinism contract of the tier hangs on this
  // line producing the same bits in every process given the same seed.
  Rng rng(spec.seed);
  network->init_weights(rng);
  return network;
}

std::shared_ptr<serve::ModelRegistry> build_registry(const std::vector<ModelSpec>& specs) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  for (const ModelSpec& spec : specs) {
    std::shared_ptr<nn::Module> network = build_network(spec);
    registry->register_model(spec.id, spec.id, network);
    if (!spec.int8) continue;
    // Deterministic calibration: batches drawn from seed + 1 at the spec'd
    // shape. Int8 grids depend only on module structure + batches, so every
    // process publishes a bit-identical artifact at version 2.
    Rng calib_rng(spec.seed + 1);
    const Shape batch_shape({2, spec.calib[0], spec.calib[1], spec.calib[2]});
    std::vector<Tensor> batches;
    for (int i = 0; i < 2; ++i)
      batches.push_back(Tensor::rand(batch_shape, calib_rng, 0.0f, 1.0f));
    auto artifact = std::make_shared<quant::QuantizedModel>(
        quant::QuantizedModel::calibrate(*network, batch_shape, batches));
    registry->publish_int8(spec.id, std::move(artifact));
  }
  return registry;
}

// ---- Shard -----------------------------------------------------------------

Shard::Shard(const Options& options)
    : registry_(build_registry(options.models)),
      server_(std::make_unique<serve::Server>(registry_, options.server)),
      listener_(std::make_unique<Listener>(options.socket_path)) {
  if (options.models.empty()) throw std::invalid_argument("Shard: no models configured");
}

Shard::~Shard() { stop(); }

void Shard::run() {
  while (running_.load(std::memory_order_acquire)) {
    std::unique_ptr<Connection> accepted = listener_->accept();
    if (!accepted) break;
    std::shared_ptr<Connection> connection = std::move(accepted);
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(connection);
    threads_.emplace_back([this, connection] { serve_connection(connection); });
  }
  // Drain before exit: every request already admitted gets its reply sent
  // through the (still-open) connections by the server's completion
  // callbacks — a clean shutdown loses nothing.
  server_->stop();
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
    threads.swap(threads_);
  }
  for (const auto& connection : connections) connection->shutdown();
  for (std::thread& thread : threads) thread.join();
}

void Shard::stop() {
  running_.store(false, std::memory_order_release);
  listener_->close();  // unblocks run()'s accept()
}

void Shard::serve_connection(const std::shared_ptr<Connection>& connection) {
  try {
    while (std::optional<Frame> frame = connection->recv()) {
      switch (frame->header.type) {
        case MessageType::kSubmit:
          handle_submit(connection, *frame);
          break;
        case MessageType::kPing: {
          PongMessage pong;
          pong.seq = frame->header.request_id;
          pong.in_flight = in_flight_.load(std::memory_order_relaxed);
          pong.stats_json = serve::stats_to_json(server_->stats());
          pong.metrics_json = server_->metrics_json();
          connection->send(MessageType::kPong, pong.seq, encode_pong(pong));
          break;
        }
        case MessageType::kShutdown:
          stop();
          return;
        default:
          // kReply / kPong never arrive at a shard; a peer that sends them
          // is confused but not fatal.
          break;
      }
    }
  } catch (const WireError& error) {
    // Protocol violation: drop this connection, keep serving others.
    std::fprintf(stderr, "shard(%s): %s\n", listener_->socket_path().c_str(), error.what());
  }
}

void Shard::handle_submit(const std::shared_ptr<Connection>& connection, const Frame& frame) {
  SubmitMessage message = decode_submit(frame.header.request_id, frame.body);
  const uint64_t request_id = message.request_id;

  auto send_reply = [connection, request_id](serve::ServeReply reply) {
    ReplyMessage out;
    out.request_id = request_id;
    out.status = static_cast<uint8_t>(reply.status);
    out.error = std::move(reply.error);
    out.model_version = reply.model_version;
    if (reply.ok()) out.output = std::move(reply.output);
    connection->send(MessageType::kReply, request_id, encode_reply(out));
  };

  serve::Server::SubmitOptions options;
  options.model = std::move(message.model);
  options.tenant = std::move(message.tenant);
  if (message.deadline_ms != SubmitMessage::kNoDeadline) {
    // The wire carries *remaining* budget; an explicit 0 means "already due"
    // and must still shed rather than fall through to the server default.
    options.deadline = std::chrono::milliseconds(std::max<int64_t>(1, message.deadline_ms));
  }
  // The wire's trace extension continues the frontend's trace: the shard's
  // server_request root parents to the frontend's rpc span, and because both
  // processes share CLOCK_MONOTONIC the spans align on one timeline.
  options.trace = {message.trace_id, message.parent_span};

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto completion = [this, send_reply](serve::ServeReply reply) {
    send_reply(std::move(reply));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  };

  bool accepted = false;
  std::string refusal = "shard overloaded: queue full or tenant over quota";
  try {
    accepted = server_->try_submit(std::move(message.image), options, completion);
  } catch (const std::exception& error) {
    refusal = error.what();  // e.g. unregistered model id
  }
  if (!accepted) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    serve::ServeReply reply;
    reply.status = serve::ServeStatus::kError;
    reply.error = refusal;
    send_reply(std::move(reply));
  }
}

}  // namespace sesr::dist
