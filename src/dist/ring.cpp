#include "dist/ring.h"

#include <algorithm>
#include <stdexcept>

namespace sesr::dist {

uint64_t stable_hash64(std::string_view bytes) {
  // FNV-1a over the bytes...
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  // ...then a splitmix64 finalizer: FNV alone avalanches poorly in the high
  // bits, and ring placement consumes the full 64-bit value.
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

namespace {

int64_t next_pow2(int64_t value) {
  int64_t out = 1;
  while (out < value) out <<= 1;
  return out;
}

}  // namespace

std::string shape_bucket(const Shape& image) {
  if (image.ndim() != 3 && image.ndim() != 4)
    throw std::invalid_argument("shape_bucket: expected [C, H, W] or [1, C, H, W], got " +
                                image.to_string());
  const int offset = image.ndim() == 4 ? 1 : 0;
  return std::to_string(image[offset]) + "x" + std::to_string(next_pow2(image[offset + 1])) +
         "x" + std::to_string(next_pow2(image[offset + 2]));
}

std::string routing_key(const std::string& model, const Shape& image) {
  return model + "|" + shape_bucket(image);
}

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  if (vnodes < 1) throw std::invalid_argument("HashRing: vnodes must be >= 1");
}

void HashRing::add_node(const std::string& node) {
  if (node.empty()) throw std::invalid_argument("HashRing: empty node name");
  if (!members_.insert(node).second) return;
  points_.reserve(points_.size() + static_cast<size_t>(vnodes_));
  for (int replica = 0; replica < vnodes_; ++replica)
    points_.emplace_back(stable_hash64(node + "#" + std::to_string(replica)), node);
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove_node(const std::string& node) {
  if (members_.erase(node) == 0) return;
  std::erase_if(points_, [&](const auto& point) { return point.second == node; });
}

size_t HashRing::first_point_at_or_after(uint64_t hash) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const auto& point, uint64_t value) { return point.first < value; });
  // Wrap: a key past the last point belongs to the first (the "ring" part).
  return it == points_.end() ? 0 : static_cast<size_t>(it - points_.begin());
}

const std::string& HashRing::owner(std::string_view key) const {
  if (points_.empty()) throw std::runtime_error("HashRing: no nodes");
  return points_[first_point_at_or_after(stable_hash64(key))].second;
}

std::vector<std::string> HashRing::owners(std::string_view key, int count) const {
  std::vector<std::string> out;
  if (points_.empty()) return out;  // fan-out over nothing: empty, not a throw
  const int wanted = std::min<int>(count, static_cast<int>(members_.size()));
  size_t at = first_point_at_or_after(stable_hash64(key));
  for (size_t step = 0; step < points_.size() && static_cast<int>(out.size()) < wanted; ++step) {
    const std::string& node = points_[(at + step) % points_.size()].second;
    if (std::find(out.begin(), out.end(), node) == out.end()) out.push_back(node);
  }
  return out;
}

}  // namespace sesr::dist
