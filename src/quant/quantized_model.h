// The quantised serving artifact: everything the int8 runtime backend needs
// beyond the float module itself.
//
// QuantizedModel::calibrate compiles a module's float inference plan, runs
// representative batches through it with per-step range observers, and
// freezes the result into one record per plan step: the calibrated output
// grid (QParams), and — for layers with integer kernels — int8 weights
// (symmetric, per-tensor or per-output-channel), int32 biases on the
// accumulator grid (scale s_in * s_w[oc]), and the per-channel weight scales
// from which the runtime derives its fixed-point requantisation multipliers.
// The record sequence mirrors the plan's step sequence, which is a function
// of the module's structure alone (not the input shape), so one calibrated
// artifact serves int8 plans at any input resolution.
//
// The artifact serialises to a standalone binary (save/load) and round-trips
// bit-identically — deploy-once, serve-anywhere. simulate_fake_quant() is the
// float-kernel twin of the int8 backend (dequantised weights, per-step
// activation fake-quant): the reference the integer kernels are validated
// against, and the fallback semantics for layers without integer kernels.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/module.h"
#include "quant/observer.h"
#include "quant/qparams.h"

namespace sesr::quant {

struct CalibrationOptions {
  ObserverKind observer = ObserverKind::kMinMax;
  /// Per-output-channel weight scales (sharper grids for convs whose filters
  /// differ in magnitude — the Ethos-U55 convention). Per-tensor otherwise.
  bool per_channel_weights = true;
};

/// How one plan step executes under the int8 backend.
enum class StepOp : uint8_t {
  kConv2d = 0,        ///< integer conv kernel (packed weights)
  kDepthwise = 1,     ///< integer depthwise kernel
  kLinear = 2,        ///< integer fully-connected kernel
  kActivation = 3,    ///< integer pointwise activation
  kDepthToSpace = 4,  ///< data movement, grid unchanged
  kTileChannels = 5,  ///< data movement, grid unchanged
  kAdd = 6,           ///< saturating integer residual add
  kScale = 7,         ///< integer rescale
  kConcat = 8,        ///< per-source integer rescale into the concat buffer
  kFallback = 9,      ///< float kernel bracketed by (de)quantisation
};

/// Quantisation record for one plan step.
struct StepQuant {
  StepOp op = StepOp::kFallback;
  std::string name;  ///< plan-step identity ("conv3x3_16_16", "add", ...)
  QParams in;        ///< input grid (weight layers; consistency-checked at lowering)
  QParams out;       ///< calibrated output grid

  // Weight payloads — kConv2d / kDepthwise / kLinear only.
  std::vector<int8_t> weights;       ///< layer layout, row-major
  std::vector<int32_t> bias;         ///< accumulator grid; empty = no bias
  std::vector<float> weight_scales;  ///< per out channel, or a single entry
};

class QuantizedModel {
 public:
  /// Calibrate `module` (which must support compiled inference) over
  /// representative `batches`, all shaped `input`. Throws when the module
  /// cannot compile, no batches are given, or a batch shape mismatches.
  static QuantizedModel calibrate(const nn::Module& module, const Shape& input,
                                  std::span<const Tensor> batches,
                                  const CalibrationOptions& opts = {});

  [[nodiscard]] const QParams& input_qparams() const { return input_; }
  [[nodiscard]] const std::vector<StepQuant>& steps() const { return steps_; }
  [[nodiscard]] bool per_channel() const { return per_channel_; }

  /// Total int8 weight bytes held by the artifact (diagnostics).
  [[nodiscard]] int64_t weight_bytes() const;

  /// Binary (de)serialisation; round-trips bit-identically.
  void save(const std::string& path) const;
  static QuantizedModel load(const std::string& path);

 private:
  QuantizedModel() = default;

  QParams input_;
  std::vector<StepQuant> steps_;
  bool per_channel_ = true;
};

/// The fake-quant gold model the int8 backend is validated against: an
/// interpreter of `module`'s float plan that evaluates every integer-covered
/// op in double precision over the artifact's dequantised weights and rounds
/// each step output onto its calibrated grid (layers without integer kernels
/// run their float kernel, exactly as the int8 fallback path does). The int8
/// session agrees with this reference to within one LSB of the output grid.
[[nodiscard]] Tensor simulate_fake_quant(const nn::Module& module,
                                         const QuantizedModel& artifact,
                                         const Tensor& input);

}  // namespace sesr::quant
