// Calibration observers: estimate activation ranges from representative data.
//
// Post-training quantisation picks each tensor's int8 grid from statistics of
// real activations. An Observer accumulates those statistics over calibration
// batches; qparams() converts them into the affine grid the runtime uses.
// Two estimators are provided, mirroring the standard PTQ toolbox:
//
//  - MinMaxObserver: the absolute min/max ever seen. Safest (no clipping),
//    but a single outlier batch can stretch the grid and waste resolution.
//  - MovingAverageObserver: an exponential moving average of per-batch
//    min/max. Smooths outliers at the cost of possible slight clipping —
//    the usual choice when many calibration batches are available.
#pragma once

#include <memory>

#include "quant/qparams.h"
#include "tensor/tensor.h"

namespace sesr::quant {

class Observer {
 public:
  virtual ~Observer() = default;

  /// Fold one calibration batch into the range estimate.
  virtual void observe(const Tensor& values) = 0;

  /// True once at least one batch has been observed.
  [[nodiscard]] bool seen() const { return seen_; }
  [[nodiscard]] float min() const { return lo_; }
  [[nodiscard]] float max() const { return hi_; }

  /// Asymmetric activation grid for the observed range. Valid (and hardened
  /// against degenerate ranges) even before any observation.
  [[nodiscard]] QParams qparams() const {
    return choose_activation_qparams(seen_ ? lo_ : 0.0f, seen_ ? hi_ : 0.0f);
  }

 protected:
  bool seen_ = false;
  float lo_ = 0.0f;
  float hi_ = 0.0f;
};

/// Running absolute min/max over all observed batches.
class MinMaxObserver final : public Observer {
 public:
  void observe(const Tensor& values) override;
};

/// Exponential moving average of per-batch min/max:
///   range <- momentum * range + (1 - momentum) * batch_range
/// (first batch initialises the range directly).
class MovingAverageObserver final : public Observer {
 public:
  explicit MovingAverageObserver(float momentum = 0.9f);
  void observe(const Tensor& values) override;

  [[nodiscard]] float momentum() const { return momentum_; }

 private:
  float momentum_;
};

enum class ObserverKind {
  kMinMax,
  kMovingAverage,
};

[[nodiscard]] std::unique_ptr<Observer> make_observer(ObserverKind kind);

}  // namespace sesr::quant
