#include "quant/observer.h"

#include <algorithm>
#include <stdexcept>

namespace sesr::quant {

void MinMaxObserver::observe(const Tensor& values) {
  const float lo = values.min(), hi = values.max();
  if (!seen_) {
    lo_ = lo;
    hi_ = hi;
    seen_ = true;
    return;
  }
  lo_ = std::min(lo_, lo);
  hi_ = std::max(hi_, hi);
}

MovingAverageObserver::MovingAverageObserver(float momentum) : momentum_(momentum) {
  if (!(momentum >= 0.0f && momentum < 1.0f))
    throw std::invalid_argument("MovingAverageObserver: momentum must be in [0, 1)");
}

void MovingAverageObserver::observe(const Tensor& values) {
  const float lo = values.min(), hi = values.max();
  if (!seen_) {
    lo_ = lo;
    hi_ = hi;
    seen_ = true;
    return;
  }
  lo_ = momentum_ * lo_ + (1.0f - momentum_) * lo;
  hi_ = momentum_ * hi_ + (1.0f - momentum_) * hi;
}

std::unique_ptr<Observer> make_observer(ObserverKind kind) {
  switch (kind) {
    case ObserverKind::kMinMax:
      return std::make_unique<MinMaxObserver>();
    case ObserverKind::kMovingAverage:
      return std::make_unique<MovingAverageObserver>();
  }
  throw std::invalid_argument("make_observer: unknown kind");
}

}  // namespace sesr::quant
