// Affine quantisation parameters for the int8 serving path.
//
// A float tensor x is represented on an integer grid as q = round(x / scale)
// + zero_point, clamped to [qmin, qmax]; dequantisation is x ~= scale *
// (q - zero_point). Activations use the full asymmetric int8 range
// [-128, 127]; weights use the symmetric range [-127, 127] with zero_point 0
// (per tensor or per output channel), which keeps integer convolution free of
// weight-offset correction terms — the Ethos-U55's native convention.
//
// choose_qparams is hardened against the degenerate ranges calibration can
// produce (constant activations, all-zero tensors): the encoded range always
// contains 0, always has positive width, and the returned scale is always a
// positive finite float — downstream integer kernels never see a zero or NaN
// scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace sesr::quant {

/// Activation grid: asymmetric int8.
inline constexpr int32_t kActQMin = -128;
inline constexpr int32_t kActQMax = 127;
/// Weight grid: symmetric int8 (−128 unused so that |q| <= 127).
inline constexpr int32_t kWeightQMax = 127;

/// Per-tensor affine quantisation parameters.
struct QParams {
  float scale = 1.0f;
  int32_t zero_point = 0;

  [[nodiscard]] int32_t quantize(float v) const;
  [[nodiscard]] float dequantize(int32_t q) const {
    return scale * static_cast<float>(q - zero_point);
  }

  bool operator==(const QParams& other) const {
    return scale == other.scale && zero_point == other.zero_point;
  }
  bool operator!=(const QParams& other) const { return !(*this == other); }
};

/// Asymmetric activation parameters covering [lo, hi] (widened to include 0;
/// degenerate ranges get a positive width). Throws on non-finite bounds.
[[nodiscard]] QParams choose_activation_qparams(float lo, float hi);

/// Symmetric per-tensor weight scale for values in [-bound, bound]; always
/// positive and finite. zero_point is 0 by construction.
[[nodiscard]] float choose_weight_scale(float max_abs);

/// Quantise `values` onto the asymmetric activation grid described by `qp`.
void quantize_activations(std::span<const float> values, const QParams& qp,
                          std::span<int8_t> out);

/// Dequantise int8 activations back to float.
void dequantize_activations(std::span<const int8_t> values, const QParams& qp,
                            std::span<float> out);

/// Round `values` through the grid of `qp` and back to float, in place — the
/// float-kernel emulation of an int8 tensor ("fake quant").
void fake_quantize_with(Tensor& values, const QParams& qp);

}  // namespace sesr::quant
