#include "quant/qparams.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/int8_kernels.h"

namespace sesr::quant {

int32_t QParams::quantize(float v) const {
  // round_half_up in double: the runtime's single rounding convention (see
  // tensor/int8_kernels.h) — the quantise step and the gold model must agree.
  const int32_t q =
      round_half_up(static_cast<double>(v) / static_cast<double>(scale)) + zero_point;
  return std::clamp(q, kActQMin, kActQMax);
}

QParams choose_activation_qparams(float lo, float hi) {
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("choose_activation_qparams: non-finite range");
  // The encoded range must contain 0 so that zero (padding, ReLU floors,
  // residual identities) is exactly representable.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  if (hi - lo <= 0.0f) hi = 1.0f;  // all-zero calibration: any positive width works

  const double levels = static_cast<double>(kActQMax) - static_cast<double>(kActQMin);
  double scale = (static_cast<double>(hi) - static_cast<double>(lo)) / levels;
  // Guard against denormal/underflowed widths (hi and lo adjacent floats).
  scale = std::max(scale, static_cast<double>(std::numeric_limits<float>::min()));

  // zero_point: the integer that dequantises to exactly 0.
  const double zp = static_cast<double>(kActQMin) - static_cast<double>(lo) / scale;
  QParams qp;
  qp.scale = static_cast<float>(scale);
  qp.zero_point = static_cast<int32_t>(std::clamp(
      std::round(zp), static_cast<double>(kActQMin), static_cast<double>(kActQMax)));
  return qp;
}

float choose_weight_scale(float max_abs) {
  if (!std::isfinite(max_abs))
    throw std::invalid_argument("choose_weight_scale: non-finite bound");
  max_abs = std::abs(max_abs);
  if (max_abs <= 0.0f) return 1.0f / static_cast<float>(kWeightQMax);  // all-zero channel
  const double scale = std::max(static_cast<double>(max_abs) / kWeightQMax,
                                static_cast<double>(std::numeric_limits<float>::min()));
  return static_cast<float>(scale);
}

void quantize_activations(std::span<const float> values, const QParams& qp,
                          std::span<int8_t> out) {
  for (size_t i = 0; i < values.size(); ++i)
    out[i] = static_cast<int8_t>(qp.quantize(values[i]));
}

void dequantize_activations(std::span<const int8_t> values, const QParams& qp,
                            std::span<float> out) {
  for (size_t i = 0; i < values.size(); ++i) out[i] = qp.dequantize(values[i]);
}

void fake_quantize_with(Tensor& values, const QParams& qp) {
  for (float& v : values.flat()) v = qp.dequantize(qp.quantize(v));
}

}  // namespace sesr::quant
