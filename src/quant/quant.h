// Umbrella header for the quantisation subsystem.
//
// src/quant is the post-training-quantisation layer between nn (float
// modules) and runtime (compiled plans): calibration observers estimate
// activation ranges over representative batches, QParams describe the affine
// int8 grids, and QuantizedModel freezes a calibrated module into the
// serving artifact (int8 weights, int32 biases, requantisation scales) that
// runtime::Program::compile_int8 lowers onto the integer kernels in
// tensor/int8_kernels.h.
#pragma once

#include "quant/observer.h"
#include "quant/qparams.h"
#include "quant/quantized_model.h"
