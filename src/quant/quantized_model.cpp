#include "quant/quantized_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "nn/pixel_ops.h"
#include "runtime/program.h"
#include "runtime/session.h"

namespace sesr::quant {
namespace {

/// Which int8 backend op a float-plan step lowers to. Layers without integer
/// kernels (transposed conv, normalisation, pooling, ...) are kFallback.
StepOp classify(const runtime::Op& step) {
  using Kind = runtime::Op::Kind;
  switch (step.kind) {
    case Kind::kAdd:
      return StepOp::kAdd;
    case Kind::kScale:
      return StepOp::kScale;
    case Kind::kConcat:
      return StepOp::kConcat;
    case Kind::kLayer:
      break;
    default:
      throw std::logic_error("QuantizedModel: float-plan steps only");
  }
  const nn::Module* layer = step.layer;
  if (dynamic_cast<const nn::Conv2d*>(layer) != nullptr) return StepOp::kConv2d;
  if (dynamic_cast<const nn::DepthwiseConv2d*>(layer) != nullptr) return StepOp::kDepthwise;
  if (dynamic_cast<const nn::Linear*>(layer) != nullptr) return StepOp::kLinear;
  if (dynamic_cast<const nn::ReLU*>(layer) != nullptr ||
      dynamic_cast<const nn::ReLU6*>(layer) != nullptr ||
      dynamic_cast<const nn::LeakyReLU*>(layer) != nullptr ||
      dynamic_cast<const nn::PReLU*>(layer) != nullptr)
    return StepOp::kActivation;
  if (dynamic_cast<const nn::DepthToSpace*>(layer) != nullptr) return StepOp::kDepthToSpace;
  if (dynamic_cast<const nn::TileChannels*>(layer) != nullptr) return StepOp::kTileChannels;
  return StepOp::kFallback;
}

/// Symmetric int8 quantisation of a weight tensor seen as `rows` equal rows
/// (out channels). Per-channel: one scale per row; per-tensor: a single
/// scale entry applied to every row.
void quantize_weight_rows(const Tensor& weight, int64_t rows, bool per_channel,
                          std::vector<int8_t>& q, std::vector<float>& scales) {
  const int64_t numel = weight.numel();
  const int64_t row_len = numel / rows;
  q.resize(static_cast<size_t>(numel));
  const auto quantize_row = [&](int64_t r, float scale) {
    const float* src = weight.data() + r * row_len;
    for (int64_t j = 0; j < row_len; ++j) {
      const auto v = static_cast<int32_t>(std::lround(src[j] / scale));
      q[static_cast<size_t>(r * row_len + j)] =
          static_cast<int8_t>(std::clamp(v, -kWeightQMax, kWeightQMax));
    }
  };
  if (per_channel) {
    scales.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      float max_abs = 0.0f;
      const float* src = weight.data() + r * row_len;
      for (int64_t j = 0; j < row_len; ++j) max_abs = std::max(max_abs, std::abs(src[j]));
      scales[static_cast<size_t>(r)] = choose_weight_scale(max_abs);
      quantize_row(r, scales[static_cast<size_t>(r)]);
    }
  } else {
    float max_abs = 0.0f;
    for (const float v : weight.flat()) max_abs = std::max(max_abs, std::abs(v));
    scales.assign(1, choose_weight_scale(max_abs));
    for (int64_t r = 0; r < rows; ++r) quantize_row(r, scales[0]);
  }
}

float scale_of_row(const StepQuant& rec, int64_t row) {
  return rec.weight_scales.size() == 1 ? rec.weight_scales[0]
                                       : rec.weight_scales[static_cast<size_t>(row)];
}

/// Bias on the int32 accumulator grid: b / (s_in * s_w[row]).
void quantize_bias(const Tensor& bias, const StepQuant& rec, std::vector<int32_t>& out) {
  out.resize(static_cast<size_t>(bias.numel()));
  for (int64_t r = 0; r < bias.numel(); ++r) {
    const double acc_scale =
        static_cast<double>(rec.in.scale) * static_cast<double>(scale_of_row(rec, r));
    const double q = std::round(static_cast<double>(bias[r]) / acc_scale);
    out[static_cast<size_t>(r)] = static_cast<int32_t>(
        std::clamp(q, static_cast<double>(std::numeric_limits<int32_t>::min()),
                   static_cast<double>(std::numeric_limits<int32_t>::max())));
  }
}

/// Weight and (optional) bias parameters of a layer, via the logically-const
/// parameters() enumeration (see Module::num_params for the convention).
struct WeightView {
  const Tensor* weight = nullptr;
  const Tensor* bias = nullptr;
  int64_t rows = 0;  ///< out channels / features
};

WeightView weight_view(const nn::Module* layer, StepOp op) {
  WeightView view;
  auto* mutable_layer = const_cast<nn::Module*>(layer);
  if (op == StepOp::kConv2d) {
    auto& conv = dynamic_cast<nn::Conv2d&>(*mutable_layer);
    view.weight = &conv.weight().value;
    view.bias = &conv.bias().value;
    view.rows = conv.options().out_channels;
  } else if (op == StepOp::kDepthwise) {
    auto& dw = dynamic_cast<nn::DepthwiseConv2d&>(*mutable_layer);
    view.weight = &dw.weight().value;
    view.bias = &dw.bias().value;
    view.rows = dw.options().channels;
  } else {
    auto& linear = dynamic_cast<nn::Linear&>(*mutable_layer);
    view.weight = &linear.weight().value;
    view.bias = &linear.bias().value;
    view.rows = linear.weight().value.dim(0);
  }
  return view;
}

void validate_records(const std::vector<StepQuant>& records,
                      const std::vector<runtime::Op>& steps, const char* who) {
  if (records.size() != steps.size())
    throw std::invalid_argument(std::string(who) + ": artifact holds " +
                                std::to_string(records.size()) +
                                " step records but the plan has " +
                                std::to_string(steps.size()) + " steps");
  for (size_t k = 0; k < steps.size(); ++k)
    if (records[k].name != runtime::step_identity(steps[k]))
      throw std::invalid_argument(std::string(who) + ": step " + std::to_string(k) +
                                  " is '" + runtime::step_identity(steps[k]) +
                                  "' but the artifact recorded '" + records[k].name + "'");
}

}  // namespace

QuantizedModel QuantizedModel::calibrate(const nn::Module& module, const Shape& input,
                                         std::span<const Tensor> batches,
                                         const CalibrationOptions& opts) {
  if (batches.empty())
    throw std::invalid_argument("QuantizedModel::calibrate: no calibration batches");
  // Raw (pass-free) program: one op per module step, so observer index k,
  // artifact record k, and the lowering's op k all describe the same step.
  const auto plan = runtime::Program::compile(module, input, runtime::PassConfig::none());
  runtime::Session session(plan);

  auto input_observer = make_observer(opts.observer);
  std::vector<std::unique_ptr<Observer>> observers;
  observers.reserve(plan->ops().size());
  for (size_t k = 0; k < plan->ops().size(); ++k)
    observers.push_back(make_observer(opts.observer));

  Tensor output(plan->output_shape());
  for (const Tensor& batch : batches) {
    if (batch.shape() != input)
      throw std::invalid_argument("QuantizedModel::calibrate: batch " +
                                  batch.shape().to_string() + " but plan expects " +
                                  input.to_string());
    input_observer->observe(batch);
    session.run_hooked(batch, output, [&](int k, Tensor& step_out) {
      observers[static_cast<size_t>(k)]->observe(step_out);
    });
  }

  QuantizedModel artifact;
  artifact.per_channel_ = opts.per_channel_weights;
  artifact.input_ = input_observer->qparams();

  // Walk the program tracking each buffer's grid, exactly as the runtime
  // lowering will: a step's input grid is whatever its producer wrote.
  std::vector<QParams> grid(plan->buffers().size());
  grid[0] = artifact.input_;
  for (size_t k = 0; k < plan->ops().size(); ++k) {
    const runtime::Op& step = plan->ops()[k];
    StepQuant rec;
    rec.op = classify(step);
    rec.name = runtime::step_identity(step);
    if (step.input >= 0) rec.in = grid[static_cast<size_t>(step.input)];
    switch (rec.op) {
      case StepOp::kConv2d:
      case StepOp::kDepthwise:
      case StepOp::kLinear: {
        rec.out = observers[k]->qparams();
        const WeightView view = weight_view(step.layer, rec.op);
        quantize_weight_rows(*view.weight, view.rows, opts.per_channel_weights,
                             rec.weights, rec.weight_scales);
        if (view.bias->numel() > 0) quantize_bias(*view.bias, rec, rec.bias);
        break;
      }
      case StepOp::kDepthToSpace:
      case StepOp::kTileChannels:
        rec.out = rec.in;  // pure data movement: the grid travels unchanged
        break;
      case StepOp::kAdd:
        // In-place on step.output: record the destination's pre-add grid as
        // `in` (diagnostic; the lowering tracks both operand grids itself).
        rec.in = grid[static_cast<size_t>(step.output)];
        rec.out = observers[k]->qparams();
        break;
      case StepOp::kScale:
        rec.in = grid[static_cast<size_t>(step.output)];
        rec.out = observers[k]->qparams();
        break;
      case StepOp::kActivation:
      case StepOp::kConcat:
      case StepOp::kFallback:
        rec.out = observers[k]->qparams();
        break;
    }
    grid[static_cast<size_t>(step.output)] = rec.out;
    artifact.steps_.push_back(std::move(rec));
  }
  return artifact;
}

int64_t QuantizedModel::weight_bytes() const {
  int64_t total = 0;
  for (const StepQuant& rec : steps_) total += static_cast<int64_t>(rec.weights.size());
  return total;
}

// ---- serialisation ---------------------------------------------------------

namespace {

constexpr uint32_t kMagic = 0x51534553u;  // "SESQ" little-endian
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("QuantizedModel::load: truncated file");
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& values) {
  write_pod(os, static_cast<uint64_t>(values.size()));
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is) {
  const uint64_t count = read_pod<uint64_t>(is);
  if (count > (uint64_t{1} << 32))
    throw std::runtime_error("QuantizedModel::load: implausible payload size");
  std::vector<T> values(static_cast<size_t>(count));
  is.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(T)));
  if (!is) throw std::runtime_error("QuantizedModel::load: truncated payload");
  return values;
}

void write_qparams(std::ostream& os, const QParams& qp) {
  write_pod(os, qp.scale);
  write_pod(os, qp.zero_point);
}

QParams read_qparams(std::istream& is) {
  QParams qp;
  qp.scale = read_pod<float>(is);
  qp.zero_point = read_pod<int32_t>(is);
  return qp;
}

/// A grid with a NaN, infinite, or non-positive scale turns every
/// (de)quantise into garbage (or a divide-by-zero) at serving time; reject
/// the artifact at load instead.
QParams read_checked_qparams(std::istream& is, const std::string& path, const char* what) {
  const QParams qp = read_qparams(is);
  if (!std::isfinite(qp.scale) || qp.scale <= 0.0f)
    throw std::runtime_error(std::string("QuantizedModel::load: invalid ") + what +
                             " scale in " + path);
  return qp;
}

}  // namespace

void QuantizedModel::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("QuantizedModel::save: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint8_t>(per_channel_ ? 1 : 0));
  write_qparams(os, input_);
  write_pod(os, static_cast<uint64_t>(steps_.size()));
  for (const StepQuant& rec : steps_) {
    write_pod(os, static_cast<uint8_t>(rec.op));
    write_pod(os, static_cast<uint32_t>(rec.name.size()));
    os.write(rec.name.data(), static_cast<std::streamsize>(rec.name.size()));
    write_qparams(os, rec.in);
    write_qparams(os, rec.out);
    write_vector(os, rec.weights);
    write_vector(os, rec.bias);
    write_vector(os, rec.weight_scales);
  }
  if (!os) throw std::runtime_error("QuantizedModel::save: write failed for " + path);
}

QuantizedModel QuantizedModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("QuantizedModel::load: cannot open " + path);
  if (read_pod<uint32_t>(is) != kMagic)
    throw std::runtime_error("QuantizedModel::load: bad magic in " + path);
  if (read_pod<uint32_t>(is) != kVersion)
    throw std::runtime_error("QuantizedModel::load: unsupported version in " + path);
  QuantizedModel artifact;
  artifact.per_channel_ = read_pod<uint8_t>(is) != 0;
  artifact.input_ = read_checked_qparams(is, path, "input");
  const uint64_t count = read_pod<uint64_t>(is);
  if (count > (uint64_t{1} << 24))
    throw std::runtime_error("QuantizedModel::load: implausible step count");
  artifact.steps_.reserve(static_cast<size_t>(count));
  for (uint64_t k = 0; k < count; ++k) {
    StepQuant rec;
    const uint8_t op = read_pod<uint8_t>(is);
    if (op > static_cast<uint8_t>(StepOp::kFallback))
      throw std::runtime_error("QuantizedModel::load: unknown step op in " + path);
    rec.op = static_cast<StepOp>(op);
    const uint32_t name_len = read_pod<uint32_t>(is);
    if (name_len > 4096) throw std::runtime_error("QuantizedModel::load: implausible name");
    rec.name.resize(name_len);
    is.read(rec.name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw std::runtime_error("QuantizedModel::load: truncated name");
    rec.in = read_checked_qparams(is, path, "step input");
    rec.out = read_checked_qparams(is, path, "step output");
    rec.weights = read_vector<int8_t>(is);
    rec.bias = read_vector<int32_t>(is);
    rec.weight_scales = read_vector<float>(is);
    for (const float scale : rec.weight_scales)
      if (!std::isfinite(scale) || scale <= 0.0f)
        throw std::runtime_error("QuantizedModel::load: invalid weight scale in " + path);
    artifact.steps_.push_back(std::move(rec));
  }
  // The header's record count must account for the whole file: trailing
  // bytes mean the count and the payload disagree (a corrupt or mis-spliced
  // artifact), not a benign extension.
  is.peek();
  if (!is.eof())
    throw std::runtime_error("QuantizedModel::load: record count mismatch in " + path +
                             " (trailing bytes)");
  return artifact;
}

// ---- fake-quant reference executor -----------------------------------------
//
// A gold-model interpreter of the float plan: every integer-covered op
// (conv / depthwise / linear / activations / pixel ops / add / scale /
// concat) is evaluated in double precision over dequantised artifact weights,
// and every step output is rounded onto its calibrated grid — the exact real
// arithmetic the int8 kernels approximate, free of float32 kernel noise.
// Layers without integer kernels run their float infer_into on the same
// fake-quantised inputs the int8 fallback path sees, so the two executors
// stay step-for-step comparable on every compilable network.

namespace {

void fake_quant_doubles(std::vector<double>& values, const QParams& qp) {
  const double scale = static_cast<double>(qp.scale);
  for (double& v : values) {
    // round_half_up: the runtime's single rounding convention.
    const int32_t q = std::clamp(round_half_up(v / scale) + qp.zero_point,
                                 kActQMin, kActQMax);
    v = static_cast<double>(q - qp.zero_point) * scale;
  }
}

/// Dequantised weight row value in double: q_w * s_w[row], exact.
double dequant_weight(const StepQuant& rec, int64_t j, int64_t row_len) {
  return static_cast<double>(rec.weights[static_cast<size_t>(j)]) *
         static_cast<double>(scale_of_row(rec, j / row_len));
}

double dequant_bias(const StepQuant& rec, int64_t row) {
  if (rec.bias.empty()) return 0.0;
  return static_cast<double>(rec.bias[static_cast<size_t>(row)]) *
         static_cast<double>(rec.in.scale) * static_cast<double>(scale_of_row(rec, row));
}

void reference_conv2d(const std::vector<double>& in, const Shape& in_shape,
                      const nn::Conv2dOptions& o, const StepQuant& rec,
                      std::vector<double>& out, const Shape& out_shape) {
  const int64_t n = in_shape[0], h = in_shape[2], w = in_shape[3];
  const int64_t out_h = out_shape[2], out_w = out_shape[3];
  const int64_t k = o.kernel, pad = o.effective_padding();
  const int64_t row_len = o.in_channels * k * k;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t oc = 0; oc < o.out_channels; ++oc)
      for (int64_t oh = 0; oh < out_h; ++oh)
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = dequant_bias(rec, oc);
          for (int64_t ic = 0; ic < o.in_channels; ++ic)
            for (int64_t kh = 0; kh < k; ++kh)
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t ih = oh * o.stride - pad + kh;
                const int64_t iw = ow * o.stride - pad + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
                const int64_t widx = oc * row_len + (ic * k + kh) * k + kw;
                acc += dequant_weight(rec, widx, row_len) *
                       in[static_cast<size_t>(((i * in_shape[1] + ic) * h + ih) * w + iw)];
              }
          out[static_cast<size_t>(((i * out_shape[1] + oc) * out_h + oh) * out_w + ow)] =
              acc;
        }
}

void reference_depthwise(const std::vector<double>& in, const Shape& in_shape,
                         const nn::DepthwiseConv2dOptions& o, const StepQuant& rec,
                         std::vector<double>& out, const Shape& out_shape) {
  const int64_t n = in_shape[0], h = in_shape[2], w = in_shape[3];
  const int64_t out_h = out_shape[2], out_w = out_shape[3];
  const int64_t k = o.kernel, pad = o.effective_padding();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t c = 0; c < o.channels; ++c)
      for (int64_t oh = 0; oh < out_h; ++oh)
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = dequant_bias(rec, c);
          for (int64_t kh = 0; kh < k; ++kh)
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t ih = oh * o.stride - pad + kh;
              const int64_t iw = ow * o.stride - pad + kw;
              if (ih < 0 || ih >= h || iw < 0 || iw >= w) continue;
              acc += dequant_weight(rec, c * k * k + kh * k + kw, k * k) *
                     in[static_cast<size_t>(((i * o.channels + c) * h + ih) * w + iw)];
            }
          out[static_cast<size_t>(((i * o.channels + c) * out_h + oh) * out_w + ow)] = acc;
        }
}

void reference_linear(const std::vector<double>& in, const Shape& in_shape,
                      const StepQuant& rec, std::vector<double>& out,
                      const Shape& out_shape) {
  const int64_t n = in_shape[0], in_f = in_shape[1], out_f = out_shape[1];
  for (int64_t i = 0; i < n; ++i)
    for (int64_t o = 0; o < out_f; ++o) {
      double acc = dequant_bias(rec, o);
      for (int64_t j = 0; j < in_f; ++j)
        acc += dequant_weight(rec, o * in_f + j, in_f) *
               in[static_cast<size_t>(i * in_f + j)];
      out[static_cast<size_t>(i * out_f + o)] = acc;
    }
}

void reference_activation(const nn::Module* layer, const std::vector<double>& in,
                          const Shape& shape, std::vector<double>& out) {
  const auto pointwise = [&](auto&& fn) {
    for (size_t j = 0; j < in.size(); ++j) out[j] = fn(in[j]);
  };
  if (dynamic_cast<const nn::ReLU*>(layer) != nullptr) {
    pointwise([](double v) { return v < 0.0 ? 0.0 : v; });
  } else if (dynamic_cast<const nn::ReLU6*>(layer) != nullptr) {
    pointwise([](double v) { return std::clamp(v, 0.0, 6.0); });
  } else if (const auto* leaky = dynamic_cast<const nn::LeakyReLU*>(layer)) {
    const double slope = leaky->slope();
    pointwise([slope](double v) { return v < 0.0 ? slope * v : v; });
  } else if (const auto* prelu = dynamic_cast<const nn::PReLU*>(layer)) {
    const Tensor& slopes = const_cast<nn::PReLU*>(prelu)->parameters().front()->value;
    const int64_t n = shape[0], channels = shape[1], plane = shape[2] * shape[3];
    for (int64_t i = 0; i < n; ++i)
      for (int64_t c = 0; c < channels; ++c) {
        const double slope = slopes[c];
        const size_t base = static_cast<size_t>((i * channels + c) * plane);
        for (int64_t j = 0; j < plane; ++j) {
          const double v = in[base + static_cast<size_t>(j)];
          out[base + static_cast<size_t>(j)] = v < 0.0 ? slope * v : v;
        }
      }
  } else {
    throw std::logic_error("simulate_fake_quant: unsupported activation " + layer->name());
  }
}

/// Run a fallback layer's float kernel on the (on-grid) double buffer.
void reference_fallback(const nn::Module* layer, const std::vector<double>& in,
                        const Shape& in_shape, std::vector<double>& out,
                        const Shape& out_shape) {
  Tensor fin(in_shape);
  for (int64_t j = 0; j < fin.numel(); ++j)
    fin[j] = static_cast<float>(in[static_cast<size_t>(j)]);
  Tensor fout(out_shape);
  Workspace workspace;
  layer->infer_into(fin, fout, workspace);
  for (int64_t j = 0; j < fout.numel(); ++j) out[static_cast<size_t>(j)] = fout[j];
}

}  // namespace

Tensor simulate_fake_quant(const nn::Module& module, const QuantizedModel& artifact,
                           const Tensor& input) {
  // Raw program: the gold model interprets one op per artifact record.
  const auto plan =
      runtime::Program::compile(module, input.shape(), runtime::PassConfig::none());
  const auto& records = artifact.steps();
  validate_records(records, plan->ops(), "simulate_fake_quant");

  std::vector<Shape> shapes;
  shapes.reserve(plan->buffers().size());
  for (const runtime::BufferInfo& info : plan->buffers()) shapes.push_back(info.shape);

  std::vector<std::vector<double>> buffers(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i)
    buffers[i].resize(static_cast<size_t>(shapes[i].numel()));
  for (int64_t j = 0; j < input.numel(); ++j) buffers[0][static_cast<size_t>(j)] = input[j];
  fake_quant_doubles(buffers[0], artifact.input_qparams());

  for (size_t k = 0; k < plan->ops().size(); ++k) {
    const runtime::Op& step = plan->ops()[k];
    const StepQuant& rec = records[k];
    std::vector<double>& out = buffers[static_cast<size_t>(step.output)];
    const Shape& out_shape = shapes[static_cast<size_t>(step.output)];
    switch (rec.op) {
      case StepOp::kConv2d: {
        const auto& conv = dynamic_cast<const nn::Conv2d&>(*step.layer);
        reference_conv2d(buffers[static_cast<size_t>(step.input)],
                         shapes[static_cast<size_t>(step.input)], conv.options(), rec,
                         out, out_shape);
        break;
      }
      case StepOp::kDepthwise: {
        const auto& dw = dynamic_cast<const nn::DepthwiseConv2d&>(*step.layer);
        reference_depthwise(buffers[static_cast<size_t>(step.input)],
                            shapes[static_cast<size_t>(step.input)], dw.options(), rec,
                            out, out_shape);
        break;
      }
      case StepOp::kLinear:
        reference_linear(buffers[static_cast<size_t>(step.input)],
                         shapes[static_cast<size_t>(step.input)], rec, out, out_shape);
        break;
      case StepOp::kActivation: {
        // May run in place (out aliases in); the pointwise loops tolerate it.
        const auto& in = buffers[static_cast<size_t>(step.input)];
        reference_activation(step.layer, in, shapes[static_cast<size_t>(step.input)], out);
        break;
      }
      case StepOp::kDepthToSpace: {
        const Shape& in_shape = shapes[static_cast<size_t>(step.input)];
        const std::vector<double>& in = buffers[static_cast<size_t>(step.input)];
        const int64_t n = in_shape[0], c_in = in_shape[1];
        const int64_t h = in_shape[2], w = in_shape[3];
        const int64_t r = out_shape[2] / h, c_out = out_shape[1];
        for (int64_t i = 0; i < n; ++i)
          for (int64_t c = 0; c < c_out; ++c)
            for (int64_t dy = 0; dy < r; ++dy)
              for (int64_t dx = 0; dx < r; ++dx)
                for (int64_t y = 0; y < h; ++y)
                  for (int64_t x = 0; x < w; ++x)
                    out[static_cast<size_t>(
                        ((i * c_out + c) * h * r + (y * r + dy)) * w * r + x * r + dx)] =
                        in[static_cast<size_t>(
                            ((i * c_in + c * r * r + dy * r + dx) * h + y) * w + x)];
        break;
      }
      case StepOp::kTileChannels: {
        const Shape& in_shape = shapes[static_cast<size_t>(step.input)];
        const std::vector<double>& in = buffers[static_cast<size_t>(step.input)];
        const int64_t n = in_shape[0], c = in_shape[1];
        const int64_t plane = in_shape[2] * in_shape[3];
        const int64_t times = out_shape[1] / c;
        for (int64_t i = 0; i < n; ++i)
          for (int64_t ch = 0; ch < c; ++ch)
            for (int64_t t = 0; t < times; ++t)
              for (int64_t j = 0; j < plane; ++j)
                out[static_cast<size_t>((((i * c + ch) * times + t)) * plane + j)] =
                    in[static_cast<size_t>((i * c + ch) * plane + j)];
        break;
      }
      case StepOp::kAdd: {
        const std::vector<double>& src = buffers[static_cast<size_t>(step.input)];
        for (size_t j = 0; j < out.size(); ++j) out[j] += src[j];
        break;
      }
      case StepOp::kScale: {
        const double alpha = step.alpha;
        for (double& v : out) v *= alpha;
        break;
      }
      case StepOp::kConcat: {
        const int64_t n = out_shape[0], total_c = out_shape[1];
        const int64_t hw = out_shape[2] * out_shape[3];
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (int src : step.sources) {
            const std::vector<double>& o = buffers[static_cast<size_t>(src)];
            const int64_t c = shapes[static_cast<size_t>(src)][1];
            for (int64_t j = 0; j < c * hw; ++j)
              out[static_cast<size_t>((i * total_c + c_off) * hw + j)] =
                  o[static_cast<size_t>(i * c * hw + j)];
            c_off += c;
          }
        }
        break;
      }
      case StepOp::kFallback:
        reference_fallback(step.layer, buffers[static_cast<size_t>(step.input)],
                           shapes[static_cast<size_t>(step.input)], out, out_shape);
        break;
    }
    fake_quant_doubles(out, rec.out);
  }

  const std::vector<double>& result = buffers[static_cast<size_t>(plan->output_buffer())];
  Tensor output(plan->output_shape());
  for (int64_t j = 0; j < output.numel(); ++j)
    output[j] = static_cast<float>(result[static_cast<size_t>(j)]);
  return output;
}

}  // namespace sesr::quant
