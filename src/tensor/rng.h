// Deterministic random number generation.
//
// Every stochastic component in this repository (data synthesis, weight
// initialisation, attack randomisation) draws from an explicitly seeded Rng so
// that all experiments are bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <random>

namespace sesr {

/// Seeded pseudo-random generator with the distributions this library needs.
///
/// Thin wrapper over std::mt19937_64; not thread-safe — give each thread or
/// component its own instance (see Rng::fork).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5E5Au) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Normal float with the given mean / standard deviation.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t randint(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child generator; advances this generator.
  /// Use to hand reproducible sub-streams to workers or components.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sesr
