// Shape algebra for dense tensors.
//
// A Shape is an ordered list of dimension extents. Tensors in this library
// are dense, row-major (C-contiguous) and use the NCHW convention for image
// batches: shape = {batch, channels, height, width}.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace sesr {

/// Ordered list of dimension extents of a dense row-major tensor.
///
/// Invariant: every extent is >= 0. A Shape with zero dimensions denotes a
/// scalar (numel() == 1); a Shape containing a 0 extent denotes an empty
/// tensor (numel() == 0).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { validate(); }

  /// Number of dimensions (rank).
  [[nodiscard]] int ndim() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `i`; negative `i` counts from the back (Python-style).
  [[nodiscard]] int64_t operator[](int i) const {
    const int n = ndim();
    if (i < 0) i += n;
    if (i < 0 || i >= n) throw std::out_of_range("Shape: dimension index " + std::to_string(i));
    return dims_[static_cast<size_t>(i)];
  }

  /// Total number of elements (product of extents; 1 for a scalar shape).
  [[nodiscard]] int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), int64_t{1}, std::multiplies<>());
  }

  [[nodiscard]] const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides (in elements) for this shape.
  [[nodiscard]] std::vector<int64_t> strides() const {
    std::vector<int64_t> s(dims_.size(), 1);
    for (int i = ndim() - 2; i >= 0; --i)
      s[static_cast<size_t>(i)] = s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
    return s;
  }

  /// Human-readable form, e.g. "[2, 3, 32, 32]".
  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    for (int64_t d : dims_)
      if (d < 0) throw std::invalid_argument("Shape: negative extent in " + to_string());
  }

  std::vector<int64_t> dims_;
};

}  // namespace sesr
