// Blocked single-precision matrix multiply.
//
// The convolution layers lower to GEMM via im2col, so this kernel dominates
// training runtime. The cache-blocking and row-panel parallelisation live
// here; the micro-block inner loops route through the runtime CPU-dispatched
// kernel tier in tensor/simd/ (scalar reference, AVX2, AVX-512), selected by
// cpuid or forced via SESR_KERNEL_VARIANT. Every tier produces bit-identical
// results for finite inputs — see the exactness contract in
// tensor/simd/dispatch.h.
#pragma once

#include <cstdint>

namespace sesr {

/// C[M,N] += A[M,K] * B[K,N]; all matrices dense row-major with the given
/// leading dimensions (lda/ldb/ldc are row strides in elements).
/// The caller owns initialisation of C (pass a zeroed C for plain product).
void gemm_accumulate(int64_t m, int64_t n, int64_t k,
                     const float* a, int64_t lda,
                     const float* b, int64_t ldb,
                     float* c, int64_t ldc);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored as [K,M] row-major.
/// Used by convolution weight-gradient and input-gradient computations.
void gemm_at_b_accumulate(int64_t m, int64_t n, int64_t k,
                          const float* a, int64_t lda,
                          const float* b, int64_t ldb,
                          float* c, int64_t ldc);

}  // namespace sesr
