// Minimal data-parallel loop utility.
//
// Convolution, GEMM and per-image pipeline stages parallelise over coarse
// outer ranges (output rows, batch images). Work runs on a lazily-initialised
// persistent thread pool shared by the whole process: under serving load
// parallel_for fires per layer per request, so spawn-per-call thread creation
// would dominate small-kernel runtime. The calling thread participates in its
// own loop, which keeps concurrent parallel_for calls from independent
// threads (e.g. several runtime::Sessions) deadlock-free even when every pool
// worker is busy.
#pragma once

#include <cstdint>
#include <functional>

namespace sesr {

/// Number of pool worker threads parallel_for will use (hardware concurrency,
/// overridable through the SESR_NUM_THREADS environment variable; minimum 1).
int num_threads();

/// Run `fn(begin, end)` over disjoint sub-ranges of [begin, end) on up to
/// num_threads() pool workers (plus the calling thread, which helps). Falls
/// back to a direct call when the range is small (< 2 * grain) or only one
/// thread is configured. Blocks until all sub-ranges complete. Nested calls
/// from inside a worker run inline. `fn` must be safe to invoke concurrently
/// on disjoint ranges. If `fn` throws, unclaimed sub-ranges are abandoned and
/// the first exception is rethrown here once in-flight sub-ranges drain.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 1);

}  // namespace sesr
