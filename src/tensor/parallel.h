// Minimal data-parallel loop utility.
//
// Convolution, GEMM and per-image pipeline stages parallelise over coarse
// outer ranges (output rows, batch images). Work items are milliseconds-scale,
// so a spawn-per-call strategy is simpler than a persistent pool and costs a
// negligible fraction of runtime.
#pragma once

#include <cstdint>
#include <functional>

namespace sesr {

/// Number of worker threads parallel_for will use (hardware concurrency,
/// overridable through the SESR_NUM_THREADS environment variable; minimum 1).
int num_threads();

/// Run `fn(begin, end)` over disjoint sub-ranges of [begin, end) on up to
/// num_threads() threads. Falls back to a direct call when the range is small
/// (< 2 * grain) or only one thread is available. Blocks until all sub-ranges
/// complete. `fn` must be safe to invoke concurrently on disjoint ranges.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 1);

}  // namespace sesr
