#include "tensor/int8_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"
#include "tensor/simd/dispatch.h"

namespace {

inline const sesr::simd::KernelDispatch& resolve(const sesr::simd::KernelDispatch* d) {
  return d != nullptr ? *d : sesr::simd::active_dispatch();
}

}  // namespace

namespace sesr {

FixedPointMultiplier FixedPointMultiplier::from_double(double m) {
  if (!std::isfinite(m) || m < 0.0 || m >= std::ldexp(1.0, 31))
    throw std::invalid_argument("FixedPointMultiplier: need finite m in [0, 2^31)");
  FixedPointMultiplier fp;
  if (m == 0.0) return fp;
  int exponent = 0;
  const double fraction = std::frexp(m, &exponent);  // m = fraction * 2^exponent
  int64_t q = static_cast<int64_t>(std::round(fraction * std::ldexp(1.0, 31)));
  if (q == (int64_t{1} << 31)) {  // fraction rounded up to 1.0
    q >>= 1;
    ++exponent;
  }
  if (exponent > 31)
    throw std::invalid_argument("FixedPointMultiplier: multiplier too large");
  // m < 2^-31: m * x < 0.5 for every int32 x, so the product always rounds
  // to 0 — encode as the zero multiplier instead of a shift apply() cannot
  // represent (31 - shift must stay within a 64-bit shift).
  if (exponent < -31) return fp;
  fp.multiplier = static_cast<int32_t>(q);
  fp.shift = exponent;
  return fp;
}

double FixedPointMultiplier::as_double() const {
  return static_cast<double>(multiplier) * std::ldexp(1.0, shift - 31);
}

// ---- convolution -----------------------------------------------------------

namespace {

/// Padded-row slack (see kInt8ConvPatchSlack in the header — the public name
/// the JIT tier's conv driver shares; this alias keeps the hot TU short).
constexpr int64_t kPatchSlack = kInt8ConvPatchSlack;

// Patch-major row slab over the padded image: slab[ow][(ic, kh, kw)] =
// padded(ic, ih, ow * stride + kw). Tap groups are copied four int16 at a
// time with unaligned 8-byte moves; a group's overhang lands either in the
// next group's slots (rewritten by a later, higher-base store) or in the
// patch slack.
inline void build_row_slab(const int16_t* padded, int64_t in_c, int64_t h,
                           int64_t prow_w, int64_t kernel, int64_t stride, int64_t pad,
                           int64_t oh, int64_t out_w, int64_t col_stride, int16_t* slab) {
  const int64_t k = kernel;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t kh = 0; kh < k; ++kh) {
      const int64_t ih = oh * stride - pad + kh;
      int16_t* base = slab + (ic * k + kh) * k;  // + ow * col_stride per patch
      if (ih < 0 || ih >= h) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          int16_t* d = base + ow * col_stride;
          for (int64_t g = 0; g < k; g += 4) std::memset(d + g, 0, 8);
        }
        continue;
      }
      const int16_t* row = padded + (ic * h + ih) * prow_w;
      // Specialised copy widths: a constant-trip inner loop lets the ow loop
      // unroll and schedule — the generic version costs ~2.5x in practice.
      if (k <= 4) {
        for (int64_t ow = 0; ow < out_w; ++ow)
          std::memcpy(base + ow * col_stride, row + ow * stride, 8);
      } else if (k <= 8) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int16_t* s = row + ow * stride;
          int16_t* d = base + ow * col_stride;
          std::memcpy(d, s, 8);
          std::memcpy(d + 4, s + 4, 8);
        }
      } else {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int16_t* s = row + ow * stride;
          int16_t* d = base + ow * col_stride;
          for (int64_t g = 0; g < k; g += 4) std::memcpy(d + g, s + g, 8);
        }
      }
    }
  }
}

// One parallel chunk of conv output rows. `spec` is taken by value and every
// pointer is a local: stores through int8_t* alias anything under TBAA, so
// reading the spec through a reference would force reloads of weights /
// requant pointers after every output store. The int16 dot products (the
// pmaddwd / vpdpwssd inner loops) come from the dispatch tier — copied to
// local function pointers for the same reload reason.
void conv_rows(const Int8ConvSpec spec, const simd::KernelDispatch kd, int64_t prow_w,
               int64_t h, int64_t out_h, int64_t out_w, int64_t col_stride,
               int16_t* __restrict slab, const int16_t* __restrict padded_img_base,
               int8_t* __restrict out_base, int64_t lo, int64_t hi) {
  const auto dot4_i16 = kd.int8_dot4;
  const auto dot_i16 = kd.int8_dot;
  const int64_t out_hw = out_h * out_w;
  const int16_t* const weights = spec.weights;
  const int32_t* const bias = spec.bias;
  const FixedPointMultiplier* const requant = spec.requant;
  const int32_t out_zero = spec.out_zero;
  const int64_t out_c = spec.out_c;
  const int8_t* const act_lut = spec.act_lut;
  // Per-channel table stride: 256 when each output channel has its own LUT
  // (fused PReLU), 0 when one table serves every channel.
  const int64_t lut_stride = spec.act_lut_channels > 1 ? 256 : 0;
  // Weight rows share the patch stride, so the dots below run the full
  // (aligned, tail-free) stride: the weight rows' zero padding nulls the
  // patch slack out of the accumulation.
  for (int64_t idx = lo; idx < hi; ++idx) {
    const int64_t i = idx / out_h, oh = idx % out_h;
    const int16_t* padded_img = padded_img_base + i * spec.in_c * h * prow_w;
    int8_t* out_img = out_base + i * out_c * out_hw;
    build_row_slab(padded_img, spec.in_c, h, prow_w, spec.kernel, spec.stride,
                   spec.pad, oh, out_w, col_stride, slab);
    for (int64_t ow = 0; ow < out_w; ++ow) {
      const int16_t* patch = slab + ow * col_stride;
      int8_t* out_px = out_img + oh * out_w + ow;
      int64_t oc = 0;
      for (; oc + 4 <= out_c; oc += 4) {
        const int16_t* wrow = weights + oc * col_stride;
        int32_t acc[4];
        dot4_i16(wrow, wrow + col_stride, wrow + 2 * col_stride, wrow + 3 * col_stride,
                 patch, col_stride, acc);
        for (int64_t j = 0; j < 4; ++j) {
          const int32_t a = acc[j] + (bias != nullptr ? bias[oc + j] : 0);
          const int8_t q = saturate_int8(requant[oc + j].apply(a) + out_zero);
          out_px[(oc + j) * out_hw] =
              act_lut == nullptr
                  ? q
                  : act_lut[(oc + j) * lut_stride + static_cast<int32_t>(q) + 128];
        }
      }
      for (; oc < out_c; ++oc) {
        int32_t acc = bias != nullptr ? bias[oc] : 0;
        acc += dot_i16(weights + oc * col_stride, patch, col_stride);
        const int8_t q = saturate_int8(requant[oc].apply(acc) + out_zero);
        out_px[oc * out_hw] =
            act_lut == nullptr ? q
                               : act_lut[oc * lut_stride + static_cast<int32_t>(q) + 128];
      }
    }
  }
}

// One parallel chunk of output rows on the stride-1 direct path: no im2col
// slab at all — the block kernel reads 16-column windows straight from the
// padded image, and the write-back runs through the dispatch tier's
// vectorised fixed-point requant. Same spec-by-value / local-pointer
// discipline as conv_rows (TBAA reload avoidance).
void conv_rows_direct(const Int8ConvSpec spec, const simd::KernelDispatch kd,
                      int64_t prow_w, int64_t h, int64_t out_h, int64_t out_w,
                      const int16_t* __restrict padded_img_base,
                      int8_t* __restrict out_base, int64_t lo, int64_t hi) {
  const auto cols16 = kd.int8_conv_cols16;
  const auto requant_row = kd.int8_requant_row;
  const int64_t out_hw = out_h * out_w;
  const int64_t k = spec.kernel, pad = spec.pad;
  const int64_t kw_pairs = int8_kw_pairs(k);
  const int64_t kceil = 2 * kw_pairs;
  const int64_t w_stride = spec.in_c * k * kceil;
  const int64_t ic_stride = h * prow_w;
  const int16_t* const wkw = spec.weights_kw;
  const int32_t* const bias = spec.bias;
  const FixedPointMultiplier* const requant = spec.requant;
  const int32_t out_zero = spec.out_zero;
  const int64_t out_c = spec.out_c;
  const int8_t* const act_lut = spec.act_lut;
  const int64_t lut_stride = spec.act_lut_channels > 1 ? 256 : 0;
  for (int64_t idx = lo; idx < hi; ++idx) {
    const int64_t i = idx / out_h, oh = idx % out_h;
    // Vertically clip the kernel window once per output row; skipped rows
    // would multiply the (non-physical) top/bottom padding, i.e. contribute
    // exactly zero — dropping them is bit-exact and saves the work.
    const int64_t kh_lo = std::max<int64_t>(0, pad - oh);
    const int64_t kh_hi = std::min<int64_t>(k, h + pad - oh);
    const int64_t kh_count = kh_hi - kh_lo;
    const int16_t* img_row0 =
        padded_img_base + i * spec.in_c * ic_stride + (oh - pad + kh_lo) * prow_w;
    int8_t* out_row = out_base + i * out_c * out_hw + oh * out_w;
    alignas(64) int32_t acc[4 * 16];
    for (int64_t ob0 = 0; ob0 < out_w; ob0 += 16) {
      // Tail blocks shift left to stay full-width; the overlapping columns
      // are recomputed to identical values (pure function of the input).
      const int64_t ob = std::min(ob0, out_w - 16);
      const int16_t* img = img_row0 + ob;
      for (int64_t oc = 0; oc < out_c; oc += 4) {
        const int rows = static_cast<int>(std::min<int64_t>(4, out_c - oc));
        cols16(wkw + oc * w_stride + kh_lo * kceil, w_stride, rows, img, ic_stride,
               prow_w, spec.in_c, k, kh_count, kw_pairs, acc);
        for (int r = 0; r < rows; ++r) {
          const int64_t c = oc + r;
          requant_row(acc + r * 16, 16, bias != nullptr ? bias[c] : 0,
                      requant[c].multiplier, requant[c].shift, out_zero,
                      act_lut == nullptr ? nullptr : act_lut + c * lut_stride,
                      out_row + c * out_hw + ob);
        }
      }
    }
  }
}

}  // namespace

// Widen one image to a physically padded, zero-point-corrected int16 copy:
// prow[ic][ih][x] = q_in(ic, ih, x - pad) - z_in, 0 in the padding. Padding
// taps thereby contribute literal 0 to the accumulation, and the patch
// builder above needs no bounds checks at all — its 8-byte group reads stay
// inside [0, prow_w) for every (ow, tap) combination.
void int8_widen_padded_image(const int8_t* in_img, int64_t in_c, int64_t h, int64_t w,
                             int64_t pad, int32_t in_zero, int64_t prow_w,
                             int16_t* padded) {
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t ih = 0; ih < h; ++ih) {
      const int8_t* src = in_img + (ic * h + ih) * w;
      int16_t* dst = padded + (ic * h + ih) * prow_w;
      for (int64_t x = 0; x < pad; ++x) dst[x] = 0;
      for (int64_t x = 0; x < w; ++x)
        dst[pad + x] = static_cast<int16_t>(static_cast<int16_t>(src[x]) - in_zero);
      for (int64_t x = pad + w; x < prow_w; ++x) dst[x] = 0;
    }
  }
}

void int8_conv2d_nchw(const int8_t* in, int64_t n, int64_t h, int64_t w,
                      int64_t out_h, int64_t out_w, const Int8ConvSpec& spec,
                      int8_t* out, Workspace& workspace,
                      const simd::KernelDispatch* dispatch) {
  const simd::KernelDispatch& kd = resolve(dispatch);
  // Shared packed stride (whole 32-byte groups, slack for 8-byte group
  // copies) for patches and weight rows — the 256-bit dot kernels run
  // tail-free over the full stride.
  const int64_t col_stride = int8_packed_stride(spec.in_c * spec.kernel * spec.kernel);

  // Padded, widened input copy shared (read-only) by every parallel chunk.
  const int64_t prow_w = w + 2 * spec.pad + kPatchSlack;
  std::span<int16_t> padded =
      workspace.scratch<int16_t>(n * spec.in_c * h * prow_w);
  for (int64_t i = 0; i < n; ++i)
    int8_widen_padded_image(in + i * spec.in_c * h * w, spec.in_c, h, w, spec.pad,
                       spec.in_zero, prow_w, padded.data() + i * spec.in_c * h * prow_w);

  // Stride-1 convs wide enough for a 16-column block take the direct path:
  // no im2col slab, register-tiled pair dots straight off the padded image,
  // vectorised requant write-back. Bit-exact against the slab path (integer
  // sums in either order), so callers without the kw packing — and strided
  // or narrow convs — simply fall through to it. The scalar tier keeps the
  // slab path: its autovectorised contiguous dots beat the reference block
  // kernel's strided walk, and pinning SESR_KERNEL_VARIANT=scalar then
  // cross-checks the two structures' bit-identity for free.
  if (spec.weights_kw != nullptr && spec.stride == 1 && out_w >= 16 &&
      kd.variant != simd::KernelVariant::kScalar) {
    parallel_for(0, n * out_h, [&](int64_t lo, int64_t hi) {
      conv_rows_direct(spec, kd, prow_w, h, out_h, out_w, padded.data(), out, lo, hi);
    });
    return;
  }

  // One patch-major slab (out_w patches of col_rows taps) per parallel chunk,
  // carved before the fan-out; same slot discipline as Conv2d::infer_into.
  // Over-allocate by one stride so the base can be rounded up to 32 bytes
  // (the workspace only guarantees float alignment).
  const int64_t slab_elems = out_w * col_stride;
  const int64_t max_slots = std::min<int64_t>(num_threads(), std::max<int64_t>(1, n * out_h));
  std::span<int16_t> slab_raw = workspace.scratch<int16_t>(max_slots * slab_elems + 16);
  int16_t* slab_base = slab_raw.data();
  while (reinterpret_cast<uintptr_t>(slab_base) % 32 != 0) ++slab_base;
  std::atomic<int64_t> next_slot{0};

  parallel_for(0, n * out_h, [&](int64_t lo, int64_t hi) {
    const int64_t slot = next_slot.fetch_add(1);
    if (slot >= max_slots)
      throw std::logic_error("int8_conv2d_nchw: parallel_for issued more chunks than slabs");
    conv_rows(spec, kd, prow_w, h, out_h, out_w, col_stride,
              slab_base + slot * slab_elems, padded.data(), out, lo, hi);
  });
}

int64_t int8_conv2d_macs(const Int8ConvSpec& spec, int64_t out_h, int64_t out_w) {
  return out_h * out_w * spec.out_c * spec.in_c * spec.kernel * spec.kernel;
}

// ---- depthwise convolution -------------------------------------------------

void int8_depthwise_nchw(const int8_t* in, int64_t n, int64_t h, int64_t w,
                         int64_t out_h, int64_t out_w, const Int8DepthwiseSpec& spec,
                         int8_t* out) {
  const int64_t k = spec.kernel, stride = spec.stride, pad = spec.pad;
  const int64_t out_hw = out_h * out_w;
  parallel_for(0, n * spec.channels, [&](int64_t lo, int64_t hi) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t i = idx / spec.channels, c = idx % spec.channels;
      const int8_t* plane = in + (i * spec.channels + c) * h * w;
      const int16_t* wrow = spec.weights + c * k * k;
      int8_t* out_plane = out + (i * spec.channels + c) * out_hw;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          int32_t acc = spec.bias != nullptr ? spec.bias[c] : 0;
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t ih = oh * stride - pad + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t iw = ow * stride - pad + kw;
              if (iw < 0 || iw >= w) continue;
              acc += static_cast<int32_t>(wrow[kh * k + kw]) *
                     (static_cast<int32_t>(plane[ih * w + iw]) - spec.in_zero);
            }
          }
          const int32_t q = spec.requant[c].apply(acc) + spec.out_zero;
          out_plane[oh * out_w + ow] = saturate_int8(q);
        }
      }
    }
  });
}

int64_t int8_depthwise_macs(const Int8DepthwiseSpec& spec, int64_t out_h, int64_t out_w) {
  return out_h * out_w * spec.channels * spec.kernel * spec.kernel;
}

// ---- fully connected -------------------------------------------------------

void int8_linear(const int8_t* in, int64_t batch, const Int8LinearSpec& spec, int8_t* out,
                 const simd::KernelDispatch* dispatch) {
  const simd::KernelDispatch& kd = resolve(dispatch);
  const int64_t in_f = spec.in_features, out_f = spec.out_features;
  // Widen each input row (zero-point subtracted) once so every output
  // feature's dot runs through the tier's int16 kernels; the int32 sums are
  // the ones the old fused loop produced, in any accumulation order.
  std::vector<int16_t> wide(static_cast<size_t>(in_f));
  for (int64_t i = 0; i < batch; ++i) {
    const int8_t* row = in + i * in_f;
    for (int64_t j = 0; j < in_f; ++j)
      wide[static_cast<size_t>(j)] =
          static_cast<int16_t>(static_cast<int16_t>(row[j]) - spec.in_zero);
    int64_t o = 0;
    for (; o + 4 <= out_f; o += 4) {
      const int16_t* wrow = spec.weights + o * in_f;
      int32_t acc[4];
      kd.int8_dot4(wrow, wrow + in_f, wrow + 2 * in_f, wrow + 3 * in_f, wide.data(),
                   in_f, acc);
      for (int64_t j = 0; j < 4; ++j) {
        const int32_t a = acc[j] + (spec.bias != nullptr ? spec.bias[o + j] : 0);
        out[i * out_f + o + j] = saturate_int8(spec.requant[o + j].apply(a) + spec.out_zero);
      }
    }
    for (; o < out_f; ++o) {
      int32_t acc = spec.bias != nullptr ? spec.bias[o] : 0;
      acc += kd.int8_dot(spec.weights + o * in_f, wide.data(), in_f);
      out[i * out_f + o] = saturate_int8(spec.requant[o].apply(acc) + spec.out_zero);
    }
  }
}

int64_t int8_linear_macs(const Int8LinearSpec& spec) {
  return spec.in_features * spec.out_features;
}

// ---- elementwise -----------------------------------------------------------

void int8_add(const int8_t* a, int32_t za, double ma, const int8_t* b, int32_t zb,
              double mb, int32_t z_out, int64_t numel, int8_t* out) {
  for (int64_t i = 0; i < numel; ++i) {
    const double v = ma * (static_cast<int32_t>(a[i]) - za) +
                     mb * (static_cast<int32_t>(b[i]) - zb);
    out[i] = saturate_int8(round_half_up(v) + z_out);
  }
}

void int8_add_build_lut(int32_t za, double ma, int32_t zb, double mb, int32_t z_out,
                        int8_t lut[256 * 256]) {
  for (int32_t qa = -128; qa <= 127; ++qa) {
    const double base = ma * (qa - za);
    int8_t* row = lut + (qa + 128) * 256;
    for (int32_t qb = -128; qb <= 127; ++qb)
      row[qb + 128] = saturate_int8(round_half_up(base + mb * (qb - zb)) + z_out);
  }
}

void int8_add_lut(const int8_t* a, const int8_t* b, const int8_t* lut, int64_t numel,
                  int8_t* out) {
  for (int64_t i = 0; i < numel; ++i) {
    const int32_t idx = ((static_cast<int32_t>(a[i]) + 128) << 8) +
                        (static_cast<int32_t>(b[i]) + 128);
    out[i] = lut[idx];
  }
}

void int8_rescale_build_lut(int32_t z_in, double m, int32_t z_out, int8_t lut[256]) {
  for (int32_t q = -128; q <= 127; ++q) {
    const double v = m * (q - z_in);
    lut[static_cast<size_t>(q + 128)] = saturate_int8(round_half_up(v) + z_out);
  }
}

void int8_rescale(const int8_t* in, int32_t z_in, double m, int32_t z_out, int64_t numel,
                  int8_t* out, const simd::KernelDispatch* dispatch) {
  // The map is a pure function of the input byte: build the 256-entry table
  // (identical formula per value, so bit-exact against the old per-element
  // loop) and stream it through the dispatch tier.
  int8_t lut[256];
  int8_rescale_build_lut(z_in, m, z_out, lut);
  resolve(dispatch).lut_stream(in, lut, numel, out);
}

void int8_activation_build_lut(const Int8ActivationSpec& spec, double neg, int8_t lut[256]) {
  constexpr int32_t lo = -128;
  for (int32_t q = -128; q <= 127; ++q) {
    const int32_t centred = q - spec.in_zero;
    const double m = centred >= 0 ? spec.pos : neg;
    const int32_t mapped =
        std::clamp(round_half_up(m * centred) + spec.out_zero, lo, spec.out_cap);
    lut[static_cast<size_t>(q + 128)] = static_cast<int8_t>(mapped);
  }
}

void int8_activation_nchw(const int8_t* in, int64_t n, int64_t channels, int64_t plane,
                          const Int8ActivationSpec& spec, int8_t* out,
                          const simd::KernelDispatch* dispatch) {
  // The map is pointwise int8 -> int8 with (at most per-channel) parameters:
  // build the 256-entry table and stream lookups through the dispatch tier —
  // the table amortises the double-precision requant over plane elements.
  // With a scalar negative slope (ReLU/ReLU6/LeakyReLU) one table serves
  // every channel.
  const simd::KernelDispatch& kd = resolve(dispatch);
  int8_t lut[256];
  if (spec.neg_per_channel == nullptr) int8_activation_build_lut(spec, spec.neg, lut);
  for (int64_t c = 0; c < channels; ++c) {
    if (spec.neg_per_channel != nullptr)
      int8_activation_build_lut(spec, spec.neg_per_channel[c], lut);
    for (int64_t i = 0; i < n; ++i) {
      const int8_t* src = in + (i * channels + c) * plane;
      int8_t* dst = out + (i * channels + c) * plane;
      kd.lut_stream(src, lut, plane, dst);
    }
  }
}

// ---- pixel ops -------------------------------------------------------------

void int8_depth_to_space(const int8_t* in, int64_t n, int64_t c_in, int64_t h, int64_t w,
                         int64_t block, int8_t* out,
                         const simd::KernelDispatch* dispatch) {
  const int64_t r = block, c_out = c_in / (r * r);
  if (r == 2) {
    // For a fixed (image, out-channel, dy), output row y*2+dy is exactly the
    // dx=0 and dx=1 source planes' row y interleaved byte-by-byte.
    const simd::KernelDispatch& kd = resolve(dispatch);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t c = 0; c < c_out; ++c)
        for (int64_t dy = 0; dy < 2; ++dy) {
          const int8_t* plane_a = in + ((i * c_in) + c * 4 + dy * 2) * h * w;
          const int8_t* plane_b = plane_a + h * w;
          for (int64_t y = 0; y < h; ++y)
            kd.interleave2(plane_a + y * w, plane_b + y * w, w,
                           out + ((i * c_out + c) * h * 2 + (y * 2 + dy)) * w * 2);
        }
    return;
  }
  for (int64_t i = 0; i < n; ++i)
    for (int64_t c = 0; c < c_out; ++c)
      for (int64_t dy = 0; dy < r; ++dy)
        for (int64_t dx = 0; dx < r; ++dx) {
          const int8_t* in_plane = in + ((i * c_in) + c * r * r + dy * r + dx) * h * w;
          for (int64_t y = 0; y < h; ++y) {
            int8_t* out_row = out + ((i * c_out + c) * h * r + (y * r + dy)) * w * r + dx;
            const int8_t* in_row = in_plane + y * w;
            for (int64_t x = 0; x < w; ++x) out_row[x * r] = in_row[x];
          }
        }
}

void int8_tile_channels(const int8_t* in, int64_t n, int64_t c, int64_t plane,
                        int64_t times, int8_t* out) {
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const int8_t* src = in + (i * c + ch) * plane;
      for (int64_t t = 0; t < times; ++t)
        std::copy(src, src + plane, out + ((i * c + ch) * times + t) * plane);
    }
}

}  // namespace sesr
