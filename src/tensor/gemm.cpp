#include "tensor/gemm.h"

#include <algorithm>

#include "tensor/parallel.h"
#include "tensor/simd/dispatch.h"

namespace sesr {
namespace {

// Cache-block extents tuned for typical L1/L2 sizes; correctness does not
// depend on them.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockN = 256;
constexpr int64_t kBlockK = 256;

}  // namespace

void gemm_accumulate(int64_t m, int64_t n, int64_t k,
                     const float* a, int64_t lda,
                     const float* b, int64_t ldb,
                     float* c, int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  // Standalone kernel: reads the active dispatch (cpuid best, or the
  // SESR_KERNEL_VARIANT override) per call. Program-recorded variants only
  // apply to compiled inference plans, which do not reach this path.
  const simd::KernelDispatch& kd = simd::active_dispatch();
  parallel_for(0, (m + kBlockM - 1) / kBlockM, [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t i0 = blk * kBlockM;
      const int64_t mb = std::min(kBlockM, m - i0);
      for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const int64_t kb = std::min(kBlockK, k - p0);
        for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const int64_t nb = std::min(kBlockN, n - j0);
          kd.gemm_block(mb, nb, kb,
                        a + i0 * lda + p0, lda,
                        b + p0 * ldb + j0, ldb,
                        c + i0 * ldc + j0, ldc);
        }
      }
    }
  });
}

void gemm_at_b_accumulate(int64_t m, int64_t n, int64_t k,
                          const float* a, int64_t lda,
                          const float* b, int64_t ldb,
                          float* c, int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const simd::KernelDispatch& kd = simd::active_dispatch();
  // A is [k, m] row-major; C[i, j] += sum_p A[p, i] * B[p, j].
  parallel_for(0, (m + kBlockM - 1) / kBlockM, [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t i0 = blk * kBlockM;
      const int64_t mb = std::min(kBlockM, m - i0);
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * lda + i0;
        const float* brow = b + p * ldb;
        for (int64_t i = 0; i < mb; ++i) {
          const float aval = arow[i];
          // Row-level skip shared by every tier (the saxpy kernels are only
          // ever handed nonzero coefficients, so tiers cannot diverge on
          // signed-zero products here).
          if (aval == 0.0f) continue;
          kd.saxpy(aval, brow, n, c + (i0 + i) * ldc);
        }
      }
    }
  });
}

}  // namespace sesr
