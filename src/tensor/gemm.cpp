#include "tensor/gemm.h"

#include <algorithm>

#include "tensor/parallel.h"

namespace sesr {
namespace {

// Cache-block extents tuned for typical L1/L2 sizes; correctness does not
// depend on them.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockN = 256;
constexpr int64_t kBlockK = 256;

// C[mb, nb] += A[mb, kb] * B[kb, nb] on one row panel. The j-inner loop form
// (saxpy over rows of B) auto-vectorises well and keeps B access contiguous.
void micro_block(int64_t mb, int64_t nb, int64_t kb,
                 const float* a, int64_t lda,
                 const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  for (int64_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (int64_t p = 0; p < kb; ++p) {
      const float aval = arow[p];
      if (aval == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < nb; ++j) crow[j] += aval * brow[j];
    }
  }
}

}  // namespace

void gemm_accumulate(int64_t m, int64_t n, int64_t k,
                     const float* a, int64_t lda,
                     const float* b, int64_t ldb,
                     float* c, int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  parallel_for(0, (m + kBlockM - 1) / kBlockM, [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t i0 = blk * kBlockM;
      const int64_t mb = std::min(kBlockM, m - i0);
      for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const int64_t kb = std::min(kBlockK, k - p0);
        for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const int64_t nb = std::min(kBlockN, n - j0);
          micro_block(mb, nb, kb,
                      a + i0 * lda + p0, lda,
                      b + p0 * ldb + j0, ldb,
                      c + i0 * ldc + j0, ldc);
        }
      }
    }
  });
}

void gemm_at_b_accumulate(int64_t m, int64_t n, int64_t k,
                          const float* a, int64_t lda,
                          const float* b, int64_t ldb,
                          float* c, int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  // A is [k, m] row-major; C[i, j] += sum_p A[p, i] * B[p, j].
  parallel_for(0, (m + kBlockM - 1) / kBlockM, [&](int64_t blk_lo, int64_t blk_hi) {
    for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
      const int64_t i0 = blk * kBlockM;
      const int64_t mb = std::min(kBlockM, m - i0);
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * lda + i0;
        const float* brow = b + p * ldb;
        for (int64_t i = 0; i < mb; ++i) {
          const float aval = arow[i];
          if (aval == 0.0f) continue;
          float* crow = c + (i0 + i) * ldc;
          for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  });
}

}  // namespace sesr
