#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sesr {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), storage_(std::move(data)) {
  if (static_cast<int64_t>(storage_.size()) != shape_.numel())
    throw std::invalid_argument("Tensor: data size " + std::to_string(storage_.size()) +
                                " does not match shape " + shape_.to_string());
  attach();
}

Tensor::Tensor(ViewTag, Shape shape, float* data)
    : shape_(std::move(shape)), data_(data), size_(static_cast<size_t>(shape_.numel())) {}

Tensor Tensor::view(Shape shape, float* data) {
  if (data == nullptr) throw std::invalid_argument("Tensor::view: null storage");
  return Tensor(ViewTag{}, std::move(shape), data);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  storage_.assign(other.data_, other.data_ + other.size_);
  attach();
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      storage_(std::move(other.storage_)),
      data_(other.data_),
      size_(other.size_) {
  // Moving a vector keeps its heap block, so data_ stays valid for owners;
  // views carry their external pointer unchanged.
  other.data_ = nullptr;
  other.size_ = 0;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  storage_.assign(other.data_, other.data_ + other.size_);
  attach();
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  storage_ = std::move(other.storage_);
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  Tensor copy = *this;
  return std::move(copy).reshaped(std::move(new_shape));
}

Tensor Tensor::reshaped(Shape new_shape) && {
  if (new_shape.numel() != numel())
    throw std::invalid_argument("Tensor::reshaped: cannot reshape " + shape_.to_string() +
                                " to " + new_shape.to_string());
  shape_ = std::move(new_shape);
  return std::move(*this);
}

float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  assert(ndim() == 4);
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  assert(n >= 0 && n < shape_[0] && c >= 0 && c < C && h >= 0 && h < H && w >= 0 && w < W);
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_)
    throw std::invalid_argument(std::string("Tensor::") + op + ": shape mismatch " +
                                shape_.to_string() + " vs " + other.shape_.to_string());
}

Tensor& Tensor::fill(float value) {
  std::fill(data_, data_ + size_, value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(other, "add_");
  for (size_t i = 0; i < size_; ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(other, "sub_");
  for (size_t i = 0; i < size_; ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(other, "mul_");
  for (size_t i = 0; i < size_; ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::add_scalar(float s) {
  for (float& v : flat()) v += s;
  return *this;
}

Tensor& Tensor::mul_scalar(float s) {
  for (float& v : flat()) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  check_same_shape(x, "axpy_");
  for (size_t i = 0; i < size_; ++i) data_[i] += alpha * x.data_[i];
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (float& v : flat()) v = std::clamp(v, lo, hi);
  return *this;
}

Tensor& Tensor::sign_() {
  for (float& v : flat()) v = (v > 0.0f) ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;  // double accumulator: float error grows linearly over large tensors
  for (float v : flat()) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const { return numel() > 0 ? sum() / static_cast<float>(numel()) : 0.0f; }

float Tensor::min() const { return *std::min_element(data_, data_ + size_); }

float Tensor::max() const { return *std::max_element(data_, data_ + size_); }

float Tensor::max_abs_diff(const Tensor& other) const {
  check_same_shape(other, "max_abs_diff");
  float m = 0.0f;
  for (size_t i = 0; i < size_; ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

int64_t Tensor::argmax() const {
  return std::distance(data_, std::max_element(data_, data_ + size_));
}

}  // namespace sesr
