#include "tensor/workspace.h"

#include <algorithm>
#include <stdexcept>

namespace sesr {

namespace {
constexpr int64_t kMinChunkFloats = 4096;  // 16 KiB floor keeps tiny asks cheap
}  // namespace

std::span<float> Workspace::floats(int64_t numel) {
  if (numel < 0) throw std::invalid_argument("Workspace::floats: negative size");
  if (numel == 0) return {};
  for (; cursor_ < chunks_.size(); ++cursor_) {
    Chunk& chunk = chunks_[cursor_];
    const int64_t room = static_cast<int64_t>(chunk.data.size()) - chunk.used;
    if (room >= numel) {
      float* base = chunk.data.data() + chunk.used;
      chunk.used += numel;
      return {base, static_cast<size_t>(numel)};
    }
    // A partially-used chunk that cannot fit the request is left as-is (its
    // spans must stay valid); move on and allocate past it.
  }
  const int64_t last_cap =
      chunks_.empty() ? 0 : static_cast<int64_t>(chunks_.back().data.size());
  Chunk chunk;
  chunk.data.resize(static_cast<size_t>(std::max({numel, 2 * last_cap, kMinChunkFloats})));
  chunk.used = numel;
  chunks_.push_back(std::move(chunk));
  cursor_ = chunks_.size() - 1;
  return {chunks_.back().data.data(), static_cast<size_t>(numel)};
}

void Workspace::reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  cursor_ = 0;
}

int64_t Workspace::capacity() const {
  int64_t total = 0;
  for (const Chunk& chunk : chunks_) total += static_cast<int64_t>(chunk.data.size());
  return total;
}

}  // namespace sesr
