// Tensor (de)serialization.
//
// A minimal binary container ("SESR" magic + version + per-tensor shape and
// raw float32 payload) used to checkpoint trained weights so example programs
// and benches can share models without retraining.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sesr {

/// Write `tensors` to `path`. Throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path, const std::vector<Tensor>& tensors);

/// Read the tensor list previously written by save_tensors.
/// Throws std::runtime_error on I/O failure or malformed content.
std::vector<Tensor> load_tensors(const std::string& path);

}  // namespace sesr
