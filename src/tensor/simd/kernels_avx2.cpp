// AVX2 tier. Compiled with -mavx2 -ffp-contract=off and nothing more: the
// fp32 kernels use separate VMULPS/VADDPS on purpose — FMA would change
// rounding versus the scalar reference (see the exactness contract in
// dispatch.h), so -mfma is deliberately absent and contraction is off.
//
// fp32 kernels vectorise across output columns only: each output element is
// one lane accumulating taps in ascending order, so results are bit-identical
// to the scalar tier for finite data. The vector loops do not replicate the
// scalar tier's zero-weight skip — adding a +/-0.0 product to an accumulator
// reached from +0.0 never changes its bits.
//
// int8 kernels use _mm256_madd_epi16 (pmaddwd): exact pairwise int32 sums,
// so any lane split/reduction order is bit-exact by integer associativity.
#include "tensor/simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "tensor/simd/ref_kernels.h"

namespace sesr::simd::detail {
namespace {

template <int R>
inline void conv_tile16(const float* w, int64_t w_stride, const float* slab,
                        int64_t col_rows, int64_t slab_stride, float* dst,
                        int64_t dst_stride) {
  __m256 lo[R], hi[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = _mm256_setzero_ps();
    hi[r] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < col_rows; ++p) {
    const float* srow = slab + p * slab_stride;
    const __m256 s0 = _mm256_loadu_ps(srow);
    const __m256 s1 = _mm256_loadu_ps(srow + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 wv = _mm256_set1_ps(w[r * w_stride + p]);
      lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(wv, s0));
      hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(wv, s1));
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(dst + r * dst_stride, lo[r]);
    _mm256_storeu_ps(dst + r * dst_stride + 8, hi[r]);
  }
}

void conv_block16(const float* w, int64_t w_stride, int rows, const float* slab,
                  int64_t col_rows, int64_t slab_stride, float* dst,
                  int64_t dst_stride) {
  switch (rows) {
    case 4: conv_tile16<4>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    case 3: conv_tile16<3>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    case 2: conv_tile16<2>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    default: conv_tile16<1>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
  }
}

// 2 C rows x 32 columns held in registers across the K sweep; B row loads are
// shared by both A broadcasts (8 acc + 4 B + 1 broadcast = 13 live ymm).
inline void gemm_tile_2x32(const float* a0, const float* a1, const float* b, int64_t ldb,
                           int64_t kb, float* c0, float* c1) {
  __m256 acc0[4], acc1[4];
  for (int t = 0; t < 4; ++t) {
    acc0[t] = _mm256_loadu_ps(c0 + 8 * t);
    acc1[t] = _mm256_loadu_ps(c1 + 8 * t);
  }
  for (int64_t p = 0; p < kb; ++p) {
    const float* brow = b + p * ldb;
    __m256 bv[4];
    for (int t = 0; t < 4; ++t) bv[t] = _mm256_loadu_ps(brow + 8 * t);
    const __m256 av0 = _mm256_set1_ps(a0[p]);
    for (int t = 0; t < 4; ++t) acc0[t] = _mm256_add_ps(acc0[t], _mm256_mul_ps(av0, bv[t]));
    const __m256 av1 = _mm256_set1_ps(a1[p]);
    for (int t = 0; t < 4; ++t) acc1[t] = _mm256_add_ps(acc1[t], _mm256_mul_ps(av1, bv[t]));
  }
  for (int t = 0; t < 4; ++t) {
    _mm256_storeu_ps(c0 + 8 * t, acc0[t]);
    _mm256_storeu_ps(c1 + 8 * t, acc1[t]);
  }
}

inline void gemm_tile_1x32(const float* a0, const float* b, int64_t ldb, int64_t kb,
                           float* c0) {
  __m256 acc0[4];
  for (int t = 0; t < 4; ++t) acc0[t] = _mm256_loadu_ps(c0 + 8 * t);
  for (int64_t p = 0; p < kb; ++p) {
    const float* brow = b + p * ldb;
    const __m256 av0 = _mm256_set1_ps(a0[p]);
    for (int t = 0; t < 4; ++t)
      acc0[t] = _mm256_add_ps(acc0[t], _mm256_mul_ps(av0, _mm256_loadu_ps(brow + 8 * t)));
  }
  for (int t = 0; t < 4; ++t) _mm256_storeu_ps(c0 + 8 * t, acc0[t]);
}

void gemm_block(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc) {
  const int64_t nb32 = nb & ~int64_t{31};
  for (int64_t j0 = 0; j0 < nb32; j0 += 32) {
    int64_t i = 0;
    for (; i + 2 <= mb; i += 2)
      gemm_tile_2x32(a + i * lda, a + (i + 1) * lda, b + j0, ldb, kb, c + i * ldc + j0,
                     c + (i + 1) * ldc + j0);
    if (i < mb) gemm_tile_1x32(a + i * lda, b + j0, ldb, kb, c + i * ldc + j0);
  }
  if (nb32 < nb)
    ref::gemm_block(mb, nb - nb32, kb, a, lda, b + nb32, ldb, c + nb32, ldc);
}

void saxpy(float a, const float* x, int64_t n, float* y) {
  const __m256 av = _mm256_set1_ps(a);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(y + j,
                     _mm256_add_ps(_mm256_loadu_ps(y + j),
                                   _mm256_mul_ps(av, _mm256_loadu_ps(x + j))));
  ref::saxpy(a, x + j, n - j, y + j);
}

inline int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

int32_t int8_dot(const int16_t* w, const int16_t* patch, int64_t count) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i pv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(patch + i));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, pv));
  }
  int32_t sum = hsum_epi32(acc);
  if (i < count) sum += ref::int8_dot(w + i, patch + i, count - i);
  return sum;
}

void int8_dot4(const int16_t* w0, const int16_t* w1, const int16_t* w2,
               const int16_t* w3, const int16_t* patch, int64_t count, int32_t* acc) {
  __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;
  int64_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i pv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(patch + i));
    a0 = _mm256_add_epi32(
        a0, _mm256_madd_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w0 + i)), pv));
    a1 = _mm256_add_epi32(
        a1, _mm256_madd_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w1 + i)), pv));
    a2 = _mm256_add_epi32(
        a2, _mm256_madd_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w2 + i)), pv));
    a3 = _mm256_add_epi32(
        a3, _mm256_madd_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(w3 + i)), pv));
  }
  acc[0] = hsum_epi32(a0);
  acc[1] = hsum_epi32(a1);
  acc[2] = hsum_epi32(a2);
  acc[3] = hsum_epi32(a3);
  if (i < count) {
    int32_t tail[4];
    ref::int8_dot4(w0 + i, w1 + i, w2 + i, w3 + i, patch + i, count - i, tail);
    for (int t = 0; t < 4; ++t) acc[t] += tail[t];
  }
}

// Direct stride-1 conv block: the overlapping pair vectors
// [x_b, x_{b+1}] per column b come from two unaligned loads + unpack +
// cross-lane fixup, then pmaddwd against a broadcast weight pair accumulates
// 2 taps x 16 columns per step. Integer sums — bit-exact vs scalar in any
// order.
template <int R>
inline void conv_cols16_tile(const int16_t* w, int64_t w_stride, const int16_t* img,
                             int64_t ic_stride, int64_t row_stride, int64_t in_c,
                             int64_t k, int64_t kh_count, int64_t kw_pairs,
                             int32_t* acc) {
  const int64_t kceil = 2 * kw_pairs;
  __m256i lo[R], hi[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = _mm256_setzero_si256();
    hi[r] = _mm256_setzero_si256();
  }
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t kh = 0; kh < kh_count; ++kh) {
      const int16_t* row = img + ic * ic_stride + kh * row_stride;
      const int16_t* wg = w + (ic * k + kh) * kceil;
      for (int64_t p = 0; p < kw_pairs; ++p) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * p));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * p + 1));
        const __m256i u0 = _mm256_unpacklo_epi16(a, b);  // pairs b=0..3 | 8..11
        const __m256i u1 = _mm256_unpackhi_epi16(a, b);  // pairs b=4..7 | 12..15
        const __m256i p_lo = _mm256_permute2x128_si256(u0, u1, 0x20);
        const __m256i p_hi = _mm256_permute2x128_si256(u0, u1, 0x31);
        for (int r = 0; r < R; ++r) {
          int32_t wpair;
          std::memcpy(&wpair, wg + r * w_stride + 2 * p, sizeof(wpair));
          const __m256i wv = _mm256_set1_epi32(wpair);
          lo[r] = _mm256_add_epi32(lo[r], _mm256_madd_epi16(p_lo, wv));
          hi[r] = _mm256_add_epi32(hi[r], _mm256_madd_epi16(p_hi, wv));
        }
      }
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * 16), lo[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * 16 + 8), hi[r]);
  }
}

void int8_conv_cols16(const int16_t* w, int64_t w_stride, int rows, const int16_t* img,
                      int64_t ic_stride, int64_t row_stride, int64_t in_c, int64_t k,
                      int64_t kh_count, int64_t kw_pairs, int32_t* acc) {
  switch (rows) {
    case 4: conv_cols16_tile<4>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    case 3: conv_cols16_tile<3>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    case 2: conv_cols16_tile<2>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    default: conv_cols16_tile<1>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
  }
}

// (p + nudge) >> total on int64 lanes without AVX-512's 64-bit arithmetic
// shift: bias into non-negative range, shift logically, un-bias. |p + nudge|
// < 2^62, so p + nudge + 2^62 is in [0, 2^63) and its bit pattern is the
// value — the logical shift then equals the arithmetic one after
// subtracting the shifted bias. Exact for every total in [1, 62].
inline __m256i rounding_shift_epi64(__m256i p, int64_t nudge, int total) {
  const __m256i bias = _mm256_set1_epi64x(nudge + (int64_t{1} << 62));
  const __m256i shifted = _mm256_srli_epi64(_mm256_add_epi64(p, bias), total);
  return _mm256_sub_epi64(shifted, _mm256_set1_epi64x((int64_t{1} << 62) >> total));
}

void int8_requant_row(const int32_t* acc, int64_t n, int32_t bias, int32_t multiplier,
                      int shift, int32_t out_zero, const int8_t* lut, int8_t* out) {
  const int total = 31 - shift;
  if (multiplier == 0 || total == 0 || total >= 63) {
    // Degenerate encodings (m == 0, or a shift the trick cannot bias) are
    // not worth vector code; the reference loop is exact by definition.
    ref::int8_requant_row(acc, n, bias, multiplier, shift, out_zero, lut, out);
    return;
  }
  const int64_t nudge = int64_t{1} << (total - 1);
  const __m256i mul = _mm256_set1_epi64x(multiplier);  // even 32-bit lanes hold m
  const __m256i biasv = _mm256_set1_epi32(bias);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_add_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)), biasv);
    // Sign-extend to int64; the even 32-bit lane of each int64 is the value,
    // which is exactly what the signed 32x32->64 multiply consumes.
    const __m256i lo64 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(a));
    const __m256i hi64 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(a, 1));
    const __m256i plo = rounding_shift_epi64(_mm256_mul_epi32(lo64, mul), nudge, total);
    const __m256i phi = rounding_shift_epi64(_mm256_mul_epi32(hi64, mul), nudge, total);
    // Results fit int32 (they saturate to int8 next); take the low 32 bits
    // of each int64 lane and repack.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        _mm256_blend_epi32(plo, _mm256_slli_si256(phi, 4), 0xAA),
        _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7));
    const __m256i q = _mm256_add_epi32(packed, _mm256_set1_epi32(out_zero));
    const __m256i clamped = _mm256_max_epi32(_mm256_min_epi32(q, _mm256_set1_epi32(127)),
                                             _mm256_set1_epi32(-128));
    // 8 int32 -> 8 int8 (values already in range).
    const __m256i shuf = _mm256_shuffle_epi8(
        clamped, _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                  -1, 0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                  -1, -1));
    alignas(16) int8_t bytes[8];
    const int32_t lo8 = _mm_cvtsi128_si32(_mm256_castsi256_si128(shuf));
    const int32_t hi8 = _mm_cvtsi128_si32(_mm256_extracti128_si256(shuf, 1));
    std::memcpy(bytes, &lo8, 4);
    std::memcpy(bytes + 4, &hi8, 4);
    if (lut == nullptr) {
      std::memcpy(out + i, bytes, 8);
    } else {
      for (int t = 0; t < 8; ++t) out[i + t] = lut[static_cast<int32_t>(bytes[t]) + 128];
    }
  }
  if (i < n)
    ref::int8_requant_row(acc + i, n - i, bias, multiplier, shift, out_zero, lut, out + i);
}

void interleave2(const int8_t* a, const int8_t* b, int64_t n, int8_t* out) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * i), _mm_unpacklo_epi8(va, vb));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * i + 16), _mm_unpackhi_epi8(va, vb));
  }
  ref::interleave2(a + i, b + i, n - i, out + 2 * i);
}

}  // namespace

const KernelDispatch* avx2_ops() {
  static const KernelDispatch ops = [] {
    KernelDispatch d;
    d.variant = KernelVariant::kAvx2;
    d.conv_block16 = &conv_block16;
    d.gemm_block = &gemm_block;
    d.saxpy = &saxpy;
    d.int8_dot4 = &int8_dot4;
    d.int8_dot = &int8_dot;
    d.int8_conv_cols16 = &int8_conv_cols16;
    d.int8_requant_row = &int8_requant_row;
    d.lut_stream = nullptr;  // no in-register byte gather before VBMI
    d.interleave2 = &interleave2;
    return d;
  }();
  return &ops;
}

}  // namespace sesr::simd::detail

#else  // !__AVX2__

namespace sesr::simd::detail {
const KernelDispatch* avx2_ops() { return nullptr; }
}  // namespace sesr::simd::detail

#endif
