#include "tensor/simd/dispatch.h"

#include <array>
#include <string>

#include "core/config.h"
#include "tensor/simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SESR_SIMD_X86 1
#endif

namespace sesr::simd {
namespace {

#ifdef SESR_SIMD_X86
// xgetbv(0) — which register state the OS saves/restores. A CPU can report
// AVX-512 in cpuid while the kernel has not enabled zmm state (XCR0), in
// which case executing a zmm instruction faults; both checks are required.
uint64_t read_xcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}
#endif

CpuFeatures detect_features() {
  CpuFeatures f;
#ifdef SESR_SIMD_X86
  uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx >> 27) & 1;
  const bool avx = (ecx >> 28) & 1;
  if (!osxsave || !avx) return f;

  const uint64_t xcr0 = read_xcr0();
  const bool os_ymm = (xcr0 & 0x6) == 0x6;     // XMM + YMM state
  const bool os_zmm = (xcr0 & 0xe6) == 0xe6;   // + opmask, zmm0-15 hi, zmm16-31
  if (!os_ymm) return f;

  uint32_t ebx7 = 0, ecx7 = 0, edx7 = 0, eax7 = 0;
  if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) return f;
  f.avx2 = (ebx7 >> 5) & 1;

  if (!os_zmm) return f;
  const bool f512 = (ebx7 >> 16) & 1;
  const bool dq = (ebx7 >> 17) & 1;
  const bool bw = (ebx7 >> 30) & 1;
  const bool vl = (ebx7 >> 31) & 1;
  f.avx512_core = f512 && dq && bw && vl;
  if (f.avx512_core) {
    f.avx512_vnni = (ecx7 >> 11) & 1;
    f.avx512_vbmi = (ecx7 >> 1) & 1;
  }
#endif
  return f;
}

// Overlay the non-null entries of `frag` onto `base` (which starts as the
// complete scalar table, so every slot stays callable). The slot walk is
// generated from SESR_KERNEL_DISPATCH_SLOTS so every per-ISA overlay — and
// any future tier — shares this one merge.
KernelDispatch overlay(KernelDispatch base, const KernelDispatch* frag,
                       KernelVariant tier) {
  base.variant = tier;
  if (frag == nullptr) return base;
#define SESR_MERGE_SLOT(name) \
  if (frag->name) base.name = frag->name;
  SESR_KERNEL_DISPATCH_SLOTS(SESR_MERGE_SLOT)
#undef SESR_MERGE_SLOT
  return base;
}

struct DispatchTables {
  std::array<KernelDispatch, kNumKernelVariants> table;
  KernelVariant best = KernelVariant::kScalar;

  DispatchTables() {
    const CpuFeatures& cpu = cpu_features();
    const KernelDispatch& scalar = *detail::scalar_ops();
    table[0] = scalar;
    table[0].variant = KernelVariant::kScalar;

    // A tier is offered only when the CPU supports it AND the binary carries
    // its code; otherwise the slot aliases the next-best tier so
    // dispatch_for() on a clamped variant is still well-defined.
    table[1] = table[0];
    if (cpu.avx2 && detail::avx2_ops() != nullptr) {
      table[1] = overlay(scalar, detail::avx2_ops(), KernelVariant::kAvx2);
      best = KernelVariant::kAvx2;
    }

    table[2] = table[1];
    if (cpu.avx512_core && cpu.avx512_vnni && detail::avx512_ops() != nullptr) {
      table[2] = overlay(table[1], detail::avx512_ops(), KernelVariant::kAvx512Vnni);
      if (cpu.avx512_vbmi && detail::vbmi_lut_stream() != nullptr)
        table[2].lut_stream = detail::vbmi_lut_stream();
      best = KernelVariant::kAvx512Vnni;
    }

    // kJit carries no kernel table of its own: jit'd ops live inside compiled
    // Programs (runtime/jit patches them at plan-compile time), and everything
    // else under the jit tier — non-jit'd ops, standalone kernel calls — runs
    // the best base tier. Aliasing also makes clamp_to_supported(kJit) name
    // that base tier, which is exactly the fallback ladder's bottom rung.
    table[3] = table[2];
  }
};

const DispatchTables& tables() {
  static const DispatchTables t;
  return t;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_features();
  return f;
}

const char* variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kAvx2: return "avx2";
    case KernelVariant::kAvx512Vnni: return "avx512vnni";
    case KernelVariant::kJit: return "jit";
  }
  return "scalar";
}

std::optional<KernelVariant> parse_variant(std::string_view name) {
  if (name == "scalar") return KernelVariant::kScalar;
  if (name == "avx2") return KernelVariant::kAvx2;
  if (name == "avx512vnni") return KernelVariant::kAvx512Vnni;
  if (name == "jit") return KernelVariant::kJit;
  return std::nullopt;
}

KernelVariant best_supported() { return tables().best; }

KernelVariant clamp_to_supported(KernelVariant v) {
  // Tables alias downward, so the table at `v` names the strongest supported
  // tier <= v.
  return tables().table[static_cast<int>(v)].variant;
}

std::vector<KernelVariant> supported_variants() {
  std::vector<KernelVariant> out;
  out.push_back(KernelVariant::kScalar);
  for (int i = 1; i < kNumKernelVariants; ++i) {
    const KernelVariant v = static_cast<KernelVariant>(i);
    if (clamp_to_supported(v) == v) out.push_back(v);
  }
  return out;
}

KernelVariant active_variant() {
  const std::string knob = core::config_string("SESR_KERNEL_VARIANT");
  if (const auto forced = parse_variant(knob)) return clamp_to_supported(*forced);
  return best_supported();
}

bool variant_forced() {
  return parse_variant(core::config_string("SESR_KERNEL_VARIANT")).has_value();
}

const KernelDispatch& dispatch_for(KernelVariant v) {
  return tables().table[static_cast<int>(v)];
}

const KernelDispatch& active_dispatch() { return dispatch_for(active_variant()); }

}  // namespace sesr::simd
