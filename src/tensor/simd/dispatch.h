// Runtime CPU-feature-dispatched kernel tier.
//
// The hot inner loops of the serving and training kernels — the fp32 conv /
// GEMM microkernels, the int8 convolution dot products, the int8 LUT
// streams, and the depth-to-space interleave — exist in explicit-intrinsic
// variants selected once per process from cpuid (plus the xgetbv OS-support
// check for AVX state): a portable scalar reference, an AVX2 tier, and an
// AVX-512 tier using VNNI `vpdpwssd` for the int8 dots (and, where the CPU
// has VBMI, in-register 256-entry byte-table lookups for the LUT streams).
//
// Exactness contract (every variant, both precisions):
//  - int8 kernels accumulate the same int32 sums — integer addition is
//    associative, so vector-lane splits and horizontal reductions are
//    bit-exact against the scalar reference by construction;
//  - fp32 kernels keep the scalar reference's per-output-element operation
//    order: each output element is one vector lane accumulating taps in
//    ascending order, products are rounded before accumulation (mul + add,
//    never FMA-contracted — the SIMD TUs build with -ffp-contract=off), and
//    no cross-lane reduction exists. Every fp32 variant is therefore
//    bit-identical to scalar, which is what keeps the distributed tier's
//    cross-process bit-identical invariant alive on heterogeneous fleets
//    (and lets SESR_KERNEL_VARIANT=scalar pin any machine to the reference
//    tier for A/B debugging rather than for correctness).
//
// Variant selection is a runtime::Program pass decision: compiled programs
// record which variant each kernel-backed op runs (Program::dump() and the
// bench JSON report it), and the SESR_KERNEL_VARIANT knob forces any tier
// the CPU supports ("native" = best available). Standalone kernel calls
// (training GEMMs, direct kernel invocations) read active_dispatch() per
// call instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace sesr::simd {

/// CPU feature bits the kernel tiers care about, detected once per process.
/// AVX bits are reported only when xgetbv says the OS actually saves the
/// corresponding register state (XCR0 ymm / zmm+opmask bits).
struct CpuFeatures {
  bool avx2 = false;         ///< AVX2, with OS ymm state support
  bool avx512_core = false;  ///< AVX-512 F+BW+VL+DQ, with OS zmm state support
  bool avx512_vnni = false;  ///< AVX512_VNNI (vpdpwssd) on top of the core set
  bool avx512_vbmi = false;  ///< AVX512_VBMI (vpermi2b byte tables)
};

[[nodiscard]] const CpuFeatures& cpu_features();

/// The dispatchable tiers, in strength order. kAvx512Vnni requires the
/// AVX-512 core set plus VNNI (the int8 dots are the tier's reason to
/// exist); VBMI is an opportunistic extra within that tier, never a
/// selection criterion. kJit is the plan-compile-time copy-and-patch tier
/// (src/runtime/jit/): it layers shape-specialized patched stencils on top
/// of the best base tier, so at this level its dispatch table aliases that
/// base tier — ops a program could not JIT-compile, and standalone kernel
/// calls under SESR_KERNEL_VARIANT=jit, run the base kernels. Whether jit
/// is actually available (stencils built, W^X mmap usable) is decided by
/// runtime/jit, not here; clamp_to_supported(kJit) therefore names the base
/// tier, and supported_variants() never lists kJit.
enum class KernelVariant : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512Vnni = 2,
  kJit = 3,
};
inline constexpr int kNumKernelVariants = 4;

/// "scalar" / "avx2" / "avx512vnni" / "jit".
[[nodiscard]] const char* variant_name(KernelVariant v);

/// Inverse of variant_name (case-sensitive). nullopt for anything else —
/// including "native", which callers treat as "no forced variant".
[[nodiscard]] std::optional<KernelVariant> parse_variant(std::string_view name);

/// The strongest tier this CPU (and OS) supports.
[[nodiscard]] KernelVariant best_supported();

/// The strongest supported tier that is <= `v` — forcing "avx512vnni" on an
/// AVX2-only box yields kAvx2, never an illegal-instruction crash.
[[nodiscard]] KernelVariant clamp_to_supported(KernelVariant v);

/// Variants this CPU supports, ascending (always starts with kScalar).
[[nodiscard]] std::vector<KernelVariant> supported_variants();

/// The tier the process selects right now: SESR_KERNEL_VARIANT (one of
/// "scalar" / "avx2" / "avx512vnni", clamped to CPU support) when set to a
/// recognised value, else best_supported(). Re-read from the environment on
/// every call; compiled programs snapshot it once, at plan-compile time.
[[nodiscard]] KernelVariant active_variant();

/// Whether SESR_KERNEL_VARIANT currently names a recognised tier (i.e. the
/// active variant is pinned rather than auto-detected).
[[nodiscard]] bool variant_forced();

/// One tier's kernel entry points. Every pointer is non-null in the tables
/// dispatch_for() returns; tiers fall back to the scalar implementation for
/// any kernel they do not accelerate.
struct KernelDispatch {
  KernelVariant variant = KernelVariant::kScalar;

  /// fp32 conv microkernel: for r in [0, rows) (rows in [1, 4]),
  /// dst[r*dst_stride + b] = sum_p w[r*w_stride + p] * slab[p*slab_stride + b]
  /// over b in [0, 16), accumulating each element in ascending-p order from
  /// 0.0f. Overwrites dst (no accumulate).
  void (*conv_block16)(const float* w, int64_t w_stride, int rows, const float* slab,
                       int64_t col_rows, int64_t slab_stride, float* dst,
                       int64_t dst_stride);

  /// fp32 GEMM micro block: C[mb, nb] += A[mb, kb] * B[kb, nb], each C
  /// element accumulating taps in ascending-p order.
  void (*gemm_block)(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                     const float* b, int64_t ldb, float* c, int64_t ldc);

  /// y[j] += a * x[j] (ascending j; the gemm_at_b inner loop).
  void (*saxpy)(float a, const float* x, int64_t n, float* y);

  /// acc[j] = sum_i w_j[i] * patch[i] (int32) for four weight rows sharing
  /// one patch stream. Arbitrary count.
  void (*int8_dot4)(const int16_t* w0, const int16_t* w1, const int16_t* w2,
                    const int16_t* w3, const int16_t* patch, int64_t count,
                    int32_t* acc);

  /// sum_i w[i] * patch[i] (int32). Arbitrary count.
  int32_t (*int8_dot)(const int16_t* w, const int16_t* patch, int64_t count);

  /// Direct stride-1 int8 conv microkernel: 16 consecutive output columns
  /// for `rows` (1..4) output channels, read straight from the widened,
  /// horizontally padded int16 image (no im2col slab).
  ///
  ///   acc[r*16 + b] = sum_{ic, kh, p} w[r*w_stride + (ic*k + kh)*2*kw_pairs + 2p]
  ///                                     * img[ic*ic_stride + kh*row_stride + b + 2p]
  ///                 + w[... + 2p + 1]   * img[...              + b + 2p + 1]
  ///
  /// `img` points at (ic = 0, first valid kernel row, first output column of
  /// the block); `kh_count` is the number of vertically in-bounds kernel
  /// rows (the caller clips top/bottom padding — skipped rows contribute
  /// exactly 0, so clipping is bit-exact). Weights use the kw-padded layout
  /// (Int8ConvSpec::weights_kw): kernel rows padded to 2*kw_pairs taps with
  /// zeros, so the pair reads at column b + 2p + 1 may touch one column past
  /// the kernel width — in-bounds by the padded row's slack, nulled by the
  /// zero weight. Overwrites acc (no bias). Every row must have at least 31
  /// readable int16 past the block's first column (kPatchSlack guarantees
  /// it); the AVX-512 variant's 64-byte loads only *use* elements the scalar
  /// reference reads, but they *touch* the full window.
  void (*int8_conv_cols16)(const int16_t* w, int64_t w_stride, int rows,
                           const int16_t* img, int64_t ic_stride, int64_t row_stride,
                           int64_t in_c, int64_t k, int64_t kh_count,
                           int64_t kw_pairs, int32_t* acc);

  /// Fixed-point requantisation of `n` int32 accumulators sharing one output
  /// channel: out[i] = lut ? lut[q + 128] : q with
  /// q = saturate_int8(round_half_up(m * (acc[i] + bias)) + out_zero) and
  /// m = multiplier * 2^(shift - 31) applied exactly as
  /// FixedPointMultiplier::apply (multiplier == 0 encodes m == 0). The
  /// rounding shift is a pure function of each int32, so 64-bit vector lanes
  /// reproduce the scalar result bit-for-bit.
  void (*int8_requant_row)(const int32_t* acc, int64_t n, int32_t bias,
                           int32_t multiplier, int shift, int32_t out_zero,
                           const int8_t* lut, int8_t* out);

  /// out[i] = lut[(int)in[i] + 128]. `out` may equal `in` (exact alias);
  /// partial overlap is not supported.
  void (*lut_stream)(const int8_t* in, const int8_t* lut, int64_t n, int8_t* out);

  /// out[2i] = a[i], out[2i + 1] = b[i] — the depth-to-space block-2 row
  /// interleave. `out` must not overlap the inputs.
  void (*interleave2)(const int8_t* a, const int8_t* b, int64_t n, int8_t* out);
};

/// Every kernel slot of KernelDispatch, for table-merge code that must stay
/// in sync with the struct (X is applied to each member name). Adding a
/// kernel means adding it to the struct AND to this list.
#define SESR_KERNEL_DISPATCH_SLOTS(X)                                       \
  X(conv_block16)                                                           \
  X(gemm_block)                                                             \
  X(saxpy)                                                                  \
  X(int8_dot4)                                                              \
  X(int8_dot)                                                               \
  X(int8_conv_cols16)                                                       \
  X(int8_requant_row)                                                       \
  X(lut_stream)                                                             \
  X(interleave2)

/// The (immutable, process-lifetime) kernel table for a tier; `v` is clamped
/// to CPU support first.
[[nodiscard]] const KernelDispatch& dispatch_for(KernelVariant v);

/// dispatch_for(active_variant()).
[[nodiscard]] const KernelDispatch& active_dispatch();

}  // namespace sesr::simd
