// Internal seam between dispatch.cpp and the per-ISA kernel TUs.
//
// Each TU is compiled with exactly the -m flags its intrinsics need (set
// per-file in CMakeLists.txt) and exposes one provider function returning a
// KernelDispatch fragment: entries it accelerates are non-null, the rest are
// null and dispatch.cpp fills them from the scalar table. On builds where
// the TU's ISA macros are absent (non-x86 targets, or compilers without the
// flags) the provider returns nullptr and the tier simply isn't offered —
// runtime cpuid gating in dispatch.cpp independently keeps unsupported
// tiers off the menu even when they were compiled in.
#pragma once

#include "tensor/simd/dispatch.h"

namespace sesr::simd::detail {

/// Complete table (every pointer non-null). Never returns nullptr.
const KernelDispatch* scalar_ops();

/// AVX2 fragment, or nullptr when this binary has no AVX2 code.
const KernelDispatch* avx2_ops();

/// AVX-512 F+BW+VL+DQ+VNNI fragment, or nullptr when not compiled in.
const KernelDispatch* avx512_ops();

/// AVX512_VBMI lut_stream, or nullptr. Kept out of avx512_ops() because VBMI
/// is a separate cpuid bit (Skylake-SP era chips have VNNI-less cousins and
/// vice versa) — dispatch.cpp splices it into the AVX-512 tier only when the
/// CPU actually reports VBMI.
void (*vbmi_lut_stream())(const int8_t*, const int8_t*, int64_t, int8_t*);

}  // namespace sesr::simd::detail
