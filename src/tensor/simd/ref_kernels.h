// Inline scalar reference implementations of every dispatchable kernel.
//
// These are the ground truth for the exactness contract in dispatch.h: the
// scalar tier exports them verbatim, and the vector TUs call them for tail
// and fallback paths so a partially-vectorised kernel still replays the
// reference per-element operation order exactly. Header-inline (rather than
// functions in the scalar TU) so each vector TU's tails inline into its own
// loops without cross-TU call overhead.
//
// fp32 rules the vector implementations must mirror:
//  - each output element accumulates taps in ascending index order;
//  - every product is rounded before it is added (mul + add, no FMA);
//  - accumulators that start at +0.0f may skip zero weights or not — with
//    finite inputs, adding a +/-0.0 product to a finite or +0.0 accumulator
//    never changes its bits, so both choices produce identical results.
#pragma once

#include <cstdint>

namespace sesr::simd::ref {

inline void conv_block16(const float* w, int64_t w_stride, int rows, const float* slab,
                         int64_t col_rows, int64_t slab_stride, float* dst,
                         int64_t dst_stride) {
  for (int r = 0; r < rows; ++r) {
    const float* wrow = w + r * w_stride;
    float acc[16] = {};
    for (int64_t p = 0; p < col_rows; ++p) {
      const float wv = wrow[p];
      if (wv == 0.0f) continue;  // collapsed zero taps are common post-training
      const float* srow = slab + p * slab_stride;
      for (int b = 0; b < 16; ++b) acc[b] += wv * srow[b];
    }
    float* drow = dst + r * dst_stride;
    for (int b = 0; b < 16; ++b) drow[b] = acc[b];
  }
}

inline void gemm_block(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                       const float* b, int64_t ldb, float* c, int64_t ldc) {
  for (int64_t i = 0; i < mb; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < kb; ++p) {
      const float aval = arow[p];
      if (aval == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < nb; ++j) crow[j] += aval * brow[j];
    }
  }
}

inline void saxpy(float a, const float* x, int64_t n, float* y) {
  for (int64_t j = 0; j < n; ++j) y[j] += a * x[j];
}

inline int32_t int8_dot(const int16_t* w, const int16_t* patch, int64_t count) {
  int32_t acc = 0;
  for (int64_t i = 0; i < count; ++i)
    acc += static_cast<int32_t>(w[i]) * static_cast<int32_t>(patch[i]);
  return acc;
}

inline void int8_dot4(const int16_t* w0, const int16_t* w1, const int16_t* w2,
                      const int16_t* w3, const int16_t* patch, int64_t count,
                      int32_t* acc) {
  int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  for (int64_t i = 0; i < count; ++i) {
    const int32_t p = patch[i];
    a0 += static_cast<int32_t>(w0[i]) * p;
    a1 += static_cast<int32_t>(w1[i]) * p;
    a2 += static_cast<int32_t>(w2[i]) * p;
    a3 += static_cast<int32_t>(w3[i]) * p;
  }
  acc[0] = a0;
  acc[1] = a1;
  acc[2] = a2;
  acc[3] = a3;
}

inline void int8_conv_cols16(const int16_t* w, int64_t w_stride, int rows,
                             const int16_t* img, int64_t ic_stride, int64_t row_stride,
                             int64_t in_c, int64_t k, int64_t kh_count,
                             int64_t kw_pairs, int32_t* acc) {
  // Taps outer, the 16 columns inner: each pair step streams one contiguous
  // 17-element image window, which the vector tiers mirror exactly (integer
  // sums — any accumulation order is bit-identical).
  const int64_t kceil = 2 * kw_pairs;
  for (int r = 0; r < rows; ++r) {
    int32_t s[16] = {};
    for (int64_t ic = 0; ic < in_c; ++ic) {
      for (int64_t kh = 0; kh < kh_count; ++kh) {
        const int16_t* row = img + ic * ic_stride + kh * row_stride;
        const int16_t* wg = w + r * w_stride + (ic * k + kh) * kceil;
        for (int64_t p = 0; p < kw_pairs; ++p) {
          const int32_t w0 = wg[2 * p], w1 = wg[2 * p + 1];
          const int16_t* x = row + 2 * p;
          for (int64_t b = 0; b < 16; ++b) s[b] += w0 * x[b] + w1 * x[b + 1];
        }
      }
    }
    for (int64_t b = 0; b < 16; ++b) acc[r * 16 + b] = s[b];
  }
}

/// One element of int8_requant_row — mirrors FixedPointMultiplier::apply
/// (which this header cannot include without inverting the layering) plus
/// the saturate-and-zero-point step every int8 kernel shares.
inline int8_t requant_one(int32_t acc, int32_t multiplier, int shift, int32_t out_zero) {
  int32_t scaled = 0;
  if (multiplier != 0) {
    const int total = 31 - shift;
    const int64_t p = static_cast<int64_t>(acc) * multiplier;
    scaled = total == 0
                 ? static_cast<int32_t>(p)
                 : static_cast<int32_t>((p + (int64_t{1} << (total - 1))) >> total);
  }
  const int32_t q = scaled + out_zero;
  return static_cast<int8_t>(q < -128 ? -128 : (q > 127 ? 127 : q));
}

inline void int8_requant_row(const int32_t* acc, int64_t n, int32_t bias,
                             int32_t multiplier, int shift, int32_t out_zero,
                             const int8_t* lut, int8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const int8_t q = requant_one(acc[i] + bias, multiplier, shift, out_zero);
    out[i] = lut == nullptr ? q : lut[static_cast<int32_t>(q) + 128];
  }
}

inline void lut_stream(const int8_t* in, const int8_t* lut, int64_t n, int8_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = lut[static_cast<int>(in[i]) + 128];
}

inline void interleave2(const int8_t* a, const int8_t* b, int64_t n, int8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[2 * i] = a[i];
    out[2 * i + 1] = b[i];
  }
}

}  // namespace sesr::simd::ref
