// Scalar tier: the reference implementations from ref_kernels.h, exported as
// a complete dispatch table. Always available on every architecture; the
// other tiers overlay it.
#include "tensor/simd/kernels.h"
#include "tensor/simd/ref_kernels.h"

namespace sesr::simd::detail {

const KernelDispatch* scalar_ops() {
  static const KernelDispatch ops = [] {
    KernelDispatch d;
    d.variant = KernelVariant::kScalar;
    d.conv_block16 = &ref::conv_block16;
    d.gemm_block = &ref::gemm_block;
    d.saxpy = &ref::saxpy;
    d.int8_dot4 = &ref::int8_dot4;
    d.int8_dot = &ref::int8_dot;
    d.int8_conv_cols16 = &ref::int8_conv_cols16;
    d.int8_requant_row = &ref::int8_requant_row;
    d.lut_stream = &ref::lut_stream;
    d.interleave2 = &ref::interleave2;
    return d;
  }();
  return &ops;
}

}  // namespace sesr::simd::detail
