// AVX512_VBMI lut_stream: the whole 256-entry int8->int8 table lives in four
// zmm registers and `vpermi2b` resolves 64 lookups per instruction — the
// requant/activation LUT streams become pure register traffic. Isolated in
// its own TU with its own -m flags so VBMI instructions cannot leak (via
// autovectorisation) into the plain AVX-512 tier, which must run on
// VNNI-but-not-VBMI parts; dispatch.cpp installs this pointer only when
// cpuid reports VBMI.
#include "tensor/simd/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VBMI__)

#include <immintrin.h>

namespace sesr::simd::detail {
namespace {

void lut_stream(const int8_t* in, const int8_t* lut, int64_t n, int8_t* out) {
  // lut is indexed by (int)in[i] + 128, i.e. by the input byte xor 0x80.
  // vpermi2b selects by the low 7 bits of the index; the high bit picks
  // which half-table's result to keep.
  const __m512i lo0 = _mm512_loadu_si512(lut);        // indices   0..63
  const __m512i lo1 = _mm512_loadu_si512(lut + 64);   // indices  64..127
  const __m512i hi0 = _mm512_loadu_si512(lut + 128);  // indices 128..191
  const __m512i hi1 = _mm512_loadu_si512(lut + 192);  // indices 192..255
  const __m512i flip = _mm512_set1_epi8(static_cast<char>(0x80));
  int64_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i u = _mm512_xor_si512(_mm512_loadu_si512(in + i), flip);
    const __m512i lo = _mm512_permutex2var_epi8(lo0, u, lo1);
    const __m512i hi = _mm512_permutex2var_epi8(hi0, u, hi1);
    const __mmask64 use_hi = _mm512_movepi8_mask(u);
    _mm512_storeu_si512(out + i, _mm512_mask_blend_epi8(use_hi, lo, hi));
  }
  if (i < n) {
    const __mmask64 tail = _cvtu64_mask64((~uint64_t{0}) >> (64 - (n - i)));
    const __m512i u = _mm512_xor_si512(_mm512_maskz_loadu_epi8(tail, in + i), flip);
    const __m512i lo = _mm512_permutex2var_epi8(lo0, u, lo1);
    const __m512i hi = _mm512_permutex2var_epi8(hi0, u, hi1);
    const __mmask64 use_hi = _mm512_movepi8_mask(u);
    _mm512_mask_storeu_epi8(out + i, tail, _mm512_mask_blend_epi8(use_hi, lo, hi));
  }
}

}  // namespace

void (*vbmi_lut_stream())(const int8_t*, const int8_t*, int64_t, int8_t*) {
  return &lut_stream;
}

}  // namespace sesr::simd::detail

#else  // no VBMI in this build

namespace sesr::simd::detail {
void (*vbmi_lut_stream())(const int8_t*, const int8_t*, int64_t, int8_t*) {
  return nullptr;
}
}  // namespace sesr::simd::detail

#endif
