// AVX-512 tier (F+BW+VL+DQ+VNNI). Same exactness rules as the AVX2 TU:
// fp32 is separate VMULPS/VADDPS on zmm (-ffp-contract=off, no -mfma-style
// contraction), one output element per lane, taps ascending — bit-identical
// to scalar. int8 dots use VNNI `vpdpwssd` (int16 pairwise multiply-add into
// int32 accumulators, exact), not `vpdpbusd`: the conv feeds zero-point-
// subtracted inputs in [-255, 255], which overflow vpdpbusd's u8/s8 operands,
// so the int16 form is the widest exact instruction available here.
//
// Entries this TU leaves null (lut_stream, interleave2) inherit the AVX2
// tier's implementations via the overlay in dispatch.cpp.
#include "tensor/simd/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512DQ__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include <cstring>

#include "tensor/simd/ref_kernels.h"

namespace sesr::simd::detail {
namespace {

template <int R>
inline void conv_tile16(const float* w, int64_t w_stride, const float* slab,
                        int64_t col_rows, int64_t slab_stride, float* dst,
                        int64_t dst_stride) {
  __m512 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  for (int64_t p = 0; p < col_rows; ++p) {
    const __m512 s = _mm512_loadu_ps(slab + p * slab_stride);
    for (int r = 0; r < R; ++r) {
      const __m512 wv = _mm512_set1_ps(w[r * w_stride + p]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(wv, s));
    }
  }
  for (int r = 0; r < R; ++r) _mm512_storeu_ps(dst + r * dst_stride, acc[r]);
}

void conv_block16(const float* w, int64_t w_stride, int rows, const float* slab,
                  int64_t col_rows, int64_t slab_stride, float* dst,
                  int64_t dst_stride) {
  switch (rows) {
    case 4: conv_tile16<4>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    case 3: conv_tile16<3>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    case 2: conv_tile16<2>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
    default: conv_tile16<1>(w, w_stride, slab, col_rows, slab_stride, dst, dst_stride); break;
  }
}

// R C-rows x 32 columns (2 zmm per row) held across the K sweep; each B row
// pair is reused by all R broadcasts.
template <int R>
inline void gemm_tile_32(const float* a, int64_t lda, const float* b, int64_t ldb,
                         int64_t kb, float* c, int64_t ldc) {
  __m512 lo[R], hi[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = _mm512_loadu_ps(c + r * ldc);
    hi[r] = _mm512_loadu_ps(c + r * ldc + 16);
  }
  for (int64_t p = 0; p < kb; ++p) {
    const float* brow = b + p * ldb;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    for (int r = 0; r < R; ++r) {
      const __m512 av = _mm512_set1_ps(a[r * lda + p]);
      lo[r] = _mm512_add_ps(lo[r], _mm512_mul_ps(av, b0));
      hi[r] = _mm512_add_ps(hi[r], _mm512_mul_ps(av, b1));
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm512_storeu_ps(c + r * ldc, lo[r]);
    _mm512_storeu_ps(c + r * ldc + 16, hi[r]);
  }
}

void gemm_block(int64_t mb, int64_t nb, int64_t kb, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc) {
  const int64_t nb32 = nb & ~int64_t{31};
  for (int64_t j0 = 0; j0 < nb32; j0 += 32) {
    const float* bj = b + j0;
    int64_t i = 0;
    for (; i + 4 <= mb; i += 4)
      gemm_tile_32<4>(a + i * lda, lda, bj, ldb, kb, c + i * ldc + j0, ldc);
    switch (mb - i) {
      case 3: gemm_tile_32<3>(a + i * lda, lda, bj, ldb, kb, c + i * ldc + j0, ldc); break;
      case 2: gemm_tile_32<2>(a + i * lda, lda, bj, ldb, kb, c + i * ldc + j0, ldc); break;
      case 1: gemm_tile_32<1>(a + i * lda, lda, bj, ldb, kb, c + i * ldc + j0, ldc); break;
      default: break;
    }
  }
  if (nb32 < nb)
    ref::gemm_block(mb, nb - nb32, kb, a, lda, b + nb32, ldb, c + nb32, ldc);
}

void saxpy(float a, const float* x, int64_t n, float* y) {
  const __m512 av = _mm512_set1_ps(a);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16)
    _mm512_storeu_ps(y + j, _mm512_add_ps(_mm512_loadu_ps(y + j),
                                          _mm512_mul_ps(av, _mm512_loadu_ps(x + j))));
  ref::saxpy(a, x + j, n - j, y + j);
}

inline int32_t hsum_epi32_256(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Not _mm512_reduce_add_epi32: GCC 12's implementation goes through
// _mm256_undefined_si256 and trips -Wuninitialized under -Werror (GCC
// PR 105593). shuffle_i64x2 swaps the 256-bit halves without touching any
// "undefined" intrinsic.
inline int32_t hsum_epi32_512(__m512i v) {
  const __m256i lo = _mm512_castsi512_si256(v);
  const __m256i hi = _mm512_castsi512_si256(_mm512_shuffle_i64x2(v, v, _MM_SHUFFLE(0, 0, 3, 2)));
  return hsum_epi32_256(_mm256_add_epi32(lo, hi));
}

int32_t int8_dot(const int16_t* w, const int16_t* patch, int64_t count) {
  __m512i acc = _mm512_setzero_si512();
  int64_t i = 0;
  for (; i + 32 <= count; i += 32) {
    const __m512i wv = _mm512_loadu_si512(w + i);
    const __m512i pv = _mm512_loadu_si512(patch + i);
    acc = _mm512_dpwssd_epi32(acc, wv, pv);
  }
  int32_t sum = hsum_epi32_512(acc);
  if (i + 16 <= count) {
    const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i pv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(patch + i));
    sum += hsum_epi32_256(_mm256_dpwssd_epi32(_mm256_setzero_si256(), wv, pv));
    i += 16;
  }
  if (i < count) sum += ref::int8_dot(w + i, patch + i, count - i);
  return sum;
}

void int8_dot4(const int16_t* w0, const int16_t* w1, const int16_t* w2,
               const int16_t* w3, const int16_t* patch, int64_t count, int32_t* acc) {
  __m512i a0 = _mm512_setzero_si512(), a1 = a0, a2 = a0, a3 = a0;
  int64_t i = 0;
  for (; i + 32 <= count; i += 32) {
    const __m512i pv = _mm512_loadu_si512(patch + i);
    a0 = _mm512_dpwssd_epi32(a0, _mm512_loadu_si512(w0 + i), pv);
    a1 = _mm512_dpwssd_epi32(a1, _mm512_loadu_si512(w1 + i), pv);
    a2 = _mm512_dpwssd_epi32(a2, _mm512_loadu_si512(w2 + i), pv);
    a3 = _mm512_dpwssd_epi32(a3, _mm512_loadu_si512(w3 + i), pv);
  }
  acc[0] = hsum_epi32_512(a0);
  acc[1] = hsum_epi32_512(a1);
  acc[2] = hsum_epi32_512(a2);
  acc[3] = hsum_epi32_512(a3);
  if (i < count) {
    int32_t tail[4];
    ref::int8_dot4(w0 + i, w1 + i, w2 + i, w3 + i, patch + i, count - i, tail);
    for (int t = 0; t < 4; ++t) acc[t] += tail[t];
  }
}

// Pair-expansion index for the direct conv block: from a 32-element int16
// load [x0..x31], build [x0,x1, x1,x2, ..., x15,x16] — the (col, col+1)
// operand pairs vpdpwssd consumes. Only elements 0..16 are used, but the
// 64-byte load touches the full window (kPatchSlack keeps it in-bounds).
inline __m512i pair_index() {
  alignas(64) static constexpr int16_t idx[32] = {
      0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8,
      8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16};
  return _mm512_load_si512(idx);
}

template <int R>
inline void conv_cols16_tile(const int16_t* w, int64_t w_stride, const int16_t* img,
                             int64_t ic_stride, int64_t row_stride, int64_t in_c,
                             int64_t k, int64_t kh_count, int64_t kw_pairs,
                             int32_t* acc) {
  const int64_t kceil = 2 * kw_pairs;
  const __m512i idx = pair_index();
  __m512i a[R];
  for (int r = 0; r < R; ++r) a[r] = _mm512_setzero_si512();
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int64_t kh = 0; kh < kh_count; ++kh) {
      const int16_t* row = img + ic * ic_stride + kh * row_stride;
      const int16_t* wg = w + (ic * k + kh) * kceil;
      for (int64_t p = 0; p < kw_pairs; ++p) {
        const __m512i src = _mm512_loadu_si512(row + 2 * p);
        const __m512i pairs = _mm512_permutexvar_epi16(idx, src);
        for (int r = 0; r < R; ++r) {
          int32_t wpair;
          std::memcpy(&wpair, wg + r * w_stride + 2 * p, sizeof(wpair));
          a[r] = _mm512_dpwssd_epi32(a[r], pairs, _mm512_set1_epi32(wpair));
        }
      }
    }
  }
  for (int r = 0; r < R; ++r)
    _mm512_storeu_si512(acc + r * 16, a[r]);
}

void int8_conv_cols16(const int16_t* w, int64_t w_stride, int rows, const int16_t* img,
                      int64_t ic_stride, int64_t row_stride, int64_t in_c, int64_t k,
                      int64_t kh_count, int64_t kw_pairs, int32_t* acc) {
  switch (rows) {
    case 4: conv_cols16_tile<4>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    case 3: conv_cols16_tile<3>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    case 2: conv_cols16_tile<2>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
    default: conv_cols16_tile<1>(w, w_stride, img, ic_stride, row_stride, in_c, k, kh_count, kw_pairs, acc); break;
  }
}

void int8_requant_row(const int32_t* acc, int64_t n, int32_t bias, int32_t multiplier,
                      int shift, int32_t out_zero, const int8_t* lut, int8_t* out) {
  const int total = 31 - shift;
  if (multiplier == 0 || total == 0) {
    ref::int8_requant_row(acc, n, bias, multiplier, shift, out_zero, lut, out);
    return;
  }
  // 64-bit lanes reproduce apply() exactly: p = x*m (|p| < 2^62), plus
  // nudge, arithmetic shift right by total (VPSRAQ), then truncate to the
  // low 32 bits — _mm512_cvtepi64_epi32 truncates exactly like the scalar
  // static_cast<int32_t>, including on shifted values outside int32 range.
  const __m512i nudge = _mm512_set1_epi64(int64_t{1} << (total - 1));
  const __m512i mul = _mm512_set1_epi64(multiplier);
  const __m128i count = _mm_cvtsi32_si128(total);
  const __m512i zerov = _mm512_set1_epi32(out_zero);
  const __m256i biasv = _mm256_set1_epi32(bias);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a_lo = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)), biasv);
    const __m256i a_hi = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 8)), biasv);
    const __m512i p_lo = _mm512_sra_epi64(
        _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(a_lo), mul), nudge),
        count);
    const __m512i p_hi = _mm512_sra_epi64(
        _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(a_hi), mul), nudge),
        count);
    const __m512i scaled = _mm512_inserti64x4(
        _mm512_castsi256_si512(_mm512_cvtepi64_epi32(p_lo)), _mm512_cvtepi64_epi32(p_hi),
        1);
    const __m512i q = _mm512_add_epi32(scaled, zerov);
    // Saturating int32 -> int8 narrow == saturate_int8 per element.
    const __m128i bytes = _mm512_cvtsepi32_epi8(q);
    if (lut == nullptr) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), bytes);
    } else {
      alignas(16) int8_t tmp[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), bytes);
      for (int t = 0; t < 16; ++t) out[i + t] = lut[static_cast<int32_t>(tmp[t]) + 128];
    }
  }
  if (i < n)
    ref::int8_requant_row(acc + i, n - i, bias, multiplier, shift, out_zero, lut, out + i);
}

}  // namespace

const KernelDispatch* avx512_ops() {
  static const KernelDispatch ops = [] {
    KernelDispatch d;
    d.variant = KernelVariant::kAvx512Vnni;
    d.conv_block16 = &conv_block16;
    d.gemm_block = &gemm_block;
    d.saxpy = &saxpy;
    d.int8_dot4 = &int8_dot4;
    d.int8_dot = &int8_dot;
    d.int8_conv_cols16 = &int8_conv_cols16;
    d.int8_requant_row = &int8_requant_row;
    d.lut_stream = nullptr;    // VBMI TU, spliced in when the CPU has it
    d.interleave2 = nullptr;   // inherits the AVX2 unpack path
    return d;
  }();
  return &ops;
}

}  // namespace sesr::simd::detail

#else  // missing AVX-512 core + VNNI macros

namespace sesr::simd::detail {
const KernelDispatch* avx512_ops() { return nullptr; }
}  // namespace sesr::simd::detail

#endif
