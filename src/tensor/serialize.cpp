#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace sesr {
namespace {

constexpr uint32_t kMagic = 0x52534553u;  // "SESR" little-endian
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("load_tensors: truncated file");
  return value;
}

}  // namespace

void save_tensors(const std::string& path, const std::vector<Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensors: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    write_pod(os, static_cast<uint32_t>(t.ndim()));
    for (int i = 0; i < t.ndim(); ++i) write_pod(os, static_cast<int64_t>(t.dim(i)));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_tensors: write failed for " + path);
}

std::vector<Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensors: cannot open " + path);
  if (read_pod<uint32_t>(is) != kMagic) throw std::runtime_error("load_tensors: bad magic in " + path);
  if (read_pod<uint32_t>(is) != kVersion)
    throw std::runtime_error("load_tensors: unsupported version in " + path);
  const uint64_t count = read_pod<uint64_t>(is);
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t rank = read_pod<uint32_t>(is);
    if (rank > 8) throw std::runtime_error("load_tensors: implausible rank");
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) dims[d] = read_pod<int64_t>(is);
    Tensor t{Shape(dims)};
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("load_tensors: truncated payload");
    tensors.push_back(std::move(t));
  }
  return tensors;
}

}  // namespace sesr
