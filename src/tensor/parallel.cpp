#include "tensor/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace sesr {

int num_threads() {
  static const int n = [] {
    if (const char* env = std::getenv("SESR_NUM_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return n;
}

namespace {
// Nested parallel_for calls (e.g. GEMM inside a batch-parallel convolution)
// run inline on the calling worker instead of spawning threads recursively.
thread_local bool tl_inside_worker = false;
}  // namespace

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  const int threads = num_threads();
  if (threads == 1 || total < 2 * grain || tl_inside_worker) {
    fn(begin, end);
    return;
  }
  const int64_t max_chunks = std::max<int64_t>(1, total / std::max<int64_t>(1, grain));
  const int64_t n_workers = std::min<int64_t>(threads, max_chunks);
  const int64_t chunk = (total + n_workers - 1) / n_workers;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n_workers));
  for (int64_t w = 0; w < n_workers; ++w) {
    const int64_t lo = begin + w * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&fn, lo, hi] {
      tl_inside_worker = true;
      fn(lo, hi);
      tl_inside_worker = false;
    });
  }
  for (auto& t : workers) t.join();
}

}  // namespace sesr
