#include "tensor/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.h"

namespace sesr {

int num_threads() {
  // SESR_NUM_THREADS through the typed config layer (range-clamped; invalid
  // values fall back to hardware concurrency). Read once: the persistent
  // pool below is sized by the first parallel_for and never resized.
  static const int n = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(core::config_int64("SESR_NUM_THREADS",
                                               hw > 0 ? static_cast<int64_t>(hw) : 1));
  }();
  return n;
}

namespace {

// Nested parallel_for calls (e.g. GEMM inside a batch-parallel convolution)
// run inline on the calling worker instead of re-entering the pool.
thread_local bool tl_inside_worker = false;

// One parallel_for invocation. Lives on the caller's stack for the duration
// of ThreadPool::run; all fields are guarded by the pool mutex.
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  int64_t n_chunks = 0;
  int64_t next = 0;       // next chunk index to hand out
  int64_t executing = 0;  // chunks currently running on some thread
  std::exception_ptr error;
  std::condition_variable done_cv;
};

/// Persistent worker pool. Jobs queue FIFO; each worker repeatedly claims the
/// next chunk of the front job. The submitting thread claims chunks of its
/// own job too, so a job always makes progress even when every worker is
/// occupied by other callers' jobs. The first exception a chunk throws is
/// captured, remaining unclaimed chunks are abandoned, and the exception is
/// rethrown to the submitter once in-flight chunks drain — so the stack Job
/// never outlives a thread that references it.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void run(int64_t begin, int64_t end, int64_t chunk, int64_t n_chunks,
           const std::function<void(int64_t, int64_t)>& fn) {
    Job job;
    job.fn = &fn;
    job.begin = begin;
    job.end = end;
    job.chunk = chunk;
    job.n_chunks = n_chunks;

    std::unique_lock<std::mutex> lock(mutex_);
    jobs_.push_back(&job);
    work_cv_.notify_all();
    // Help with our own job until every chunk is claimed (or one failed).
    for (;;) {
      const int64_t idx = claim(job);
      if (idx < 0) break;
      execute(lock, job, idx);
    }
    job.done_cv.wait(lock, [&] { return drained(job); });
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  // A job is finished when no chunk is running and none will be claimed.
  static bool drained(const Job& job) {
    return job.executing == 0 && (job.error != nullptr || job.next >= job.n_chunks);
  }

  // Claim a chunk of `job`, dequeuing it once no further chunks should run.
  // Returns -1 when there is nothing left to claim. Caller holds mutex_.
  int64_t claim(Job& job) {
    const bool exhausted = job.error != nullptr || job.next >= job.n_chunks;
    const int64_t idx = exhausted ? -1 : job.next++;
    if (job.error != nullptr || job.next >= job.n_chunks) {
      const auto it = std::find(jobs_.begin(), jobs_.end(), &job);
      if (it != jobs_.end()) jobs_.erase(it);
    }
    if (idx >= 0) ++job.executing;
    return idx;
  }

  // Run chunk `idx` with the lock released; on return the lock is re-held,
  // the chunk is accounted for, and any exception is parked on the job.
  void execute(std::unique_lock<std::mutex>& lock, Job& job, int64_t idx) {
    lock.unlock();
    const int64_t lo = job.begin + idx * job.chunk;
    const int64_t hi = std::min(job.end, lo + job.chunk);
    const bool was_inside = tl_inside_worker;
    tl_inside_worker = true;
    std::exception_ptr error;
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      error = std::current_exception();
    }
    tl_inside_worker = was_inside;
    lock.lock();
    if (error && job.error == nullptr) job.error = error;
    --job.executing;
    if (drained(job)) job.done_cv.notify_all();
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      Job& job = *jobs_.front();
      const int64_t idx = claim(job);
      if (idx < 0) continue;  // raced: another thread took the last chunk
      execute(lock, job, idx);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Job*> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

ThreadPool& pool() {
  static ThreadPool p(num_threads());
  return p;
}

}  // namespace

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  const int threads = num_threads();
  if (threads == 1 || total < 2 * grain || tl_inside_worker) {
    fn(begin, end);
    return;
  }
  const int64_t max_chunks = std::max<int64_t>(1, total / std::max<int64_t>(1, grain));
  const int64_t n_workers = std::min<int64_t>(threads, max_chunks);
  const int64_t chunk = (total + n_workers - 1) / n_workers;
  const int64_t n_chunks = (total + chunk - 1) / chunk;
  if (n_chunks <= 1) {
    fn(begin, end);
    return;
  }
  pool().run(begin, end, chunk, n_chunks, fn);
}

}  // namespace sesr
