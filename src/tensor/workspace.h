// Scratch-memory arena for the compiled inference runtime.
//
// Layers executing through runtime::Session need per-call scratch (im2col
// rows, padded line buffers) without touching the allocator on the hot path.
// Workspace is a chunked bump arena: floats() hands out uninitialised spans,
// reset() recycles everything while keeping the chunks, so after the first
// run through a network a session performs zero heap allocations.
//
// Spans are STABLE until reset(): growing the arena appends a new chunk
// instead of reallocating, so earlier spans stay valid within one layer call.
// A Workspace is single-threaded; concurrent inference uses one Workspace per
// runtime::Session. Layers that parallelise internally must carve disjoint
// sub-spans *before* fanning out (see Conv2d::infer_into).
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace sesr {

class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Uninitialised scratch of `numel` floats, valid until the next reset().
  std::span<float> floats(int64_t numel);

  /// Uninitialised scratch of `count` elements of a trivially-copyable type
  /// no more aligned than float (int8/int16/int32 for the integer kernels),
  /// carved from the same arena as floats().
  template <typename T>
  std::span<T> scratch(int64_t count) {
    static_assert(std::is_trivially_copyable_v<T> && alignof(T) <= alignof(float),
                  "Workspace::scratch: T must fit the float arena's alignment");
    const int64_t needed =
        (count * static_cast<int64_t>(sizeof(T)) + static_cast<int64_t>(sizeof(float)) - 1) /
        static_cast<int64_t>(sizeof(float));
    std::span<float> raw = floats(needed);
    return {reinterpret_cast<T*>(raw.data()), static_cast<size_t>(count)};
  }

  /// Invalidate every span handed out so far; retains capacity for reuse.
  void reset();

  /// Total floats held across all chunks (diagnostic).
  [[nodiscard]] int64_t capacity() const;

 private:
  struct Chunk {
    std::vector<float> data;
    int64_t used = 0;
  };

  std::vector<Chunk> chunks_;
  size_t cursor_ = 0;  // first chunk that may still have room
};

}  // namespace sesr
