// Integer serving kernels for the int8 compiled-inference backend.
//
// These are the arithmetic core of the quantised runtime (src/quant builds
// the parameters, src/runtime schedules the calls): NCHW convolution by
// implicit im2col into a patch-major int16 row slab with int32 accumulation,
// depthwise convolution, a fully-connected kernel, fixed-point
// requantisation of int32 accumulators onto the next layer's int8 grid,
// saturating residual adds, pointwise activations on the integer grid, and
// the pure-data-movement pixel ops.
//
// Conventions shared by every kernel:
//  - activations are asymmetric int8 (q = round(x / s) + z, clamped to
//    [-128, 127]); weights are symmetric int8 widened to int16 at pack time
//    so the dot products vectorise as 16x16->32 multiply-accumulates;
//  - the input zero point is subtracted while building patches, so padding
//    taps enter the accumulation as literal 0 and weight rows need no
//    offset-correction term;
//  - biases are int32 on the accumulator grid (scale s_in * s_w[oc]);
//  - accumulators requantise through FixedPointMultiplier — an integer-only
//    round(m * x) — then add the output zero point and saturate to int8.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/workspace.h"

namespace sesr::simd {
struct KernelDispatch;
}  // namespace sesr::simd

namespace sesr {

/// Rounding convention of the integer runtime: half up, i.e. floor(v + 0.5).
/// Branch-free and a single truncating convert on the double path (the bias
/// makes the operand positive, so truncation equals floor), and a plain
/// arithmetic shift on the fixed-point path — unlike round-half-away, which
/// costs a data-dependent branch (or a libm call) per element. The fake-quant
/// gold model uses the same function, so kernel and reference round
/// identically by construction. Valid for |v| < 2^51.
[[nodiscard]] inline int32_t round_half_up(double v) {
  constexpr double kBias = 4294967296.0;  // 2^32
  return static_cast<int32_t>(static_cast<int64_t>(v + 0.5 + kBias) - (int64_t{1} << 32));
}

/// A non-negative real multiplier m encoded as multiplier * 2^(shift - 31)
/// with multiplier in [2^30, 2^31) — fixed-point requantisation in the
/// gemmlowp/TFLite style. apply(x) computes round(m * x) on the runtime's
/// half-up convention using one 32x32 integer multiply and a rounding shift.
struct FixedPointMultiplier {
  int32_t multiplier = 0;  ///< 0 encodes m == 0 (apply() returns 0)
  int shift = 0;           ///< exponent: m = multiplier * 2^(shift - 31)

  /// Encode a finite multiplier with m >= 0 and m < 2^31. Throws otherwise.
  static FixedPointMultiplier from_double(double m);

  /// round_half_up(m * x) in integer arithmetic: (p + 2^(t-1)) >> t is
  /// exactly floor(m * x + 0.5) (C++20 arithmetic right shift).
  [[nodiscard]] int32_t apply(int32_t x) const {
    if (multiplier == 0) return 0;
    const int total = 31 - shift;  // in [0, 62] by construction
    const int64_t p = static_cast<int64_t>(x) * multiplier;
    if (total == 0) return static_cast<int32_t>(p);
    const int64_t nudge = int64_t{1} << (total - 1);
    return static_cast<int32_t>((p + nudge) >> total);
  }

  /// The encoded real value (diagnostics / tests).
  [[nodiscard]] double as_double() const;
};

/// Saturate an int32 to the int8 range.
[[nodiscard]] inline int8_t saturate_int8(int32_t v) {
  return static_cast<int8_t>(v < -128 ? -128 : (v > 127 ? 127 : v));
}

// ---- convolution -----------------------------------------------------------

/// Packed row stride, in int16 elements, shared by conv weight rows and the
/// kernel's internal patch buffers: `taps` rounded up so every row spans
/// whole 32-byte groups — the 256-bit dot kernels in tensor/simd/ run
/// tail-free over the full stride — and carries at least 4 slack slots for
/// 8-byte group copies. Weight slack must be zero (patch slack may hold
/// garbage — the zero weights null it out of the accumulation).
[[nodiscard]] inline int64_t int8_packed_stride(int64_t taps) {
  return (taps + 4 + 15) & ~int64_t{15};
}

/// Weight-pair count per kernel row in the kw-padded layout below: kernel
/// width rounded up to an even tap count so pmaddwd / vpdpwssd consume whole
/// (kw, kw+1) pairs.
[[nodiscard]] inline int64_t int8_kw_pairs(int64_t kernel) { return (kernel + 1) / 2; }

/// Padded-row slack of the widened image below, in int16 slots: sized for the
/// patch builder's 8-byte group overhang AND the widest block-kernel load (the
/// AVX-512 / JIT 64-byte pair loads touch up to 15 slots past the last kernel
/// column of the rightmost output block). Every padded row is
/// `w + 2 * pad + kInt8ConvPatchSlack` int16 wide, slack zero-filled.
inline constexpr int64_t kInt8ConvPatchSlack = 16;

/// Widen one NCHW int8 image to the physically padded, zero-point-corrected
/// int16 copy the direct conv kernels read: prow[ic][ih][x] =
/// q_in(ic, ih, x - pad) - z_in, 0 in the horizontal padding and slack.
/// `prow_w` must be w + 2 * pad + kInt8ConvPatchSlack; `padded` holds
/// in_c * h * prow_w elements. (Exported for the JIT tier's conv driver,
/// which shares this exact layout with int8_conv2d_nchw.)
void int8_widen_padded_image(const int8_t* in_img, int64_t in_c, int64_t h, int64_t w,
                             int64_t pad, int32_t in_zero, int64_t prow_w,
                             int16_t* padded);

struct Int8ConvSpec {
  int64_t in_c = 0, out_c = 0, kernel = 1, stride = 1, pad = 0;
  int32_t in_zero = 0, out_zero = 0;
  /// [out_c][int8_packed_stride(in_c * k * k)]: widened int8 weight rows,
  /// zero-padded to the packed stride.
  const int16_t* weights = nullptr;
  /// Optional second packing for the stride-1 direct-conv block kernel
  /// (simd::KernelDispatch::int8_conv_cols16): kernel rows padded to an even
  /// width, wkw[oc][(ic*k + kh) * 2*int8_kw_pairs(k) + kw] with zeros in the
  /// padded kw slots. Null = use the im2col slab path (always taken for
  /// strided convs and outputs narrower than one 16-column block).
  const int16_t* weights_kw = nullptr;
  const int32_t* bias = nullptr;  ///< [out_c] on the accumulator grid; may be null
  const FixedPointMultiplier* requant = nullptr;  ///< [out_c]: s_in * s_w[oc] / s_out
  /// Fused pointwise activation applied in the write-back loop: per-channel
  /// 256-entry tables mapping the conv's own output grid onto the
  /// activation's (built by int8_activation_build_lut, so fusion composes the
  /// standalone kernels bit-exactly). Null = no fusion; act_lut_channels is 1
  /// (one shared table) or out_c (per-channel PReLU slopes).
  const int8_t* act_lut = nullptr;
  int64_t act_lut_channels = 0;
};

/// NCHW int8 convolution. Work fans out over (image, output row) pairs via
/// parallel_for, with one patch-major int16 slab per parallel chunk carved
/// from `workspace` (mirroring the float serving conv's slab discipline).
/// `dispatch` selects the SIMD kernel tier (null = the process-active tier);
/// every tier is bit-exact — integer accumulation is associative. Kernels
/// below that take the same parameter follow the same convention.
void int8_conv2d_nchw(const int8_t* in, int64_t n, int64_t h, int64_t w,
                      int64_t out_h, int64_t out_w, const Int8ConvSpec& spec,
                      int8_t* out, Workspace& workspace,
                      const simd::KernelDispatch* dispatch = nullptr);

/// Integer multiply-accumulates one invocation performs for a single sample
/// (the number the hw cost model validates against).
[[nodiscard]] int64_t int8_conv2d_macs(const Int8ConvSpec& spec, int64_t out_h, int64_t out_w);

// ---- depthwise convolution -------------------------------------------------

struct Int8DepthwiseSpec {
  int64_t channels = 0, kernel = 1, stride = 1, pad = 0;
  int32_t in_zero = 0, out_zero = 0;
  const int16_t* weights = nullptr;  ///< [channels][k * k]
  const int32_t* bias = nullptr;     ///< [channels]; may be null
  const FixedPointMultiplier* requant = nullptr;  ///< [channels]
};

void int8_depthwise_nchw(const int8_t* in, int64_t n, int64_t h, int64_t w,
                         int64_t out_h, int64_t out_w, const Int8DepthwiseSpec& spec,
                         int8_t* out);

[[nodiscard]] int64_t int8_depthwise_macs(const Int8DepthwiseSpec& spec, int64_t out_h,
                                          int64_t out_w);

// ---- fully connected -------------------------------------------------------

struct Int8LinearSpec {
  int64_t in_features = 0, out_features = 0;
  int32_t in_zero = 0, out_zero = 0;
  const int16_t* weights = nullptr;  ///< [out_features][in_features]
  const int32_t* bias = nullptr;     ///< [out_features]; may be null
  const FixedPointMultiplier* requant = nullptr;  ///< [out_features]
};

void int8_linear(const int8_t* in, int64_t batch, const Int8LinearSpec& spec, int8_t* out,
                 const simd::KernelDispatch* dispatch = nullptr);

[[nodiscard]] int64_t int8_linear_macs(const Int8LinearSpec& spec);

// ---- elementwise -----------------------------------------------------------

/// Saturating residual add: out = sat(round(ma * (a - za) + mb * (b - zb)) +
/// z_out). ma/mb are the operand-to-output scale ratios (s_a / s_out etc.);
/// `out` may alias `a` or `b`.
void int8_add(const int8_t* a, int32_t za, double ma, const int8_t* b, int32_t zb,
              double mb, int32_t z_out, int64_t numel, int8_t* out);

/// Tabulated form of int8_add. The add is a pure function of the two input
/// bytes once the grids are fixed, so a 256x256 table enumerates it exactly:
/// lut[(a + 128) * 256 + (b + 128)] = int8_add result for that byte pair.
/// The runtime builds the table once at lowering time (int8_add_build_lut
/// runs the int8_add formula per entry, so the stream is bit-identical to
/// the double-math loop) and replays it per execute, swapping two multiplies
/// and a rounding convert per element for one L2-resident byte load.
void int8_add_build_lut(int32_t za, double ma, int32_t zb, double mb, int32_t z_out,
                        int8_t lut[256 * 256]);

void int8_add_lut(const int8_t* a, const int8_t* b, const int8_t* lut, int64_t numel,
                  int8_t* out);

/// Pure rescale onto another grid: out = sat(round(m * (in - z_in)) + z_out).
/// Implements scale steps, concat source alignment and grid changes; `out`
/// may alias `in` (exactly — partial overlap is not supported). Internally a
/// 256-entry LUT build plus a dispatch-tier stream: the map is a pure
/// function of the input byte, so the table is bit-exact per construction.
void int8_rescale(const int8_t* in, int32_t z_in, double m, int32_t z_out, int64_t numel,
                  int8_t* out, const simd::KernelDispatch* dispatch = nullptr);

/// The 256-entry table int8_rescale streams, exposed so callers that replay
/// the rescale many times (the JIT tier bakes it into a patched stencil) can
/// build it once with the identical formula.
void int8_rescale_build_lut(int32_t z_in, double m, int32_t z_out, int8_t lut[256]);

/// Pointwise activation on the integer grid. For q >= z_in the positive
/// multiplier applies (s_in / s_out); below it the (optionally per-channel)
/// negative multiplier (slope * s_in / s_out — 0 for ReLU). `out_cap` caps
/// the result in output units (ReLU6); leave at 127 otherwise.
struct Int8ActivationSpec {
  int32_t in_zero = 0, out_zero = 0;
  double pos = 1.0;
  double neg = 0.0;
  const double* neg_per_channel = nullptr;  ///< [channels]; overrides `neg`
  int32_t out_cap = 127;
};

void int8_activation_nchw(const int8_t* in, int64_t n, int64_t channels, int64_t plane,
                          const Int8ActivationSpec& spec, int8_t* out,
                          const simd::KernelDispatch* dispatch = nullptr);

/// Build the 256-entry int8 -> int8 table int8_activation_nchw streams, for
/// negative-side multiplier `neg` (ignores spec.neg / spec.neg_per_channel).
/// Shared with the runtime's conv -> activation fusion pass so a fused conv's
/// write-back maps through the exact same table as the standalone kernel.
void int8_activation_build_lut(const Int8ActivationSpec& spec, double neg, int8_t lut[256]);

// ---- pixel ops (pure data movement; grid unchanged) ------------------------

/// NCHW depth-to-space, matching nn::DepthToSpace::infer_into element order.
/// The SESR-common block == 2 case runs through the dispatch tier's byte
/// interleave; other block sizes stay scalar.
void int8_depth_to_space(const int8_t* in, int64_t n, int64_t c_in, int64_t h, int64_t w,
                         int64_t block, int8_t* out,
                         const simd::KernelDispatch* dispatch = nullptr);

/// Channel tiling, matching nn::TileChannels::infer_into element order.
void int8_tile_channels(const int8_t* in, int64_t n, int64_t c, int64_t plane,
                        int64_t times, int8_t* out);

}  // namespace sesr
