// Dense float32 tensor with value semantics.
//
// This is the single numeric container shared by every layer, model, attack
// and preprocessing stage in the library. Data is stored contiguously in
// row-major order; image batches use NCHW. Copies are deep (value semantics,
// per C++ Core Guidelines "regular type" advice); moves are O(1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace sesr {

/// Dense, contiguous, row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0).
  Tensor() : shape_({}), data_(1, 0.0f) {}

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)), data_(static_cast<size_t>(shape_.numel()), value) {}

  /// Tensor adopting existing data; `data.size()` must equal `shape.numel()`.
  Tensor(Shape shape, std::vector<float> data);

  // ---- factories -----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  // ---- shape ---------------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  [[nodiscard]] int ndim() const { return shape_.ndim(); }
  /// Extent of dimension `i` (negative counts from the back).
  [[nodiscard]] int64_t dim(int i) const { return shape_[i]; }

  /// Same data, new shape; `new_shape.numel()` must equal numel().
  [[nodiscard]] Tensor reshaped(Shape new_shape) const&;
  [[nodiscard]] Tensor reshaped(Shape new_shape) &&;

  // ---- element access ------------------------------------------------------

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// NCHW element access (rank-4 tensors). Bounds are the caller's contract;
  /// checked in debug builds via assert.
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  [[nodiscard]] float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // ---- elementwise mutation (in place; return *this for chaining) ----------

  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);        ///< this += other (same shape)
  Tensor& sub_(const Tensor& other);        ///< this -= other (same shape)
  Tensor& mul_(const Tensor& other);        ///< this *= other, elementwise
  Tensor& add_scalar(float s);
  Tensor& mul_scalar(float s);
  Tensor& axpy_(float alpha, const Tensor& x);  ///< this += alpha * x
  Tensor& clamp_(float lo, float hi);
  /// Elementwise sign (-1, 0, +1), in place.
  Tensor& sign_();

  // ---- elementwise producers -----------------------------------------------

  [[nodiscard]] Tensor operator+(const Tensor& other) const;
  [[nodiscard]] Tensor operator-(const Tensor& other) const;
  [[nodiscard]] Tensor operator*(const Tensor& other) const;

  // ---- reductions ----------------------------------------------------------

  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  /// Maximum absolute elementwise difference to `other` (same shape).
  [[nodiscard]] float max_abs_diff(const Tensor& other) const;
  /// Euclidean norm of the flattened tensor.
  [[nodiscard]] float l2_norm() const;
  /// Index of the maximum element in the flattened tensor.
  [[nodiscard]] int64_t argmax() const;

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace sesr
