// Dense float32 tensor with value semantics.
//
// This is the single numeric container shared by every layer, model, attack
// and preprocessing stage in the library. Data is stored contiguously in
// row-major order; image batches use NCHW. Copies are deep (value semantics,
// per C++ Core Guidelines "regular type" advice); moves are O(1).
//
// Borrowed storage: Tensor::view wraps caller-owned memory (the compiled
// runtime's arena-planned activation buffers) in the same API without
// allocating. A view reads and writes the external storage in place; copying
// a view deep-copies into a fresh owning tensor, so value semantics are
// preserved everywhere else.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace sesr {

/// Dense, contiguous, row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0).
  Tensor() : shape_({}), storage_(1, 0.0f) { attach(); }

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), storage_(static_cast<size_t>(shape_.numel()), 0.0f) {
    attach();
  }

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)), storage_(static_cast<size_t>(shape_.numel()), value) {
    attach();
  }

  /// Tensor adopting existing data; `data.size()` must equal `shape.numel()`.
  Tensor(Shape shape, std::vector<float> data);

  /// Non-owning view over `shape.numel()` floats of caller-owned storage,
  /// which must stay alive (and fixed) for the view's lifetime. Used by
  /// runtime::Session to expose arena-planned activation buffers through the
  /// layer API without copies.
  static Tensor view(Shape shape, float* data);

  Tensor(const Tensor& other);                 ///< deep copy (views copy into owners)
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  // ---- factories -----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  // ---- shape ---------------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int64_t numel() const { return static_cast<int64_t>(size_); }
  [[nodiscard]] int ndim() const { return shape_.ndim(); }
  /// Extent of dimension `i` (negative counts from the back).
  [[nodiscard]] int64_t dim(int i) const { return shape_[i]; }

  /// Same data, new shape; `new_shape.numel()` must equal numel().
  [[nodiscard]] Tensor reshaped(Shape new_shape) const&;
  [[nodiscard]] Tensor reshaped(Shape new_shape) &&;

  // ---- element access ------------------------------------------------------

  [[nodiscard]] float* data() { return data_; }
  [[nodiscard]] const float* data() const { return data_; }
  [[nodiscard]] std::span<float> flat() { return {data_, size_}; }
  [[nodiscard]] std::span<const float> flat() const { return {data_, size_}; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// NCHW element access (rank-4 tensors). Bounds are the caller's contract;
  /// checked in debug builds via assert.
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  [[nodiscard]] float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // ---- elementwise mutation (in place; return *this for chaining) ----------

  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);        ///< this += other (same shape)
  Tensor& sub_(const Tensor& other);        ///< this -= other (same shape)
  Tensor& mul_(const Tensor& other);        ///< this *= other, elementwise
  Tensor& add_scalar(float s);
  Tensor& mul_scalar(float s);
  Tensor& axpy_(float alpha, const Tensor& x);  ///< this += alpha * x
  Tensor& clamp_(float lo, float hi);
  /// Elementwise sign (-1, 0, +1), in place.
  Tensor& sign_();

  // ---- elementwise producers -----------------------------------------------

  [[nodiscard]] Tensor operator+(const Tensor& other) const;
  [[nodiscard]] Tensor operator-(const Tensor& other) const;
  [[nodiscard]] Tensor operator*(const Tensor& other) const;

  // ---- reductions ----------------------------------------------------------

  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  /// Maximum absolute elementwise difference to `other` (same shape).
  [[nodiscard]] float max_abs_diff(const Tensor& other) const;
  /// Euclidean norm of the flattened tensor.
  [[nodiscard]] float l2_norm() const;
  /// Index of the maximum element in the flattened tensor.
  [[nodiscard]] int64_t argmax() const;

 private:
  struct ViewTag {};
  Tensor(ViewTag, Shape shape, float* data);

  void attach() {
    data_ = storage_.data();
    size_ = storage_.size();
  }
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> storage_;  ///< owning storage; empty for views
  float* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sesr
