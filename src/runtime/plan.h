// Compiled inference plan: the serving-side twin of nn::Module::forward.
//
// InferencePlan::compile flattens a module tree (via Module::compile_inference
// and the trace() shape machinery) into a linear program over shape-fixed
// activation buffers: layer steps executed through Module::infer_into plus
// the elementwise glue (residual adds, scales, channel concat) composites
// emit. A plan is compiled once per (model, batched input shape), is
// immutable afterwards, and is shared by any number of runtime::Sessions —
// the paper's collapsed SESR networks are deployed exactly this way, as a
// fixed execution schedule rather than a trainable graph.
//
// Lifetime: the plan stores non-owning pointers into the compiled module; the
// module must outlive every plan (and session) compiled from it.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"

namespace sesr::runtime {

/// One step of a compiled program. Buffer ids index InferencePlan's buffer
/// table; id 0 is the plan input (read-only, aliased to the caller's tensor).
struct PlanStep {
  enum class Kind {
    kLayer,   ///< buffers[output] = layer->infer_into(buffers[input]); in
              ///< place when output == input (pointwise layers only)
    kAdd,     ///< buffers[output] += buffers[input]
    kScale,   ///< buffers[output] *= alpha
    kConcat,  ///< buffers[output] = channel-concat of buffers[sources]
  };

  Kind kind = Kind::kLayer;
  const nn::Module* layer = nullptr;
  int input = -1;
  int output = -1;
  float alpha = 1.0f;
  std::vector<int> sources;
};

class InferencePlan {
 public:
  /// Compile `module` for a fixed batched NCHW input shape. Throws
  /// std::invalid_argument when the module (or a child) does not support
  /// compiled inference or the shape does not trace. `module` must outlive
  /// the returned plan.
  static std::shared_ptr<const InferencePlan> compile(const nn::Module& module,
                                                      const Shape& input);

  [[nodiscard]] const Shape& input_shape() const { return buffer_shapes_.front(); }
  [[nodiscard]] const Shape& output_shape() const {
    return buffer_shapes_[static_cast<size_t>(output_)];
  }
  [[nodiscard]] int output_buffer() const { return output_; }
  [[nodiscard]] const std::vector<PlanStep>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<Shape>& buffer_shapes() const { return buffer_shapes_; }

  /// Total floats a session preallocates for intermediate activations.
  [[nodiscard]] int64_t activation_floats() const;

 private:
  friend class PlanBuilder;
  InferencePlan() = default;

  std::vector<PlanStep> steps_;
  std::vector<Shape> buffer_shapes_;
  int output_ = 0;
};

}  // namespace sesr::runtime
