// Compiled inference plan: the serving-side twin of nn::Module::forward.
//
// InferencePlan::compile flattens a module tree (via Module::compile_inference
// and the trace() shape machinery) into a linear program over shape-fixed
// activation buffers: layer steps executed through Module::infer_into plus
// the elementwise glue (residual adds, scales, channel concat) composites
// emit. A plan is compiled once per (model, batched input shape), is
// immutable afterwards, and is shared by any number of runtime::Sessions —
// the paper's collapsed SESR networks are deployed exactly this way, as a
// fixed execution schedule rather than a trainable graph.
//
// compile_int8 is a second backend over the same IR: the float program is
// compiled first, then lowered step by step onto int8 buffers — conv /
// depthwise / linear / activation / pixel-op steps become integer-kernel
// steps (tensor/int8_kernels.h) parameterised from a calibrated
// quant::QuantizedModel, residual adds and scales become saturating integer
// rescales, and layers without integer kernels fall back to their float
// kernel bracketed by (de)quantisation plus an explicit fake-quant of the
// result, so every compilable network still compiles at int8. Buffer ids are
// shared between domains: a float buffer may have an int8 twin, and
// quantize/dequantize steps move content between them.
//
// Lifetime: the plan stores non-owning pointers into the compiled module; the
// module must outlive every plan (and session) compiled from it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/module.h"
#include "quant/qparams.h"
#include "tensor/int8_kernels.h"

namespace sesr::quant {
class QuantizedModel;
}

namespace sesr::runtime {

enum class Precision {
  kFloat32,
  kInt8,
};

/// Parameters of one lowered int8 step (grids, packed integer weights,
/// fixed-point requantisation, per-op geometry). One flat struct serves every
/// step kind; each kind reads only its documented fields.
struct QStepData {
  quant::QParams in_a;   ///< first-operand grid (conversions: the buffer grid)
  quant::QParams in_b;   ///< second-operand grid (kQAdd)
  quant::QParams out;    ///< output grid
  std::vector<quant::QParams> src_qp;  ///< kQConcat: per-source grids

  // kQConv / kQDepthwise / kQLinear: packed weights and requantisation.
  std::vector<int16_t> weights;
  std::vector<int32_t> bias;
  std::vector<FixedPointMultiplier> requant;
  int64_t in_c = 0, out_c = 0, kernel = 1, stride = 1, pad = 0;

  // kQActivation.
  double pos = 1.0, neg = 0.0;
  std::vector<double> neg_per_channel;
  int32_t out_cap = 127;

  // kQDepthToSpace / kQTileChannels.
  int64_t block = 1, times = 1;

  // kQAdd (operand-to-output scale ratios) / kQScale (alpha * s_in / s_out).
  double m_a = 1.0, m_b = 1.0;
};

/// One step of a compiled program. Buffer ids index InferencePlan's buffer
/// table; id 0 is the plan input (read-only, aliased to the caller's tensor).
/// Int8 steps address the int8 twin of a buffer id; quantize / dequantize /
/// fake-quant steps bridge the two domains.
struct PlanStep {
  enum class Kind {
    // Float domain (both precisions; the only kinds in fp32 plans).
    kLayer,   ///< buffers[output] = layer->infer_into(buffers[input]); in
              ///< place when output == input (pointwise layers only)
    kAdd,     ///< buffers[output] += buffers[input]
    kScale,   ///< buffers[output] *= alpha
    kConcat,  ///< buffers[output] = channel-concat of buffers[sources]

    // Domain bridges (int8 plans only).
    kQuantize,    ///< qbuf[output] = quantize(buffers[input]) onto q.out
    kDequantize,  ///< buffers[output] = dequantize(qbuf[input]) from q.in_a
    kFakeQuant,   ///< buffers[output] round-tripped through q.out, in place

    // Integer domain (int8 plans only; operate on int8 twins).
    kQConv,          ///< int8 implicit-im2col convolution
    kQDepthwise,     ///< int8 depthwise convolution
    kQLinear,        ///< int8 fully connected
    kQActivation,    ///< int8 pointwise activation (in place when output == input)
    kQAdd,           ///< qbuf[output] = saturating add(qbuf[output], qbuf[input])
    kQScale,         ///< in-place integer rescale of qbuf[output]
    kQConcat,        ///< channel concat with per-source rescale
    kQDepthToSpace,  ///< pixel shuffle (pure data movement)
    kQTileChannels,  ///< channel tiling (pure data movement)
  };

  Kind kind = Kind::kLayer;
  const nn::Module* layer = nullptr;
  int input = -1;
  int output = -1;
  float alpha = 1.0f;
  std::vector<int> sources;
  int qdata = -1;  ///< index into InferencePlan::qstep_data(); -1 for float steps
};

/// Stable identity of a float-plan step, used to validate that a calibrated
/// artifact and a plan came from the same module ("conv3x3_16_16", "add",
/// "scale", "concat"). Throws for lowered int8 step kinds.
[[nodiscard]] std::string step_identity(const PlanStep& step);

class InferencePlan {
 public:
  /// Compile `module` for a fixed batched NCHW input shape. Throws
  /// std::invalid_argument when the module (or a child) does not support
  /// compiled inference or the shape does not trace. `module` must outlive
  /// the returned plan.
  static std::shared_ptr<const InferencePlan> compile(const nn::Module& module,
                                                      const Shape& input);

  /// Compile the int8 backend: the float program lowered onto integer
  /// kernels, parameterised by a calibrated artifact (which must have been
  /// calibrated from this module — step names are validated). The module
  /// must outlive the plan; the artifact is only read during compilation.
  static std::shared_ptr<const InferencePlan> compile_int8(
      const nn::Module& module, const Shape& input,
      const quant::QuantizedModel& artifact);

  [[nodiscard]] Precision precision() const { return precision_; }
  [[nodiscard]] const Shape& input_shape() const { return buffer_shapes_.front(); }
  [[nodiscard]] const Shape& output_shape() const {
    return buffer_shapes_[static_cast<size_t>(output_)];
  }
  [[nodiscard]] int output_buffer() const { return output_; }
  [[nodiscard]] const std::vector<PlanStep>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<Shape>& buffer_shapes() const { return buffer_shapes_; }
  [[nodiscard]] const std::vector<QStepData>& qstep_data() const { return qstep_data_; }

  /// Which buffer ids a session must back with float storage / int8 storage.
  /// (Float plans: every id float, no int8 twins. The plan input and output
  /// are bound to caller tensors regardless.)
  [[nodiscard]] bool buffer_needs_float(int id) const {
    return float_needed_.empty() || float_needed_[static_cast<size_t>(id)] != 0;
  }
  [[nodiscard]] bool buffer_needs_int8(int id) const {
    return !int8_needed_.empty() && int8_needed_[static_cast<size_t>(id)] != 0;
  }

  /// Total floats a session preallocates for intermediate activations.
  [[nodiscard]] int64_t activation_floats() const;
  /// Total activation bytes a session preallocates (float + int8 twins).
  [[nodiscard]] int64_t activation_bytes() const;

 private:
  friend class PlanBuilder;
  friend class Int8Lowering;
  InferencePlan() = default;

  Precision precision_ = Precision::kFloat32;
  std::vector<PlanStep> steps_;
  std::vector<Shape> buffer_shapes_;
  std::vector<QStepData> qstep_data_;
  std::vector<uint8_t> float_needed_;  // empty = all (fp32 plans)
  std::vector<uint8_t> int8_needed_;   // empty = none (fp32 plans)
  int output_ = 0;
};

}  // namespace sesr::runtime
