// The runtime's program IR: one typed step graph for both precisions.
//
// A Program is the compiled execution form of an nn::Module at a fixed
// batched input shape: an explicit buffer table (dtype, shape, and — for int8
// buffers — the quantisation grid of their content) plus a single flat op
// list. Both compile() (fp32) and compile_int8() (integer kernels,
// parameterised from a calibrated quant::QuantizedModel) lower into this one
// IR and then run the same pass pipeline (src/runtime/passes):
//
//   1. conv -> pointwise-activation fusion — the conv microkernels apply
//      ReLU/PReLU/... in their write-back loop (fp32: scalar epilogue, int8:
//      a 256-entry LUT), eliding one full pass over the tensor per pair;
//   2. dead-op elimination — ops whose results never reach the output;
//   3. in-place election — a liveness analysis aliases pointwise outputs onto
//      inputs that die at that op (subsuming the old builder-time pinning);
//   4. arena planning — a liveness-based greedy-by-size planner assigns every
//      surviving intermediate an offset into one contiguous slab, so a
//      Session owns a single allocation of peak_arena_bytes() instead of one
//      buffer per tensor (sum_buffer_bytes()).
//
// Every pass is bit-exactness-preserving by construction; PassConfig::none()
// disables the three optimising passes (the planner always runs) and is used
// where the raw one-op-per-module-step structure is the contract — artifact
// calibration and the fake-quant gold model walk raw programs so their
// one-record-per-step mapping stays valid.
//
// Buffer ids are dense indices into buffers(); id 0 is the program input and
// output_buffer() the output — both external (bound to caller tensors by the
// Session, never arena-planned). Int8 programs mint separate int8 buffers and
// bridge domains with explicit quantize / dequantize ops.
//
// Lifetime: the program stores non-owning pointers into the compiled module;
// the module must outlive every program (and session) compiled from it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/fused_activation.h"
#include "nn/module.h"
#include "quant/qparams.h"
#include "tensor/int8_kernels.h"
#include "tensor/simd/dispatch.h"

namespace sesr::quant {
class QuantizedModel;
}

namespace sesr::obs {
class ProgramProfile;
}

namespace sesr::nn {
class Conv2d;
}

namespace sesr::runtime {

namespace jit {
class JitModule;
}

enum class Precision {
  kFloat32,
  kInt8,
};

enum class DType : uint8_t {
  kFloat32,
  kInt8,
};

[[nodiscard]] constexpr int64_t dtype_bytes(DType t) {
  return t == DType::kFloat32 ? 4 : 1;
}

/// One entry of the program's buffer table.
struct BufferInfo {
  Shape shape;
  DType dtype = DType::kFloat32;
  /// Int8 buffers: the grid of the buffer's (final) content. Informational —
  /// executing ops carry their own grids in QStepData.
  quant::QParams grid;
  /// Byte offset into the session's activation arena, assigned by the
  /// planner. -1 for external buffers (program input / output, bound to
  /// caller tensors) and for buffers no surviving op touches.
  int64_t arena_offset = -1;

  [[nodiscard]] int64_t size_bytes() const { return shape.numel() * dtype_bytes(dtype); }
};

/// Parameters of one lowered int8 op (grids, packed integer weights,
/// fixed-point requantisation, per-op geometry). One flat struct serves every
/// op kind; each kind reads only its documented fields.
struct QStepData {
  quant::QParams in_a;   ///< first-operand grid (conversions: the buffer grid)
  quant::QParams in_b;   ///< second-operand grid (kQAdd)
  quant::QParams out;    ///< output grid
  std::vector<quant::QParams> src_qp;  ///< kQConcat: per-source grids

  // kQConv / kQDepthwise / kQLinear: packed weights and requantisation.
  std::vector<int16_t> weights;
  /// kQConv only: the kw-padded second packing the stride-1 direct-conv
  /// block kernel reads (Int8ConvSpec::weights_kw). Empty for other kinds.
  std::vector<int16_t> weights_kw;
  std::vector<int32_t> bias;
  std::vector<FixedPointMultiplier> requant;
  int64_t in_c = 0, out_c = 0, kernel = 1, stride = 1, pad = 0;

  // kQActivation.
  double pos = 1.0, neg = 0.0;
  std::vector<double> neg_per_channel;
  int32_t out_cap = 127;

  // kQDepthToSpace / kQTileChannels.
  int64_t block = 1, times = 1;

  // kQAdd (operand-to-output scale ratios) / kQScale (alpha * s_in / s_out).
  double m_a = 1.0, m_b = 1.0;

  // kQAdd: the 256x256 int8_add table (int8_add_build_lut) the session
  // streams instead of re-deriving the double math per element. Built at
  // lowering time from the exact int8_add formula, so bit-identical.
  std::vector<int8_t> add_lut;

  // kQConv with a fused activation: act_lut_channels 256-entry tables mapping
  // the conv's output grid onto the activation's (1 shared table, or out_c
  // per-channel tables for PReLU). Empty = no fusion.
  std::vector<int8_t> act_lut;
  int64_t act_lut_channels = 0;
};

/// One op of a compiled program. Buffer ids index Program::buffers(); every
/// operand is typed by its buffer's dtype (int8 ops reference int8 buffers,
/// float ops float buffers; quantize / dequantize bridge the two).
struct Op {
  enum class Kind {
    // Float domain (both precisions; the only kinds in fp32 programs).
    kLayer,   ///< buffers[output] = layer->infer_into(buffers[input]); in
              ///< place when output == input (alias-safe pointwise ops only)
    kAdd,     ///< buffers[output] += buffers[input]
    kScale,   ///< buffers[output] *= alpha
    kConcat,  ///< buffers[output] = channel-concat of buffers[sources]

    // Domain bridges (int8 programs only).
    kQuantize,    ///< buffers[output] (int8) = quantize(buffers[input]) onto q.out
    kDequantize,  ///< buffers[output] (float) = dequantize(buffers[input]) from q.in_a
    kFakeQuant,   ///< buffers[output] round-tripped through q.out, in place

    // Integer domain (int8 programs only).
    kQConv,          ///< int8 implicit-im2col convolution (optionally fused act)
    kQDepthwise,     ///< int8 depthwise convolution
    kQLinear,        ///< int8 fully connected
    kQActivation,    ///< int8 pointwise activation (in place when output == input)
    kQAdd,           ///< buffers[output] = saturating add(buffers[output], buffers[input])
    kQScale,         ///< in-place integer rescale of buffers[output]
    kQConcat,        ///< channel concat with per-source rescale
    kQDepthToSpace,  ///< pixel shuffle (pure data movement)
    kQTileChannels,  ///< channel tiling (pure data movement)
  };

  Kind kind = Kind::kLayer;
  const nn::Module* layer = nullptr;
  int input = -1;
  int output = -1;
  float alpha = 1.0f;
  std::vector<int> sources;
  int qdata = -1;  ///< index into Program::qdata(); -1 for float ops

  /// Shape-preserving pointwise op whose kernel tolerates output == input;
  /// the in-place election pass may alias its output onto its input.
  bool alias_safe = false;

  /// Float conv fusion: activation applied in the conv's write-back loop.
  nn::FusedActivation fused;
  const nn::Module* fused_layer = nullptr;  ///< the folded activation (diagnostics)

  /// SIMD kernel tier this op executes on, stamped at compile time by the
  /// select_kernel_variants pass (the active tier for dispatch-backed kinds;
  /// kScalar for kinds with no vectorised kernel). `dispatched` marks ops
  /// that actually consult the tier table — dump() annotates only those.
  simd::KernelVariant variant = simd::KernelVariant::kScalar;
  bool dispatched = false;

  /// kLayer whose layer is a Conv2d: the downcast, resolved once by the
  /// variant pass so Session::execute can route through the dispatch-aware
  /// fused microkernel without a per-run dynamic_cast.
  const nn::Conv2d* conv = nullptr;

  /// Index into the program's JIT module (compile_jit pass), or -1 when this
  /// op has no patched kernel. Only ops stamped KernelVariant::kJit carry a
  /// valid index; Session::execute routes them through the module's patched
  /// entry points and everything else through the dispatch table.
  int jit = -1;
};

/// Does this op kind read its output buffer before writing it
/// (read-modify-write)? Liveness analysis must keep such outputs live.
[[nodiscard]] bool op_reads_output(Op::Kind kind);

/// Short mnemonic for an op kind ("layer", "qconv", ...).
[[nodiscard]] const char* op_kind_name(Op::Kind kind);

/// Stable identity of a raw float-program op, used to validate that a
/// calibrated artifact and a program came from the same module
/// ("conv3x3_16_16", "add", "scale", "concat"). Throws for lowered int8 op
/// kinds.
[[nodiscard]] std::string step_identity(const Op& op);

/// Which optimising passes run after lowering. The arena planner is not
/// optional — it always runs, since sessions execute out of the arena.
struct PassConfig {
  bool fuse_activations = true;
  bool eliminate_dead_ops = true;
  bool elect_in_place = true;

  [[nodiscard]] static PassConfig optimized() { return {}; }
  /// Raw structure: one op per module step, no fusion / DCE / aliasing.
  /// Calibration and the fake-quant reference walk programs compiled this
  /// way (their one-record-per-step mapping is the contract).
  [[nodiscard]] static PassConfig none() { return {false, false, false}; }
};

/// What the pass pipeline did to this program (diagnostics and bench
/// metrics).
struct PassStats {
  int64_t fused_activations = 0;  ///< conv+activation pairs folded
  int64_t dead_ops_removed = 0;
  int64_t in_place_elected = 0;   ///< pointwise outputs aliased onto dying inputs
};

class Program {
 public:
  /// Compile `module` for a fixed batched NCHW input shape. Throws
  /// std::invalid_argument when the module (or a child) does not support
  /// compiled inference or the shape does not trace. `module` must outlive
  /// the returned program.
  static std::shared_ptr<const Program> compile(const nn::Module& module, const Shape& input,
                                                const PassConfig& passes = {});

  /// Compile the int8 backend: the raw float program lowered onto integer
  /// kernels, parameterised by a calibrated artifact (which must have been
  /// calibrated from this module — step names are validated), then optimised
  /// by the same pass pipeline. The module must outlive the program; the
  /// artifact is only read during compilation.
  static std::shared_ptr<const Program> compile_int8(const nn::Module& module,
                                                     const Shape& input,
                                                     const quant::QuantizedModel& artifact,
                                                     const PassConfig& passes = {});

  [[nodiscard]] Precision precision() const { return precision_; }
  [[nodiscard]] const Shape& input_shape() const { return buffers_.front().shape; }
  [[nodiscard]] const Shape& output_shape() const {
    return buffers_[static_cast<size_t>(output_)].shape;
  }
  [[nodiscard]] int output_buffer() const { return output_; }
  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<BufferInfo>& buffers() const { return buffers_; }
  [[nodiscard]] const std::vector<QStepData>& qdata() const { return qdata_; }
  [[nodiscard]] const PassStats& stats() const { return stats_; }

  /// The SIMD kernel tier this program's dispatch-backed ops were stamped
  /// with at compile time (cpuid best, or the SESR_KERNEL_VARIANT override
  /// in effect when compiling — environment flips after compilation do not
  /// retarget an already-compiled program).
  [[nodiscard]] simd::KernelVariant kernel_variant() const { return kernel_variant_; }
  /// Whether SESR_KERNEL_VARIANT pinned the tier at compile time.
  [[nodiscard]] bool kernel_variant_forced() const { return kernel_variant_forced_; }

  /// The copy-and-patch module the compile_jit pass built (null unless the
  /// program was compiled under the jit tier and at least one op JIT'd).
  /// Owned by the program like the arena plan: immutable, shared read-only
  /// by every Session.
  [[nodiscard]] const std::shared_ptr<const jit::JitModule>& jit_module() const {
    return jit_;
  }
  /// How many ops run patched JIT kernels / the one-time compile cost /
  /// bytes of patched code (0 when the jit tier was not selected or nothing
  /// was eligible — serving stats and bench JSON report these).
  [[nodiscard]] int64_t jit_ops() const { return jit_ops_; }
  [[nodiscard]] double jit_compile_ms() const { return jit_compile_ms_; }
  [[nodiscard]] int64_t jit_code_bytes() const { return jit_code_bytes_; }

  /// External buffers are bound to caller tensors at run time and never
  /// arena-planned: the program input (id 0) and the program output.
  [[nodiscard]] bool is_external(int id) const { return id == 0 || id == output_; }

  /// Size of the single activation slab a Session allocates — the planner's
  /// peak across all live intermediate buffers.
  [[nodiscard]] int64_t peak_arena_bytes() const { return arena_bytes_; }

  /// The one-buffer-per-tensor baseline: total bytes of every live
  /// intermediate buffer, in the planner's own (64-byte-aligned) accounting
  /// so that peak_arena_bytes() <= sum_buffer_bytes() holds by construction;
  /// the gap is what liveness-based planning saves.
  [[nodiscard]] int64_t sum_buffer_bytes() const { return sum_buffer_bytes_; }

  /// One debug printer for both precisions: pass stats, the buffer table
  /// with grids and arena offsets, the arena summary, the op list, and —
  /// when per-op profiling has collected samples — a hot-op table.
  [[nodiscard]] std::string dump() const;

  /// This program's per-op profile, created on first use (ops labeled by
  /// kind and kernel tier). Sessions record into it on sampled runs when
  /// SESR_PROFILE_OPS is enabled; stable address for the program's lifetime.
  [[nodiscard]] obs::ProgramProfile& profile() const;

  /// Hot-op rows for this program (empty until a sampled run has landed),
  /// sorted by accumulated time descending.
  [[nodiscard]] std::string profile_summary() const;

 private:
  /// The profile if one was ever created, else null — dump() peeks without
  /// instantiating.
  [[nodiscard]] obs::ProgramProfile* existing_profile() const;

  friend class ProgramBuilder;
  friend class Int8Lowering;
  friend struct ProgramEditor;
  Program() = default;

  Precision precision_ = Precision::kFloat32;
  std::vector<Op> ops_;
  std::vector<BufferInfo> buffers_;
  std::vector<QStepData> qdata_;
  PassStats stats_;
  int64_t arena_bytes_ = 0;
  int64_t sum_buffer_bytes_ = 0;
  int output_ = 0;
  simd::KernelVariant kernel_variant_ = simd::KernelVariant::kScalar;
  bool kernel_variant_forced_ = false;
  std::shared_ptr<const jit::JitModule> jit_;
  int64_t jit_ops_ = 0;
  double jit_compile_ms_ = 0.0;
  int64_t jit_code_bytes_ = 0;

  // Lazily-created per-op profile (obs/profile.h). Mutable because profiling
  // an immutable, shared program is an observer concern, not a mutation of
  // the compiled artifact.
  mutable std::mutex profile_mutex_;
  mutable std::shared_ptr<obs::ProgramProfile> profile_;
};

}  // namespace sesr::runtime
