#include "runtime/plan.h"

#include <stdexcept>
#include <unordered_set>

#include "nn/inference.h"

namespace sesr::runtime {

/// The nn::InferenceBuilder implementation behind InferencePlan::compile.
/// Enforces the buffer discipline the executor relies on: the input buffer
/// and pinned buffers are never written, and in-place pointwise execution is
/// granted only when the producer buffer has no later readers (signalled by
/// composites through pin()).
class PlanBuilder final : public nn::InferenceBuilder {
 public:
  explicit PlanBuilder(InferencePlan& plan, const Shape& input) : plan_(plan) {
    plan_.buffer_shapes_.push_back(input);
    pinned_.insert(0);  // the plan input aliases the caller's (const) tensor
  }

  int emit_layer(const nn::Module& layer, int input) override {
    const int output = add_buffer(layer.trace(shape_of(input), nullptr));
    plan_.steps_.push_back({PlanStep::Kind::kLayer, &layer, input, output, 1.0f, {}});
    return output;
  }

  int emit_pointwise(const nn::Module& layer, int input) override {
    const Shape out_shape = layer.trace(shape_of(input), nullptr);
    if (pinned_.count(input) != 0 || out_shape != shape_of(input))
      return emit_layer(layer, input);
    plan_.steps_.push_back({PlanStep::Kind::kLayer, &layer, input, input, 1.0f, {}});
    return input;
  }

  void emit_add(int dst, int src) override {
    check_writable(dst, "emit_add");
    if (shape_of(dst) != shape_of(src))
      throw std::logic_error("PlanBuilder::emit_add: shape mismatch " +
                             shape_of(dst).to_string() + " vs " + shape_of(src).to_string());
    plan_.steps_.push_back({PlanStep::Kind::kAdd, nullptr, src, dst, 1.0f, {}});
  }

  void emit_scale(int dst, float alpha) override {
    check_writable(dst, "emit_scale");
    plan_.steps_.push_back({PlanStep::Kind::kScale, nullptr, -1, dst, alpha, {}});
  }

  int emit_concat(const std::vector<int>& srcs) override {
    if (srcs.empty()) throw std::logic_error("PlanBuilder::emit_concat: no sources");
    const Shape& first = shape_of(srcs.front());
    int64_t total_c = 0;
    for (int src : srcs) {
      const Shape& s = shape_of(src);
      if (s.ndim() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3])
        throw std::logic_error("PlanBuilder::emit_concat: incompatible source " + s.to_string());
      total_c += s[1];
    }
    const int output = add_buffer({first[0], total_c, first[2], first[3]});
    plan_.steps_.push_back({PlanStep::Kind::kConcat, nullptr, -1, output, 1.0f, srcs});
    return output;
  }

  void pin(int buffer) override { pinned_.insert(buffer); }

  [[nodiscard]] const Shape& buffer_shape(int buffer) const override { return shape_of(buffer); }

 private:
  int add_buffer(Shape shape) {
    plan_.buffer_shapes_.push_back(std::move(shape));
    return static_cast<int>(plan_.buffer_shapes_.size()) - 1;
  }

  [[nodiscard]] const Shape& shape_of(int buffer) const {
    if (buffer < 0 || buffer >= static_cast<int>(plan_.buffer_shapes_.size()))
      throw std::logic_error("PlanBuilder: unknown buffer id " + std::to_string(buffer));
    return plan_.buffer_shapes_[static_cast<size_t>(buffer)];
  }

  void check_writable(int buffer, const char* op) const {
    static_cast<void>(shape_of(buffer));  // bounds check
    if (pinned_.count(buffer) != 0)
      throw std::logic_error(std::string("PlanBuilder::") + op +
                             ": buffer " + std::to_string(buffer) +
                             " is pinned (or the plan input) and cannot be written");
  }

  InferencePlan& plan_;
  std::unordered_set<int> pinned_;
};

std::shared_ptr<const InferencePlan> InferencePlan::compile(const nn::Module& module,
                                                            const Shape& input) {
  if (!module.supports_compiled_inference())
    throw std::invalid_argument("InferencePlan::compile: " + module.name() +
                                " does not support compiled inference");
  const Shape expected = module.trace(input, nullptr);  // validates the shape up front

  std::shared_ptr<InferencePlan> plan(new InferencePlan());
  PlanBuilder builder(*plan, input);
  plan->output_ = module.compile_inference(builder, 0);
  if (plan->output_shape() != expected)
    throw std::logic_error("InferencePlan::compile: " + module.name() +
                           " compiled to output " + plan->output_shape().to_string() +
                           " but trace() promises " + expected.to_string());
  return plan;
}

int64_t InferencePlan::activation_floats() const {
  int64_t total = 0;
  // Buffer 0 aliases the caller's input and the output buffer aliases the
  // caller's output; everything else is session-owned.
  for (size_t i = 1; i < buffer_shapes_.size(); ++i)
    if (static_cast<int>(i) != output_) total += buffer_shapes_[i].numel();
  return total;
}

}  // namespace sesr::runtime
