#include "runtime/plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/inference.h"
#include "nn/linear.h"
#include "nn/pixel_ops.h"
#include "quant/quantized_model.h"

namespace sesr::runtime {

/// The nn::InferenceBuilder implementation behind InferencePlan::compile.
/// Enforces the buffer discipline the executor relies on: the input buffer
/// and pinned buffers are never written, and in-place pointwise execution is
/// granted only when the producer buffer has no later readers (signalled by
/// composites through pin()).
class PlanBuilder final : public nn::InferenceBuilder {
 public:
  explicit PlanBuilder(InferencePlan& plan, const Shape& input) : plan_(plan) {
    plan_.buffer_shapes_.push_back(input);
    pinned_.insert(0);  // the plan input aliases the caller's (const) tensor
  }

  int emit_layer(const nn::Module& layer, int input) override {
    const int output = add_buffer(layer.trace(shape_of(input), nullptr));
    plan_.steps_.push_back({PlanStep::Kind::kLayer, &layer, input, output, 1.0f, {}, -1});
    return output;
  }

  int emit_pointwise(const nn::Module& layer, int input) override {
    const Shape out_shape = layer.trace(shape_of(input), nullptr);
    if (pinned_.count(input) != 0 || out_shape != shape_of(input))
      return emit_layer(layer, input);
    plan_.steps_.push_back({PlanStep::Kind::kLayer, &layer, input, input, 1.0f, {}, -1});
    return input;
  }

  void emit_add(int dst, int src) override {
    check_writable(dst, "emit_add");
    if (shape_of(dst) != shape_of(src))
      throw std::logic_error("PlanBuilder::emit_add: shape mismatch " +
                             shape_of(dst).to_string() + " vs " + shape_of(src).to_string());
    plan_.steps_.push_back({PlanStep::Kind::kAdd, nullptr, src, dst, 1.0f, {}, -1});
  }

  void emit_scale(int dst, float alpha) override {
    check_writable(dst, "emit_scale");
    plan_.steps_.push_back({PlanStep::Kind::kScale, nullptr, -1, dst, alpha, {}, -1});
  }

  int emit_concat(const std::vector<int>& srcs) override {
    if (srcs.empty()) throw std::logic_error("PlanBuilder::emit_concat: no sources");
    const Shape& first = shape_of(srcs.front());
    int64_t total_c = 0;
    for (int src : srcs) {
      const Shape& s = shape_of(src);
      if (s.ndim() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3])
        throw std::logic_error("PlanBuilder::emit_concat: incompatible source " + s.to_string());
      total_c += s[1];
    }
    const int output = add_buffer({first[0], total_c, first[2], first[3]});
    plan_.steps_.push_back({PlanStep::Kind::kConcat, nullptr, -1, output, 1.0f, srcs, -1});
    return output;
  }

  void pin(int buffer) override { pinned_.insert(buffer); }

  [[nodiscard]] const Shape& buffer_shape(int buffer) const override { return shape_of(buffer); }

 private:
  int add_buffer(Shape shape) {
    plan_.buffer_shapes_.push_back(std::move(shape));
    return static_cast<int>(plan_.buffer_shapes_.size()) - 1;
  }

  [[nodiscard]] const Shape& shape_of(int buffer) const {
    if (buffer < 0 || buffer >= static_cast<int>(plan_.buffer_shapes_.size()))
      throw std::logic_error("PlanBuilder: unknown buffer id " + std::to_string(buffer));
    return plan_.buffer_shapes_[static_cast<size_t>(buffer)];
  }

  void check_writable(int buffer, const char* op) const {
    static_cast<void>(shape_of(buffer));  // bounds check
    if (pinned_.count(buffer) != 0)
      throw std::logic_error(std::string("PlanBuilder::") + op +
                             ": buffer " + std::to_string(buffer) +
                             " is pinned (or the plan input) and cannot be written");
  }

  InferencePlan& plan_;
  std::unordered_set<int> pinned_;
};

std::string step_identity(const PlanStep& step) {
  switch (step.kind) {
    case PlanStep::Kind::kLayer:
      return step.layer->name();
    case PlanStep::Kind::kAdd:
      return "add";
    case PlanStep::Kind::kScale:
      return "scale";
    case PlanStep::Kind::kConcat:
      return "concat";
    default:
      throw std::logic_error("step_identity: float-plan steps only");
  }
}

std::shared_ptr<const InferencePlan> InferencePlan::compile(const nn::Module& module,
                                                            const Shape& input) {
  if (!module.supports_compiled_inference())
    throw std::invalid_argument("InferencePlan::compile: " + module.name() +
                                " does not support compiled inference");
  const Shape expected = module.trace(input, nullptr);  // validates the shape up front

  std::shared_ptr<InferencePlan> plan(new InferencePlan());
  PlanBuilder builder(*plan, input);
  plan->output_ = module.compile_inference(builder, 0);
  if (plan->output_shape() != expected)
    throw std::logic_error("InferencePlan::compile: " + module.name() +
                           " compiled to output " + plan->output_shape().to_string() +
                           " but trace() promises " + expected.to_string());
  return plan;
}

// ---- int8 lowering ---------------------------------------------------------

/// Lowers a compiled float program onto the int8 backend, one step at a time.
/// Each buffer id carries a domain state — float content, int8 content, and
/// the grid (QParams) of that content — and conversions (quantize /
/// dequantize) are emitted lazily where a consumer needs the other domain.
/// Every float-executed step is followed by an explicit fake-quant of its
/// output, so the float fallback is numerically the activation-fake-quant
/// emulation of an int8 tensor and a later re-quantisation is lossless.
class Int8Lowering {
 public:
  Int8Lowering(const InferencePlan& src, const quant::QuantizedModel& artifact,
               InferencePlan& dst)
      : src_(src), artifact_(artifact), dst_(dst) {
    dst_.precision_ = Precision::kInt8;
    dst_.buffer_shapes_ = src_.buffer_shapes_;
    dst_.output_ = src_.output_;
    const size_t n = src_.buffer_shapes_.size();
    dst_.float_needed_.assign(n, 0);
    dst_.int8_needed_.assign(n, 0);
    states_.resize(n);
    states_[0] = {true, false, artifact_.input_qparams()};
    dst_.float_needed_[0] = 1;
  }

  void run() {
    const auto& records = artifact_.steps();
    if (records.size() != src_.steps_.size())
      throw std::invalid_argument(
          "compile_int8: artifact holds " + std::to_string(records.size()) +
          " step records but the plan has " + std::to_string(src_.steps_.size()) +
          " steps — calibrated from a different module?");
    for (size_t k = 0; k < src_.steps_.size(); ++k) {
      const PlanStep& step = src_.steps_[k];
      const quant::StepQuant& rec = records[k];
      if (rec.name != step_identity(step))
        throw std::invalid_argument("compile_int8: step " + std::to_string(k) +
                                    " is '" + step_identity(step) +
                                    "' but the artifact recorded '" + rec.name + "'");
      lower_step(step, rec);
    }
    ensure_float(dst_.output_);  // sessions hand the caller a float tensor
  }

 private:
  struct BufferState {
    bool has_float = false;
    bool has_int8 = false;
    quant::QParams qp;  ///< grid of the buffer's current logical content
  };

  BufferState& state(int id) { return states_[static_cast<size_t>(id)]; }

  int add_qdata(QStepData data) {
    dst_.qstep_data_.push_back(std::move(data));
    return static_cast<int>(dst_.qstep_data_.size()) - 1;
  }

  void push(PlanStep step) { dst_.steps_.push_back(std::move(step)); }

  void mark_float(int id) { dst_.float_needed_[static_cast<size_t>(id)] = 1; }
  void mark_int8(int id) { dst_.int8_needed_[static_cast<size_t>(id)] = 1; }

  void set_content(int id, const quant::QParams& qp, bool int8_domain) {
    state(id) = {!int8_domain, int8_domain, qp};
  }

  /// Make the int8 twin of `id` valid (emitting a quantize if needed).
  void ensure_int8(int id) {
    BufferState& s = state(id);
    if (s.has_int8) return;
    if (!s.has_float)
      throw std::logic_error("Int8Lowering: buffer " + std::to_string(id) +
                             " read before it was written");
    QStepData qd;
    qd.out = s.qp;
    push({PlanStep::Kind::kQuantize, nullptr, id, id, 1.0f, {}, add_qdata(std::move(qd))});
    mark_float(id);
    mark_int8(id);
    s.has_int8 = true;
  }

  /// Make the float side of `id` valid (emitting a dequantize if needed).
  void ensure_float(int id) {
    BufferState& s = state(id);
    if (s.has_float) return;
    if (!s.has_int8)
      throw std::logic_error("Int8Lowering: buffer " + std::to_string(id) +
                             " read before it was written");
    QStepData qd;
    qd.in_a = s.qp;
    push({PlanStep::Kind::kDequantize, nullptr, id, id, 1.0f, {}, add_qdata(std::move(qd))});
    mark_float(id);
    mark_int8(id);
    s.has_float = true;
  }

  /// Float content of `id` that is *on the int8 grid*. For every buffer but
  /// the plan input that is what ensure_float yields (all float writers
  /// fake-quantise); buffer 0 holds the caller's raw tensor and is read-only,
  /// so its on-grid float view lives in a shadow buffer fed by
  /// quantize -> dequantize. Without this, a float-fallback layer reading the
  /// plan input would see values the int8 boundary never transmits.
  int on_grid_float(int id) {
    if (id != 0) {
      ensure_float(id);
      return id;
    }
    if (input_shadow_ < 0) {
      ensure_int8(0);
      input_shadow_ = static_cast<int>(dst_.buffer_shapes_.size());
      dst_.buffer_shapes_.push_back(dst_.buffer_shapes_.front());
      dst_.float_needed_.push_back(1);
      dst_.int8_needed_.push_back(0);
      states_.push_back({true, false, states_[0].qp});
      QStepData qd;
      qd.in_a = states_[0].qp;
      push({PlanStep::Kind::kDequantize, nullptr, 0, input_shadow_, 1.0f, {},
            add_qdata(std::move(qd))});
    }
    return input_shadow_;
  }

  /// The artifact computed its biases against the input grid it recorded; the
  /// lowering must agree with it or the accumulator arithmetic is silently
  /// wrong. Both walks are deterministic over the same plan, so a mismatch
  /// means artifact/module confusion.
  void check_input_grid(int id, const quant::StepQuant& rec) const {
    if (states_[static_cast<size_t>(id)].qp != rec.in)
      throw std::logic_error("Int8Lowering: input grid of '" + rec.name +
                             "' disagrees with the artifact record");
  }

  [[nodiscard]] float weight_scale(const quant::StepQuant& rec, int64_t oc) const {
    return rec.weight_scales.size() == 1 ? rec.weight_scales[0]
                                         : rec.weight_scales[static_cast<size_t>(oc)];
  }

  void pack_weights(const quant::StepQuant& rec, int64_t out_channels, QStepData& qd) const {
    qd.weights.assign(rec.weights.begin(), rec.weights.end());  // widen int8 -> int16
    qd.bias = rec.bias;
    qd.requant.resize(static_cast<size_t>(out_channels));
    for (int64_t oc = 0; oc < out_channels; ++oc) {
      const double m = static_cast<double>(rec.in.scale) *
                       static_cast<double>(weight_scale(rec, oc)) /
                       static_cast<double>(rec.out.scale);
      qd.requant[static_cast<size_t>(oc)] = FixedPointMultiplier::from_double(m);
    }
  }

  /// Conv weights additionally re-pack onto the kernel's aligned row stride
  /// (zero-padded rows; see Int8ConvSpec::weights).
  void pack_conv_weights(const quant::StepQuant& rec, int64_t out_channels,
                         QStepData& qd) const {
    pack_weights(rec, out_channels, qd);
    const int64_t row = static_cast<int64_t>(rec.weights.size()) / out_channels;
    const int64_t stride = int8_packed_stride(row);
    std::vector<int16_t> packed(static_cast<size_t>(out_channels * stride), 0);
    for (int64_t oc = 0; oc < out_channels; ++oc)
      for (int64_t j = 0; j < row; ++j)
        packed[static_cast<size_t>(oc * stride + j)] =
            qd.weights[static_cast<size_t>(oc * row + j)];
    qd.weights = std::move(packed);
  }

  void emit_qstep(PlanStep::Kind kind, const PlanStep& step, const quant::StepQuant& rec,
                  QStepData qd) {
    push({kind, step.layer, step.input, step.output, step.alpha, step.sources,
          add_qdata(std::move(qd))});
    if (step.input >= 0) mark_int8(step.input);
    mark_int8(step.output);
    set_content(step.output, rec.out, /*int8_domain=*/true);
  }

  void lower_step(const PlanStep& step, const quant::StepQuant& rec) {
    using Op = quant::StepOp;
    switch (rec.op) {
      case Op::kConv2d: {
        const auto* conv = dynamic_cast<const nn::Conv2d*>(step.layer);
        if (conv == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a Conv2d");
        ensure_int8(step.input);
        check_input_grid(step.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        const auto& o = conv->options();
        qd.in_c = o.in_channels;
        qd.out_c = o.out_channels;
        qd.kernel = o.kernel;
        qd.stride = o.stride;
        qd.pad = o.effective_padding();
        pack_conv_weights(rec, o.out_channels, qd);
        emit_qstep(PlanStep::Kind::kQConv, step, rec, std::move(qd));
        break;
      }
      case Op::kDepthwise: {
        const auto* dw = dynamic_cast<const nn::DepthwiseConv2d*>(step.layer);
        if (dw == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a DepthwiseConv2d");
        ensure_int8(step.input);
        check_input_grid(step.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        const auto& o = dw->options();
        qd.in_c = o.channels;
        qd.out_c = o.channels;
        qd.kernel = o.kernel;
        qd.stride = o.stride;
        qd.pad = o.effective_padding();
        pack_weights(rec, o.channels, qd);
        emit_qstep(PlanStep::Kind::kQDepthwise, step, rec, std::move(qd));
        break;
      }
      case Op::kLinear: {
        if (dynamic_cast<const nn::Linear*>(step.layer) == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a Linear");
        ensure_int8(step.input);
        check_input_grid(step.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        qd.in_c = shape_of(step.input)[1];   // [N, in_features]
        qd.out_c = shape_of(step.output)[1];  // [N, out_features]
        pack_weights(rec, qd.out_c, qd);
        emit_qstep(PlanStep::Kind::kQLinear, step, rec, std::move(qd));
        break;
      }
      case Op::kActivation: {
        ensure_int8(step.input);
        check_input_grid(step.input, rec);
        emit_qstep(PlanStep::Kind::kQActivation, step, rec,
                   activation_qdata(step, rec));
        break;
      }
      case Op::kDepthToSpace: {
        ensure_int8(step.input);
        QStepData qd;
        qd.in_a = state(step.input).qp;
        qd.out = rec.out;
        qd.block = shape_of(step.output)[2] / shape_of(step.input)[2];
        emit_qstep(PlanStep::Kind::kQDepthToSpace, step, rec, std::move(qd));
        break;
      }
      case Op::kTileChannels: {
        ensure_int8(step.input);
        QStepData qd;
        qd.in_a = state(step.input).qp;
        qd.out = rec.out;
        qd.times = shape_of(step.output)[1] / shape_of(step.input)[1];
        emit_qstep(PlanStep::Kind::kQTileChannels, step, rec, std::move(qd));
        break;
      }
      case Op::kAdd: {
        // dst (step.output) += src (step.input), requantised onto rec.out.
        ensure_int8(step.output);
        ensure_int8(step.input);
        QStepData qd;
        qd.in_a = state(step.output).qp;
        qd.in_b = state(step.input).qp;
        qd.out = rec.out;
        qd.m_a = static_cast<double>(qd.in_a.scale) / rec.out.scale;
        qd.m_b = static_cast<double>(qd.in_b.scale) / rec.out.scale;
        emit_qstep(PlanStep::Kind::kQAdd, step, rec, std::move(qd));
        break;
      }
      case Op::kScale: {
        ensure_int8(step.output);
        QStepData qd;
        qd.in_a = state(step.output).qp;
        qd.out = rec.out;
        qd.m_a = static_cast<double>(step.alpha) * qd.in_a.scale / rec.out.scale;
        push({PlanStep::Kind::kQScale, nullptr, -1, step.output, step.alpha, {},
              add_qdata(std::move(qd))});
        mark_int8(step.output);
        set_content(step.output, rec.out, /*int8_domain=*/true);
        break;
      }
      case Op::kConcat: {
        QStepData qd;
        qd.out = rec.out;
        for (int src : step.sources) {
          ensure_int8(src);
          qd.src_qp.push_back(state(src).qp);
          mark_int8(src);
        }
        push({PlanStep::Kind::kQConcat, nullptr, -1, step.output, 1.0f, step.sources,
              add_qdata(std::move(qd))});
        mark_int8(step.output);
        set_content(step.output, rec.out, /*int8_domain=*/true);
        break;
      }
      case Op::kFallback: {
        // No integer kernel: run the float kernel on dequantised activations
        // and round the result onto its calibrated grid — fake-quant-on-float.
        const int in = on_grid_float(step.input);
        mark_float(in);
        mark_float(step.output);
        push({PlanStep::Kind::kLayer, step.layer, in, step.output, step.alpha,
              step.sources, -1});
        QStepData qd;
        qd.out = rec.out;
        push({PlanStep::Kind::kFakeQuant, nullptr, -1, step.output, 1.0f, {},
              add_qdata(std::move(qd))});
        set_content(step.output, rec.out, /*int8_domain=*/false);
        break;
      }
    }
  }

  [[nodiscard]] QStepData activation_qdata(const PlanStep& step,
                                           const quant::StepQuant& rec) const {
    QStepData qd;
    qd.in_a = rec.in;
    qd.out = rec.out;
    const double s_ratio =
        static_cast<double>(rec.in.scale) / static_cast<double>(rec.out.scale);
    qd.pos = s_ratio;
    if (dynamic_cast<const nn::ReLU*>(step.layer) != nullptr) {
      qd.neg = 0.0;
    } else if (dynamic_cast<const nn::ReLU6*>(step.layer) != nullptr) {
      qd.neg = 0.0;
      const auto cap = static_cast<int32_t>(
          std::lround(6.0 / rec.out.scale) + rec.out.zero_point);
      qd.out_cap = std::min<int32_t>(127, cap);
    } else if (const auto* leaky = dynamic_cast<const nn::LeakyReLU*>(step.layer)) {
      qd.neg = static_cast<double>(leaky->slope()) * s_ratio;
    } else if (const auto* prelu = dynamic_cast<const nn::PReLU*>(step.layer)) {
      // parameters() is logically const (see Module::num_params).
      const Tensor& slopes =
          const_cast<nn::PReLU*>(prelu)->parameters().front()->value;
      qd.neg_per_channel.resize(static_cast<size_t>(slopes.numel()));
      for (int64_t c = 0; c < slopes.numel(); ++c)
        qd.neg_per_channel[static_cast<size_t>(c)] =
            static_cast<double>(slopes[c]) * s_ratio;
    } else {
      throw std::logic_error("Int8Lowering: unsupported activation '" + rec.name + "'");
    }
    return qd;
  }

  [[nodiscard]] const Shape& shape_of(int id) const {
    return src_.buffer_shapes_[static_cast<size_t>(id)];
  }

  const InferencePlan& src_;
  const quant::QuantizedModel& artifact_;
  InferencePlan& dst_;
  std::vector<BufferState> states_;
  int input_shadow_ = -1;  // on-grid float view of the (read-only) plan input
};

std::shared_ptr<const InferencePlan> InferencePlan::compile_int8(
    const nn::Module& module, const Shape& input, const quant::QuantizedModel& artifact) {
  const auto float_plan = compile(module, input);
  std::shared_ptr<InferencePlan> plan(new InferencePlan());
  Int8Lowering lowering(*float_plan, artifact, *plan);
  lowering.run();
  return plan;
}

int64_t InferencePlan::activation_floats() const {
  int64_t total = 0;
  // Buffer 0 aliases the caller's input and the output buffer aliases the
  // caller's output; everything else is session-owned.
  for (size_t i = 1; i < buffer_shapes_.size(); ++i)
    if (static_cast<int>(i) != output_ && buffer_needs_float(static_cast<int>(i)))
      total += buffer_shapes_[i].numel();
  return total;
}

int64_t InferencePlan::activation_bytes() const {
  int64_t bytes = activation_floats() * static_cast<int64_t>(sizeof(float));
  for (size_t i = 0; i < buffer_shapes_.size(); ++i)
    if (buffer_needs_int8(static_cast<int>(i))) bytes += buffer_shapes_[i].numel();
  return bytes;
}

}  // namespace sesr::runtime
