// Umbrella header for the compiled inference runtime.
#pragma once

#include "runtime/passes/passes.h"
#include "runtime/program.h"
#include "runtime/session.h"
