// Umbrella header for the compiled inference runtime.
#pragma once

#include "runtime/plan.h"
#include "runtime/session.h"
